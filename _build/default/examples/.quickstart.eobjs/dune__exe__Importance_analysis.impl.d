examples/importance_analysis.ml: Core Facility Format List Watertreatment
