examples/quickstart.ml: Core Csl Ctmc Fault_tree Format List
