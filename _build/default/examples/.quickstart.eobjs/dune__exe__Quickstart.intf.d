examples/quickstart.mli:
