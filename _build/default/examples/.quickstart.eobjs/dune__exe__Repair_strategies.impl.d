examples/repair_strategies.ml: Core Ctmc Fault_tree Format List Printf
