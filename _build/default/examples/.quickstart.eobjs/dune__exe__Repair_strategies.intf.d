examples/repair_strategies.mli:
