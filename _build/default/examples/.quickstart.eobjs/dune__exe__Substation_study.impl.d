examples/substation_study.ml: Core Format List Substation
