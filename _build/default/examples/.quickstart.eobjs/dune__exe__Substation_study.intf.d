examples/substation_study.mli:
