examples/survivability_study.ml: Core Facility Format List Watertreatment
