examples/survivability_study.mli:
