examples/water_treatment.ml: Core Facility Format List Watertreatment
