examples/water_treatment.mli:
