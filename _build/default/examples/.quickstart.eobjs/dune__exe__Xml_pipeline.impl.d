examples/xml_pipeline.ml: Core Csl Ctmc Float Format List Prism String Watertreatment Xml_kit
