examples/xml_pipeline.mli:
