(* Quickstart: model a tiny redundant system in Arcade and compute its
   dependability measures.

   The system: two power supplies (one is enough), one controller. It is
   down when the controller fails or both supplies fail. A single
   first-come-first-served repair crew maintains everything.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Components: name, mean time to failure, mean time to repair. *)
  let psu1 = Core.Component.make ~name:"psu1" ~mttf:4000. ~mttr:8. () in
  let psu2 = Core.Component.make ~name:"psu2" ~mttf:4000. ~mttr:8. () in
  let controller = Core.Component.make ~name:"controller" ~mttf:10000. ~mttr:24. () in

  (* 2. A repair organisation: one FCFS crew for everything. *)
  let crew =
    Core.Repair.make ~name:"crew" ~strategy:Core.Repair.Fcfs
      ~components:[ "psu1"; "psu2"; "controller" ] ()
  in

  (* 3. When is the system down? Both PSUs failed, or the controller. *)
  let fault_tree =
    Fault_tree.or_
      [
        Fault_tree.and_ [ Fault_tree.basic "psu1"; Fault_tree.basic "psu2" ];
        Fault_tree.basic "controller";
      ]
  in

  (* 4. Assemble and analyze. *)
  let model =
    Core.Model.make ~name:"quickstart" ~components:[ psu1; psu2; controller ]
      ~repair_units:[ crew ] ~fault_tree ()
  in
  let m = Core.Measures.analyze model in
  let built = Core.Measures.built m in
  Format.printf "state space: %a@." Ctmc.Chain.pp_stats built.Core.Semantics.chain;
  Format.printf "availability (fully operational): %.6f@." (Core.Measures.availability m);
  Format.printf "availability (some service):      %.6f@."
    (Core.Measures.any_service_availability m);
  List.iter
    (fun t ->
      Format.printf "reliability over %5.0f h: %.6f@." t (Core.Measures.reliability m ~time:t))
    [ 100.; 1000.; 5000. ];

  (* 5. The same numbers through the CSL model-checking interface. *)
  let csl = Core.Measures.to_csl_model m in
  let query q =
    match Csl.Checker.check_string csl q with
    | Csl.Checker.Value v -> Format.printf "%-38s = %.6f@." q v
    | Csl.Checker.Satisfied b -> Format.printf "%-38s = %b@." q b
  in
  query "S=? [ \"operational\" ]";
  query "P=? [ true U<=1000 \"down\" ]";
  query "R{\"cost\"}=? [ S ]";
  query "P>=0.99 [ true U<=100 !\"down\" ]"
