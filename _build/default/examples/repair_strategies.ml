(* Compare repair strategies — including the extensions that go beyond the
   paper (FCFS, explicit priority lists, preemptive scheduling, cold and
   warm spares) — on a small data-centre model.

   The system: one database, two application servers (one needed) and three
   web servers (two needed, the third a cold spare that cannot fail while
   dormant). The system is down when the database is down, both app servers
   are down, or fewer than two web servers are up.

   Run with: dune exec examples/repair_strategies.exe *)

let components =
  [
    Core.Component.make ~name:"db" ~mttf:2000. ~mttr:48. ();
    Core.Component.make ~name:"app1" ~mttf:800. ~mttr:4. ();
    Core.Component.make ~name:"app2" ~mttf:800. ~mttr:4. ();
    Core.Component.make ~name:"web1" ~mttf:500. ~mttr:2. ();
    Core.Component.make ~name:"web2" ~mttf:500. ~mttr:2. ();
    Core.Component.make ~name:"web3" ~mttf:500. ~mttr:2. ();
  ]

let names = [ "db"; "app1"; "app2"; "web1"; "web2"; "web3" ]

let fault_tree =
  Fault_tree.or_
    [
      Fault_tree.basic "db";
      Fault_tree.and_ [ Fault_tree.basic "app1"; Fault_tree.basic "app2" ];
      (* down when at least 2 of the 3 web servers are failed *)
      Fault_tree.kofn 2
        [ Fault_tree.basic "web1"; Fault_tree.basic "web2"; Fault_tree.basic "web3" ];
    ]

let cold_spare_web =
  Core.Spare.make ~name:"web_spare" ~mode:Core.Spare.Cold
    ~primaries:[ "web1"; "web2" ] ~spares:[ "web3" ] ()

let model_with strategy ~crews ~preemptive =
  Core.Model.make ~name:"datacentre" ~components
    ~repair_units:
      [
        Core.Repair.make ~name:"ops" ~strategy ~crews ~preemptive ~components:names ();
      ]
    ~spare_units:[ cold_spare_web ] ~fault_tree ()

let () =
  Format.printf "=== Repair-strategy comparison on a data-centre model ===@.@.";
  Format.printf "  %-22s %-8s %-12s %-12s %-10s@." "strategy" "states" "avail."
    "P(down<=500h)" "cost/h";
  let evaluate label model =
    let m = Core.Measures.analyze model in
    let built = Core.Measures.built m in
    Format.printf "  %-22s %-8d %.8f   %.6f     %.4f@." label
      (Ctmc.Chain.states built.Core.Semantics.chain)
      (Core.Measures.availability m)
      (Core.Measures.unreliability m ~time:500.)
      (Core.Measures.steady_state_cost m)
  in
  evaluate "dedicated" (model_with Core.Repair.Dedicated ~crews:1 ~preemptive:false);
  List.iter
    (fun crews ->
      evaluate
        (Printf.sprintf "fcfs-%d" crews)
        (model_with Core.Repair.Fcfs ~crews ~preemptive:false);
      evaluate
        (Printf.sprintf "frf-%d" crews)
        (model_with Core.Repair.Frf ~crews ~preemptive:false);
      evaluate
        (Printf.sprintf "fff-%d" crews)
        (model_with Core.Repair.Fff ~crews ~preemptive:false))
    [ 1; 2 ];
  (* an explicit priority list: protect the database first, then webs *)
  evaluate "priority(db first)"
    (model_with
       (Core.Repair.Priority [ "db"; "web1"; "web2"; "web3"; "app1"; "app2" ])
       ~crews:1 ~preemptive:false);
  (* preemption: drop the wrench when something more urgent breaks *)
  evaluate "frf-1 preemptive" (model_with Core.Repair.Frf ~crews:1 ~preemptive:true);
  evaluate "priority preemptive"
    (model_with
       (Core.Repair.Priority [ "db"; "web1"; "web2"; "web3"; "app1"; "app2" ])
       ~crews:1 ~preemptive:true);
  Format.printf
    "@.Notes: the cold web spare cannot fail while dormant, so \"dedicated\"@.\
     here is not simply a product of independent components; preemptive@.\
     priority scheduling trades lower downtime for repeated crew switches.@."
