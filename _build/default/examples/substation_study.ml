(* The substation case study: every framework extension in one model (warm
   and cold spares, two failure modes, Erlang repairs, priority
   scheduling).

   Run with: dune exec examples/substation_study.exe *)

let () =
  Substation.summary Format.std_formatter ();
  (* compare the priority order against the paper's strategies *)
  Format.printf "@.strategy comparison:@.";
  List.iter
    (fun (label, strategy, crews) ->
      let m = Core.Measures.analyze (Substation.model_with ~strategy ~crews ()) in
      Format.printf "  %-12s avail = %.6f, cost/h = %.3f@." label
        (Core.Measures.availability m)
        (Core.Measures.steady_state_cost m))
    [
      ("priority-1", Core.Repair.Priority Substation.priority_order, 1);
      ("fcfs-1", Core.Repair.Fcfs, 1);
      ("frf-1", Core.Repair.Frf, 1);
      ("fff-1", Core.Repair.Fff, 1);
      ("frf-2", Core.Repair.Frf, 2);
      ("dedicated", Core.Repair.Dedicated, 1);
    ]
