(* Quantitative survivability (the paper's new measure) on Line 1 of the
   water-treatment facility: after every pump fails at once (Disaster 1),
   how fast is each service level restored, and what does the recovery
   cost under each repair strategy?

   Run with: dune exec examples/survivability_study.exe *)

open Watertreatment

let strategies = [ Facility.ded; Facility.frf 1; Facility.frf 2 ]

let times = [ 0.5; 1.0; 2.0; 3.0; 4.5 ]

let () =
  Format.printf "=== Survivability after Disaster 1 (all Line-1 pumps fail) ===@.@.";
  let analyzed =
    List.map
      (fun cfg ->
        (cfg, Facility.analyze_after_disaster Facility.Line1 cfg
                ~failed:(Facility.disaster1 Facility.Line1)))
      strategies
  in
  (* Service intervals of Line 1: X1 = [1/3, 2/3), X2 = [2/3, 1), X3 = {1}.
     Reaching X_i means restoring service >= its lower bound. *)
  List.iteri
    (fun i (low, _) ->
      Format.printf "Recovery to X%d (service >= %.2f):@." (i + 1) low;
      Format.printf "  %-8s" "t (h)";
      List.iter (fun (cfg, _) -> Format.printf " %-10s" (Facility.config_name cfg)) analyzed;
      Format.printf "@.";
      List.iter
        (fun t ->
          Format.printf "  %-8.2f" t;
          List.iter
            (fun (_, m) ->
              Format.printf " %.7f " (Core.Measures.survivability m ~service_level:low ~time:t))
            analyzed;
          Format.printf "@.")
        times;
      Format.printf "@.")
    (Facility.service_intervals Facility.Line1);

  (* The cost side of the trade-off (paper Figs. 6 and 7). *)
  Format.printf "Instantaneous cost after the disaster:@.";
  Format.printf "  %-8s" "t (h)";
  List.iter (fun (cfg, _) -> Format.printf " %-10s" (Facility.config_name cfg)) analyzed;
  Format.printf "@.";
  List.iter
    (fun t ->
      Format.printf "  %-8.2f" t;
      List.iter
        (fun (_, m) -> Format.printf " %8.4f  " (Core.Measures.instantaneous_cost m ~time:t))
        analyzed;
      Format.printf "@.")
    times;
  Format.printf "@.Accumulated cost up to t:@.";
  List.iter
    (fun t ->
      Format.printf "  %-8.2f" t;
      List.iter
        (fun (_, m) -> Format.printf " %8.4f  " (Core.Measures.accumulated_cost m ~time:t))
        analyzed;
      Format.printf "@.")
    [ 2.; 5.; 10. ];
  Format.printf
    "@.Reading: DED recovers fastest but at the highest cost (idle crews);@.\
     FRF-2 gets within a few percent of DED while accumulating less cost@.\
     than FRF-1 during the recovery — the paper's main practical finding.@."
