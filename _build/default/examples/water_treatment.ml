(* The paper's case study end to end: build both process lines of the
   water-treatment facility, compare the repair strategies on availability,
   and study recovery from Disaster 2 on Line 2.

   Run with: dune exec examples/water_treatment.exe *)

open Watertreatment

let () =
  Format.printf "=== Water-treatment facility (DSN 2010 case study) ===@.@.";

  (* Availability per strategy (the paper's Table 2). *)
  Format.printf "Steady-state availability (fully operational):@.";
  Format.printf "  %-8s %-10s %-10s %-10s@." "strategy" "line 1" "line 2" "combined";
  List.iter
    (fun cfg ->
      let a1 = Core.Measures.availability (Facility.analyze Facility.Line1 cfg) in
      let a2 = Core.Measures.availability (Facility.analyze Facility.Line2 cfg) in
      Format.printf "  %-8s %.7f  %.7f  %.7f@."
        (Facility.config_name cfg) a1 a2
        (Core.Measures.combined_availability [ a1; a2 ]))
    Facility.paper_configs;

  (* Service intervals (Section 5: X1..X3 for Line 1, X1..X4 for Line 2). *)
  Format.printf "@.Service intervals:@.";
  List.iter
    (fun line ->
      Format.printf "  %s: " (Facility.line_name line);
      List.iteri
        (fun i (low, high) ->
          if i > 0 then Format.printf ", ";
          if low = high then Format.printf "X%d = {%.2f}" (i + 1) low
          else Format.printf "X%d = [%.2f, %.2f)" (i + 1) low high)
        (Facility.service_intervals line);
      Format.printf "@.")
    [ Facility.Line1; Facility.Line2 ];

  (* Disaster 2 on Line 2: two pumps, one softener, one sand filter and the
     reservoir are down. How fast does each strategy restore service? *)
  Format.printf "@.Recovery from Disaster 2 (Line 2), service >= 1/3:@.";
  Format.printf "  %-8s %-12s %-12s %-12s@." "strategy" "P(<= 10h)" "P(<= 50h)" "P(<= 100h)";
  let strategies =
    [ Facility.ded; Facility.fff 1; Facility.fff 2; Facility.frf 1; Facility.frf 2 ]
  in
  List.iter
    (fun cfg ->
      let m = Facility.analyze_after_disaster Facility.Line2 cfg ~failed:Facility.disaster2 in
      let p t = Core.Measures.survivability m ~service_level:(1. /. 3.) ~time:t in
      Format.printf "  %-8s %.7f    %.7f    %.7f@." (Facility.config_name cfg)
        (p 10.) (p 50.) (p 100.))
    strategies;

  (* ... and what does the recovery cost? *)
  Format.printf "@.Accumulated repair cost 50 h after Disaster 2 (Line 2):@.";
  List.iter
    (fun cfg ->
      let m = Facility.analyze_after_disaster Facility.Line2 cfg ~failed:Facility.disaster2 in
      Format.printf "  %-8s %8.2f@." (Facility.config_name cfg)
        (Core.Measures.accumulated_cost m ~time:50.))
    strategies;

  Format.printf
    "@.Conclusion (matching the paper): FRF with 2 crews recovers almost as@.\
     fast as dedicated repair at a fraction of the cost; FFF-1 is the worst@.\
     choice after this disaster because it repairs the reservoir last.@."
