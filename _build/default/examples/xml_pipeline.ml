(* The full tool chain of the paper's Fig. 1, in one program:

     Arcade model  ->  XML  ->  (parse)  ->  Arcade model
                                  |-> direct CTMC semantics
                                  |-> PRISM reactive modules -> CTMC

   and a check that the two analysis paths agree exactly — the property the
   paper relies on when swapping CADP for PRISM.

   Run with: dune exec examples/xml_pipeline.exe *)

let () =
  let model = Watertreatment.Facility.line_model Watertreatment.Facility.Line2
                (Watertreatment.Facility.frf 1) in

  (* 1. Serialize to the Arcade XML format and back. *)
  let measures =
    [
      { Core.Xml_io.measure_name = "availability"; query = "S=? [ \"full_service\" ]" };
      { Core.Xml_io.measure_name = "survivability";
        query = "P=? [ true U<=50 \"sl_ge_1\" ]" };
    ]
  in
  let xml = Core.Xml_io.to_xml ~measures model in
  let text = Xml_kit.to_string xml in
  Format.printf "--- Arcade XML (%d bytes) ---@.%s@."
    (String.length text)
    (String.concat "\n"
       (List.filteri (fun i _ -> i < 12) (String.split_on_char '\n' text)));
  Format.printf "... (truncated)@.@.";
  let model', measures' = Core.Xml_io.of_xml (Xml_kit.parse_string text) in
  assert (List.length measures' = 2);

  (* 2. Path A: direct semantics. *)
  let direct = Core.Measures.analyze model' in
  let chain_a = (Core.Measures.built direct).Core.Semantics.chain in

  (* 3. Path B: translate to PRISM, parse, build. *)
  let prism_text = Core.To_prism.to_string model' in
  Format.printf "--- PRISM translation (%d bytes, %d modules) ---@.@."
    (String.length prism_text)
    (List.length (Prism.Parser.parse_model prism_text).Prism.Ast.modules);
  let built = Prism.Builder.build (Prism.Parser.parse_model prism_text) in
  let chain_b = built.Prism.Builder.chain in

  (* 4. The two paths must agree. *)
  Format.printf "direct:  %a@." Ctmc.Chain.pp_stats chain_a;
  Format.printf "prism:   %a@." Ctmc.Chain.pp_stats chain_b;
  assert (Ctmc.Chain.states chain_a = Ctmc.Chain.states chain_b);
  assert (Ctmc.Chain.transition_count chain_a = Ctmc.Chain.transition_count chain_b);

  let avail_direct = Core.Measures.availability direct in
  let csl_b = Csl.Checker.of_built built in
  let avail_prism =
    match Csl.Checker.check_string csl_b "S=? [ \"full_service\" ]" with
    | Csl.Checker.Value v -> v
    | Csl.Checker.Satisfied _ -> assert false
  in
  Format.printf "availability: direct = %.9f, prism = %.9f (|diff| = %.2e)@."
    avail_direct avail_prism
    (Float.abs (avail_direct -. avail_prism));
  assert (Float.abs (avail_direct -. avail_prism) < 1e-9);
  Format.printf "@.The Arcade-XML -> PRISM pipeline agrees with the direct semantics.@."
