lib/core/component.ml: Format List Printf
