lib/core/component.mli: Format
