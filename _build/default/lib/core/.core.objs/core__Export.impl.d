lib/core/export.ml: Array Buffer Component Ctmc Fault_tree Hashtbl List Model Numeric Printf Repair Semantics Spare String To_prism
