lib/core/export.mli: Fault_tree Model Semantics
