lib/core/importance.ml: Array Ctmc Fault_tree Format Hashtbl List Model Printf Semantics
