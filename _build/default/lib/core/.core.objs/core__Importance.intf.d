lib/core/importance.mli: Format Model Semantics
