lib/core/measures.ml: Array Component Csl Ctmc Float List Model Numeric Printf Semantics
