lib/core/measures.mli: Csl Model Semantics
