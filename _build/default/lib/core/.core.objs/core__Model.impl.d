lib/core/model.ml: Component Fault_tree Format Hashtbl List Printf Repair Spare String
