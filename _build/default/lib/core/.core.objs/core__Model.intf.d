lib/core/model.mli: Component Fault_tree Format Repair Spare
