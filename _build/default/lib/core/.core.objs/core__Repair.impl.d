lib/core/repair.ml: Component Format List Printf String
