lib/core/repair.mli: Component Format
