lib/core/semantics.ml: Array Buffer Component Ctmc Fault_tree Hashtbl List Model Numeric Printexc Printf Queue Repair Spare
