lib/core/semantics.mli: Ctmc Model
