lib/core/spare.ml: Format List Printf String
