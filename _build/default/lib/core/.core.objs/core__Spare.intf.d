lib/core/spare.mli: Format
