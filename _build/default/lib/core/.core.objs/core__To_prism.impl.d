lib/core/to_prism.ml: Array Buffer Component Fault_tree Fun Hashtbl List Model Printexc Printf Prism Repair Semantics Spare Stdlib String
