lib/core/to_prism.mli: Model Prism Semantics
