lib/core/xml_io.ml: Component Fault_tree List Model Printexc Printf Repair Spare String Xml_kit
