lib/core/xml_io.mli: Fault_tree Model Xml_kit
