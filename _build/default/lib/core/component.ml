type failure_mode = {
  fm_name : string;
  fm_mttf : float;
  fm_mttr : float;
  fm_failed_cost : float;
  fm_repair_stages : int;
}

type t = {
  name : string;
  mttf : float;
  mttr : float;
  failed_cost : float;
  operational_cost : float;
  repair_stages : int;
  extra_modes : failure_mode list;
}

let failure_mode ?(failed_cost = 3.) ?(repair_stages = 1) ~name ~mttf ~mttr () =
  if name = "" then invalid_arg "Component.failure_mode: empty name";
  if mttf <= 0. then invalid_arg "Component.failure_mode: MTTF must be positive";
  if mttr <= 0. then invalid_arg "Component.failure_mode: MTTR must be positive";
  if failed_cost < 0. then invalid_arg "Component.failure_mode: negative cost";
  if repair_stages < 1 then invalid_arg "Component.failure_mode: stages must be >= 1";
  {
    fm_name = name;
    fm_mttf = mttf;
    fm_mttr = mttr;
    fm_failed_cost = failed_cost;
    fm_repair_stages = repair_stages;
  }

let make ?(failed_cost = 3.) ?(operational_cost = 0.) ?(repair_stages = 1)
    ?(extra_modes = []) ~name ~mttf ~mttr () =
  if name = "" then invalid_arg "Component.make: empty name";
  if mttf <= 0. then invalid_arg "Component.make: MTTF must be positive";
  if mttr <= 0. then invalid_arg "Component.make: MTTR must be positive";
  if failed_cost < 0. || operational_cost < 0. then
    invalid_arg "Component.make: negative cost rate";
  if repair_stages < 1 then
    invalid_arg "Component.make: repair stages must be at least 1";
  let mode_names = "failed" :: List.map (fun m -> m.fm_name) extra_modes in
  let sorted = List.sort compare mode_names in
  let rec adjacent = function
    | a :: (b :: _ as rest) -> a = b || adjacent rest
    | [ _ ] | [] -> false
  in
  if adjacent sorted then invalid_arg "Component.make: duplicate failure-mode names";
  { name; mttf; mttr; failed_cost; operational_cost; repair_stages; extra_modes }

let failure_rate c = 1. /. c.mttf

let repair_rate c = 1. /. c.mttr

let stage_rate c = float_of_int c.repair_stages /. c.mttr

let modes c =
  {
    fm_name = "failed";
    fm_mttf = c.mttf;
    fm_mttr = c.mttr;
    fm_failed_cost = c.failed_cost;
    fm_repair_stages = c.repair_stages;
  }
  :: c.extra_modes

let mode c k =
  match List.nth_opt (modes c) k with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Component.mode: %s has no mode %d" c.name k)

let mode_failure_rate m = 1. /. m.fm_mttf

let mode_stage_rate m = float_of_int m.fm_repair_stages /. m.fm_mttr

let equal a b = a = b

let pp ppf c =
  Format.fprintf ppf "%s (MTTF %g h, MTTR %g h)" c.name c.mttf c.mttr
