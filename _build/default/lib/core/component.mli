(** Arcade basic components.

    A basic component (BC) has one operational mode and one or more failure
    modes (the paper's case study uses the single-mode subclass: "all
    components can only fail in one mode"). Failure and repair delays are
    exponential (or Erlang, see [repair_stages]) with the per-mode means.
    Components carry the cost rates the paper's performability analysis
    uses: a cost per hour while failed (and optionally while operational).

    The component's [mttf]/[mttr]/[failed_cost]/[repair_stages] fields
    describe the {e primary} failure mode (named ["failed"]); additional
    modes — e.g. a "leak" next to a "burst" — go in [extra_modes] and can
    be referenced in fault trees as ["name:mode"]. *)

(** One failure mode of a component. *)
type failure_mode = private {
  fm_name : string;
  fm_mttf : float;
  fm_mttr : float;
  fm_failed_cost : float;
  fm_repair_stages : int;
}

type t = private {
  name : string;
  mttf : float;  (** mean time to failure, hours (primary mode) *)
  mttr : float;  (** mean time to repair, hours (primary mode) *)
  failed_cost : float;  (** cost per hour while failed (primary mode) *)
  operational_cost : float;  (** cost per hour while operational *)
  repair_stages : int;
      (** Erlang stages of the repair-time distribution: 1 (default) gives
          the paper's exponential repairs; [k] gives an Erlang-k repair
          with the same mean [mttr] and coefficient of variation
          [1/sqrt k] — the standard phase-type way to model repairs with
          low variance (scheduled replacements, fixed procedures). *)
  extra_modes : failure_mode list;
      (** further failure modes beyond the primary one (empty by default) *)
}

val failure_mode :
  ?failed_cost:float ->
  ?repair_stages:int ->
  name:string ->
  mttf:float ->
  mttr:float ->
  unit ->
  failure_mode
(** An extra failure mode ([failed_cost] defaults to [3.], [repair_stages]
    to [1]). *)

val make :
  ?failed_cost:float ->
  ?operational_cost:float ->
  ?repair_stages:int ->
  ?extra_modes:failure_mode list ->
  name:string ->
  mttf:float ->
  mttr:float ->
  unit ->
  t
(** [failed_cost] defaults to [3.] and [operational_cost] to [0.] — the
    paper's cost model; [repair_stages] defaults to [1]. Raises
    [Invalid_argument] for non-positive MTTF, MTTR or stage count, or an
    empty name. *)

val stage_rate : t -> float
(** Rate of each Erlang repair stage: [repair_stages / mttr] (primary
    mode). *)

val modes : t -> failure_mode list
(** All failure modes: the primary one (named ["failed"]) followed by
    [extra_modes]. *)

val mode : t -> int -> failure_mode
(** [mode c k] is the [k]-th failure mode (0 = primary). *)

val mode_failure_rate : failure_mode -> float

val mode_stage_rate : failure_mode -> float
(** [fm_repair_stages / fm_mttr]. *)

val failure_rate : t -> float
(** [1 / mttf]. *)

val repair_rate : t -> float
(** [1 / mttr]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
