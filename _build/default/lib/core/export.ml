let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Fault trees *)

let fault_tree_nodes buf tree =
  (* returns the root node id; emits node and edge lines *)
  let counter = ref 0 in
  let fresh prefix =
    incr counter;
    Printf.sprintf "%s_%d" prefix !counter
  in
  let rec go tree =
    match tree with
    | Fault_tree.Basic name ->
        let id = "basic_" ^ To_prism.sanitize name in
        Buffer.add_string buf
          (Printf.sprintf "  %s [shape=circle, label=\"%s\"];\n" id (escape name));
        id
    | Fault_tree.And inputs ->
        let id = fresh "and" in
        Buffer.add_string buf
          (Printf.sprintf "  %s [shape=house, label=\"AND\"];\n" id);
        List.iter
          (fun g -> Buffer.add_string buf (Printf.sprintf "  %s -> %s;\n" id (go g)))
          inputs;
        id
    | Fault_tree.Or inputs ->
        let id = fresh "or" in
        Buffer.add_string buf
          (Printf.sprintf "  %s [shape=invhouse, label=\"OR\"];\n" id);
        List.iter
          (fun g -> Buffer.add_string buf (Printf.sprintf "  %s -> %s;\n" id (go g)))
          inputs;
        id
    | Fault_tree.Kofn (k, inputs) ->
        let id = fresh "kofn" in
        Buffer.add_string buf
          (Printf.sprintf "  %s [shape=hexagon, label=\"%d/%d\"];\n" id k
             (List.length inputs));
        List.iter
          (fun g -> Buffer.add_string buf (Printf.sprintf "  %s -> %s;\n" id (go g)))
          inputs;
        id
  in
  go tree

let fault_tree_to_dot ?(name = "fault_tree") tree =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" (To_prism.sanitize name));
  Buffer.add_string buf "  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n";
  let root = fault_tree_nodes buf tree in
  Buffer.add_string buf
    (Printf.sprintf "  system_down [shape=doubleoctagon, label=\"system down\"];\n\
                    \  system_down -> %s;\n" root);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Architectural view *)

let model_to_dot model =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "digraph %s {\n" (To_prism.sanitize model.Model.name));
  Buffer.add_string buf
    "  rankdir=LR;\n  node [fontname=\"Helvetica\"];\n  compound=true;\n";
  let comp_id name = "comp_" ^ To_prism.sanitize name in
  let in_some_ru = Hashtbl.create 16 in
  List.iteri
    (fun u ru ->
      Buffer.add_string buf
        (Printf.sprintf "  subgraph cluster_ru_%d {\n    label=\"%s (%s, %d crew%s)\";\n"
           u ru.Repair.name
           (Repair.strategy_to_string ru.Repair.strategy)
           (Repair.crew_count ru)
           (if Repair.crew_count ru = 1 then "" else "s"));
      List.iter
        (fun name ->
          Hashtbl.replace in_some_ru name ();
          let c = Model.component model name in
          Buffer.add_string buf
            (Printf.sprintf
               "    %s [shape=box, label=\"%s\\nMTTF %g h, MTTR %g h%s\"];\n"
               (comp_id name) (escape name) c.Component.mttf c.Component.mttr
               (if c.Component.repair_stages > 1 then
                  Printf.sprintf "\\nErlang-%d repair" c.Component.repair_stages
                else "")))
        ru.Repair.components;
      Buffer.add_string buf "  }\n")
    model.Model.repair_units;
  List.iter
    (fun c ->
      let name = c.Component.name in
      if not (Hashtbl.mem in_some_ru name) then
        Buffer.add_string buf
          (Printf.sprintf "  %s [shape=box, label=\"%s\\nMTTF %g h, MTTR %g h\\n(no repair)\"];\n"
             (comp_id name) (escape name) c.Component.mttf c.Component.mttr))
    model.Model.components;
  List.iter
    (fun smu ->
      List.iter
        (fun spare ->
          List.iter
            (fun primary ->
              Buffer.add_string buf
                (Printf.sprintf
                   "  %s -> %s [style=dashed, label=\"%s spare\", dir=back];\n"
                   (comp_id primary) (comp_id spare)
                   (Spare.mode_to_string smu.Spare.mode)))
            smu.Spare.primaries)
        smu.Spare.spares)
    model.Model.spare_units;
  (* attach the fault tree *)
  Buffer.add_string buf "  subgraph cluster_ft {\n    label=\"fault tree\";\n";
  let ft_buf = Buffer.create 256 in
  let root = fault_tree_nodes ft_buf model.Model.fault_tree in
  (* indent the fault-tree lines to sit inside the cluster *)
  String.split_on_char '\n' (Buffer.contents ft_buf)
  |> List.iter (fun line ->
         if line <> "" then Buffer.add_string buf ("  " ^ line ^ "\n"));
  Buffer.add_string buf "  }\n";
  List.iter
    (fun basic ->
      Buffer.add_string buf
        (Printf.sprintf "  basic_%s -> %s [style=dotted];\n"
           (To_prism.sanitize basic) (comp_id basic)))
    (Fault_tree.basics model.Model.fault_tree);
  ignore root;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* State spaces *)

let chain_to_dot ?(max_states = 500) built =
  let chain = built.Semantics.chain in
  let n = Ctmc.Chain.states chain in
  if n > max_states then
    invalid_arg
      (Printf.sprintf "Export.chain_to_dot: %d states exceed the limit of %d" n
         max_states);
  let names = Array.of_list (Model.component_names built.Semantics.model) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph ctmc {\n  rankdir=LR;\n  node [fontname=\"Helvetica\"];\n";
  for s = 0 to n - 1 do
    let st = built.Semantics.states.(s) in
    let failed =
      Array.to_list names
      |> List.filteri (fun i _ -> not st.Semantics.up.(i))
    in
    let label =
      if failed = [] then "all up" else String.concat "," failed
    in
    let level = Semantics.service_level built s in
    (* shade: full service white, no service dark *)
    let grey = 100 - int_of_float (level *. 60.) in
    Buffer.add_string buf
      (Printf.sprintf "  s%d [shape=ellipse, style=filled, fillcolor=\"gray%d\", label=\"%s\"];\n"
         s grey (escape label))
  done;
  Numeric.Sparse.iteri (Ctmc.Chain.rates chain) (fun i j rate ->
      Buffer.add_string buf
        (Printf.sprintf "  s%d -> s%d [label=\"%.4g\"];\n" i j rate));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
