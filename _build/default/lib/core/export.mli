(** Graphviz (DOT) export of models, fault trees and state spaces.

    Produces self-contained [digraph] texts for documentation and debugging:
    render with [dot -Tpdf model.dot -o model.pdf]. *)

val fault_tree_to_dot : ?name:string -> Fault_tree.t -> string
(** Gates as shaped nodes (AND = house, OR = inverted house, K-of-N =
    hexagon labelled [k/n]), basic events as circles. *)

val model_to_dot : Model.t -> string
(** Architectural view: components as boxes annotated with MTTF/MTTR,
    clustered by repair unit (with strategy and crew count in the cluster
    label), spare-management relations as dashed edges, and the fault tree
    attached to its basic events. *)

val chain_to_dot : ?max_states:int -> Semantics.built -> string
(** The explicit CTMC with states labelled by their failed-component sets
    and shaded by quantitative service level; edges carry rates. Raises
    [Invalid_argument] when the chain exceeds [max_states] (default [500])
    — DOT rendering beyond that is unreadable anyway. *)
