type t = {
  name : string;
  components : Component.t list;
  repair_units : Repair.t list;
  spare_units : Spare.t list;
  fault_tree : Fault_tree.t;
}

let validate model =
  let names = List.map (fun c -> c.Component.name) model.components in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then
        invalid_arg (Printf.sprintf "Model: duplicate component %s" n);
      Hashtbl.replace seen n ())
    names;
  let exists n = Hashtbl.mem seen n in
  let repaired = Hashtbl.create 16 in
  List.iter
    (fun ru ->
      List.iter
        (fun c ->
          if not (exists c) then
            invalid_arg
              (Printf.sprintf "Model: repair unit %s references unknown component %s"
                 ru.Repair.name c);
          if Hashtbl.mem repaired c then
            invalid_arg
              (Printf.sprintf "Model: component %s repaired by two units" c);
          Hashtbl.replace repaired c ru.Repair.name)
        ru.Repair.components)
    model.repair_units;
  List.iter
    (fun smu ->
      List.iter
        (fun c ->
          if not (exists c) then
            invalid_arg
              (Printf.sprintf "Model: spare unit %s references unknown component %s"
                 smu.Spare.name c))
        (Spare.members smu))
    model.spare_units;
  let in_spare = Hashtbl.create 16 in
  List.iter
    (fun smu ->
      List.iter
        (fun c ->
          if Hashtbl.mem in_spare c then
            invalid_arg (Printf.sprintf "Model: component %s in two spare units" c);
          Hashtbl.replace in_spare c ())
        (Spare.members smu))
    model.spare_units;
  Fault_tree.validate model.fault_tree;
  let mode_exists comp mode_name =
    match List.find_opt (fun c -> c.Component.name = comp) model.components with
    | None -> false
    | Some c ->
        List.exists (fun m -> m.Component.fm_name = mode_name) (Component.modes c)
  in
  List.iter
    (fun b ->
      match String.index_opt b ':' with
      | None ->
          if not (exists b) then
            invalid_arg
              (Printf.sprintf "Model: fault tree references unknown component %s" b)
      | Some i ->
          let comp = String.sub b 0 i in
          let mode_name = String.sub b (i + 1) (String.length b - i - 1) in
          if not (exists comp) then
            invalid_arg
              (Printf.sprintf "Model: fault tree references unknown component %s" comp);
          if not (mode_exists comp mode_name) then
            invalid_arg
              (Printf.sprintf "Model: component %s has no failure mode %s" comp
                 mode_name))
    (Fault_tree.basics model.fault_tree)

let make ?(repair_units = []) ?(spare_units = []) ~name ~components ~fault_tree () =
  if name = "" then invalid_arg "Model.make: empty name";
  if components = [] then invalid_arg "Model.make: no components";
  let model = { name; components; repair_units; spare_units; fault_tree } in
  validate model;
  model

let split_literal b =
  match String.index_opt b ':' with
  | None -> (b, None)
  | Some i -> (String.sub b 0 i, Some (String.sub b (i + 1) (String.length b - i - 1)))

let component model name =
  List.find (fun c -> c.Component.name = name) model.components

let component_names model = List.map (fun c -> c.Component.name) model.components

let repair_unit_of model name =
  List.find_opt (fun ru -> List.mem name ru.Repair.components) model.repair_units

let spare_unit_of model name =
  List.find_opt (fun smu -> List.mem name (Spare.members smu)) model.spare_units

let service_tree model = Fault_tree.dual model.fault_tree

let service_levels model = Fault_tree.service_levels (service_tree model)

let without_repairs model = { model with repair_units = [] }

let with_repair_units model repair_units =
  let model = { model with repair_units } in
  validate model;
  model

let pp ppf model =
  Format.fprintf ppf "@[<v>model %s@,components:@," model.name;
  List.iter (fun c -> Format.fprintf ppf "  %a@," Component.pp c) model.components;
  if model.repair_units <> [] then begin
    Format.fprintf ppf "repair units:@,";
    List.iter (fun ru -> Format.fprintf ppf "  %a@," Repair.pp ru) model.repair_units
  end;
  if model.spare_units <> [] then begin
    Format.fprintf ppf "spare units:@,";
    List.iter (fun smu -> Format.fprintf ppf "  %a@," Spare.pp smu) model.spare_units
  end;
  Format.fprintf ppf "fault tree: %a@]" Fault_tree.pp model.fault_tree
