(** Arcade architectural models.

    A model assembles basic components, repair units, spare management
    units and a fault tree. A basic event of the fault tree is either a
    component name (["pump1"]: true when the component is failed, in any
    mode) or a component-and-mode reference (["valve:leak"]: true when the
    component is failed in that specific mode). The model is validated on
    construction: component names are unique, every repair unit and spare
    unit references existing components, no component is repaired by two
    units, and the fault tree's basic events resolve. Components not
    covered by any repair unit are simply never repaired (useful for pure
    reliability models). *)

type t = private {
  name : string;
  components : Component.t list;
  repair_units : Repair.t list;
  spare_units : Spare.t list;
  fault_tree : Fault_tree.t;
}

val make :
  ?repair_units:Repair.t list ->
  ?spare_units:Spare.t list ->
  name:string ->
  components:Component.t list ->
  fault_tree:Fault_tree.t ->
  unit ->
  t

val component : t -> string -> Component.t
(** Raises [Not_found]. *)

val split_literal : string -> string * string option
(** Split a fault-tree basic event into component name and optional mode
    name (["valve:leak"] gives [("valve", Some "leak")]). *)

val component_names : t -> string list
(** In declaration order. *)

val repair_unit_of : t -> string -> Repair.t option
(** The unit responsible for a component, if any. *)

val spare_unit_of : t -> string -> Spare.t option

val service_tree : t -> Fault_tree.t
(** The dual of the fault tree, with literals read as "component
    operational" — the paper's quantitative service tree. *)

val service_levels : t -> float list
(** All quantitative service levels the model can be in, ascending
    (including 0 and 1). *)

val without_repairs : t -> t
(** The same model with every repair unit removed — the reliability view
    (failures are permanent). *)

val with_repair_units : t -> Repair.t list -> t
(** Replace the repair organisation (used to compare strategies on one
    architecture). Re-validates. *)

val pp : Format.formatter -> t -> unit
