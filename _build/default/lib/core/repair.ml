type strategy =
  | Dedicated
  | Fcfs
  | Frf
  | Fff
  | Priority of string list

type t = {
  name : string;
  strategy : strategy;
  crews : int;
  components : string list;
  idle_cost : float;
  busy_cost : float;
  preemptive : bool;
}

let has_duplicates names =
  let sorted = List.sort compare names in
  let rec adjacent = function
    | a :: (b :: _ as rest) -> a = b || adjacent rest
    | [ _ ] | [] -> false
  in
  adjacent sorted

let make ?(crews = 1) ?(idle_cost = 1.) ?(busy_cost = 0.) ?(preemptive = false)
    ~name ~strategy ~components () =
  if name = "" then invalid_arg "Repair.make: empty name";
  if components = [] then invalid_arg "Repair.make: no components";
  if has_duplicates components then invalid_arg "Repair.make: duplicate components";
  if crews <= 0 then invalid_arg "Repair.make: crews must be positive";
  if idle_cost < 0. || busy_cost < 0. then invalid_arg "Repair.make: negative cost rate";
  (match strategy with
  | Priority order ->
      if List.sort compare order <> List.sort compare components then
        invalid_arg "Repair.make: priority list must cover exactly the unit's components"
  | Dedicated | Fcfs | Frf | Fff -> ());
  { name; strategy; crews; components; idle_cost; busy_cost; preemptive }

let strategy_to_string = function
  | Dedicated -> "dedicated"
  | Fcfs -> "fcfs"
  | Frf -> "frf"
  | Fff -> "fff"
  | Priority order -> "priority:" ^ String.concat "," order

let strategy_of_string s =
  match String.lowercase_ascii s with
  | "dedicated" | "ded" -> Dedicated
  | "fcfs" -> Fcfs
  | "frf" -> Frf
  | "fff" -> Fff
  | other ->
      (match String.index_opt other ':' with
      | Some i when String.sub other 0 i = "priority" ->
          let rest = String.sub s (i + 1) (String.length s - i - 1) in
          Priority (String.split_on_char ',' rest)
      | _ -> invalid_arg (Printf.sprintf "Repair.strategy_of_string: %S" s))

let crew_count ru =
  match ru.strategy with
  | Dedicated -> List.length ru.components
  | Fcfs | Frf | Fff | Priority _ -> ru.crews

let rank_by_rate ru lookup rate_of name =
  (* rank components by the chosen rate attribute; equal attribute values
     share a rank so FCFS breaks the tie at dispatch time *)
  let values =
    List.sort_uniq compare (List.map (fun c -> rate_of (lookup c)) ru.components)
  in
  let target = rate_of (lookup name) in
  let rec position i = function
    | [] -> invalid_arg "Repair.priority_rank: component not in unit"
    | v :: rest -> if v = target then i else position (i + 1) rest
  in
  position 0 values

let priority_rank ru lookup name =
  if not (List.mem name ru.components) then
    invalid_arg
      (Printf.sprintf "Repair.priority_rank: %s not repaired by unit %s" name ru.name);
  match ru.strategy with
  | Dedicated | Fcfs -> 0
  | Frf -> rank_by_rate ru lookup (fun c -> c.Component.mttr) name
  | Fff -> rank_by_rate ru lookup (fun c -> c.Component.mttf) name
  | Priority order ->
      let rec position i = function
        | [] -> invalid_arg "Repair.priority_rank: component not in priority list"
        | c :: rest -> if c = name then i else position (i + 1) rest
      in
      position 0 order

let pp ppf ru =
  Format.fprintf ppf "%s (%s, %d crew%s%s): %s" ru.name
    (strategy_to_string ru.strategy) (crew_count ru)
    (if crew_count ru = 1 then "" else "s")
    (if ru.preemptive then ", preemptive" else "")
    (String.concat ", " ru.components)
