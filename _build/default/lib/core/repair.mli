(** Arcade repair units.

    A repair unit (RU) owns a set of components and a number of repair
    crews. When more components are failed than crews are available, the
    scheduling strategy picks which failed component is repaired next:

    - {e Dedicated}: one crew per component — every failed component is
      always under repair (the paper's DED reference strategy);
    - {e FCFS}: first come, first served;
    - {e FRF} (fastest repair first): smallest MTTR first;
    - {e FFF} (fastest failure first): smallest MTTF first;
    - {e Priority}: an explicit component order (most urgent first).

    Rate ties under FRF/FFF fall back to FCFS, as in the paper. Scheduling
    is non-preemptive by default: a crew finishes its current repair even if
    a higher-priority component fails meanwhile. The preemptive variant
    (preemptive-resume; with exponential repair times this equals
    preemptive-restart) is available as an extension. *)

type strategy =
  | Dedicated
  | Fcfs
  | Frf
  | Fff
  | Priority of string list  (** explicit order, most urgent first *)

type t = private {
  name : string;
  strategy : strategy;
  crews : int;  (** ignored by [Dedicated] (conceptually one per component) *)
  components : string list;  (** names of the components this RU repairs *)
  idle_cost : float;  (** cost per hour per idle crew *)
  busy_cost : float;  (** cost per hour per busy crew *)
  preemptive : bool;
}

val make :
  ?crews:int ->
  ?idle_cost:float ->
  ?busy_cost:float ->
  ?preemptive:bool ->
  name:string ->
  strategy:strategy ->
  components:string list ->
  unit ->
  t
(** Defaults: [crews = 1], [idle_cost = 1.], [busy_cost = 0.] (the paper's
    cost model), [preemptive = false]. Raises [Invalid_argument] for an
    empty component list, non-positive crew count, duplicate components, or
    a [Priority] list that does not cover exactly the unit's components. *)

val strategy_to_string : strategy -> string

val strategy_of_string : string -> strategy
(** Inverse of {!strategy_to_string} for the non-[Priority] strategies
    ("dedicated", "fcfs", "frf", "fff", case-insensitive); raises
    [Invalid_argument] otherwise. *)

val crew_count : t -> int
(** Effective number of crews: the component count for [Dedicated], the
    configured [crews] otherwise. *)

val priority_rank : t -> (string -> Component.t) -> string -> int
(** [priority_rank ru lookup name] is the static scheduling rank of a
    component (smaller = more urgent): its MTTR order for FRF, MTTF order
    for FFF, position for [Priority]. FCFS and Dedicated rank every
    component equally (rank 0), so arrival order decides. Ties between
    distinct components resolve by the component-list position only at
    dispatch time (FCFS), not here. *)

val pp : Format.formatter -> t -> unit
