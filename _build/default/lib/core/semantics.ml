module Vec = Numeric.Vec
module Sparse = Numeric.Sparse
module Chain = Ctmc.Chain

type state = {
  up : bool array;
  in_repair : int list array;
  queue : int list array;
  stage : int array;
      (* completed Erlang repair stages per component (0 when repair has not
         progressed); only ever non-zero for components with repair_stages
         greater than 1 *)
  failed_mode : int array;
      (* index of the active failure mode per component (0 = the primary
         mode; only meaningful while the component is down) *)
}

type built = {
  model : Model.t;
  chain : Chain.t;
  states : state array;
  component_index : string -> int;
  state_index : state -> int option;
}

exception Build_error of string

let () =
  Printexc.register_printer (function
    | Build_error msg -> Some (Printf.sprintf "Core.Semantics.Build_error (%s)" msg)
    | _ -> None)

let error fmt = Printf.ksprintf (fun msg -> raise (Build_error msg)) fmt

(* Static per-model data precomputed once per build. *)
type ctx = {
  comps : Component.t array;
  modes : Component.failure_mode array array; (* per component *)
  index : (string, int) Hashtbl.t;
  rus : Repair.t array;
  ru_of : int option array; (* repair-unit index per component *)
  rank : int array array;
      (* scheduling rank per component and failure mode (0 when no RU);
         under FRF/FFF the mode determines the repair/failure rate and
         hence the priority *)
  smu_of : Spare.t option array;
}

let make_ctx model =
  let comps = Array.of_list model.Model.components in
  let index = Hashtbl.create (Array.length comps) in
  Array.iteri (fun i c -> Hashtbl.replace index c.Component.name i) comps;
  let modes = Array.map (fun c -> Array.of_list (Component.modes c)) comps in
  let rus = Array.of_list model.Model.repair_units in
  let n = Array.length comps in
  let ru_of = Array.make n None in
  Array.iteri
    (fun u ru ->
      List.iter
        (fun name -> ru_of.(Hashtbl.find index name) <- Some u)
        ru.Repair.components)
    rus;
  (* per-unit rank tables: distinct rate values across every (component,
     mode) pair of the unit, ascending *)
  let rank = Array.init n (fun i -> Array.make (Array.length modes.(i)) 0) in
  Array.iteri
    (fun u ru ->
      let members =
        List.map (fun name -> Hashtbl.find index name) ru.Repair.components
      in
      let value_of i m =
        match ru.Repair.strategy with
        | Repair.Dedicated | Repair.Fcfs -> 0.
        | Repair.Frf -> modes.(i).(m).Component.fm_mttr
        | Repair.Fff -> modes.(i).(m).Component.fm_mttf
        | Repair.Priority order ->
            let rec position p = function
              | [] -> 0.
              | c :: rest ->
                  if c = comps.(i).Component.name then float_of_int p
                  else position (p + 1) rest
            in
            position 0 order
      in
      let values =
        List.sort_uniq compare
          (List.concat_map
             (fun i ->
               List.init (Array.length modes.(i)) (fun m -> value_of i m))
             members)
      in
      let rank_of v =
        let rec position p = function
          | [] -> 0
          | x :: rest -> if x = v then p else position (p + 1) rest
        in
        position 0 values
      in
      List.iter
        (fun i ->
          Array.iteri (fun m _ -> rank.(i).(m) <- rank_of (value_of i m)) modes.(i))
        members;
      ignore u)
    rus;
  let smu_of =
    Array.init n (fun i ->
        Model.spare_unit_of model comps.(i).Component.name)
  in
  { comps; modes; index; rus; ru_of; rank; smu_of }

(* the scheduling rank of a failed component in a given state *)
let current_rank ctx state i = ctx.rank.(i).(state.failed_mode.(i))

let component_count ctx = Array.length ctx.comps

(* Failure-rate multiplier of component [i] in a state: 1 unless the
   component is a dormant member of a spare unit. *)
let failure_factor ctx state i =
  match ctx.smu_of.(i) with
  | None -> 1.
  | Some smu ->
      let up name = state.up.(Hashtbl.find ctx.index name) in
      let assignments = Spare.active_set smu ~up in
      let name = ctx.comps.(i).Component.name in
      let active = try List.assoc name assignments with Not_found -> false in
      if active then 1. else Spare.dormancy_factor smu

let is_dedicated ru = ru.Repair.strategy = Repair.Dedicated

(* The set of components a unit is currently repairing. *)
let repairing ctx state u =
  let ru = ctx.rus.(u) in
  if is_dedicated ru then
    List.filter_map
      (fun name ->
        let i = Hashtbl.find ctx.index name in
        if state.up.(i) then None else Some i)
      ru.Repair.components
  else if ru.Repair.preemptive then begin
    (* the canonical queue is rank-sorted with FCFS inside each class, so
       the crews work on its prefix *)
    let rec take k = function
      | [] -> []
      | i :: rest -> if k = 0 then [] else i :: take (k - 1) rest
    in
    take ru.Repair.crews state.queue.(u)
  end
  else state.in_repair.(u)

(* Pick the most urgent waiting component: the canonical queue's head
   (minimal rank, earliest arrival within its rank class). *)
let pick_next queue =
  match queue with [] -> None | chosen :: rest -> Some (chosen, rest)

(* Queues are kept in canonical form: stably sorted by scheduling rank.
   Dispatch only ever takes the queue head (minimal rank, earliest arrival
   within its rank class), so two states whose queues differ only in the
   interleaving of different rank classes are bisimilar; canonicalizing at
   insertion collapses them and shrinks the state space by orders of
   magnitude on models with many rate classes. *)
let enqueue ctx state queue i =
  let rank = current_rank ctx state i in
  let rec go = function
    | [] -> [ i ]
    | x :: rest as full ->
        if current_rank ctx state x > rank then i :: full else x :: go rest
  in
  go queue

let insert_sorted i l =
  let rec go = function
    | [] -> [ i ]
    | x :: rest as full -> if i < x then i :: full else x :: go rest
  in
  go l

let copy_state state =
  {
    up = Array.copy state.up;
    in_repair = Array.copy state.in_repair;
    queue = Array.copy state.queue;
    stage = Array.copy state.stage;
    failed_mode = Array.copy state.failed_mode;
  }

(* Transitions out of a state: (rate, successor) list. *)
let successors ctx state =
  let n = component_count ctx in
  let out = ref [] in
  (* failures: one transition per failure mode *)
  for i = 0 to n - 1 do
    if state.up.(i) then begin
      let factor = failure_factor ctx state i in
      if factor > 0. then
        Array.iteri
          (fun m fm ->
            let rate = Component.mode_failure_rate fm *. factor in
            let s' = copy_state state in
            s'.up.(i) <- false;
            s'.failed_mode.(i) <- m;
            (match ctx.ru_of.(i) with
            | None -> ()
            | Some u ->
                let ru = ctx.rus.(u) in
                if is_dedicated ru then ()
                else if ru.Repair.preemptive then
                  s'.queue.(u) <- enqueue ctx s' s'.queue.(u) i
                else if List.length s'.in_repair.(u) < ru.Repair.crews then
                  s'.in_repair.(u) <- insert_sorted i s'.in_repair.(u)
                else s'.queue.(u) <- enqueue ctx s' s'.queue.(u) i);
            out := (rate, s') :: !out)
          ctx.modes.(i)
    end
  done;
  (* repair progress and completions. Repairs are Erlang-[k] distributed:
     each of the [k] stages completes at rate [k / mttr]; the state tracks
     the completed-stage count, so an interrupted repair resumes where it
     stopped (preemptive-resume; for k = 1 this is the memoryless case). *)
  Array.iteri
    (fun u ru ->
      List.iter
        (fun i ->
          let fm = ctx.modes.(i).(state.failed_mode.(i)) in
          let stages = fm.Component.fm_repair_stages in
          let rate = Component.mode_stage_rate fm in
          if state.stage.(i) < stages - 1 then begin
            (* an intermediate stage completes *)
            let s' = copy_state state in
            s'.stage.(i) <- s'.stage.(i) + 1;
            out := (rate, s') :: !out
          end
          else begin
            (* the final stage completes: the component is repaired *)
            let s' = copy_state state in
            s'.up.(i) <- true;
            s'.stage.(i) <- 0;
            s'.failed_mode.(i) <- 0;
            if is_dedicated ru then ()
            else if ru.Repair.preemptive then
              s'.queue.(u) <- List.filter (fun j -> j <> i) s'.queue.(u)
            else begin
              s'.in_repair.(u) <- List.filter (fun j -> j <> i) s'.in_repair.(u);
              let rec dispatch () =
                if List.length s'.in_repair.(u) < ru.Repair.crews then
                  match pick_next s'.queue.(u) with
                  | None -> ()
                  | Some (chosen, rest) ->
                      s'.in_repair.(u) <- insert_sorted chosen s'.in_repair.(u);
                      s'.queue.(u) <- rest;
                      dispatch ()
              in
              dispatch ()
            end;
            out := (rate, s') :: !out
          end)
        (repairing ctx state u))
    ctx.rus;
  !out

(* Canonical string encoding of a state, used as the hash key (the default
   polymorphic hash only inspects a bounded prefix of the structure, which
   would degenerate on large state vectors). *)
let encode state =
  let buf = Buffer.create 64 in
  Array.iter (fun b -> Buffer.add_char buf (if b then '1' else '0')) state.up;
  Array.iter
    (fun l ->
      Buffer.add_char buf '|';
      List.iter
        (fun i ->
          Buffer.add_string buf (string_of_int i);
          Buffer.add_char buf ',')
        l)
    state.in_repair;
  Array.iter
    (fun l ->
      Buffer.add_char buf '/';
      List.iter
        (fun i ->
          Buffer.add_string buf (string_of_int i);
          Buffer.add_char buf ',')
        l)
    state.queue;
  Array.iter
    (fun k ->
      if k > 0 then begin
        Buffer.add_char buf '.';
        Buffer.add_string buf (string_of_int k)
      end
      else Buffer.add_char buf '-')
    state.stage;
  Array.iter
    (fun m ->
      if m > 0 then begin
        Buffer.add_char buf 'm';
        Buffer.add_string buf (string_of_int m)
      end)
    state.failed_mode;
  Buffer.contents buf

let all_up_state model =
  let n = List.length model.Model.components in
  let nru = List.length model.Model.repair_units in
  {
    up = Array.make n true;
    in_repair = Array.make nru [];
    queue = Array.make nru [];
    stage = Array.make n 0;
    failed_mode = Array.make n 0;
  }

let disaster_state model ~failed =
  let ctx = make_ctx model in
  let n = component_count ctx in
  let state = all_up_state model in
  List.iter
    (fun literal ->
      let name, mode_name = Model.split_literal literal in
      match Hashtbl.find_opt ctx.index name with
      | Some i ->
          state.up.(i) <- false;
          (match mode_name with
          | None -> state.failed_mode.(i) <- 0
          | Some mn ->
              let rec position m = function
                | [] -> error "disaster_state: %s has no failure mode %s" name mn
                | fm :: rest ->
                    if fm.Component.fm_name = mn then m else position (m + 1) rest
              in
              state.failed_mode.(i) <- position 0 (Array.to_list ctx.modes.(i)))
      | None -> error "disaster_state: unknown component %s" name)
    failed;
  (* queue construction per unit: failed members ordered by (rank, model
     order); crews dispatched to the head *)
  Array.iteri
    (fun u ru ->
      if not (is_dedicated ru) then begin
        let failed_members = ref [] in
        for i = n - 1 downto 0 do
          if (not state.up.(i)) && ctx.ru_of.(i) = Some u then
            failed_members := i :: !failed_members
        done;
        let ordered =
          List.stable_sort
            (fun a b -> compare (current_rank ctx state a) (current_rank ctx state b))
            !failed_members
        in
        if ru.Repair.preemptive then state.queue.(u) <- ordered
        else begin
          let rec split k = function
            | [] -> ([], [])
            | x :: rest ->
                if k = 0 then ([], x :: rest)
                else
                  let taken, waiting = split (k - 1) rest in
                  (x :: taken, waiting)
          in
          let taken, waiting = split ru.Repair.crews ordered in
          state.in_repair.(u) <- List.sort compare taken;
          state.queue.(u) <- waiting
        end
      end)
    ctx.rus;
  state

let build ?(max_states = 5_000_000) ?initial model =
  let ctx = make_ctx model in
  let initial = match initial with Some s -> s | None -> all_up_state model in
  if Array.length initial.up <> component_count ctx then
    error "build: initial state has wrong component count";
  let table : (string, int) Hashtbl.t = Hashtbl.create 4096 in
  let states_rev = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  let intern s =
    let key = encode s in
    match Hashtbl.find_opt table key with
    | Some i -> i
    | None ->
        let i = !count in
        if i >= max_states then error "state space exceeds max_states = %d" max_states;
        Hashtbl.replace table key i;
        states_rev := s :: !states_rev;
        incr count;
        Queue.add (s, i) queue;
        i
  in
  ignore (intern initial);
  let transitions = ref [] in
  while not (Queue.is_empty queue) do
    let s, i = Queue.pop queue in
    List.iter
      (fun (rate, s') ->
        let j = intern s' in
        if i <> j then transitions := (i, j, rate) :: !transitions)
      (successors ctx s)
  done;
  let n = !count in
  let states = Array.make n initial in
  List.iteri (fun k s -> states.(n - 1 - k) <- s) !states_rev;
  let b = Sparse.Builder.create ~rows:n ~cols:n in
  List.iter (fun (i, j, r) -> Sparse.Builder.add b i j r) !transitions;
  let chain = Chain.make ~init:(Vec.unit n 0) (Sparse.Builder.to_csr b) in
  {
    model;
    chain;
    states;
    component_index =
      (fun name ->
        match Hashtbl.find_opt ctx.index name with
        | Some i -> i
        | None -> error "unknown component %s" name);
    state_index = (fun s -> Hashtbl.find_opt table (encode s));
  }

let component_up built s name =
  built.states.(s).up.(built.component_index name)

(* fault-tree literal evaluation: "c" is true when the component is failed
   in any mode; "c:m" when it is failed in that specific mode *)
let literal_pred built literal =
  let name, mode_name = Model.split_literal literal in
  let i = built.component_index name in
  match mode_name with
  | None -> fun s -> not built.states.(s).up.(i)
  | Some mn ->
      let comp = Model.component built.model name in
      let rec position m = function
        | [] -> Build_error (Printf.sprintf "unknown failure mode %s:%s" name mn) |> raise
        | fm :: rest -> if fm.Component.fm_name = mn then m else position (m + 1) rest
      in
      let mode_index = position 0 (Component.modes comp) in
      fun s ->
        let st = built.states.(s) in
        (not st.up.(i)) && st.failed_mode.(i) = mode_index

let truth_of_state built s =
  fun literal -> literal_pred built literal s

let down_pred built s = Fault_tree.eval built.model.Model.fault_tree (truth_of_state built s)

let operational_pred built s = not (down_pred built s)

let service_level built s =
  let tree = Model.service_tree built.model in
  let truth = truth_of_state built s in
  Fault_tree.eval_quantitative tree (fun literal -> if truth literal then 0. else 1.)

let service_at_least built x =
  fun s -> service_level built s >= x -. 1e-9

let under_repair built s =
  let ctx = make_ctx built.model in
  let state = built.states.(s) in
  List.concat (List.init (Array.length ctx.rus) (fun u -> repairing ctx state u))

(* Cost structures. The context is rebuilt per call; these run once per
   analysis, over every state, so we inline the loop. *)
let cost_structures built =
  let ctx = make_ctx built.model in
  let n = Array.length built.states in
  let comp_cost = Vec.zeros n in
  let ru_cost = Vec.zeros n in
  for s = 0 to n - 1 do
    let state = built.states.(s) in
    Array.iteri
      (fun i c ->
        comp_cost.(s) <-
          comp_cost.(s)
          +.
          if state.up.(i) then c.Component.operational_cost
          else ctx.modes.(i).(state.failed_mode.(i)).Component.fm_failed_cost)
      ctx.comps;
    Array.iteri
      (fun u ru ->
        let busy = List.length (repairing ctx state u) in
        let idle = Repair.crew_count ru - busy in
        ru_cost.(s) <-
          ru_cost.(s)
          +. (float_of_int busy *. ru.Repair.busy_cost)
          +. (float_of_int idle *. ru.Repair.idle_cost))
      ctx.rus
  done;
  (comp_cost, ru_cost)

let component_cost_structure built = fst (cost_structures built)

let repair_cost_structure built = snd (cost_structures built)

let cost_structure built =
  let comp, ru = cost_structures built in
  Vec.add comp ru
