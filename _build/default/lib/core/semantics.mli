(** Operational semantics: from an Arcade model to an explicit CTMC.

    The global state tracks, per component, whether it is operational, and,
    per repair unit, which components are under repair and which wait in
    the arrival queue. Failures never occur simultaneously (CTMC), matching
    the paper's prerequisite for the PRISM translation. Scheduling follows
    {!Repair}: a failed component goes straight to a free crew, otherwise
    it queues; on completion the strategy picks the most urgent waiting
    component (rate priority, ties FCFS). Dedicated units repair every
    failed component immediately. Preemptive units re-evaluate the assigned
    set after every event (preemptive-resume; memoryless repairs make this
    equal to preemptive-restart).

    Spare management units modulate failure rates: dormant spares fail at
    the dormancy-scaled rate (hot = full, warm = scaled, cold = never). *)

type state = {
  up : bool array;  (** per component, indexed like the model's list *)
  in_repair : int list array;
      (** per repair unit (model order), sorted component indices under
          repair; unused (always empty) for dedicated and preemptive units *)
  queue : int list array;
      (** per repair unit, waiting components in arrival order; for
          preemptive units this holds {e all} failed components *)
  stage : int array;
      (** per component, the number of completed Erlang repair stages (0
          unless the component's [repair_stages] exceeds 1 and its repair
          has progressed); an interrupted repair keeps its progress
          (preemptive-resume) *)
  failed_mode : int array;
      (** per component, the index of the active failure mode (0 = the
          primary mode; only meaningful while the component is down).
          Under FRF/FFF the mode's rates determine the scheduling
          priority. *)
}

type built = {
  model : Model.t;
  chain : Ctmc.Chain.t;
  states : state array;
  component_index : string -> int;
  state_index : state -> int option;
}

exception Build_error of string

val all_up_state : Model.t -> state
(** The fully operational state (empty queues). *)

val disaster_state : Model.t -> failed:string list -> state
(** The paper's GOOD construction: the given components start failed; since
    the failure order is unknown, each unit's queue is ordered by the
    strategy's own component priority (ties: model declaration order), and
    crews are already dispatched to the most urgent components. Entries may
    be component names (["pump1"], primary mode) or mode references
    (["valve:leak"]). *)

val build : ?max_states:int -> ?initial:state -> Model.t -> built
(** Explore the reachable state space from [initial] (default
    {!all_up_state}) and build the CTMC (initial distribution: point mass
    on [initial]). [max_states] defaults to [5_000_000]. *)

(** {2 Per-state observations} *)

val component_up : built -> int -> string -> bool
(** [component_up b s name]: is the component operational in state [s]? *)

val literal_pred : built -> string -> int -> bool
(** Evaluate a fault-tree basic event (["c"] — failed in any mode — or
    ["c:mode"]) in a state. *)

val down_pred : built -> int -> bool
(** Fault-tree evaluation: true when the system is down in the state. *)

val operational_pred : built -> int -> bool
(** Negation of {!down_pred}. *)

val service_level : built -> int -> float
(** Quantitative service-tree evaluation in a state. *)

val service_at_least : built -> float -> int -> bool
(** [service_at_least b x]: predicate for the paper's [S_sl(x)] sets
    (service level >= x, with a 1e-9 tolerance). *)

val under_repair : built -> int -> int list
(** Component indices under repair in a state (across all units, including
    dedicated ones). *)

val cost_structure : built -> Ctmc.Rewards.structure
(** The paper's cost model per state: component costs (failed / operational
    rates) plus, per repair unit, idle crews times idle cost and busy crews
    times busy cost. *)

val component_cost_structure : built -> Ctmc.Rewards.structure

val repair_cost_structure : built -> Ctmc.Rewards.structure
