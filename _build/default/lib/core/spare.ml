type mode = Hot | Warm of float | Cold

type t = {
  name : string;
  primaries : string list;
  spares : string list;
  mode : mode;
}

let make ~name ~mode ~primaries ~spares () =
  if name = "" then invalid_arg "Spare.make: empty name";
  if primaries = [] then invalid_arg "Spare.make: no primaries";
  List.iter
    (fun s ->
      if List.mem s primaries then
        invalid_arg (Printf.sprintf "Spare.make: %s is both primary and spare" s))
    spares;
  (match mode with
  | Warm f when f <= 0. || f >= 1. ->
      invalid_arg "Spare.make: warm dormancy factor must be in (0, 1)"
  | Warm _ | Hot | Cold -> ());
  { name; primaries; spares; mode }

let members smu = smu.primaries @ smu.spares

let active_set smu ~up =
  let needed = List.length smu.primaries in
  let _, assigned =
    List.fold_left
      (fun (active_count, acc) c ->
        if up c && active_count < needed then (active_count + 1, (c, true) :: acc)
        else (active_count, (c, false) :: acc))
      (0, [])
      (members smu)
  in
  List.rev assigned

let dormancy_factor smu =
  match smu.mode with Hot -> 1. | Warm f -> f | Cold -> 0.

let mode_to_string = function
  | Hot -> "hot"
  | Warm f -> Printf.sprintf "warm:%g" f
  | Cold -> "cold"

let mode_of_string s =
  match String.lowercase_ascii s with
  | "hot" -> Hot
  | "cold" -> Cold
  | other ->
      (match String.index_opt other ':' with
      | Some i when String.sub other 0 i = "warm" ->
          let rest = String.sub other (i + 1) (String.length other - i - 1) in
          (match float_of_string_opt rest with
          | Some f -> Warm f
          | None -> invalid_arg (Printf.sprintf "Spare.mode_of_string: %S" s))
      | _ -> invalid_arg (Printf.sprintf "Spare.mode_of_string: %S" s))

let pp ppf smu =
  Format.fprintf ppf "%s (%s): %s + spares %s" smu.name
    (mode_to_string smu.mode)
    (String.concat ", " smu.primaries)
    (String.concat ", " smu.spares)
