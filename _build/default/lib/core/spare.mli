(** Arcade spare management units.

    A spare management unit (SMU) watches a group of components: the
    [primaries] should be running; the [spares] are activated (in list
    order) whenever fewer than [List.length primaries] group members are
    operational. Dormant (deactivated) spares fail at a reduced rate
    depending on the spare mode:

    - {e Hot}: full failure rate even when dormant (the water-treatment
      pumps: the "+1" pump adds plain redundancy);
    - {e Warm f}: failure rate scaled by the dormancy factor [f] in (0, 1);
    - {e Cold}: cannot fail while dormant.

    Activation and deactivation are instantaneous and deterministic
    (primaries first, then spares in order), so the SMU adds no state of
    its own — it only modulates failure rates. *)

type mode = Hot | Warm of float | Cold

type t = private {
  name : string;
  primaries : string list;
  spares : string list;
  mode : mode;
}

val make :
  name:string -> mode:mode -> primaries:string list -> spares:string list -> unit -> t
(** Raises [Invalid_argument] on empty name, empty primaries, overlap
    between primaries and spares, or a warm factor outside (0, 1). *)

val members : t -> string list
(** Primaries followed by spares. *)

val active_set : t -> up:(string -> bool) -> (string * bool) list
(** [(component, active)] for every member under the deterministic
    activation policy: the first [length primaries] operational members (in
    primaries-then-spares order) are active; every failed member counts as
    inactive. *)

val dormancy_factor : t -> float
(** 1 for hot, the factor for warm, 0 for cold. *)

val mode_to_string : mode -> string

val mode_of_string : string -> mode

val pp : Format.formatter -> t -> unit
