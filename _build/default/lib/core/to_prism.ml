open Prism.Ast

exception Untranslatable of string

let () =
  Printexc.register_printer (function
    | Untranslatable msg -> Some (Printf.sprintf "Core.To_prism.Untranslatable (%s)" msg)
    | _ -> None)

let fail fmt = Printf.ksprintf (fun msg -> raise (Untranslatable msg)) fmt

let sanitize name =
  let buf = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
      then Buffer.add_char buf c
      else Buffer.add_char buf '_')
    name;
  let s = Buffer.contents buf in
  if s = "" then "x"
  else if s.[0] >= '0' && s.[0] <= '9' then "c_" ^ s
  else s

(* Expression helpers *)
let int_ i = Int_lit i
let real r = Real_lit r
let var name = Var name
let ( ==. ) a b = Binop (Eq, a, b)
let ( <>. ) a b = Binop (Neq, a, b)
let ( <. ) a b = Binop (Lt, a, b)
let ( >=. ) a b = Binop (Ge, a, b)
let ( &&. ) a b = Binop (And, a, b)
let ( +. ) a b = Binop (Add, a, b)
let ( -. ) a b = Binop (Sub, a, b)
let ( *. ) a b = Binop (Mul, a, b)
let ( /. ) a b = Binop (Div, a, b)
let ite c a b = Ite (c, a, b)

let conj = function
  | [] -> Bool_lit true
  | e :: rest -> List.fold_left ( &&. ) e rest

let sum = function
  | [] -> Int_lit 0
  | e :: rest -> List.fold_left ( +. ) e rest

(* Per-component naming *)
let v_st name = sanitize name ^ "_st"
let v_up name = sanitize name ^ "_up"
let f_failed name = sanitize name ^ "_failed"
let v_q name = sanitize name ^ "_q"
let v_done name = sanitize name ^ "_done"

type comp_kind =
  | Queued of int (* repair-unit index *)
  | Boolean (* dedicated or unrepaired: a single up/down bool *)

type ctx = {
  model : Model.t;
  comps : Component.t array;
  index : (string, int) Hashtbl.t;
  rus : Repair.t array;
  kind : comp_kind array;
  rank : int array;
  class_members : (int * int, string list) Hashtbl.t; (* (ru, rank) -> names *)
}

let make_ctx model =
  let comps = Array.of_list model.Model.components in
  let index = Hashtbl.create (Array.length comps) in
  Array.iteri (fun i c -> Hashtbl.replace index c.Component.name i) comps;
  let rus = Array.of_list model.Model.repair_units in
  let kind = Array.make (Array.length comps) Boolean in
  Array.iteri
    (fun u ru ->
      if ru.Repair.preemptive then
        fail "repair unit %s is preemptive; only the direct semantics supports preemption"
          ru.Repair.name;
      if ru.Repair.strategy <> Repair.Dedicated then
        List.iter
          (fun name -> kind.(Hashtbl.find index name) <- Queued u)
          ru.Repair.components)
    rus;
  List.iter
    (fun smu ->
      match smu.Spare.mode with
      | Spare.Hot -> ()
      | Spare.Warm _ | Spare.Cold ->
          fail "spare unit %s is not hot; only the direct semantics supports dormancy"
            smu.Spare.name)
    model.Model.spare_units;
  Array.iter
    (fun c ->
      if c.Component.extra_modes <> [] then
        fail
          "component %s has multiple failure modes; only the direct semantics supports \
           them"
          c.Component.name)
    comps;
  let lookup name = comps.(Hashtbl.find index name) in
  let rank =
    Array.init (Array.length comps) (fun i ->
        match Model.repair_unit_of model comps.(i).Component.name with
        | None -> 0
        | Some ru -> Repair.priority_rank ru lookup comps.(i).Component.name)
  in
  let class_members = Hashtbl.create 16 in
  Array.iteri
    (fun u ru ->
      if ru.Repair.strategy <> Repair.Dedicated then
        List.iter
          (fun name ->
            let r = rank.(Hashtbl.find index name) in
            let cur = try Hashtbl.find class_members (u, r) with Not_found -> [] in
            Hashtbl.replace class_members (u, r) (cur @ [ name ]))
          ru.Repair.components)
    rus;
  { model; comps; index; rus; kind; rank; class_members }

let failed_expr ctx name =
  match ctx.kind.(Hashtbl.find ctx.index name) with
  | Queued _ -> var (v_st name) <>. int_ 0
  | Boolean -> Unop (Not, var (v_up name))

(* formulas <c>_failed, used by labels and rewards *)
let failed_formulas ctx =
  Array.to_list ctx.comps
  |> List.map (fun c ->
         let name = c.Component.name in
         { formula_name = f_failed name; formula_body = failed_expr ctx name })

let busy_formula_name ru = sanitize ru.Repair.name ^ "_busy"

let busy_expr ctx u =
  let ru = ctx.rus.(u) in
  sum
    (List.map
       (fun name -> ite (var (v_st name) ==. int_ 2) (int_ 1) (int_ 0))
       ru.Repair.components)

let waiting_in_class_expr ctx u r =
  let members = try Hashtbl.find ctx.class_members (u, r) with Not_found -> [] in
  sum (List.map (fun name -> ite (var (v_st name) ==. int_ 1) (int_ 1) (int_ 0)) members)

(* no waiting component in any class more urgent than [r] *)
let no_more_urgent_waiting ctx u r =
  let classes =
    Hashtbl.fold (fun (u', r') _ acc -> if u' = u && r' < r then r' :: acc else acc)
      ctx.class_members []
  in
  conj
    (List.concat_map
       (fun r' ->
         let members = Hashtbl.find ctx.class_members (u, r') in
         List.map (fun name -> var (v_st name) <>. int_ 1) members)
       (List.sort_uniq compare classes))

let no_waiting_at_all ctx u =
  let ru = ctx.rus.(u) in
  conj (List.map (fun name -> var (v_st name) <>. int_ 1) ru.Repair.components)

(* queue-position shift within [k]'s class when [k] is dispatched *)
let shift_updates ctx u k =
  let r = ctx.rank.(Hashtbl.find ctx.index k) in
  let members = Hashtbl.find ctx.class_members (u, r) in
  List.filter_map
    (fun m ->
      if m = k then None
      else
        Some
          (v_q m, ite (var (v_st m) ==. int_ 1) (var (v_q m) -. int_ 1) (var (v_q m))))
    members

(* The spare-induced failure-rate factor is 1 for hot spares (checked in
   make_ctx), so failure commands use the plain rate. *)
let failure_rate_expr c = real (Component.failure_rate c)

let repair_rate_expr c = real (Component.repair_rate c)

(* Initial variable values from a Semantics.state *)
type init_values = {
  st0 : string -> int;
  q0 : string -> int;
  up0 : string -> bool;
  done0 : string -> int;
}

let initial_values ctx initial =
  match initial with
  | None ->
      {
        st0 = (fun _ -> 0);
        q0 = (fun _ -> 0);
        up0 = (fun _ -> true);
        done0 = (fun _ -> 0);
      }
  | Some state ->
      let idx name = Hashtbl.find ctx.index name in
      let up0 name = state.Semantics.up.(idx name) in
      let st0 name =
        let i = idx name in
        match ctx.kind.(i) with
        | Boolean -> 0
        | Queued u ->
            if state.Semantics.up.(i) then 0
            else if List.mem i state.Semantics.in_repair.(u) then 2
            else 1
      in
      let q0 name =
        let i = idx name in
        match ctx.kind.(i) with
        | Boolean -> 0
        | Queued u ->
            if st0 name <> 1 then 0
            else begin
              (* FCFS position within the component's rank class *)
              let r = ctx.rank.(i) in
              let same_class =
                List.filter (fun j -> ctx.rank.(j) = r) state.Semantics.queue.(u)
              in
              let rec position p = function
                | [] -> fail "initial state: %s not in its unit's queue" name
                | j :: rest -> if j = i then p else position (p + 1) rest
              in
              position 1 same_class
            end
      in
      let done0 name = state.Semantics.stage.(idx name) in
      { st0; q0; up0; done0 }

let queued_module ctx init u =
  let ru = ctx.rus.(u) in
  let crews = ru.Repair.crews in
  let comp name = ctx.comps.(Hashtbl.find ctx.index name) in
  let class_size name =
    let r = ctx.rank.(Hashtbl.find ctx.index name) in
    List.length (Hashtbl.find ctx.class_members (u, r))
  in
  let vars =
    List.concat_map
      (fun name ->
        let stages = (comp name).Component.repair_stages in
        [
          {
            var_name = v_st name;
            var_type = Tint_range (int_ 0, int_ 2);
            var_init = Some (int_ (init.st0 name));
          };
          {
            var_name = v_q name;
            var_type = Tint_range (int_ 0, int_ (class_size name));
            var_init = Some (int_ (init.q0 name));
          };
        ]
        @
        if stages > 1 then
          [
            {
              var_name = v_done name;
              var_type = Tint_range (int_ 0, int_ (stages - 1));
              var_init = Some (int_ (init.done0 name));
            };
          ]
        else [])
      ru.Repair.components
  in
  let busy = var (busy_formula_name ru) in
  let commands =
    List.concat_map
      (fun name ->
        let c = comp name in
        let r = ctx.rank.(Hashtbl.find ctx.index name) in
        let fail_free =
          {
            action = None;
            guard = (var (v_st name) ==. int_ 0) &&. (busy <. int_ crews);
            alternatives =
              [ { weight = failure_rate_expr c; update = [ (v_st name, int_ 2) ] } ];
          }
        in
        let fail_queue =
          {
            action = None;
            guard = (var (v_st name) ==. int_ 0) &&. (busy >=. int_ crews);
            alternatives =
              [
                {
                  weight = failure_rate_expr c;
                  update =
                    [
                      (v_st name, int_ 1);
                      (v_q name, waiting_in_class_expr ctx u r +. int_ 1);
                    ];
                };
              ];
          }
        in
        let stages = c.Component.repair_stages in
        (* guard conjunct and update for Erlang repair stages: the final
           stage may only complete once the earlier ones have *)
        let final_stage_guard g =
          if stages > 1 then g &&. (var (v_done name) ==. int_ (stages - 1)) else g
        in
        let reset_done upd = if stages > 1 then (v_done name, int_ 0) :: upd else upd in
        let advance_stage =
          if stages > 1 then
            [
              {
                action = None;
                guard =
                  (var (v_st name) ==. int_ 2)
                  &&. (var (v_done name) <. int_ (stages - 1));
                alternatives =
                  [
                    {
                      weight = real (Component.stage_rate c);
                      update = [ (v_done name, var (v_done name) +. int_ 1) ];
                    };
                  ];
              };
            ]
          else []
        in
        let complete_idle =
          {
            action = None;
            guard =
              final_stage_guard
                ((var (v_st name) ==. int_ 2) &&. no_waiting_at_all ctx u);
            alternatives =
              [
                {
                  weight = real (Component.stage_rate c);
                  update = reset_done [ (v_st name, int_ 0) ];
                };
              ];
          }
        in
        let complete_dispatch =
          List.filter_map
            (fun next ->
              if next = name then None
              else
                let rn = ctx.rank.(Hashtbl.find ctx.index next) in
                Some
                  {
                    action = None;
                    guard =
                      final_stage_guard
                        ((var (v_st name) ==. int_ 2)
                        &&. (var (v_st next) ==. int_ 1)
                        &&. (var (v_q next) ==. int_ 1)
                        &&. no_more_urgent_waiting ctx u rn);
                    alternatives =
                      [
                        {
                          weight = real (Component.stage_rate c);
                          update =
                            reset_done
                              ([
                                 (v_st name, int_ 0);
                                 (v_st next, int_ 2);
                                 (v_q next, int_ 0);
                               ]
                              @ shift_updates ctx u next);
                        };
                      ];
                  })
            ru.Repair.components
        in
        (fail_free :: fail_queue :: complete_idle :: (advance_stage @ complete_dispatch)))
      ru.Repair.components
  in
  {
    mod_name = sanitize ru.Repair.name;
    mod_vars = vars;
    mod_commands = commands;
  }

let boolean_module ctx init i =
  let c = ctx.comps.(i) in
  let name = c.Component.name in
  let repaired =
    match Model.repair_unit_of ctx.model name with
    | Some ru -> ru.Repair.strategy = Repair.Dedicated
    | None -> false
  in
  let fail_cmd =
    {
      action = None;
      guard = var (v_up name);
      alternatives =
        [ { weight = failure_rate_expr c; update = [ (v_up name, Bool_lit false) ] } ];
    }
  in
  let stages = c.Component.repair_stages in
  let stage_vars =
    if repaired && stages > 1 then
      [
        {
          var_name = v_done name;
          var_type = Tint_range (int_ 0, int_ (stages - 1));
          var_init = Some (int_ (init.done0 name));
        };
      ]
    else []
  in
  let repair_cmds =
    if stages = 1 then
      [
        {
          action = None;
          guard = Unop (Not, var (v_up name));
          alternatives =
            [ { weight = repair_rate_expr c; update = [ (v_up name, Bool_lit true) ] } ];
        };
      ]
    else
      [
        {
          action = None;
          guard =
            Binop (And, Unop (Not, var (v_up name)),
                   var (v_done name) <. int_ (stages - 1));
          alternatives =
            [
              {
                weight = real (Component.stage_rate c);
                update = [ (v_done name, var (v_done name) +. int_ 1) ];
              };
            ];
        };
        {
          action = None;
          guard =
            Binop (And, Unop (Not, var (v_up name)),
                   var (v_done name) ==. int_ (stages - 1));
          alternatives =
            [
              {
                weight = real (Component.stage_rate c);
                update = [ (v_up name, Bool_lit true); (v_done name, int_ 0) ];
              };
            ];
        };
      ]
  in
  {
    mod_name = sanitize name;
    mod_vars =
      {
        var_name = v_up name;
        var_type = Tbool;
        var_init = Some (Bool_lit (init.up0 name));
      }
      :: stage_vars;
    mod_commands = (if repaired then fail_cmd :: repair_cmds else [ fail_cmd ]);
  }

(* quantitative service tree as arithmetic over failed predicates *)
let rec service_expr tree =
  match tree with
  | Fault_tree.Basic name -> ite (var (f_failed name)) (real 0.) (real 1.)
  | Fault_tree.And inputs -> Call ("min", List.map service_expr inputs)
  | Fault_tree.Or inputs ->
      sum (List.map service_expr inputs) /. int_ (List.length inputs)
  | Fault_tree.Kofn (k, inputs) ->
      Call ("min", [ real 1.; sum (List.map service_expr inputs) /. int_ k ])

let rec fault_expr tree =
  match tree with
  | Fault_tree.Basic name -> var (f_failed name)
  | Fault_tree.And inputs -> conj (List.map fault_expr inputs)
  | Fault_tree.Or inputs -> (
      match List.map fault_expr inputs with
      | [] -> Bool_lit false
      | e :: rest -> List.fold_left (fun a b -> Binop (Or, a, b)) e rest)
  | Fault_tree.Kofn (k, inputs) ->
      sum (List.map (fun g -> ite (fault_expr g) (int_ 1) (int_ 0)) inputs) >=. int_ k

let translate ?initial model =
  let ctx = make_ctx model in
  let init = initial_values ctx initial in
  let modules =
    List.concat
      [
        List.filter_map
          (fun u ->
            if ctx.rus.(u).Repair.strategy = Repair.Dedicated then None
            else Some (queued_module ctx init u))
          (List.init (Array.length ctx.rus) Fun.id);
        List.filter_map
          (fun i ->
            match ctx.kind.(i) with
            | Boolean -> Some (boolean_module ctx init i)
            | Queued _ -> None)
          (List.init (Array.length ctx.comps) Fun.id);
      ]
  in
  let busy_formulas =
    List.filter_map
      (fun u ->
        let ru = ctx.rus.(u) in
        if ru.Repair.strategy = Repair.Dedicated then
          Some
            {
              formula_name = busy_formula_name ru;
              formula_body =
                sum
                  (List.map
                     (fun name -> ite (var (f_failed name)) (int_ 1) (int_ 0))
                     ru.Repair.components);
            }
        else
          Some { formula_name = busy_formula_name ru; formula_body = busy_expr ctx u })
      (List.init (Array.length ctx.rus) Fun.id)
  in
  let service_tree = Model.service_tree model in
  let levels = Model.service_levels model in
  let service_formula =
    { formula_name = "service_level"; formula_body = service_expr service_tree }
  in
  let labels =
    [
      { label_name = "down"; label_body = fault_expr model.Model.fault_tree };
      {
        label_name = "operational";
        label_body = Unop (Not, fault_expr model.Model.fault_tree);
      };
      {
        label_name = "full_service";
        label_body = var "service_level" >=. real 0.999999999;
      };
    ]
    @ List.mapi
        (fun k level ->
          {
            label_name = Printf.sprintf "sl_ge_%d" k;
            label_body = var "service_level" >=. real (Stdlib.( -. ) level 1e-9);
          })
        levels
  in
  let component_items =
    List.concat_map
      (fun c ->
        let name = c.Component.name in
        List.concat
          [
            (if c.Component.failed_cost > 0. then
               [
                 {
                   reward_guard = var (f_failed name);
                   reward_value = real c.Component.failed_cost;
                 };
               ]
             else []);
            (if c.Component.operational_cost > 0. then
               [
                 {
                   reward_guard = Unop (Not, var (f_failed name));
                   reward_value = real c.Component.operational_cost;
                 };
               ]
             else []);
          ])
      (Array.to_list ctx.comps)
  in
  let repair_items =
    List.map
      (fun ru ->
        let crews = Repair.crew_count ru in
        let busy = var (busy_formula_name ru) in
        {
          reward_guard = Bool_lit true;
          reward_value =
            ((int_ crews -. busy) *. real ru.Repair.idle_cost)
            +. (busy *. real ru.Repair.busy_cost);
        })
      (Array.to_list ctx.rus)
  in
  {
    constants = [];
    formulas = failed_formulas ctx @ busy_formulas @ [ service_formula ];
    labels;
    modules;
    rewards =
      [
        { rewards_name = Some "cost"; rewards_items = component_items @ repair_items };
        { rewards_name = Some "component_cost"; rewards_items = component_items };
        { rewards_name = Some "repair_cost"; rewards_items = repair_items };
      ];
  }

let to_string ?initial model =
  Prism.Printer.model_to_string (translate ?initial model)
