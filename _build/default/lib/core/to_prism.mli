(** Translation from Arcade models to PRISM reactive modules (the paper's
    tool chain, Fig. 1).

    The translation emits one PRISM module per repair unit (holding the
    state of every component the unit repairs) plus one module per
    dedicated-or-unrepaired component. Queue-based strategies are encoded
    with, per component, a status variable [<c>_st] (0 = up, 1 = waiting,
    2 = in repair) and a queue-position variable [<c>_q] counting the
    component's FCFS position {e within its rate-priority class} — the same
    canonical encoding {!Semantics} uses, so the two paths produce CTMCs
    with identical state counts and measures (cf. the paper's remark that
    the I/O-IMC and PRISM translations agree on this model class).

    Also generated: [label "down"], [label "operational"],
    [label "full_service"], one [label "sl_ge_<k>"] per service level (the
    quantitative service tree is translated to nested [min] / average /
    threshold arithmetic), and reward structures ["cost"],
    ["component_cost"], ["repair_cost"] following the paper's cost model.

    Restrictions: preemptive repair units are not translated (use the
    direct {!Semantics} path), and cold/warm spares require the dormancy
    semantics of {!Semantics} (hot spares translate exactly). *)

exception Untranslatable of string

val translate : ?initial:Semantics.state -> Model.t -> Prism.Ast.model
(** [initial] roots the generated model at a specific (e.g. disaster)
    state; default is all-up. Raises {!Untranslatable} for preemptive
    units or non-hot spares. *)

val to_string : ?initial:Semantics.state -> Model.t -> string
(** {!translate} followed by {!Prism.Printer.model_to_string}: a model file
    the real PRISM tool can load. *)

val sanitize : string -> string
(** Component name to PRISM identifier (non-alphanumeric characters become
    underscores; a leading digit gets a prefix). *)
