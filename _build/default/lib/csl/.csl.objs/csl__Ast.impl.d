lib/csl/ast.ml: Format Printf Prism
