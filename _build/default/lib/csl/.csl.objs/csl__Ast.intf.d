lib/csl/ast.mli: Format Prism
