lib/csl/checker.ml: Array Ast Ctmc Float List Numeric Parser Printexc Printf Prism
