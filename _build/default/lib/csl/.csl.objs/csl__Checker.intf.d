lib/csl/checker.mli: Ast Ctmc Numeric Prism
