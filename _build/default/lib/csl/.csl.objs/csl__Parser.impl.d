lib/csl/parser.ml: Ast Printexc Printf Prism String
