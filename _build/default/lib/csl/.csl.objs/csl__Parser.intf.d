lib/csl/parser.mli: Ast
