type comparison = Lt | Le | Gt | Ge

type bound =
  | Query
  | Bounded of comparison * float

type interval =
  | Unbounded
  | Upto of float
  | Within of float * float

type state_formula =
  | True
  | False
  | Label of string
  | Atomic of Prism.Ast.expr
  | Not of state_formula
  | And of state_formula * state_formula
  | Or of state_formula * state_formula
  | Implies of state_formula * state_formula
  | P of bound * path_formula
  | S of bound * state_formula
  | R of string option * bound * reward_query

and path_formula =
  | Next of interval * state_formula
  | Until of state_formula * interval * state_formula
  | Eventually of interval * state_formula
  | Globally of interval * state_formula

and reward_query =
  | Instantaneous of float
  | Cumulative of float
  | Steady

let comparison_to_string = function
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let bound_to_string = function
  | Query -> "=?"
  | Bounded (cmp, p) -> Printf.sprintf "%s%g" (comparison_to_string cmp) p

let interval_to_string = function
  | Unbounded -> ""
  | Upto t -> Printf.sprintf "<=%g" t
  | Within (a, b) -> Printf.sprintf "[%g,%g]" a b

let rec to_string = function
  | True -> "true"
  | False -> "false"
  | Label name -> Printf.sprintf "%S" name
  | Atomic e -> Printf.sprintf "(%s)" (Prism.Printer.expr_to_string e)
  | Not f -> Printf.sprintf "!%s" (to_string_atomic f)
  | And (a, b) -> Printf.sprintf "%s & %s" (to_string_atomic a) (to_string_atomic b)
  | Or (a, b) -> Printf.sprintf "%s | %s" (to_string_atomic a) (to_string_atomic b)
  | Implies (a, b) -> Printf.sprintf "%s => %s" (to_string_atomic a) (to_string_atomic b)
  | P (bound, path) -> Printf.sprintf "P%s [ %s ]" (bound_to_string bound) (path_to_string path)
  | S (bound, f) -> Printf.sprintf "S%s [ %s ]" (bound_to_string bound) (to_string f)
  | R (None, bound, q) ->
      Printf.sprintf "R%s [ %s ]" (bound_to_string bound) (reward_query_to_string q)
  | R (Some name, bound, q) ->
      Printf.sprintf "R{\"%s\"}%s [ %s ]" name (bound_to_string bound)
        (reward_query_to_string q)

and to_string_atomic f =
  match f with
  | True | False | Label _ | Atomic _ | Not _ | P _ | S _ | R _ -> to_string f
  | And _ | Or _ | Implies _ -> Printf.sprintf "(%s)" (to_string f)

and path_to_string = function
  | Next (i, f) -> Printf.sprintf "X%s %s" (interval_to_string i) (to_string_atomic f)
  | Until (a, i, b) ->
      Printf.sprintf "%s U%s %s" (to_string_atomic a) (interval_to_string i)
        (to_string_atomic b)
  | Eventually (i, f) -> Printf.sprintf "F%s %s" (interval_to_string i) (to_string_atomic f)
  | Globally (i, f) -> Printf.sprintf "G%s %s" (interval_to_string i) (to_string_atomic f)

and reward_query_to_string = function
  | Instantaneous t -> Printf.sprintf "I=%g" t
  | Cumulative t -> Printf.sprintf "C<=%g" t
  | Steady -> "S"

let pp ppf f = Format.pp_print_string ppf (to_string f)
