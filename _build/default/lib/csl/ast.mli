(** Abstract syntax of CSL / CSRL queries.

    Covers the fragment the paper's measures need (and a bit more): boolean
    state formulas over labels and atomic PRISM expressions, the
    probabilistic operator [P] with next / (time-bounded) until / eventually
    / globally path formulas, the steady-state operator [S], and CSRL's
    reward operator [R] with instantaneous ([I=t]), cumulative ([C<=t]) and
    steady-state ([S]) forms. Each of [P], [S], [R] either carries a
    probability/value bound (usable as a nested state formula) or is a
    top-level query ([=?]). *)

type comparison = Lt | Le | Gt | Ge

type bound =
  | Query  (** [=?] *)
  | Bounded of comparison * float  (** e.g. [>= 0.99] *)

type interval =
  | Unbounded
  | Upto of float  (** [<= t] *)
  | Within of float * float  (** [[a,b]] *)

type state_formula =
  | True
  | False
  | Label of string  (** ["name"]: a label defined in the model *)
  | Atomic of Prism.Ast.expr  (** a boolean expression over state variables *)
  | Not of state_formula
  | And of state_formula * state_formula
  | Or of state_formula * state_formula
  | Implies of state_formula * state_formula
  | P of bound * path_formula
  | S of bound * state_formula
  | R of string option * bound * reward_query
      (** reward-structure name (None = the model's unnamed structure) *)

and path_formula =
  | Next of interval * state_formula
      (** [X phi], [X<=t phi], [X[a,b] phi]: the first jump lands in a
          [phi] state and happens within the interval *)
  | Until of state_formula * interval * state_formula
  | Eventually of interval * state_formula
  | Globally of interval * state_formula

and reward_query =
  | Instantaneous of float  (** [I=t] *)
  | Cumulative of float  (** [C<=t] *)
  | Steady  (** [S] *)

val pp : Format.formatter -> state_formula -> unit

val to_string : state_formula -> string
