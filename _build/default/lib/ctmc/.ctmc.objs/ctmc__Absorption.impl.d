lib/ctmc/absorption.ml: Array Chain Numeric Reachability
