lib/ctmc/absorption.mli: Chain Numeric
