lib/ctmc/chain.ml: Array Float Format List Numeric Printf
