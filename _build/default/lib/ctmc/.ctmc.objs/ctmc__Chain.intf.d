lib/ctmc/chain.mli: Format Numeric
