lib/ctmc/lumping.ml: Array Chain Float Hashtbl List Numeric Printf String
