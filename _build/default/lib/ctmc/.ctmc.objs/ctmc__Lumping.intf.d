lib/ctmc/lumping.mli: Chain Numeric
