lib/ctmc/reachability.ml: Array Chain List Numeric Transient
