lib/ctmc/reachability.mli: Chain Numeric
