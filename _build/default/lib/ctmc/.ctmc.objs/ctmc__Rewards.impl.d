lib/ctmc/rewards.ml: Array Chain List Numeric Steady_state Transient
