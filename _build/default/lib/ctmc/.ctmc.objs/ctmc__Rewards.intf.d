lib/ctmc/rewards.mli: Chain Numeric
