lib/ctmc/simulate.ml: Array Chain Float List Numeric
