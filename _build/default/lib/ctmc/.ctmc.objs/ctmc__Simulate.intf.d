lib/ctmc/simulate.mli: Chain Numeric
