lib/ctmc/steady_state.ml: Array Chain Float Hashtbl List Numeric Reachability
