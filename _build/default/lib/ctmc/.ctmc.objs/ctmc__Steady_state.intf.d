lib/ctmc/steady_state.mli: Chain Numeric
