lib/ctmc/transient.ml: Array Chain List Numeric
