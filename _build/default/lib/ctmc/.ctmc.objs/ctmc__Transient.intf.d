lib/ctmc/transient.mli: Chain Numeric
