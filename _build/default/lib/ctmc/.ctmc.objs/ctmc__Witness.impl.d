lib/ctmc/witness.ml: Array Chain Float Format List Numeric Set
