lib/ctmc/witness.mli: Chain Format
