module Sparse = Numeric.Sparse
module Vec = Numeric.Vec

type t = {
  n : int;
  rates : Sparse.t;
  exit : Vec.t;
  init : Vec.t;
}

let validate_rates rates =
  let n = Sparse.rows rates in
  if Sparse.cols rates <> n then invalid_arg "Chain.make: rate matrix not square";
  Sparse.iteri rates (fun i j x ->
      if x < 0. then
        invalid_arg
          (Printf.sprintf "Chain.make: negative rate %g at (%d,%d)" x i j);
      if i = j && x <> 0. then
        invalid_arg
          (Printf.sprintf "Chain.make: non-zero diagonal entry at state %d" i));
  n

let make ?init rates =
  let n = validate_rates rates in
  if n = 0 then invalid_arg "Chain.make: empty chain";
  let init =
    match init with
    | None -> Vec.unit n 0
    | Some v ->
        if Vec.dim v <> n then invalid_arg "Chain.make: init dimension mismatch";
        if not (Vec.is_distribution ~eps:1e-6 v) then
          invalid_arg "Chain.make: init is not a probability distribution";
        Vec.copy v
  in
  { n; rates; exit = Sparse.row_sums rates; init }

let of_transitions ?init ~states transitions =
  let b = Sparse.Builder.create ~rows:states ~cols:states in
  List.iter (fun (i, j, r) -> Sparse.Builder.add b i j r) transitions;
  make ?init (Sparse.Builder.to_csr b)

let states m = m.n

let rates m = m.rates

let rate m i j = Sparse.get m.rates i j

let exit_rates m = m.exit

let initial m = m.init

let with_init m init =
  if Vec.dim init <> m.n then invalid_arg "Chain.with_init: dimension mismatch";
  if not (Vec.is_distribution ~eps:1e-6 init) then
    invalid_arg "Chain.with_init: not a probability distribution";
  { m with init = Vec.copy init }

let with_point_init m s =
  if s < 0 || s >= m.n then invalid_arg "Chain.with_point_init: bad state";
  { m with init = Vec.unit m.n s }

let generator m =
  let b = Sparse.Builder.create ~rows:m.n ~cols:m.n in
  Sparse.iteri m.rates (fun i j x -> Sparse.Builder.add b i j x);
  for i = 0 to m.n - 1 do
    if m.exit.(i) <> 0. then Sparse.Builder.add b i i (-.m.exit.(i))
  done;
  Sparse.Builder.to_csr b

let transition_count m = Sparse.nnz m.rates

let uniformization_rate m =
  let max_exit = Vec.max_entry m.exit in
  Float.max 1e-10 (max_exit *. 1.02)

let uniformized ?lambda m =
  let lambda =
    match lambda with
    | Some l ->
        if l < Vec.max_entry m.exit then
          invalid_arg "Chain.uniformized: lambda below max exit rate";
        l
    | None -> uniformization_rate m
  in
  let b = Sparse.Builder.create ~rows:m.n ~cols:m.n in
  Sparse.iteri m.rates (fun i j x -> Sparse.Builder.add b i j (x /. lambda));
  for i = 0 to m.n - 1 do
    let self = 1. -. (m.exit.(i) /. lambda) in
    if self <> 0. then Sparse.Builder.add b i i self
  done;
  (lambda, Sparse.Builder.to_csr b)

let embedded m =
  let b = Sparse.Builder.create ~rows:m.n ~cols:m.n in
  Sparse.iteri m.rates (fun i j x -> Sparse.Builder.add b i j (x /. m.exit.(i)));
  for i = 0 to m.n - 1 do
    if m.exit.(i) = 0. then Sparse.Builder.add b i i 1.
  done;
  Sparse.Builder.to_csr b

let absorbing m ~pred =
  let b = Sparse.Builder.create ~rows:m.n ~cols:m.n in
  Sparse.iteri m.rates (fun i j x -> if not (pred i) then Sparse.Builder.add b i j x);
  let rates = Sparse.Builder.to_csr b in
  { m with rates; exit = Sparse.row_sums rates }

let restrict_reachable m =
  let g = Numeric.Digraph.of_sparse m.rates in
  let seeds = ref [] in
  Array.iteri (fun s p -> if p > 0. then seeds := s :: !seeds) m.init;
  let keep = Numeric.Digraph.reachable g !seeds in
  let new_of_old = Array.make m.n (-1) in
  let old_of_new = ref [] and count = ref 0 in
  for s = 0 to m.n - 1 do
    if keep.(s) then begin
      new_of_old.(s) <- !count;
      old_of_new := s :: !old_of_new;
      incr count
    end
  done;
  let old_of_new = Array.of_list (List.rev !old_of_new) in
  let n' = !count in
  let b = Sparse.Builder.create ~rows:n' ~cols:n' in
  Sparse.iteri m.rates (fun i j x ->
      if keep.(i) && keep.(j) then Sparse.Builder.add b new_of_old.(i) new_of_old.(j) x);
  let init = Vec.zeros n' in
  Array.iteri (fun s p -> if keep.(s) then init.(new_of_old.(s)) <- p) m.init;
  (make ~init (Sparse.Builder.to_csr b), old_of_new)

let pp_stats ppf m =
  Format.fprintf ppf "ctmc: %d states, %d transitions, max exit rate %g" m.n
    (transition_count m)
    (Vec.max_entry m.exit)
