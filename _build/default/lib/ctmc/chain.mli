(** Continuous-time Markov chains.

    A CTMC is stored as its off-diagonal rate matrix [R] (entry [(i, j)] is
    the transition rate from state [i] to state [j], [i <> j]) together with
    an initial distribution. Exit rates and the generator diagonal are
    derived. All analysis modules ({!Transient}, {!Reachability},
    {!Steady_state}, {!Rewards}, {!Lumping}, {!Simulate}) operate on this
    representation. *)

type t

val make : ?init:Numeric.Vec.t -> Numeric.Sparse.t -> t
(** [make ?init rates] builds a CTMC from an off-diagonal rate matrix.
    Raises [Invalid_argument] if the matrix is not square, has a negative
    entry, has a non-zero diagonal entry, or if [init] is not a probability
    distribution of the right dimension. [init] defaults to the point
    distribution on state 0. *)

val of_transitions :
  ?init:Numeric.Vec.t -> states:int -> (int * int * float) list -> t
(** Convenience constructor from a transition list; duplicate transitions
    between the same pair of states have their rates summed. *)

val states : t -> int

val rates : t -> Numeric.Sparse.t
(** The off-diagonal rate matrix. *)

val rate : t -> int -> int -> float
(** [rate m i j] is the transition rate from [i] to [j] ([i <> j]). *)

val exit_rates : t -> Numeric.Vec.t

val initial : t -> Numeric.Vec.t

val with_init : t -> Numeric.Vec.t -> t

val with_point_init : t -> int -> t

val generator : t -> Numeric.Sparse.t
(** The infinitesimal generator [Q = R - diag(exit)]. *)

val transition_count : t -> int
(** Number of (off-diagonal) transitions. *)

val uniformization_rate : t -> float
(** A rate [lambda >= max exit rate] suitable for uniformization (slightly
    inflated to keep the self-loop probability of the fastest state positive,
    which guarantees aperiodicity of the uniformized DTMC). At least 1e-10,
    so absorbing-only chains still uniformize. *)

val uniformized : ?lambda:float -> t -> float * Numeric.Sparse.t
(** [uniformized m] is [(lambda, P)] with [P = I + Q/lambda] the uniformized
    stochastic matrix (diagonal included). *)

val embedded : t -> Numeric.Sparse.t
(** The embedded jump matrix: [P(i, j) = R(i, j) / exit(i)] for non-absorbing
    [i]; absorbing states get a self-loop with probability 1. *)

val absorbing : t -> pred:(int -> bool) -> t
(** [absorbing m ~pred] removes all outgoing transitions of states satisfying
    [pred] (they become absorbing). The initial distribution is kept. *)

val restrict_reachable : t -> t * int array
(** Drop states unreachable from the support of the initial distribution.
    Returns the restricted chain and the map from new indices to old. *)

val pp_stats : Format.formatter -> t -> unit
(** One-line summary: states, transitions, max exit rate. *)
