module Vec = Numeric.Vec
module Sparse = Numeric.Sparse

type result = {
  block_of : int array;
  blocks : int list array;
  quotient : Chain.t;
}

let partition_by_key n key =
  let table = Hashtbl.create 16 in
  let next = ref 0 in
  Array.init n (fun s ->
      let k = key s in
      match Hashtbl.find_opt table k with
      | Some b -> b
      | None ->
          let b = !next in
          incr next;
          Hashtbl.replace table k b;
          b)

let block_members block_of n_blocks =
  let blocks = Array.make n_blocks [] in
  Array.iteri (fun s b -> blocks.(b) <- s :: blocks.(b)) block_of;
  blocks

(* One refinement sweep: recompute each state's signature — the multiset of
   (target block, total rate) pairs — and split blocks whose states disagree.
   Rates are compared with a relative tolerance by rounding to a grid.
   Returns the new partition and whether anything changed. *)
let refine_once ~tol m block_of n_blocks =
  let n = Chain.states m in
  let signature s =
    let per_block = Hashtbl.create 8 in
    Sparse.iter_row (Chain.rates m) s (fun j r ->
        let b = block_of.(j) in
        let cur = try Hashtbl.find per_block b with Not_found -> 0. in
        Hashtbl.replace per_block b (cur +. r));
    let entries =
      Hashtbl.fold
        (fun b r acc ->
          (* skip the state's own block: strong lumpability constrains rates
             into other blocks only *)
          if b = block_of.(s) || r = 0. then acc else (b, r) :: acc)
        per_block []
    in
    let entries = List.sort compare entries in
    String.concat ";"
      (List.map
         (fun (b, r) ->
           (* round the rate to [tol] relative precision so float noise does
              not split blocks *)
           let scale = 10. ** Float.round (Float.log10 (Float.max (Float.abs r) 1e-300)) in
           let quantum = scale *. tol in
           Printf.sprintf "%d:%.0f" b (r /. quantum))
         entries)
  in
  let new_block = Array.make n (-1) in
  let next = ref 0 in
  let by_old = Hashtbl.create n_blocks in
  for s = 0 to n - 1 do
    let key = (block_of.(s), signature s) in
    match Hashtbl.find_opt by_old key with
    | Some b -> new_block.(s) <- b
    | None ->
        new_block.(s) <- !next;
        Hashtbl.replace by_old key !next;
        incr next
  done;
  (new_block, !next, !next <> n_blocks)

let lump ?(rate_tolerance = 1e-9) m ~initial =
  let n = Chain.states m in
  if Array.length initial <> n then invalid_arg "Lumping.lump: partition size";
  let n_blocks0 = Array.fold_left max (-1) initial + 1 in
  Array.iter
    (fun b -> if b < 0 || b >= n_blocks0 then invalid_arg "Lumping.lump: block ids not dense")
    initial;
  let rec fixpoint block_of n_blocks =
    let block_of', n_blocks', changed =
      refine_once ~tol:rate_tolerance m block_of n_blocks
    in
    if changed then fixpoint block_of' n_blocks' else (block_of, n_blocks)
  in
  let block_of, n_blocks = fixpoint (Array.copy initial) n_blocks0 in
  let blocks = block_members block_of n_blocks in
  (* quotient rates: take any member as representative *)
  let b = Sparse.Builder.create ~rows:n_blocks ~cols:n_blocks in
  Array.iteri
    (fun blk members ->
      match members with
      | [] -> ()
      | rep :: _ ->
          let per_block = Hashtbl.create 8 in
          Sparse.iter_row (Chain.rates m) rep (fun j r ->
              let tb = block_of.(j) in
              if tb <> blk then begin
                let cur = try Hashtbl.find per_block tb with Not_found -> 0. in
                Hashtbl.replace per_block tb (cur +. r)
              end);
          Hashtbl.iter (fun tb r -> Sparse.Builder.add b blk tb r) per_block)
    blocks;
  let init = Vec.zeros n_blocks in
  Array.iteri (fun s p -> init.(block_of.(s)) <- init.(block_of.(s)) +. p) (Chain.initial m);
  let quotient = Chain.make ~init (Sparse.Builder.to_csr b) in
  { block_of; blocks; quotient }

let lift r v =
  let n = Array.length r.block_of in
  if Vec.dim v <> Array.length r.blocks then invalid_arg "Lumping.lift: dimension";
  Array.init n (fun s -> v.(r.block_of.(s)))

let project r v =
  let nb = Array.length r.blocks in
  if Vec.dim v <> Array.length r.block_of then invalid_arg "Lumping.project: dimension";
  let out = Vec.zeros nb in
  Array.iteri (fun s x -> out.(r.block_of.(s)) <- out.(r.block_of.(s)) +. x) v;
  out
