(** Strong (ordinary) lumpability: CTMC state-space minimization.

    Partition refinement: starting from a caller-supplied partition (states
    that must stay distinguishable, e.g. because they carry different labels
    or rewards), blocks are split until every state in a block has the same
    total rate into every other block. The quotient chain then preserves all
    transient and steady-state measures of block-constant predicates — the
    minimization the Arcade paper names as future work. *)

type result = {
  block_of : int array; (** block index of each original state *)
  blocks : int list array; (** members of each block *)
  quotient : Chain.t; (** lumped chain; state [b] represents block [b] *)
}

val partition_by_key : int -> (int -> string) -> int array
(** [partition_by_key n key] groups states [0..n-1] by [key]; returns the
    block index per state (dense, starting at 0). *)

val lump : ?rate_tolerance:float -> Chain.t -> initial:int array -> result
(** [lump m ~initial] refines [initial] to the coarsest strongly lumpable
    partition and builds the quotient. [initial.(s)] is the block of state
    [s]; blocks must be numbered densely from 0. The quotient's initial
    distribution aggregates the original one. [rate_tolerance] (default
    [1e-9]) is the relative tolerance when comparing block rates. *)

val lift : result -> Numeric.Vec.t -> Numeric.Vec.t
(** [lift r v] expands a per-block vector to a per-original-state vector. *)

val project : result -> Numeric.Vec.t -> Numeric.Vec.t
(** [project r v] sums a per-original-state vector to a per-block vector. *)
