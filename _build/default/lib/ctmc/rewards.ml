module Vec = Numeric.Vec
module Sparse = Numeric.Sparse
module Fox_glynn = Numeric.Fox_glynn

type structure = Vec.t

let check_reward m reward =
  if Vec.dim reward <> Chain.states m then
    invalid_arg "Rewards: reward structure dimension mismatch"

let instantaneous ?epsilon m ~reward ~at =
  check_reward m reward;
  let pi = Transient.distribution ?epsilon m at in
  Vec.dot pi reward

let instantaneous_curve ?epsilon m ~reward ~times =
  check_reward m reward;
  let points = Transient.curve ?epsilon m ~times in
  List.map (fun (t, pi) -> (t, Vec.dot pi reward)) points

(* E[int_0^t rho(X_u) du] from start distribution [start]:
     sum_{k>=0} (1/lambda) * P(N_{lambda t} >= k+1) * (v_k . rho)
   where v_0 = start, v_{k+1} = v_k P. Terms with k below the Fox-Glynn
   window have tail probability ~1; terms beyond it ~0. *)
let accumulated_from ?epsilon m start ~reward t =
  if t < 0. then invalid_arg "Rewards.accumulated: negative time";
  if t = 0. then 0.
  else begin
    let lambda, p = Chain.uniformized m in
    let weights = Fox_glynn.compute ?epsilon (lambda *. t) in
    let tail = Fox_glynn.cumulative_tail weights in
    let { Fox_glynn.left; right; _ } = weights in
    let tail_ge k =
      (* P(N >= k) within the truncated window *)
      if k <= left then Fox_glynn.total_mass weights
      else if k > right then 0.
      else tail.(k - left)
    in
    let acc = ref 0. in
    let v = ref start in
    for k = 0 to right do
      let contribution = tail_ge (k + 1) /. lambda *. Vec.dot !v reward in
      acc := !acc +. contribution;
      if k < right then v := Sparse.vec_mul !v p
    done;
    !acc
  end

let accumulated ?epsilon m ~reward ~upto =
  check_reward m reward;
  accumulated_from ?epsilon m (Chain.initial m) ~reward upto

let accumulated_curve ?epsilon m ~reward ~times =
  check_reward m reward;
  let sorted = List.sort_uniq compare times in
  List.iter
    (fun t -> if t < 0. then invalid_arg "Rewards.accumulated_curve: negative time")
    sorted;
  let _, _, result =
    List.fold_left
      (fun (t_prev, pi_prev, acc_points) t ->
        let seg = accumulated_from ?epsilon m pi_prev ~reward (t -. t_prev) in
        let total =
          match acc_points with [] -> seg | (_, prev_total) :: _ -> prev_total +. seg
        in
        let pi = Transient.distribution_from ?epsilon m pi_prev (t -. t_prev) in
        (t, pi, (t, total) :: acc_points))
      (0., Chain.initial m, [])
      sorted
  in
  List.rev result

let steady_state ?tol m ~reward =
  check_reward m reward;
  let pi = Steady_state.solve ?tol m in
  Vec.dot pi reward
