module Vec = Numeric.Vec
module Sparse = Numeric.Sparse
module Rng = Numeric.Rng

type path = (float * int) list

let sample_initial m rng =
  let init = Chain.initial m in
  Rng.choose_weighted rng init

let next_jump m rng s =
  let exit = (Chain.exit_rates m).(s) in
  if exit = 0. then None
  else begin
    let dwell = Rng.exponential rng ~rate:exit in
    (* choose successor proportionally to rates *)
    let succs = ref [] and ws = ref [] in
    Sparse.iter_row (Chain.rates m) s (fun j r ->
        succs := j :: !succs;
        ws := r :: !ws);
    let succs = Array.of_list !succs and ws = Array.of_list !ws in
    let k = Rng.choose_weighted rng ws in
    Some (dwell, succs.(k))
  end

let run m rng ~horizon =
  if horizon < 0. then invalid_arg "Simulate.run: negative horizon";
  let rec go t s acc =
    match next_jump m rng s with
    | None -> List.rev acc
    | Some (dwell, s') ->
        let t' = t +. dwell in
        if t' > horizon then List.rev acc else go t' s' ((t', s') :: acc)
  in
  let s0 = sample_initial m rng in
  go 0. s0 [ (0., s0) ]

let state_at path t =
  let rec go last = function
    | [] -> last
    | (entry, s) :: rest -> if entry > t then last else go s rest
  in
  match path with
  | [] -> invalid_arg "Simulate.state_at: empty path"
  | (_, s0) :: rest -> go s0 rest

let segments path ~horizon =
  (* [(state, duration)] pieces covering [0, horizon] *)
  let rec go = function
    | [] -> []
    | [ (entry, s) ] -> [ (s, Float.max 0. (horizon -. entry)) ]
    | (entry, s) :: ((entry', _) :: _ as rest) ->
        let stop = Float.min entry' horizon in
        let d = Float.max 0. (stop -. entry) in
        (s, d) :: (if entry' >= horizon then [] else go rest)
  in
  go path

let time_in path ~horizon ~pred =
  List.fold_left
    (fun acc (s, d) -> if pred s then acc +. d else acc)
    0.
    (segments path ~horizon)

let accumulated_reward path ~horizon ~reward =
  List.fold_left
    (fun acc (s, d) -> acc +. (reward.(s) *. d))
    0.
    (segments path ~horizon)

type estimate = { mean : float; std_error : float; runs : int }

let estimate m rng ~runs ~horizon ~f =
  if runs <= 0 then invalid_arg "Simulate.estimate: runs must be positive";
  let sum = ref 0. and sum_sq = ref 0. in
  for _ = 1 to runs do
    let x = f (run m rng ~horizon) in
    sum := !sum +. x;
    sum_sq := !sum_sq +. (x *. x)
  done;
  let n = float_of_int runs in
  let mean = !sum /. n in
  let variance = Float.max 0. ((!sum_sq /. n) -. (mean *. mean)) in
  { mean; std_error = sqrt (variance /. n); runs }

let estimate_transient m rng ~runs ~at ~pred =
  estimate m rng ~runs ~horizon:at ~f:(fun path ->
      if pred (state_at path at) then 1. else 0.)

let estimate_accumulated m rng ~runs ~upto ~reward =
  estimate m rng ~runs ~horizon:upto ~f:(fun path ->
      accumulated_reward path ~horizon:upto ~reward)
