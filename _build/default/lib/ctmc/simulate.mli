(** Discrete-event simulation of CTMCs.

    An independent validation path for the numerical engine: sample paths
    with exponential holding times, plus Monte-Carlo estimators for the
    measures the paper computes numerically (transient probabilities,
    long-run availability, accumulated rewards). Estimators return a mean
    and the standard error of the mean. *)

type path = (float * int) list
(** A sampled trajectory as [(entry_time, state)] pairs in time order;
    the first entry time is [0.]. *)

val sample_initial : Chain.t -> Numeric.Rng.t -> int
(** Sample a start state from the chain's initial distribution. *)

val run : Chain.t -> Numeric.Rng.t -> horizon:float -> path
(** Simulate one trajectory from a sampled initial state up to [horizon].
    The path ends at the last state entered before (or at) the horizon; if
    an absorbing state is entered the path simply stops growing. *)

val state_at : path -> float -> int
(** The state a path occupies at a given time. *)

val time_in : path -> horizon:float -> pred:(int -> bool) -> float
(** Total time the path spends in [pred] states within [0, horizon]. *)

val accumulated_reward : path -> horizon:float -> reward:Numeric.Vec.t -> float
(** Reward accumulated along the path up to [horizon]. *)

type estimate = { mean : float; std_error : float; runs : int }

val estimate :
  Chain.t -> Numeric.Rng.t -> runs:int -> horizon:float -> f:(path -> float) -> estimate
(** Monte-Carlo estimate of [E(f path)] over [runs] trajectories. *)

val estimate_transient :
  Chain.t -> Numeric.Rng.t -> runs:int -> at:float -> pred:(int -> bool) -> estimate
(** Estimate of the probability of being in a [pred] state at time [at]. *)

val estimate_accumulated :
  Chain.t -> Numeric.Rng.t -> runs:int -> upto:float -> reward:Numeric.Vec.t -> estimate
(** Estimate of the accumulated reward in [0, upto]. *)
