module Vec = Numeric.Vec
module Sparse = Numeric.Sparse
module Fox_glynn = Numeric.Fox_glynn

(* Shared skeleton: accumulate sum_k w_k * v_k where v_0 is the start vector
   and v_{k+1} = step v_k. Steps below the Fox-Glynn window's left edge
   contribute no weight but must still be applied. *)
let weighted_sum ~weights ~start ~step =
  let { Fox_glynn.left; right; weights = w; _ } = weights in
  let acc = Vec.zeros (Vec.dim start) in
  let v = ref start in
  for k = 0 to right do
    if k >= left then Vec.axpy w.(k - left) !v acc;
    if k < right then v := step !v
  done;
  acc

let distribution_from ?epsilon m start t =
  if t < 0. then invalid_arg "Transient.distribution_from: negative time";
  if t = 0. then Vec.copy start
  else begin
    let lambda, p = Chain.uniformized m in
    let weights = Fox_glynn.compute ?epsilon (lambda *. t) in
    weighted_sum ~weights ~start ~step:(fun v -> Sparse.vec_mul v p)
  end

let distribution ?epsilon m t = distribution_from ?epsilon m (Chain.initial m) t

let curve ?epsilon m ~times =
  let sorted = List.sort_uniq compare times in
  List.iter (fun t -> if t < 0. then invalid_arg "Transient.curve: negative time") sorted;
  let _, result =
    List.fold_left
      (fun (prev, acc) t ->
        let t_prev, pi_prev = prev in
        let pi = distribution_from ?epsilon m pi_prev (t -. t_prev) in
        ((t, pi), (t, pi) :: acc))
      ((0., Chain.initial m), [])
      sorted
  in
  List.rev result

let probability_at ?epsilon m ~pred t =
  let pi = distribution ?epsilon m t in
  let acc = ref 0. in
  Array.iteri (fun s p -> if pred s then acc := !acc +. p) pi;
  !acc

let backward ?epsilon m v t =
  if t < 0. then invalid_arg "Transient.backward: negative time";
  if Vec.dim v <> Chain.states m then
    invalid_arg "Transient.backward: dimension mismatch";
  if t = 0. then Vec.copy v
  else begin
    let lambda, p = Chain.uniformized m in
    let weights = Fox_glynn.compute ?epsilon (lambda *. t) in
    weighted_sum ~weights ~start:v ~step:(fun v -> Sparse.mul_vec p v)
  end
