module Sparse = Numeric.Sparse

type t = {
  states : int list;
  probability : float;
}

(* Dijkstra over edge weights -log p(i -> j) on the embedded chain. A simple
   binary-heap-free implementation using a sorted module on (dist, vertex)
   pairs would be O(n^2); we use a leftist-ish pairing via a sorted set
   substitute: OCaml's Set over (float * int). *)
module Frontier = Set.Make (struct
  type t = float * int

  let compare = compare
end)

let most_probable_path m ~psi =
  let n = Chain.states m in
  let emb = Chain.embedded m in
  let dist = Array.make n infinity in
  let pred = Array.make n (-1) in
  let frontier = ref Frontier.empty in
  Array.iteri
    (fun s p ->
      if p > 0. then begin
        dist.(s) <- 0.;
        frontier := Frontier.add (0., s) !frontier
      end)
    (Chain.initial m);
  let result = ref None in
  (try
     while not (Frontier.is_empty !frontier) do
       let ((d, u) as elt) = Frontier.min_elt !frontier in
       frontier := Frontier.remove elt !frontier;
       if d <= dist.(u) then begin
         if psi u then begin
           result := Some u;
           raise Exit
         end;
         Sparse.iter_row emb u (fun v p ->
             if p > 0. && v <> u then begin
               let d' = d -. Float.log p in
               if d' < dist.(v) then begin
                 dist.(v) <- d';
                 pred.(v) <- u;
                 frontier := Frontier.add (d', v) !frontier
               end
             end)
       end
     done
   with Exit -> ());
  match !result with
  | None -> None
  | Some target ->
      let rec collect s acc =
        if pred.(s) = -1 then s :: acc else collect pred.(s) (s :: acc)
      in
      Some { states = collect target []; probability = Float.exp (-.dist.(target)) }

let pp ppf w =
  Format.fprintf ppf "@[<h>p = %.4g:" w.probability;
  List.iter (fun s -> Format.fprintf ppf " -> %d" s) w.states;
  Format.fprintf ppf "@]"
