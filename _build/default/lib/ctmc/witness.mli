(** Witness paths: the most probable way to reach a target set.

    For diagnostics ("what is the likeliest failure scenario?") we search
    the embedded jump chain for the path from an initial state to a target
    state maximizing the product of jump probabilities — a shortest-path
    problem in [-log] space, solved with Dijkstra's algorithm. The result
    ignores dwell times (it is a discrete scenario, not a timed one), which
    is the usual notion of a counterexample/witness for unbounded
    reachability. *)

type t = {
  states : int list;  (** the path, starting at an initial state *)
  probability : float;
      (** product of embedded-chain jump probabilities along the path *)
}

val most_probable_path : Chain.t -> psi:(int -> bool) -> t option
(** [None] when no target state is reachable from the initial
    distribution's support. A target state with positive initial mass
    yields the trivial path with probability 1. *)

val pp : Format.formatter -> t -> unit
