type t =
  | Basic of string
  | And of t list
  | Or of t list
  | Kofn of int * t list

let basic name = Basic name

let check_gate name inputs =
  if inputs = [] then invalid_arg (Printf.sprintf "Fault_tree.%s: empty gate" name)

let and_ inputs =
  check_gate "and_" inputs;
  And inputs

let or_ inputs =
  check_gate "or_" inputs;
  Or inputs

let kofn k inputs =
  check_gate "kofn" inputs;
  if k < 1 || k > List.length inputs then
    invalid_arg
      (Printf.sprintf "Fault_tree.kofn: k = %d out of [1, %d]" k
         (List.length inputs));
  Kofn (k, inputs)

let rec validate = function
  | Basic name -> if name = "" then invalid_arg "Fault_tree: empty basic-event name"
  | And inputs ->
      check_gate "validate(and)" inputs;
      List.iter validate inputs
  | Or inputs ->
      check_gate "validate(or)" inputs;
      List.iter validate inputs
  | Kofn (k, inputs) ->
      check_gate "validate(kofn)" inputs;
      if k < 1 || k > List.length inputs then
        invalid_arg "Fault_tree: kofn threshold out of range";
      List.iter validate inputs

let basics tree =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec go = function
    | Basic name ->
        if not (Hashtbl.mem seen name) then begin
          Hashtbl.replace seen name ();
          out := name :: !out
        end
    | And inputs | Or inputs | Kofn (_, inputs) -> List.iter go inputs
  in
  go tree;
  List.rev !out

let rec eval tree truth =
  match tree with
  | Basic name -> truth name
  | And inputs -> List.for_all (fun g -> eval g truth) inputs
  | Or inputs -> List.exists (fun g -> eval g truth) inputs
  | Kofn (k, inputs) ->
      let sat = List.fold_left (fun n g -> if eval g truth then n + 1 else n) 0 inputs in
      sat >= k

let rec dual = function
  | Basic name -> Basic name
  | And inputs -> Or (List.map dual inputs)
  | Or inputs -> And (List.map dual inputs)
  | Kofn (k, inputs) -> Kofn (List.length inputs - k + 1, List.map dual inputs)

let rec eval_quantitative tree value =
  match tree with
  | Basic name -> value name
  | And inputs ->
      List.fold_left
        (fun acc g -> Float.min acc (eval_quantitative g value))
        infinity inputs
  | Or inputs ->
      let sum = List.fold_left (fun acc g -> acc +. eval_quantitative g value) 0. inputs in
      sum /. float_of_int (List.length inputs)
  | Kofn (k, inputs) ->
      let sum = List.fold_left (fun acc g -> acc +. eval_quantitative g value) 0. inputs in
      Float.min 1. (sum /. float_of_int k)

let service_levels tree =
  let names = Array.of_list (basics tree) in
  let n = Array.length names in
  if n > 24 then invalid_arg "Fault_tree.service_levels: too many basic events";
  let index = Hashtbl.create n in
  Array.iteri (fun i name -> Hashtbl.replace index name i) names;
  let levels = Hashtbl.create 16 in
  for mask = 0 to (1 lsl n) - 1 do
    let value name = if mask land (1 lsl Hashtbl.find index name) <> 0 then 1. else 0. in
    let level = eval_quantitative tree value in
    (* canonicalize floats that should be equal across assignments *)
    let key = Printf.sprintf "%.12g" level in
    Hashtbl.replace levels key level
  done;
  List.sort compare (Hashtbl.fold (fun _ v acc -> v :: acc) levels [])

(* Minimal cut sets: expand to a DNF where each disjunct is a sorted list of
   basic events, applying absorption (drop supersets) as we go. A K-of-N gate
   expands to the OR of all ANDs of k-subsets. *)
module Cut = struct
  type set = string list (* sorted, distinct *)

  let union a b = List.sort_uniq compare (a @ b)

  let subset a b = List.for_all (fun x -> List.mem x b) a

  let absorb (sets : set list) =
    let minimal s others = not (List.exists (fun o -> o <> s && subset o s) others) in
    let sets = List.sort_uniq compare sets in
    List.filter (fun s -> minimal s sets) sets

  let cross (a : set list) (b : set list) =
    absorb (List.concat_map (fun x -> List.map (fun y -> union x y) b) a)
end

let rec choose k items =
  match (k, items) with
  | 0, _ -> [ [] ]
  | _, [] -> []
  | k, x :: rest ->
      List.map (fun c -> x :: c) (choose (k - 1) rest) @ choose k rest

let minimal_cut_sets tree =
  let rec go = function
    | Basic name -> [ [ name ] ]
    | Or inputs -> Cut.absorb (List.concat_map go inputs)
    | And inputs ->
        List.fold_left
          (fun acc g -> Cut.cross acc (go g))
          [ [] ]
          inputs
    | Kofn (k, inputs) ->
        let subsets = choose k inputs in
        Cut.absorb (List.concat_map (fun sub -> go (And sub)) subsets)
  in
  List.sort compare (go tree)

let minimal_path_sets tree = minimal_cut_sets (dual tree)

let rec pp ppf = function
  | Basic name -> Format.pp_print_string ppf name
  | And inputs -> pp_gate ppf "and" inputs
  | Or inputs -> pp_gate ppf "or" inputs
  | Kofn (k, inputs) ->
      Format.fprintf ppf "kofn(%d" k;
      List.iter (fun g -> Format.fprintf ppf ",@ %a" pp g) inputs;
      Format.fprintf ppf ")"

and pp_gate ppf name inputs =
  Format.fprintf ppf "%s(" name;
  List.iteri
    (fun i g ->
      if i > 0 then Format.fprintf ppf ",@ ";
      pp ppf g)
    inputs;
  Format.fprintf ppf ")"

let to_string tree = Format.asprintf "%a" pp tree

(* Recursive-descent parser for the to_string syntax. *)
let of_string input =
  let n = String.length input in
  let pos = ref 0 in
  let error msg = failwith (Printf.sprintf "Fault_tree.of_string: %s at %d" msg !pos) in
  let skip_ws () =
    while !pos < n && (input.[!pos] = ' ' || input.[!pos] = '\t' || input.[!pos] = '\n') do
      incr pos
    done
  in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> incr pos
    | _ -> error (Printf.sprintf "expected '%c'" c)
  in
  let ident () =
    skip_ws ();
    let start = !pos in
    let is_ident c =
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
      || c = '_' || c = '-' || c = '.'
    in
    while !pos < n && is_ident input.[!pos] do
      incr pos
    done;
    if !pos = start then error "expected identifier";
    String.sub input start (!pos - start)
  in
  let rec expr () =
    let name = ident () in
    skip_ws ();
    match (String.lowercase_ascii name, peek ()) with
    | "and", Some '(' -> and_ (args ())
    | "or", Some '(' -> or_ (args ())
    | "kofn", Some '(' ->
        expect '(';
        let k_str = ident () in
        let k = try int_of_string k_str with Failure _ -> error "expected integer k" in
        let inputs = ref [] in
        let continue = ref true in
        while !continue do
          skip_ws ();
          match peek () with
          | Some ',' ->
              incr pos;
              inputs := expr () :: !inputs
          | Some ')' ->
              incr pos;
              continue := false
          | _ -> error "expected ',' or ')'"
        done;
        kofn k (List.rev !inputs)
    | _, _ -> basic name
  and args () =
    expect '(';
    let first = expr () in
    let inputs = ref [ first ] in
    let continue = ref true in
    while !continue do
      skip_ws ();
      match peek () with
      | Some ',' ->
          incr pos;
          inputs := expr () :: !inputs
      | Some ')' ->
          incr pos;
          continue := false
      | _ -> error "expected ',' or ')'"
    done;
    List.rev !inputs
  in
  let tree = expr () in
  skip_ws ();
  if !pos <> n then error "trailing input";
  tree

let equal a b = a = b
