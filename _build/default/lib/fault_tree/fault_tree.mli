(** Fault trees and quantitative service trees (Arcade's condition language).

    A fault tree is a monotone boolean expression over {e basic events}
    (component failure modes); the system is down when the tree evaluates to
    true. Arcade [5] uses AND/OR trees; we add K-of-N ("voting") gates, which
    the water-treatment model needs for its [m+1]-redundant pump groups.

    The paper's quantitative survivability measure evaluates the {e dual}
    {e service tree} (AND and OR swapped, literals negated: "component
    operational") with quantitative gate semantics:
    [ANDq = min], [ORq = average], and for a K-of-N gate
    [KOFNq = min(1, sum / k)] — the fraction of required throughput
    available. *)

type t =
  | Basic of string  (** a basic event, named after the component *)
  | And of t list
  | Or of t list
  | Kofn of int * t list
      (** [Kofn (k, gs)]: true when at least [k] of the inputs are true *)

val basic : string -> t

val and_ : t list -> t

val or_ : t list -> t

val kofn : int -> t list -> t
(** Raises [Invalid_argument] unless [1 <= k <= length inputs]. *)

val validate : t -> unit
(** Raises [Invalid_argument] on empty gates or malformed K-of-N bounds. *)

val basics : t -> string list
(** The distinct basic-event names, in first-occurrence order. *)

val eval : t -> (string -> bool) -> bool
(** [eval tree truth] evaluates with [truth name] giving each literal. *)

val dual : t -> t
(** The dual tree: AND and OR swapped, [Kofn (k, n inputs)] becomes
    [Kofn (n - k + 1, ...)]. If [eval tree failed] says "system down" for
    failure literals, then [eval (dual tree) operational] says "some service"
    for operational literals: [eval (dual t) f = not (eval t (not . f))]. *)

val eval_quantitative : t -> (string -> float) -> float
(** Quantitative service semantics over literal values in [[0, 1]]:
    AND = minimum, OR = average, K-of-N = [min 1 (sum / k)]. *)

val service_levels : t -> float list
(** All values the quantitative evaluation can take when every literal is 0
    or 1, sorted ascending (enumerates the basic events' assignments; meant
    for trees with at most ~20 basics). The paper's service intervals are
    the gaps between consecutive levels. *)

val minimal_cut_sets : t -> string list list
(** Minimal sets of basic events whose simultaneous occurrence makes the
    tree true (MOCUS-style DNF expansion with absorption). Each cut set and
    the overall list are sorted. *)

val minimal_path_sets : t -> string list list
(** Minimal sets of basic events whose simultaneous {e absence} makes the
    tree false — for a fault tree, the minimal sets of components whose
    health guarantees system operation. Computed as the cut sets of the
    dual tree. *)

val to_string : t -> string
(** Compact syntax, e.g. ["or(and(a, b), kofn(2, c, d, e))"]. *)

val of_string : string -> t
(** Parses the {!to_string} syntax. Raises [Failure] with a position message
    on syntax errors. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
