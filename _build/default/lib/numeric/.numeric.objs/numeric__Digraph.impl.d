lib/numeric/digraph.ml: Array List Queue Sparse Stack
