lib/numeric/digraph.mli: Sparse
