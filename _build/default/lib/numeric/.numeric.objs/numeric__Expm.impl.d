lib/numeric/expm.ml: Array Float Sparse
