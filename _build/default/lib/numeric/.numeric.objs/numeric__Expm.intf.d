lib/numeric/expm.mli: Sparse
