lib/numeric/fox_glynn.ml: Array Float List
