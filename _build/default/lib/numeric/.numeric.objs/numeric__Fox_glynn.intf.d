lib/numeric/fox_glynn.mli:
