lib/numeric/rng.ml: Array Float Int64
