lib/numeric/rng.mli:
