lib/numeric/solver.ml: Array Float Printexc Printf Sparse Vec
