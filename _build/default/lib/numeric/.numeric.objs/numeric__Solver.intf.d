lib/numeric/solver.mli: Sparse Vec
