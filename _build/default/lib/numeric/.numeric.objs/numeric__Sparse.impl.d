lib/numeric/sparse.ml: Array Float Format List Printf Vec
