lib/numeric/sparse.mli: Format Vec
