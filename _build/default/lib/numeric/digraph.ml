type t = {
  n : int;
  adj : int list array;
}

let create n =
  if n < 0 then invalid_arg "Digraph.create";
  { n; adj = Array.make n [] }

let add_edge g u v =
  if u < 0 || u >= g.n || v < 0 || v >= g.n then
    invalid_arg "Digraph.add_edge: vertex out of range";
  g.adj.(u) <- v :: g.adj.(u)

let of_sparse m =
  let g = create (max (Sparse.rows m) (Sparse.cols m)) in
  Sparse.iteri m (fun i j _ -> add_edge g i j);
  g

let vertex_count g = g.n

let successors g v = g.adj.(v)

let reverse g =
  let r = create g.n in
  Array.iteri (fun u vs -> List.iter (fun v -> add_edge r v u) vs) g.adj;
  r

(* Iterative Tarjan. The explicit stack holds (vertex, remaining successors)
   frames so deep chains do not overflow the OCaml stack. *)
let sccs g =
  let n = g.n in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = Stack.create () in
  let next_index = ref 0 in
  let comp = Array.make n (-1) in
  let members_rev = ref [] in
  let comp_count = ref 0 in
  let visit root =
    let frames = Stack.create () in
    let push v =
      index.(v) <- !next_index;
      lowlink.(v) <- !next_index;
      incr next_index;
      Stack.push v stack;
      on_stack.(v) <- true;
      Stack.push (v, ref g.adj.(v)) frames
    in
    push root;
    while not (Stack.is_empty frames) do
      let v, rest = Stack.top frames in
      match !rest with
      | w :: tl ->
          rest := tl;
          if index.(w) = -1 then push w
          else if on_stack.(w) then
            lowlink.(v) <- min lowlink.(v) index.(w)
      | [] ->
          ignore (Stack.pop frames);
          if lowlink.(v) = index.(v) then begin
            (* v is the root of an SCC: pop it off the vertex stack *)
            let members = ref [] in
            let continue = ref true in
            while !continue do
              let w = Stack.pop stack in
              on_stack.(w) <- false;
              comp.(w) <- !comp_count;
              members := w :: !members;
              if w = v then continue := false
            done;
            members_rev := !members :: !members_rev;
            incr comp_count
          end;
          (match Stack.top_opt frames with
          | Some (parent, _) -> lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          | None -> ())
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then visit v
  done;
  let members = Array.make !comp_count [] in
  List.iteri (fun i ms -> members.(i) <- ms) (List.rev !members_rev);
  (comp, members)

let bottom_sccs g =
  let comp, members = sccs g in
  let nc = Array.length members in
  let has_exit = Array.make nc false in
  Array.iteri
    (fun u vs ->
      List.iter (fun v -> if comp.(u) <> comp.(v) then has_exit.(comp.(u)) <- true) vs)
    g.adj;
  let out = ref [] in
  for c = nc - 1 downto 0 do
    if not has_exit.(c) then out := members.(c) :: !out
  done;
  Array.of_list !out

let reachable g seeds =
  let seen = Array.make g.n false in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if not seen.(s) then begin
        seen.(s) <- true;
        Queue.add s queue
      end)
    seeds;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          Queue.add v queue
        end)
      g.adj.(u)
  done;
  seen

let coreachable g targets = reachable (reverse g) targets
