(** Directed graphs over integer vertices [0 .. n-1].

    Provides the graph algorithms stochastic model checking needs: strongly
    connected components (Tarjan, iterative — safe on state spaces with
    hundreds of thousands of vertices), bottom SCC identification, forward /
    backward reachability, and a topological order of the condensation. *)

type t

val create : int -> t
(** [create n] is an empty graph with [n] vertices. *)

val of_sparse : Sparse.t -> t
(** Graph with an edge [(i, j)] for every stored non-zero entry [(i, j)]. *)

val add_edge : t -> int -> int -> unit
(** Idempotence is not enforced; parallel edges are harmless for the
    algorithms here. *)

val vertex_count : t -> int

val successors : t -> int -> int list
(** Successors in reverse insertion order. *)

val sccs : t -> int array * int list array
(** [sccs g] is [(comp, members)]: [comp.(v)] is the SCC index of [v] and
    [members.(c)] lists the vertices of SCC [c]. SCC indices are a reverse
    topological order of the condensation: every edge between distinct SCCs
    [(c1, c2)] has [c1 > c2]. *)

val bottom_sccs : t -> int list array
(** The SCCs with no edge leaving them (each as its member list). For a CTMC
    these are the recurrent classes. *)

val reachable : t -> int list -> bool array
(** [reachable g seeds] marks every vertex reachable from [seeds] (the seeds
    included). *)

val coreachable : t -> int list -> bool array
(** [coreachable g targets] marks every vertex from which some target is
    reachable (the targets included). *)

val reverse : t -> t
