let dims a =
  let n = Array.length a in
  Array.iter
    (fun row -> if Array.length row <> n then invalid_arg "Expm: matrix not square")
    a;
  n

let mat_mul a b =
  let n = Array.length a in
  Array.init n (fun i ->
      Array.init n (fun j ->
          let acc = ref 0. in
          for k = 0 to n - 1 do
            acc := !acc +. (a.(i).(k) *. b.(k).(j))
          done;
          !acc))

let mat_add a b =
  Array.mapi (fun i row -> Array.mapi (fun j x -> x +. b.(i).(j)) row) a

let mat_scale s a = Array.map (Array.map (fun x -> s *. x)) a

let identity n = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1. else 0.))

let inf_norm a =
  Array.fold_left
    (fun acc row ->
      Float.max acc (Array.fold_left (fun s x -> s +. Float.abs x) 0. row))
    0. a

let expm a =
  let n = dims a in
  if n = 0 then [||]
  else begin
    (* scaling: find k with ||a / 2^k|| <= 0.5 *)
    let norm = inf_norm a in
    let k =
      if norm <= 0.5 then 0
      else max 0 (int_of_float (Float.ceil (Float.log (norm /. 0.5) /. Float.log 2.)))
    in
    let scaled = mat_scale (1. /. Float.pow 2. (float_of_int k)) a in
    (* Taylor series sum_j scaled^j / j!, converges fast for norm <= 0.5 *)
    let result = ref (identity n) in
    let term = ref (identity n) in
    let j = ref 1 in
    let continue = ref true in
    while !continue do
      term := mat_scale (1. /. float_of_int !j) (mat_mul !term scaled);
      result := mat_add !result !term;
      if inf_norm !term < 1e-18 || !j > 60 then continue := false;
      incr j
    done;
    (* squaring *)
    let out = ref !result in
    for _ = 1 to k do
      out := mat_mul !out !out
    done;
    !out
  end

let expm_generator q t =
  let n = Sparse.rows q in
  if Sparse.cols q <> n then invalid_arg "Expm.expm_generator: not square";
  let dense = Array.make_matrix n n 0. in
  Sparse.iteri q (fun i j x -> dense.(i).(j) <- dense.(i).(j) +. (x *. t));
  expm dense
