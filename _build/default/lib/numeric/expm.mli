(** Dense matrix exponential (scaling and squaring with a Taylor core).

    An independent reference implementation used to cross-validate the
    uniformization-based transient engine on small chains: for a generator
    [Q], [exp(Q t)] row [i] is the transient distribution at time [t] from
    state [i]. Dense and O(n^3) — test-sized matrices only. *)

val expm : float array array -> float array array
(** [expm a] computes [e^a] for a square dense matrix. Scaling and squaring:
    [e^a = (e^(a / 2^k))^(2^k)] with a Taylor series on the scaled matrix,
    [k] chosen so the scaled norm is below 0.5. Raises [Invalid_argument]
    on non-square input. *)

val expm_generator : Sparse.t -> float -> float array array
(** [expm_generator q t] is [exp(Q t)] for a sparse generator, densified.
    Row [i] is the distribution at time [t] starting from state [i]. *)
