type t = {
  rows : int;
  cols : int;
  row_ptr : int array; (* length rows+1 *)
  col_idx : int array; (* length nnz, sorted within each row *)
  values : float array; (* length nnz *)
}

module Builder = struct
  type t = {
    b_rows : int;
    b_cols : int;
    mutable entries : (int * int * float) list;
    mutable count : int;
  }

  let create ~rows ~cols =
    if rows < 0 || cols < 0 then invalid_arg "Sparse.Builder.create";
    { b_rows = rows; b_cols = cols; entries = []; count = 0 }

  let add b i j x =
    if i < 0 || i >= b.b_rows || j < 0 || j >= b.b_cols then
      invalid_arg
        (Printf.sprintf "Sparse.Builder.add: (%d,%d) out of %dx%d" i j
           b.b_rows b.b_cols);
    b.entries <- (i, j, x) :: b.entries;
    b.count <- b.count + 1

  (* Finalization: counting sort by row, then sort each row by column and
     merge duplicates. *)
  let to_csr b =
    let rows = b.b_rows and cols = b.b_cols in
    let n = b.count in
    let ri = Array.make n 0 and ci = Array.make n 0 and vs = Array.make n 0. in
    let k = ref (n - 1) in
    List.iter
      (fun (i, j, x) ->
        ri.(!k) <- i;
        ci.(!k) <- j;
        vs.(!k) <- x;
        decr k)
      b.entries;
    (* bucket by row *)
    let counts = Array.make (rows + 1) 0 in
    for p = 0 to n - 1 do
      counts.(ri.(p) + 1) <- counts.(ri.(p) + 1) + 1
    done;
    for r = 1 to rows do
      counts.(r) <- counts.(r) + counts.(r - 1)
    done;
    let order = Array.make n 0 in
    let next = Array.copy counts in
    for p = 0 to n - 1 do
      let r = ri.(p) in
      order.(next.(r)) <- p;
      next.(r) <- next.(r) + 1
    done;
    (* per row: sort indices by column, merge duplicates, drop exact zeros *)
    let row_ptr = Array.make (rows + 1) 0 in
    let out_cols = ref [] and out_vals = ref [] in
    let total = ref 0 in
    for r = 0 to rows - 1 do
      row_ptr.(r) <- !total;
      let lo = counts.(r) and hi = counts.(r + 1) in
      let row_entries =
        Array.init (hi - lo) (fun q ->
            let p = order.(lo + q) in
            (ci.(p), vs.(p)))
      in
      Array.sort (fun (c1, _) (c2, _) -> compare c1 c2) row_entries;
      let m = Array.length row_entries in
      let q = ref 0 in
      while !q < m do
        let c, _ = row_entries.(!q) in
        let acc = ref 0. in
        while !q < m && fst row_entries.(!q) = c do
          acc := !acc +. snd row_entries.(!q);
          incr q
        done;
        if !acc <> 0. then begin
          out_cols := c :: !out_cols;
          out_vals := !acc :: !out_vals;
          incr total
        end
      done
    done;
    row_ptr.(rows) <- !total;
    let nnz = !total in
    let col_idx = Array.make nnz 0 and values = Array.make nnz 0. in
    let k = ref (nnz - 1) in
    List.iter2
      (fun c v ->
        col_idx.(!k) <- c;
        values.(!k) <- v;
        decr k)
      !out_cols !out_vals;
    { rows; cols; row_ptr; col_idx; values }
end

let of_triplets ~rows ~cols triplets =
  let b = Builder.create ~rows ~cols in
  List.iter (fun (i, j, x) -> Builder.add b i j x) triplets;
  Builder.to_csr b

let of_dense d =
  let rows = Array.length d in
  let cols = if rows = 0 then 0 else Array.length d.(0) in
  let b = Builder.create ~rows ~cols in
  Array.iteri
    (fun i row ->
      Array.iteri (fun j x -> if x <> 0. then Builder.add b i j x) row)
    d;
  Builder.to_csr b

let rows m = m.rows

let cols m = m.cols

let nnz m = m.row_ptr.(m.rows)

let to_dense m =
  let d = Array.make_matrix m.rows m.cols 0. in
  for i = 0 to m.rows - 1 do
    for p = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      d.(i).(m.col_idx.(p)) <- m.values.(p)
    done
  done;
  d

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Sparse.get: out of bounds";
  let lo = ref m.row_ptr.(i) and hi = ref (m.row_ptr.(i + 1) - 1) in
  let result = ref 0. in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = m.col_idx.(mid) in
    if c = j then begin
      result := m.values.(mid);
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !result

let iter_row m i f =
  for p = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
    f m.col_idx.(p) m.values.(p)
  done

let iteri m f =
  for i = 0 to m.rows - 1 do
    iter_row m i (fun j x -> f i j x)
  done

let fold m ~init ~f =
  let acc = ref init in
  iteri m (fun i j x -> acc := f !acc i j x);
  !acc

let mul_vec_into m x y =
  if Vec.dim x <> m.cols || Vec.dim y <> m.rows then
    invalid_arg "Sparse.mul_vec_into: dimension mismatch";
  for i = 0 to m.rows - 1 do
    let acc = ref 0. in
    for p = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      acc := !acc +. (m.values.(p) *. x.(m.col_idx.(p)))
    done;
    y.(i) <- !acc
  done

let mul_vec m x =
  let y = Vec.zeros m.rows in
  mul_vec_into m x y;
  y

let vec_mul_into x m y =
  if Vec.dim x <> m.rows || Vec.dim y <> m.cols then
    invalid_arg "Sparse.vec_mul_into: dimension mismatch";
  Vec.fill y 0.;
  for i = 0 to m.rows - 1 do
    let xi = x.(i) in
    if xi <> 0. then
      for p = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
        y.(m.col_idx.(p)) <- y.(m.col_idx.(p)) +. (xi *. m.values.(p))
      done
  done

let vec_mul x m =
  let y = Vec.zeros m.cols in
  vec_mul_into x m y;
  y

let transpose m =
  let b = Builder.create ~rows:m.cols ~cols:m.rows in
  iteri m (fun i j x -> Builder.add b j i x);
  Builder.to_csr b

let map f m =
  { m with values = Array.map f m.values }

let scale a m = map (fun x -> a *. x) m

let add_mat a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Sparse.add_mat: dimension mismatch";
  let bl = Builder.create ~rows:a.rows ~cols:a.cols in
  iteri a (fun i j x -> Builder.add bl i j x);
  iteri b (fun i j x -> Builder.add bl i j x);
  Builder.to_csr bl

let row_sums m =
  let v = Vec.zeros m.rows in
  iteri m (fun i _ x -> v.(i) <- v.(i) +. x);
  v

let identity n =
  of_triplets ~rows:n ~cols:n (List.init n (fun i -> (i, i, 1.)))

let equal ?(eps = 0.) a b =
  a.rows = b.rows && a.cols = b.cols
  && begin
       let ok = ref true in
       iteri a (fun i j x -> if Float.abs (x -. get b i j) > eps then ok := false);
       iteri b (fun i j x -> if Float.abs (x -. get a i j) > eps then ok := false);
       !ok
     end

let pp ppf m =
  Format.fprintf ppf "@[<v>sparse %dx%d (%d nnz)" m.rows m.cols (nnz m);
  iteri m (fun i j x -> Format.fprintf ppf "@,(%d,%d) = %g" i j x);
  Format.fprintf ppf "@]"
