(** Sparse matrices in compressed-sparse-row (CSR) form.

    The CTMC engine stores generator and probability matrices in this format.
    Matrices are immutable once built; construction goes through {!Builder}
    (coordinate/triplet accumulation) or {!of_triplets}. *)

type t

(** Mutable triplet accumulator. Duplicate [(row, col)] entries are summed
    when the matrix is finalized. *)
module Builder : sig
  type matrix := t
  type t

  val create : rows:int -> cols:int -> t

  val add : t -> int -> int -> float -> unit
  (** [add b i j x] accumulates [x] at position [(i, j)]. Zero contributions
      are kept until finalization, where exact-zero sums are dropped. *)

  val to_csr : t -> matrix
end

val of_triplets : rows:int -> cols:int -> (int * int * float) list -> t

val of_dense : float array array -> t

val to_dense : t -> float array array

val rows : t -> int

val cols : t -> int

val nnz : t -> int
(** Number of stored (structurally non-zero) entries. *)

val get : t -> int -> int -> float
(** [get m i j] is the entry at [(i, j)] ([0.] when not stored).
    Logarithmic in the number of entries of row [i]. *)

val iter_row : t -> int -> (int -> float -> unit) -> unit
(** [iter_row m i f] applies [f col value] to every stored entry of row [i]. *)

val iteri : t -> (int -> int -> float -> unit) -> unit

val fold : t -> init:'a -> f:('a -> int -> int -> float -> 'a) -> 'a

val mul_vec : t -> Vec.t -> Vec.t
(** [mul_vec m x] is the matrix-vector product [m * x]. *)

val mul_vec_into : t -> Vec.t -> Vec.t -> unit
(** [mul_vec_into m x y] writes [m * x] into [y]. [x] and [y] must not alias. *)

val vec_mul : Vec.t -> t -> Vec.t
(** [vec_mul x m] is the vector-matrix product [x^T * m] (row vector). *)

val vec_mul_into : Vec.t -> t -> Vec.t -> unit

val transpose : t -> t

val map : (float -> float) -> t -> t
(** Apply a function to every stored entry (structure preserved). *)

val scale : float -> t -> t

val add_mat : t -> t -> t

val row_sums : t -> Vec.t

val identity : int -> t

val equal : ?eps:float -> t -> t -> bool
(** Entry-wise comparison within [eps] (default [0.]), including entries
    stored in only one of the two matrices. *)

val pp : Format.formatter -> t -> unit
