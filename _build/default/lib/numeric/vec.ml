type t = float array

let create n x = Array.make n x

let zeros n = create n 0.

let unit n i =
  let v = zeros n in
  v.(i) <- 1.;
  v

let copy = Array.copy

let dim = Array.length

let fill v x = Array.fill v 0 (Array.length v) x

let check_same_dim name a b =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)"
                   name (Array.length a) (Array.length b))

let blit ~src ~dst =
  check_same_dim "blit" src dst;
  Array.blit src 0 dst 0 (Array.length src)

let dot a b =
  check_same_dim "dot" a b;
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let sum v =
  let acc = ref 0. in
  for i = 0 to Array.length v - 1 do
    acc := !acc +. v.(i)
  done;
  !acc

let scale a v = Array.map (fun x -> a *. x) v

let scale_in_place a v =
  for i = 0 to Array.length v - 1 do
    v.(i) <- a *. v.(i)
  done

let axpy a x y =
  check_same_dim "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (a *. x.(i))
  done

let add a b =
  check_same_dim "add" a b;
  Array.init (Array.length a) (fun i -> a.(i) +. b.(i))

let sub a b =
  check_same_dim "sub" a b;
  Array.init (Array.length a) (fun i -> a.(i) -. b.(i))

let normalize_l1 v =
  let s = sum v in
  if s <= 0. then invalid_arg "Vec.normalize_l1: non-positive sum";
  scale_in_place (1. /. s) v

let linf_distance a b =
  check_same_dim "linf_distance" a b;
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    let d = Float.abs (a.(i) -. b.(i)) in
    if d > !acc then acc := d
  done;
  !acc

let l1_norm v =
  let acc = ref 0. in
  for i = 0 to Array.length v - 1 do
    acc := !acc +. Float.abs v.(i)
  done;
  !acc

let max_entry v = Array.fold_left Float.max neg_infinity v

let min_entry v = Array.fold_left Float.min infinity v

let is_distribution ?(eps = 1e-9) v =
  Array.for_all (fun x -> x >= -.eps) v && Float.abs (sum v -. 1.) <= eps

let pp ppf v =
  Format.fprintf ppf "[|";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "%g" x)
    v;
  Format.fprintf ppf "|]"
