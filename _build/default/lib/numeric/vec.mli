(** Dense vectors of floats.

    Thin helpers over [float array] used throughout the CTMC engine. All
    operations are written for clarity first; the hot paths (dot products,
    AXPY) are simple loops the compiler unboxes well. *)

type t = float array

val create : int -> float -> t
(** [create n x] is a vector of length [n] filled with [x]. *)

val zeros : int -> t
(** [zeros n] is [create n 0.]. *)

val unit : int -> int -> t
(** [unit n i] is the [i]-th canonical basis vector of length [n]. *)

val copy : t -> t

val dim : t -> int

val fill : t -> float -> unit

val blit : src:t -> dst:t -> unit
(** Copy [src] into [dst]; the two must have equal length. *)

val dot : t -> t -> float
(** Inner product. Raises [Invalid_argument] on dimension mismatch. *)

val sum : t -> float

val scale : float -> t -> t
(** [scale a v] is a fresh vector [a * v]. *)

val scale_in_place : float -> t -> unit

val axpy : float -> t -> t -> unit
(** [axpy a x y] updates [y <- a*x + y]. *)

val add : t -> t -> t

val sub : t -> t -> t

val normalize_l1 : t -> unit
(** Scale in place so entries sum to 1. Raises [Invalid_argument] if the sum
    is not strictly positive. *)

val linf_distance : t -> t -> float
(** Max-norm distance between two vectors of equal length. *)

val l1_norm : t -> float

val max_entry : t -> float

val min_entry : t -> float

val is_distribution : ?eps:float -> t -> bool
(** True when all entries are non-negative and sum to 1 within [eps]
    (default [1e-9]). *)

val pp : Format.formatter -> t -> unit
