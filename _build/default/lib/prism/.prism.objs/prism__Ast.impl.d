lib/prism/ast.ml: Hashtbl List
