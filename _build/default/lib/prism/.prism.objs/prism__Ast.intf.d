lib/prism/ast.mli:
