lib/prism/builder.ml: Array Ast Ctmc Eval Hashtbl List Numeric Printexc Printf Queue
