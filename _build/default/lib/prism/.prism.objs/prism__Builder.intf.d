lib/prism/builder.mli: Ast Ctmc Numeric
