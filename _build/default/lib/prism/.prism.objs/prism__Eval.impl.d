lib/prism/eval.ml: Ast Float Format Hashtbl List Printexc Printf
