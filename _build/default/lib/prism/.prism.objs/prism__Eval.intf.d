lib/prism/eval.mli: Ast Format
