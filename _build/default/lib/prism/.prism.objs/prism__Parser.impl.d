lib/prism/parser.ml: Array Ast Buffer List Printexc Printf String
