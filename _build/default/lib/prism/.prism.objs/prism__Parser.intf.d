lib/prism/parser.mli: Ast
