lib/prism/printer.ml: Ast Float Format List Printf String
