lib/prism/printer.mli: Ast Format
