type unop = Not | Neg

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | And
  | Or
  | Iff
  | Implies
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge

type expr =
  | Int_lit of int
  | Real_lit of float
  | Bool_lit of bool
  | Var of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Ite of expr * expr * expr
  | Call of string * expr list

type var_type = Tbool | Tint_range of expr * expr

type var_decl = {
  var_name : string;
  var_type : var_type;
  var_init : expr option;
}

type update = (string * expr) list

type alternative = { weight : expr; update : update }

type command = {
  action : string option;
  guard : expr;
  alternatives : alternative list;
}

type module_def = {
  mod_name : string;
  mod_vars : var_decl list;
  mod_commands : command list;
}

type const_type = Cint | Cdouble | Cbool

type const_def = { const_name : string; const_type : const_type; const_value : expr }

type formula_def = { formula_name : string; formula_body : expr }

type label_def = { label_name : string; label_body : expr }

type reward_item = { reward_guard : expr; reward_value : expr }

type rewards_def = { rewards_name : string option; rewards_items : reward_item list }

type model = {
  constants : const_def list;
  formulas : formula_def list;
  labels : label_def list;
  modules : module_def list;
  rewards : rewards_def list;
}

let expr_vars expr =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec go = function
    | Int_lit _ | Real_lit _ | Bool_lit _ -> ()
    | Var name ->
        if not (Hashtbl.mem seen name) then begin
          Hashtbl.replace seen name ();
          out := name :: !out
        end
    | Unop (_, e) -> go e
    | Binop (_, a, b) ->
        go a;
        go b
    | Ite (c, a, b) ->
        go c;
        go a;
        go b
    | Call (_, args) -> List.iter go args
  in
  go expr;
  List.rev !out

let rec subst lookup expr =
  match expr with
  | Int_lit _ | Real_lit _ | Bool_lit _ -> expr
  | Var name -> ( match lookup name with Some e -> e | None -> expr)
  | Unop (op, e) -> Unop (op, subst lookup e)
  | Binop (op, a, b) -> Binop (op, subst lookup a, subst lookup b)
  | Ite (c, a, b) -> Ite (subst lookup c, subst lookup a, subst lookup b)
  | Call (f, args) -> Call (f, List.map (subst lookup) args)
