(** Abstract syntax of the PRISM reactive-modules subset.

    Covers what the Arcade translation and the water-treatment case study
    need, which is the core of PRISM's CTMC fragment: typed constants,
    formulas, labels, modules with bounded-integer and boolean local
    variables, guarded commands with rate-weighted update alternatives,
    optional action labels for multi-way synchronization, and state-reward
    blocks. *)

type unop = Not | Neg

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | And
  | Or
  | Iff
  | Implies
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge

type expr =
  | Int_lit of int
  | Real_lit of float
  | Bool_lit of bool
  | Var of string  (** variable, constant or formula reference *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Ite of expr * expr * expr
  | Call of string * expr list
      (** built-ins: [min], [max], [floor], [ceil], [pow], [mod] *)

type var_type = Tbool | Tint_range of expr * expr

type var_decl = {
  var_name : string;
  var_type : var_type;
  var_init : expr option;  (** defaults to [low] (int) or [false] (bool) *)
}

type update = (string * expr) list
(** Parallel assignments [x' = e]; the empty list is PRISM's [true] update. *)

type alternative = { weight : expr; update : update }
(** One [rate : update] branch of a command. *)

type command = {
  action : string option;
  guard : expr;
  alternatives : alternative list;
}

type module_def = {
  mod_name : string;
  mod_vars : var_decl list;
  mod_commands : command list;
}

type const_type = Cint | Cdouble | Cbool

type const_def = { const_name : string; const_type : const_type; const_value : expr }

type formula_def = { formula_name : string; formula_body : expr }

type label_def = { label_name : string; label_body : expr }

type reward_item = { reward_guard : expr; reward_value : expr }
(** A state-reward line [guard : value;]. *)

type rewards_def = { rewards_name : string option; rewards_items : reward_item list }

type model = {
  constants : const_def list;
  formulas : formula_def list;
  labels : label_def list;
  modules : module_def list;
  rewards : rewards_def list;
}
(** A CTMC model ([ctmc] keyword). *)

val expr_vars : expr -> string list
(** Free names referenced by an expression (variables, constants and
    formulas alike), in first-occurrence order. *)

val subst : (string -> expr option) -> expr -> expr
(** Capture-free substitution of names (used to expand formulas). *)
