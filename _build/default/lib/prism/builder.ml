module Vec = Numeric.Vec
module Sparse = Numeric.Sparse

exception Build_error of string

let () =
  Printexc.register_printer (function
    | Build_error msg -> Some (Printf.sprintf "Prism.Builder.Build_error (%s)" msg)
    | _ -> None)

let error fmt = Printf.ksprintf (fun msg -> raise (Build_error msg)) fmt

type var_info = {
  name : string;
  owner : string; (* module name *)
  is_bool : bool;
  low : int;
  high : int;
  init : int;
}

type built = {
  chain : Ctmc.Chain.t;
  var_names : string array;
  var_is_bool : bool array;
  state_vectors : int array array;
  index_of_vector : int array -> int option;
  labels : (string * bool array) list;
  reward_structures : (string option * Numeric.Vec.t) list;
}

(* Resolve the variable table: evaluate range bounds and initial values
   under the constants. *)
let variable_table consts_env model =
  let vars = ref [] in
  List.iter
    (fun m ->
      List.iter
        (fun { Ast.var_name; var_type; var_init } ->
          if List.exists (fun v -> v.name = var_name) !vars then
            error "duplicate variable %s" var_name;
          let info =
            match var_type with
            | Ast.Tbool ->
                let init =
                  match var_init with
                  | None -> 0
                  | Some e -> if Eval.eval_bool consts_env e then 1 else 0
                in
                { name = var_name; owner = m.Ast.mod_name; is_bool = true;
                  low = 0; high = 1; init }
            | Ast.Tint_range (low_e, high_e) ->
                let low = Eval.eval_int consts_env low_e in
                let high = Eval.eval_int consts_env high_e in
                if low > high then error "variable %s: empty range [%d..%d]" var_name low high;
                let init =
                  match var_init with None -> low | Some e -> Eval.eval_int consts_env e
                in
                if init < low || init > high then
                  error "variable %s: init %d outside [%d..%d]" var_name init low high;
                { name = var_name; owner = m.Ast.mod_name; is_bool = false; low; high; init }
          in
          vars := info :: !vars)
        m.Ast.mod_vars)
    model.Ast.modules;
  Array.of_list (List.rev !vars)

let build ?(max_states = 2_000_000) model =
  let constants =
    try Eval.eval_constants model.Ast.constants
    with Eval.Eval_error msg -> error "constants: %s" msg
  in
  let consts_env =
    Eval.make_env ~constants ~formulas:model.Ast.formulas ~lookup_var:(fun _ -> None)
  in
  let vars = variable_table consts_env model in
  let nvars = Array.length vars in
  let var_index = Hashtbl.create nvars in
  Array.iteri (fun i v -> Hashtbl.replace var_index v.name i) vars;
  let env_for state =
    Eval.make_env ~constants ~formulas:model.Ast.formulas ~lookup_var:(fun name ->
        match Hashtbl.find_opt var_index name with
        | None -> None
        | Some i ->
            let raw = state.(i) in
            Some (if vars.(i).is_bool then Eval.Vbool (raw <> 0) else Eval.Vint raw))
  in
  (* Pre-check that every command writes only its own module's variables. *)
  List.iter
    (fun m ->
      List.iter
        (fun cmd ->
          List.iter
            (fun { Ast.update; _ } ->
              List.iter
                (fun (v, _) ->
                  match Hashtbl.find_opt var_index v with
                  | None -> error "module %s assigns unknown variable %s" m.Ast.mod_name v
                  | Some i ->
                      if vars.(i).owner <> m.Ast.mod_name then
                        error "module %s assigns variable %s owned by module %s"
                          m.Ast.mod_name v vars.(i).owner)
                update)
            cmd.Ast.alternatives)
        m.Ast.mod_commands)
    model.Ast.modules;
  (* Action alphabet: modules that mention each action. *)
  let actions = Hashtbl.create 8 in
  List.iter
    (fun m ->
      List.iter
        (fun cmd ->
          match cmd.Ast.action with
          | None -> ()
          | Some a ->
              let mods = try Hashtbl.find actions a with Not_found -> [] in
              if not (List.mem m.Ast.mod_name mods) then
                Hashtbl.replace actions a (m.Ast.mod_name :: mods))
        m.Ast.mod_commands)
    model.Ast.modules;
  let apply_update state update =
    let state' = Array.copy state in
    let env = env_for state in
    List.iter
      (fun (v, e) ->
        let i = Hashtbl.find var_index v in
        let value =
          if vars.(i).is_bool then (if Eval.eval_bool env e then 1 else 0)
          else begin
            let x = Eval.eval_int env e in
            if x < vars.(i).low || x > vars.(i).high then
              error "assignment %s' = %d outside [%d..%d]" v x vars.(i).low vars.(i).high;
            x
          end
        in
        state'.(i) <- value)
      update;
    state'
  in
  (* Transitions out of one state: (rate, successor) list. *)
  let successors state =
    let env = env_for state in
    let out = ref [] in
    let emit rate state' =
      if rate < 0. then error "negative rate %g" rate;
      if rate > 0. && state' <> state then out := (rate, state') :: !out
    in
    (* unlabelled commands: interleaving *)
    List.iter
      (fun m ->
        List.iter
          (fun cmd ->
            if cmd.Ast.action = None && Eval.eval_bool env cmd.Ast.guard then
              List.iter
                (fun { Ast.weight; update } ->
                  emit (Eval.eval_number env weight) (apply_update state update))
                cmd.Ast.alternatives)
          m.Ast.mod_commands)
      model.Ast.modules;
    (* synchronized commands: every participating module must offer one *)
    Hashtbl.iter
      (fun action participating ->
        let enabled_per_module =
          List.map
            (fun mod_name ->
              let m = List.find (fun m -> m.Ast.mod_name = mod_name) model.Ast.modules in
              List.concat_map
                (fun cmd ->
                  if cmd.Ast.action = Some action && Eval.eval_bool env cmd.Ast.guard then
                    List.map (fun alt -> alt) cmd.Ast.alternatives
                  else [])
                m.Ast.mod_commands)
            participating
        in
        if List.for_all (fun alts -> alts <> []) enabled_per_module then begin
          (* cartesian product of alternatives across modules *)
          let rec product acc = function
            | [] -> [ List.rev acc ]
            | alts :: rest ->
                List.concat_map (fun alt -> product (alt :: acc) rest) alts
          in
          List.iter
            (fun combo ->
              let rate =
                List.fold_left
                  (fun r { Ast.weight; _ } -> r *. Eval.eval_number env weight)
                  1. combo
              in
              (* ownership checks guarantee the modules write disjoint
                 variables, so merging the updates and applying them in a
                 single pass from the original state implements PRISM's
                 simultaneous-update semantics *)
              let merged = List.concat_map (fun { Ast.update; _ } -> update) combo in
              emit rate (apply_update state merged))
            (product [] enabled_per_module)
        end)
      actions;
    !out
  in
  (* BFS exploration *)
  let initial = Array.map (fun v -> v.init) vars in
  let index_table : (int array, int) Hashtbl.t = Hashtbl.create 1024 in
  let states_rev = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  let intern state =
    match Hashtbl.find_opt index_table state with
    | Some i -> i
    | None ->
        let i = !count in
        if i >= max_states then error "state space exceeds max_states = %d" max_states;
        Hashtbl.replace index_table state i;
        states_rev := state :: !states_rev;
        incr count;
        Queue.add state queue;
        i
  in
  ignore (intern initial);
  let transitions = ref [] in
  while not (Queue.is_empty queue) do
    let state = Queue.pop queue in
    let i = Hashtbl.find index_table state in
    List.iter
      (fun (rate, state') ->
        let j = intern state' in
        transitions := (i, j, rate) :: !transitions)
      (try successors state
       with Eval.Eval_error msg -> error "evaluating transitions: %s" msg)
  done;
  let n = !count in
  let state_vectors = Array.make n [||] in
  List.iteri (fun k s -> state_vectors.(n - 1 - k) <- s) !states_rev;
  let b = Sparse.Builder.create ~rows:n ~cols:n in
  List.iter (fun (i, j, r) -> Sparse.Builder.add b i j r) !transitions;
  let init = Vec.unit n 0 in
  let chain = Ctmc.Chain.make ~init (Sparse.Builder.to_csr b) in
  (* labels and rewards per state *)
  let eval_label body =
    Array.map
      (fun state ->
        try Eval.eval_bool (env_for state) body
        with Eval.Eval_error msg -> error "label: %s" msg)
      state_vectors
  in
  let labels =
    List.map (fun { Ast.label_name; label_body } -> (label_name, eval_label label_body)) model.Ast.labels
  in
  let reward_structures =
    List.map
      (fun { Ast.rewards_name; rewards_items } ->
        let values =
          Array.map
            (fun state ->
              let env = env_for state in
              List.fold_left
                (fun acc { Ast.reward_guard; reward_value } ->
                  try
                    if Eval.eval_bool env reward_guard then
                      acc +. Eval.eval_number env reward_value
                    else acc
                  with Eval.Eval_error msg -> error "rewards: %s" msg)
                0. rewards_items)
            state_vectors
        in
        (rewards_name, values))
      model.Ast.rewards
  in
  {
    chain;
    var_names = Array.map (fun v -> v.name) vars;
    var_is_bool = Array.map (fun v -> v.is_bool) vars;
    state_vectors;
    index_of_vector = (fun v -> Hashtbl.find_opt index_table v);
    labels;
    reward_structures;
  }

let label_pred built name =
  let values = List.assoc name built.labels in
  fun s -> values.(s)

let reward_structure built name = List.assoc name built.reward_structures

let state_pred built expr =
  (* Rebuild a tiny evaluation context over the stored vectors. We do not
     keep the constants/formulas around in [built]; predicates passed here
     must be closed over variables only. *)
  let var_index = Hashtbl.create (Array.length built.var_names) in
  Array.iteri (fun i name -> Hashtbl.replace var_index name i) built.var_names;
  fun s ->
    let state = built.state_vectors.(s) in
    let env =
      Eval.make_env ~constants:[] ~formulas:[] ~lookup_var:(fun name ->
          match Hashtbl.find_opt var_index name with
          | None -> None
          | Some i ->
              Some
                (if built.var_is_bool.(i) then Eval.Vbool (state.(i) <> 0)
                 else Eval.Vint state.(i)))
    in
    Eval.eval_bool env expr
