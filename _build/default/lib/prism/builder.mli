(** State-space construction: from a PRISM model to an explicit CTMC.

    Explores the reachable state space breadth-first from the initial
    valuation. Unlabelled commands interleave; commands sharing an action
    label synchronize across every module whose alphabet contains that
    action, with the product of the alternatives' rates (PRISM's CTMC
    semantics). Self-loop rates are discarded (they do not affect a CTMC's
    behaviour). *)

type built = {
  chain : Ctmc.Chain.t;
  var_names : string array;  (** global variable order *)
  var_is_bool : bool array;  (** whether each variable is boolean *)
  state_vectors : int array array;
      (** [state_vectors.(s)] is the valuation of state [s] (booleans as
          0/1), indexed like [var_names] *)
  index_of_vector : int array -> int option;
      (** look up a state index by valuation *)
  labels : (string * bool array) list;
      (** each [label] definition evaluated in every state *)
  reward_structures : (string option * Numeric.Vec.t) list;
      (** each [rewards] block evaluated in every state *)
}

exception Build_error of string

val build : ?max_states:int -> Ast.model -> built
(** [max_states] (default [2_000_000]) aborts runaway explorations with
    {!Build_error}. Other causes: type errors, out-of-range assignments,
    a module writing another module's variable, or negative rates. *)

val label_pred : built -> string -> int -> bool
(** [label_pred b name] is the predicate of the named label; raises
    [Not_found] if the model has no such label. *)

val reward_structure : built -> string option -> Numeric.Vec.t
(** Find a reward structure by (optional) name; raises [Not_found]. *)

val state_pred : built -> Ast.expr -> int -> bool
(** Evaluate an arbitrary boolean expression as a predicate over built
    states (used by the CSL checker for nested formulas). *)
