type value = Vbool of bool | Vint of int | Vreal of float

exception Eval_error of string

let () =
  Printexc.register_printer (function
    | Eval_error msg -> Some (Printf.sprintf "Prism.Eval.Eval_error (%s)" msg)
    | _ -> None)

let error fmt = Printf.ksprintf (fun msg -> raise (Eval_error msg)) fmt

type env = {
  constants : (string, value) Hashtbl.t;
  formulas : (string, Ast.expr) Hashtbl.t;
  lookup_var : string -> value option;
}

let make_env ~constants ~formulas ~lookup_var =
  let ctable = Hashtbl.create 16 in
  List.iter (fun (name, v) -> Hashtbl.replace ctable name v) constants;
  let ftable = Hashtbl.create 16 in
  List.iter
    (fun { Ast.formula_name; formula_body } ->
      Hashtbl.replace ftable formula_name formula_body)
    formulas;
  { constants = ctable; formulas = ftable; lookup_var }

let as_bool = function
  | Vbool b -> b
  | v -> error "expected a boolean, got %s" (match v with Vint _ -> "int" | Vreal _ -> "double" | Vbool _ -> "bool")

let as_number = function
  | Vint i -> float_of_int i
  | Vreal r -> r
  | Vbool _ -> error "expected a number, got bool"

let numeric_binop op a b =
  (* preserve integerness when both sides are ints and the operation is
     closed over ints *)
  match (a, b) with
  | Vint x, Vint y -> (
      match op with
      | Ast.Add -> Vint (x + y)
      | Ast.Sub -> Vint (x - y)
      | Ast.Mul -> Vint (x * y)
      | Ast.Div ->
          if y = 0 then error "division by zero";
          Vreal (float_of_int x /. float_of_int y)
      | _ -> error "numeric_binop: not a numeric operator")
  | _ ->
      let x = as_number a and y = as_number b in
      (match op with
      | Ast.Add -> Vreal (x +. y)
      | Ast.Sub -> Vreal (x -. y)
      | Ast.Mul -> Vreal (x *. y)
      | Ast.Div ->
          if y = 0. then error "division by zero";
          Vreal (x /. y)
      | _ -> error "numeric_binop: not a numeric operator")

let compare_values a b =
  match (a, b) with
  | Vbool x, Vbool y -> compare x y
  | (Vint _ | Vreal _), (Vint _ | Vreal _) -> compare (as_number a) (as_number b)
  | _ -> error "cannot compare boolean with number"

let value_equal a b = compare_values a b = 0

let rec eval_with env visiting expr =
  let eval e = eval_with env visiting e in
  match expr with
  | Ast.Int_lit i -> Vint i
  | Ast.Real_lit r -> Vreal r
  | Ast.Bool_lit b -> Vbool b
  | Ast.Var name -> (
      match env.lookup_var name with
      | Some v -> v
      | None -> (
          match Hashtbl.find_opt env.constants name with
          | Some v -> v
          | None -> (
              match Hashtbl.find_opt env.formulas name with
              | Some body ->
                  if List.mem name visiting then error "cyclic formula %s" name;
                  eval_with env (name :: visiting) body
              | None -> error "unbound name %s" name)))
  | Ast.Unop (Ast.Not, e) -> Vbool (not (as_bool (eval e)))
  | Ast.Unop (Ast.Neg, e) -> (
      match eval e with
      | Vint i -> Vint (-i)
      | Vreal r -> Vreal (-.r)
      | Vbool _ -> error "cannot negate a boolean")
  | Ast.Binop (Ast.And, a, b) -> Vbool (as_bool (eval a) && as_bool (eval b))
  | Ast.Binop (Ast.Or, a, b) -> Vbool (as_bool (eval a) || as_bool (eval b))
  | Ast.Binop (Ast.Implies, a, b) -> Vbool ((not (as_bool (eval a))) || as_bool (eval b))
  | Ast.Binop (Ast.Iff, a, b) -> Vbool (as_bool (eval a) = as_bool (eval b))
  | Ast.Binop (Ast.Eq, a, b) -> Vbool (compare_values (eval a) (eval b) = 0)
  | Ast.Binop (Ast.Neq, a, b) -> Vbool (compare_values (eval a) (eval b) <> 0)
  | Ast.Binop (Ast.Lt, a, b) -> Vbool (compare_values (eval a) (eval b) < 0)
  | Ast.Binop (Ast.Le, a, b) -> Vbool (compare_values (eval a) (eval b) <= 0)
  | Ast.Binop (Ast.Gt, a, b) -> Vbool (compare_values (eval a) (eval b) > 0)
  | Ast.Binop (Ast.Ge, a, b) -> Vbool (compare_values (eval a) (eval b) >= 0)
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div) as op, a, b) ->
      numeric_binop op (eval a) (eval b)
  | Ast.Ite (c, a, b) -> if as_bool (eval c) then eval a else eval b
  | Ast.Call (f, args) -> eval_call env visiting f (List.map eval args)

and eval_call _env _visiting f args =
  let two () =
    match args with
    | [ a; b ] -> (a, b)
    | _ -> error "%s expects 2 arguments, got %d" f (List.length args)
  in
  let one () =
    match args with
    | [ a ] -> a
    | _ -> error "%s expects 1 argument, got %d" f (List.length args)
  in
  match f with
  | "min" -> (
      match args with
      | [] -> error "min of no arguments"
      | first :: rest ->
          List.fold_left
            (fun acc v -> if compare_values v acc < 0 then v else acc)
            first rest)
  | "max" -> (
      match args with
      | [] -> error "max of no arguments"
      | first :: rest ->
          List.fold_left
            (fun acc v -> if compare_values v acc > 0 then v else acc)
            first rest)
  | "floor" -> Vint (int_of_float (Float.floor (as_number (one ()))))
  | "ceil" -> Vint (int_of_float (Float.ceil (as_number (one ()))))
  | "pow" ->
      let a, b = two () in
      (match (a, b) with
      | Vint x, Vint y when y >= 0 ->
          let rec go acc k = if k = 0 then acc else go (acc * x) (k - 1) in
          Vint (go 1 y)
      | _ -> Vreal (Float.pow (as_number a) (as_number b)))
  | "mod" -> (
      let a, b = two () in
      match (a, b) with
      | Vint x, Vint y ->
          if y = 0 then error "mod by zero";
          Vint (((x mod y) + abs y) mod abs y)
      | _ -> error "mod expects integers")
  | _ -> error "unknown function %s" f

let eval env expr = eval_with env [] expr

let eval_bool env expr = as_bool (eval env expr)

let eval_int env expr =
  match eval env expr with
  | Vint i -> i
  | Vreal _ -> error "expected an integer, got double"
  | Vbool _ -> error "expected an integer, got bool"

let eval_number env expr = as_number (eval env expr)

let eval_constants defs =
  List.fold_left
    (fun resolved { Ast.const_name; const_type; const_value } ->
      let env =
        make_env ~constants:resolved ~formulas:[] ~lookup_var:(fun _ -> None)
      in
      let v = eval env const_value in
      let v =
        match (const_type, v) with
        | Ast.Cint, Vint _ -> v
        | Ast.Cdouble, Vreal _ -> v
        | Ast.Cdouble, Vint i -> Vreal (float_of_int i)
        | Ast.Cbool, Vbool _ -> v
        | _ -> error "constant %s: value does not match declared type" const_name
      in
      resolved @ [ (const_name, v) ])
    [] defs

let pp_value ppf = function
  | Vbool b -> Format.pp_print_bool ppf b
  | Vint i -> Format.pp_print_int ppf i
  | Vreal r -> Format.fprintf ppf "%g" r
