(** Expression evaluation for the PRISM subset.

    Values are booleans, integers or doubles; integers promote to doubles
    where an operator mixes them, matching PRISM's semantics. Name
    resolution goes through an {!env}, which layers state variables over
    constants over formulas (formulas are expanded recursively, with cycle
    detection). *)

type value = Vbool of bool | Vint of int | Vreal of float

exception Eval_error of string

type env

val make_env :
  constants:(string * value) list ->
  formulas:Ast.formula_def list ->
  lookup_var:(string -> value option) ->
  env
(** Build an environment. [lookup_var] resolves state variables; constants
    shadow formulas; variables shadow both. *)

val eval : env -> Ast.expr -> value
(** Raises {!Eval_error} on unbound names, type errors, division by zero or
    formula cycles. *)

val eval_bool : env -> Ast.expr -> bool

val eval_int : env -> Ast.expr -> int

val eval_number : env -> Ast.expr -> float
(** Accepts [Vint] or [Vreal] and returns a float. *)

val eval_constants : Ast.const_def list -> (string * value) list
(** Resolve constant definitions in order; each may reference the previous
    ones. Checks the declared type of every constant. *)

val value_equal : value -> value -> bool

val pp_value : Format.formatter -> value -> unit
