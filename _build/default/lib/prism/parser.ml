exception Syntax_error of { line : int; column : int; message : string }

let () =
  Printexc.register_printer (function
    | Syntax_error { line; column; message } ->
        Some (Printf.sprintf "Prism.Parser.Syntax_error (line %d, column %d: %s)" line column message)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Lexer *)

type token =
  | IDENT of string
  | INT of int
  | REAL of float
  | STRING of string
  | LBRACKET
  | RBRACKET
  | LPAREN
  | RPAREN
  | SEMI
  | COLON
  | PRIME
  | ARROW
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | AMP
  | BAR
  | BANG
  | QUESTION
  | EQ
  | NEQ
  | LE
  | GE
  | LT
  | GT
  | IFF
  | IMPLIES
  | DOTDOT
  | COMMA
  | EOF

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT i -> Printf.sprintf "integer %d" i
  | REAL r -> Printf.sprintf "real %g" r
  | STRING s -> Printf.sprintf "string %S" s
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | SEMI -> "';'"
  | COLON -> "':'"
  | PRIME -> "'''"
  | ARROW -> "'->'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | AMP -> "'&'"
  | BAR -> "'|'"
  | BANG -> "'!'"
  | QUESTION -> "'?'"
  | EQ -> "'='"
  | NEQ -> "'!='"
  | LE -> "'<='"
  | GE -> "'>='"
  | LT -> "'<'"
  | GT -> "'>'"
  | IFF -> "'<=>'"
  | IMPLIES -> "'=>'"
  | DOTDOT -> "'..'"
  | COMMA -> "','"
  | EOF -> "end of input"

type lexed = { tok : token; line : int; col : int }

let lex input =
  let n = String.length input in
  let pos = ref 0 and line = ref 1 and col = ref 1 in
  let out = ref [] in
  let error message = raise (Syntax_error { line = !line; column = !col; message }) in
  let advance () =
    let c = input.[!pos] in
    incr pos;
    if c = '\n' then begin
      incr line;
      col := 1
    end
    else incr col;
    c
  in
  let peek k = if !pos + k < n then Some input.[!pos + k] else None in
  let emit tok l c = out := { tok; line = l; col = c } :: !out in
  let is_digit c = c >= '0' && c <= '9' in
  let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let is_ident c = is_ident_start c || is_digit c in
  while !pos < n do
    let l = !line and c0 = !col in
    match input.[!pos] with
    | ' ' | '\t' | '\r' | '\n' -> ignore (advance ())
    | '/' when peek 1 = Some '/' ->
        while !pos < n && input.[!pos] <> '\n' do
          ignore (advance ())
        done
    | '"' ->
        ignore (advance ());
        let buf = Buffer.create 16 in
        let continue = ref true in
        while !continue do
          if !pos >= n then error "unterminated string";
          match advance () with
          | '"' -> continue := false
          | ch -> Buffer.add_char buf ch
        done;
        emit (STRING (Buffer.contents buf)) l c0
    | ch when is_digit ch ->
        let start = !pos in
        while !pos < n && is_digit input.[!pos] do
          ignore (advance ())
        done;
        let is_real = ref false in
        if !pos < n && input.[!pos] = '.' && peek 1 <> Some '.' then begin
          is_real := true;
          ignore (advance ());
          while !pos < n && is_digit input.[!pos] do
            ignore (advance ())
          done
        end;
        if !pos < n && (input.[!pos] = 'e' || input.[!pos] = 'E') then begin
          is_real := true;
          ignore (advance ());
          if !pos < n && (input.[!pos] = '+' || input.[!pos] = '-') then ignore (advance ());
          while !pos < n && is_digit input.[!pos] do
            ignore (advance ())
          done
        end;
        let text = String.sub input start (!pos - start) in
        if !is_real then emit (REAL (float_of_string text)) l c0
        else emit (INT (int_of_string text)) l c0
    | ch when is_ident_start ch ->
        let start = !pos in
        while !pos < n && is_ident input.[!pos] do
          ignore (advance ())
        done;
        emit (IDENT (String.sub input start (!pos - start))) l c0
    | '[' ->
        ignore (advance ());
        emit LBRACKET l c0
    | ']' ->
        ignore (advance ());
        emit RBRACKET l c0
    | '(' ->
        ignore (advance ());
        emit LPAREN l c0
    | ')' ->
        ignore (advance ());
        emit RPAREN l c0
    | ';' ->
        ignore (advance ());
        emit SEMI l c0
    | ':' ->
        ignore (advance ());
        emit COLON l c0
    | '\'' ->
        ignore (advance ());
        emit PRIME l c0
    | ',' ->
        ignore (advance ());
        emit COMMA l c0
    | '+' ->
        ignore (advance ());
        emit PLUS l c0
    | '*' ->
        ignore (advance ());
        emit STAR l c0
    | '/' ->
        ignore (advance ());
        emit SLASH l c0
    | '&' ->
        ignore (advance ());
        emit AMP l c0
    | '|' ->
        ignore (advance ());
        emit BAR l c0
    | '?' ->
        ignore (advance ());
        emit QUESTION l c0
    | '-' ->
        ignore (advance ());
        if !pos < n && input.[!pos] = '>' then begin
          ignore (advance ());
          emit ARROW l c0
        end
        else emit MINUS l c0
    | '!' ->
        ignore (advance ());
        if !pos < n && input.[!pos] = '=' then begin
          ignore (advance ());
          emit NEQ l c0
        end
        else emit BANG l c0
    | '<' ->
        ignore (advance ());
        if !pos + 1 < n && input.[!pos] = '=' && input.[!pos + 1] = '>' then begin
          ignore (advance ());
          ignore (advance ());
          emit IFF l c0
        end
        else if !pos < n && input.[!pos] = '=' then begin
          ignore (advance ());
          emit LE l c0
        end
        else emit LT l c0
    | '>' ->
        ignore (advance ());
        if !pos < n && input.[!pos] = '=' then begin
          ignore (advance ());
          emit GE l c0
        end
        else emit GT l c0
    | '=' ->
        ignore (advance ());
        if !pos < n && input.[!pos] = '>' then begin
          ignore (advance ());
          emit IMPLIES l c0
        end
        else emit EQ l c0
    | '.' ->
        ignore (advance ());
        if !pos < n && input.[!pos] = '.' then begin
          ignore (advance ());
          emit DOTDOT l c0
        end
        else error "unexpected '.'"
    | ch -> error (Printf.sprintf "unexpected character %C" ch)
  done;
  emit EOF !line !col;
  Array.of_list (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Token stream *)

type stream = { tokens : lexed array; mutable idx : int }

let current st = st.tokens.(st.idx)

let fail st message =
  let { line; col; _ } = current st in
  raise (Syntax_error { line; column = col; message })

let next st =
  let t = current st in
  if t.tok <> EOF then st.idx <- st.idx + 1;
  t.tok

let peek_tok st = (current st).tok

let peek_tok2 st =
  if st.idx + 1 < Array.length st.tokens then st.tokens.(st.idx + 1).tok else EOF

let expect st tok =
  let got = next st in
  if got <> tok then
    fail st (Printf.sprintf "expected %s, got %s" (token_to_string tok) (token_to_string got))

let expect_ident st =
  match next st with
  | IDENT s -> s
  | got -> fail st (Printf.sprintf "expected an identifier, got %s" (token_to_string got))

let accept st tok = if peek_tok st = tok then (st.idx <- st.idx + 1; true) else false

(* ------------------------------------------------------------------ *)
(* Expressions: precedence climbing *)

let keywords =
  [ "ctmc"; "dtmc"; "mdp"; "module"; "endmodule"; "const"; "int"; "double";
    "bool"; "formula"; "label"; "rewards"; "endrewards"; "init"; "endinit";
    "true"; "false"; "min"; "max"; "floor"; "ceil"; "pow"; "mod" ]

let rec parse_expr_prec st =
  parse_ite st

and parse_ite st =
  let cond = parse_iff st in
  if accept st QUESTION then begin
    let then_ = parse_ite st in
    expect st COLON;
    let else_ = parse_ite st in
    Ast.Ite (cond, then_, else_)
  end
  else cond

and parse_iff st =
  let lhs = parse_implies st in
  if accept st IFF then Ast.Binop (Ast.Iff, lhs, parse_iff st) else lhs

and parse_implies st =
  let lhs = parse_or st in
  if accept st IMPLIES then Ast.Binop (Ast.Implies, lhs, parse_implies st) else lhs

and parse_or st =
  let lhs = ref (parse_and st) in
  while accept st BAR do
    lhs := Ast.Binop (Ast.Or, !lhs, parse_and st)
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_not st) in
  while accept st AMP do
    lhs := Ast.Binop (Ast.And, !lhs, parse_not st)
  done;
  !lhs

and parse_not st =
  if accept st BANG then Ast.Unop (Ast.Not, parse_not st) else parse_rel st

and parse_rel st =
  let lhs = parse_add st in
  match peek_tok st with
  | EQ ->
      ignore (next st);
      Ast.Binop (Ast.Eq, lhs, parse_add st)
  | NEQ ->
      ignore (next st);
      Ast.Binop (Ast.Neq, lhs, parse_add st)
  | LT ->
      ignore (next st);
      Ast.Binop (Ast.Lt, lhs, parse_add st)
  | LE ->
      ignore (next st);
      Ast.Binop (Ast.Le, lhs, parse_add st)
  | GT ->
      ignore (next st);
      Ast.Binop (Ast.Gt, lhs, parse_add st)
  | GE ->
      ignore (next st);
      Ast.Binop (Ast.Ge, lhs, parse_add st)
  | _ -> lhs

and parse_add st =
  let lhs = ref (parse_mul st) in
  let continue = ref true in
  while !continue do
    if accept st PLUS then lhs := Ast.Binop (Ast.Add, !lhs, parse_mul st)
    else if accept st MINUS then lhs := Ast.Binop (Ast.Sub, !lhs, parse_mul st)
    else continue := false
  done;
  !lhs

and parse_mul st =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    if accept st STAR then lhs := Ast.Binop (Ast.Mul, !lhs, parse_unary st)
    else if accept st SLASH then lhs := Ast.Binop (Ast.Div, !lhs, parse_unary st)
    else continue := false
  done;
  !lhs

and parse_unary st =
  if accept st MINUS then Ast.Unop (Ast.Neg, parse_unary st) else parse_atom st

and parse_atom st =
  match next st with
  | INT i -> Ast.Int_lit i
  | REAL r -> Ast.Real_lit r
  | IDENT "true" -> Ast.Bool_lit true
  | IDENT "false" -> Ast.Bool_lit false
  | IDENT (("min" | "max" | "floor" | "ceil" | "pow" | "mod") as f) ->
      expect st LPAREN;
      let args = parse_args st in
      Ast.Call (f, args)
  | IDENT name -> Ast.Var name
  | LPAREN ->
      let e = parse_expr_prec st in
      expect st RPAREN;
      e
  | got -> fail st (Printf.sprintf "expected an expression, got %s" (token_to_string got))

and parse_args st =
  let first = parse_expr_prec st in
  let args = ref [ first ] in
  while accept st COMMA do
    args := parse_expr_prec st :: !args
  done;
  expect st RPAREN;
  List.rev !args

(* ------------------------------------------------------------------ *)
(* Declarations *)

let parse_const st =
  (* "const" already consumed *)
  let const_type =
    match peek_tok st with
    | IDENT "int" ->
        ignore (next st);
        Ast.Cint
    | IDENT "double" ->
        ignore (next st);
        Ast.Cdouble
    | IDENT "bool" ->
        ignore (next st);
        Ast.Cbool
    | _ -> Ast.Cint
  in
  let const_name = expect_ident st in
  expect st EQ;
  let const_value = parse_expr_prec st in
  expect st SEMI;
  { Ast.const_name; const_type; const_value }

let parse_formula st =
  let formula_name = expect_ident st in
  expect st EQ;
  let formula_body = parse_expr_prec st in
  expect st SEMI;
  { Ast.formula_name; formula_body }

let parse_label st =
  let label_name =
    match next st with
    | STRING s -> s
    | got -> fail st (Printf.sprintf "expected a quoted label name, got %s" (token_to_string got))
  in
  expect st EQ;
  let label_body = parse_expr_prec st in
  expect st SEMI;
  { Ast.label_name; label_body }

let parse_var_decl st =
  let var_name = expect_ident st in
  expect st COLON;
  let var_type =
    match peek_tok st with
    | IDENT "bool" ->
        ignore (next st);
        Ast.Tbool
    | LBRACKET ->
        ignore (next st);
        let low = parse_expr_prec st in
        expect st DOTDOT;
        let high = parse_expr_prec st in
        expect st RBRACKET;
        Ast.Tint_range (low, high)
    | got -> fail st (Printf.sprintf "expected a variable type, got %s" (token_to_string got))
  in
  let var_init =
    if peek_tok st = IDENT "init" then begin
      ignore (next st);
      Some (parse_expr_prec st)
    end
    else None
  in
  expect st SEMI;
  { Ast.var_name; var_type; var_init }

let parse_update st =
  (* "true" (no assignment) or (x'=e) & (y'=e) ... *)
  if peek_tok st = IDENT "true" then begin
    ignore (next st);
    []
  end
  else begin
    let assigns = ref [] in
    let parse_one () =
      expect st LPAREN;
      let var = expect_ident st in
      expect st PRIME;
      expect st EQ;
      let e = parse_expr_prec st in
      expect st RPAREN;
      assigns := (var, e) :: !assigns
    in
    parse_one ();
    while accept st AMP do
      parse_one ()
    done;
    List.rev !assigns
  end

let parse_alternative st =
  (* rate : update   (rate optional: defaults to 1) *)
  (* Detect "expr :" vs bare update: an update starts with '(' ident ''' or
     the keyword true; but a rate expression can also start with '('.
     PRISM requires the rate for CTMCs, so: if the alternative begins with
     "true" or with "(" ident "'", treat it as a bare update. *)
  let bare_update =
    match peek_tok st with
    | IDENT "true" -> true
    | LPAREN -> (
        match peek_tok2 st with
        | IDENT _ ->
            (* lookahead for prime after the identifier *)
            st.idx + 2 < Array.length st.tokens && st.tokens.(st.idx + 2).tok = PRIME
        | _ -> false)
    | _ -> false
  in
  if bare_update then { Ast.weight = Ast.Real_lit 1.; update = parse_update st }
  else begin
    let weight = parse_expr_prec st in
    expect st COLON;
    { Ast.weight; update = parse_update st }
  end

let parse_command st =
  expect st LBRACKET;
  let action =
    match peek_tok st with
    | IDENT name ->
        ignore (next st);
        Some name
    | _ -> None
  in
  expect st RBRACKET;
  let guard = parse_expr_prec st in
  expect st ARROW;
  let alternatives = ref [ parse_alternative st ] in
  while accept st PLUS do
    alternatives := parse_alternative st :: !alternatives
  done;
  expect st SEMI;
  { Ast.action; guard; alternatives = List.rev !alternatives }

let parse_module st =
  let mod_name = expect_ident st in
  let vars = ref [] and commands = ref [] in
  let continue = ref true in
  while !continue do
    match peek_tok st with
    | IDENT "endmodule" ->
        ignore (next st);
        continue := false
    | IDENT _ -> vars := parse_var_decl st :: !vars
    | LBRACKET -> commands := parse_command st :: !commands
    | got -> fail st (Printf.sprintf "expected a declaration or endmodule, got %s" (token_to_string got))
  done;
  { Ast.mod_name; mod_vars = List.rev !vars; mod_commands = List.rev !commands }

let parse_rewards st =
  let rewards_name =
    match peek_tok st with
    | STRING s ->
        ignore (next st);
        Some s
    | _ -> None
  in
  let items = ref [] in
  let continue = ref true in
  while !continue do
    match peek_tok st with
    | IDENT "endrewards" ->
        ignore (next st);
        continue := false
    | LBRACKET ->
        fail st "transition rewards are not supported (state rewards only)"
    | _ ->
        let reward_guard = parse_expr_prec st in
        expect st COLON;
        let reward_value = parse_expr_prec st in
        expect st SEMI;
        items := { Ast.reward_guard; reward_value } :: !items
  done;
  { Ast.rewards_name; rewards_items = List.rev !items }

let parse_model input =
  let st = { tokens = lex input; idx = 0 } in
  (match next st with
  | IDENT "ctmc" -> ()
  | IDENT ("dtmc" | "mdp") -> fail st "only ctmc models are supported"
  | got -> fail st (Printf.sprintf "expected 'ctmc', got %s" (token_to_string got)));
  let constants = ref [] in
  let formulas = ref [] in
  let labels = ref [] in
  let modules = ref [] in
  let rewards = ref [] in
  let continue = ref true in
  while !continue do
    match next st with
    | EOF -> continue := false
    | IDENT "const" -> constants := parse_const st :: !constants
    | IDENT "formula" -> formulas := parse_formula st :: !formulas
    | IDENT "label" -> labels := parse_label st :: !labels
    | IDENT "module" -> modules := parse_module st :: !modules
    | IDENT "rewards" -> rewards := parse_rewards st :: !rewards
    | IDENT "init" -> fail st "init blocks are not supported; use variable init values"
    | got -> fail st (Printf.sprintf "unexpected %s at top level" (token_to_string got))
  done;
  ignore keywords;
  {
    Ast.constants = List.rev !constants;
    formulas = List.rev !formulas;
    labels = List.rev !labels;
    modules = List.rev !modules;
    rewards = List.rev !rewards;
  }

let parse_expr input =
  let st = { tokens = lex input; idx = 0 } in
  let e = parse_expr_prec st in
  (match next st with
  | EOF -> ()
  | got -> fail st (Printf.sprintf "trailing %s after expression" (token_to_string got)));
  e
