(** Parser for the PRISM-language subset.

    Accepts the [ctmc] model type, [const] (int/double/bool), [formula],
    [label], [module ... endmodule] with bounded-int and bool variables,
    guarded commands (optionally action-labelled, with [+]-separated
    rate-weighted alternatives), and [rewards ... endrewards] blocks with
    state-reward items. Line comments ([// ...]) are ignored.

    The grammar follows PRISM's: [=] is equality inside expressions, [x' = e]
    is an assignment inside updates, and the expression precedence chain is
    [? :], [<=>], [=>], [|], [&], [!], relational, additive, multiplicative,
    unary minus. *)

exception Syntax_error of { line : int; column : int; message : string }

val parse_model : string -> Ast.model
(** Parse a complete model file. Raises {!Syntax_error}. *)

val parse_expr : string -> Ast.expr
(** Parse a standalone expression (used by the CSL layer and tests). *)
