open Ast

(* Precedence levels for minimal parenthesization; higher binds tighter. *)
let binop_prec = function
  | Iff -> 1
  | Implies -> 2
  | Or -> 3
  | And -> 4
  | Eq | Neq | Lt | Le | Gt | Ge -> 6
  | Add | Sub -> 7
  | Mul | Div -> 8

let binop_symbol = function
  | Iff -> "<=>"
  | Implies -> "=>"
  | Or -> "|"
  | And -> "&"
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"

let float_literal r =
  if Float.is_integer r && Float.abs r < 1e15 then Printf.sprintf "%.1f" r
  else Printf.sprintf "%.17g" r

let rec expr_prec level e =
  match e with
  | Int_lit i -> if i < 0 then Printf.sprintf "(%d)" i else string_of_int i
  | Real_lit r -> float_literal r
  | Bool_lit b -> string_of_bool b
  | Var name -> name
  | Unop (Not, e) -> "!" ^ expr_prec 5 e
  | Unop (Neg, e) -> "-" ^ expr_prec 9 e
  | Binop (op, a, b) ->
      let p = binop_prec op in
      (* relational operators are non-associative (parenthesize both sides);
         => and <=> parse right-associatively; the rest are left-associative *)
      let left_level, right_level =
        match op with
        | Eq | Neq | Lt | Le | Gt | Ge -> (p + 1, p + 1)
        | Implies | Iff -> (p + 1, p)
        | Add | Sub | Mul | Div | And | Or -> (p, p + 1)
      in
      let s =
        Printf.sprintf "%s %s %s" (expr_prec left_level a) (binop_symbol op)
          (expr_prec right_level b)
      in
      if p < level then "(" ^ s ^ ")" else s
  | Ite (c, a, b) ->
      let s = Printf.sprintf "%s ? %s : %s" (expr_prec 1 c) (expr_prec 0 a) (expr_prec 0 b) in
      if level > 0 then "(" ^ s ^ ")" else s
  | Call (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map (expr_prec 0) args))

let expr_to_string e = expr_prec 0 e

let pp_expr ppf e = Format.pp_print_string ppf (expr_to_string e)

let update_to_string = function
  | [] -> "true"
  | assigns ->
      String.concat " & "
        (List.map (fun (v, e) -> Printf.sprintf "(%s' = %s)" v (expr_to_string e)) assigns)

let alternative_to_string { weight; update } =
  Printf.sprintf "%s : %s" (expr_to_string weight) (update_to_string update)

let pp_command ppf { action; guard; alternatives } =
  let action_str = match action with None -> "" | Some a -> a in
  Format.fprintf ppf "  [%s] %s -> %s;" action_str (expr_to_string guard)
    (String.concat " + " (List.map alternative_to_string alternatives))

let pp_var_decl ppf { var_name; var_type; var_init } =
  let type_str =
    match var_type with
    | Tbool -> "bool"
    | Tint_range (low, high) ->
        Printf.sprintf "[%s..%s]" (expr_to_string low) (expr_to_string high)
  in
  let init_str =
    match var_init with
    | None -> ""
    | Some e -> Printf.sprintf " init %s" (expr_to_string e)
  in
  Format.fprintf ppf "  %s : %s%s;" var_name type_str init_str

let pp_model ppf model =
  Format.fprintf ppf "ctmc@,@,";
  List.iter
    (fun { const_name; const_type; const_value } ->
      let type_str =
        match const_type with Cint -> "int" | Cdouble -> "double" | Cbool -> "bool"
      in
      Format.fprintf ppf "const %s %s = %s;@," type_str const_name
        (expr_to_string const_value))
    model.constants;
  if model.constants <> [] then Format.fprintf ppf "@,";
  List.iter
    (fun { formula_name; formula_body } ->
      Format.fprintf ppf "formula %s = %s;@," formula_name (expr_to_string formula_body))
    model.formulas;
  if model.formulas <> [] then Format.fprintf ppf "@,";
  List.iter
    (fun m ->
      Format.fprintf ppf "module %s@," m.mod_name;
      List.iter (fun v -> Format.fprintf ppf "%a@," pp_var_decl v) m.mod_vars;
      if m.mod_vars <> [] then Format.fprintf ppf "@,";
      List.iter (fun c -> Format.fprintf ppf "%a@," pp_command c) m.mod_commands;
      Format.fprintf ppf "endmodule@,@,")
    model.modules;
  List.iter
    (fun { label_name; label_body } ->
      Format.fprintf ppf "label \"%s\" = %s;@," label_name (expr_to_string label_body))
    model.labels;
  if model.labels <> [] then Format.fprintf ppf "@,";
  List.iter
    (fun { rewards_name; rewards_items } ->
      (match rewards_name with
      | None -> Format.fprintf ppf "rewards@,"
      | Some name -> Format.fprintf ppf "rewards \"%s\"@," name);
      List.iter
        (fun { reward_guard; reward_value } ->
          Format.fprintf ppf "  %s : %s;@," (expr_to_string reward_guard)
            (expr_to_string reward_value))
        rewards_items;
      Format.fprintf ppf "endrewards@,@,")
    model.rewards

let model_to_string model = Format.asprintf "@[<v>%a@]" pp_model model
