(** Pretty-printing of PRISM models.

    Emits standard PRISM syntax, so the generated text can be loaded by the
    real PRISM tool as well as by {!Parser}. [Parser.parse_model] composed
    with {!model_to_string} is the identity on ASTs (up to formatting). *)

val expr_to_string : Ast.expr -> string

val pp_expr : Format.formatter -> Ast.expr -> unit

val pp_model : Format.formatter -> Ast.model -> unit

val model_to_string : Ast.model -> string
