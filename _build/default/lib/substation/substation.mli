(** A second case study: a 110/10 kV distribution substation.

    The paper's introduction motivates critical-infrastructure analysis with
    the power grid next to water treatment; this model exercises every
    framework feature the water-treatment study does not:

    - a {e warm-spare} transformer (energized but lightly loaded: it ages at
      30% of the active failure rate);
    - a {e cold-spare} battery-backed auxiliary supply (cannot fail while
      dormant);
    - a protection relay with {e two failure modes} — [stuck] (dangerous:
      protection unavailable, slow to diagnose) and [spurious] (safe trips,
      fast to reset) — referenced in the fault tree as ["relay:stuck"] and
      ["relay:spurious"];
    - {e Erlang-2 repairs} for the transformers (replacement is a scheduled
      procedure, not a memoryless one);
    - an explicit {e priority repair order} (protection first, transformers
      next, feeders last).

    The substation is down when both transformers are down, or at least 2
    of the 4 feeders are down, or the relay has failed in either mode, or
    both the station supply and its battery are down. *)

val model : Core.Model.t
(** The default configuration (single crew, priority scheduling). *)

val model_with : ?crews:int -> ?strategy:Core.Repair.strategy -> unit -> Core.Model.t

val storm : string list
(** The disaster scenario: a storm takes out two feeders and the active
    transformer, while the relay fails spuriously — ["f1"; "f2"; "tr1";
    "relay:spurious"]. *)

val priority_order : string list
(** The default repair priority (most urgent first). *)

val summary : Format.formatter -> unit -> unit
(** Analyze the default model and print availability, MTTF, the storm
    survivability at a few horizons, the most likely blackout scenario and
    the component importance table. *)
