lib/watertreatment/ablations.ml: Array Component Core Ctmc Experiments Facility Hashtbl Importance List Measures Model Printf Repair Semantics String
