lib/watertreatment/ablations.mli: Experiments Facility
