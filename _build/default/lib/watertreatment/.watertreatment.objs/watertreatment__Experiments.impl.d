lib/watertreatment/experiments.ml: Buffer Core Ctmc Facility Format Hashtbl List Measures Printf Semantics String
