lib/watertreatment/experiments.mli: Format
