lib/watertreatment/facility.ml: Component Core Fault_tree List Measures Model Printf Repair Semantics Spare String
