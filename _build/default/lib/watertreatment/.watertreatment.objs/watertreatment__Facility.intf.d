lib/watertreatment/facility.mli: Core
