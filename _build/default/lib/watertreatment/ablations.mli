(** Ablation studies beyond the paper's evaluation.

    Each generator returns an {!Experiments.table} in the same rendering
    pipeline as the paper artifacts:

    - {!crew_sweep}: availability and expected time to first degradation as
      the crew count grows — where does adding crews stop paying?
    - {!strategy_matrix}: the paper's strategies plus FCFS and the
      preemptive variants, on one line;
    - {!lumping_table}: state-space reduction achieved by strong
      bisimulation lumping on the dedicated chains (the paper's future-work
      minimization);
    - {!importance_table}: component importance indices (Birnbaum,
      improvement potential, risk achievement worth, Fussell–Vesely) for a
      line — which physical component deserves the maintenance budget. *)

val crew_sweep : ?max_crews:int -> Facility.line -> Experiments.table

val strategy_matrix : Facility.line -> Experiments.table

val lumping_table : unit -> Experiments.table

val importance_table : Facility.line -> Experiments.table

val erlang_repair_table : ?levels:int list -> unit -> Experiments.table
(** Replace the case study's exponential repairs with Erlang-k repairs of
    the same mean (Line 2, FRF-1, Disaster 1). Under {e dedicated} repair
    the availability would be provably invariant (alternating renewal is
    mean-only); under the shared FRF queue it shifts slightly (queueing
    delays feel the distribution), while the recovery probabilities shift
    markedly — low-variance repairs finish later but more surely. *)

val all : unit -> Experiments.artifact list

val ids : string list

val by_id : string -> (unit -> Experiments.artifact) option
