test/test_core.ml: Alcotest Array Core Csl Ctmc Fault_tree Float List Printf Prism QCheck QCheck_alcotest String Sys Xml_kit
