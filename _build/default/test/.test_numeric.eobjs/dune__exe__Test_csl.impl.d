test/test_csl.ml: Alcotest Csl Ctmc Float List Prism
