test/test_csl.mli:
