test/test_ctmc.ml: Alcotest Array Ctmc Float List Numeric Printf QCheck QCheck_alcotest
