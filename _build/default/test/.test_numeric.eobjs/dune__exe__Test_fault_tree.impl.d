test/test_fault_tree.ml: Alcotest Fault_tree Fmt List Printf QCheck QCheck_alcotest String
