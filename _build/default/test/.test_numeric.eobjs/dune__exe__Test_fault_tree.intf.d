test/test_fault_tree.mli:
