test/test_numeric.ml: Alcotest Array Float List Numeric Printf QCheck QCheck_alcotest
