test/test_prism.ml: Alcotest Array Ctmc List Printf Prism QCheck QCheck_alcotest
