test/test_prism.mli:
