test/test_substation.ml: Alcotest Array Core Ctmc Lazy List Printf Substation
