test/test_substation.mli:
