test/test_watertreatment.ml: Ablations Alcotest Array Core Ctmc Experiments Facility Float Format Hashtbl List Numeric Printf String Watertreatment
