test/test_watertreatment.mli:
