test/test_xml_kit.ml: Alcotest Fmt List Printf QCheck QCheck_alcotest String Xml_kit
