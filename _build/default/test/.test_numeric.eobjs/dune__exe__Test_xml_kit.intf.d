test/test_xml_kit.mli:
