(* Tests for the Arcade core: components, repair units, spare management,
   model validation, the direct CTMC semantics, the measure layer, the XML
   format and the PRISM translation. *)

module Component = Core.Component
module Repair = Core.Repair
module Spare = Core.Spare
module Model = Core.Model
module Semantics = Core.Semantics
module Measures = Core.Measures
module Xml_io = Core.Xml_io
module To_prism = Core.To_prism
module Chain = Ctmc.Chain

let check_close ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* substring containment without external deps *)
module Astring_like = struct
  let contains haystack needle =
    let nh = String.length haystack and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
    nn = 0 || go 0
end

let comp ?(mttf = 100.) ?(mttr = 2.) name = Component.make ~name ~mttf ~mttr ()

(* a 3-component system: a, b redundant pair; c in series *)
let abc_tree =
  Fault_tree.or_
    [ Fault_tree.and_ [ Fault_tree.basic "a"; Fault_tree.basic "b" ]; Fault_tree.basic "c" ]

let abc_model ?(repair_units = []) ?(spare_units = []) () =
  Model.make ~name:"abc"
    ~components:[ comp "a"; comp "b"; comp ~mttf:200. ~mttr:10. "c" ]
    ~repair_units ~spare_units ~fault_tree:abc_tree ()

let fcfs_unit ?(crews = 1) ?(preemptive = false) () =
  Repair.make ~name:"ru" ~strategy:Repair.Fcfs ~crews ~preemptive
    ~components:[ "a"; "b"; "c" ] ()

(* ------------------------------------------------------------------ *)
(* Component / Repair / Spare / Model validation *)

let test_component_validation () =
  Alcotest.check_raises "bad mttf" (Invalid_argument "Component.make: MTTF must be positive")
    (fun () -> ignore (Component.make ~name:"x" ~mttf:0. ~mttr:1. ()));
  let c = comp "x" in
  check_close "failure rate" 0.01 (Component.failure_rate c);
  check_close "repair rate" 0.5 (Component.repair_rate c)

let test_repair_validation () =
  Alcotest.check_raises "no components"
    (Invalid_argument "Repair.make: no components") (fun () ->
      ignore (Repair.make ~name:"r" ~strategy:Repair.Fcfs ~components:[] ()));
  Alcotest.check_raises "bad priority list"
    (Invalid_argument "Repair.make: priority list must cover exactly the unit's components")
    (fun () ->
      ignore
        (Repair.make ~name:"r" ~strategy:(Repair.Priority [ "a" ])
           ~components:[ "a"; "b" ] ()))

let test_repair_strategy_strings () =
  List.iter
    (fun s ->
      Alcotest.(check bool) "roundtrip" true
        (Repair.strategy_of_string (Repair.strategy_to_string s) = s))
    [ Repair.Dedicated; Repair.Fcfs; Repair.Frf; Repair.Fff ]

let test_repair_ranks () =
  let ru =
    Repair.make ~name:"r" ~strategy:Repair.Frf ~components:[ "a"; "b"; "c" ] ()
  in
  let lookup = function
    | "a" -> comp ~mttr:1. "a"
    | "b" -> comp ~mttr:5. "b"
    | "c" -> comp ~mttr:1. "c"
    | _ -> assert false
  in
  Alcotest.(check int) "fast repair first" 0 (Repair.priority_rank ru lookup "a");
  Alcotest.(check int) "ties share rank" 0 (Repair.priority_rank ru lookup "c");
  Alcotest.(check int) "slow repair later" 1 (Repair.priority_rank ru lookup "b")

let test_spare_activation () =
  let smu =
    Spare.make ~name:"s" ~mode:Spare.Cold ~primaries:[ "p1"; "p2" ] ~spares:[ "s1" ] ()
  in
  let active up = Spare.active_set smu ~up in
  Alcotest.(check (list (pair string bool))) "all up: spare dormant"
    [ ("p1", true); ("p2", true); ("s1", false) ]
    (active (fun _ -> true));
  Alcotest.(check (list (pair string bool))) "p1 down: spare active"
    [ ("p1", false); ("p2", true); ("s1", true) ]
    (active (fun c -> c <> "p1"))

let test_model_validation () =
  Alcotest.check_raises "duplicate names"
    (Invalid_argument "Model: duplicate component a") (fun () ->
      ignore
        (Model.make ~name:"m" ~components:[ comp "a"; comp "a" ]
           ~fault_tree:(Fault_tree.basic "a") ()));
  Alcotest.check_raises "unknown in fault tree"
    (Invalid_argument "Model: fault tree references unknown component zz") (fun () ->
      ignore
        (Model.make ~name:"m" ~components:[ comp "a" ]
           ~fault_tree:(Fault_tree.basic "zz") ()));
  Alcotest.check_raises "double repair"
    (Invalid_argument "Model: component a repaired by two units") (fun () ->
      ignore
        (Model.make ~name:"m" ~components:[ comp "a" ]
           ~repair_units:
             [
               Repair.make ~name:"r1" ~strategy:Repair.Fcfs ~components:[ "a" ] ();
               Repair.make ~name:"r2" ~strategy:Repair.Fcfs ~components:[ "a" ] ();
             ]
           ~fault_tree:(Fault_tree.basic "a") ()))

let test_model_service_levels () =
  let model = abc_model () in
  let levels = Model.service_levels model in
  (* service tree: and(or(a,b), c): levels {0, 1/2, 1} *)
  Alcotest.(check int) "3 levels" 3 (List.length levels);
  check_close "middle" 0.5 (List.nth levels 1)

(* ------------------------------------------------------------------ *)
(* Semantics: structure of the generated chains *)

let test_semantics_unrepaired_reliability () =
  (* no repair units: 2^3 = 8 states, absorbing all-failed *)
  let built = Semantics.build (abc_model ()) in
  Alcotest.(check int) "8 states" 8 (Chain.states built.Semantics.chain);
  (* analytic reliability of the series-parallel system *)
  let m = Measures.analyze (abc_model ()) in
  let t = 50. in
  let pa = Float.exp (-.t /. 100.) in
  let pc = Float.exp (-.t /. 200.) in
  ignore pa;
  (* full service requires everything up: e^-(2/100 + 1/200) t *)
  check_close ~eps:1e-9 "full-service reliability"
    (Float.exp (-.t *. ((2. /. 100.) +. (1. /. 200.))))
    (Measures.reliability m ~time:t);
  (* any-service reliability: (1 - (1-pa)^2) * pc *)
  let any_service =
    Ctmc.Reachability.bounded_until_from_init built.Semantics.chain
      ~phi:(fun _ -> true)
      ~psi:(Semantics.down_pred built) ~bound:t
  in
  check_close ~eps:1e-9 "fault-tree reliability"
    (1. -. ((1. -. ((2. *. pa) -. (pa *. pa))) *. 1. +. (1. -. pc) -. (1. -. ((2. *. pa) -. (pa *. pa))) *. (1. -. pc)))
    (1. -. any_service)

let test_semantics_dedicated_product_form () =
  (* dedicated repair = independent components; availability factorizes *)
  let ded =
    Repair.make ~name:"ded" ~strategy:Repair.Dedicated ~components:[ "a"; "b"; "c" ] ()
  in
  let m = Measures.analyze (abc_model ~repair_units:[ ded ] ()) in
  let avail_a = 100. /. 102. and avail_c = 200. /. 210. in
  check_close ~eps:1e-9 "product form" (avail_a *. avail_a *. avail_c)
    (Measures.availability m)

let test_semantics_invariants () =
  (* over the full FCFS state space: free crew => empty queue; queue and
     in_repair are disjoint and exactly cover the failed RU components *)
  let built = Semantics.build (abc_model ~repair_units:[ fcfs_unit ~crews:2 () ] ()) in
  Array.iter
    (fun st ->
      let in_r = st.Semantics.in_repair.(0) in
      let q = st.Semantics.queue.(0) in
      let failed =
        List.filter (fun i -> not st.Semantics.up.(i)) [ 0; 1; 2 ]
      in
      let covered = List.sort compare (in_r @ q) in
      Alcotest.(check (list int)) "partition of failed" failed covered;
      if List.length in_r < 2 then Alcotest.(check (list int)) "free crew => empty queue" [] q;
      List.iter
        (fun i -> Alcotest.(check bool) "in_repair failed" false st.Semantics.up.(i))
        in_r)
    built.Semantics.states

let test_semantics_single_crew_counts () =
  (* FCFS with 1 crew on 3 distinct components: states = sum over failed
     subsets of (orderings consistent with one in-repair + queue order) *)
  let built = Semantics.build (abc_model ~repair_units:[ fcfs_unit () ] ()) in
  (* up-sets: 1 (all up) + 3 (one failed) + 6 (two failed, ordered) +
     6 (three failed: crew fixed to first, queue ordered) = 16
     ... queue order of remaining 2 -> 3 choices of in-repair * 2 = 6 *)
  Alcotest.(check int) "state count" 16 (Chain.states built.Semantics.chain)

let test_semantics_fcfs_queue_order_preserved () =
  (* start from disaster where all of a,b,c failed in priority order; the
     first repair completion must be the head of the queue *)
  let model = abc_model ~repair_units:[ fcfs_unit () ] () in
  let disaster = Semantics.disaster_state model ~failed:[ "a"; "b"; "c" ] in
  Alcotest.(check (list int)) "one in repair" [ 0 ] disaster.Semantics.in_repair.(0);
  Alcotest.(check (list int)) "two queued in order" [ 1; 2 ] disaster.Semantics.queue.(0)

let test_semantics_frf_dispatch () =
  (* FRF: after the in-repair component completes, the fastest-repair
     waiting component is dispatched, not the FCFS head *)
  let fast = Component.make ~name:"fast" ~mttf:100. ~mttr:1. () in
  let slow = Component.make ~name:"slow" ~mttf:100. ~mttr:50. () in
  let other = Component.make ~name:"other" ~mttf:100. ~mttr:25. () in
  let ru =
    Repair.make ~name:"ru" ~strategy:Repair.Frf ~components:[ "fast"; "slow"; "other" ] ()
  in
  let model =
    Model.make ~name:"m" ~components:[ fast; slow; other ] ~repair_units:[ ru ]
      ~fault_tree:(Fault_tree.basic "slow") ()
  in
  (* disaster ordered by priority: fast(0) in repair, queue [other; slow] *)
  let disaster = Semantics.disaster_state model ~failed:[ "slow"; "other"; "fast" ] in
  let built = Semantics.build ~initial:disaster model in
  Alcotest.(check (list int)) "queue by mttr rank"
    [ built.Semantics.component_index "other"; built.Semantics.component_index "slow" ]
    disaster.Semantics.queue.(0)

let frf_unit ?(crews = 1) ?(preemptive = false) () =
  Repair.make ~name:"ru" ~strategy:Repair.Frf ~crews ~preemptive
    ~components:[ "a"; "b"; "c" ] ()

let test_semantics_preemptive_smaller_space () =
  (* with distinct priorities, preemption drops the in-repair bookkeeping
     (the crew always works on the queue head): strictly fewer states *)
  let np = Semantics.build (abc_model ~repair_units:[ frf_unit () ] ()) in
  let pre =
    Semantics.build (abc_model ~repair_units:[ frf_unit ~preemptive:true () ] ())
  in
  Alcotest.(check bool) "preemptive smaller" true
    (Chain.states pre.Semantics.chain < Chain.states np.Semantics.chain);
  (* for FCFS (a single priority class) the two encodings are isomorphic *)
  let np_fcfs = Semantics.build (abc_model ~repair_units:[ fcfs_unit () ] ()) in
  let pre_fcfs =
    Semantics.build (abc_model ~repair_units:[ fcfs_unit ~preemptive:true () ] ())
  in
  Alcotest.(check int) "fcfs isomorphic"
    (Chain.states np_fcfs.Semantics.chain)
    (Chain.states pre_fcfs.Semantics.chain)

let test_semantics_cold_spare_never_fails_dormant () =
  (* cold spare: with both primaries up, the spare cannot fail, so the
     all-up state has only 2 failure transitions *)
  let model =
    Model.make ~name:"m"
      ~components:[ comp "p1"; comp "p2"; comp "s1" ]
      ~spare_units:
        [ Spare.make ~name:"smu" ~mode:Spare.Cold ~primaries:[ "p1"; "p2" ]
            ~spares:[ "s1" ] () ]
      ~repair_units:
        [ Repair.make ~name:"ru" ~strategy:Repair.Dedicated
            ~components:[ "p1"; "p2"; "s1" ] () ]
      ~fault_tree:(Fault_tree.and_ [ Fault_tree.basic "p1"; Fault_tree.basic "p2";
                                     Fault_tree.basic "s1" ]) ()
  in
  let built = Semantics.build model in
  let init = 0 in
  let exits = Chain.exit_rates built.Semantics.chain in
  (* two failure rates of 0.01 each *)
  check_close ~eps:1e-12 "only primaries fail" 0.02 exits.(init)

let test_semantics_warm_spare_rate () =
  let model =
    Model.make ~name:"m"
      ~components:[ comp "p1"; comp "s1" ]
      ~spare_units:
        [ Spare.make ~name:"smu" ~mode:(Spare.Warm 0.5) ~primaries:[ "p1" ]
            ~spares:[ "s1" ] () ]
      ~fault_tree:(Fault_tree.and_ [ Fault_tree.basic "p1"; Fault_tree.basic "s1" ]) ()
  in
  let built = Semantics.build model in
  check_close ~eps:1e-12 "primary full + spare half rate" 0.015
    (Chain.exit_rates built.Semantics.chain).(0)

let test_semantics_service_levels_per_state () =
  let built = Semantics.build (abc_model ()) in
  let all_up = 0 in
  check_close "full service" 1. (Semantics.service_level built all_up);
  Alcotest.(check bool) "full service predicate" true
    (Semantics.service_at_least built 1. all_up);
  (* find the state with only 'a' failed *)
  let found = ref false in
  Array.iteri
    (fun s st ->
      if (not st.Semantics.up.(0)) && st.Semantics.up.(1) && st.Semantics.up.(2) then begin
        found := true;
        check_close "half service" 0.5 (Semantics.service_level built s);
        Alcotest.(check bool) "not down" false (Semantics.down_pred built s)
      end)
    built.Semantics.states;
  Alcotest.(check bool) "state found" true !found

let test_semantics_cost_structure () =
  let ded =
    Repair.make ~name:"ded" ~strategy:Repair.Dedicated ~idle_cost:1. ~busy_cost:0.
      ~components:[ "a"; "b"; "c" ] ()
  in
  let built = Semantics.build (abc_model ~repair_units:[ ded ] ()) in
  let cost = Semantics.cost_structure built in
  (* all-up state: 3 idle crews = 3; component cost 0 *)
  check_close "idle cost" 3. cost.(0);
  (* a state with k failures costs 3k (components) + (3-k) idle *)
  Array.iteri
    (fun s st ->
      let k =
        Array.fold_left (fun acc up -> if up then acc else acc + 1) 0 st.Semantics.up
      in
      check_close "cost formula" ((3. *. float_of_int k) +. float_of_int (3 - k)) cost.(s))
    built.Semantics.states

let test_disaster_state_unknown_component () =
  let model = abc_model () in
  match Semantics.disaster_state model ~failed:[ "zz" ] with
  | exception Semantics.Build_error _ -> ()
  | _ -> Alcotest.fail "expected Build_error"

(* ------------------------------------------------------------------ *)
(* Measures *)

let test_measures_survivability_monotone () =
  let ru = fcfs_unit () in
  let model = abc_model ~repair_units:[ ru ] () in
  let init = Semantics.disaster_state model ~failed:[ "a"; "c" ] in
  let m = Measures.analyze ~initial:init model in
  let s1 = Measures.survivability m ~service_level:0.5 ~time:5. in
  let s2 = Measures.survivability m ~service_level:0.5 ~time:20. in
  let s3 = Measures.survivability m ~service_level:1. ~time:20. in
  Alcotest.(check bool) "monotone in t" true (s1 <= s2 +. 1e-12);
  Alcotest.(check bool) "higher level harder" true (s3 <= s2 +. 1e-12);
  Alcotest.(check bool) "non-trivial" true (s1 > 0.01 && s2 < 1.)

let test_measures_survivability_at_zero () =
  (* with only 'a' failed the service level is exactly 1/2: the redundant
     pair delivers half service, the series component is up *)
  let model = abc_model ~repair_units:[ fcfs_unit () ] () in
  let init = Semantics.disaster_state model ~failed:[ "a" ] in
  let m = Measures.analyze ~initial:init model in
  check_close "service 0.5 already there" 1.
    (Measures.survivability m ~service_level:0.5 ~time:0.);
  check_close "full service not yet" 0.
    (Measures.survivability m ~service_level:1. ~time:0.);
  (* failing the series component kills all service *)
  let init_c = Semantics.disaster_state model ~failed:[ "c" ] in
  let m_c = Measures.analyze ~initial:init_c model in
  check_close "no service with c down" 0.
    (Measures.survivability m_c ~service_level:0.5 ~time:0.)

let test_measures_costs () =
  let model = abc_model ~repair_units:[ fcfs_unit () ] () in
  let init = Semantics.disaster_state model ~failed:[ "a"; "b"; "c" ] in
  let m = Measures.analyze ~initial:init model in
  (* at t=0: 3 failed components (cost 9) + 1 busy crew (cost 0) *)
  check_close ~eps:1e-6 "instantaneous at 0" 9. (Measures.instantaneous_cost m ~time:0.);
  let acc5 = Measures.accumulated_cost m ~time:5. in
  let acc10 = Measures.accumulated_cost m ~time:10. in
  Alcotest.(check bool) "accumulated grows" true (acc10 > acc5 && acc5 > 0.);
  (* instantaneous converges to the steady-state cost *)
  let inst = Measures.instantaneous_cost m ~time:2000. in
  check_close ~eps:1e-5 "converges to steady cost" (Measures.steady_state_cost m) inst

let test_measures_csl_agreement () =
  (* every measure computed directly must agree with its CSL query *)
  let model = abc_model ~repair_units:[ fcfs_unit () ] () in
  let m = Measures.analyze model in
  let csl = Measures.to_csl_model m in
  let v q =
    match Csl.Checker.check_string csl q with
    | Csl.Checker.Value v -> v
    | Csl.Checker.Satisfied _ -> Alcotest.fail "expected value"
  in
  check_close ~eps:1e-9 "availability vs CSL" (Measures.availability m)
    (v {|S=? [ "full_service" ]|});
  check_close ~eps:1e-9 "any service vs CSL" (Measures.any_service_availability m)
    (v {|S=? [ "operational" ]|});
  check_close ~eps:1e-9 "unreliability vs CSL"
    (Measures.unreliability m ~time:25.)
    (v {|P=? [ true U<=25 !"full_service" ]|});
  check_close ~eps:1e-9 "cost vs CSL"
    (Measures.accumulated_cost m ~time:10.)
    (v {|R{"cost"}=? [ C<=10 ]|})

let test_combined_availability () =
  check_close ~eps:1e-6 "two lines" 0.9536063
    (Measures.combined_availability [ 0.7442018; 0.8186317 ]);
  check_close "identity" 0.5 (Measures.combined_availability [ 0.5 ]);
  check_close "empty product" 0. (Measures.combined_availability [])

(* ------------------------------------------------------------------ *)
(* Erlang repair stages *)

let erlang_cdf k rate t =
  (* P(Erlang(k, rate) <= t) = 1 - sum_{j<k} e^-rt (rt)^j / j! *)
  let rt = rate *. t in
  let rec go j term acc =
    if j >= k then acc
    else go (j + 1) (term *. rt /. float_of_int (j + 1)) (acc +. term)
  in
  1. -. (Float.exp (-.rt) *. go 0 1. 0.)

let single_staged_model k =
  Model.make ~name:"staged"
    ~components:[ Component.make ~name:"c" ~mttf:1000. ~mttr:10. ~repair_stages:k () ]
    ~repair_units:
      [ Repair.make ~name:"ru" ~strategy:Repair.Dedicated ~components:[ "c" ] () ]
    ~fault_tree:(Fault_tree.basic "c") ()

let test_stages_state_count () =
  let built = Semantics.build (single_staged_model 3) in
  (* up + 3 repair stages *)
  Alcotest.(check int) "4 states" 4 (Chain.states built.Semantics.chain)

let test_stages_repair_distribution () =
  (* from the failed state, the time to repair is Erlang(k, k/mttr) *)
  let k = 4 in
  let model = single_staged_model k in
  let init = Semantics.disaster_state model ~failed:[ "c" ] in
  let m = Measures.analyze ~initial:init model in
  List.iter
    (fun t ->
      check_close ~eps:1e-9
        (Printf.sprintf "erlang cdf at %g" t)
        (erlang_cdf k (float_of_int k /. 10.) t)
        (Measures.survivability m ~service_level:1. ~time:t))
    [ 1.; 5.; 10.; 20. ]

let test_stages_availability_invariant () =
  (* alternating-renewal availability depends only on the means, so the
     dedicated availability must not change with the stage count *)
  let avail k =
    Measures.availability (Measures.analyze (single_staged_model k))
  in
  let base = avail 1 in
  List.iter
    (fun k -> check_close ~eps:1e-9 (Printf.sprintf "k=%d" k) base (avail k))
    [ 2; 3; 5 ]

let test_stages_less_variance_slower_early () =
  (* an Erlang repair rarely finishes early: at t = mttr/2 the repair
     probability is below the exponential's, at t = 2 mttr above *)
  let p k t =
    let model = single_staged_model k in
    let init = Semantics.disaster_state model ~failed:[ "c" ] in
    Measures.survivability (Measures.analyze ~initial:init model) ~service_level:1. ~time:t
  in
  Alcotest.(check bool) "slower at mttr/2" true (p 4 5. < p 1 5.);
  Alcotest.(check bool) "faster at 2 mttr" true (p 4 20. > p 1 20.)

let test_stages_queue_strategy () =
  (* stages compose with queue scheduling; the scheduler invariants hold *)
  let components =
    [
      Component.make ~name:"a" ~mttf:100. ~mttr:2. ~repair_stages:2 ();
      Component.make ~name:"b" ~mttf:100. ~mttr:2. ();
      Component.make ~name:"c" ~mttf:200. ~mttr:10. ~repair_stages:3 ();
    ]
  in
  let model =
    Model.make ~name:"m" ~components
      ~repair_units:[ Repair.make ~name:"ru" ~strategy:Repair.Frf ~components:[ "a"; "b"; "c" ] () ]
      ~fault_tree:abc_tree ()
  in
  let built = Semantics.build model in
  Array.iter
    (fun st ->
      Array.iteri
        (fun i completed ->
          (* stage progress only on components under repair *)
          if completed > 0 then begin
            Alcotest.(check bool) "staged component is down" false st.Semantics.up.(i);
            Alcotest.(check bool) "staged component in repair" true
              (List.mem i st.Semantics.in_repair.(0))
          end)
        st.Semantics.stage)
    built.Semantics.states;
  (* and the two tool-chain paths still agree *)
  let pbuilt = Prism.Builder.build (Prism.Parser.parse_model (To_prism.to_string model)) in
  Alcotest.(check int) "states agree" (Chain.states built.Semantics.chain)
    (Chain.states pbuilt.Prism.Builder.chain);
  Alcotest.(check int) "transitions agree"
    (Chain.transition_count built.Semantics.chain)
    (Chain.transition_count pbuilt.Prism.Builder.chain);
  let m = Measures.analyze model in
  let csl = Csl.Checker.of_built pbuilt in
  (match Csl.Checker.check_string csl {|S=? [ "full_service" ]|} with
  | Csl.Checker.Value v -> check_close ~eps:1e-9 "availability agrees" (Measures.availability m) v
  | Csl.Checker.Satisfied _ -> Alcotest.fail "expected value")

let test_stages_dedicated_two_paths () =
  let model = single_staged_model 3 in
  let built = Semantics.build model in
  let pbuilt = Prism.Builder.build (Prism.Parser.parse_model (To_prism.to_string model)) in
  Alcotest.(check int) "states agree" (Chain.states built.Semantics.chain)
    (Chain.states pbuilt.Prism.Builder.chain)

let test_stages_xml_roundtrip () =
  let model = single_staged_model 5 in
  let model', _ = Xml_io.of_xml (Xml_io.to_xml model) in
  Alcotest.(check int) "stages preserved" 5
    (List.hd model'.Model.components).Component.repair_stages

(* ------------------------------------------------------------------ *)
(* Multiple failure modes *)

let valve ?(minor_mttr = 2.) () =
  Component.make ~name:"valve" ~mttf:1000. ~mttr:50.
    ~extra_modes:
      [ Component.failure_mode ~name:"leak" ~mttf:200. ~mttr:minor_mttr () ]
    ()

let valve_model ?minor_mttr ?(repair_units = []) ?(tree = Fault_tree.basic "valve") () =
  Model.make ~name:"valve_model" ~components:[ valve ?minor_mttr () ] ~repair_units
    ~fault_tree:tree ()

let test_modes_chain_shape () =
  (* up, failed(primary), failed(leak): 3 states *)
  let ded = Repair.make ~name:"r" ~strategy:Repair.Dedicated ~components:[ "valve" ] () in
  let built = Semantics.build (valve_model ~repair_units:[ ded ] ()) in
  Alcotest.(check int) "3 states" 3 (Chain.states built.Semantics.chain)

let test_modes_availability () =
  (* competing exponentials: pi_up = 1 / (1 + l1/m1 + l2/m2) *)
  let ded = Repair.make ~name:"r" ~strategy:Repair.Dedicated ~components:[ "valve" ] () in
  let m = Measures.analyze (valve_model ~repair_units:[ ded ] ()) in
  let l1 = 1. /. 1000. and m1 = 1. /. 50. in
  let l2 = 1. /. 200. and m2 = 1. /. 2. in
  check_close ~eps:1e-9 "availability"
    (1. /. (1. +. (l1 /. m1) +. (l2 /. m2)))
    (Measures.availability m)

let test_modes_specific_literal () =
  (* fault tree over the specific mode: "valve:leak" is down only on leaks *)
  let ded = Repair.make ~name:"r" ~strategy:Repair.Dedicated ~components:[ "valve" ] () in
  let model =
    valve_model ~repair_units:[ ded ] ~tree:(Fault_tree.basic "valve:leak") ()
  in
  let built = Semantics.build model in
  let leak_states = ref 0 and down_states = ref 0 in
  for s = 0 to Chain.states built.Semantics.chain - 1 do
    if Semantics.down_pred built s then incr leak_states;
    if not built.Semantics.states.(s).Semantics.up.(0) then incr down_states
  done;
  Alcotest.(check int) "one leak state" 1 !leak_states;
  Alcotest.(check int) "two failed states" 2 !down_states;
  (* any-mode literal *)
  let any_model = valve_model ~repair_units:[ ded ] () in
  let built_any = Semantics.build any_model in
  let any_down = ref 0 in
  for s = 0 to Chain.states built_any.Semantics.chain - 1 do
    if Semantics.down_pred built_any s then incr any_down
  done;
  Alcotest.(check int) "both modes down" 2 !any_down

let test_modes_validation () =
  Alcotest.check_raises "unknown mode"
    (Invalid_argument "Model: component valve has no failure mode burst") (fun () ->
      ignore (valve_model ~tree:(Fault_tree.basic "valve:burst") ()));
  Alcotest.check_raises "duplicate mode names"
    (Invalid_argument "Component.make: duplicate failure-mode names") (fun () ->
      ignore
        (Component.make ~name:"x" ~mttf:1. ~mttr:1.
           ~extra_modes:[ Component.failure_mode ~name:"failed" ~mttf:1. ~mttr:1. () ]
           ()))

let test_modes_scheduling_priority () =
  (* FRF must prioritize by the *mode's* repair time: a leak (2 h) beats a
     slow primary repair of another component (50 h) *)
  let other = Component.make ~name:"other" ~mttf:1000. ~mttr:50. () in
  let ru =
    Repair.make ~name:"ru" ~strategy:Repair.Frf ~components:[ "valve"; "other" ] ()
  in
  let model =
    Model.make ~name:"m"
      ~components:[ valve (); other ]
      ~repair_units:[ ru ]
      ~fault_tree:(Fault_tree.and_ [ Fault_tree.basic "valve"; Fault_tree.basic "other" ])
      ()
  in
  (* disaster: other failed (50 h repair) and valve leaking (2 h repair):
     by FRF the leak must be dispatched, 'other' queued *)
  let disaster = Semantics.disaster_state model ~failed:[ "other"; "valve:leak" ] in
  let built = Semantics.build ~initial:disaster model in
  let valve_i = built.Semantics.component_index "valve" in
  Alcotest.(check (list int)) "leak in repair" [ valve_i ] disaster.Semantics.in_repair.(0);
  (* but a primary valve failure (50 h, equal to other) ranks behind the
     earlier-failed other under FCFS tie-breaking *)
  let disaster2 = Semantics.disaster_state model ~failed:[ "other"; "valve" ] in
  Alcotest.(check int) "tie broken by declaration order" valve_i
    (List.hd disaster2.Semantics.in_repair.(0))

let test_modes_mode_cost () =
  let c =
    Component.make ~name:"c" ~mttf:100. ~mttr:1. ~failed_cost:3.
      ~extra_modes:
        [ Component.failure_mode ~name:"major" ~mttf:100. ~mttr:1. ~failed_cost:10. () ]
      ()
  in
  let model =
    Model.make ~name:"m" ~components:[ c ]
      ~repair_units:[ Repair.make ~name:"r" ~strategy:Repair.Dedicated ~components:[ "c" ] () ]
      ~fault_tree:(Fault_tree.basic "c") ()
  in
  let built = Semantics.build model in
  let cost = Semantics.cost_structure built in
  (* find the major-mode state: cost 10 + 0 idle crews... the dedicated
     crew is busy, idle = 0, so state cost = 10 *)
  let costs = Array.to_list cost |> List.sort compare in
  Alcotest.(check (list (float 1e-9))) "costs" [ 1.; 3.; 10. ] costs

let test_modes_xml_roundtrip () =
  let model = valve_model () in
  let model', _ = Xml_io.of_xml (Xml_io.to_xml model) in
  let c = List.hd model'.Model.components in
  Alcotest.(check int) "extra mode preserved" 1 (List.length c.Component.extra_modes);
  let m = List.hd c.Component.extra_modes in
  Alcotest.(check string) "mode name" "leak" m.Component.fm_name;
  check_close "mode mttr" 2. m.Component.fm_mttr

let test_modes_prism_rejected () =
  match To_prism.translate (valve_model ()) with
  | exception To_prism.Untranslatable _ -> ()
  | _ -> Alcotest.fail "expected Untranslatable"

let test_modes_importance () =
  let ded = Repair.make ~name:"r" ~strategy:Repair.Dedicated ~components:[ "valve" ] () in
  let model =
    valve_model ~repair_units:[ ded ]
      ~tree:(Fault_tree.or_ [ Fault_tree.basic "valve:leak"; Fault_tree.basic "valve:failed" ])
      ()
  in
  let built = Semantics.build model in
  let marginals = Core.Importance.marginal_unavailabilities built in
  Alcotest.(check int) "two literals" 2 (List.length marginals);
  let l1 = 1. /. 1000. and m1 = 1. /. 50. in
  let l2 = 1. /. 200. and m2 = 1. /. 2. in
  let z = 1. +. (l1 /. m1) +. (l2 /. m2) in
  check_close ~eps:1e-9 "leak marginal" (l2 /. m2 /. z) (List.assoc "valve:leak" marginals);
  check_close ~eps:1e-9 "primary marginal" (l1 /. m1 /. z)
    (List.assoc "valve:failed" marginals)

let test_modes_example_file () =
  (* the checked-in example exercises modes + stages + cold spare +
     priority scheduling through the XML front door *)
  let path = "../models/pipeline_modes.xml" in
  if Sys.file_exists path then begin
    let model, measures = Xml_io.load path in
    Alcotest.(check int) "measures" 3 (List.length measures);
    let m = Measures.analyze model in
    let csl = Measures.to_csl_model m in
    List.iter
      (fun { Xml_io.measure_name; query } ->
        match Csl.Checker.check_string csl query with
        | Csl.Checker.Value v ->
            Alcotest.(check bool) (measure_name ^ " in range") true (v >= 0. && v <= 100.)
        | Csl.Checker.Satisfied _ -> ())
      measures;
    (* the cold pump spare cannot fail while pump1 is up *)
    let built = Measures.built m in
    let all_up = 0 in
    let pump2 = built.Semantics.component_index "pump2" in
    let initial_exit = (Ctmc.Chain.exit_rates built.Semantics.chain).(all_up) in
    ignore pump2;
    (* exits from all-up: pump1 (1/500) + valve (3 modes) + controller *)
    check_close ~eps:1e-9 "cold spare dormant"
      ((1. /. 500.) +. (1. /. 4000.) +. (1. /. 800.) +. (1. /. 10000.) +. (1. /. 8000.))
      initial_exit
  end
  else Alcotest.(check pass) "model file not present in sandbox" () ()

(* ------------------------------------------------------------------ *)
(* Importance and hitting-time measures *)

let test_importance_series_parallel () =
  (* abc model under dedicated repair: independent components, closed forms *)
  let ded =
    Repair.make ~name:"ded" ~strategy:Repair.Dedicated ~components:[ "a"; "b"; "c" ] ()
  in
  let built = Semantics.build (abc_model ~repair_units:[ ded ] ()) in
  let qa = 2. /. 102. and qc = 10. /. 210. in
  let marginals = Core.Importance.marginal_unavailabilities built in
  check_close ~eps:1e-9 "marginal a" qa (List.assoc "a" marginals);
  check_close ~eps:1e-9 "marginal c" qc (List.assoc "c" marginals);
  let indices = Core.Importance.analyze built in
  let find name = List.find (fun i -> i.Core.Importance.component = name) indices in
  (* system down = (a and b) or c *)
  let birnbaum_a = (find "a").Core.Importance.birnbaum in
  check_close ~eps:1e-9 "birnbaum a = q_b (1 - q_c)" (qa *. (1. -. qc)) birnbaum_a;
  let birnbaum_c = (find "c").Core.Importance.birnbaum in
  check_close ~eps:1e-9 "birnbaum c = 1 - q_a q_b" (1. -. (qa *. qa)) birnbaum_c;
  (* c is the weak point: higher birnbaum than a *)
  Alcotest.(check bool) "ranking" true (birnbaum_c > birnbaum_a);
  (* fussell-vesely of c: 1 - P(down | c perfect)/P(down) *)
  let baseline = (qa *. qa) +. qc -. (qa *. qa *. qc) in
  check_close ~eps:1e-9 "fussell-vesely c" (1. -. (qa *. qa /. baseline))
    (find "c").Core.Importance.fussell_vesely

let test_importance_bounds () =
  let model = abc_model () in
  check_close "all perfect" 0. (Core.Importance.system_unavailability model ~q:(fun _ -> 0.));
  check_close "all failed" 1. (Core.Importance.system_unavailability model ~q:(fun _ -> 1.));
  match Core.Importance.system_unavailability model ~q:(fun _ -> 2.) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of q > 1"

let test_mean_time_measures () =
  let ded =
    Repair.make ~name:"ded" ~strategy:Repair.Dedicated ~components:[ "a"; "b"; "c" ] ()
  in
  let m = Measures.analyze (abc_model ~repair_units:[ ded ] ()) in
  (* first degradation = first failure of any component: rate 1/100+1/100+1/200 *)
  check_close ~eps:1e-6 "time to degradation" (1. /. 0.025)
    (Measures.mean_time_to_degradation m);
  let loss = Measures.mean_time_to_service_loss m in
  Alcotest.(check bool) "total loss takes longer" true
    (loss > Measures.mean_time_to_degradation m);
  Alcotest.(check bool) "finite" true (Float.is_finite loss)

let test_mixed_disasters () =
  let model = abc_model ~repair_units:[ fcfs_unit () ] () in
  let d_small = [ "a" ] and d_big = [ "a"; "b"; "c" ] in
  let mixed = Measures.analyze_mixed_disasters model [ (0.75, d_big); (0.25, d_small) ] in
  let pure failed = Measures.analyze ~initial:(Semantics.disaster_state model ~failed) model in
  let level = 0.5 and time = 8. in
  let expected =
    (0.75 *. Measures.survivability (pure d_big) ~service_level:level ~time)
    +. (0.25 *. Measures.survivability (pure d_small) ~service_level:level ~time)
  in
  check_close ~eps:1e-9 "mixture = weighted average" expected
    (Measures.survivability mixed ~service_level:level ~time);
  (* cost measures mix too *)
  let expected_cost =
    (0.75 *. Measures.accumulated_cost (pure d_big) ~time:5.)
    +. (0.25 *. Measures.accumulated_cost (pure d_small) ~time:5.)
  in
  check_close ~eps:1e-9 "mixed cost" expected_cost
    (Measures.accumulated_cost mixed ~time:5.);
  Alcotest.check_raises "empty mixture"
    (Invalid_argument "Measures.analyze_mixed_disasters: empty mixture") (fun () ->
      ignore (Measures.analyze_mixed_disasters model []))

let test_two_repair_units_product () =
  (* two independent subsystems with their own repair units in one model:
     availability must factorize *)
  let components =
    [
      comp "a"; comp "b"; (* unit 1, fcfs *)
      comp ~mttf:300. ~mttr:4. "x"; comp ~mttf:300. ~mttr:4. "y"; (* unit 2 *)
    ]
  in
  let ru1 = Repair.make ~name:"ru1" ~strategy:Repair.Fcfs ~components:[ "a"; "b" ] () in
  let ru2 = Repair.make ~name:"ru2" ~strategy:Repair.Frf ~components:[ "x"; "y" ] () in
  let tree names = Fault_tree.and_ (List.map Fault_tree.basic names) in
  let joint =
    Model.make ~name:"joint" ~components ~repair_units:[ ru1; ru2 ]
      ~fault_tree:(Fault_tree.or_ [ tree [ "a"; "b" ]; tree [ "x"; "y" ] ]) ()
  in
  let left =
    Model.make ~name:"left" ~components:[ comp "a"; comp "b" ] ~repair_units:[ ru1 ]
      ~fault_tree:(tree [ "a"; "b" ]) ()
  in
  let right =
    Model.make ~name:"right"
      ~components:[ comp ~mttf:300. ~mttr:4. "x"; comp ~mttf:300. ~mttr:4. "y" ]
      ~repair_units:[ ru2 ] ~fault_tree:(tree [ "x"; "y" ]) ()
  in
  let availability model = Measures.availability (Measures.analyze model) in
  (* full-service availability of independent subsystems factorizes *)
  check_close ~eps:1e-9 "product form" (availability left *. availability right)
    (availability joint);
  (* state space is the product of the sub-spaces *)
  let states model = Chain.states (Semantics.build model).Semantics.chain in
  Alcotest.(check int) "product state space" (states left * states right) (states joint)

(* ------------------------------------------------------------------ *)
(* XML *)

let full_model () =
  abc_model
    ~repair_units:[ fcfs_unit ~crews:2 () ]
    ()

let test_xml_roundtrip () =
  let model = full_model () in
  let measures = [ { Xml_io.measure_name = "avail"; query = "S=? [ \"operational\" ]" } ] in
  let doc = Xml_io.to_xml ~measures model in
  let model', measures' = Xml_io.of_xml doc in
  Alcotest.(check string) "name" model.Model.name model'.Model.name;
  Alcotest.(check int) "components" 3 (List.length model'.Model.components);
  Alcotest.(check bool) "components equal" true
    (List.for_all2 Component.equal model.Model.components model'.Model.components);
  Alcotest.(check bool) "fault tree equal" true
    (Fault_tree.equal model.Model.fault_tree model'.Model.fault_tree);
  Alcotest.(check int) "measures" 1 (List.length measures');
  (* semantic equality: same availability *)
  check_close ~eps:1e-12 "same availability"
    (Measures.availability (Measures.analyze model))
    (Measures.availability (Measures.analyze model'))

let test_xml_roundtrip_through_text () =
  let model = full_model () in
  let text = Xml_kit.to_string (Xml_io.to_xml model) in
  let model', _ = Xml_io.of_xml (Xml_kit.parse_string text) in
  Alcotest.(check bool) "repair units preserved" true
    (model.Model.repair_units = model'.Model.repair_units)

let test_xml_spare_units () =
  let model =
    Model.make ~name:"m"
      ~components:[ comp "p1"; comp "s1" ]
      ~spare_units:
        [ Spare.make ~name:"smu" ~mode:(Spare.Warm 0.25) ~primaries:[ "p1" ]
            ~spares:[ "s1" ] () ]
      ~fault_tree:(Fault_tree.basic "p1") ()
  in
  let model', _ = Xml_io.of_xml (Xml_io.to_xml model) in
  Alcotest.(check bool) "spare preserved" true (model.Model.spare_units = model'.Model.spare_units)

let test_xml_schema_errors () =
  let bad = Xml_kit.element "wrong" [] [] in
  (match Xml_io.of_xml bad with
  | exception Xml_io.Schema_error _ -> ()
  | _ -> Alcotest.fail "expected schema error");
  let no_ft =
    Xml_kit.element "arcade" [ ("name", "m") ]
      [ Xml_kit.element "components" []
          [ Xml_kit.element "component"
              [ ("name", "a"); ("mttf", "1"); ("mttr", "1") ] [] ] ]
  in
  match Xml_io.of_xml no_ft with
  | exception Xml_io.Schema_error _ -> ()
  | _ -> Alcotest.fail "expected missing fault tree error"

let test_xml_priority_strategy () =
  let ru =
    Repair.make ~name:"r" ~strategy:(Repair.Priority [ "c"; "a"; "b" ])
      ~components:[ "a"; "b"; "c" ] ()
  in
  let model = abc_model ~repair_units:[ ru ] () in
  let model', _ = Xml_io.of_xml (Xml_io.to_xml model) in
  match (List.hd model'.Model.repair_units).Repair.strategy with
  | Repair.Priority order -> Alcotest.(check (list string)) "order" [ "c"; "a"; "b" ] order
  | _ -> Alcotest.fail "expected priority strategy"

let test_degradation_scenario () =
  let ded =
    Repair.make ~name:"ded" ~strategy:Repair.Dedicated ~components:[ "a"; "b"; "c" ] ()
  in
  let m = Measures.analyze (abc_model ~repair_units:[ ded ] ()) in
  match Measures.most_likely_degradation_scenario m with
  | Some (events, p) ->
      (* a single failure degrades service; the likeliest culprits are the
         fast-failing a or b (equal rates), ahead of c *)
      Alcotest.(check int) "one event" 1 (List.length events);
      let event = List.hd events in
      Alcotest.(check bool) "a or b fails" true
        (event = "a fails" || event = "b fails");
      check_close ~eps:1e-9 "jump probability" (0.01 /. 0.025) p
  | None -> Alcotest.fail "expected a scenario"

(* ------------------------------------------------------------------ *)
(* DOT export *)

let balanced_braces s =
  let depth = ref 0 and ok = ref true in
  String.iter
    (fun c ->
      if c = '{' then incr depth
      else if c = '}' then begin
        decr depth;
        if !depth < 0 then ok := false
      end)
    s;
  !ok && !depth = 0

let test_export_fault_tree () =
  let dot = Core.Export.fault_tree_to_dot abc_tree in
  Alcotest.(check bool) "digraph" true (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  Alcotest.(check bool) "balanced" true (balanced_braces dot);
  List.iter
    (fun fragment ->
      Alcotest.(check bool) (fragment ^ " present") true
        (Astring_like.contains dot fragment))
    [ "AND"; "OR"; "basic_a"; "basic_c"; "system_down" ]

let test_export_model () =
  let model = abc_model ~repair_units:[ fcfs_unit ~crews:2 () ] () in
  let dot = Core.Export.model_to_dot model in
  Alcotest.(check bool) "balanced" true (balanced_braces dot);
  List.iter
    (fun fragment ->
      Alcotest.(check bool) (fragment ^ " present") true
        (Astring_like.contains dot fragment))
    [ "cluster_ru_0"; "fcfs, 2 crews"; "comp_a"; "MTTF 100"; "cluster_ft" ]

let test_export_chain () =
  let built = Semantics.build (abc_model ()) in
  let dot = Core.Export.chain_to_dot built in
  Alcotest.(check bool) "balanced" true (balanced_braces dot);
  Alcotest.(check bool) "all-up state" true (Astring_like.contains dot "all up");
  Alcotest.(check bool) "rates on edges" true (Astring_like.contains dot "0.01")

let test_export_chain_too_large () =
  let built =
    Semantics.build (abc_model ~repair_units:[ fcfs_unit () ] ())
  in
  match Core.Export.chain_to_dot ~max_states:3 built with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected size limit"

(* ------------------------------------------------------------------ *)
(* PRISM translation: equivalence with the direct semantics *)

let assert_paths_agree model =
  let direct = Semantics.build model in
  let built = Prism.Builder.build (Prism.Parser.parse_model (To_prism.to_string model)) in
  Alcotest.(check int) "same states"
    (Chain.states direct.Semantics.chain)
    (Chain.states built.Prism.Builder.chain);
  Alcotest.(check int) "same transitions"
    (Chain.transition_count direct.Semantics.chain)
    (Chain.transition_count built.Prism.Builder.chain);
  let csl = Csl.Checker.of_built built in
  let v q =
    match Csl.Checker.check_string csl q with
    | Csl.Checker.Value v -> v
    | Csl.Checker.Satisfied _ -> Alcotest.fail "expected value"
  in
  let m = Measures.analyze model in
  check_close ~eps:1e-9 "availability agrees" (Measures.availability m)
    (v {|S=? [ "full_service" ]|});
  check_close ~eps:1e-9 "cost agrees"
    (Measures.accumulated_cost m ~time:20.)
    (v {|R{"cost"}=? [ C<=20 ]|})

let test_to_prism_fcfs () = assert_paths_agree (abc_model ~repair_units:[ fcfs_unit () ] ())

let test_to_prism_two_crews () =
  assert_paths_agree (abc_model ~repair_units:[ fcfs_unit ~crews:2 () ] ())

let test_to_prism_dedicated () =
  assert_paths_agree
    (abc_model
       ~repair_units:
         [ Repair.make ~name:"ded" ~strategy:Repair.Dedicated ~components:[ "a"; "b"; "c" ] () ]
       ())

let test_to_prism_frf () =
  let components =
    [ comp ~mttr:1. "a"; comp ~mttr:5. "b"; comp ~mttr:1. ~mttf:300. "c" ]
  in
  let model =
    Model.make ~name:"m" ~components
      ~repair_units:
        [ Repair.make ~name:"ru" ~strategy:Repair.Frf ~components:[ "a"; "b"; "c" ] () ]
      ~fault_tree:abc_tree ()
  in
  assert_paths_agree model

let test_to_prism_unrepaired () = assert_paths_agree (abc_model ())

let test_to_prism_disaster_initial () =
  let model = abc_model ~repair_units:[ fcfs_unit () ] () in
  let init = Semantics.disaster_state model ~failed:[ "a"; "b" ] in
  let direct = Measures.analyze ~initial:init model in
  let built =
    Prism.Builder.build (Prism.Parser.parse_model (To_prism.to_string ~initial:init model))
  in
  let csl = Csl.Checker.of_built built in
  let v q =
    match Csl.Checker.check_string csl q with
    | Csl.Checker.Value v -> v
    | Csl.Checker.Satisfied _ -> Alcotest.fail "expected value"
  in
  check_close ~eps:1e-9 "survivability agrees"
    (Measures.survivability direct ~service_level:1. ~time:10.)
    (v {|P=? [ true U<=10 "full_service" ]|})

let test_to_prism_rejects_preemptive () =
  let model = abc_model ~repair_units:[ fcfs_unit ~preemptive:true () ] () in
  match To_prism.translate model with
  | exception To_prism.Untranslatable _ -> ()
  | _ -> Alcotest.fail "expected Untranslatable"

let test_to_prism_rejects_cold_spare () =
  let model =
    Model.make ~name:"m"
      ~components:[ comp "p1"; comp "s1" ]
      ~spare_units:
        [ Spare.make ~name:"smu" ~mode:Spare.Cold ~primaries:[ "p1" ] ~spares:[ "s1" ] () ]
      ~fault_tree:(Fault_tree.basic "p1") ()
  in
  match To_prism.translate model with
  | exception To_prism.Untranslatable _ -> ()
  | _ -> Alcotest.fail "expected Untranslatable"

let test_sanitize () =
  Alcotest.(check string) "dashes" "a_b" (To_prism.sanitize "a-b");
  Alcotest.(check string) "leading digit" "c_1x" (To_prism.sanitize "1x");
  Alcotest.(check string) "empty" "x" (To_prism.sanitize "")

(* the generated text must parse as PRISM (sanity of the printer output) *)
let test_to_prism_output_parses () =
  let model = abc_model ~repair_units:[ fcfs_unit ~crews:2 () ] () in
  let text = To_prism.to_string model in
  let parsed = Prism.Parser.parse_model text in
  Alcotest.(check bool) "has labels" true (List.length parsed.Prism.Ast.labels >= 3);
  Alcotest.(check int) "three reward structures" 3 (List.length parsed.Prism.Ast.rewards)

(* ------------------------------------------------------------------ *)
(* Property tests over random Arcade models *)

let random_model_gen =
  QCheck.Gen.(
    let* n = int_range 2 5 in
    let names = List.init n (fun i -> Printf.sprintf "c%d" i) in
    let* mttfs = list_size (return n) (float_range 50. 5000.) in
    let* mttrs = list_size (return n) (float_range 0.5 100.) in
    let* stages = list_size (return n) (int_range 1 2) in
    let components =
      List.map2
        (fun name ((mttf, mttr), repair_stages) ->
          Component.make ~name ~mttf ~mttr ~repair_stages ())
        names
        (List.combine (List.combine mttfs mttrs) stages)
    in
    let* strategy = oneofl [ Repair.Dedicated; Repair.Fcfs; Repair.Frf; Repair.Fff ] in
    let* crews = int_range 1 2 in
    let ru = Repair.make ~name:"ru" ~strategy ~crews ~components:names () in
    (* random monotone fault tree over the components *)
    let* tree =
      let basic_gen = map (fun i -> Fault_tree.basic (Printf.sprintf "c%d" (i mod n))) (int_range 0 (n - 1)) in
      let* shape = int_range 0 2 in
      match shape with
      | 0 -> return (Fault_tree.or_ (List.map Fault_tree.basic names))
      | 1 ->
          let* a = basic_gen and* b = basic_gen in
          return (Fault_tree.or_ [ Fault_tree.and_ [ a; b ]; List.hd (List.map Fault_tree.basic names) ])
      | _ ->
          let* k = int_range 1 n in
          return (Fault_tree.kofn k (List.map Fault_tree.basic names))
    in
    return (Model.make ~name:"random" ~components ~repair_units:[ ru ] ~fault_tree:tree ()))

let prop_two_paths_agree =
  QCheck.Test.make ~count:40 ~name:"random models: semantics = prism translation"
    (QCheck.make random_model_gen)
    (fun model ->
      let direct = Semantics.build model in
      let built =
        Prism.Builder.build (Prism.Parser.parse_model (To_prism.to_string model))
      in
      Chain.states direct.Semantics.chain = Chain.states built.Prism.Builder.chain
      && Chain.transition_count direct.Semantics.chain
         = Chain.transition_count built.Prism.Builder.chain
      &&
      let m = Measures.analyze model in
      let csl = Csl.Checker.of_built built in
      match Csl.Checker.check_string csl {|S=? [ "full_service" ]|} with
      | Csl.Checker.Value v -> Float.abs (v -. Measures.availability m) < 1e-8
      | Csl.Checker.Satisfied _ -> false)

let prop_measures_sane =
  QCheck.Test.make ~count:40 ~name:"random models: measures are sane"
    (QCheck.make random_model_gen)
    (fun model ->
      let m = Measures.analyze model in
      let a = Measures.availability m in
      let any = Measures.any_service_availability m in
      let r10 = Measures.reliability m ~time:10. in
      let r100 = Measures.reliability m ~time:100. in
      a >= -1e-9 && a <= 1. +. 1e-9
      && any >= a -. 1e-9 (* some service is implied by full service *)
      && r100 <= r10 +. 1e-9
      && Measures.accumulated_cost m ~time:5. >= -1e-9)

let prop_survivability_monotone =
  QCheck.Test.make ~count:25 ~name:"random models: survivability monotone in time"
    (QCheck.make random_model_gen)
    (fun model ->
      (* fail the first two components *)
      let failed =
        match Model.component_names model with
        | a :: b :: _ -> [ a; b ]
        | other -> other
      in
      let init = Semantics.disaster_state model ~failed in
      let m = Measures.analyze ~initial:init model in
      let levels = Model.service_levels model in
      List.for_all
        (fun level ->
          level <= 0.
          ||
          let s1 = Measures.survivability m ~service_level:level ~time:2. in
          let s2 = Measures.survivability m ~service_level:level ~time:20. in
          s1 <= s2 +. 1e-9)
        levels)

let () =
  Alcotest.run "core"
    [
      ( "definitions",
        [
          Alcotest.test_case "component validation" `Quick test_component_validation;
          Alcotest.test_case "repair validation" `Quick test_repair_validation;
          Alcotest.test_case "strategy strings" `Quick test_repair_strategy_strings;
          Alcotest.test_case "priority ranks" `Quick test_repair_ranks;
          Alcotest.test_case "spare activation" `Quick test_spare_activation;
          Alcotest.test_case "model validation" `Quick test_model_validation;
          Alcotest.test_case "service levels" `Quick test_model_service_levels;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "reliability (no repairs)" `Quick
            test_semantics_unrepaired_reliability;
          Alcotest.test_case "dedicated = product form" `Quick
            test_semantics_dedicated_product_form;
          Alcotest.test_case "scheduler invariants" `Quick test_semantics_invariants;
          Alcotest.test_case "single-crew state count" `Quick
            test_semantics_single_crew_counts;
          Alcotest.test_case "disaster queue order" `Quick
            test_semantics_fcfs_queue_order_preserved;
          Alcotest.test_case "frf dispatch order" `Quick test_semantics_frf_dispatch;
          Alcotest.test_case "preemptive state space" `Quick
            test_semantics_preemptive_smaller_space;
          Alcotest.test_case "cold spare dormancy" `Quick
            test_semantics_cold_spare_never_fails_dormant;
          Alcotest.test_case "warm spare rate" `Quick test_semantics_warm_spare_rate;
          Alcotest.test_case "service level per state" `Quick
            test_semantics_service_levels_per_state;
          Alcotest.test_case "cost structure" `Quick test_semantics_cost_structure;
          Alcotest.test_case "bad disaster" `Quick test_disaster_state_unknown_component;
        ] );
      ( "measures",
        [
          Alcotest.test_case "survivability monotone" `Quick
            test_measures_survivability_monotone;
          Alcotest.test_case "survivability at zero" `Quick
            test_measures_survivability_at_zero;
          Alcotest.test_case "cost measures" `Quick test_measures_costs;
          Alcotest.test_case "CSL agreement" `Quick test_measures_csl_agreement;
          Alcotest.test_case "combined availability" `Quick test_combined_availability;
          Alcotest.test_case "mixed disasters" `Quick test_mixed_disasters;
          Alcotest.test_case "two repair units" `Quick test_two_repair_units_product;
        ] );
      ( "erlang-stages",
        [
          Alcotest.test_case "state count" `Quick test_stages_state_count;
          Alcotest.test_case "repair-time distribution" `Quick
            test_stages_repair_distribution;
          Alcotest.test_case "availability invariant" `Quick
            test_stages_availability_invariant;
          Alcotest.test_case "variance effect" `Quick test_stages_less_variance_slower_early;
          Alcotest.test_case "queue strategies + invariants" `Quick
            test_stages_queue_strategy;
          Alcotest.test_case "dedicated two paths" `Quick test_stages_dedicated_two_paths;
          Alcotest.test_case "xml roundtrip" `Quick test_stages_xml_roundtrip;
        ] );
      ( "failure-modes",
        [
          Alcotest.test_case "chain shape" `Quick test_modes_chain_shape;
          Alcotest.test_case "availability closed form" `Quick test_modes_availability;
          Alcotest.test_case "mode literals" `Quick test_modes_specific_literal;
          Alcotest.test_case "validation" `Quick test_modes_validation;
          Alcotest.test_case "mode-aware scheduling" `Quick
            test_modes_scheduling_priority;
          Alcotest.test_case "mode-specific cost" `Quick test_modes_mode_cost;
          Alcotest.test_case "xml roundtrip" `Quick test_modes_xml_roundtrip;
          Alcotest.test_case "prism translation rejected" `Quick
            test_modes_prism_rejected;
          Alcotest.test_case "per-mode importance" `Quick test_modes_importance;
          Alcotest.test_case "example xml file" `Quick test_modes_example_file;
        ] );
      ( "importance",
        [
          Alcotest.test_case "series-parallel closed forms" `Quick
            test_importance_series_parallel;
          Alcotest.test_case "boundary unavailabilities" `Quick test_importance_bounds;
          Alcotest.test_case "mean-time measures" `Quick test_mean_time_measures;
          Alcotest.test_case "degradation scenario" `Quick test_degradation_scenario;
        ] );
      ( "xml",
        [
          Alcotest.test_case "roundtrip" `Quick test_xml_roundtrip;
          Alcotest.test_case "roundtrip through text" `Quick
            test_xml_roundtrip_through_text;
          Alcotest.test_case "spare units" `Quick test_xml_spare_units;
          Alcotest.test_case "schema errors" `Quick test_xml_schema_errors;
          Alcotest.test_case "priority strategy" `Quick test_xml_priority_strategy;
        ] );
      ( "export",
        [
          Alcotest.test_case "fault tree dot" `Quick test_export_fault_tree;
          Alcotest.test_case "model dot" `Quick test_export_model;
          Alcotest.test_case "chain dot" `Quick test_export_chain;
          Alcotest.test_case "size limit" `Quick test_export_chain_too_large;
        ] );
      ( "model-properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_two_paths_agree; prop_measures_sane; prop_survivability_monotone ] );
      ( "to-prism",
        [
          Alcotest.test_case "fcfs agrees" `Quick test_to_prism_fcfs;
          Alcotest.test_case "two crews agree" `Quick test_to_prism_two_crews;
          Alcotest.test_case "dedicated agrees" `Quick test_to_prism_dedicated;
          Alcotest.test_case "frf agrees" `Quick test_to_prism_frf;
          Alcotest.test_case "unrepaired agrees" `Quick test_to_prism_unrepaired;
          Alcotest.test_case "disaster initial state" `Quick
            test_to_prism_disaster_initial;
          Alcotest.test_case "preemptive rejected" `Quick test_to_prism_rejects_preemptive;
          Alcotest.test_case "cold spare rejected" `Quick test_to_prism_rejects_cold_spare;
          Alcotest.test_case "sanitize" `Quick test_sanitize;
          Alcotest.test_case "output parses" `Quick test_to_prism_output_parses;
        ] );
    ]
