(* Tests for the CSL/CSRL layer: the property parser and the model checker,
   validated on chains with closed-form answers. *)

module Ast = Csl.Ast
module Parser = Csl.Parser
module Checker = Csl.Checker
module Chain = Ctmc.Chain

let check_close ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let formula = Alcotest.testable Ast.pp ( = )

(* ------------------------------------------------------------------ *)
(* Parser *)

let test_parse_probability_query () =
  Alcotest.check formula "bounded until"
    (Ast.P (Ast.Query, Ast.Until (Ast.True, Ast.Upto 100., Ast.Label "down")))
    (Parser.parse {|P=? [ true U<=100 "down" ]|})

let test_parse_bounds () =
  Alcotest.check formula "P >= p"
    (Ast.P (Ast.Bounded (Ast.Ge, 0.99), Ast.Eventually (Ast.Unbounded, Ast.Label "ok")))
    (Parser.parse {|P>=0.99 [ F "ok" ]|});
  Alcotest.check formula "P < p"
    (Ast.P (Ast.Bounded (Ast.Lt, 0.01), Ast.Next (Ast.Unbounded, Ast.Label "bad")))
    (Parser.parse {|P<0.01 [ X "bad" ]|})

let test_parse_steady () =
  Alcotest.check formula "steady state"
    (Ast.S (Ast.Query, Ast.Not (Ast.Label "down")))
    (Parser.parse {|S=? [ !"down" ]|})

let test_parse_rewards () =
  Alcotest.check formula "named cumulative"
    (Ast.R (Some "cost", Ast.Query, Ast.Cumulative 10.))
    (Parser.parse {|R{"cost"}=? [ C<=10 ]|});
  Alcotest.check formula "instantaneous"
    (Ast.R (None, Ast.Query, Ast.Instantaneous 4.5))
    (Parser.parse {|R=? [ I=4.5 ]|});
  Alcotest.check formula "steady reward"
    (Ast.R (None, Ast.Query, Ast.Steady))
    (Parser.parse {|R=? [ S ]|})

let test_parse_boolean_structure () =
  Alcotest.check formula "connectives"
    (Ast.Implies (Ast.And (Ast.Label "a", Ast.Not (Ast.Label "b")), Ast.Or (Ast.True, Ast.False)))
    (Parser.parse {|"a" & !"b" => true | false|})

let test_parse_atomic_expression () =
  match Parser.parse {|P=? [ F<=10 (pumps >= 3) ]|} with
  | Ast.P (Ast.Query, Ast.Eventually (Ast.Upto 10., Ast.Atomic _)) -> ()
  | other -> Alcotest.failf "unexpected: %s" (Ast.to_string other)

let test_parse_globally_until () =
  Alcotest.check formula "globally"
    (Ast.P (Ast.Bounded (Ast.Ge, 0.5), Ast.Globally (Ast.Upto 8., Ast.Label "up")))
    (Parser.parse {|P>=0.5 [ G<=8 "up" ]|});
  Alcotest.check formula "unbounded until"
    (Ast.P (Ast.Query, Ast.Until (Ast.Label "a", Ast.Unbounded, Ast.Label "b")))
    (Parser.parse {|P=? [ "a" U "b" ]|})

let test_parse_interval () =
  Alcotest.check formula "interval until"
    (Ast.P (Ast.Query, Ast.Until (Ast.True, Ast.Within (2., 5.), Ast.Label "a")))
    (Parser.parse {|P=? [ true U[2,5] "a" ]|});
  Alcotest.check formula "interval eventually"
    (Ast.P (Ast.Bounded (Ast.Ge, 0.5), Ast.Eventually (Ast.Within (1., 2.), Ast.Label "b")))
    (Parser.parse {|P>=0.5 [ F[1,2] "b" ]|});
  (match Parser.parse {|P=? [ true U[5,2] "a" ]|} with
  | exception Parser.Syntax_error _ -> ()
  | _ -> Alcotest.fail "decreasing interval accepted")

let test_parse_errors () =
  List.iter
    (fun input ->
      match Parser.parse input with
      | exception Parser.Syntax_error _ -> ()
      | f -> Alcotest.failf "expected error on %S, got %s" input (Ast.to_string f))
    [ ""; "P=?"; "P=? [ ]"; {|P=? [ "a" ] extra|}; "S=? [ X \"a\" ]"; "R=? [ Q ]" ]

let test_to_string_roundtrip () =
  List.iter
    (fun input ->
      let f = Parser.parse input in
      Alcotest.check formula ("roundtrip " ^ input) f (Parser.parse (Ast.to_string f)))
    [
      {|P=? [ true U<=100 "down" ]|};
      {|S>=0.9 [ !"down" & "x" ]|};
      {|R{"cost"}=? [ C<=10 ]|};
      {|P<0.5 [ G<=8 !"up" ]|};
      {|P=? [ X ("a" | "b") ]|};
    ]

(* ------------------------------------------------------------------ *)
(* Checker, on the 2-state machine with closed forms *)

let two_state a b = Chain.of_transitions ~states:2 [ (0, 1, a); (1, 0, b) ]

let machine_model =
  let m = two_state 0.1 2. in
  Checker.of_chain
    ~labels:[ ("down", fun s -> s = 1); ("up", fun s -> s = 0) ]
    ~rewards:[ (Some "cost", [| 0.; 3. |]); (None, [| 1.; 1. |]) ]
    m

let value q =
  match Checker.check_string machine_model q with
  | Checker.Value v -> v
  | Checker.Satisfied _ -> Alcotest.fail "expected a value"

let satisfied q =
  match Checker.check_string machine_model q with
  | Checker.Satisfied b -> b
  | Checker.Value _ -> Alcotest.fail "expected a boolean"

let test_check_bounded_until () =
  check_close ~eps:1e-10 "hit down by t" (1. -. Float.exp (-0.1 *. 7.))
    (value {|P=? [ true U<=7 "down" ]|})

let test_check_steady () =
  check_close ~eps:1e-9 "availability" (2. /. 2.1) (value {|S=? [ "up" ]|})

let test_check_rewards () =
  check_close ~eps:1e-9 "steady cost" (3. *. (0.1 /. 2.1)) (value {|R{"cost"}=? [ S ]|});
  check_close ~eps:1e-9 "constant reward" 5. (value {|R=? [ C<=5 ]|});
  let p1 t =
    (0.1 /. 2.1) *. (1. -. Float.exp (-2.1 *. t))
  in
  check_close ~eps:1e-9 "instantaneous" (3. *. p1 4.) (value {|R{"cost"}=? [ I=4 ]|})

let test_check_interval_until () =
  (* 0 -l1-> 1 -l2-> 2 with psi = state 1 visited during [a,b] *)
  let l1 = 0.7 and l2 = 1.3 in
  let chain = Chain.of_transitions ~states:3 [ (0, 1, l1); (1, 2, l2) ] in
  let model = Checker.of_chain ~labels:[ ("mid", fun s -> s = 1) ] chain in
  let a = 0.9 and b = 2.1 in
  let v =
    match Checker.check_string model {|P=? [ true U[0.9,2.1] "mid" ]|} with
    | Checker.Value v -> v
    | Checker.Satisfied _ -> Alcotest.fail "expected value"
  in
  let p0_at_a = Float.exp (-.l1 *. a) in
  let p1_at_a = l1 /. (l2 -. l1) *. (Float.exp (-.l1 *. a) -. Float.exp (-.l2 *. a)) in
  check_close ~eps:1e-10 "interval until"
    (p1_at_a +. (p0_at_a *. (1. -. Float.exp (-.l1 *. (b -. a)))))
    v

let test_check_next () =
  (* from up, the only jump goes down *)
  check_close "next" 1. (value {|P=? [ X "down" ]|});
  (* timed next: the jump must happen within t *)
  check_close ~eps:1e-12 "timed next" (1. -. Float.exp (-0.1 *. 3.))
    (value {|P=? [ X<=3 "down" ]|});
  check_close ~eps:1e-12 "interval next"
    (Float.exp (-0.1 *. 1.) -. Float.exp (-0.1 *. 4.))
    (value {|P=? [ X[1,4] "down" ]|})

let test_check_globally () =
  (* stay up through [0, t]: e^-0.1 t *)
  check_close ~eps:1e-9 "globally" (Float.exp (-0.1 *. 3.)) (value {|P=? [ G<=3 "up" ]|})

let test_check_boolean_forms () =
  Alcotest.(check bool) "bounded P as formula" true
    (satisfied {|P>=0.9 [ G<=0.5 "up" ]|});
  Alcotest.(check bool) "negation" false (satisfied {|!"up"|});
  Alcotest.(check bool) "S bound" true (satisfied {|S>=0.9 [ "up" ]|})

let test_check_nested_p () =
  (* states from which a down-state is reachable in one jump with high
     probability, used inside another formula *)
  Alcotest.(check bool) "nested" true
    (satisfied {|P>=0.99 [ true U<=1000 P>=0.99 [ X "up" ] ]|})

let test_check_unknown_label () =
  match Checker.check_string machine_model {|S=? [ "nonexistent" ]|} with
  | exception Checker.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported"

let test_check_nested_query_rejected () =
  match Checker.check_string machine_model {|P>=0.5 [ X P=? [ X "up" ] ]|} with
  | exception Checker.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected rejection of nested =?"

let test_value_helper () =
  check_close ~eps:1e-9 "value" (2. /. 2.1) (Checker.value machine_model {|S=? [ "up" ]|});
  match Checker.value machine_model {|"up"|} with
  | exception Checker.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported for boolean"

(* of_built integration: labels, variables and rewards resolve *)
let test_of_built () =
  let src =
    {|
ctmc
module m
  working : bool init true;
  [] working -> 0.5 : (working' = false);
  [] !working -> 5 : (working' = true);
endmodule
label "dead" = !working;
rewards "penalty"
  !working : 7;
endrewards
|}
  in
  let built = Prism.Builder.build (Prism.Parser.parse_model src) in
  let model = Checker.of_built built in
  let v q =
    match Checker.check_string model q with
    | Checker.Value v -> v
    | Checker.Satisfied _ -> Alcotest.fail "expected value"
  in
  check_close ~eps:1e-9 "label" (0.5 /. 5.5) (v {|S=? [ "dead" ]|});
  check_close ~eps:1e-9 "atomic variable" (0.5 /. 5.5) (v {|S=? [ (working = false) ]|});
  check_close ~eps:1e-9 "reward" (7. *. (0.5 /. 5.5)) (v {|R{"penalty"}=? [ S ]|})

(* reducible chain: S with bounds evaluated per state *)
let test_steady_bound_reducible () =
  let m = Chain.of_transitions ~states:3 [ (0, 1, 1.); (0, 2, 3.) ] in
  let model = Checker.of_chain ~labels:[ ("goal", fun s -> s = 2) ] m in
  (* from state 0 the long-run probability of "goal" is 0.75 *)
  match Checker.check_string model {|S>=0.7 [ "goal" ]|} with
  | Checker.Satisfied b -> Alcotest.(check bool) "bound holds from init" true b
  | Checker.Value _ -> Alcotest.fail "expected boolean"

let () =
  Alcotest.run "csl"
    [
      ( "parser",
        [
          Alcotest.test_case "probability query" `Quick test_parse_probability_query;
          Alcotest.test_case "bounds" `Quick test_parse_bounds;
          Alcotest.test_case "steady state" `Quick test_parse_steady;
          Alcotest.test_case "reward forms" `Quick test_parse_rewards;
          Alcotest.test_case "boolean structure" `Quick test_parse_boolean_structure;
          Alcotest.test_case "atomic expressions" `Quick test_parse_atomic_expression;
          Alcotest.test_case "globally / until" `Quick test_parse_globally_until;
          Alcotest.test_case "time intervals" `Quick test_parse_interval;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "to_string roundtrip" `Quick test_to_string_roundtrip;
        ] );
      ( "checker",
        [
          Alcotest.test_case "bounded until" `Quick test_check_bounded_until;
          Alcotest.test_case "steady state" `Quick test_check_steady;
          Alcotest.test_case "rewards" `Quick test_check_rewards;
          Alcotest.test_case "interval until" `Quick test_check_interval_until;
          Alcotest.test_case "next" `Quick test_check_next;
          Alcotest.test_case "globally" `Quick test_check_globally;
          Alcotest.test_case "boolean forms" `Quick test_check_boolean_forms;
          Alcotest.test_case "nested P bound" `Quick test_check_nested_p;
          Alcotest.test_case "unknown label" `Quick test_check_unknown_label;
          Alcotest.test_case "nested query rejected" `Quick
            test_check_nested_query_rejected;
          Alcotest.test_case "value helper" `Quick test_value_helper;
          Alcotest.test_case "of_built integration" `Quick test_of_built;
          Alcotest.test_case "reducible steady bound" `Quick test_steady_bound_reducible;
        ] );
    ]
