(* Tests for fault trees and quantitative service trees: gate semantics,
   duality, cut sets, the string syntax, and the service-level enumeration
   the paper's survivability measure builds on. *)

let ft = Alcotest.testable (Fmt.of_to_string Fault_tree.to_string) Fault_tree.equal

let check_float = Alcotest.(check (float 1e-9))

let b = Fault_tree.basic

(* the paper's Line 2 "total failure" tree *)
let line2_down =
  Fault_tree.or_
    [
      Fault_tree.and_ [ b "st1"; b "st2"; b "st3" ];
      Fault_tree.and_ [ b "sf1"; b "sf2" ];
      b "res";
      Fault_tree.kofn 2 [ b "pump1"; b "pump2"; b "pump3" ];
    ]

let truth_of failed name = List.mem name failed

(* ------------------------------------------------------------------ *)

let test_constructors_validate () =
  Alcotest.check_raises "empty and" (Invalid_argument "Fault_tree.and_: empty gate")
    (fun () -> ignore (Fault_tree.and_ []));
  Alcotest.check_raises "kofn out of range"
    (Invalid_argument "Fault_tree.kofn: k = 3 out of [1, 2]") (fun () ->
      ignore (Fault_tree.kofn 3 [ b "a"; b "b" ]))

let test_eval_gates () =
  let t = line2_down in
  Alcotest.(check bool) "all up" false (Fault_tree.eval t (truth_of []));
  Alcotest.(check bool) "res down" true (Fault_tree.eval t (truth_of [ "res" ]));
  Alcotest.(check bool) "one softener" false (Fault_tree.eval t (truth_of [ "st1" ]));
  Alcotest.(check bool) "all softeners" true
    (Fault_tree.eval t (truth_of [ "st1"; "st2"; "st3" ]));
  Alcotest.(check bool) "one pump ok" false (Fault_tree.eval t (truth_of [ "pump1" ]));
  Alcotest.(check bool) "two pumps down" true
    (Fault_tree.eval t (truth_of [ "pump1"; "pump3" ]))

let test_basics_order () =
  Alcotest.(check (list string)) "first occurrence order"
    [ "st1"; "st2"; "st3"; "sf1"; "sf2"; "res"; "pump1"; "pump2"; "pump3" ]
    (Fault_tree.basics line2_down)

let test_dual_gates () =
  let t = Fault_tree.and_ [ b "a"; Fault_tree.or_ [ b "b"; b "c" ] ] in
  let expected = Fault_tree.or_ [ b "a"; Fault_tree.and_ [ b "b"; b "c" ] ] in
  Alcotest.check ft "and/or swap" expected (Fault_tree.dual t);
  let v = Fault_tree.kofn 2 [ b "a"; b "b"; b "c" ] in
  Alcotest.check ft "kofn dual" (Fault_tree.kofn 2 [ b "a"; b "b"; b "c" ])
    (Fault_tree.dual v);
  let v2 = Fault_tree.kofn 1 [ b "a"; b "b"; b "c" ] in
  Alcotest.check ft "kofn 1-of-3 dual is 3-of-3"
    (Fault_tree.kofn 3 [ b "a"; b "b"; b "c" ])
    (Fault_tree.dual v2)

let test_dual_involution () =
  Alcotest.check ft "dual twice is identity" line2_down
    (Fault_tree.dual (Fault_tree.dual line2_down))

(* eval (dual t) f = not (eval t (not . f)) — the duality the service tree
   relies on. *)
let prop_duality =
  let tree_gen =
    QCheck.Gen.(
      sized_size (int_range 1 4) (fix (fun self n ->
          if n = 0 then map (fun i -> Fault_tree.basic (Printf.sprintf "c%d" i)) (int_range 0 5)
          else
            let sub = self (n - 1) in
            oneof
              [
                map (fun i -> Fault_tree.basic (Printf.sprintf "c%d" i)) (int_range 0 5);
                map (fun l -> Fault_tree.and_ l) (list_size (int_range 1 3) sub);
                map (fun l -> Fault_tree.or_ l) (list_size (int_range 1 3) sub);
                (let* l = list_size (int_range 1 3) sub in
                 let* k = int_range 1 (List.length l) in
                 return (Fault_tree.kofn k l));
              ])))
  in
  QCheck.Test.make ~count:300 ~name:"dual satisfies de morgan duality"
    (QCheck.make (QCheck.Gen.pair tree_gen (QCheck.Gen.int_bound 63)))
    (fun (tree, mask) ->
      let f name =
        (* deterministic pseudo-assignment from the mask *)
        let i = int_of_string (String.sub name 1 (String.length name - 1)) in
        mask land (1 lsl i) <> 0
      in
      Fault_tree.eval (Fault_tree.dual tree) f
      = not (Fault_tree.eval tree (fun name -> not (f name))))

let test_quantitative_gates () =
  let value map name = List.assoc name map in
  let t = Fault_tree.and_ [ b "a"; b "b" ] in
  check_float "ANDq = min" 0.3
    (Fault_tree.eval_quantitative t (value [ ("a", 0.3); ("b", 0.8) ]));
  let t = Fault_tree.or_ [ b "a"; b "b" ] in
  check_float "ORq = avg" 0.55
    (Fault_tree.eval_quantitative t (value [ ("a", 0.3); ("b", 0.8) ]));
  let t = Fault_tree.kofn 2 [ b "a"; b "b"; b "c" ] in
  check_float "KOFNq = min(1, sum/k)" 1.
    (Fault_tree.eval_quantitative t (value [ ("a", 1.); ("b", 1.); ("c", 0.) ]));
  check_float "KOFNq below capacity" 0.5
    (Fault_tree.eval_quantitative t (value [ ("a", 1.); ("b", 0.); ("c", 0.) ]))

let test_service_levels_line2 () =
  (* the paper: Line 2 has service levels {0, 1/3, 1/2, 2/3, 1} *)
  let service = Fault_tree.dual line2_down in
  let levels = Fault_tree.service_levels service in
  Alcotest.(check int) "5 levels" 5 (List.length levels);
  List.iter2
    (fun expected actual -> check_float "level" expected actual)
    [ 0.; 1. /. 3.; 0.5; 2. /. 3.; 1. ]
    levels

let test_service_levels_line1 () =
  let line1_down =
    Fault_tree.or_
      [
        Fault_tree.and_ [ b "st1"; b "st2"; b "st3" ];
        Fault_tree.and_ [ b "sf1"; b "sf2"; b "sf3" ];
        b "res";
        Fault_tree.kofn 2 [ b "pump1"; b "pump2"; b "pump3"; b "pump4" ];
      ]
  in
  let levels = Fault_tree.service_levels (Fault_tree.dual line1_down) in
  (* the paper: spare pumps create no extra service intervals -> {0,1/3,2/3,1} *)
  Alcotest.(check int) "4 levels" 4 (List.length levels);
  List.iter2
    (fun expected actual -> check_float "level" expected actual)
    [ 0.; 1. /. 3.; 2. /. 3.; 1. ]
    levels

let test_minimal_cut_sets () =
  let t =
    Fault_tree.or_
      [ Fault_tree.and_ [ b "a"; b "b" ]; b "c"; Fault_tree.and_ [ b "a"; b "b"; b "d" ] ]
  in
  Alcotest.(check (list (list string)))
    "absorption removes {a,b,d}"
    [ [ "a"; "b" ]; [ "c" ] ]
    (Fault_tree.minimal_cut_sets t)

let test_cut_sets_kofn () =
  let t = Fault_tree.kofn 2 [ b "x"; b "y"; b "z" ] in
  Alcotest.(check (list (list string)))
    "2-of-3 cut sets"
    [ [ "x"; "y" ]; [ "x"; "z" ]; [ "y"; "z" ] ]
    (Fault_tree.minimal_cut_sets t)

let prop_cut_sets_are_sufficient =
  QCheck.Test.make ~count:100 ~name:"every minimal cut set triggers the tree"
    (QCheck.make (QCheck.Gen.return ()))
    (fun () ->
      let t = line2_down in
      List.for_all
        (fun cut -> Fault_tree.eval t (fun name -> List.mem name cut))
        (Fault_tree.minimal_cut_sets t))

let test_minimal_path_sets () =
  (* down = (a and b) or c; path sets: {a, c} and {b, c} *)
  let t = Fault_tree.or_ [ Fault_tree.and_ [ b "a"; b "b" ]; b "c" ] in
  Alcotest.(check (list (list string)))
    "path sets"
    [ [ "a"; "c" ]; [ "b"; "c" ] ]
    (Fault_tree.minimal_path_sets t);
  (* every path set's health forces the tree false *)
  List.iter
    (fun path ->
      Alcotest.(check bool) "keeps system up" false
        (Fault_tree.eval t (fun name -> not (List.mem name path))))
    (Fault_tree.minimal_path_sets t)

let test_string_roundtrip () =
  let s = Fault_tree.to_string line2_down in
  Alcotest.check ft "roundtrip" line2_down (Fault_tree.of_string s)

let test_of_string_examples () =
  Alcotest.check ft "plain or" (Fault_tree.or_ [ b "a"; b "b" ])
    (Fault_tree.of_string "or(a, b)");
  Alcotest.check ft "kofn" (Fault_tree.kofn 2 [ b "a"; b "b"; b "c" ])
    (Fault_tree.of_string "kofn(2, a, b, c)");
  Alcotest.check ft "whitespace"
    (Fault_tree.and_ [ b "x"; b "y" ])
    (Fault_tree.of_string "  and ( x ,  y )  ")

let test_of_string_errors () =
  List.iter
    (fun input ->
      match Fault_tree.of_string input with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "expected failure on %S" input))
    [ ""; "and()"; "or(a,"; "kofn(x, a)"; "a b" ]

let test_monotonicity () =
  (* failing more components can only decrease quantitative service *)
  let service = Fault_tree.dual line2_down in
  let basics = Fault_tree.basics service in
  let value failed name = if List.mem name failed then 0. else 1. in
  let all_subsets_of_two =
    List.concat_map (fun a -> List.map (fun c -> (a, c)) basics) basics
  in
  List.iter
    (fun (a, c) ->
      let s1 = Fault_tree.eval_quantitative service (value [ a ]) in
      let s2 = Fault_tree.eval_quantitative service (value [ a; c ]) in
      Alcotest.(check bool) "monotone" true (s2 <= s1 +. 1e-12))
    all_subsets_of_two

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "fault_tree"
    [
      ( "boolean",
        [
          Alcotest.test_case "constructor validation" `Quick test_constructors_validate;
          Alcotest.test_case "gate evaluation" `Quick test_eval_gates;
          Alcotest.test_case "basics order" `Quick test_basics_order;
        ] );
      ( "duality",
        [
          Alcotest.test_case "gate swap" `Quick test_dual_gates;
          Alcotest.test_case "involution" `Quick test_dual_involution;
        ]
        @ qsuite [ prop_duality ] );
      ( "quantitative",
        [
          Alcotest.test_case "gate formulas" `Quick test_quantitative_gates;
          Alcotest.test_case "line 2 service levels" `Quick test_service_levels_line2;
          Alcotest.test_case "line 1 service levels (spares)" `Quick
            test_service_levels_line1;
          Alcotest.test_case "monotone in failures" `Quick test_monotonicity;
        ] );
      ( "cut-sets",
        [
          Alcotest.test_case "absorption" `Quick test_minimal_cut_sets;
          Alcotest.test_case "kofn expansion" `Quick test_cut_sets_kofn;
          Alcotest.test_case "path sets" `Quick test_minimal_path_sets;
        ]
        @ qsuite [ prop_cut_sets_are_sufficient ] );
      ( "syntax",
        [
          Alcotest.test_case "roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "examples" `Quick test_of_string_examples;
          Alcotest.test_case "errors" `Quick test_of_string_errors;
        ] );
    ]
