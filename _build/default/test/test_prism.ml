(* Tests for the PRISM-subset language: lexer/parser, expression evaluator,
   pretty-printer roundtrip, and the state-space builder (interleaving and
   synchronized semantics, labels, rewards). *)

module Ast = Prism.Ast
module Parser = Prism.Parser
module Eval = Prism.Eval
module Builder = Prism.Builder
module Printer = Prism.Printer

let check_close ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let parse_expr = Parser.parse_expr

let eval_closed expr =
  Eval.eval
    (Eval.make_env ~constants:[] ~formulas:[] ~lookup_var:(fun _ -> None))
    expr

let check_value msg expected input =
  let v = eval_closed (parse_expr input) in
  match (expected, v) with
  | `I i, Eval.Vint j -> Alcotest.(check int) msg i j
  | `R r, Eval.Vreal s -> check_close msg r s
  | `B b, Eval.Vbool c -> Alcotest.(check bool) msg b c
  | _ -> Alcotest.failf "%s: wrong value kind" msg

(* ------------------------------------------------------------------ *)
(* Expressions *)

let test_expr_arithmetic () =
  check_value "precedence" (`I 7) "1 + 2 * 3";
  check_value "parens" (`I 9) "(1 + 2) * 3";
  check_value "division is real" (`R 0.5) "1 / 2";
  check_value "unary minus" (`I (-3)) "-3";
  check_value "scientific" (`R 150.) "1.5e2";
  check_value "pow int" (`I 8) "pow(2, 3)";
  check_value "mod" (`I 1) "mod(7, 3)";
  check_value "min max" (`I 2) "min(max(1, 2), 3)"

let test_expr_boolean () =
  check_value "and or precedence" (`B true) "true | false & false";
  check_value "not" (`B false) "!true";
  check_value "implies" (`B true) "false => false";
  check_value "iff" (`B false) "true <=> false";
  check_value "relational" (`B true) "1 + 1 <= 2";
  check_value "equality" (`B true) "2 = 2.0";
  check_value "ternary" (`I 5) "1 < 2 ? 5 : 6"

let test_expr_errors () =
  (match eval_closed (parse_expr "1 / 0") with
  | exception Eval.Eval_error _ -> ()
  | _ -> Alcotest.fail "division by zero");
  (match eval_closed (parse_expr "unbound_name") with
  | exception Eval.Eval_error _ -> ()
  | _ -> Alcotest.fail "unbound");
  match eval_closed (parse_expr "1 & true") with
  | exception Eval.Eval_error _ -> ()
  | _ -> Alcotest.fail "type error"

let test_parse_errors () =
  List.iter
    (fun input ->
      match Parser.parse_expr input with
      | exception Parser.Syntax_error _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "expected syntax error on %S" input))
    [ ""; "1 +"; "(1"; "min("; "?" ]

let test_expr_associativity () =
  (* => and <=> are right-associative; relational operators do not chain *)
  Alcotest.(check bool) "implies right assoc" true
    (parse_expr "true => false => true"
    = Ast.Binop (Ast.Implies, Ast.Bool_lit true,
                 Ast.Binop (Ast.Implies, Ast.Bool_lit false, Ast.Bool_lit true)));
  (match parse_expr "1 < 2 < 3" with
  | exception Parser.Syntax_error _ -> ()
  | e -> Alcotest.failf "chained comparison accepted: %s" (Printer.expr_to_string e));
  (* subtraction is left-associative *)
  (match eval_closed (parse_expr "10 - 3 - 2") with
  | Eval.Vint 5 -> ()
  | _ -> Alcotest.fail "left associativity of minus")

let test_printer_minimal_parens () =
  (* the printer adds parentheses only where the grammar needs them *)
  List.iter
    (fun (input, expected) ->
      Alcotest.(check string) input expected
        (Printer.expr_to_string (parse_expr input)))
    [
      ("1 + 2 * 3", "1 + 2 * 3");
      ("(1 + 2) * 3", "(1 + 2) * 3");
      ("!(a & b)", "!(a & b)");
      ("a => (b => c)", "a => b => c");
      ("min(1, 2) + 3", "min(1, 2) + 3");
    ]

let test_constants_resolution () =
  let consts =
    Eval.eval_constants
      [
        { Ast.const_name = "n"; const_type = Ast.Cint; const_value = parse_expr "3" };
        {
          Ast.const_name = "r";
          const_type = Ast.Cdouble;
          const_value = parse_expr "1 / (n + 1)";
        };
      ]
  in
  match List.assoc "r" consts with
  | Eval.Vreal r -> check_close "chained constants" 0.25 r
  | _ -> Alcotest.fail "expected real"

let test_formula_cycle_detected () =
  let env =
    Eval.make_env ~constants:[]
      ~formulas:
        [
          { Ast.formula_name = "f"; formula_body = parse_expr "g + 1" };
          { Ast.formula_name = "g"; formula_body = parse_expr "f + 1" };
        ]
      ~lookup_var:(fun _ -> None)
  in
  match Eval.eval env (parse_expr "f") with
  | exception Eval.Eval_error _ -> ()
  | _ -> Alcotest.fail "cycle not detected"

(* ------------------------------------------------------------------ *)
(* Model parsing and printing *)

let small_model =
  {|
ctmc
// a machine with failure and repair
const double lambda = 0.01;
const double mu = 1;

module machine
  up : bool init true;
  [] up -> lambda : (up' = false);
  [] !up -> mu : (up' = true);
endmodule

label "broken" = !up;

rewards "uptime"
  up : 1;
endrewards
|}

let test_parse_model_shape () =
  let m = Parser.parse_model small_model in
  Alcotest.(check int) "constants" 2 (List.length m.Ast.constants);
  Alcotest.(check int) "modules" 1 (List.length m.Ast.modules);
  Alcotest.(check int) "labels" 1 (List.length m.Ast.labels);
  Alcotest.(check int) "rewards" 1 (List.length m.Ast.rewards);
  let machine = List.hd m.Ast.modules in
  Alcotest.(check int) "commands" 2 (List.length machine.Ast.mod_commands)

let test_print_parse_roundtrip () =
  let m = Parser.parse_model small_model in
  let printed = Printer.model_to_string m in
  let m2 = Parser.parse_model printed in
  Alcotest.(check bool) "ast preserved" true (m = m2)

let test_parse_model_rejects () =
  List.iter
    (fun input ->
      match Parser.parse_model input with
      | exception Parser.Syntax_error _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "expected rejection of %S" input))
    [
      "dtmc\n";
      "ctmc module m endmodule extra";
      "ctmc init true endinit";
      "ctmc rewards [a] true : 1; endrewards";
    ]

(* ------------------------------------------------------------------ *)
(* Builder *)

let build src = Builder.build (Parser.parse_model src)

let test_build_two_state () =
  let b = build small_model in
  Alcotest.(check int) "states" 2 (Ctmc.Chain.states b.Builder.chain);
  Alcotest.(check int) "transitions" 2 (Ctmc.Chain.transition_count b.Builder.chain);
  let broken = Builder.label_pred b "broken" in
  let avail =
    Ctmc.Steady_state.long_run_probability b.Builder.chain ~pred:(fun s -> not (broken s))
  in
  check_close "availability" (1. /. 1.01) avail

let test_build_interleaving () =
  (* two independent 2-state machines: 4 states, 8 transitions *)
  let src =
    {|
ctmc
module m1
  x : bool init true;
  [] x -> 1 : (x' = false);
  [] !x -> 2 : (x' = true);
endmodule
module m2
  y : bool init true;
  [] y -> 3 : (y' = false);
  [] !y -> 4 : (y' = true);
endmodule
|}
  in
  let b = build src in
  Alcotest.(check int) "states" 4 (Ctmc.Chain.states b.Builder.chain);
  Alcotest.(check int) "transitions" 8 (Ctmc.Chain.transition_count b.Builder.chain)

let test_build_synchronization () =
  (* synchronized failure: both flip together at the product rate 2*0.5=1 *)
  let src =
    {|
ctmc
module m1
  x : bool init true;
  [sync] x -> 2 : (x' = false);
endmodule
module m2
  y : bool init true;
  [sync] y -> 0.5 : (y' = false);
endmodule
|}
  in
  let b = build src in
  Alcotest.(check int) "states" 2 (Ctmc.Chain.states b.Builder.chain);
  check_close "product rate" 1. (Ctmc.Chain.rate b.Builder.chain 0 1)

let test_build_sync_requires_all () =
  (* m2 never enables the action -> no transition at all *)
  let src =
    {|
ctmc
module m1
  x : bool init true;
  [sync] x -> 2 : (x' = false);
endmodule
module m2
  y : bool init true;
  [sync] false -> 1 : (y' = false);
endmodule
|}
  in
  let b = build src in
  Alcotest.(check int) "blocked sync" 1 (Ctmc.Chain.states b.Builder.chain)

let test_build_alternatives () =
  (* one command with two rate alternatives *)
  let src =
    {|
ctmc
module m
  s : [0..2] init 0;
  [] s = 0 -> 1 : (s' = 1) + 3 : (s' = 2);
endmodule
|}
  in
  let b = build src in
  Alcotest.(check int) "states" 3 (Ctmc.Chain.states b.Builder.chain);
  let idx v =
    match b.Builder.index_of_vector v with
    | Some i -> i
    | None -> Alcotest.fail "state not found"
  in
  check_close "first branch" 1.
    (Ctmc.Chain.rate b.Builder.chain (idx [| 0 |]) (idx [| 1 |]));
  check_close "second branch" 3.
    (Ctmc.Chain.rate b.Builder.chain (idx [| 0 |]) (idx [| 2 |]))

let test_build_range_violation () =
  let src =
    {|
ctmc
module m
  s : [0..1] init 0;
  [] s < 5 -> 1 : (s' = s + 1);
endmodule
|}
  in
  match build src with
  | exception Builder.Build_error _ -> ()
  | _ -> Alcotest.fail "expected out-of-range error"

let test_build_foreign_write_rejected () =
  let src =
    {|
ctmc
module m1
  x : bool init true;
  [] x -> 1 : (y' = false);
endmodule
module m2
  y : bool init true;
endmodule
|}
  in
  match build src with
  | exception Builder.Build_error _ -> ()
  | _ -> Alcotest.fail "expected ownership error"

let test_build_self_loops_dropped () =
  let src =
    {|
ctmc
module m
  x : bool init true;
  [] x -> 5 : (x' = true);
  [] x -> 1 : (x' = false);
endmodule
|}
  in
  let b = build src in
  (* the self-loop must not contribute *)
  Alcotest.(check int) "transitions" 1 (Ctmc.Chain.transition_count b.Builder.chain)

let test_build_rewards_and_state_pred () =
  let b = build small_model in
  let uptime = Builder.reward_structure b (Some "uptime") in
  check_close "reward in initial state" 1. uptime.(0);
  let pred = Builder.state_pred b (parse_expr "up = false") in
  let n_down = ref 0 in
  for s = 0 to Ctmc.Chain.states b.Builder.chain - 1 do
    if pred s then incr n_down
  done;
  Alcotest.(check int) "one down state" 1 !n_down

let test_build_max_states_guard () =
  let src =
    {|
ctmc
module m
  s : [0..1000] init 0;
  [] s < 1000 -> 1 : (s' = s + 1);
endmodule
|}
  in
  match Builder.build ~max_states:10 (Parser.parse_model src) with
  | exception Builder.Build_error _ -> ()
  | _ -> Alcotest.fail "expected max_states abort"

let test_builder_formulas_in_guards () =
  let src =
    {|
ctmc
formula busy = (a = 1 ? 1 : 0) + (b = 1 ? 1 : 0);
module m
  a : [0..1] init 0;
  b : [0..1] init 0;
  [] a = 0 & busy < 1 -> 1 : (a' = 1);
  [] b = 0 & busy < 1 -> 1 : (b' = 1);
  [] a = 1 -> 2 : (a' = 0);
  [] b = 1 -> 2 : (b' = 0);
endmodule
|}
  in
  let b = build src in
  (* busy < 1 forbids both being up simultaneously: 3 states, not 4 *)
  Alcotest.(check int) "mutual exclusion via formula" 3
    (Ctmc.Chain.states b.Builder.chain)

(* printer precedence: random expressions must roundtrip through the
   printer and parser *)
let expr_gen =
  QCheck.Gen.(
    sized_size (int_range 0 5)
      (fix (fun self n ->
           if n = 0 then
             oneof
               [
                 map (fun i -> Ast.Int_lit i) (int_range 0 9);
                 map (fun b -> Ast.Bool_lit b) bool;
                 return (Ast.Var "x");
               ]
           else
             let sub = self (n / 2) in
             oneof
               [
                 map (fun i -> Ast.Int_lit i) (int_range 0 9);
                 map2 (fun a b -> Ast.Binop (Ast.Add, a, b)) sub sub;
                 map2 (fun a b -> Ast.Binop (Ast.Mul, a, b)) sub sub;
                 map2 (fun a b -> Ast.Binop (Ast.Sub, a, b)) sub sub;
                 map2 (fun a b -> Ast.Binop (Ast.Lt, a, b)) sub sub;
                 map2 (fun a b -> Ast.Binop (Ast.And, Ast.Binop (Ast.Le, a, b),
                                             Ast.Binop (Ast.Ge, a, b))) sub sub;
                 map3 (fun c a b -> Ast.Ite (Ast.Binop (Ast.Lt, c, Ast.Int_lit 5), a, b))
                   sub sub sub;
                 map (fun a -> Ast.Unop (Ast.Neg, a)) sub;
                 map (fun l -> Ast.Call ("min", l)) (list_size (int_range 1 3) sub);
               ])))

let prop_printer_parser_roundtrip =
  QCheck.Test.make ~count:500 ~name:"printer/parser roundtrip on expressions"
    (QCheck.make expr_gen)
    (fun e ->
      let printed = Printer.expr_to_string e in
      Parser.parse_expr printed = e)

let () =
  Alcotest.run "prism"
    [
      ( "expressions",
        [
          Alcotest.test_case "arithmetic" `Quick test_expr_arithmetic;
          Alcotest.test_case "boolean" `Quick test_expr_boolean;
          Alcotest.test_case "evaluation errors" `Quick test_expr_errors;
          Alcotest.test_case "syntax errors" `Quick test_parse_errors;
          Alcotest.test_case "associativity" `Quick test_expr_associativity;
          Alcotest.test_case "minimal parentheses" `Quick test_printer_minimal_parens;
          Alcotest.test_case "constants" `Quick test_constants_resolution;
          Alcotest.test_case "formula cycles" `Quick test_formula_cycle_detected;
        ] );
      ( "model-syntax",
        [
          Alcotest.test_case "parse shape" `Quick test_parse_model_shape;
          Alcotest.test_case "print/parse roundtrip" `Quick test_print_parse_roundtrip;
          Alcotest.test_case "rejections" `Quick test_parse_model_rejects;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_printer_parser_roundtrip ] );
      ( "builder",
        [
          Alcotest.test_case "two-state machine" `Quick test_build_two_state;
          Alcotest.test_case "interleaving" `Quick test_build_interleaving;
          Alcotest.test_case "synchronization multiplies rates" `Quick
            test_build_synchronization;
          Alcotest.test_case "blocked synchronization" `Quick test_build_sync_requires_all;
          Alcotest.test_case "update alternatives" `Quick test_build_alternatives;
          Alcotest.test_case "range violation" `Quick test_build_range_violation;
          Alcotest.test_case "foreign write rejected" `Quick
            test_build_foreign_write_rejected;
          Alcotest.test_case "self-loops dropped" `Quick test_build_self_loops_dropped;
          Alcotest.test_case "rewards and predicates" `Quick
            test_build_rewards_and_state_pred;
          Alcotest.test_case "max states guard" `Quick test_build_max_states_guard;
          Alcotest.test_case "formulas in guards" `Quick test_builder_formulas_in_guards;
        ] );
    ]
