(* Tests for the XML toolkit: parsing, escaping, error reporting and the
   parse/print roundtrip property. *)

module X = Xml_kit

let xml =
  Alcotest.testable
    (Fmt.of_to_string (fun doc -> X.to_string doc))
    ( = )

let parse = X.parse_string

(* ------------------------------------------------------------------ *)

let test_parse_simple () =
  let doc = parse "<a x=\"1\"><b/>text<c y=\"2\">inner</c></a>" in
  Alcotest.(check string) "root name" "a" (X.name doc);
  Alcotest.(check (option string)) "attr" (Some "1") (X.attribute doc "x");
  Alcotest.(check int) "children" 3 (List.length (X.children doc));
  Alcotest.(check int) "element children" 2 (List.length (X.child_elements doc));
  Alcotest.(check string) "text content" "textinner" (X.text_content doc)

let test_parse_declaration_comment () =
  let doc =
    parse
      "<?xml version=\"1.0\"?>\n<!-- a comment -->\n<root><!-- inner -->\n<leaf/></root>"
  in
  Alcotest.(check string) "root" "root" (X.name doc);
  Alcotest.(check int) "comment dropped" 1 (List.length (X.child_elements doc))

let test_parse_doctype () =
  let doc = parse "<!DOCTYPE arcade>\n<arcade/>" in
  Alcotest.(check string) "root" "arcade" (X.name doc)

let test_parse_entities () =
  let doc = parse "<a t=\"&lt;&amp;&gt;\">x &lt; y &amp; z &#65;&#x42;</a>" in
  Alcotest.(check (option string)) "attr entities" (Some "<&>") (X.attribute doc "t");
  Alcotest.(check string) "text entities" "x < y & z AB" (X.text_content doc)

let test_parse_cdata () =
  let doc = parse "<a><![CDATA[<raw> & stuff]]></a>" in
  Alcotest.(check string) "cdata" "<raw> & stuff" (X.text_content doc)

let test_parse_errors () =
  let expect_error input =
    match parse input with
    | exception X.Parse_error _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "expected parse error on %S" input)
  in
  List.iter expect_error
    [
      "";
      "<a>";
      "<a></b>";
      "<a x=1/>";
      "<a x=\"1\" x=\"2\"/>";
      "<a>&unknown;</a>";
      "<a/><b/>";
      "no markup";
    ]

let test_error_position () =
  match parse "<a>\n  <b></c>\n</a>" with
  | exception X.Parse_error { line; message; _ } ->
      Alcotest.(check int) "line number" 2 line;
      Alcotest.(check bool) "mentions tags" true
        (String.length message > 0)
  | _ -> Alcotest.fail "expected mismatched-tag error"

let test_escape () =
  Alcotest.(check string) "escape"
    "&lt;a&gt; &amp; &quot;b&quot; &apos;c&apos;"
    (X.escape "<a> & \"b\" 'c'")

let test_accessors () =
  let doc = parse "<root><x id=\"1\"/><y/><x id=\"2\"/></root>" in
  Alcotest.(check int) "find_children" 2 (List.length (X.find_children doc "x"));
  (match X.find_child doc "y" with
  | Some el -> Alcotest.(check string) "find_child" "y" (X.name el)
  | None -> Alcotest.fail "y not found");
  Alcotest.(check (option string)) "missing attribute" None (X.attribute doc "nope");
  (match X.attribute_exn (X.find_child_exn doc "x") "id" with
  | "1" -> ()
  | other -> Alcotest.failf "wrong first x: %s" other);
  (match X.find_child_exn doc "zzz" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure for missing child")

let test_serialize_escapes () =
  let doc = X.element "a" [ ("k", "<&>\"'") ] [ X.text "x < y" ] in
  let reparsed = parse (X.to_string doc) in
  Alcotest.(check (option string)) "attr preserved" (Some "<&>\"'")
    (X.attribute reparsed "k");
  Alcotest.(check string) "text preserved" "x < y" (X.text_content reparsed)

let test_compact_output () =
  let doc = X.element "a" [] [ X.element "b" [] [] ] in
  let s = X.to_string ~indent:0 doc in
  Alcotest.(check bool) "no newlines in body" true
    (not (String.contains (String.sub s 38 (String.length s - 38)) '\n'))

(* roundtrip property over random trees (element-only, since whitespace
   normalization affects text nodes) *)
let tree_gen =
  QCheck.Gen.(
    let name_gen = oneofl [ "alpha"; "beta"; "gamma"; "delta-x"; "e_1" ] in
    let attr_gen =
      list_size (int_range 0 3)
        (pair (oneofl [ "a"; "b"; "c" ]) (oneofl [ "1"; "x<y"; "m&m"; "\"q\""; "" ]))
    in
    let dedup attrs =
      List.fold_left
        (fun acc (k, v) -> if List.mem_assoc k acc then acc else (k, v) :: acc)
        [] attrs
    in
    sized_size (int_range 0 4)
      (fix (fun self n ->
           let* name = name_gen in
           let* attrs = attr_gen in
           if n = 0 then return (X.element name (dedup attrs) [])
           else
             let* kids = list_size (int_range 0 3) (self (n / 2)) in
             return (X.element name (dedup attrs) kids))))

let prop_roundtrip =
  QCheck.Test.make ~count:300 ~name:"parse (to_string doc) = doc"
    (QCheck.make tree_gen)
    (fun doc -> parse (X.to_string doc) = doc)

let prop_roundtrip_compact =
  QCheck.Test.make ~count:300 ~name:"compact roundtrip"
    (QCheck.make tree_gen)
    (fun doc -> parse (X.to_string ~indent:0 doc) = doc)

let () =
  Alcotest.run "xml_kit"
    [
      ( "parse",
        [
          Alcotest.test_case "simple document" `Quick test_parse_simple;
          Alcotest.test_case "declaration and comments" `Quick
            test_parse_declaration_comment;
          Alcotest.test_case "doctype" `Quick test_parse_doctype;
          Alcotest.test_case "entities" `Quick test_parse_entities;
          Alcotest.test_case "cdata" `Quick test_parse_cdata;
          Alcotest.test_case "malformed inputs" `Quick test_parse_errors;
          Alcotest.test_case "error positions" `Quick test_error_position;
        ] );
      ( "serialize",
        [
          Alcotest.test_case "escape" `Quick test_escape;
          Alcotest.test_case "escapes roundtrip" `Quick test_serialize_escapes;
          Alcotest.test_case "compact mode" `Quick test_compact_output;
        ] );
      ( "accessors", [ Alcotest.test_case "navigation" `Quick test_accessors ] );
      ( "roundtrip",
        List.map QCheck_alcotest.to_alcotest [ prop_roundtrip; prop_roundtrip_compact ]
      );
      ( "arcade-doc",
        [
          Alcotest.test_case "realistic document" `Quick (fun () ->
              let text =
                {|<?xml version="1.0" encoding="UTF-8"?>
<arcade name="demo">
  <components>
    <component name="st1" mttf="2000" mttr="5"/>
  </components>
  <fault-tree><basic ref="st1"/></fault-tree>
</arcade>|}
              in
              let doc = parse text in
              Alcotest.check xml "reparse of print" doc (parse (X.to_string doc)));
        ] );
    ]
