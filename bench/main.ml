(* Benchmark harness: regenerates every table and figure of the paper and
   times the computations behind them.

   Part 1 prints the reproduced artifacts (the actual data of Tables 1-2 and
   Figures 3-11) with wall-clock generation times at full scale.

   Part 2 registers one Bechamel micro-benchmark per artifact — the analysis
   kernel that regenerates it, run at Line-2 scale so OLS gets enough
   samples — plus ablation benches for the design choices DESIGN.md calls
   out (lumping, the PRISM translation path, simulation) and an
   engine pair contrasting a fresh chain per query against a shared
   Ctmc.Analysis session (the cached path all measures now run through).

   Environment knobs: BENCH_POINTS (curve samples in part 1, default 15),
   BATCH (stream count of the batched-vs-unbatched kernel contrast,
   default 5), BENCH_SKIP_ARTIFACTS=1 (skip part 1), BENCH_SKIP_ABLATIONS=1,
   BENCH_SKIP_MICRO=1 (skip part 2), PAR_DOMAINS (domain fan-out width
   for part 1 and the per-config series inside each artifact; default
   Domain.recommended_domain_count, 1 = sequential), BENCH_JSON=<path>
   (dump the per-artifact timings — with curve point counts and
   state-space sizes — plus kernel counters, the Obs metrics snapshot and
   micro-benchmark estimates as JSON — the BENCH_*.json perf trajectory;
   written atomically via temp file + rename), BENCH_HISTORY=<path>
   (append one compact JSONL entry — git rev, wall times, kernel
   counters, solver iterations — for arcade_bench_diff's regression
   gate; BENCH_REV overrides the recorded revision), OBS_TRACE=<path> (Chrome
   trace-event JSON of the whole run, loadable in Perfetto) and
   OBS_METRICS=1|<path> (enable the metrics registry; print the snapshot
   to stderr at exit, or write it to <path> as JSON). *)

open Bechamel
open Toolkit

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some i -> i | None -> default)
  | None -> default

let skip name = Sys.getenv_opt name = Some "1"

(* ------------------------------------------------------------------ *)
(* Part 1: print the reproduced artifacts *)

type artifact_timing = {
  art_id : string;
  art_seconds : float;
  art_points : int;  (* total curve points across the artifact's series *)
  art_states : (string * int) list;  (* per-chain state-space sizes *)
}

let print_artifacts () =
  let points = getenv_int "BENCH_POINTS" 15 in
  Format.printf "==========================================================@.";
  Format.printf " Reproduction of the paper's tables and figures@.";
  Format.printf " (curves sampled at %d points; BENCH_POINTS overrides;@." points;
  Format.printf "  artifacts fan out over %d domains, PAR_DOMAINS overrides)@."
    (Numeric.Parallel.default_domains ());
  Format.printf "==========================================================@.@.";
  (* generate in parallel (one artifact per worker; each worker owns its
     chain cache and analysis sessions), render sequentially in order *)
  let results =
    Numeric.Parallel.map
      (fun id ->
        let gen =
          match Watertreatment.Experiments.by_id id with
          | Some gen -> gen
          | None -> assert false
        in
        let t0 = Unix.gettimeofday () in
        let artifact = gen ~points () in
        let dt = Unix.gettimeofday () -. t0 in
        ( {
            art_id = id;
            art_seconds = dt;
            art_points = Watertreatment.Experiments.artifact_points artifact;
            art_states = Watertreatment.Experiments.state_spaces id;
          },
          artifact ))
      Watertreatment.Experiments.ids
  in
  List.map
    (fun (timing, artifact) ->
      Watertreatment.Experiments.render_artifact Format.std_formatter artifact;
      Format.printf "  [%s generated in %.2f s]@.@." timing.art_id
        timing.art_seconds;
      timing)
    results

let print_ablations () =
  Format.printf "==========================================================@.";
  Format.printf " Ablation studies (beyond the paper)@.";
  Format.printf "==========================================================@.@.";
  List.map
    (fun id ->
      let gen =
        match Watertreatment.Ablations.by_id id with
        | Some gen -> gen
        | None -> assert false
      in
      let t0 = Unix.gettimeofday () in
      let artifact = gen () in
      let dt = Unix.gettimeofday () -. t0 in
      Watertreatment.Experiments.render_artifact Format.std_formatter artifact;
      Format.printf "  [%s generated in %.2f s]@.@." id dt;
      (id, dt))
    Watertreatment.Ablations.ids

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-benchmarks *)

(* Prebuilt Line-2 chains shared by the kernels (building them is its own
   benchmark; the measure kernels time the analysis, as in the paper's tool
   chain where PRISM builds once and checks many properties). *)
let line2 = Watertreatment.Facility.Line2

let frf1 = Watertreatment.Facility.frf 1

let model_line2_frf1 = Watertreatment.Facility.line_model line2 frf1

let measures_line2_frf1 = lazy (Core.Measures.analyze model_line2_frf1)

let measures_line2_frf1_lump =
  lazy (Core.Measures.analyze ~lump:true model_line2_frf1)

let measures_line2_ded =
  lazy
    (Core.Measures.analyze
       (Watertreatment.Facility.line_model line2 Watertreatment.Facility.ded))

let good_line2_frf1 =
  lazy
    (Watertreatment.Facility.analyze_after_disaster line2 frf1
       ~failed:Watertreatment.Facility.disaster2)

let reliability_line2 =
  lazy (Core.Measures.analyze (Watertreatment.Facility.reliability_model line2))

let grid n upto = List.init n (fun i -> upto *. float_of_int i /. float_of_int (n - 1))

let test_table1 =
  (* Table 1 kernel: explore the Line 2 FRF-1 state space (8129 states) *)
  Test.make ~name:"table1/state-space-build (line2 frf-1)"
    (Staged.stage (fun () -> Core.Semantics.build model_line2_frf1))

let test_table2 =
  Test.make ~name:"table2/steady-state availability (line2 frf-1)"
    (Staged.stage (fun () ->
         Core.Measures.availability (Lazy.force measures_line2_frf1)))

let test_fig3 =
  Test.make ~name:"fig3/reliability curve (line2, 10 pts)"
    (Staged.stage (fun () ->
         Core.Measures.reliability_curve (Lazy.force reliability_line2)
           ~times:(grid 10 1000.)))

let test_fig4 =
  Test.make ~name:"fig4/survivability X1 curve (line2 D2, 10 pts)"
    (Staged.stage (fun () ->
         Core.Measures.survivability_curve (Lazy.force good_line2_frf1)
           ~service_level:(1. /. 3.) ~times:(grid 10 100.)))

let test_fig5 =
  Test.make ~name:"fig5/survivability X2 curve (line2 D2, 10 pts)"
    (Staged.stage (fun () ->
         Core.Measures.survivability_curve (Lazy.force good_line2_frf1)
           ~service_level:0.5 ~times:(grid 10 100.)))

let test_fig6 =
  Test.make ~name:"fig6/instantaneous cost curve (line2 D2, 10 pts)"
    (Staged.stage (fun () ->
         Core.Measures.instantaneous_cost_curve (Lazy.force good_line2_frf1)
           ~times:(grid 10 50.)))

let test_fig7 =
  Test.make ~name:"fig7/accumulated cost curve (line2 D2, 10 pts)"
    (Staged.stage (fun () ->
         Core.Measures.accumulated_cost_curve (Lazy.force good_line2_frf1)
           ~times:(grid 10 50.)))

let test_fig8 =
  Test.make ~name:"fig8/survivability X1 point (line2 D2, t=100)"
    (Staged.stage (fun () ->
         Core.Measures.survivability (Lazy.force good_line2_frf1)
           ~service_level:(1. /. 3.) ~time:100.))

let test_fig9 =
  Test.make ~name:"fig9/survivability X3 point (line2 D2, t=100)"
    (Staged.stage (fun () ->
         Core.Measures.survivability (Lazy.force good_line2_frf1)
           ~service_level:(2. /. 3.) ~time:100.))

let test_fig10 =
  Test.make ~name:"fig10/instantaneous cost point (line2 D2, t=50)"
    (Staged.stage (fun () ->
         Core.Measures.instantaneous_cost (Lazy.force good_line2_frf1) ~time:50.))

let test_fig11 =
  Test.make ~name:"fig11/accumulated cost point (line2 D2, t=50)"
    (Staged.stage (fun () ->
         Core.Measures.accumulated_cost (Lazy.force good_line2_frf1) ~time:50.))

(* Engine: the cost of one transient query without and with the shared
   analysis session. The fresh path rebuilds the uniformized matrix and
   Fox-Glynn weights per call (the pre-engine behaviour); the cached path
   is what every measure above now does. *)

let test_engine_transient_fresh =
  Test.make ~name:"engine/transient query, fresh chain (line2 frf-1, t=100)"
    (Staged.stage (fun () ->
         let m = Lazy.force measures_line2_frf1 in
         let chain = (Core.Measures.built m).Core.Semantics.chain in
         Ctmc.Transient.probability_at chain ~pred:(fun _ -> true) 100.))

let test_engine_transient_cached =
  Test.make ~name:"engine/transient query, cached session (line2 frf-1, t=100)"
    (Staged.stage (fun () ->
         let m = Lazy.force measures_line2_frf1 in
         let chain = (Core.Measures.built m).Core.Semantics.chain in
         Ctmc.Transient.probability_at ~analysis:(Core.Measures.analysis m)
           chain
           ~pred:(fun _ -> true)
           100.))

(* Full vs quotient: the same bounded-until measure (unreliability at
   t=100) on the full FRF-1 chain and through the lumping quotient
   (Analysis.quotient, cached in the session after the first call). *)

let test_engine_until_full =
  Test.make ~name:"engine/bounded-until, full chain (line2 frf-1, t=100)"
    (Staged.stage (fun () ->
         Core.Measures.unreliability (Lazy.force measures_line2_frf1) ~time:100.))

let test_engine_until_quotient =
  Test.make ~name:"engine/bounded-until, quotient (line2 frf-1, t=100)"
    (Staged.stage (fun () ->
         Core.Measures.unreliability
           (Lazy.force measures_line2_frf1_lump)
           ~time:100.))

(* Curve kernels: the PR-1 segmented evaluation (one windowed
   uniformization segment per point, restarting from the previous
   distribution) against the multi-time-point kernel (one shared sweep
   with a per-point accumulator), on the same session and time grid. *)

let curve_times = grid 10 100.

let test_curve_segmented =
  Test.make ~name:"curve/segmented (line2 frf-1 transient, 10 pts)"
    (Staged.stage (fun () ->
         let m = Lazy.force measures_line2_frf1 in
         let chain = (Core.Measures.built m).Core.Semantics.chain in
         let a = Core.Measures.analysis m in
         let _, points =
           List.fold_left
             (fun ((t_prev, pi_prev), acc) t ->
               let pi =
                 Ctmc.Transient.distribution_from ~analysis:a chain pi_prev
                   (t -. t_prev)
               in
               ((t, pi), (t, pi) :: acc))
             ((0., Ctmc.Chain.initial chain), [])
             curve_times
         in
         List.rev points))

let test_curve_multi =
  Test.make ~name:"curve/multi (line2 frf-1 transient, 10 pts)"
    (Staged.stage (fun () ->
         let m = Lazy.force measures_line2_frf1 in
         let chain = (Core.Measures.built m).Core.Semantics.chain in
         Ctmc.Transient.curve ~analysis:(Core.Measures.analysis m) chain
           ~times:curve_times))

(* Ablations *)

let test_ablation_prism_path =
  (* the tool-chain alternative: translate to PRISM, parse, rebuild *)
  Test.make ~name:"ablation/prism-translation path (line2 frf-1)"
    (Staged.stage (fun () ->
         Prism.Builder.build
           (Prism.Parser.parse_model (Core.To_prism.to_string model_line2_frf1))))

let test_ablation_lumping =
  (* the paper's future-work minimization: lump the dedicated Line 2 chain *)
  Test.make ~name:"ablation/lumping (line2 ded, 512 states)"
    (Staged.stage (fun () ->
         let m = Lazy.force measures_line2_ded in
         let built = Core.Measures.built m in
         let chain = built.Core.Semantics.chain in
         let key s =
           let st = built.Core.Semantics.states.(s) in
           let count lo hi =
             let acc = ref 0 in
             for i = lo to hi do
               if st.Core.Semantics.up.(i) then incr acc
             done;
             !acc
           in
           Printf.sprintf "%d/%d/%b/%d" (count 0 2) (count 3 4)
             st.Core.Semantics.up.(5) (count 6 8)
         in
         let initial = Ctmc.Lumping.partition_by_key (Ctmc.Chain.states chain) key in
         Ctmc.Lumping.lump chain ~initial))

let test_ablation_simulation =
  Test.make ~name:"ablation/monte-carlo (line2 ded, 100 runs, 500 h)"
    (Staged.stage
       (let rng = Numeric.Rng.create 42L in
        fun () ->
          let m = Lazy.force measures_line2_ded in
          let chain = (Core.Measures.built m).Core.Semantics.chain in
          Ctmc.Simulate.estimate chain rng ~runs:100 ~horizon:500. ~f:(fun path ->
              Ctmc.Simulate.time_in path ~horizon:500. ~pred:(fun _ -> true))))

let test_ablation_uniformization =
  Test.make ~name:"ablation/fox-glynn weights (lambda = 10000)"
    (Staged.stage (fun () -> Numeric.Fox_glynn.compute 10_000.))

let all_tests =
  [
    test_table1; test_table2; test_fig3; test_fig4; test_fig5; test_fig6;
    test_fig7; test_fig8; test_fig9; test_fig10; test_fig11;
    test_engine_transient_fresh; test_engine_transient_cached;
    test_engine_until_full; test_engine_until_quotient;
    test_curve_segmented; test_curve_multi;
    test_ablation_prism_path; test_ablation_lumping; test_ablation_simulation;
    test_ablation_uniformization;
  ]

(* Kernel observability: run one 10-point accumulated-cost curve on a
   fresh Line-2 session and report the mixture counters (one pass, the
   sweep's SpMV count), then one quotient-backed availability on the same
   FRF-1 model and report the lumping counters — dumped into the JSON and
   printed via pp_stats. *)
let kernel_counters () =
  let m = Core.Measures.analyze model_line2_frf1 in
  let a = Core.Measures.analysis m in
  ignore (Core.Measures.accumulated_cost_curve m ~times:(grid 10 50.));
  Format.printf "kernel: 10-pt accumulated curve -> %a@."
    Ctmc.Analysis.pp_stats a;
  let s = Ctmc.Analysis.stats a in
  (* Blocked-kernel contrast (the BATCH knob, default 5): the same K
     fig7-style Tail_over_lambda streams (accumulated cost over a
     10-point grid to t=50) evaluated as K separate single-stream sweeps
     and as one width-K blocked sweep on the same warmed session. CI
     gates on batched_seconds < unbatched_seconds. *)
  let batch_width = max 1 (getenv_int "BATCH" 5) in
  let chain = (Core.Measures.built m).Core.Semantics.chain in
  let batch_times = grid 10 50. in
  let start = Ctmc.Chain.initial chain in
  let streams =
    List.init batch_width (fun _ ->
        {
          Ctmc.Analysis.start;
          coeff = Ctmc.Analysis.Tail_over_lambda;
          times = batch_times;
        })
  in
  let time_min f =
    (* best of three: the first rep doubles as warm-up *)
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      f ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let unbatched_seconds =
    time_min (fun () ->
        List.iter
          (fun b ->
            ignore
              (Ctmc.Analysis.poisson_mixture_multi a ~dir:Ctmc.Analysis.Forward
                 ~coeff:b.Ctmc.Analysis.coeff b.Ctmc.Analysis.start
                 ~times:b.Ctmc.Analysis.times
                : Numeric.Vec.t list))
          streams)
  in
  let before = Ctmc.Analysis.stats a in
  let batched_seconds =
    time_min (fun () ->
        ignore
          (Ctmc.Analysis.poisson_mixture_batch a ~dir:Ctmc.Analysis.Forward
             streams
            : Numeric.Vec.t list list))
  in
  let after = Ctmc.Analysis.stats a in
  let passes =
    max 1 (after.Ctmc.Analysis.batch_passes - before.Ctmc.Analysis.batch_passes)
  in
  let sweeps_per_solve =
    (after.Ctmc.Analysis.mixture_steps - before.Ctmc.Analysis.mixture_steps)
    / passes
  in
  (* streamed-bytes estimate of one blocked sweep: CSR values (8 B) and
     column indices (4 B) per stored entry (transitions + uniformization
     diagonal), row pointers (4 B), and the K-wide interleaved vectors
     read and written once per state per step *)
  let full_states = float_of_int (Ctmc.Chain.states chain) in
  let nnz = float_of_int (Ctmc.Chain.transition_count chain) +. full_states in
  let step_bytes =
    (nnz *. 12.) +. ((full_states +. 1.) *. 4.)
    +. (float_of_int batch_width *. 16. *. full_states)
  in
  let spmv_gbps =
    float_of_int sweeps_per_solve *. step_bytes /. batched_seconds /. 1e9
  in
  Format.printf
    "kernel: %d-stream fig7 sweep -> batched %.4f s vs unbatched %.4f s \
     (%.2fx, ~%.2f GB/s)@."
    batch_width batched_seconds unbatched_seconds
    (unbatched_seconds /. batched_seconds)
    spmv_gbps;
  let ml = Core.Measures.analyze ~lump:true model_line2_frf1 in
  let al = Core.Measures.analysis ml in
  ignore (Core.Measures.availability ml);
  ignore (Core.Measures.availability ml);
  Format.printf "kernel: quotient availability x2 -> %a@."
    Ctmc.Analysis.pp_stats al;
  let sl = Ctmc.Analysis.stats al in
  let states =
    Ctmc.Chain.states (Core.Measures.built ml).Core.Semantics.chain
  in
  [
    ("mixture_passes", float_of_int s.Ctmc.Analysis.mixture_passes);
    ("mixture_steps", float_of_int s.Ctmc.Analysis.mixture_steps);
    ("states", float_of_int states);
    ("batch_width", float_of_int batch_width);
    ("batched_seconds", batched_seconds);
    ("unbatched_seconds", unbatched_seconds);
    ("sweeps_per_solve", float_of_int sweeps_per_solve);
    ("spmv_gb_per_s", spmv_gbps);
    ("batch_passes", float_of_int after.Ctmc.Analysis.batch_passes);
    ("batch_columns", float_of_int after.Ctmc.Analysis.batch_columns);
    ("lump_builds", float_of_int sl.Ctmc.Analysis.lump_builds);
    ("lump_hits", float_of_int sl.Ctmc.Analysis.lump_hits);
    ("lumped_states", float_of_int sl.Ctmc.Analysis.lumped_states);
  ]

let run_micro () =
  Format.printf "==========================================================@.";
  Format.printf " Bechamel micro-benchmarks (one per table/figure + ablations)@.";
  Format.printf "==========================================================@.";
  let grouped = Test.make_grouped ~name:"arcade" all_tests in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 2.0) ~stabilize:false ~kde:None ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances grouped in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Format.printf "  %-58s %12s@." "benchmark" "time/run";
  List.filter_map
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some (est :: _) ->
          let human =
            if est > 1e9 then Printf.sprintf "%8.3f  s" (est /. 1e9)
            else if est > 1e6 then Printf.sprintf "%8.3f ms" (est /. 1e6)
            else if est > 1e3 then Printf.sprintf "%8.3f us" (est /. 1e3)
            else Printf.sprintf "%8.0f ns" est
          in
          Format.printf "  %-58s %12s@." name human;
          Some (name, est)
      | Some [] | None ->
          Format.printf "  %-58s %12s@." name "n/a";
          None)
    rows

(* ------------------------------------------------------------------ *)
(* BENCH_JSON: machine-readable timings (the BENCH_*.json trajectory) *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_timings buf key field entries =
  Buffer.add_string buf (Printf.sprintf "  %S: [\n" key);
  List.iteri
    (fun i (name, v) ->
      Buffer.add_string buf
        (Printf.sprintf "    {\"%s\": \"%s\", \"%s\": %.6f}%s\n" "id"
           (json_escape name) field v
           (if i = List.length entries - 1 then "" else ",")))
    entries;
  Buffer.add_string buf "  ]"

let json_artifacts buf entries =
  Buffer.add_string buf "  \"artifacts\": [\n";
  List.iteri
    (fun i a ->
      let states =
        String.concat ", "
          (List.map
             (fun (label, n) -> Printf.sprintf "{\"chain\": \"%s\", \"states\": %d}"
                (json_escape label) n)
             a.art_states)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"id\": \"%s\", \"seconds\": %.6f, \"points\": %d, \
            \"state_spaces\": [%s]}%s\n"
           (json_escape a.art_id) a.art_seconds a.art_points states
           (if i = List.length entries - 1 then "" else ",")))
    entries;
  Buffer.add_string buf "  ]"

let write_json path ~artifacts ~kernel ~ablations ~micro =
  (* Obs.Metrics.to_json is a complete JSON object: embed it verbatim as
     the "metrics" member (empty-but-valid when OBS_METRICS is off). *)
  let metrics_json = String.trim (Obs.Metrics.to_json (Obs.Metrics.snapshot ())) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"bench_points\": %d,\n" (getenv_int "BENCH_POINTS" 15));
  Buffer.add_string buf
    (Printf.sprintf "  \"par_domains\": %d,\n"
       (Numeric.Parallel.default_domains ()));
  json_artifacts buf artifacts;
  Buffer.add_string buf ",\n";
  Buffer.add_string buf "  \"kernel\": {";
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun (name, v) -> Printf.sprintf "\"%s\": %.6g" (json_escape name) v)
          kernel));
  Buffer.add_string buf "},\n";
  json_timings buf "ablations" "seconds" ablations;
  Buffer.add_string buf ",\n";
  json_timings buf "micro" "ns_per_run" micro;
  Buffer.add_string buf ",\n";
  Buffer.add_string buf (Printf.sprintf "  \"metrics\": %s" metrics_json);
  Buffer.add_string buf "\n}\n";
  (* write-then-rename (unique temp + rename in Obs): an interrupted or
     crashed run can never leave a truncated JSON artifact behind *)
  Obs.write_file_atomic path (Buffer.contents buf);
  Format.printf "wrote timings to %s@." path

(* ------------------------------------------------------------------ *)
(* BENCH_HISTORY: append-only JSONL perf trajectory, one compact entry
   per run. arcade_bench_diff compares two entries (or the last two of
   one file) and fails CI past a wall-time regression threshold. *)

let git_rev () =
  match Sys.getenv_opt "BENCH_REV" with
  | Some rev when rev <> "" -> rev
  | _ -> (
      match Unix.open_process_in "git rev-parse HEAD 2>/dev/null" with
      | ic -> (
          let line = try input_line ic with End_of_file -> "" in
          match Unix.close_process_in ic with
          | Unix.WEXITED 0 when line <> "" -> line
          | _ -> "unknown")
      | exception Unix.Unix_error _ -> "unknown")

let append_history path ~artifacts ~kernel =
  (* total solver iterations across all iterative solvers, from the
     metrics registry (0 when OBS_METRICS is off) *)
  let solver_iterations =
    List.fold_left
      (fun acc (name, v) ->
        let suffix = ".iterations" in
        let n = String.length name and ns = String.length suffix in
        if
          n > ns + 7
          && String.sub name 0 7 = "solver."
          && String.sub name (n - ns) ns = suffix
        then acc + v
        else acc)
      0
      (Obs.Metrics.snapshot ()).Obs.Metrics.counters
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"rev\": \"%s\", \"unix_time\": %.0f, \"bench_points\": %d, \
        \"par_domains\": %d, \"artifacts\": ["
       (json_escape (git_rev ()))
       (Unix.gettimeofday ())
       (getenv_int "BENCH_POINTS" 15)
       (Numeric.Parallel.default_domains ()));
  List.iteri
    (fun i a ->
      Buffer.add_string buf
        (Printf.sprintf "%s{\"id\": \"%s\", \"seconds\": %.6f}"
           (if i = 0 then "" else ", ")
           (json_escape a.art_id) a.art_seconds))
    artifacts;
  Buffer.add_string buf "], \"kernel\": {";
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun (name, v) -> Printf.sprintf "\"%s\": %.6g" (json_escape name) v)
          kernel));
  Buffer.add_string buf
    (Printf.sprintf "}, \"solver_iterations\": %d}\n" solver_iterations);
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Format.printf "appended history entry to %s@." path

let () =
  Obs.init ();
  let artifacts =
    if skip "BENCH_SKIP_ARTIFACTS" then [] else print_artifacts ()
  in
  let kernel = kernel_counters () in
  let ablations =
    if skip "BENCH_SKIP_ABLATIONS" then [] else print_ablations ()
  in
  let micro = if skip "BENCH_SKIP_MICRO" then [] else run_micro () in
  (match Sys.getenv_opt "BENCH_HISTORY" with
  | Some path when path <> "" -> append_history path ~artifacts ~kernel
  | Some _ | None -> ());
  match Sys.getenv_opt "BENCH_JSON" with
  | Some path -> write_json path ~artifacts ~kernel ~ablations ~micro
  | None -> ()
