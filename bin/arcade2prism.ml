(* Translate an Arcade XML model to PRISM reactive modules — the paper's
   tool chain (Fig. 1) as a standalone tool. The output loads both in this
   repository's PRISM-subset interpreter and in the real PRISM tool. *)

open Cmdliner

let translate input output disaster =
  let model, measures =
    try Core.Xml_io.load input
    with
    | Core.Xml_io.Schema_error msg | Failure msg ->
        Printf.eprintf "%s: %s\n" input msg;
        exit 1
  in
  let initial =
    match disaster with
    | [] -> None
    | failed -> Some (Core.Semantics.disaster_state model ~failed)
  in
  let ast =
    try Core.To_prism.translate ?initial model
    with Core.To_prism.Untranslatable msg ->
      Printf.eprintf "cannot translate: %s\n" msg;
      exit 1
  in
  (* self-check the generated module system (ARC-P rules): a dead guard or
     an orphaned formula in the output is a translator regression *)
  List.iter
    (fun d -> prerr_endline (Lint.Diagnostic.to_string d))
    (Lint.Prism_rules.check ast);
  let text = Prism.Printer.model_to_string ast in
  let emit oc =
    output_string oc text;
    if measures <> [] then begin
      output_string oc "\n// measure specifications from the XML input:\n";
      List.iter
        (fun { Core.Xml_io.measure_name; query } ->
          Printf.fprintf oc "// %s: %s\n" measure_name query)
        measures
    end
  in
  match output with
  | None -> emit stdout
  | Some path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> emit oc)

let input_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"MODEL.xml" ~doc:"Arcade XML model")

let output_arg =
  let doc = "Write the PRISM model to $(docv) instead of standard output." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let disaster_arg =
  let doc =
    "Component that starts failed (repeatable). Builds the GOOD (given \
     occurrence of disaster) variant of the model used for survivability \
     analysis."
  in
  Arg.(value & opt_all string [] & info [ "d"; "disaster" ] ~docv:"COMPONENT" ~doc)

let cmd =
  let doc = "Translate Arcade XML models to PRISM reactive modules" in
  Cmd.v
    (Cmd.info "arcade2prism" ~version:"1.0.0" ~doc)
    Term.(const translate $ input_arg $ output_arg $ disaster_arg)

let () = exit (Cmd.eval cmd)
