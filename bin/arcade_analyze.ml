(* End-to-end analysis of an Arcade XML model: build the CTMC through the
   direct semantics and evaluate CSL/CSRL queries — either those embedded in
   the XML <measures> element or given on the command line. *)

open Cmdliner

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let run_lint input ~werror =
  let diags = Lint.lint_file input in
  List.iter (fun d -> print_endline (Lint.Diagnostic.to_string d)) diags;
  let errors = Lint.Diagnostic.count Lint.Diagnostic.Error diags in
  let warnings = Lint.Diagnostic.count Lint.Diagnostic.Warning diags in
  if errors > 0 || (werror && warnings > 0) then begin
    Printf.eprintf "%s: lint failed (%d error(s), %d warning(s)%s)\n" input
      errors warnings
      (if werror && errors = 0 then ", warnings are errors" else "");
    exit 1
  end

let analyze input queries disaster stats dot_prefix trace metrics lint werror =
  Obs.init ();
  (match trace with Some path -> Obs.Trace.set_output (Some path) | None -> ());
  if metrics then Obs.Metrics.set_enabled true;
  if lint || werror then run_lint input ~werror;
  let model, measures =
    try Core.Xml_io.load input
    with Core.Xml_io.Schema_error msg | Failure msg ->
      Printf.eprintf "%s: %s\n" input msg;
      exit 1
  in
  let initial =
    match disaster with
    | [] -> None
    | failed -> Some (Core.Semantics.disaster_state model ~failed)
  in
  let m = Core.Measures.analyze ?initial model in
  let built = Core.Measures.built m in
  (match dot_prefix with
  | None -> ()
  | Some prefix ->
      write_file (prefix ^ "_model.dot") (Core.Export.model_to_dot model);
      write_file (prefix ^ "_fault_tree.dot")
        (Core.Export.fault_tree_to_dot model.Core.Model.fault_tree);
      (try
         write_file (prefix ^ "_chain.dot") (Core.Export.chain_to_dot built);
         Format.printf "wrote %s_model.dot, %s_fault_tree.dot, %s_chain.dot@." prefix
           prefix prefix
       with Invalid_argument _ ->
         Format.printf
           "wrote %s_model.dot, %s_fault_tree.dot (chain too large for DOT)@." prefix
           prefix));
  if stats then
    Format.printf "%a@." Ctmc.Chain.pp_stats built.Core.Semantics.chain;
  let csl = Core.Measures.to_csl_model m in
  let failures = ref 0 in
  let run name query =
    match Csl.Checker.check_string csl query with
    | Csl.Checker.Value v -> Format.printf "%-30s %s = %.9f@." name query v
    | Csl.Checker.Satisfied b -> Format.printf "%-30s %s = %b@." name query b
    | exception (Csl.Checker.Unsupported msg | Failure msg) ->
        incr failures;
        Format.printf "%-30s %s : error (%s)@." name query msg
    | exception Csl.Parser.Syntax_error { line; column; message; _ } ->
        incr failures;
        Format.printf "%-30s %s : syntax error at %d:%d (%s)@." name query line
          column message
  in
  List.iter (fun { Core.Xml_io.measure_name; query } -> run measure_name query) measures;
  List.iteri (fun i q -> run (Printf.sprintf "query[%d]" i) q) queries;
  if measures = [] && queries = [] then begin
    Format.printf "no queries given; computing the default measure set:@.";
    run "availability" "S=? [ \"full_service\" ]";
    run "any-service availability" "S=? [ \"operational\" ]";
    run "unreliability(1000h)" "P=? [ true U<=1000 !\"full_service\" ]";
    run "steady-state cost" "R{\"cost\"}=? [ S ]"
  end;
  if metrics then
    Format.printf "%a@." Obs.Metrics.pp (Obs.Metrics.snapshot ());
  if !failures > 0 then begin
    Printf.eprintf "%d of the queries failed to evaluate\n" !failures;
    exit 1
  end

let input_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"MODEL.xml" ~doc:"Arcade XML model")

let query_arg =
  let doc = "CSL/CSRL query to evaluate (repeatable)." in
  Arg.(value & opt_all string [] & info [ "q"; "query" ] ~docv:"QUERY" ~doc)

let disaster_arg =
  let doc = "Component that starts failed (repeatable); builds the GOOD model." in
  Arg.(value & opt_all string [] & info [ "d"; "disaster" ] ~docv:"COMPONENT" ~doc)

let stats_arg =
  let doc = "Print state-space statistics before the results." in
  Arg.(value & flag & info [ "s"; "stats" ] ~doc)

let dot_arg =
  let doc =
    "Write Graphviz views to $(docv)_model.dot, $(docv)_fault_tree.dot and \
     (for small chains) $(docv)_chain.dot."
  in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"PREFIX" ~doc)

let trace_arg =
  let doc =
    "Write a Chrome trace-event JSON of the analysis to $(docv) (open in \
     Perfetto or chrome://tracing). Equivalent to OBS_TRACE=$(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Print the observability metrics snapshot (analysis cache, mixture, \
     lump and solver counters, recent solver convergences) after the \
     results. OBS_METRICS=1 prints it to stderr at exit instead; \
     OBS_METRICS=$(i,FILE) writes it as JSON."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let lint_arg =
  let doc =
    "Run the static analyzer (Arcade.Lint) on the model before building \
     the state space; exit 1 on error-level findings."
  in
  Arg.(value & flag & info [ "lint" ] ~doc)

let werror_arg =
  let doc = "With $(b,--lint) (implied): treat lint warnings as errors." in
  Arg.(value & flag & info [ "werror" ] ~doc)

let cmd =
  let doc = "Model-check CSL/CSRL measures on Arcade XML models" in
  Cmd.v
    (Cmd.info "arcade_analyze" ~version:"1.0.0" ~doc)
    Term.(
      const analyze $ input_arg $ query_arg $ disaster_arg $ stats_arg
      $ dot_arg $ trace_arg $ metrics_arg $ lint_arg $ werror_arg)

let () = exit (Cmd.eval cmd)
