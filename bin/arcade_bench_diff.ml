(* Perf-regression oracle: compare two bench entries (BENCH_HISTORY
   JSONL lines or BENCH_JSON files) and fail past a wall-time threshold.

   Usage:
     arcade_bench_diff HISTORY.jsonl            compare its last two entries
     arcade_bench_diff BASELINE CURRENT         compare two entries/files

   A file holding several JSONL lines contributes its *last* entry (the
   most recent run); a plain JSON object (a BENCH_JSON dump or a
   baseline committed to the repo) contributes itself. Compared series:
   per-artifact wall seconds, the kernel's batched/unbatched sweep
   seconds, and total solver iterations (informational). Exit status: 0
   within threshold, 1 on regression, 2 on usage or parse errors. *)

open Cmdliner
module Json = Server.Json

let fail fmt = Printf.ksprintf (fun msg -> raise (Failure msg)) fmt

(* ------------------------------------------------------------------ *)
(* Entry loading                                                      *)

let read_file path =
  let ic = try open_in_bin path with Sys_error msg -> fail "%s" msg in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* all JSON objects in the file, in order: one for a plain JSON file,
   one per non-blank line for JSONL *)
let entries_of_file path =
  let text = read_file path in
  match Json.parse (String.trim text) with
  | entry -> [ entry ]
  | exception Json.Parse_error _ ->
      let lines =
        List.filter
          (fun l -> String.trim l <> "")
          (String.split_on_char '\n' text)
      in
      let parsed =
        List.map
          (fun l ->
            try Json.parse l
            with Json.Parse_error msg ->
              fail "%s: bad JSONL line: %s" path msg)
          lines
      in
      if parsed = [] then fail "%s: no entries" path else parsed

let last xs = List.nth xs (List.length xs - 1)

let num_field key json =
  match Json.member key json with Some (Json.Num x) -> Some x | _ -> None

let rev_of entry =
  Option.value (Json.string_field "rev" entry) ~default:"?"

(* [(label, seconds)] series of one entry: artifacts + kernel sweeps *)
let series_of entry =
  let artifacts =
    match Json.list_field "artifacts" entry with
    | Some items ->
        List.filter_map
          (fun item ->
            match (Json.string_field "id" item, num_field "seconds" item) with
            | Some id, Some s -> Some ("artifact/" ^ id, s)
            | _ -> None)
          items
    | None -> []
  in
  let kernel =
    match Json.member "kernel" entry with
    | Some k ->
        List.filter_map
          (fun key ->
            Option.map (fun s -> ("kernel/" ^ key, s)) (num_field key k))
          [ "batched_seconds"; "unbatched_seconds" ]
    | None -> []
  in
  artifacts @ kernel

(* ------------------------------------------------------------------ *)

let diff threshold min_seconds baseline current =
  try
    let base_entry, cur_entry, base_label, cur_label =
      match current with
      | Some cur ->
          ( last (entries_of_file baseline),
            last (entries_of_file cur),
            baseline,
            cur )
      | None -> (
          match entries_of_file baseline with
          | ([] | [ _ ]) ->
              fail "%s: need at least two entries to compare" baseline
          | entries ->
              let n = List.length entries in
              ( List.nth entries (n - 2),
                last entries,
                Printf.sprintf "%s#%d" baseline (n - 1),
                Printf.sprintf "%s#%d" baseline n ))
    in
    Printf.printf "baseline %s (rev %s)\ncurrent  %s (rev %s)\n" base_label
      (rev_of base_entry) cur_label (rev_of cur_entry);
    let base = series_of base_entry and cur = series_of cur_entry in
    if base = [] then fail "%s: no comparable series" base_label;
    let regressions = ref 0 and compared = ref 0 in
    List.iter
      (fun (label, b) ->
        match List.assoc_opt label cur with
        | None -> Printf.printf "  %-42s %9.4fs -> (absent)\n" label b
        | Some c ->
            incr compared;
            let ratio = if b > 0. then c /. b else 1. in
            let verdict =
              (* sub-noise-floor series are reported but never gated: a
                 few-ms artifact can triple on a loaded runner without
                 meaning anything *)
              if b < min_seconds && c < min_seconds then "negligible"
              else if ratio > 1. +. threshold then begin
                incr regressions;
                "REGRESSION"
              end
              else if ratio < 1. -. threshold then "improved"
              else "ok"
            in
            Printf.printf "  %-42s %9.4fs -> %9.4fs  %+6.1f%%  %s\n" label b c
              ((ratio -. 1.) *. 100.)
              verdict)
      base;
    (match
       (num_field "solver_iterations" base_entry,
        num_field "solver_iterations" cur_entry)
     with
    | Some b, Some c when b > 0. || c > 0. ->
        Printf.printf "  %-42s %9.0f  -> %9.0f   (informational)\n"
          "solver_iterations" b c
    | _ -> ());
    if !compared = 0 then fail "no common series between the two entries";
    if !regressions > 0 then begin
      Printf.printf "%d of %d series regressed past %+.0f%%\n" !regressions
        !compared (threshold *. 100.);
      1
    end
    else begin
      Printf.printf "all %d series within %+.0f%%\n" !compared
        (threshold *. 100.);
      0
    end
  with Failure msg ->
    Printf.eprintf "arcade_bench_diff: %s\n" msg;
    2

let threshold =
  Arg.(
    value
    & opt float 0.25
    & info [ "t"; "threshold" ] ~docv:"FRAC"
        ~doc:
          "Relative wall-time regression tolerance (0.25 = fail when a \
           series got more than 25% slower).")

let min_seconds =
  Arg.(
    value
    & opt float 0.05
    & info [ "min-seconds" ] ~docv:"SECS"
        ~doc:
          "Noise floor: series where both sides are below this are shown \
           but never count as regressions.")

let baseline =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"BASELINE"
        ~doc:
          "Baseline entry: a BENCH_HISTORY JSONL (last entry wins; with no \
           CURRENT, its last two entries are compared) or a BENCH_JSON file.")

let current =
  Arg.(
    value
    & pos 1 (some file) None
    & info [] ~docv:"CURRENT" ~doc:"Current entry (same formats).")

let cmd =
  let doc = "compare two bench runs and fail on wall-time regressions" in
  Cmd.v
    (Cmd.info "arcade_bench_diff" ~doc)
    Term.(const diff $ threshold $ min_seconds $ baseline $ current)

let () = exit (Cmd.eval' cmd)
