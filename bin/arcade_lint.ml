(* Static analysis of Arcade XML models without building the state space:
   model-layer, chain-layer and query-layer rules from Arcade.Lint, with
   stable ARC-* rule codes for CI use. Exit status: 0 clean, 1 findings at
   error level (or warning level under --werror), 2 usage errors. *)

open Cmdliner

module D = Lint.Diagnostic

let print_rules () =
  List.iter
    (fun (r : D.rule) ->
      Printf.printf "%-9s %-7s %-6s %s\n    %s\n" r.D.rule_code
        (D.severity_to_string r.D.rule_severity)
        r.D.rule_layer r.D.rule_title r.D.rule_rationale)
    Lint.catalogue

let extra_query_diags file queries =
  if queries = [] then []
  else
    match Core.Xml_io.load file with
    | model, _ ->
        let ctx = Lint.Query_rules.context_of_model model in
        List.concat
          (List.mapi
             (fun i q ->
               Lint.Query_rules.check_string ctx
                 ~subject:(Printf.sprintf "query[%d]" i)
                 q
               |> List.map (D.with_file file))
             queries)
    | exception _ ->
        (* the model itself is broken; lint_file already reported it *)
        []

let prism_diags file =
  match Core.Xml_io.load file with
  | model, _ -> (
      match Core.To_prism.translate model with
      | prism -> List.map (D.with_file file) (Lint.Prism_rules.check prism)
      | exception Core.To_prism.Untranslatable msg ->
          [
            D.with_file file
              (D.make ~code:"ARC-P001" ~severity:D.Info ~subject:"model"
                 "not translatable to PRISM: %s" msg);
          ])
  | exception _ -> []

let run files werror prism queries rules quiet =
  Obs.init ();
  if rules then begin
    print_rules ();
    exit 0
  end;
  if files = [] then begin
    prerr_endline "arcade_lint: no model files given (see --help)";
    exit 2
  end;
  let total_errors = ref 0 and total_warnings = ref 0 in
  List.iter
    (fun file ->
      let diags =
        Lint.lint_file file
        @ extra_query_diags file queries
        @ (if prism then prism_diags file else [])
      in
      let diags = D.sort diags in
      List.iter (fun d -> print_endline (D.to_string d)) diags;
      total_errors := !total_errors + D.count D.Error diags;
      total_warnings := !total_warnings + D.count D.Warning diags)
    files;
  let failed = !total_errors > 0 || (werror && !total_warnings > 0) in
  if not quiet then
    Printf.printf "%d file(s): %d error(s), %d warning(s)%s\n"
      (List.length files) !total_errors !total_warnings
      (if failed then "" else " -- clean");
  exit (if failed then 1 else 0)

let files_arg =
  Arg.(value & pos_all file [] & info [] ~docv:"MODEL.xml" ~doc:"Arcade XML models")

let werror_arg =
  let doc = "Treat warnings as errors (info-level findings never fail)." in
  Arg.(value & flag & info [ "werror" ] ~doc)

let prism_arg =
  let doc =
    "Also translate each model with the PRISM exporter and run the ARC-P \
     rules over the generated module system."
  in
  Arg.(value & flag & info [ "prism" ] ~doc)

let query_arg =
  let doc = "Extra CSL/CSRL query to lint against each model (repeatable)." in
  Arg.(value & opt_all string [] & info [ "q"; "query" ] ~docv:"QUERY" ~doc)

let rules_arg =
  let doc = "Print the rule catalogue and exit." in
  Arg.(value & flag & info [ "rules" ] ~doc)

let quiet_arg =
  let doc = "Suppress the summary line (diagnostics are still printed)." in
  Arg.(value & flag & info [ "quiet" ] ~doc)

let cmd =
  let doc = "Statically analyze Arcade XML models, chains and CSL queries" in
  Cmd.v
    (Cmd.info "arcade_lint" ~version:"1.0.0" ~doc)
    Term.(
      const run $ files_arg $ werror_arg $ prism_arg $ query_arg $ rules_arg
      $ quiet_arg)

let () = exit (Cmd.eval cmd)
