(* Load generator for the analysis daemon: replay a portfolio of model
   variants x the paper's measure queries against arcade_serve and report
   throughput, latency percentiles and amortization (session cache hits,
   uniformization sweeps vs the one-query-per-request baseline). *)

open Cmdliner
module Json = Server.Json
module Http = Server.Http

(* The measure suite of the paper's evaluation, per request: two
   steady-state queries, one time-bounded until, both reward operators.
   Evaluated one query at a time these cost 3 uniformization sweeps per
   request (the S queries are steady-state solves); the daemon's batching
   answers them in at most 2 sweeps per same-model group. *)
let queries =
  [
    "S=? [ \"full_service\" ]";
    "S=? [ \"operational\" ]";
    "P=? [ true U<=1000 !\"full_service\" ]";
    "R{\"cost\"}=? [ C<=1000 ]";
    "R{\"cost\"}=? [ I=1000 ]";
  ]

let naive_sweeps_per_request = 3

(* ------------------------------------------------------------------ *)
(* Portfolio: variant i scales every mttf by (1 + 0.05 i), giving
   distinct state spaces that hash to distinct sessions               *)

let scale_mttf factor xml =
  let rec go = function
    | Xml_kit.Element (name, attrs, children) ->
        let attrs =
          List.map
            (fun (k, v) ->
              if k = "mttf" then
                match float_of_string_opt v with
                | Some x -> (k, Printf.sprintf "%g" (x *. factor))
                | None -> (k, v)
              else (k, v))
            attrs
        in
        Xml_kit.Element (name, attrs, List.map go children)
    | Xml_kit.Text _ as t -> t
  in
  go xml

let portfolio_of_file file ~variants =
  let xml = Xml_kit.parse_file file in
  Array.init variants (fun i ->
      Xml_kit.to_string (scale_mttf (1.0 +. (0.05 *. float_of_int i)) xml))

(* ------------------------------------------------------------------ *)
(* Wire helpers                                                       *)

let num_field key json =
  match Json.member key json with Some (Json.Num x) -> Some x | _ -> None

let analyze_body ~model ~lump =
  Json.to_string
    (Json.Obj
       [
         ("model", Json.Str model);
         ("queries", Json.List (List.map (fun q -> Json.Str q) queries));
         ("lump", Json.Bool lump);
       ])

let wait_ready ~host ~port =
  let rec go attempts =
    match Http.request ~host ~port ~meth:"GET" ~path:"/health" () with
    | 200, _ -> ()
    | _ -> retry attempts
    | exception (Unix.Unix_error _ | End_of_file | Http.Bad_request _) ->
        retry attempts
  and retry attempts =
    if attempts <= 0 then failwith "server did not become ready"
    else begin
      Thread.delay 0.1;
      go (attempts - 1)
    end
  in
  go 100

let fetch_stats ~host ~port =
  match Http.request ~host ~port ~meth:"GET" ~path:"/stats" () with
  | 200, body -> Json.parse body
  | status, _ -> failwith (Printf.sprintf "/stats answered %d" status)

let fetch_metrics ~host ~port =
  match Http.request ~host ~port ~meth:"GET" ~path:"/metrics" () with
  | 200, body -> ( try Some (Json.parse body) with Json.Parse_error _ -> None)
  | _ -> None
  | exception (Unix.Unix_error _ | End_of_file | Http.Bad_request _) -> None

let stat path stats =
  let rec go json = function
    | [] -> num_field "" json
    | [ key ] -> num_field key json
    | key :: rest -> (
        match Json.member key json with Some j -> go j rest | None -> None)
  in
  Option.value (go stats path) ~default:0.

(* ------------------------------------------------------------------ *)
(* Worker threads                                                     *)

type tally = {
  mutable latencies_ms : float list;
  mutable ok : int;
  mutable errors : int;
  mutable hits : int;
  mutable misses : int;
  mutable coalesced : int;
  mutable slowest_ms : float;
  mutable slowest_trace : string;
      (** trace id of the slowest request — join it against the server's
          trace / access log / flight dump *)
  mutable error_traces : string list;  (** most recent first, bounded *)
}

let new_tally () =
  {
    latencies_ms = [];
    ok = 0;
    errors = 0;
    hits = 0;
    misses = 0;
    coalesced = 0;
    slowest_ms = -1.;
    slowest_trace = "";
    error_traces = [];
  }

let max_error_traces = 8

let worker ~host ~port ~bodies ~next ~total tally =
  let client = ref None in
  let get_client () =
    match !client with
    | Some cl -> cl
    | None ->
        let cl = Http.connect ~host ~port in
        client := Some cl;
        cl
  in
  let drop_client () =
    Option.iter Http.close !client;
    client := None
  in
  let rec loop () =
    let i = Atomic.fetch_and_add next 1 in
    if i < total then begin
      let body = bodies.(i mod Array.length bodies) in
      (* every request carries its own W3C trace identity, so a slow or
         failed request here can be looked up in the server's trace *)
      let ctx = Obs.Trace.new_context () in
      let headers = [ ("traceparent", Obs.Trace.format_traceparent ctx) ] in
      let record_error () =
        tally.errors <- tally.errors + 1;
        if List.length tally.error_traces < max_error_traces then
          tally.error_traces <- ctx.Obs.Trace.trace_id :: tally.error_traces
      in
      let t0 = Obs.monotonic_ns () in
      (match
         Http.call (get_client ()) ~headers ~meth:"POST" ~path:"/analyze" ~body
           ()
       with
      | 200, resp ->
          let dt =
            Int64.to_float (Int64.sub (Obs.monotonic_ns ()) t0) /. 1e6
          in
          tally.latencies_ms <- dt :: tally.latencies_ms;
          tally.ok <- tally.ok + 1;
          if dt > tally.slowest_ms then begin
            tally.slowest_ms <- dt;
            tally.slowest_trace <- ctx.Obs.Trace.trace_id
          end;
          (match Json.string_field "session" (Json.parse resp) with
          | Some "hit" -> tally.hits <- tally.hits + 1
          | Some "miss" -> tally.misses <- tally.misses + 1
          | Some "coalesced" -> tally.coalesced <- tally.coalesced + 1
          | _ -> ()
          | exception Json.Parse_error _ -> ())
      | _, _ -> record_error ()
      | exception (Unix.Unix_error _ | End_of_file | Http.Bad_request _) ->
          record_error ();
          drop_client ());
      loop ()
    end
  in
  loop ();
  drop_client ()

(* The client-side view of latency, in the exact histogram schema the
   server's /metrics JSON uses ({bounds; counts; total; sum} on the
   latency grid) — comparing the two sides of the same run is then a
   field-by-field diff. *)
let client_histogram latencies =
  let bounds = Obs.Metrics.latency_ms_buckets in
  let counts = Array.make (Array.length bounds + 1) 0 in
  let sum = ref 0. in
  Array.iter
    (fun x ->
      sum := !sum +. x;
      let rec slot i =
        if i >= Array.length bounds || x <= bounds.(i) then i else slot (i + 1)
      in
      let i = slot 0 in
      counts.(i) <- counts.(i) + 1)
    latencies;
  Json.Obj
    [
      ( "bounds",
        Json.List (Array.to_list (Array.map (fun b -> Json.num b) bounds)) );
      ( "counts",
        Json.List
          (Array.to_list (Array.map (fun c -> Json.num (float_of_int c)) counts))
      );
      ("total", Json.num (float_of_int (Array.length latencies)));
      ("sum", Json.num !sum);
    ]

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (ceil (p /. 100. *. float_of_int n)) - 1))

(* ------------------------------------------------------------------ *)

let load host port model variants requests clients lump out shutdown =
  Obs.init ();
  let dft = Server.default_config () in
  let host = Option.value host ~default:dft.Server.host in
  let port = Option.value port ~default:dft.Server.port in
  let bodies =
    Array.map
      (fun src -> analyze_body ~model:src ~lump)
      (portfolio_of_file model ~variants)
  in
  wait_ready ~host ~port;
  let before = fetch_stats ~host ~port in
  let next = Atomic.make 0 in
  let tallies = Array.init clients (fun _ -> new_tally ()) in
  let t0 = Obs.monotonic_ns () in
  let threads =
    Array.map
      (fun tally ->
        Thread.create
          (fun () -> worker ~host ~port ~bodies ~next ~total:requests tally)
          ())
      tallies
  in
  Array.iter Thread.join threads;
  let seconds = Int64.to_float (Int64.sub (Obs.monotonic_ns ()) t0) /. 1e9 in
  let after = fetch_stats ~host ~port in
  (* the server's end-of-run metrics snapshot rides along in the report,
     so one file holds both sides of the run *)
  let server_metrics = fetch_metrics ~host ~port in
  let sum f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
  let ok = sum (fun t -> t.ok)
  and errors = sum (fun t -> t.errors)
  and hits = sum (fun t -> t.hits)
  and misses = sum (fun t -> t.misses)
  and coalesced = sum (fun t -> t.coalesced) in
  let latencies =
    Array.of_list (Array.fold_left (fun acc t -> t.latencies_ms @ acc) [] tallies)
  in
  Array.sort compare latencies;
  let mean =
    if latencies = [||] then 0.
    else Array.fold_left ( +. ) 0. latencies /. float_of_int (Array.length latencies)
  in
  let delta path = stat path after -. stat path before in
  let mixture_passes = delta [ "analysis"; "mixture_passes" ] in
  let naive_passes = float_of_int (naive_sweeps_per_request * ok) in
  let shits = delta [ "sessions"; "hits" ]
  and smisses = delta [ "sessions"; "misses" ] in
  let hit_rate =
    if shits +. smisses = 0. then 0. else shits /. (shits +. smisses)
  in
  let slowest =
    Array.fold_left
      (fun acc t ->
        match acc with
        | Some (ms, _) when ms >= t.slowest_ms -> acc
        | _ when t.slowest_ms < 0. -> acc
        | _ -> Some (t.slowest_ms, t.slowest_trace))
      None tallies
  in
  let error_traces =
    Array.fold_left (fun acc t -> t.error_traces @ acc) [] tallies
  in
  let report =
    Json.Obj
      [
        ( "portfolio",
          Json.Obj
            [
              ("model", Json.Str model);
              ("variants", Json.num (float_of_int variants));
              ( "queries_per_request",
                Json.num (float_of_int (List.length queries)) );
            ] );
        ("requests", Json.num (float_of_int requests));
        ("clients", Json.num (float_of_int clients));
        ("seconds", Json.num seconds);
        ( "throughput_qps",
          Json.num
            (if seconds > 0. then
               float_of_int (ok * List.length queries) /. seconds
             else 0.) );
        ( "latency_ms",
          Json.Obj
            [
              ("mean", Json.num mean);
              ("p50", Json.num (percentile latencies 50.));
              ("p90", Json.num (percentile latencies 90.));
              ("p95", Json.num (percentile latencies 95.));
              ("p99", Json.num (percentile latencies 99.));
              ( "max",
                Json.num
                  (if latencies = [||] then 0.
                   else latencies.(Array.length latencies - 1)) );
            ] );
        ("latency_histogram_ms", client_histogram latencies);
        ( "traces",
          Json.Obj
            (List.concat
               [
                 (match slowest with
                 | Some (ms, id) ->
                     [
                       ("slowest_trace_id", Json.Str id);
                       ("slowest_ms", Json.num ms);
                     ]
                 | None -> []);
                 [
                   ( "errors",
                     Json.List
                       (List.map (fun id -> Json.Str id) error_traces) );
                 ];
               ]) );
        ("ok", Json.num (float_of_int ok));
        ("errors", Json.num (float_of_int errors));
        ( "responses",
          Json.Obj
            [
              ("hit", Json.num (float_of_int hits));
              ("miss", Json.num (float_of_int misses));
              ("coalesced", Json.num (float_of_int coalesced));
            ] );
        ( "amortization",
          Json.Obj
            [
              ("session_hit_rate", Json.num hit_rate);
              ("mixture_passes", Json.num mixture_passes);
              ("naive_mixture_passes", Json.num naive_passes);
            ] );
        ("server", after);
        ( "server_metrics",
          Option.value server_metrics ~default:(Json.Obj []) );
      ]
  in
  Printf.printf
    "%d ok, %d errors in %.2fs: %.1f queries/s; p50 %.2fms p95 %.2fms p99 %.2fms\n"
    ok errors seconds
    (if seconds > 0. then float_of_int (ok * List.length queries) /. seconds
     else 0.)
    (percentile latencies 50.) (percentile latencies 95.)
    (percentile latencies 99.);
  Printf.printf
    "sessions: %.0f%% hit rate (%g hits / %g misses); sweeps: %g vs %g naive\n%!"
    (100. *. hit_rate) shits smisses mixture_passes naive_passes;
  (match out with
  | Some path ->
      Obs.write_file_atomic path (Json.to_string report);
      Printf.printf "wrote report to %s\n%!" path
  | None -> ());
  if shutdown then
    ignore (Http.request ~host ~port ~meth:"POST" ~path:"/shutdown" ());
  if errors > 0 then exit 1

let host =
  Arg.(value & opt (some string) None & info [ "host" ] ~docv:"ADDR"
         ~doc:"Server address (default \\$(b,SERVER_HOST) or 127.0.0.1).")

let port =
  Arg.(value & opt (some int) None & info [ "p"; "port" ] ~docv:"PORT"
         ~doc:"Server port (default \\$(b,SERVER_PORT) or 8641).")

let model =
  Arg.(value & opt file "models/line1_ded.xml" & info [ "model" ] ~docv:"FILE"
         ~doc:"Base Arcade XML model for the portfolio.")

let variants =
  Arg.(value & opt int 8 & info [ "variants" ] ~docv:"N"
         ~doc:"Portfolio size: distinct mttf-scaled model variants.")

let requests =
  Arg.(value & opt int 200 & info [ "n"; "requests" ] ~docv:"N"
         ~doc:"Total /analyze requests across all clients.")

let clients =
  Arg.(value & opt int 4 & info [ "c"; "clients" ] ~docv:"N"
         ~doc:"Concurrent client connections.")

let lump =
  Arg.(value & flag & info [ "lump" ]
         ~doc:"Request lumping-quotient evaluation.")

let out =
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE"
         ~doc:"Write the JSON report here (atomically).")

let shutdown =
  Arg.(value & flag & info [ "shutdown" ]
         ~doc:"POST /shutdown to the server when done.")

let cmd =
  let doc = "load generator for the Arcade analysis daemon" in
  Cmd.v
    (Cmd.info "arcade_load" ~doc)
    Term.(
      const load $ host $ port $ model $ variants $ requests $ clients $ lump
      $ out $ shutdown)

let () = exit (Cmd.eval cmd)
