(* The Arcade analysis daemon: serve XML models + CSL/CSRL queries over
   HTTP with a model-hash session cache and same-model query batching. *)

open Cmdliner

let serve host port domains window_ms max_sessions lump =
  Obs.init ();
  (* daemon-appropriate tracing defaults: bounded buffers (unless the
     operator chose a bound — or unbounded retention — explicitly) and
     incremental flushing, so a long OBS_TRACE run cannot grow the heap
     without limit; kill -USR1 dumps the flight ring *)
  if Sys.getenv_opt "OBS_TRACE" <> None
     && Sys.getenv_opt "OBS_TRACE_BUFFER" = None
  then Obs.Trace.set_buffer_capacity (Some 65536);
  Obs.Trace.set_incremental true;
  Obs.Flight.arm_sigusr1 ();
  let dft = Server.default_config () in
  let config =
    {
      Server.host = Option.value host ~default:dft.Server.host;
      port = Option.value port ~default:dft.Server.port;
      domains = Option.value domains ~default:dft.Server.domains;
      batch_window_ms = Option.value window_ms ~default:dft.Server.batch_window_ms;
      max_sessions = Option.value max_sessions ~default:dft.Server.max_sessions;
      lump = lump || dft.Server.lump;
    }
  in
  let srv = Server.start ~config () in
  Printf.printf "arcade_serve: listening on %s:%d (%d domains, %dms window, %d sessions)\n%!"
    config.Server.host (Server.port srv) config.Server.domains
    config.Server.batch_window_ms config.Server.max_sessions;
  Server.wait srv;
  Printf.printf "arcade_serve: stopped\n%!"

let host =
  Arg.(value & opt (some string) None & info [ "host" ] ~docv:"ADDR"
         ~doc:"Bind address (default \\$(b,SERVER_HOST) or 127.0.0.1).")

let port =
  Arg.(value & opt (some int) None & info [ "p"; "port" ] ~docv:"PORT"
         ~doc:"Listen port; 0 picks an ephemeral one (default \\$(b,SERVER_PORT) or 8641).")

let domains =
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N"
         ~doc:"Worker-pool size for distinct-model fan-out.")

let window_ms =
  Arg.(value & opt (some int) None & info [ "batch-window-ms" ] ~docv:"MS"
         ~doc:"Batching window: how long same-model requests may pile up.")

let max_sessions =
  Arg.(value & opt (some int) None & info [ "max-sessions" ] ~docv:"N"
         ~doc:"LRU capacity of the model-hash session cache.")

let lump =
  Arg.(value & flag & info [ "lump" ]
         ~doc:"Default requests to lumping-quotient evaluation.")

let cmd =
  let doc = "persistent Arcade analysis daemon (HTTP + JSON)" in
  let man =
    [
      `S Manpage.s_description;
      `P "Serve Arcade XML models and CSL/CSRL queries from long-lived \
          analysis sessions: models are keyed by content hash, so repeated \
          requests share uniformized matrices, Fox-Glynn weights, absorbed \
          chains and steady-state vectors; same-model queries arriving \
          within the batch window coalesce into single blocked sweeps.";
      `P "Endpoints: POST /analyze, GET /health, GET /stats, GET /metrics, \
          POST /shutdown.";
    ]
  in
  Cmd.v
    (Cmd.info "arcade_serve" ~doc ~man)
    Term.(const serve $ host $ port $ domains $ window_ms $ max_sessions $ lump)

let () = exit (Cmd.eval cmd)
