(* Command-line front-end for the water-treatment reproduction: regenerate
   any table or figure of the paper, as plain text or CSV. *)

open Cmdliner

let all_ids = Watertreatment.Experiments.ids @ Watertreatment.Ablations.ids

let lookup id : (?points:int -> unit -> Watertreatment.Experiments.artifact) option =
  match Watertreatment.Experiments.by_id id with
  | Some gen -> Some gen
  | None -> (
      match Watertreatment.Ablations.by_id id with
      | Some gen -> Some (fun ?points () -> ignore points; gen ())
      | None -> None)

let run_experiments ids points csv output trace metrics =
  Obs.init ();
  (match trace with Some path -> Obs.Trace.set_output (Some path) | None -> ());
  if metrics then Obs.Metrics.set_enabled true;
  let selected =
    match ids with
    | [] ->
        List.map (fun id -> (id, Option.get (lookup id))) Watertreatment.Experiments.ids
    | [ "all" ] -> List.map (fun id -> (id, Option.get (lookup id))) all_ids
    | [ "ablations" ] ->
        List.map (fun id -> (id, Option.get (lookup id))) Watertreatment.Ablations.ids
    | ids ->
        List.map
          (fun id ->
            match lookup id with
            | Some gen -> (id, gen)
            | None ->
                Printf.eprintf "unknown experiment %S; available: %s\n" id
                  (String.concat ", " all_ids);
                exit 2)
          ids
  in
  let out, close =
    match output with
    | None -> (Format.std_formatter, fun () -> ())
    | Some path ->
        let oc = open_out path in
        (Format.formatter_of_out_channel oc, fun () -> close_out oc)
  in
  List.iter
    (fun (id, gen) ->
      let artifact = gen ?points:(Some points) () in
      (match (artifact, csv) with
      | Watertreatment.Experiments.Figure f, true ->
          Format.fprintf out "%s@." (Watertreatment.Experiments.figure_to_csv f)
      | _, _ -> Watertreatment.Experiments.render_artifact out artifact);
      Format.fprintf out "@.";
      ignore id)
    selected;
  Format.pp_print_flush out ();
  close ();
  if metrics then
    Format.printf "%a@." Obs.Metrics.pp (Obs.Metrics.snapshot ())

let ids_arg =
  let doc =
    "Experiments to run (e.g. table1 fig4 lumping importance_line1), or the \
     keywords 'all' / 'ablations'. Default: the paper's artifacts table1, \
     table2, fig3..fig11."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let points_arg =
  let doc = "Number of time samples per curve." in
  Arg.(value & opt int 25 & info [ "points"; "n" ] ~docv:"N" ~doc)

let csv_arg =
  let doc = "Emit figures as CSV instead of gnuplot-style blocks." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let output_arg =
  let doc = "Write to $(docv) instead of standard output." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc =
    "Write a Chrome trace-event JSON of the run to $(docv): one span per \
     artifact, nested spans per strategy/series and solver phase (open in \
     Perfetto or chrome://tracing). Equivalent to OBS_TRACE=$(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Print the observability metrics snapshot (analysis cache, mixture, \
     lump and solver counters, recent solver convergences) after the \
     artifacts. OBS_METRICS=1 prints it to stderr at exit instead; \
     OBS_METRICS=$(i,FILE) writes it as JSON."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let cmd =
  let doc = "Reproduce the tables and figures of the Arcade water-treatment paper" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Regenerates the evaluation artifacts of 'Evaluating Repair Strategies \
         for a Water-Treatment Facility using Arcade' (DSN 2010): state-space \
         sizes (table1), steady-state availability (table2), reliability \
         (fig3), survivability after disasters (fig4, fig5, fig8, fig9) and \
         instantaneous/accumulated repair cost (fig6, fig7, fig10, fig11).";
    ]
  in
  Cmd.v
    (Cmd.info "wtf_experiments" ~version:"1.0.0" ~doc ~man)
    Term.(
      const run_experiments $ ids_arg $ points_arg $ csv_arg $ output_arg
      $ trace_arg $ metrics_arg)

let () = exit (Cmd.eval cmd)
