(* Component importance: where should the water company spend its
   maintenance budget?

   Computes the classical importance indices (Birnbaum, improvement
   potential, risk achievement worth, Fussell-Vesely) for both lines of the
   water-treatment facility, plus the expected time to first degradation
   and to total service loss.

   Run with: dune exec examples/importance_analysis.exe *)

open Watertreatment

let () =
  List.iter
    (fun line ->
      Format.printf "=== %s (dedicated repair) ===@." (Facility.line_name line);
      let m = Facility.analyze line Facility.ded in
      Format.printf "availability:                 %.7f@." (Core.Measures.availability m);
      Format.printf "mean time to degradation:     %.1f h@."
        (Core.Measures.mean_time_to_degradation m);
      Format.printf "mean time to total loss:      %.1f h@.@."
        (Core.Measures.mean_time_to_service_loss m);
      Core.Importance.pp_table Format.std_formatter
        (Core.Importance.analyze ~analysis:(Core.Measures.analysis m) (Core.Measures.built m));
      Format.printf "@.")
    [ Facility.Line1; Facility.Line2 ];
  Format.printf
    "Reading: the reservoir dominates Birnbaum importance on both lines (a@.\
     single point of failure whose outage kills all service), while the@.\
     sand filters dominate Fussell-Vesely on Line 2: their poor MTTR/MTTF@.\
     ratio makes them the most frequent contributors to downtime. The@.\
     softening tanks barely matter - triple redundancy plus a fast repair.@."
