type t = {
  component : string;
  unavailability : float;
  birnbaum : float;
  improvement_potential : float;
  risk_achievement_worth : float;
  fussell_vesely : float;
}

(* Exact system unavailability under independence: sum over all assignments
   of basic events, weighting each by its probability. Exponential in the
   number of basics, fine for architectural models (<= ~20 components). *)
let system_unavailability model ~q =
  let tree = model.Model.fault_tree in
  let basics = Array.of_list (Fault_tree.basics tree) in
  let n = Array.length basics in
  if n > 24 then invalid_arg "Importance: too many basic events for enumeration";
  let probs = Array.map q basics in
  Array.iteri
    (fun i p ->
      if p < 0. || p > 1. then
        invalid_arg
          (Printf.sprintf "Importance: unavailability of %s out of [0,1]" basics.(i)))
    probs;
  let index = Hashtbl.create n in
  Array.iteri (fun i name -> Hashtbl.replace index name i) basics;
  let total = ref 0. in
  for mask = 0 to (1 lsl n) - 1 do
    let weight = ref 1. in
    for i = 0 to n - 1 do
      let failed = mask land (1 lsl i) <> 0 in
      weight := !weight *. (if failed then probs.(i) else 1. -. probs.(i))
    done;
    if !weight > 0. then begin
      let truth name = mask land (1 lsl Hashtbl.find index name) <> 0 in
      if Fault_tree.eval tree truth then total := !total +. !weight
    end
  done;
  !total

let marginal_unavailabilities ?analysis built =
  let chain = built.Semantics.chain in
  let pi = Ctmc.Steady_state.solve ?analysis chain in
  let basics =
    Fault_tree.basics built.Semantics.model.Model.fault_tree
  in
  List.map
    (fun literal ->
      let pred = Semantics.literal_pred built literal in
      let acc = ref 0. in
      Array.iteri (fun s mass -> if pred s then acc := !acc +. mass) pi;
      (literal, !acc))
    basics

let of_unavailabilities model ~q =
  let lookup name =
    match List.assoc_opt name q with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Importance: no unavailability for %s" name)
  in
  let baseline = system_unavailability model ~q:lookup in
  let forced name value other = if other = name then value else lookup other in
  List.filter_map
    (fun (name, qi) ->
      if not (List.mem name (Fault_tree.basics model.Model.fault_tree)) then None
      else begin
        let down_if_failed = system_unavailability model ~q:(forced name 1.) in
        let down_if_perfect = system_unavailability model ~q:(forced name 0.) in
        let birnbaum = down_if_failed -. down_if_perfect in
        Some
          {
            component = name;
            unavailability = qi;
            birnbaum;
            improvement_potential = baseline -. down_if_perfect;
            risk_achievement_worth =
              (if baseline > 0. then down_if_failed /. baseline else infinity);
            fussell_vesely =
              (* P(system down and some cut set through i is down) /
                 P(system down); under coherence this equals
                 1 - P(down | i perfect)/P(down) *)
              (if baseline > 0. then 1. -. (down_if_perfect /. baseline) else 0.);
          }
      end)
    q

let analyze ?analysis built =
  let q = marginal_unavailabilities ?analysis built in
  let indices = of_unavailabilities built.Semantics.model ~q in
  List.sort (fun a b -> compare b.birnbaum a.birnbaum) indices

let pp ppf t =
  Format.fprintf ppf
    "%s: q=%.5f birnbaum=%.5f improvement=%.5f raw=%.3f fussell-vesely=%.4f"
    t.component t.unavailability t.birnbaum t.improvement_potential
    t.risk_achievement_worth t.fussell_vesely

let pp_table ppf indices =
  Format.fprintf ppf "  %-10s %-10s %-10s %-12s %-8s %-8s@." "component" "unavail."
    "birnbaum" "improvement" "RAW" "F-V";
  List.iter
    (fun t ->
      Format.fprintf ppf "  %-10s %.7f  %.7f  %.7f    %6.2f   %.4f@." t.component
        t.unavailability t.birnbaum t.improvement_potential t.risk_achievement_worth
        t.fussell_vesely)
    indices
