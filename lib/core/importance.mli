(** Component importance measures.

    Classical reliability-importance indices over an Arcade model's fault
    tree, treating components as independent with given unavailabilities
    (exact for dedicated repair, where the chain is a product of independent
    two-state components; an approximation under shared repair units, where
    we take each component's {e marginal} steady-state unavailability from
    the full chain):

    - {e Birnbaum}: [dP(down)/dq_i] — sensitivity of system unavailability
      to the component's unavailability;
    - {e improvement potential}: unavailability drop if the component were
      perfect;
    - {e risk achievement worth}: unavailability ratio if the component were
      always failed;
    - {e Fussell–Vesely}: fraction of system unavailability in which the
      component participates.

    These rank where an operator should spend maintenance effort — the
    operational question behind the paper's repair-strategy comparison. *)

type t = {
  component : string;
  unavailability : float;  (** the marginal q_i used *)
  birnbaum : float;
  improvement_potential : float;
  risk_achievement_worth : float;
  fussell_vesely : float;
}

val system_unavailability : Model.t -> q:(string -> float) -> float
(** Probability that the fault tree is true when component [c] is failed
    independently with probability [q c]. Exact enumeration over the basic
    events (fault trees with at most ~20 basics). *)

val marginal_unavailabilities :
  ?analysis:Ctmc.Analysis.t -> Semantics.built -> (string * float) list
(** Per-basic-event steady-state unavailability from the built chain
    (marginals of the joint steady-state distribution); keys are the fault
    tree's basic events (component names or ["c:mode"] references). *)

val of_unavailabilities : Model.t -> q:(string * float) list -> t list
(** All indices for every component, given the marginals. *)

val analyze : ?analysis:Ctmc.Analysis.t -> Semantics.built -> t list
(** {!marginal_unavailabilities} composed with {!of_unavailabilities},
    sorted by decreasing Birnbaum importance. *)

val pp : Format.formatter -> t -> unit

val pp_table : Format.formatter -> t list -> unit
