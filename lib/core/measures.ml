module Chain = Ctmc.Chain

type t = {
  built : Semantics.built;
  analysis : Ctmc.Analysis.t;
  csl : Csl.Checker.model;
  lump : bool;
}

(* Every measure entry point runs under a measures.<name> span; when
   tracing is off this is a single flag check. *)
let span name f = Obs.Trace.with_span ("measures." ^ name) (fun _ -> f ())

let level_label_name levels x =
  let rec position i = function
    | [] -> invalid_arg "Measures: unknown service level"
    | l :: rest -> if Float.abs (l -. x) < 1e-9 then i else position (i + 1) rest
  in
  Printf.sprintf "sl_ge_%d" (position 0 levels)

let make_csl_model ~analysis ~lump built =
  let levels = Model.service_levels built.Semantics.model in
  let model = built.Semantics.model in
  let component_labels =
    List.concat_map
      (fun name ->
        (name ^ "_failed", Semantics.literal_pred built name)
        :: List.filter_map
             (fun m ->
               if m.Component.fm_name = "failed" then None
               else
                 let literal = name ^ ":" ^ m.Component.fm_name in
                 Some (literal, Semantics.literal_pred built literal))
             (Component.modes (Model.component model name)))
      (Model.component_names model)
  in
  let labels =
    [
      ("down", Semantics.down_pred built);
      ("operational", Semantics.operational_pred built);
      ("full_service", Semantics.service_at_least built 1.);
    ]
    @ List.mapi
        (fun i level ->
          (Printf.sprintf "sl_ge_%d" i, Semantics.service_at_least built level))
        levels
    @ component_labels
  in
  let rewards =
    [
      (Some "cost", Semantics.cost_structure built);
      (Some "component_cost", Semantics.component_cost_structure built);
      (Some "repair_cost", Semantics.repair_cost_structure built);
    ]
  in
  Csl.Checker.of_chain ~analysis ~lump ~labels ~rewards built.Semantics.chain

let wrap ?(lump = false) built =
  (* one session per state space: every measure below, and every CSL query
     through {!to_csl_model}, shares its cached uniformized matrix,
     Fox-Glynn weights, absorbed chains and steady-state vector *)
  let analysis = Ctmc.Analysis.create built.Semantics.chain in
  { built; analysis; csl = make_csl_model ~analysis ~lump built; lump }

let analyze ?max_states ?initial ?lump model =
  let built =
    Obs.Trace.with_span "measures.build" @@ fun sp ->
    let built = Semantics.build ?max_states ?initial model in
    if Obs.Trace.recording sp then
      Obs.Trace.add_attr sp "states"
        (Obs.Int (Ctmc.Chain.states built.Semantics.chain));
    built
  in
  wrap ?lump built

(* The 5-strategy comparison as one call: each model builds and wraps
   independently (they have distinct state spaces, so their sweeps cannot
   share a matrix), fanned out over domains. The cross-strategy batching
   happens inside each model: every measure suite rides the blocked
   kernels ({!cost_curves}, the multi-RHS steady-state weights, the
   multi-time sweeps). *)
let analyze_all ?max_states ?lump models =
  Numeric.Parallel.map (fun model -> analyze ?max_states ?lump model) models

let analyze_mixed_disasters ?max_states ?lump model disasters =
  if disasters = [] then invalid_arg "Measures.analyze_mixed_disasters: empty mixture";
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0. disasters in
  if total <= 0. then
    invalid_arg "Measures.analyze_mixed_disasters: non-positive total weight";
  (* build from the heaviest disaster so the exploration definitely contains
     it; the other disaster states are reachable (components repair), and we
     assert as much when indexing them *)
  let sorted = List.sort (fun (a, _) (b, _) -> compare b a) disasters in
  let states = List.map (fun (w, failed) -> (w, Semantics.disaster_state model ~failed)) sorted in
  let _, first = List.hd states in
  let built = Semantics.build ?max_states ~initial:first model in
  let chain = built.Semantics.chain in
  let init = Numeric.Vec.zeros (Ctmc.Chain.states chain) in
  List.iter
    (fun (w, state) ->
      match built.Semantics.state_index state with
      | Some s -> init.(s) <- init.(s) +. (w /. total)
      | None ->
          invalid_arg
            "Measures.analyze_mixed_disasters: disaster state unreachable \
             from the heaviest disaster")
    states;
  wrap ?lump { built with Semantics.chain = Ctmc.Chain.with_init chain init }

let built t = t.built

let analysis t = t.analysis

let to_csl_model t = t.csl

let csl_queries t =
  let levels = Model.service_levels t.built.Semantics.model in
  [
    ("unreliability(t)", "P=? [ true U<=1000 \"down\" ]");
    ("availability", "S=? [ \"operational\" ]");
    ("recovery(t)", "P=? [ true U<=10 \"full_service\" ]");
    ( "survivability(x, t)",
      Printf.sprintf "P=? [ true U<=10 \"%s\" ]"
        (level_label_name levels (List.nth levels (List.length levels - 1))) );
    ("instantaneous cost", "R{\"cost\"}=? [ I=4.5 ]");
    ("accumulated cost", "R{\"cost\"}=? [ C<=10 ]");
    ("steady-state cost", "R{\"cost\"}=? [ S ]");
  ]

let chain t = t.built.Semantics.chain

let not_fully_operational t =
  let full = Semantics.service_at_least t.built 1. in
  fun s -> not (full s)

let unreliability t ~time =
  span "unreliability" @@ fun () ->
  Ctmc.Reachability.bounded_until_from_init ~lump:t.lump ~analysis:t.analysis
    (chain t)
    ~phi:(fun _ -> true)
    ~psi:(not_fully_operational t) ~bound:time

let reliability t ~time = 1. -. unreliability t ~time

let reliability_curve t ~times =
  span "reliability_curve" @@ fun () ->
  let points =
    Ctmc.Reachability.bounded_until_curve ~lump:t.lump ~analysis:t.analysis
      (chain t)
      ~phi:(fun _ -> true)
      ~psi:(not_fully_operational t) ~bounds:times
  in
  List.map (fun (time, p) -> (time, 1. -. p)) points

let availability t =
  span "availability" @@ fun () ->
  Ctmc.Steady_state.long_run_probability ~lump:t.lump ~analysis:t.analysis
    (chain t)
    ~pred:(Semantics.service_at_least t.built 1.)

let any_service_availability t =
  span "any_service_availability" @@ fun () ->
  Ctmc.Steady_state.long_run_probability ~lump:t.lump ~analysis:t.analysis
    (chain t)
    ~pred:(Semantics.operational_pred t.built)

let instantaneous_availability t ~time =
  span "instantaneous_availability" @@ fun () ->
  Ctmc.Transient.probability_at ~lump:t.lump ~analysis:t.analysis (chain t)
    ~pred:(Semantics.service_at_least t.built 1.)
    time

let mean_time_to_degradation t =
  span "mean_time_to_degradation" @@ fun () ->
  Ctmc.Absorption.mean_time_from_init ~analysis:t.analysis (chain t)
    ~psi:(not_fully_operational t)

let mean_time_to_service_loss t =
  span "mean_time_to_service_loss" @@ fun () ->
  Ctmc.Absorption.mean_time_from_init ~analysis:t.analysis (chain t)
    ~psi:(Semantics.down_pred t.built)

let survivability t ~service_level ~time =
  span "survivability" @@ fun () ->
  Ctmc.Reachability.bounded_until_from_init ~lump:t.lump ~analysis:t.analysis
    (chain t)
    ~phi:(fun _ -> true)
    ~psi:(Semantics.service_at_least t.built service_level)
    ~bound:time

let survivability_curve t ~service_level ~times =
  span "survivability_curve" @@ fun () ->
  Ctmc.Reachability.bounded_until_curve ~lump:t.lump ~analysis:t.analysis
    (chain t)
    ~phi:(fun _ -> true)
    ~psi:(Semantics.service_at_least t.built service_level)
    ~bounds:times

let recovery_probability t ~time = survivability t ~service_level:1. ~time

(* Translate a witness path over chain states into component-event
   descriptions by diffing consecutive states. *)
let describe_scenario t psi =
  match Ctmc.Witness.most_probable_path (chain t) ~psi with
  | None -> None
  | Some w ->
      let built = t.built in
      let names = Array.of_list (Model.component_names built.Semantics.model) in
      let rec diffs = function
        | a :: (b :: _ as rest) ->
            let sa = built.Semantics.states.(a) and sb = built.Semantics.states.(b) in
            let events = ref [] in
            Array.iteri
              (fun i name ->
                if sa.Semantics.up.(i) && not sb.Semantics.up.(i) then
                  events := Printf.sprintf "%s fails" name :: !events
                else if (not sa.Semantics.up.(i)) && sb.Semantics.up.(i) then
                  events := Printf.sprintf "%s repaired" name :: !events
                else if sa.Semantics.stage.(i) <> sb.Semantics.stage.(i) then
                  events := Printf.sprintf "%s repair progresses" name :: !events)
              names;
            List.rev !events @ diffs rest
        | [ _ ] | [] -> []
      in
      (match w.Ctmc.Witness.states with
      | [] | [ _ ] -> None (* already in the target: no scenario to tell *)
      | path -> Some (diffs path, w.Ctmc.Witness.probability))

let most_likely_degradation_scenario t = describe_scenario t (not_fully_operational t)

let most_likely_loss_scenario t = describe_scenario t (Semantics.down_pred t.built)

let instantaneous_cost t ~time =
  span "instantaneous_cost" @@ fun () ->
  Ctmc.Rewards.instantaneous ~lump:t.lump ~analysis:t.analysis (chain t)
    ~reward:(Semantics.cost_structure t.built)
    ~at:time

let accumulated_cost t ~time =
  span "accumulated_cost" @@ fun () ->
  Ctmc.Rewards.accumulated ~lump:t.lump ~analysis:t.analysis (chain t)
    ~reward:(Semantics.cost_structure t.built)
    ~upto:time

let instantaneous_cost_curve t ~times =
  span "instantaneous_cost_curve" @@ fun () ->
  Ctmc.Rewards.instantaneous_curve ~lump:t.lump ~analysis:t.analysis (chain t)
    ~reward:(Semantics.cost_structure t.built)
    ~times

let accumulated_cost_curve t ~times =
  span "accumulated_cost_curve" @@ fun () ->
  Ctmc.Rewards.accumulated_curve ~lump:t.lump ~analysis:t.analysis (chain t)
    ~reward:(Semantics.cost_structure t.built)
    ~times

let cost_curves t ~times =
  span "cost_curves" @@ fun () ->
  Ctmc.Rewards.both_curves ~lump:t.lump ~analysis:t.analysis (chain t)
    ~reward:(Semantics.cost_structure t.built)
    ~times

let steady_state_cost t =
  span "steady_state_cost" @@ fun () ->
  Ctmc.Rewards.steady_state ~lump:t.lump ~analysis:t.analysis (chain t)
    ~reward:(Semantics.cost_structure t.built)

let combined_availability avails =
  1. -. List.fold_left (fun acc a -> acc *. (1. -. a)) 1. avails
