(** The paper's dependability and performability measures, as a high-level
    API over an Arcade model.

    Every measure corresponds to a CSL/CSRL query (Section 3 of the paper);
    the CSL strings are exposed through {!to_csl_model} and
    {!csl_queries} so the same numbers can be reproduced through the
    {!Csl.Checker} pipeline. *)

type t = {
  built : Semantics.built;
  analysis : Ctmc.Analysis.t;
      (** the analysis session shared by every measure (and by the CSL
          model): uniformized matrix, Fox–Glynn weights, absorbed chains
          and the steady-state vector are each computed at most once *)
  csl : Csl.Checker.model;
  lump : bool;
      (** when true, every measure runs its vector iterations on cached
          lumping quotients ({!Ctmc.Analysis.quotient}) that respect the
          measure's predicate/reward — exact, and faster on lumpable
          models *)
}

val analyze :
  ?max_states:int -> ?initial:Semantics.state -> ?lump:bool -> Model.t -> t
(** Build the state space — and one cached {!Ctmc.Analysis} session over
    it — once; all measures below reuse both. [lump] (default [false])
    turns on quotient-based evaluation for every measure. *)

val analyze_all :
  ?max_states:int -> ?lump:bool -> Model.t list -> t list
(** [analyze_all models] is [List.map analyze models] fanned out over
    domains ({!Numeric.Parallel.map}) — the paper's 5-strategy comparison
    as one batch. Results align 1:1 with [models]. Within each model the
    measure suite runs on the blocked kernels (multi-RHS steady-state
    weights, batched cost curves), so the per-strategy suites are
    individually cheaper as well as concurrent. *)

val analyze_mixed_disasters :
  ?max_states:int -> ?lump:bool -> Model.t -> (float * string list) list -> t
(** GOOD analysis under an uncertain disaster: each [(weight, failed)] pair
    contributes a disaster state with the given probability (weights are
    normalized). Survivability and cost measures then average over the
    disaster distribution — e.g. "two pumps fail with probability 0.9, all
    four with probability 0.1". Raises [Invalid_argument] on an empty list
    or non-positive total weight. *)

val built : t -> Semantics.built

val analysis : t -> Ctmc.Analysis.t
(** The underlying analysis session — e.g. to inspect cache-hit statistics
    ({!Ctmc.Analysis.stats}) or to run raw [Ctmc] queries that share this
    model's caches. *)

val to_csl_model : t -> Csl.Checker.model
(** A CSL model with labels ["down"], ["operational"], ["full_service"],
    ["sl_ge_<k>"] for each service level (k the level index),
    ["<component>_failed"] per component (any mode) and
    ["<component>:<mode>"] per extra failure mode, plus the reward
    structures ["cost"], ["component_cost"], ["repair_cost"]. *)

val csl_queries : t -> (string * string) list
(** Named example queries (measure name, CSL text) covering the paper's
    Section 3, evaluable against {!to_csl_model}. *)

(** {2 Dependability measures} *)

val unreliability : t -> time:float -> float
(** [P=? (true U<=t "not fully operational")]. The paper's Fig. 3 defines
    S_down as "the process line is not fully operational" (service < 1,
    i.e. beyond the spare allowance); this follows that choice. Use a
    repair-free model ({!Model.without_repairs}) for a pure reliability
    reading; on a repairable chain this is the probability of a first
    service degradation before [t]. *)

val reliability : t -> time:float -> float
(** [1 - unreliability]. *)

val reliability_curve : t -> times:float list -> (float * float) list
(** All [*_curve] functions evaluate every point in one shared
    uniformization sweep ({!Ctmc.Analysis.poisson_mixture_multi}) and
    return points aligned 1:1 with [times]: caller order is preserved and
    duplicates are kept. *)

val availability : t -> float
(** Long-run probability that the line is {e fully} operational (service
    level 1) — the paper's Table 2 measure. *)

val any_service_availability : t -> float
(** Long-run probability that the fault tree evaluates to false, i.e. that
    {e some} service is delivered. *)

val instantaneous_availability : t -> time:float -> float
(** Probability of being operational at time [t]. *)

val mean_time_to_degradation : t -> float
(** Expected time until the line is first not fully operational (system
    MTTF with respect to the full-service condition), from the initial
    state. Uses the expected-hitting-time engine ({!Ctmc.Absorption}). *)

val mean_time_to_service_loss : t -> float
(** Expected time until the fault tree first evaluates to true (total loss
    of service). *)

(** {2 Survivability (the paper's new measure)} *)

val survivability : t -> service_level:float -> time:float -> float
(** For a [t] built from a disaster state ({!Semantics.disaster_state}):
    probability that a service level of at least [service_level] is
    restored within [time] hours — [P=? (true U<=time S_sl(x))]. *)

val survivability_curve :
  t -> service_level:float -> times:float list -> (float * float) list

val recovery_probability : t -> time:float -> float
(** Recovery to {e full} service (level 1). *)

val most_likely_degradation_scenario : t -> (string list * float) option
(** The most probable event sequence (component failures/repairs, as
    human-readable descriptions) leading from the initial state to a
    not-fully-operational state, with the probability of that jump
    sequence in the embedded chain ({!Ctmc.Witness}). [None] if the
    initial state is already degraded (trivial) or degradation is
    unreachable. *)

val most_likely_loss_scenario : t -> (string list * float) option
(** As above, but to total service loss (the fault tree). *)

(** {2 Costs (CSRL reward measures)} *)

val instantaneous_cost : t -> time:float -> float
(** [R{"cost"}=? (I=t)]. *)

val accumulated_cost : t -> time:float -> float
(** [R{"cost"}=? (C<=t)]. *)

val instantaneous_cost_curve : t -> times:float list -> (float * float) list

val accumulated_cost_curve : t -> times:float list -> (float * float) list

val cost_curves :
  t -> times:float list -> (float * float) list * (float * float) list
(** [(instantaneous, accumulated)] cost curves over one time grid from a
    single blocked sweep ({!Ctmc.Rewards.both_curves}) — both cost
    figures of a strategy for the price of one pass. *)

val steady_state_cost : t -> float

(** {2 Combining independent subsystems} *)

val combined_availability : float list -> float
(** Availability of a parallel composition of independent lines: at least
    one line available, [1 - prod (1 - a_i)] — the paper's
    [A1 + A2 - A1 A2] generalized. *)
