module X = Xml_kit

exception Schema_error of string

let () =
  Printexc.register_printer (function
    | Schema_error msg -> Some (Printf.sprintf "Core.Xml_io.Schema_error (%s)" msg)
    | _ -> None)

let error fmt = Printf.ksprintf (fun msg -> raise (Schema_error msg)) fmt

type measure_spec = { measure_name : string; query : string }

(* ------------------------------------------------------------------ *)
(* Writing *)

let float_attr x =
  (* shortest representation that round-trips *)
  let s = Printf.sprintf "%.12g" x in
  if float_of_string s = x then s else Printf.sprintf "%.17g" x

let component_to_xml c =
  X.element "component"
    ([
       ("name", c.Component.name);
       ("mttf", float_attr c.Component.mttf);
       ("mttr", float_attr c.Component.mttr);
       ("failed-cost", float_attr c.Component.failed_cost);
       ("operational-cost", float_attr c.Component.operational_cost);
     ]
    @
    if c.Component.repair_stages > 1 then
      [ ("repair-stages", string_of_int c.Component.repair_stages) ]
    else [])
    (List.map
       (fun m ->
         X.element "mode"
           ([
              ("name", m.Component.fm_name);
              ("mttf", float_attr m.Component.fm_mttf);
              ("mttr", float_attr m.Component.fm_mttr);
              ("failed-cost", float_attr m.Component.fm_failed_cost);
            ]
           @
           if m.Component.fm_repair_stages > 1 then
             [ ("repair-stages", string_of_int m.Component.fm_repair_stages) ]
           else [])
           [])
       c.Component.extra_modes)

let ref_el tag name = X.element tag [ ("ref", name) ] []

let repair_unit_to_xml ru =
  let strategy_name, members =
    match ru.Repair.strategy with
    | Repair.Dedicated -> ("dedicated", ru.Repair.components)
    | Repair.Fcfs -> ("fcfs", ru.Repair.components)
    | Repair.Frf -> ("frf", ru.Repair.components)
    | Repair.Fff -> ("fff", ru.Repair.components)
    | Repair.Priority order -> ("priority", order)
  in
  X.element "repair-unit"
    [
      ("name", ru.Repair.name);
      ("strategy", strategy_name);
      ("crews", string_of_int ru.Repair.crews);
      ("idle-cost", float_attr ru.Repair.idle_cost);
      ("busy-cost", float_attr ru.Repair.busy_cost);
      ("preemptive", string_of_bool ru.Repair.preemptive);
    ]
    (List.map (ref_el "component") members)

let spare_unit_to_xml smu =
  X.element "spare-unit"
    [ ("name", smu.Spare.name); ("mode", Spare.mode_to_string smu.Spare.mode) ]
    (List.map (ref_el "primary") smu.Spare.primaries
    @ List.map (ref_el "spare") smu.Spare.spares)

let rec fault_tree_to_xml tree =
  match tree with
  | Fault_tree.Basic name -> ref_el "basic" name
  | Fault_tree.And inputs -> X.element "and" [] (List.map fault_tree_to_xml inputs)
  | Fault_tree.Or inputs -> X.element "or" [] (List.map fault_tree_to_xml inputs)
  | Fault_tree.Kofn (k, inputs) ->
      X.element "kofn" [ ("k", string_of_int k) ] (List.map fault_tree_to_xml inputs)

let measure_to_xml m =
  X.element "measure" [ ("name", m.measure_name); ("query", m.query) ] []

let to_xml ?(measures = []) model =
  X.element "arcade"
    [ ("name", model.Model.name) ]
    ([
       X.element "components" [] (List.map component_to_xml model.Model.components);
     ]
    @ (if model.Model.repair_units = [] then []
       else
         [
           X.element "repair-units" []
             (List.map repair_unit_to_xml model.Model.repair_units);
         ])
    @ (if model.Model.spare_units = [] then []
       else
         [
           X.element "spare-units" []
             (List.map spare_unit_to_xml model.Model.spare_units);
         ])
    @ [ X.element "fault-tree" [] [ fault_tree_to_xml model.Model.fault_tree ] ]
    @
    if measures = [] then []
    else [ X.element "measures" [] (List.map measure_to_xml measures) ])

(* ------------------------------------------------------------------ *)
(* Reading *)

(* Every reading helper takes [locate], which renders an element's source
   position ("file:line:col: ", parser-located elements) or "" (elements
   built programmatically), so Schema_error messages point at the offending
   XML line rather than just an element name. *)

let error_at locate el fmt =
  Printf.ksprintf (fun msg -> raise (Schema_error (locate el ^ msg))) fmt

let required locate el key =
  match X.attribute el key with
  | Some v -> v
  | None ->
      let where = match el with X.Element (tag, _, _) -> tag | X.Text _ -> "#text" in
      error_at locate el "missing attribute %S on <%s>" key where

let float_of_attr locate el key =
  let raw = required locate el key in
  match float_of_string_opt raw with
  | Some f -> f
  | None -> error_at locate el "attribute %s=%S is not a number" key raw

let int_of_attr locate el key =
  let raw = required locate el key in
  match int_of_string_opt raw with
  | Some i -> i
  | None -> error_at locate el "attribute %s=%S is not an integer" key raw

let bool_of_attr ?default locate el key =
  match (X.attribute el key, default) with
  | Some "true", _ -> true
  | Some "false", _ -> false
  | Some other, _ -> error_at locate el "attribute %s=%S is not a boolean" key other
  | None, Some d -> d
  | None, None -> error_at locate el "missing boolean attribute %s" key

let mode_of_xml locate el =
  Component.failure_mode
    ~name:(required locate el "name")
    ~mttf:(float_of_attr locate el "mttf")
    ~mttr:(float_of_attr locate el "mttr")
    ~failed_cost:
      (match X.attribute el "failed-cost" with
      | Some _ -> float_of_attr locate el "failed-cost"
      | None -> 3.)
    ~repair_stages:
      (match X.attribute el "repair-stages" with
      | Some _ -> int_of_attr locate el "repair-stages"
      | None -> 1)
    ()

let component_of_xml locate el =
  Component.make
    ~extra_modes:(List.map (mode_of_xml locate) (X.find_children el "mode"))
    ~name:(required locate el "name")
    ~mttf:(float_of_attr locate el "mttf")
    ~mttr:(float_of_attr locate el "mttr")
    ~repair_stages:
      (match X.attribute el "repair-stages" with
      | Some _ -> int_of_attr locate el "repair-stages"
      | None -> 1)
    ~failed_cost:
      (match X.attribute el "failed-cost" with
      | Some _ -> float_of_attr locate el "failed-cost"
      | None -> 3.)
    ~operational_cost:
      (match X.attribute el "operational-cost" with
      | Some _ -> float_of_attr locate el "operational-cost"
      | None -> 0.)
    ()

let refs_of locate tag el =
  List.map (fun child -> required locate child "ref") (X.find_children el tag)

let repair_unit_of_xml locate el =
  let members = refs_of locate "component" el in
  let strategy =
    match String.lowercase_ascii (required locate el "strategy") with
    | "priority" -> Repair.Priority members
    | other -> Repair.strategy_of_string other
  in
  Repair.make
    ~name:(required locate el "name")
    ~strategy ~components:members
    ~crews:
      (match X.attribute el "crews" with
      | Some _ -> int_of_attr locate el "crews"
      | None -> 1)
    ~idle_cost:
      (match X.attribute el "idle-cost" with
      | Some _ -> float_of_attr locate el "idle-cost"
      | None -> 1.)
    ~busy_cost:
      (match X.attribute el "busy-cost" with
      | Some _ -> float_of_attr locate el "busy-cost"
      | None -> 0.)
    ~preemptive:(bool_of_attr ~default:false locate el "preemptive")
    ()

let spare_unit_of_xml locate el =
  Spare.make
    ~name:(required locate el "name")
    ~mode:(Spare.mode_of_string (required locate el "mode"))
    ~primaries:(refs_of locate "primary" el)
    ~spares:(refs_of locate "spare" el) ()

let rec fault_tree_of_xml_at locate el =
  match X.name el with
  | "basic" -> Fault_tree.basic (required locate el "ref")
  | "and" ->
      Fault_tree.and_ (List.map (fault_tree_of_xml_at locate) (X.child_elements el))
  | "or" ->
      Fault_tree.or_ (List.map (fault_tree_of_xml_at locate) (X.child_elements el))
  | "kofn" ->
      Fault_tree.kofn (int_of_attr locate el "k")
        (List.map (fault_tree_of_xml_at locate) (X.child_elements el))
  | other -> error_at locate el "unexpected fault-tree element <%s>" other

let measure_of_xml locate el =
  { measure_name = required locate el "name"; query = required locate el "query" }

let no_location : X.t -> string = fun _ -> ""

let locator_prefix ?file pos el =
  match pos el with
  | Some (line, column) -> (
      match file with
      | Some f -> Printf.sprintf "%s:%d:%d: " f line column
      | None -> Printf.sprintf "%d:%d: " line column)
  | None -> ( match file with Some f -> f ^ ": " | None -> "")

let fault_tree_of_xml el = fault_tree_of_xml_at no_location el

let of_xml ?file ?pos doc =
  let locate =
    match pos with None -> no_location | Some pos -> locator_prefix ?file pos
  in
  (match doc with
  | X.Element ("arcade", _, _) -> ()
  | X.Element (other, _, _) -> error_at locate doc "expected root <arcade>, got <%s>" other
  | X.Text _ -> error "expected an element");
  let name = required locate doc "name" in
  let components =
    match X.find_child doc "components" with
    | Some el -> List.map (component_of_xml locate) (X.find_children el "component")
    | None -> error_at locate doc "missing <components>"
  in
  let repair_units =
    match X.find_child doc "repair-units" with
    | Some el -> List.map (repair_unit_of_xml locate) (X.find_children el "repair-unit")
    | None -> []
  in
  let spare_units =
    match X.find_child doc "spare-units" with
    | Some el -> List.map (spare_unit_of_xml locate) (X.find_children el "spare-unit")
    | None -> []
  in
  let fault_tree =
    match X.find_child doc "fault-tree" with
    | Some el -> (
        match X.child_elements el with
        | [ root ] -> fault_tree_of_xml_at locate root
        | _ -> error_at locate el "<fault-tree> must have exactly one root gate")
    | None -> error_at locate doc "missing <fault-tree>"
  in
  let measures =
    match X.find_child doc "measures" with
    | Some el -> List.map (measure_of_xml locate) (X.find_children el "measure")
    | None -> []
  in
  ( Model.make ~name ~components ~repair_units ~spare_units ~fault_tree (),
    measures )

let save ?measures path model = X.write_file path (to_xml ?measures model)

let load path =
  let doc, pos =
    try X.parse_file_located path
    with X.Parse_error { line; column; message } ->
      error "%s:%d:%d: parse error: %s" path line column message
  in
  of_xml ~file:path ~pos doc
