(** The Arcade XML input language.

    The paper's tool chain reads an architectural model, a fault tree and a
    measure specification from XML ([9] — an unpublished master's thesis).
    This module defines and implements our equivalent schema:

    {v
    <arcade name="line1">
      <components>
        <component name="st1" mttf="2000" mttr="5"
                   failed-cost="3" operational-cost="0"/>
        ...
      </components>
      <repair-units>
        <repair-unit name="ru" strategy="frf" crews="1"
                     idle-cost="1" busy-cost="0" preemptive="false">
          <component ref="st1"/> ...
        </repair-unit>
      </repair-units>
      <spare-units>
        <spare-unit name="pumps" mode="hot">   <!-- or cold, warm:0.5 -->
          <primary ref="pump1"/> ... <spare ref="pump4"/>
        </spare-unit>
      </spare-units>
      <fault-tree>
        <or>
          <and><basic ref="st1"/>...</and>
          <kofn k="2"><basic ref="pump1"/>...</kofn>
          <basic ref="res"/>
        </or>
      </fault-tree>
      <measures>
        <measure name="availability" query="S=? [ &quot;full_service&quot; ]"/>
      </measures>
    </arcade>
    v}

    [strategy] is one of [dedicated], [fcfs], [frf], [fff], [priority] (for
    [priority], the child order is the priority order). The [measures]
    element is optional; queries are CSL/CSRL texts for {!Csl.Parser}.

    [of_xml (to_xml m)] reproduces the model exactly. *)

exception Schema_error of string

type measure_spec = { measure_name : string; query : string }

val to_xml : ?measures:measure_spec list -> Model.t -> Xml_kit.t

val of_xml :
  ?file:string -> ?pos:Xml_kit.locator -> Xml_kit.t -> Model.t * measure_spec list
(** Raises {!Schema_error} on malformed documents (and propagates
    [Invalid_argument] from model validation). When [pos] (and optionally
    [file]) are given — e.g. from {!Xml_kit.parse_file_located} — error
    messages carry a [file:line:column:] prefix locating the offending
    element. *)

val save : ?measures:measure_spec list -> string -> Model.t -> unit

val load : string -> Model.t * measure_spec list

val fault_tree_to_xml : Fault_tree.t -> Xml_kit.t

val fault_tree_of_xml : Xml_kit.t -> Fault_tree.t
