module Vec = Numeric.Vec
module Sparse = Numeric.Sparse
module Chain = Ctmc.Chain

type model = {
  chain : Chain.t;
  analysis : Ctmc.Analysis.t;
  label : string -> (int -> bool) option;
  atomic : Prism.Ast.expr -> (int -> bool) option;
  reward : string option -> Numeric.Vec.t option;
  lump : bool;
}

exception Unsupported of string

let () =
  Printexc.register_printer (function
    | Unsupported msg -> Some (Printf.sprintf "Csl.Checker.Unsupported (%s)" msg)
    | _ -> None)

let unsupported fmt = Printf.ksprintf (fun msg -> raise (Unsupported msg)) fmt

let session analysis chain =
  match analysis with
  | Some a when Ctmc.Analysis.wraps a chain -> a
  | Some _ | None -> Ctmc.Analysis.create chain

let of_built ?analysis ?(lump = false) built =
  {
    chain = built.Prism.Builder.chain;
    analysis = session analysis built.Prism.Builder.chain;
    lump;
    label =
      (fun name ->
        if List.mem_assoc name built.Prism.Builder.labels then
          Some (Prism.Builder.label_pred built name)
        else None);
    atomic = (fun expr -> Some (Prism.Builder.state_pred built expr));
    reward =
      (fun name ->
        List.assoc_opt name built.Prism.Builder.reward_structures);
  }

let of_chain ?analysis ?(lump = false) ?(labels = []) ?(rewards = []) chain =
  {
    chain;
    analysis = session analysis chain;
    lump;
    label = (fun name -> List.assoc_opt name labels);
    atomic = (fun _ -> None);
    reward = (fun name -> List.assoc_opt name rewards);
  }

type result =
  | Value of float
  | Satisfied of bool

let compare_bound cmp threshold x =
  match cmp with
  | Ast.Lt -> x < threshold
  | Ast.Le -> x <= threshold
  | Ast.Gt -> x > threshold
  | Ast.Ge -> x >= threshold

(* Per-state probability of a path formula. *)
let rec path_probabilities model path =
  let n = Chain.states model.chain in
  match path with
  | Ast.Next (interval, f) ->
      (* P(X phi within [a,b]) = P(first jump in the interval) * P(jump
         lands in phi): the jump time and target are independent *)
      let sat = satisfaction model f in
      let emb = Ctmc.Analysis.embedded model.analysis in
      let exits = Chain.exit_rates model.chain in
      let timing s =
        let e = exits.(s) in
        match interval with
        | Ast.Unbounded -> 1.
        | Ast.Upto t -> 1. -. Float.exp (-.e *. t)
        | Ast.Within (a, b) -> Float.exp (-.e *. a) -. Float.exp (-.e *. b)
      in
      Array.init n (fun s ->
          if exits.(s) = 0. then 0.
          else begin
            let acc = ref 0. in
            Sparse.iter_row emb s (fun j p -> if sat.(j) then acc := !acc +. p);
            !acc *. timing s
          end)
  | Ast.Eventually (i, f) -> path_probabilities model (Ast.Until (Ast.True, i, f))
  | Ast.Globally (i, f) ->
      (* P(G f) = 1 - P(F !f) *)
      let complement = path_probabilities model (Ast.Until (Ast.True, i, Ast.Not f)) in
      Array.map (fun p -> 1. -. p) complement
  | Ast.Until (f1, i, f2) -> (
      let sat1 = satisfaction model f1 in
      let sat2 = satisfaction model f2 in
      let phi s = sat1.(s) in
      let psi s = sat2.(s) in
      match i with
      | Ast.Unbounded ->
          Ctmc.Reachability.unbounded_until ~analysis:model.analysis model.chain
            ~phi ~psi
      | Ast.Upto t ->
          Ctmc.Reachability.bounded_until ~lump:model.lump
            ~analysis:model.analysis model.chain ~phi ~psi ~bound:t
      | Ast.Within (a, b) ->
          Ctmc.Reachability.interval_until ~analysis:model.analysis model.chain
            ~phi ~psi ~lower:a ~upper:b)

and reward_value model name query =
  let reward =
    match model.reward name with
    | Some r -> r
    | None ->
        unsupported "unknown reward structure %s"
          (match name with None -> "(unnamed)" | Some n -> Printf.sprintf "%S" n)
  in
  match query with
  | Ast.Instantaneous t ->
      Ctmc.Rewards.instantaneous ~lump:model.lump ~analysis:model.analysis
        model.chain ~reward ~at:t
  | Ast.Cumulative t ->
      Ctmc.Rewards.accumulated ~lump:model.lump ~analysis:model.analysis
        model.chain ~reward ~upto:t
  | Ast.Steady ->
      Ctmc.Rewards.steady_state ~lump:model.lump ~analysis:model.analysis
        model.chain ~reward

and satisfaction model formula =
  let n = Chain.states model.chain in
  match formula with
  | Ast.True -> Array.make n true
  | Ast.False -> Array.make n false
  | Ast.Label name -> (
      match model.label name with
      | Some pred -> Array.init n pred
      | None -> unsupported "unknown label %S" name)
  | Ast.Atomic expr -> (
      match model.atomic expr with
      | Some pred -> Array.init n pred
      | None ->
          unsupported "cannot resolve atomic expression %s"
            (Prism.Printer.expr_to_string expr))
  | Ast.Not f -> Array.map not (satisfaction model f)
  | Ast.And (a, b) ->
      let sa = satisfaction model a and sb = satisfaction model b in
      Array.init n (fun s -> sa.(s) && sb.(s))
  | Ast.Or (a, b) ->
      let sa = satisfaction model a and sb = satisfaction model b in
      Array.init n (fun s -> sa.(s) || sb.(s))
  | Ast.Implies (a, b) ->
      let sa = satisfaction model a and sb = satisfaction model b in
      Array.init n (fun s -> (not sa.(s)) || sb.(s))
  | Ast.P (Ast.Query, _) | Ast.S (Ast.Query, _) | Ast.R (_, Ast.Query, _) ->
      unsupported "a =? query cannot be nested inside a state formula"
  | Ast.P (Ast.Bounded (cmp, p), path) ->
      let probs = path_probabilities model path in
      Array.map (compare_bound cmp p) probs
  | Ast.S (Ast.Bounded (cmp, p), f) ->
      (* S is initial-state independent only for irreducible chains; for the
         general case PRISM computes a per-state value (probability weighted
         by the BSCCs reachable from each state). We support the common
         irreducible case per-state, and otherwise evaluate from each state
         by re-rooting the chain. *)
      let sat = satisfaction model f in
      if Ctmc.Steady_state.is_irreducible ~analysis:model.analysis model.chain
      then begin
        let pi = Ctmc.Steady_state.solve ~analysis:model.analysis model.chain in
        let total = ref 0. in
        Array.iteri (fun s mass -> if sat.(s) then total := !total +. mass) pi;
        Array.make n (compare_bound cmp p !total)
      end
      else
        Array.init n (fun s ->
            let rooted = Chain.with_point_init model.chain s in
            let v = Ctmc.Steady_state.long_run_probability rooted ~pred:(fun i -> sat.(i)) in
            compare_bound cmp p v)
  | Ast.R (name, Ast.Bounded (cmp, threshold), query) ->
      (* reward bounds are evaluated from each state as initial state;
         re-rooting changes the chain, so each state gets its own session *)
      Array.init n (fun s ->
          let rooted = Chain.with_point_init model.chain s in
          let rerooted =
            { model with chain = rooted; analysis = Ctmc.Analysis.create rooted }
          in
          let v = reward_value rerooted name query in
          compare_bound cmp threshold v)

let initial_states model =
  let init = Chain.initial model.chain in
  let out = ref [] in
  Array.iteri (fun s p -> if p > 0. then out := s :: !out) init;
  !out

let check model formula =
  match formula with
  | Ast.P (Ast.Query, path) ->
      let probs = path_probabilities model path in
      Value (Vec.dot (Chain.initial model.chain) probs)
  | Ast.S (Ast.Query, f) ->
      let sat = satisfaction model f in
      Value
        (Ctmc.Steady_state.long_run_probability ~lump:model.lump
           ~analysis:model.analysis model.chain
           ~pred:(fun s -> sat.(s)))
  | Ast.R (name, Ast.Query, query) -> Value (reward_value model name query)
  | _ ->
      let sat = satisfaction model formula in
      Satisfied (List.for_all (fun s -> sat.(s)) (initial_states model))

let check_string model input =
  Obs.Trace.with_span "csl.check" @@ fun span ->
  if Obs.Trace.recording span then begin
    Obs.Trace.add_attr span "query" (Obs.Str input);
    Obs.Trace.add_attr span "states" (Obs.Int (Chain.states model.chain))
  end;
  check model (Parser.parse input)

let value model input =
  match check_string model input with
  | Value v -> v
  | Satisfied _ -> unsupported "expected a =? query, got a boolean formula"
