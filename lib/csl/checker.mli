(** CSL / CSRL model checking over explicit CTMCs.

    Implements the standard algorithms (Baier–Haverkort–Hermanns–Katoen):
    bounded until via uniformization on a transformed chain, unbounded until
    via the embedded DTMC, the [S] operator via bottom-SCC analysis, and the
    CSRL reward operators via Markov reward model analysis. *)

type model = {
  chain : Ctmc.Chain.t;
  analysis : Ctmc.Analysis.t;
      (** the cached analysis session every query runs through: checking
          several formulas against one model shares the uniformized matrix,
          Fox–Glynn weights, absorbed chains and steady-state vector *)
  label : string -> (int -> bool) option;  (** resolve a quoted label *)
  atomic : Prism.Ast.expr -> (int -> bool) option;
      (** resolve an atomic expression over state variables *)
  reward : string option -> Numeric.Vec.t option;  (** resolve a reward structure *)
  lump : bool;
      (** when true, bounded-until, steady-state and reward queries run
          their vector iterations on cached lumping quotients
          ({!Ctmc.Analysis.quotient}) that respect the query's
          predicates/rewards — exact, and faster on lumpable models *)
}

val of_built :
  ?analysis:Ctmc.Analysis.t -> ?lump:bool -> Prism.Builder.built -> model
(** Wrap a built PRISM model: labels, variables and reward structures
    resolve to what the model defines. [analysis] injects an existing
    session for the model's chain (it is used only if it wraps exactly that
    chain); by default a fresh one is created. *)

val of_chain :
  ?analysis:Ctmc.Analysis.t ->
  ?lump:bool ->
  ?labels:(string * (int -> bool)) list ->
  ?rewards:(string option * Numeric.Vec.t) list ->
  Ctmc.Chain.t ->
  model
(** Wrap a bare chain with explicitly provided labels and rewards (atomic
    expressions are not resolvable in this case). [analysis] as in
    {!of_built}. *)

exception Unsupported of string
(** Raised for ill-formed checks: unknown labels, unresolvable atomics,
    a nested [=?] query, or a top-level query applied where a boolean is
    needed. *)

type result =
  | Value of float  (** a [=?] query *)
  | Satisfied of bool  (** a boolean formula, evaluated in the initial state(s) *)

val satisfaction : model -> Ast.state_formula -> bool array
(** Per-state satisfaction of a boolean state formula. Nested [P/S/R] with
    bounds are checked recursively; [=?] queries raise {!Unsupported}. *)

val check : model -> Ast.state_formula -> result
(** Top-level evaluation. [=?] queries return [Value] (weighted by the
    initial distribution for [P], [R]); other formulas return [Satisfied]
    (true iff every state with positive initial probability satisfies the
    formula). *)

val check_string : model -> string -> result
(** Parse and {!check}. *)

val value : model -> string -> float
(** Parse and evaluate a query that must yield a numeric value; raises
    {!Unsupported} otherwise. *)
