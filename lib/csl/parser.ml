exception
  Syntax_error of { position : int; line : int; column : int; message : string }

let () =
  Printexc.register_printer (function
    | Syntax_error { line; column; message; _ } ->
        Some
          (Printf.sprintf "Csl.Parser.Syntax_error (at %d:%d: %s)" line column
             message)
    | _ -> None)

type state = { input : string; mutable pos : int }

(* Queries embedded in XML <measures> elements span several lines; report
   errors as line:column within the query string rather than a raw byte
   offset. *)
let line_column input pos =
  let line = ref 1 and col = ref 1 in
  let stop = min pos (String.length input) in
  for i = 0 to stop - 1 do
    if input.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  (!line, !col)

let error st message =
  let line, column = line_column st.input st.pos in
  raise (Syntax_error { position = st.pos; line; column; message })

let at_end st = st.pos >= String.length st.input

let peek st = if at_end st then None else Some st.input.[st.pos]

let skip_ws st =
  let continue = ref true in
  while !continue do
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> st.pos <- st.pos + 1
    | _ -> continue := false
  done

let looking_at st prefix =
  skip_ws st;
  let l = String.length prefix in
  st.pos + l <= String.length st.input && String.sub st.input st.pos l = prefix

let accept st prefix =
  if looking_at st prefix then begin
    st.pos <- st.pos + String.length prefix;
    true
  end
  else false

let expect st prefix =
  if not (accept st prefix) then error st (Printf.sprintf "expected %S" prefix)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let ident st =
  skip_ws st;
  let start = st.pos in
  while (not (at_end st)) && is_ident_char st.input.[st.pos] do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then error st "expected an identifier";
  String.sub st.input start (st.pos - start)

let number st =
  skip_ws st;
  let start = st.pos in
  let is_num_char c = (c >= '0' && c <= '9') || c = '.' || c = 'e' || c = 'E' || c = '-' || c = '+' in
  (* leading sign only at the start *)
  if (not (at_end st)) && (st.input.[st.pos] = '-' || st.input.[st.pos] = '+') then
    st.pos <- st.pos + 1;
  while
    (not (at_end st))
    && is_num_char st.input.[st.pos]
    && not (st.input.[st.pos] = '-' && st.pos > start
            && st.input.[st.pos - 1] <> 'e' && st.input.[st.pos - 1] <> 'E')
  do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then error st "expected a number";
  let text = String.sub st.input start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> error st (Printf.sprintf "bad number %S" text)

let quoted st =
  expect st "\"";
  let start = st.pos in
  while (not (at_end st)) && st.input.[st.pos] <> '"' do
    st.pos <- st.pos + 1
  done;
  if at_end st then error st "unterminated string";
  let s = String.sub st.input start (st.pos - start) in
  st.pos <- st.pos + 1;
  s

let bound st =
  skip_ws st;
  if accept st "=?" then Ast.Query
  else if accept st "<=" then Ast.Bounded (Ast.Le, number st)
  else if accept st ">=" then Ast.Bounded (Ast.Ge, number st)
  else if accept st "<" then Ast.Bounded (Ast.Lt, number st)
  else if accept st ">" then Ast.Bounded (Ast.Gt, number st)
  else error st "expected a bound (=?, <=p, <p, >=p, >p)"

let interval st =
  if accept st "<=" then Ast.Upto (number st)
  else if accept st "[" then begin
    let a = number st in
    skip_ws st;
    expect st ",";
    let b = number st in
    skip_ws st;
    expect st "]";
    if a < 0. || b < a then error st "bad time interval";
    Ast.Within (a, b)
  end
  else Ast.Unbounded

(* Balanced-paren scan: returns the substring inside the parentheses,
   assuming the opening paren was just consumed. *)
let balanced st =
  let start = st.pos in
  let depth = ref 1 in
  while !depth > 0 do
    if at_end st then error st "unbalanced parentheses";
    (match st.input.[st.pos] with
    | '(' -> incr depth
    | ')' -> decr depth
    | _ -> ());
    st.pos <- st.pos + 1
  done;
  String.sub st.input start (st.pos - 1 - start)

let rec formula st = implies st

and implies st =
  let lhs = or_formula st in
  if accept st "=>" then Ast.Implies (lhs, implies st) else lhs

and or_formula st =
  let lhs = ref (and_formula st) in
  while looking_at st "|" && not (looking_at st "||") do
    expect st "|";
    lhs := Ast.Or (!lhs, and_formula st)
  done;
  !lhs

and and_formula st =
  let lhs = ref (unary st) in
  while looking_at st "&" do
    expect st "&";
    lhs := Ast.And (!lhs, unary st)
  done;
  !lhs

and unary st =
  skip_ws st;
  if accept st "!" then Ast.Not (unary st) else atom st

and atom st =
  skip_ws st;
  match peek st with
  | Some '"' -> Ast.Label (quoted st)
  | Some '(' ->
      expect st "(";
      let inside = balanced st in
      (* a parenthesized chunk is either a nested state formula or a PRISM
         expression; try the formula grammar first *)
      let sub = { input = inside; pos = 0 } in
      (try
         let f = formula sub in
         skip_ws sub;
         if at_end sub then f else raise Exit
       with Syntax_error _ | Exit -> (
         try Ast.Atomic (Prism.Parser.parse_expr inside)
         with Prism.Parser.Syntax_error { message; _ } ->
           error st (Printf.sprintf "bad expression %S: %s" inside message)))
  | Some 'P' when not (is_longer_ident st) ->
      st.pos <- st.pos + 1;
      let b = bound st in
      expect st "[";
      let path = path_formula st in
      expect st "]";
      Ast.P (b, path)
  | Some 'S' when not (is_longer_ident st) ->
      st.pos <- st.pos + 1;
      let b = bound st in
      expect st "[";
      let f = formula st in
      expect st "]";
      Ast.S (b, f)
  | Some 'R' when not (is_longer_ident st) ->
      st.pos <- st.pos + 1;
      let name = if accept st "{" then begin
          let n = quoted st in
          expect st "}";
          Some n
        end
        else None
      in
      let b = bound st in
      expect st "[";
      let q = reward_query st in
      expect st "]";
      Ast.R (name, b, q)
  | Some c when is_ident_char c -> (
      let name = ident st in
      match name with
      | "true" -> Ast.True
      | "false" -> Ast.False
      | _ -> Ast.Atomic (Prism.Ast.Var name))
  | _ -> error st "expected a state formula"

and is_longer_ident st =
  (* 'P', 'S', 'R' only act as operators when not part of a longer word *)
  st.pos + 1 < String.length st.input && is_ident_char st.input.[st.pos + 1]

and path_formula st =
  skip_ws st;
  if looking_at st "X" && not (is_longer_ident st) then begin
    st.pos <- st.pos + 1;
    let i = interval st in
    Ast.Next (i, unary st)
  end
  else if looking_at st "F" && not (is_longer_ident st) then begin
    st.pos <- st.pos + 1;
    let i = interval st in
    Ast.Eventually (i, unary st)
  end
  else if looking_at st "G" && not (is_longer_ident st) then begin
    st.pos <- st.pos + 1;
    let i = interval st in
    Ast.Globally (i, unary st)
  end
  else begin
    let lhs = and_formula st in
    skip_ws st;
    if looking_at st "U" && not (is_longer_ident st) then begin
      st.pos <- st.pos + 1;
      let i = interval st in
      let rhs = and_formula st in
      Ast.Until (lhs, i, rhs)
    end
    else error st "expected a path operator (X, F, G or U)"
  end

and reward_query st =
  skip_ws st;
  if accept st "I=" then Ast.Instantaneous (number st)
  else if accept st "C<=" then Ast.Cumulative (number st)
  else if looking_at st "S" && not (is_longer_ident st) then begin
    st.pos <- st.pos + 1;
    Ast.Steady
  end
  else error st "expected a reward query (I=t, C<=t or S)"

let parse input =
  let st = { input; pos = 0 } in
  let f = formula st in
  skip_ws st;
  if not (at_end st) then error st "trailing input after formula";
  f
