(** Parser for CSL / CSRL queries in PRISM's property syntax.

    Examples of accepted input:

    {v
      P=? [ true U<=1000 "down" ]
      S=? [ "operational" ]
      P>=0.99 [ !"down" U "recovered" ]
      R{"cost"}=? [ C<=10 ]
      R=? [ I=4.5 ]
      P=? [ F<=50 (service_level >= 2) ]
    v}

    Atomic state predicates are quoted label names, [true]/[false], bare
    identifiers (boolean variables), or parenthesized PRISM expressions
    over state variables. *)

exception
  Syntax_error of { position : int; line : int; column : int; message : string }
(** [position] is the raw byte offset into the query string; [line] /
    [column] (both 1-based) locate it within the possibly multi-line query
    text, e.g. one embedded in an XML [<measures>] element. *)

val parse : string -> Ast.state_formula
