module Vec = Numeric.Vec
module Sparse = Numeric.Sparse

(* For non-target states s with almost-sure absorption:
     t(s) = rho(s) / E(s) + sum_{s'} P_emb(s, s') t(s')
   where E is the exit rate. Solve (I - A) t = b over the states that reach
   psi with probability 1; everything else is infinity. *)
let expected_reward_to ?(tol = 1e-13) ?analysis m ~reward ~psi =
  let n = Chain.states m in
  if Vec.dim reward <> n then invalid_arg "Absorption: reward dimension mismatch";
  let a = Analysis.for_chain analysis m in
  let reach = Reachability.eventually ~tol ~analysis:a m ~psi in
  let result = Vec.create n infinity in
  let certain = Array.init n (fun s -> reach.(s) >= 1. -. 1e-9) in
  let solve_states =
    Array.init n (fun s -> certain.(s) && not (psi s))
  in
  let index = Array.make n (-1) in
  let count = ref 0 in
  for s = 0 to n - 1 do
    if solve_states.(s) then begin
      index.(s) <- !count;
      incr count
    end
  done;
  for s = 0 to n - 1 do
    if psi s then result.(s) <- 0.
  done;
  let nm = !count in
  if nm > 0 then begin
    let exits = Chain.exit_rates m in
    let emb = Analysis.embedded a in
    let b = Sparse.Builder.create ~rows:nm ~cols:nm in
    let rhs = Vec.zeros nm in
    let states = Array.make nm 0 in
    for s = 0 to n - 1 do
      if solve_states.(s) then begin
        (* a state certain to reach psi and not in psi must have exits *)
        assert (exits.(s) > 0.);
        states.(index.(s)) <- s;
        rhs.(index.(s)) <- reward.(s) /. exits.(s);
        Sparse.Builder.add b index.(s) index.(s) 1.;
        Sparse.iter_row emb s (fun j p ->
            if solve_states.(j) then Sparse.Builder.add b index.(s) index.(j) (-.p))
      end
    done;
    let order = Analysis.scc_solve_order a states in
    let x, _ =
      Numeric.Solver.solve_gauss_seidel ~tol ~order (Sparse.Builder.to_csr b) rhs
    in
    for s = 0 to n - 1 do
      if solve_states.(s) then result.(s) <- x.(index.(s))
    done
  end;
  result

let expected_time_to ?tol ?analysis m ~psi =
  expected_reward_to ?tol ?analysis m ~reward:(Vec.create (Chain.states m) 1.) ~psi

let mean_time_from_init ?tol ?analysis m ~psi =
  let times = expected_time_to ?tol ?analysis m ~psi in
  let init = Chain.initial m in
  let acc = ref 0. in
  Array.iteri (fun s p -> if p > 0. then acc := !acc +. (p *. times.(s))) init;
  !acc
