(** Expected hitting (absorption) times and rewards.

    Computes, per start state, the expected time until a target set is
    first hit — the engine behind system-level MTTF ("mean time to first
    system failure") — and, more generally, the expected reward accumulated
    until hitting the target. States that reach the target with probability
    less than one get [infinity] (the conditional expectation is not what
    CSRL's reachability reward defines; PRISM makes the same choice).

    With an [?analysis] session the embedded matrix and the reachability
    pre-computation share the session's caches. *)

val expected_time_to :
  ?tol:float -> ?analysis:Analysis.t -> Chain.t -> psi:(int -> bool) -> Numeric.Vec.t
(** [expected_time_to m ~psi] has entry [s] equal to the expected time to
    reach a [psi] state from [s] ([0.] on [psi] states themselves,
    [infinity] where the hit is not almost sure). *)

val expected_reward_to :
  ?tol:float ->
  ?analysis:Analysis.t ->
  Chain.t ->
  reward:Numeric.Vec.t ->
  psi:(int -> bool) ->
  Numeric.Vec.t
(** Expected reward accumulated (at the per-state rates [reward]) until
    first hitting [psi]. [expected_time_to] is the special case of a
    constant rate 1. *)

val mean_time_from_init :
  ?tol:float -> ?analysis:Analysis.t -> Chain.t -> psi:(int -> bool) -> float
(** Initial-distribution-weighted expected hitting time. *)
