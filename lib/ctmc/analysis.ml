module Vec = Numeric.Vec
module Sparse = Numeric.Sparse
module Multivec = Numeric.Multivec
module Fox_glynn = Numeric.Fox_glynn
module Digraph = Numeric.Digraph

type counters = {
  mutable uniformized_builds : int;
  mutable uniformized_hits : int;
  mutable embedded_builds : int;
  mutable weight_computes : int;
  mutable weight_hits : int;
  mutable steady_solves : int;
  mutable steady_hits : int;
  mutable absorbed_builds : int;
  mutable absorbed_hits : int;
  mutable absorbed_collisions : int;
  mutable mixture_passes : int;
  mutable mixture_steps : int;
  mutable batch_passes : int;
  mutable batch_columns : int;
  mutable lump_builds : int;
  mutable lump_hits : int;
  mutable lumped_states : int;
}

type stats = {
  uniformized_builds : int;
  uniformized_hits : int;
  embedded_builds : int;
  weight_computes : int;
  weight_hits : int;
  steady_solves : int;
  steady_hits : int;
  absorbed_builds : int;
  absorbed_hits : int;
  absorbed_collisions : int;
  mixture_passes : int;
  mixture_steps : int;
  batch_passes : int;
  batch_columns : int;
  lump_builds : int;
  lump_hits : int;
  lumped_states : int;
}

(* Obs registry mirrors of the per-session counters. Sessions keep their
   private always-on ints — the {!stats} compatibility view — and every
   bump also feeds the process-wide registry (a single flag check, one
   atomic increment when metrics are on), aggregating the same events
   across all sessions and domains. *)
let m_uniformized_builds = Obs.Metrics.counter "analysis.uniformized_builds"

let m_uniformized_hits = Obs.Metrics.counter "analysis.uniformized_hits"

let m_embedded_builds = Obs.Metrics.counter "analysis.embedded_builds"

let m_weight_computes = Obs.Metrics.counter "analysis.weight_computes"

let m_weight_hits = Obs.Metrics.counter "analysis.weight_hits"

let m_steady_solves = Obs.Metrics.counter "analysis.steady_solves"

let m_steady_hits = Obs.Metrics.counter "analysis.steady_hits"

let m_absorbed_builds = Obs.Metrics.counter "analysis.absorbed_builds"

let m_absorbed_hits = Obs.Metrics.counter "analysis.absorbed_hits"

let m_absorbed_collisions = Obs.Metrics.counter "analysis.absorbed_collisions"

let m_fg_mass_deficit = Obs.Metrics.gauge "analysis.fg_mass_deficit"

let m_mixture_passes = Obs.Metrics.counter "analysis.mixture_passes"

let m_mixture_steps = Obs.Metrics.counter "analysis.mixture_steps"

let m_batch_passes = Obs.Metrics.counter "analysis.batch_passes"

let m_batch_columns = Obs.Metrics.counter "analysis.batch_columns"

let m_lump_builds = Obs.Metrics.counter "analysis.lump_builds"

let m_lump_hits = Obs.Metrics.counter "analysis.lump_hits"

let m_lumped_states = Obs.Metrics.gauge "analysis.lumped_states"

let m_sweep_len = Obs.Metrics.histogram "analysis.sweep_length"

type t = {
  chain : Chain.t;
  mutable unif : (float * Sparse.t) option;
  mutable emb : Sparse.t option;
  mutable graph : Digraph.t option;
  mutable scc : (int array * int list array) option;
  mutable bscc : int list array option;
  weight_tbl : (float * float, Fox_glynn.t) Hashtbl.t;
  steady_tbl : (float, Vec.t) Hashtbl.t;
  absorbed_named : (string, t) Hashtbl.t;
  (* unnamed absorbed chains, keyed by an FNV-1a hash of the predicate's
     bitmap over the state space; each bucket entry keeps the full bitmap
     only to verify the hit (and to detect hash collisions) *)
  absorbed_pred : (int64, (string * t) list) Hashtbl.t;
  (* lumping quotients, keyed the same way by the dense initial partition *)
  quot_tbl : (int64, (int array * quotient) list) Hashtbl.t;
  counters : counters;
}

and quotient = { lumping : Lumping.result; q : t }

let create chain =
  {
    chain;
    unif = None;
    emb = None;
    graph = None;
    scc = None;
    bscc = None;
    weight_tbl = Hashtbl.create 16;
    steady_tbl = Hashtbl.create 4;
    absorbed_named = Hashtbl.create 8;
    absorbed_pred = Hashtbl.create 8;
    quot_tbl = Hashtbl.create 4;
    counters =
      {
        uniformized_builds = 0;
        uniformized_hits = 0;
        embedded_builds = 0;
        weight_computes = 0;
        weight_hits = 0;
        steady_solves = 0;
        steady_hits = 0;
        absorbed_builds = 0;
        absorbed_hits = 0;
        absorbed_collisions = 0;
        mixture_passes = 0;
        mixture_steps = 0;
        batch_passes = 0;
        batch_columns = 0;
        lump_builds = 0;
        lump_hits = 0;
        lumped_states = 0;
      };
  }

let chain t = t.chain

let wraps t m = t.chain == m

let for_chain analysis m =
  match analysis with Some a when wraps a m -> a | Some _ | None -> create m

let uniformized t =
  match t.unif with
  | Some u ->
      t.counters.uniformized_hits <- t.counters.uniformized_hits + 1;
      Obs.Metrics.incr m_uniformized_hits;
      u
  | None ->
      let u = Chain.uniformized t.chain in
      t.counters.uniformized_builds <- t.counters.uniformized_builds + 1;
      Obs.Metrics.incr m_uniformized_builds;
      t.unif <- Some u;
      u

let embedded t =
  match t.emb with
  | Some e -> e
  | None ->
      let e = Chain.embedded t.chain in
      t.counters.embedded_builds <- t.counters.embedded_builds + 1;
      Obs.Metrics.incr m_embedded_builds;
      t.emb <- Some e;
      e

let graph t =
  match t.graph with
  | Some g -> g
  | None ->
      let g = Digraph.of_sparse (Chain.rates t.chain) in
      t.graph <- Some g;
      g

let sccs t =
  match t.scc with
  | Some s -> s
  | None ->
      let s = Digraph.sccs (graph t) in
      t.scc <- Some s;
      s

let bottom_sccs t =
  match t.bscc with
  | Some b -> b
  | None ->
      let b = Digraph.bottom_sccs (graph t) in
      t.bscc <- Some b;
      b

let is_irreducible t =
  let _, members = sccs t in
  Array.length members = 1

(* Gauss–Seidel update order for an (I - A) system whose row [i] solves
   original state [states.(i)]: rows sorted by the Tarjan component index
   of their state. Component indices are a reverse topological order of
   the condensation (an edge [u -> v] between distinct SCCs has
   [comp u > comp v]), so ascending order updates a state's successors
   before the state itself — on DAG-like subgraphs every dependency chain
   resolves within a single sweep. The full-chain order stays valid for
   any subset of states because restriction cannot add edges. *)
let scc_solve_order t states =
  let comp, _ = sccs t in
  let order = Array.init (Array.length states) (fun i -> i) in
  Array.stable_sort
    (fun a b -> compare comp.(states.(a)) comp.(states.(b)))
    order;
  order

let default_epsilon = 1e-12

(* The weight and steady-state caches are keyed by floats under generic
   equality, where [nan <> nan]: a NaN key could never hit and would
   silently recompute on every call — the exact pathology a long-lived
   session is meant to amortize. Reject non-finite (and non-positive
   tolerance) inputs at the entry points instead. *)
let validate_finite ~what x =
  if not (Float.is_finite x) then
    invalid_arg (Printf.sprintf "%s must be finite (got %h)" what x)

let validate_positive ~what x =
  if not (Float.is_finite x && x > 0.) then
    invalid_arg (Printf.sprintf "%s must be finite and positive (got %h)" what x)

let weights ?(epsilon = default_epsilon) t time =
  validate_positive ~what:"Analysis.weights: epsilon" epsilon;
  validate_finite ~what:"Analysis.weights: time" time;
  let lambda, _ = uniformized t in
  validate_finite ~what:"Analysis.weights: uniformization rate * time"
    (lambda *. time);
  let key = (lambda *. time, epsilon) in
  match Hashtbl.find_opt t.weight_tbl key with
  | Some w ->
      t.counters.weight_hits <- t.counters.weight_hits + 1;
      Obs.Metrics.incr m_weight_hits;
      w
  | None ->
      let w = Fox_glynn.compute ~epsilon (lambda *. time) in
      t.counters.weight_computes <- t.counters.weight_computes + 1;
      Obs.Metrics.incr m_weight_computes;
      Hashtbl.replace t.weight_tbl key w;
      w

let cached_steady t ~tol compute =
  validate_positive ~what:"Analysis.cached_steady: tol" tol;
  match Hashtbl.find_opt t.steady_tbl tol with
  | Some pi ->
      t.counters.steady_hits <- t.counters.steady_hits + 1;
      Obs.Metrics.incr m_steady_hits;
      Vec.copy pi
  | None ->
      let pi = compute () in
      t.counters.steady_solves <- t.counters.steady_solves + 1;
      Obs.Metrics.incr m_steady_solves;
      Hashtbl.replace t.steady_tbl tol (Vec.copy pi);
      pi

(* FNV-1a, 64 bit: cheap streaming hash for predicate bitmaps and
   partition arrays, so unnamed-predicate cache keys cost O(1) storage
   per lookup instead of an O(n) string each time. *)
let fnv_offset = 0xcbf29ce484222325L

let fnv_prime = 0x100000001b3L

let fnv_byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let fnv_int h i =
  let h = fnv_byte h i in
  let h = fnv_byte h (i lsr 8) in
  let h = fnv_byte h (i lsr 16) in
  fnv_byte h (i lsr 24)

let fnv1a64 s =
  let h = ref fnv_offset in
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) s;
  !h

let pred_hash pred n =
  let h = ref fnv_offset in
  for s = 0 to n - 1 do
    h := fnv_byte !h (if pred s then 1 else 0)
  done;
  !h

let pred_bitmap pred n =
  let b = Bytes.create n in
  for s = 0 to n - 1 do
    Bytes.unsafe_set b s (if pred s then '1' else '0')
  done;
  Bytes.unsafe_to_string b

(* compare a stored bitmap against the predicate without re-allocating *)
let pred_matches bitmap pred n =
  String.length bitmap = n
  &&
  let rec go s =
    s >= n || (String.unsafe_get bitmap s = (if pred s then '1' else '0')) && go (s + 1)
  in
  go 0

let absorbed ?name t ~pred =
  match name with
  | Some nm -> (
      match Hashtbl.find_opt t.absorbed_named nm with
      | Some sub ->
          t.counters.absorbed_hits <- t.counters.absorbed_hits + 1;
          Obs.Metrics.incr m_absorbed_hits;
          sub
      | None ->
          let sub = create (Chain.absorbing t.chain ~pred) in
          t.counters.absorbed_builds <- t.counters.absorbed_builds + 1;
          Obs.Metrics.incr m_absorbed_builds;
          Hashtbl.replace t.absorbed_named nm sub;
          sub)
  | None -> (
      let n = Chain.states t.chain in
      let h = pred_hash pred n in
      let bucket =
        match Hashtbl.find_opt t.absorbed_pred h with Some l -> l | None -> []
      in
      match
        List.find_opt (fun (bitmap, _) -> pred_matches bitmap pred n) bucket
      with
      | Some (_, sub) ->
          t.counters.absorbed_hits <- t.counters.absorbed_hits + 1;
          Obs.Metrics.incr m_absorbed_hits;
          sub
      | None ->
          if bucket <> [] then begin
            t.counters.absorbed_collisions <-
              t.counters.absorbed_collisions + 1;
            Obs.Metrics.incr m_absorbed_collisions
          end;
          let sub = create (Chain.absorbing t.chain ~pred) in
          t.counters.absorbed_builds <- t.counters.absorbed_builds + 1;
          Obs.Metrics.incr m_absorbed_builds;
          Hashtbl.replace t.absorbed_pred h
            ((pred_bitmap pred n, sub) :: bucket);
          sub)

(* ------------------------------------------------------------------ *)
(* Lumping quotient sessions                                          *)

type respect =
  | Pred of (int -> bool)
  | Reward of Vec.t
  | Blocks of int array

let initial_partition n respect =
  (* one composite key per state; densified to block ids *)
  let buf = Buffer.create 32 in
  let keys =
    Array.init n (fun s ->
        Buffer.clear buf;
        List.iter
          (fun r ->
            (match r with
            | Pred p -> Buffer.add_char buf (if p s then '1' else '0')
            | Reward v ->
                if Vec.dim v <> n then
                  invalid_arg "Analysis.quotient: reward dimension mismatch";
                Buffer.add_int64_le buf (Int64.bits_of_float v.(s))
            | Blocks b ->
                if Array.length b <> n then
                  invalid_arg "Analysis.quotient: blocks dimension mismatch";
                Buffer.add_string buf (string_of_int b.(s));
                Buffer.add_char buf ';');
            Buffer.add_char buf '|')
          respect;
        Buffer.contents buf)
  in
  Lumping.partition_by_key n (fun s -> keys.(s))

let partition_hash part =
  Array.fold_left fnv_int fnv_offset part

let quotient ?rate_tolerance t ~respect =
  let n = Chain.states t.chain in
  let part = initial_partition n respect in
  let h = partition_hash part in
  let bucket =
    match Hashtbl.find_opt t.quot_tbl h with Some l -> l | None -> []
  in
  match List.find_opt (fun (p, _) -> p = part) bucket with
  | Some (_, quot) ->
      t.counters.lump_hits <- t.counters.lump_hits + 1;
      Obs.Metrics.incr m_lump_hits;
      t.counters.lumped_states <- Chain.states quot.q.chain;
      Obs.Metrics.set_gauge m_lumped_states
        (float_of_int t.counters.lumped_states);
      quot
  | None ->
      let lumping =
        Obs.Trace.with_span "analysis.lump" @@ fun span ->
        let l = Lumping.lump ?rate_tolerance t.chain ~initial:part in
        if Obs.Trace.recording span then begin
          Obs.Trace.add_attr span "states" (Obs.Int n);
          Obs.Trace.add_attr span "blocks"
            (Obs.Int (Chain.states l.Lumping.quotient))
        end;
        l
      in
      t.counters.lump_builds <- t.counters.lump_builds + 1;
      Obs.Metrics.incr m_lump_builds;
      t.counters.lumped_states <- Chain.states lumping.Lumping.quotient;
      Obs.Metrics.set_gauge m_lumped_states
        (float_of_int t.counters.lumped_states);
      let quot = { lumping; q = create lumping.Lumping.quotient } in
      Hashtbl.replace t.quot_tbl h ((part, quot) :: bucket);
      quot

let lift quot v = Lumping.lift quot.lumping v

let project quot v = Lumping.project quot.lumping v

(* Predicates/rewards respected by the quotient are block-constant, so any
   member represents its block. *)
let block_pred quot pred =
  let blocks = quot.lumping.Lumping.blocks in
  fun b -> pred (List.hd blocks.(b))

let block_reward quot reward =
  let blocks = quot.lumping.Lumping.blocks in
  Array.map (fun members -> reward.(List.hd members)) blocks

type dir = Forward | Backward

type coeff = Pmf | Tail_over_lambda

(* The one uniformization kernel behind transient distributions, backward
   value vectors and accumulated rewards:

     sum_{k=0}^{right} c_k v_k   with   v_{k+1} = step(v_k),

   where step is [v P] (Forward) or [P v] (Backward) over the uniformized
   matrix P, and the coefficients are either the truncated Poisson
   probabilities (Pmf: the transient mixture) or the scaled upper tails
   [P(N_{lambda t} >= k+1) / lambda] (Tail_over_lambda: the accumulated-
   reward integral). Steps below the Fox-Glynn window's left edge can have
   zero coefficients but must still be applied.

   The multi-time-point variant shares the vector iteration across all
   requested times: one sweep up to the Fox-Glynn right edge of the latest
   time, with one accumulator and one coefficient stream per distinct
   time. A K-point curve therefore costs one pass of SpMVs (the window of
   t_K) instead of K windowed segments. *)

(* The batched variant generalizes this further: K independent coefficient
   streams — each with its own start vector, coefficient kind and time
   grid — ride one {e blocked} sweep. The K iterates live in a
   {!Multivec.t} and each step is a single blocked SpMV
   ({!Sparse.vec_mul_multi_into} / {!Sparse.mul_multi_into}), so the
   matrix is decoded once per step no matter how many streams ride it. *)

type batch = { start : Vec.t; coeff : coeff; times : float list }

(* per (stream, distinct time) state for the shared sweep *)
type accum = {
  acc : Vec.t;
  coeff_at : int -> float;
  last : int;  (** no non-zero coefficients beyond this step index *)
  col : int;  (** which column of the iterate block feeds this accumulator *)
}

let coefficients t ~coeff w =
  let { Fox_glynn.left; right; weights = wts; _ } = w in
  match coeff with
  | Pmf ->
      let f k = if k >= left && k <= right then wts.(k - left) else 0. in
      (f, right)
  | Tail_over_lambda ->
      let lambda, _ = uniformized t in
      let tail = Fox_glynn.cumulative_tail w in
      let total = Fox_glynn.total_mass w in
      let f k =
        (* P(N >= k + 1) within the truncated window, over lambda *)
        let k1 = k + 1 in
        (if k1 <= left then total
         else if k1 > right then 0.
         else tail.(k1 - left))
        /. lambda
      in
      (f, right - 1)

let poisson_mixture_batch ?epsilon t ~dir batches =
  if batches = [] then []
  else begin
    let n = Chain.states t.chain in
    List.iter
      (fun b ->
        if Vec.dim b.start <> n then
          invalid_arg "Analysis.poisson_mixture_batch: dimension mismatch";
        List.iter
          (fun tm ->
            (* [not (tm >= 0.)] also catches NaN, which would otherwise
               slip past every comparison and surface as a bare
               [Not_found] when the results are assembled *)
            if not (Float.is_finite tm) || tm < 0. then
              invalid_arg
                "Analysis.poisson_mixture_batch: times must be finite and \
                 non-negative")
          b.times)
      batches;
    let barr = Array.of_list batches in
    let width = Array.length barr in
    let distinct =
      Array.map
        (fun b -> List.sort_uniq compare (List.filter (fun tm -> tm > 0.) b.times))
        barr
    in
    let by_time = Array.map (fun ts -> Hashtbl.create (List.length ts + 1)) distinct in
    if Array.exists (fun l -> l <> []) distinct then begin
      Obs.Trace.with_span "analysis.mixture" @@ fun mix_span ->
      let _, p = uniformized t in
      (* phase 1: Fox-Glynn windows + per-(stream, time) coefficient
         streams *)
      (* worst truncation error across the Fox–Glynn windows of this
         pass: 1 - total weight mass inside the [left, right] window *)
      let fg_deficit = ref 0. in
      let accums =
        Obs.Trace.with_span "mixture.weights" @@ fun _ ->
        List.concat
          (List.init width (fun col ->
               List.map
                 (fun tm ->
                   let w = weights ?epsilon t tm in
                   fg_deficit :=
                     Float.max !fg_deficit (1. -. Fox_glynn.total_mass w);
                   let coeff_at, last =
                     coefficients t ~coeff:barr.(col).coeff w
                   in
                   let a = { acc = Vec.zeros n; coeff_at; last; col } in
                   Hashtbl.replace by_time.(col) tm a.acc;
                   a)
                 distinct.(col)))
      in
      let right_max = List.fold_left (fun m a -> max m a.last) 0 accums in
      let total_times =
        Array.fold_left (fun s b -> s + List.length b.times) 0 barr
      in
      t.counters.mixture_passes <- t.counters.mixture_passes + 1;
      Obs.Metrics.incr m_mixture_passes;
      t.counters.batch_passes <- t.counters.batch_passes + 1;
      Obs.Metrics.incr m_batch_passes;
      t.counters.batch_columns <- t.counters.batch_columns + width;
      Obs.Metrics.add m_batch_columns width;
      Obs.Metrics.observe m_sweep_len (float_of_int (right_max + 1));
      Obs.Metrics.set_gauge m_fg_mass_deficit !fg_deficit;
      if Obs.Trace.recording mix_span then begin
        Obs.Trace.add_attr mix_span "states" (Obs.Int n);
        Obs.Trace.add_attr mix_span "batch_width" (Obs.Int width);
        Obs.Trace.add_attr mix_span "times" (Obs.Int total_times);
        Obs.Trace.add_attr mix_span "distinct"
          (Obs.Int (List.length accums));
        Obs.Trace.add_attr mix_span "sweep_length" (Obs.Int (right_max + 1));
        Obs.Trace.add_attr mix_span "spmvs" (Obs.Int right_max);
        Obs.Trace.add_attr mix_span "fg_mass_deficit" (Obs.Float !fg_deficit);
        Obs.Trace.add_attr mix_span "epsilon"
          (Obs.Float (Option.value epsilon ~default:default_epsilon))
      end;
      (* phase 2: the shared blocked sweep (right_max blocked SpMVs, each
         one matrix pass for all [width] streams) *)
      ( Obs.Trace.with_span "mixture.sweep" @@ fun sweep_span ->
        if Obs.Trace.recording sweep_span then
          Obs.Trace.add_attr sweep_span "batch_width" (Obs.Int width);
        let v = ref (Multivec.of_cols (Array.map (fun b -> b.start) barr)) in
        let next = ref (Multivec.create ~dim:n ~width) in
        for k = 0 to right_max do
          List.iter
            (fun a ->
              if k <= a.last then
                let c = a.coeff_at k in
                if c <> 0. then Multivec.axpy_from_col c !v a.col a.acc)
            accums;
          if k < right_max then begin
            (match dir with
            | Forward -> Sparse.vec_mul_multi_into !v p !next
            | Backward -> Sparse.mul_multi_into p !v !next);
            t.counters.mixture_steps <- t.counters.mixture_steps + 1;
            let tmp = !v in
            v := !next;
            next := tmp
          end
        done );
      Obs.Metrics.add m_mixture_steps right_max
    end;
    (* align 1:1 with each stream's time list; duplicates get private
       copies so every returned vector can be mutated independently *)
    List.mapi
      (fun col b ->
        let at_zero () =
          match b.coeff with
          | Pmf -> Vec.copy b.start
          | Tail_over_lambda -> Vec.zeros n
        in
        let handed_out = Hashtbl.create 8 in
        List.map
          (fun tm ->
            if tm = 0. then at_zero ()
            else if Hashtbl.mem handed_out tm then
              Vec.copy (Hashtbl.find by_time.(col) tm)
            else begin
              Hashtbl.add handed_out tm ();
              Hashtbl.find by_time.(col) tm
            end)
          b.times)
      batches
  end

let poisson_mixture_multi ?epsilon t ~dir ~coeff start ~times =
  List.iter
    (fun tm ->
      if tm < 0. then invalid_arg "Analysis.poisson_mixture_multi: negative time")
    times;
  if Vec.dim start <> Chain.states t.chain then
    invalid_arg "Analysis.poisson_mixture_multi: dimension mismatch";
  match poisson_mixture_batch ?epsilon t ~dir [ { start; coeff; times } ] with
  | [ rs ] -> rs
  | _ -> assert false

let poisson_mixture ?epsilon t ~dir ~coeff start ~time =
  if time < 0. then invalid_arg "Analysis.poisson_mixture: negative time";
  if Vec.dim start <> Chain.states t.chain then
    invalid_arg "Analysis.poisson_mixture: dimension mismatch";
  match poisson_mixture_multi ?epsilon t ~dir ~coeff start ~times:[ time ] with
  | [ r ] -> r
  | _ -> assert false

let stats t =
  let c = t.counters in
  {
    uniformized_builds = c.uniformized_builds;
    uniformized_hits = c.uniformized_hits;
    embedded_builds = c.embedded_builds;
    weight_computes = c.weight_computes;
    weight_hits = c.weight_hits;
    steady_solves = c.steady_solves;
    steady_hits = c.steady_hits;
    absorbed_builds = c.absorbed_builds;
    absorbed_hits = c.absorbed_hits;
    absorbed_collisions = c.absorbed_collisions;
    mixture_passes = c.mixture_passes;
    mixture_steps = c.mixture_steps;
    batch_passes = c.batch_passes;
    batch_columns = c.batch_columns;
    lump_builds = c.lump_builds;
    lump_hits = c.lump_hits;
    lumped_states = c.lumped_states;
  }

let pp_stats ppf t =
  let s = stats t in
  Format.fprintf ppf
    "analysis: unif %d built/%d hits, fg %d computed/%d hits, steady %d \
     solved/%d hits, absorbed %d built/%d hits/%d collisions, mixture %d \
     passes/%d steps, batch %d passes/%d columns, lump %d built/%d hits \
     (%d states)"
    s.uniformized_builds s.uniformized_hits s.weight_computes s.weight_hits
    s.steady_solves s.steady_hits s.absorbed_builds s.absorbed_hits
    s.absorbed_collisions s.mixture_passes s.mixture_steps s.batch_passes
    s.batch_columns s.lump_builds s.lump_hits s.lumped_states
