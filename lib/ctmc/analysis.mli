(** Cached analysis sessions over a CTMC.

    The paper's tool chain builds each model once and then checks many
    CSL/CSRL properties against it. The expensive derived artifacts —
    uniformized matrix, Fox–Glynn weight vectors, embedded jump matrix,
    (B)SCC decomposition, steady-state vector, absorbed-chain variants —
    are shared across queries through an analysis session: every query
    module ({!Transient}, {!Reachability}, {!Rewards}, {!Steady_state},
    {!Absorption}) accepts an optional [?analysis] session and memoizes
    what it derives into it, so checking the full measure suite builds the
    uniformized matrix at most once per distinct chain.

    Sessions are not thread-safe; use one per chain per thread. *)

type t

val create : Chain.t -> t
(** A fresh session wrapping [chain]. Nothing is computed up front; every
    derived artifact is built lazily on first demand. *)

val chain : t -> Chain.t
(** The wrapped chain. *)

val wraps : t -> Chain.t -> bool
(** [wraps t m] is true when [t] is a session for exactly (physically) the
    chain [m] — the guard the query modules use before trusting a session
    passed alongside a chain. *)

val for_chain : t option -> Chain.t -> t
(** [for_chain analysis m] is [analysis] when it wraps [m], and a fresh
    throwaway session otherwise — the standard entry-point shim: queries
    without a session behave exactly as before, queries with one share its
    caches. *)

(** {2 Memoized derived artifacts} *)

val uniformized : t -> float * Numeric.Sparse.t
(** [(lambda, P)] as {!Chain.uniformized}, built once per session. *)

val embedded : t -> Numeric.Sparse.t
(** The embedded jump matrix, built once per session. *)

val weights : ?epsilon:float -> t -> float -> Numeric.Fox_glynn.t
(** [weights t time] is the Fox–Glynn weight vector for [lambda * time],
    memoized by [(lambda * time, epsilon)]. [epsilon] defaults to [1e-12]
    (the {!Numeric.Fox_glynn.compute} default). Raises [Invalid_argument]
    on a non-finite [time] or product, or a non-finite / non-positive
    [epsilon] — NaN keys can never hit a float-keyed cache (generic
    equality has [nan <> nan]), so they are rejected at the entry point
    instead of silently recomputing forever. *)

val graph : t -> Numeric.Digraph.t
(** The transition digraph, built once per session. *)

val sccs : t -> int array * int list array
(** {!Numeric.Digraph.sccs} of {!graph}, computed once per session. *)

val bottom_sccs : t -> int list array
(** The recurrent classes, computed once per session. *)

val is_irreducible : t -> bool

val scc_solve_order : t -> int array -> int array
(** [scc_solve_order t states] is a Gauss–Seidel update order (a
    permutation of [0 .. Array.length states - 1]) for an [(I - A)]
    linear system whose row [i] concerns original state [states.(i)]:
    rows sorted by the Tarjan component index of their state (ties keep
    the natural order). Since component indices reverse-topologically
    order the condensation, ascending order updates a state's successors
    before the state itself, which collapses the sweep count on DAG-like
    subgraphs (e.g. reachability systems of acyclic reliability models).
    Uses the session-cached {!sccs}. *)

val cached_steady : t -> tol:float -> (unit -> Numeric.Vec.t) -> Numeric.Vec.t
(** [cached_steady t ~tol compute] returns the memoized steady-state vector
    for tolerance [tol], running [compute] only on the first call. The
    result is a private copy; callers may mutate it freely. (The solver
    lives in {!Steady_state}, which sits above this module; the session
    only owns the storage.) Raises [Invalid_argument] on a non-finite or
    non-positive [tol] (a NaN key would miss the float-keyed cache on
    every call). *)

val fnv1a64 : string -> int64
(** 64-bit FNV-1a hash of a string — the same streaming hash the session
    caches use for predicate bitmaps, exposed for content-addressing whole
    inputs (e.g. the analysis daemon keys its model-session cache on the
    hash of the XML source). *)

val absorbed : ?name:string -> t -> pred:(int -> bool) -> t
(** [absorbed t ~pred] is the sub-session for [Chain.absorbing chain ~pred]
    (the transformed chain bounded-until model checking runs on), memoized
    so repeated queries against the same target set reuse one absorbed
    chain and its uniformized matrix. Keyed by [name] when given (the
    caller vouches that equal names mean equal predicates); otherwise by a
    64-bit FNV-1a hash of the predicate's bitmap over the state space, with
    the full bitmap stored once per entry and re-checked on every hash hit,
    so distinct predicates can never be confused — a hash collision only
    costs one extra comparison (counted in [absorbed_collisions]). *)

(** {2 Lumping quotient sessions} *)

type respect =
  | Pred of (int -> bool)
      (** states differing under the predicate stay separate — required for
          any label/target set the caller will evaluate on the quotient *)
  | Reward of Numeric.Vec.t
      (** states with different reward stay separate, so block-constant
          reward structures project exactly *)
  | Blocks of int array
      (** an explicit pre-partition (e.g. from {!Lumping.partition_by_key}) *)

type quotient = {
  lumping : Lumping.result;
  q : t;  (** analysis session over the quotient chain, with its own caches *)
}

val quotient : ?rate_tolerance:float -> t -> respect:respect list -> quotient
(** [quotient t ~respect] lumps the session's chain with {!Lumping.lump},
    starting from the coarsest partition that separates states
    distinguished by any [respect] entry, and wraps the quotient chain in
    its own cached analysis session. Memoized by the initial partition
    (FNV-hashed, verified on hit), so every measure that respects the same
    labels shares one lumping and one set of quotient caches.
    [rate_tolerance] is passed through to {!Lumping.lump}. *)

val lift : quotient -> Numeric.Vec.t -> Numeric.Vec.t
(** Expand a per-block vector (e.g. a backward value vector computed on the
    quotient) to a per-original-state vector. Exact for ordinary
    lumpability. *)

val project : quotient -> Numeric.Vec.t -> Numeric.Vec.t
(** Sum a per-original-state vector (e.g. an initial distribution) down to
    blocks. *)

val block_pred : quotient -> (int -> bool) -> int -> bool
(** [block_pred quot pred] is [pred] over quotient states. Only meaningful
    when [pred] was respected when building [quot] (it is then
    block-constant); evaluated on one representative per block. *)

val block_reward : quotient -> Numeric.Vec.t -> Numeric.Vec.t
(** [block_reward quot reward] is the reward structure over quotient
    states; requires [Reward reward] (or a refinement of it) among the
    respected structures. *)

(** {2 The shared uniformization kernel} *)

type dir = Forward | Backward

type coeff =
  | Pmf  (** Poisson probabilities: transient mixtures. *)
  | Tail_over_lambda
      (** [P(N >= k+1) / lambda]: the accumulated-reward integral. *)

val poisson_mixture :
  ?epsilon:float -> t -> dir:dir -> coeff:coeff -> Numeric.Vec.t -> time:float -> Numeric.Vec.t
(** [poisson_mixture t ~dir ~coeff start ~time] is
    [sum_k c_k v_k] with [v_0 = start] and [v_{k+1} = v_k P] ([Forward])
    or [P v_k] ([Backward]) over the uniformized matrix, [c_k] given by
    [coeff], and [k] ranging over the Fox–Glynn window for
    [lambda * time]. This one kernel implements forward transient
    distributions, backward value vectors (bounded until) and accumulated
    rewards. [time = 0] yields a copy of [start] ([Pmf]) or zeros
    ([Tail_over_lambda]). Raises [Invalid_argument] on a negative time or
    a dimension mismatch. *)

val poisson_mixture_multi :
  ?epsilon:float ->
  t ->
  dir:dir ->
  coeff:coeff ->
  Numeric.Vec.t ->
  times:float list ->
  Numeric.Vec.t list
(** Multi-time-point variant of {!poisson_mixture}: evaluates the mixture
    at every time in [times] with {e one} shared vector-iteration sweep.
    The sweep runs to the Fox–Glynn right edge of the latest time and
    maintains one accumulator per distinct time, so a K-point curve costs
    roughly the SpMVs of its last point instead of K windowed segments.

    The result list is aligned 1:1 with [times]: the caller's order is
    preserved, [times] need not be sorted, and duplicates each get their
    own (independently mutable) vector. An empty [times] yields [[]].
    Raises [Invalid_argument] on any negative time or on a dimension
    mismatch. *)

type batch = {
  start : Numeric.Vec.t;  (** this stream's [v_0] *)
  coeff : coeff;
  times : float list;  (** evaluation grid, as in {!poisson_mixture_multi} *)
}
(** One coefficient stream of a batched sweep. *)

val poisson_mixture_batch :
  ?epsilon:float -> t -> dir:dir -> batch list -> Numeric.Vec.t list list
(** [poisson_mixture_batch t ~dir batches] evaluates K independent
    mixture streams — each with its own start vector, coefficient kind
    and time grid, but sharing the chain and direction — with {e one}
    blocked sweep: the K iterates form a {!Numeric.Multivec.t} and every
    step is a single blocked SpMV, so the matrix is decoded once per step
    for all K streams (this is how an instantaneous- and an
    accumulated-cost curve, or several initial distributions, ride one
    uniformization). The sweep runs to the largest Fox–Glynn right edge
    across all streams; streams with shorter windows simply stop
    accumulating early. Results align 1:1 with [batches] and with each
    stream's [times] (same duplicate/zero-time semantics as
    {!poisson_mixture_multi}). [poisson_mixture_multi] is the
    single-stream special case and delegates here. *)

(** {2 Instrumentation} *)

type stats = {
  uniformized_builds : int;
  uniformized_hits : int;
  embedded_builds : int;
  weight_computes : int;
  weight_hits : int;
  steady_solves : int;
  steady_hits : int;
  absorbed_builds : int;
  absorbed_hits : int;
  absorbed_collisions : int;
      (** hash-bucket collisions among unnamed absorbed predicates — a
          nonzero value is harmless (the bitmap check catches it) but worth
          watching *)
  mixture_passes : int;
      (** sweeps of the shared uniformization kernel ({!poisson_mixture} /
          {!poisson_mixture_multi} invocations that did numerical work) *)
  mixture_steps : int;
      (** matrix passes performed across all kernel sweeps (a blocked step
          counts once however many streams ride it) — the observable a
          multi-point curve saves on versus per-point segments *)
  batch_passes : int;
      (** {!poisson_mixture_batch} sweeps that did numerical work
          (including the single-stream ones delegated from
          {!poisson_mixture_multi}) *)
  batch_columns : int;
      (** total stream count across those sweeps; [batch_columns /
          batch_passes] is the mean batch width *)
  lump_builds : int;  (** lumpings computed by {!quotient} *)
  lump_hits : int;  (** {!quotient} calls served from the memo table *)
  lumped_states : int;
      (** state count of the most recent quotient chain (0 when {!quotient}
          was never called) *)
}
(** Cache-effectiveness counters for this session alone (sub-sessions from
    {!absorbed} keep their own). Exposed so tests can assert that repeated
    queries do not rebuild artifacts, and so the bench can report hit
    rates and kernel work.

    {b Observability.} These counters are the compatibility view of the
    {!Obs.Metrics} registry: every bump also feeds the process-wide
    [analysis.*] instruments (counters of the same names,
    [analysis.lumped_states] as a gauge, plus an [analysis.sweep_length]
    histogram), which aggregate across {e all} sessions and domains. With
    metrics enabled, a fresh registry and a single fresh session therefore
    agree field by field. When tracing is on, {!poisson_mixture_batch}
    (and hence {!poisson_mixture_multi}) runs under an [analysis.mixture]
    span (with [states]/[batch_width]/[times]/[sweep_length]/[spmvs]
    attributes) with [mixture.weights] and [mixture.sweep] child phases
    ([mixture.sweep] carries [batch_width] too), and {!quotient} builds
    under an [analysis.lump] span. *)

val stats : t -> stats

val pp_stats : Format.formatter -> t -> unit
(** One-line build/hit summary. *)
