module Vec = Numeric.Vec
module Sparse = Numeric.Sparse

type result = {
  block_of : int array;
  blocks : int list array;
  quotient : Chain.t;
}

let partition_by_key n key =
  let table = Hashtbl.create 16 in
  let next = ref 0 in
  Array.init n (fun s ->
      let k = key s in
      match Hashtbl.find_opt table k with
      | Some b -> b
      | None ->
          let b = !next in
          incr next;
          Hashtbl.replace table k b;
          b)

let block_members block_of n_blocks =
  let blocks = Array.make n_blocks [] in
  for s = Array.length block_of - 1 downto 0 do
    blocks.(block_of.(s)) <- s :: blocks.(block_of.(s))
  done;
  blocks

(* Two accumulated rates are "the same" when they differ by no more than an
   absolute floor plus a relative tolerance — an explicit predicate instead
   of rounding to a decade-scaled grid. Grid rounding split exactly-lumpable
   states whose (floating-point) sums landed on opposite sides of a rounding
   boundary or of the 10^k scale cut; a gap predicate has no boundaries, it
   only asks whether the two values are close. *)
let rates_close ~abs_tol ~rel_tol a b =
  Float.abs (a -. b)
  <= abs_tol +. (rel_tol *. Float.max (Float.abs a) (Float.abs b))

(* Splitter-based partition refinement (Valmari & Franceschinis, "Simple
   O(m log n) Time Markov Chain Lumping"). We refine with respect to the
   generator Q (off-diagonal rates plus the -exit diagonal): for states s,
   s' of one block, ordinary lumpability demands equal rate sums into every
   OTHER block, and since each generator row sums to zero this is
   equivalent to equal Q-weight into EVERY block, own block included —
   which is exactly the stability the splitter loop maintains, with no
   own-block special case to break the "all but the largest sub-block"
   worklist rule.

   The partition lives in a refinable-partition structure: [elems] holds
   the states grouped by block, [loc] the position of each state in
   [elems], [first]/[past] the block boundaries. Splitting a block moves
   its marked states to the front of its segment and carves new blocks off
   that prefix. *)

type partition = {
  mutable n_blocks : int;
  elems : int array;
  loc : int array;
  block_of : int array;
  first : int array; (* indexed by block; capacity n *)
  past : int array;
}

let partition_of_initial initial n_blocks0 =
  let n = Array.length initial in
  let counts = Array.make n_blocks0 0 in
  Array.iter (fun b -> counts.(b) <- counts.(b) + 1) initial;
  let first = Array.make n 0 and past = Array.make n 0 in
  let offset = ref 0 in
  for b = 0 to n_blocks0 - 1 do
    first.(b) <- !offset;
    past.(b) <- !offset;
    offset := !offset + counts.(b)
  done;
  let elems = Array.make n 0 and loc = Array.make n 0 in
  Array.iteri
    (fun s b ->
      let p = past.(b) in
      elems.(p) <- s;
      loc.(s) <- p;
      past.(b) <- p + 1)
    initial;
  { n_blocks = n_blocks0; elems; loc; block_of = Array.copy initial; first; past }

let block_size p b = p.past.(b) - p.first.(b)

(* Swap state [s] into position [pos] of [elems]. *)
let swap_to p s pos =
  let cur = p.loc.(s) in
  if cur <> pos then begin
    let other = p.elems.(pos) in
    p.elems.(pos) <- s;
    p.elems.(cur) <- other;
    p.loc.(s) <- pos;
    p.loc.(other) <- cur
  end

let lump ?(rate_tolerance = 1e-9) ?(abs_tolerance = 1e-12) m ~initial =
  let n = Chain.states m in
  if Array.length initial <> n then invalid_arg "Lumping.lump: partition size";
  let n_blocks0 = Array.fold_left max (-1) initial + 1 in
  Array.iter
    (fun b ->
      if b < 0 || b >= n_blocks0 then
        invalid_arg "Lumping.lump: block ids not dense")
    initial;
  let seen = Array.make (max n_blocks0 1) false in
  Array.iter (fun b -> seen.(b) <- true) initial;
  Array.iter
    (fun present ->
      if not present then invalid_arg "Lumping.lump: block ids not dense")
    seen;
  if rate_tolerance < 0. || abs_tolerance < 0. then
    invalid_arg "Lumping.lump: negative tolerance";
  let close = rates_close ~abs_tol:abs_tolerance ~rel_tol:rate_tolerance in
  (* incoming generator edges: qt.(row j) holds (i, Q(i,j)) *)
  let qt = Sparse.transpose (Chain.generator m) in
  let p = partition_of_initial initial n_blocks0 in
  (* worklist of splitter blocks; on_worklist avoids duplicates *)
  let worklist = Queue.create () in
  let on_worklist = Array.make n false in
  let push b =
    if not on_worklist.(b) then begin
      on_worklist.(b) <- true;
      Queue.add b worklist
    end
  in
  for b = 0 to n_blocks0 - 1 do
    push b
  done;
  (* per-state accumulated weight into the current splitter *)
  let w = Array.make n 0. in
  let is_touched = Array.make n false in
  let touched = ref [] in
  (* scratch: touched blocks and their marked counts *)
  let marked = Array.make n 0 in
  let touched_blocks = ref [] in
  while not (Queue.is_empty worklist) do
    let sp = Queue.pop worklist in
    on_worklist.(sp) <- false;
    (* 1. accumulate Q-weights into the splitter *)
    for pos = p.first.(sp) to p.past.(sp) - 1 do
      let j = p.elems.(pos) in
      Sparse.iter_row qt j (fun i q ->
          if not is_touched.(i) then begin
            is_touched.(i) <- true;
            w.(i) <- 0.;
            touched := i :: !touched
          end;
          w.(i) <- w.(i) +. q)
    done;
    (* 2. move touched states to the front of their blocks *)
    List.iter
      (fun s ->
        let b = p.block_of.(s) in
        if marked.(b) = 0 then touched_blocks := b :: !touched_blocks;
        swap_to p s (p.first.(b) + marked.(b));
        marked.(b) <- marked.(b) + 1)
      !touched;
    (* 3. split every touched block by weight *)
    List.iter
      (fun b ->
        let mfirst = p.first.(b) in
        let mcount = marked.(b) in
        marked.(b) <- 0;
        let has_rest = mfirst + mcount < p.past.(b) in
        (* group the marked prefix by weight: sort, then cut where the gap
           between neighbours exceeds the tolerance *)
        let ms = Array.sub p.elems mfirst mcount in
        Array.sort (fun a c -> Float.compare w.(a) w.(c)) ms;
        let groups = ref [] and cur = ref [ ms.(0) ] in
        for i = 1 to mcount - 1 do
          if close w.(ms.(i - 1)) w.(ms.(i)) then cur := ms.(i) :: !cur
          else begin
            groups := !cur :: !groups;
            cur := [ ms.(i) ]
          end
        done;
        groups := !cur :: !groups;
        (* a group indistinguishable from weight 0 stays with the unmarked
           remainder (which has weight 0 by construction) *)
        let zero_like g = close w.(List.hd g) 0. in
        let stay, split_off =
          if has_rest then List.partition zero_like !groups else ([], !groups)
        in
        (* lay the groups that split off back at the front, then carve *)
        let pos = ref mfirst in
        let place g =
          List.iter
            (fun s ->
              swap_to p s !pos;
              incr pos)
            g
        in
        List.iter place split_off;
        List.iter place stay;
        match split_off with
        | [] -> ()
        | _ ->
            let keep_first = not has_rest && stay = [] in
            (* when nothing remains of b beyond the groups, the first group
               keeps b's identity; otherwise the remainder does *)
            let carve_from = ref mfirst in
            let sizes = ref [] in
            List.iteri
              (fun gi g ->
                let len = List.length g in
                if gi = 0 && keep_first then begin
                  (* group 0 keeps block id b at [mfirst, mfirst+len) *)
                  carve_from := mfirst + len;
                  sizes := (b, len) :: !sizes
                end
                else begin
                  let nb = p.n_blocks in
                  p.n_blocks <- nb + 1;
                  p.first.(nb) <- !carve_from;
                  p.past.(nb) <- !carve_from + len;
                  List.iter (fun s -> p.block_of.(s) <- nb) g;
                  carve_from := !carve_from + len;
                  sizes := (nb, len) :: !sizes
                end)
              split_off;
            (* shrink b to the remainder (or to group 0 when keep_first) *)
            if keep_first then begin
              (* b's segment is [mfirst, mfirst + |group0|) *)
              p.past.(b) <- p.first.(b) + snd (List.hd (List.rev !sizes))
            end
            else begin
              p.first.(b) <- !carve_from;
              sizes := (b, block_size p b) :: !sizes
            end;
            (* worklist rule: if b is pending, all parts must be processed;
               otherwise all but one largest part *)
            if on_worklist.(b) then
              List.iter (fun (blk, _) -> push blk) !sizes
            else begin
              let largest, _ =
                List.fold_left
                  (fun (bl, sz) (blk, s) -> if s > sz then (blk, s) else (bl, sz))
                  (-1, -1) !sizes
              in
              List.iter (fun (blk, _) -> if blk <> largest then push blk) !sizes
            end)
      !touched_blocks;
    (* 4. reset scratch *)
    List.iter (fun s -> is_touched.(s) <- false) !touched;
    touched := [];
    touched_blocks := []
  done;
  (* renumber blocks densely in state order for a stable result *)
  let renumber = Array.make p.n_blocks (-1) in
  let n_blocks = ref 0 in
  let block_of =
    Array.init n (fun s ->
        let b = p.block_of.(s) in
        if renumber.(b) < 0 then begin
          renumber.(b) <- !n_blocks;
          incr n_blocks
        end;
        renumber.(b))
  in
  let n_blocks = !n_blocks in
  let blocks = block_members block_of n_blocks in
  (* quotient rates: any member serves as representative *)
  let b = Sparse.Builder.create ~rows:n_blocks ~cols:n_blocks in
  Array.iteri
    (fun blk members ->
      match members with
      | [] -> ()
      | rep :: _ ->
          let per_block = Hashtbl.create 8 in
          Sparse.iter_row (Chain.rates m) rep (fun j r ->
              let tb = block_of.(j) in
              if tb <> blk then begin
                let cur = try Hashtbl.find per_block tb with Not_found -> 0. in
                Hashtbl.replace per_block tb (cur +. r)
              end);
          Hashtbl.iter (fun tb r -> Sparse.Builder.add b blk tb r) per_block)
    blocks;
  let init = Vec.zeros n_blocks in
  Array.iteri
    (fun s pr -> init.(block_of.(s)) <- init.(block_of.(s)) +. pr)
    (Chain.initial m);
  let quotient = Chain.make ~init (Sparse.Builder.to_csr b) in
  { block_of; blocks; quotient }

let lift (r : result) v =
  let n = Array.length r.block_of in
  if Vec.dim v <> Array.length r.blocks then invalid_arg "Lumping.lift: dimension";
  Array.init n (fun s -> v.(r.block_of.(s)))

let project (r : result) v =
  let nb = Array.length r.blocks in
  if Vec.dim v <> Array.length r.block_of then invalid_arg "Lumping.project: dimension";
  let out = Vec.zeros nb in
  Array.iteri (fun s x -> out.(r.block_of.(s)) <- out.(r.block_of.(s)) +. x) v;
  out
