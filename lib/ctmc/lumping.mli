(** Strong (ordinary) lumpability: CTMC state-space minimization.

    Splitter-based partition refinement (Valmari–Franceschinis worklist,
    O(m log n)): starting from a caller-supplied partition (states that must
    stay distinguishable, e.g. because they carry different labels or
    rewards), blocks are split until every state in a block has the same
    total rate into every other block. Rate sums are compared with an
    explicit absolute/relative tolerance predicate — two sums are equal when
    [|a - b| <= abs_tolerance + rate_tolerance * max |a| |b|] — not by
    rounding to a grid, so exactly-lumpable states can never be separated by
    a rounding boundary. The quotient chain preserves all transient and
    steady-state measures of block-constant predicates — the minimization
    the Arcade paper names as future work. *)

type result = {
  block_of : int array; (** block index of each original state *)
  blocks : int list array; (** members of each block *)
  quotient : Chain.t; (** lumped chain; state [b] represents block [b] *)
}

val partition_by_key : int -> (int -> string) -> int array
(** [partition_by_key n key] groups states [0..n-1] by [key]; returns the
    block index per state (dense, starting at 0). *)

val lump :
  ?rate_tolerance:float ->
  ?abs_tolerance:float ->
  Chain.t ->
  initial:int array ->
  result
(** [lump m ~initial] refines [initial] to the coarsest strongly lumpable
    partition and builds the quotient. [initial.(s)] is the block of state
    [s]; blocks must be numbered densely from 0. The quotient's initial
    distribution aggregates the original one. Two block-rate sums are
    considered equal when they differ by at most
    [abs_tolerance + rate_tolerance * max |a| |b|] (defaults [1e-12] and
    [1e-9]): the tolerances absorb float summation noise only — there is no
    grid, so no boundary can split exactly-lumpable states. Raises
    [Invalid_argument] on a non-dense partition, a size mismatch or a
    negative tolerance. *)

val lift : result -> Numeric.Vec.t -> Numeric.Vec.t
(** [lift r v] expands a per-block vector to a per-original-state vector. *)

val project : result -> Numeric.Vec.t -> Numeric.Vec.t
(** [project r v] sums a per-original-state vector to a per-block vector. *)
