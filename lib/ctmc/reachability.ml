module Vec = Numeric.Vec
module Sparse = Numeric.Sparse

let indicator n pred =
  Array.init n (fun s -> if pred s then 1. else 0.)

(* The transformed chain bounded-until model checking runs on, plus its
   sub-session when a session is available (so repeated queries against the
   same [phi]/[psi] reuse one absorbed chain and uniformized matrix). *)
let absorb ?analysis m ~pred =
  match analysis with
  | Some a when Analysis.wraps a m ->
      let sub = Analysis.absorbed a ~pred in
      (Analysis.chain sub, Some sub)
  | Some _ | None -> (Chain.absorbing m ~pred, None)

let absorb_for_until ?analysis m ~phi ~psi =
  absorb ?analysis m ~pred:(fun s -> psi s || not (phi s))

(* Lumping note: the quotient of the absorbed chain must respect [psi] —
   otherwise the absorbing psi states could merge with absorbing
   not-phi states (both have all-zero generator rows) and the target
   mass would be wrong. [Transient.probability_at ~lump] /
   [Transient.backward ~lump] respect exactly the predicate/vector they
   evaluate, which is psi (or its indicator), so that is guaranteed. *)

let bounded_until ?epsilon ?lump ?analysis m ~phi ~psi ~bound =
  if bound < 0. then invalid_arg "Reachability.bounded_until: negative bound";
  let m', sub = absorb_for_until ?analysis m ~phi ~psi in
  let goal = indicator (Chain.states m) psi in
  Transient.backward ?epsilon ?lump ?analysis:sub m' goal bound

let bounded_until_from_init ?epsilon ?lump ?analysis m ~phi ~psi ~bound =
  if bound < 0. then invalid_arg "Reachability.bounded_until: negative bound";
  let m', sub = absorb_for_until ?analysis m ~phi ~psi in
  Transient.probability_at ?epsilon ?lump ?analysis:sub m' ~pred:psi bound

let bounded_until_curve ?epsilon ?(lump = false) ?analysis m ~phi ~psi ~bounds =
  let m', sub = absorb_for_until ?analysis m ~phi ~psi in
  let qa, quot =
    if lump then begin
      let a = Analysis.for_chain sub m' in
      let quot = Analysis.quotient a ~respect:[ Analysis.Pred psi ] in
      (Some quot.Analysis.q, Some quot)
    end
    else (sub, None)
  in
  let m'', psi'' =
    match quot with
    | Some quot -> (Analysis.chain quot.Analysis.q, Analysis.block_pred quot psi)
    | None -> (m', psi)
  in
  let points = Transient.curve ?epsilon ?analysis:qa m'' ~times:bounds in
  (* evaluate psi once per state, not once per (state, point) *)
  let psi_states =
    let n = Chain.states m'' in
    let idx = ref [] in
    for s = n - 1 downto 0 do
      if psi'' s then idx := s :: !idx
    done;
    Array.of_list !idx
  in
  let mass pi =
    Array.fold_left (fun acc s -> acc +. pi.(s)) 0. psi_states
  in
  List.map (fun (t, pi) -> (t, mass pi)) points

let interval_until ?epsilon ?analysis m ~phi ~psi ~lower ~upper =
  if lower < 0. || upper < lower then
    invalid_arg "Reachability.interval_until: bad interval";
  if lower = 0. then bounded_until ?epsilon ?analysis m ~phi ~psi ~bound:upper
  else begin
    let w = bounded_until ?epsilon ?analysis m ~phi ~psi ~bound:(upper -. lower) in
    (* during [0, lower) the path must stay inside phi; leaving phi zeroes
       the continuation value *)
    let w' = Array.mapi (fun s v -> if phi s then v else 0.) w in
    let m1, sub1 = absorb ?analysis m ~pred:(fun s -> not (phi s)) in
    let v = Transient.backward ?epsilon ?analysis:sub1 m1 w' lower in
    Array.mapi (fun s x -> if phi s then x else 0.) v
  end

(* Unbounded until over the embedded DTMC. States are classified as:
   - psi: probability 1;
   - "maybe": phi, not psi, and some psi state is reachable through phi
     states: solve (I - A) x = b where A is the embedded matrix restricted
     to maybe states and b the one-step probability into psi;
   - everything else: probability 0. *)
let unbounded_until ?(tol = 1e-13) ?(scc_order = true) ?analysis m ~phi ~psi =
  let n = Chain.states m in
  let result = Vec.zeros n in
  (* graph restricted to edges leaving phi-and-not-psi states *)
  let g = Numeric.Digraph.create n in
  Sparse.iteri (Chain.rates m) (fun i j _ ->
      if phi i && not (psi i) then Numeric.Digraph.add_edge g i j);
  let targets = ref [] in
  for s = 0 to n - 1 do
    if psi s then targets := s :: !targets
  done;
  let can_reach = Numeric.Digraph.coreachable g !targets in
  let maybe = Array.init n (fun s -> (not (psi s)) && phi s && can_reach.(s)) in
  let index = Array.make n (-1) in
  let count = ref 0 in
  for s = 0 to n - 1 do
    if maybe.(s) then begin
      index.(s) <- !count;
      incr count
    end
  done;
  let nm = !count in
  for s = 0 to n - 1 do
    if psi s then result.(s) <- 1.
  done;
  if nm > 0 then begin
    let a = Analysis.for_chain analysis m in
    let emb = Analysis.embedded a in
    (* (I - A) x = b *)
    let b = Sparse.Builder.create ~rows:nm ~cols:nm in
    let rhs = Vec.zeros nm in
    let states = Array.make nm 0 in
    for s = 0 to n - 1 do
      if maybe.(s) then begin
        states.(index.(s)) <- s;
        Sparse.Builder.add b index.(s) index.(s) 1.;
        Sparse.iter_row emb s (fun j p ->
            if psi j then rhs.(index.(s)) <- rhs.(index.(s)) +. p
            else if maybe.(j) then Sparse.Builder.add b index.(s) index.(j) (-.p))
      end
    done;
    (* sweeping successors-first (SCC topological order) collapses the
       iteration count on DAG-like phi-regions *)
    let order = if scc_order then Some (Analysis.scc_solve_order a states) else None in
    let x, _ =
      Numeric.Solver.solve_gauss_seidel ~tol ?order (Sparse.Builder.to_csr b) rhs
    in
    for s = 0 to n - 1 do
      if maybe.(s) then result.(s) <- x.(index.(s))
    done
  end;
  result

let eventually ?tol ?scc_order ?analysis m ~psi =
  unbounded_until ?tol ?scc_order ?analysis m ~phi:(fun _ -> true) ~psi
