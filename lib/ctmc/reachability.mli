(** Probabilistic reachability: the engine behind CSL's until operators.

    [bounded_until] implements the standard CSL reduction (Baier et al.):
    make all [not phi and not psi] states and all [psi] states absorbing, then
    the probability of [phi U<=t psi] from state [s] equals the probability
    of sitting in a [psi] state at time [t] in the modified chain.
    [unbounded_until] solves the linear system over the embedded DTMC.

    With an [?analysis] session the absorbed chain (and its uniformized
    matrix) is memoized per target set via {!Analysis.absorbed}, and the
    embedded matrix of the unbounded case is shared. *)

val bounded_until :
  ?epsilon:float ->
  ?lump:bool ->
  ?analysis:Analysis.t ->
  Chain.t ->
  phi:(int -> bool) ->
  psi:(int -> bool) ->
  bound:float ->
  Numeric.Vec.t
(** Per-state probability of [phi U<=bound psi]. With [~lump:true] the
    vector iteration runs on the psi-respecting lumping quotient of the
    absorbed chain ({!Analysis.quotient}) and the per-block values are
    lifted back — exact, and faster whenever the quotient is smaller. *)

val bounded_until_from_init :
  ?epsilon:float ->
  ?lump:bool ->
  ?analysis:Analysis.t ->
  Chain.t ->
  phi:(int -> bool) ->
  psi:(int -> bool) ->
  bound:float ->
  float
(** The same probability weighted by the chain's initial distribution. *)

val bounded_until_curve :
  ?epsilon:float ->
  ?lump:bool ->
  ?analysis:Analysis.t ->
  Chain.t ->
  phi:(int -> bool) ->
  psi:(int -> bool) ->
  bounds:float list ->
  (float * float) list
(** [bounded_until_curve m ~phi ~psi ~bounds] evaluates
    {!bounded_until_from_init} at each time bound, sharing one forward
    uniformization sweep across all bounds
    ({!Analysis.poisson_mixture_multi}). The result is aligned 1:1 with
    [bounds]: order is preserved and duplicates each yield a point. *)

val interval_until :
  ?epsilon:float ->
  ?analysis:Analysis.t ->
  Chain.t ->
  phi:(int -> bool) ->
  psi:(int -> bool) ->
  lower:float ->
  upper:float ->
  Numeric.Vec.t
(** Per-state probability of [phi U[lower,upper] psi]: reach a [psi] state
    at some time in the closed interval, staying in [phi] states throughout
    [0, lower) and from then until [psi] is hit. Implemented as the
    composition of a [phi]-constrained transient phase over [0, lower] and
    a bounded until over [upper - lower] (Baier et al.). *)

val unbounded_until :
  ?tol:float ->
  ?scc_order:bool ->
  ?analysis:Analysis.t ->
  Chain.t ->
  phi:(int -> bool) ->
  psi:(int -> bool) ->
  Numeric.Vec.t
(** Per-state probability of [phi U psi] (no time bound). Exact 0 states
    (cannot reach [psi] within [phi]) are identified graph-theoretically
    before solving, so the linear system is non-singular. [scc_order]
    (default [true]) sweeps the Gauss–Seidel solve in SCC topological
    order ({!Analysis.scc_solve_order}), which converges in a handful of
    sweeps on DAG-like models; pass [false] for the natural state order
    (same fixpoint, more sweeps). *)

val eventually :
  ?tol:float ->
  ?scc_order:bool ->
  ?analysis:Analysis.t ->
  Chain.t ->
  psi:(int -> bool) ->
  Numeric.Vec.t
(** [eventually m ~psi] is [unbounded_until m ~phi:(fun _ -> true) ~psi]. *)
