module Vec = Numeric.Vec

type structure = Vec.t

let check_reward m reward =
  if Vec.dim reward <> Chain.states m then
    invalid_arg "Rewards: reward structure dimension mismatch"

(* With [~lump:true] every operator runs its vector iteration on the
   quotient that respects the reward structure, so the structure is
   block-constant and expectations against the aggregated distribution are
   exact. Returns the quotient session, chain and per-block reward. *)
let lumped analysis m ~reward =
  let a = Analysis.for_chain analysis m in
  let quot = Analysis.quotient a ~respect:[ Analysis.Reward reward ] in
  let qa = quot.Analysis.q in
  (qa, Analysis.chain qa, Analysis.block_reward quot reward)

let instantaneous ?epsilon ?(lump = false) ?analysis m ~reward ~at =
  check_reward m reward;
  let analysis, m, reward =
    if lump then
      let qa, qm, qr = lumped analysis m ~reward in
      (Some qa, qm, qr)
    else (analysis, m, reward)
  in
  let pi = Transient.distribution ?epsilon ?analysis m at in
  Vec.dot pi reward

let instantaneous_curve ?epsilon ?(lump = false) ?analysis m ~reward ~times =
  check_reward m reward;
  let analysis, m, reward =
    if lump then
      let qa, qm, qr = lumped analysis m ~reward in
      (Some qa, qm, qr)
    else (analysis, m, reward)
  in
  let points = Transient.curve ?epsilon ?analysis m ~times in
  List.map (fun (t, pi) -> (t, Vec.dot pi reward)) points

(* E[int_0^t rho(X_u) du] from start distribution [start]:
     sum_{k>=0} (1/lambda) * P(N_{lambda t} >= k+1) * (v_k . rho)
   which is the Tail_over_lambda mixture dotted with rho; the loop is the
   shared Analysis.poisson_mixture kernel. *)
let accumulated_from ?epsilon a start ~reward t =
  if t < 0. then invalid_arg "Rewards.accumulated: negative time";
  if t = 0. then 0.
  else
    let weighted =
      Analysis.poisson_mixture ?epsilon a ~dir:Analysis.Forward
        ~coeff:Analysis.Tail_over_lambda start ~time:t
    in
    Vec.dot weighted reward

let accumulated ?epsilon ?(lump = false) ?analysis m ~reward ~upto =
  check_reward m reward;
  if lump then
    let qa, qm, qr = lumped analysis m ~reward in
    accumulated_from ?epsilon qa (Chain.initial qm) ~reward:qr upto
  else
    let a = Analysis.for_chain analysis m in
    accumulated_from ?epsilon a (Chain.initial m) ~reward upto

(* one Tail_over_lambda sweep with an accumulator per time point, instead
   of the former two passes (reward integral + transient restart) per
   segment *)
let accumulated_curve ?epsilon ?(lump = false) ?analysis m ~reward ~times =
  check_reward m reward;
  List.iter
    (fun t -> if t < 0. then invalid_arg "Rewards.accumulated_curve: negative time")
    times;
  let a, m, reward =
    if lump then lumped analysis m ~reward
    else (Analysis.for_chain analysis m, m, reward)
  in
  let weighted =
    Analysis.poisson_mixture_multi ?epsilon a ~dir:Analysis.Forward
      ~coeff:Analysis.Tail_over_lambda (Chain.initial m) ~times
  in
  List.map2 (fun t w -> (t, Vec.dot w reward)) times weighted

(* Instantaneous and accumulated cost curves share one BLOCKED sweep: a
   Pmf stream and a Tail_over_lambda stream from the same start ride the
   same uniformization, so the matrix is decoded once per step for both
   figures instead of once per curve. *)
let both_curves ?epsilon ?(lump = false) ?analysis m ~reward ~times =
  check_reward m reward;
  List.iter
    (fun t -> if t < 0. then invalid_arg "Rewards.both_curves: negative time")
    times;
  let a, m, reward =
    if lump then lumped analysis m ~reward
    else (Analysis.for_chain analysis m, m, reward)
  in
  let start = Chain.initial m in
  match
    Analysis.poisson_mixture_batch ?epsilon a ~dir:Analysis.Forward
      [
        { Analysis.start; coeff = Analysis.Pmf; times };
        { Analysis.start; coeff = Analysis.Tail_over_lambda; times };
      ]
  with
  | [ pis; ws ] ->
      ( List.map2 (fun t pi -> (t, Vec.dot pi reward)) times pis,
        List.map2 (fun t w -> (t, Vec.dot w reward)) times ws )
  | _ -> assert false

let steady_state ?tol ?(lump = false) ?analysis m ~reward =
  check_reward m reward;
  let analysis, m, reward =
    if lump then
      let qa, qm, qr = lumped analysis m ~reward in
      (Some qa, qm, qr)
    else (analysis, m, reward)
  in
  let pi = Steady_state.solve ?tol ?analysis m in
  Vec.dot pi reward
