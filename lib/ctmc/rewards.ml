module Vec = Numeric.Vec

type structure = Vec.t

let check_reward m reward =
  if Vec.dim reward <> Chain.states m then
    invalid_arg "Rewards: reward structure dimension mismatch"

let instantaneous ?epsilon ?analysis m ~reward ~at =
  check_reward m reward;
  let pi = Transient.distribution ?epsilon ?analysis m at in
  Vec.dot pi reward

let instantaneous_curve ?epsilon ?analysis m ~reward ~times =
  check_reward m reward;
  let points = Transient.curve ?epsilon ?analysis m ~times in
  List.map (fun (t, pi) -> (t, Vec.dot pi reward)) points

(* E[int_0^t rho(X_u) du] from start distribution [start]:
     sum_{k>=0} (1/lambda) * P(N_{lambda t} >= k+1) * (v_k . rho)
   which is the Tail_over_lambda mixture dotted with rho; the loop is the
   shared Analysis.poisson_mixture kernel. *)
let accumulated_from ?epsilon a start ~reward t =
  if t < 0. then invalid_arg "Rewards.accumulated: negative time";
  if t = 0. then 0.
  else
    let weighted =
      Analysis.poisson_mixture ?epsilon a ~dir:Analysis.Forward
        ~coeff:Analysis.Tail_over_lambda start ~time:t
    in
    Vec.dot weighted reward

let accumulated ?epsilon ?analysis m ~reward ~upto =
  check_reward m reward;
  let a = Analysis.for_chain analysis m in
  accumulated_from ?epsilon a (Chain.initial m) ~reward upto

let accumulated_curve ?epsilon ?analysis m ~reward ~times =
  check_reward m reward;
  let a = Analysis.for_chain analysis m in
  let sorted = List.sort_uniq compare times in
  List.iter
    (fun t -> if t < 0. then invalid_arg "Rewards.accumulated_curve: negative time")
    sorted;
  let _, _, result =
    List.fold_left
      (fun (t_prev, pi_prev, acc_points) t ->
        let seg = accumulated_from ?epsilon a pi_prev ~reward (t -. t_prev) in
        let total =
          match acc_points with [] -> seg | (_, prev_total) :: _ -> prev_total +. seg
        in
        let pi = Transient.distribution_from ?epsilon ~analysis:a m pi_prev (t -. t_prev) in
        (t, pi, (t, total) :: acc_points))
      (0., Chain.initial m, [])
      sorted
  in
  List.rev result

let steady_state ?tol ?analysis m ~reward =
  check_reward m reward;
  let pi = Steady_state.solve ?tol ?analysis m in
  Vec.dot pi reward
