(** Markov reward models: CSRL's reward operators over state rewards.

    A reward structure assigns a rate [rho.(s)] (reward per unit time) to
    every state. The three operators the paper uses:

    - instantaneous reward [R=? [I=t]]: expected reward rate at time [t],
    - accumulated reward [R=? [C<=t]]: expected reward accumulated in [0,t],
    - steady-state reward [R=? [S]]: long-run average reward rate.

    All operators accept an [?analysis] session; with one, the transient
    runs share the memoized uniformized matrix and Fox–Glynn weights and
    the steady-state operator shares the cached stationary vector. *)

type structure = Numeric.Vec.t
(** [structure.(s)] is the reward rate of state [s]. *)

val instantaneous :
  ?epsilon:float ->
  ?lump:bool ->
  ?analysis:Analysis.t ->
  Chain.t ->
  reward:structure ->
  at:float ->
  float
(** [instantaneous m ~reward ~at] is [sum_s pi(at)(s) * reward(s)]. All
    operators below accept [~lump:true]: the vector iteration then runs on
    the lumping quotient that respects [reward] ({!Analysis.quotient}), so
    the structure is block-constant and the expectation is exact. *)

val instantaneous_curve :
  ?epsilon:float ->
  ?lump:bool ->
  ?analysis:Analysis.t ->
  Chain.t ->
  reward:structure ->
  times:float list ->
  (float * float) list
(** Instantaneous reward at several time points, sharing one forward
    uniformization sweep ({!Analysis.poisson_mixture_multi}). The result
    is aligned 1:1 with [times] (order preserved, duplicates kept). *)

val accumulated :
  ?epsilon:float ->
  ?lump:bool ->
  ?analysis:Analysis.t ->
  Chain.t ->
  reward:structure ->
  upto:float ->
  float
(** [accumulated m ~reward ~upto] is [E(int_0^upto reward(X_u) du)],
    computed by the uniformization integral
    [sum_k (1/lambda) P(Poisson(lambda t) > k) (v_k . rho)]. *)

val accumulated_curve :
  ?epsilon:float ->
  ?lump:bool ->
  ?analysis:Analysis.t ->
  Chain.t ->
  reward:structure ->
  times:float list ->
  (float * float) list
(** Accumulated reward at several time points through one shared
    [Tail_over_lambda] sweep with a per-point accumulator — one pass of
    SpMVs for the whole curve, where the former segmented evaluation paid
    two passes (reward integral + transient restart) per segment. The
    result is aligned 1:1 with [times] (order preserved, duplicates
    kept). *)

val both_curves :
  ?epsilon:float ->
  ?lump:bool ->
  ?analysis:Analysis.t ->
  Chain.t ->
  reward:structure ->
  times:float list ->
  (float * float) list * (float * float) list
(** [(instantaneous_curve, accumulated_curve)] over the same time grid
    from {e one} blocked sweep ({!Analysis.poisson_mixture_batch}): the
    [Pmf] and [Tail_over_lambda] coefficient streams ride the same
    uniformization, so both figures cost a single pass of blocked SpMVs.
    Point values equal {!instantaneous_curve} and {!accumulated_curve}
    respectively. *)

val steady_state :
  ?tol:float -> ?lump:bool -> ?analysis:Analysis.t -> Chain.t -> reward:structure -> float
(** Long-run average reward rate. *)
