module Vec = Numeric.Vec
module Sparse = Numeric.Sparse
module Multivec = Numeric.Multivec

(* Matches the Numeric.Solver iterative-solver default; used as the cache
   key when the caller does not pass an explicit tolerance. *)
let default_tol = 1e-12

let is_irreducible ?analysis m =
  Analysis.is_irreducible (Analysis.for_chain analysis m)

(* Stationary vector of an irreducible generator. Gauss-Seidel on the
   normalized singular system converges fast on most chains but is not
   guaranteed to (the iteration matrix of a singular splitting can have
   modulus-1 eigenvalues); when it gives up we fall back to power iteration
   on the uniformized DTMC, which is aperiodic by construction (the
   uniformization rate strictly exceeds the maximal exit rate, so every
   state keeps a self-loop) and therefore always converges. *)
let stationary_of_generator ?tol q =
  Obs.Trace.with_span "steady_state.stationary" @@ fun span ->
  if Obs.Trace.recording span then
    Obs.Trace.add_attr span "states" (Obs.Int (Sparse.rows q));
  match Numeric.Solver.steady_state_gauss_seidel ?tol q with
  | pi, _ -> pi
  | exception Numeric.Solver.Did_not_converge _ ->
      Obs.Trace.add_attr span "fallback" (Obs.Str "power_iteration");
      let n = Sparse.rows q in
      let max_exit =
        let m = ref 0. in
        Sparse.iteri q (fun i j x -> if i = j && -.x > !m then m := -.x);
        !m
      in
      let lambda = Float.max 1e-10 (max_exit *. 1.02) in
      let b = Sparse.Builder.create ~rows:n ~cols:n in
      Sparse.iteri q (fun i j x ->
          if i = j then Sparse.Builder.add b i i (1. +. (x /. lambda))
          else Sparse.Builder.add b i j (x /. lambda));
      (* states with no diagonal entry in q are absorbing: self-loop 1 *)
      let has_diag = Array.make n false in
      Sparse.iteri q (fun i j _ -> if i = j then has_diag.(i) <- true);
      Array.iteri (fun i present -> if not present then Sparse.Builder.add b i i 1.) has_diag;
      let p = Sparse.Builder.to_csr b in
      let pi0 = Vec.create n (1. /. float_of_int n) in
      let pi, _ = Numeric.Solver.power_iteration ?tol p pi0 in
      Vec.normalize_l1 pi;
      pi

let solve_irreducible ?tol ?analysis m =
  if not (is_irreducible ?analysis m) then
    invalid_arg "Steady_state.solve_irreducible: chain is reducible";
  stationary_of_generator ?tol (Chain.generator m)

(* Local steady state of one recurrent class, embedded back into the full
   state space scaled by [weight]. *)
let add_local_solution ?tol m members weight result =
  match members with
  | [] -> ()
  | [ s ] -> result.(s) <- result.(s) +. weight
  | _ ->
      let members = Array.of_list members in
      let k = Array.length members in
      let index = Hashtbl.create k in
      Array.iteri (fun i s -> Hashtbl.replace index s i) members;
      let b = Sparse.Builder.create ~rows:k ~cols:k in
      Array.iteri
        (fun i s ->
          Sparse.iter_row (Chain.rates m) s (fun j r ->
              match Hashtbl.find_opt index j with
              | Some jj ->
                  Sparse.Builder.add b i jj r;
                  Sparse.Builder.add b i i (-.r)
              | None ->
                  (* a BSCC has no outgoing edges; defensive *)
                  invalid_arg "Steady_state: edge leaving a recurrent class"))
        members;
      let pi = stationary_of_generator ?tol (Sparse.Builder.to_csr b) in
      Array.iteri (fun i s -> result.(s) <- result.(s) +. (weight *. pi.(i))) members

(* weights.(c) = P(eventually enter class c) from the initial
   distribution. Initial mass already sitting in a class counts directly;
   mass on transient states is pushed through ONE multi-RHS Gauss–Seidel
   solve of (I - A) X = B over the transient states — A the embedded
   matrix restricted to them, column c of B the one-step probability into
   class c — instead of one scalar reachability solve per class. The
   system is non-singular (every transient state eventually leaves the
   transient set) and the blocked sweep decodes the matrix once for all
   classes, in SCC topological order. *)
let bscc_weights ?tol a m bsccs in_bscc =
  let n = Chain.states m in
  let nb = Array.length bsccs in
  let init = Chain.initial m in
  let weights = Array.make nb 0. in
  let transient_mass = ref 0. in
  Array.iteri
    (fun s p ->
      if p <> 0. then
        if in_bscc.(s) >= 0 then weights.(in_bscc.(s)) <- weights.(in_bscc.(s)) +. p
        else transient_mass := !transient_mass +. p)
    init;
  let index = Array.make n (-1) in
  let count = ref 0 in
  for s = 0 to n - 1 do
    if in_bscc.(s) < 0 then begin
      index.(s) <- !count;
      incr count
    end
  done;
  let nt = !count in
  if nt > 0 && !transient_mass > 0. then begin
    let emb = Analysis.embedded a in
    let bld = Sparse.Builder.create ~rows:nt ~cols:nt in
    let rhs = Multivec.create ~dim:nt ~width:nb in
    let states = Array.make nt 0 in
    for s = 0 to n - 1 do
      if in_bscc.(s) < 0 then begin
        states.(index.(s)) <- s;
        Sparse.Builder.add bld index.(s) index.(s) 1.;
        Sparse.iter_row emb s (fun j p ->
            let c = in_bscc.(j) in
            if c >= 0 then
              Multivec.set rhs index.(s) c (Multivec.get rhs index.(s) c +. p)
            else Sparse.Builder.add bld index.(s) index.(j) (-.p))
      end
    done;
    let order = Analysis.scc_solve_order a states in
    let tol = Option.value tol ~default:1e-13 in
    let x, _ =
      Numeric.Solver.solve_gauss_seidel_multi ~tol ~order
        (Sparse.Builder.to_csr bld) rhs
    in
    Array.iteri
      (fun s p ->
        if p <> 0. && in_bscc.(s) < 0 then
          for c = 0 to nb - 1 do
            weights.(c) <- weights.(c) +. (p *. Multivec.get x index.(s) c)
          done)
      init
  end;
  weights

let solve_fresh ?tol a m =
  let n = Chain.states m in
  let _, sccs = Analysis.sccs a in
  if Array.length sccs = 1 then stationary_of_generator ?tol (Chain.generator m)
  else begin
    let bsccs = Analysis.bottom_sccs a in
    let result = Vec.zeros n in
    let in_bscc = Array.make n (-1) in
    Array.iteri (fun c members -> List.iter (fun s -> in_bscc.(s) <- c) members) bsccs;
    let weights = bscc_weights ?tol a m bsccs in_bscc in
    Array.iteri
      (fun c members ->
        if weights.(c) > 0. then add_local_solution ?tol m members weights.(c) result)
      bsccs;
    result
  end

let solve ?tol ?analysis m =
  match analysis with
  | Some a when Analysis.wraps a m ->
      Analysis.cached_steady a
        ~tol:(Option.value tol ~default:default_tol)
        (fun () -> solve_fresh ?tol a m)
  | Some _ | None -> solve_fresh ?tol (Analysis.create m) m

let long_run_probabilities ?tol ?(lump = false) ?analysis m ~preds =
  let pi, preds =
    if lump then begin
      (* stationary block masses of the quotient equal the summed original
         masses (ordinary lumpability), so every pred-mass is preserved;
         one quotient respects all the predicates at once *)
      let a = Analysis.for_chain analysis m in
      let quot =
        Analysis.quotient a
          ~respect:(List.map (fun p -> Analysis.Pred p) preds)
      in
      let qa = quot.Analysis.q in
      ( solve ?tol ~analysis:qa (Analysis.chain qa),
        List.map (Analysis.block_pred quot) preds )
    end
    else (solve ?tol ?analysis m, preds)
  in
  List.map
    (fun pred ->
      let acc = ref 0. in
      Array.iteri (fun s p -> if pred s then acc := !acc +. p) pi;
      !acc)
    preds

let long_run_probability ?tol ?lump ?analysis m ~pred =
  match long_run_probabilities ?tol ?lump ?analysis m ~preds:[ pred ] with
  | [ x ] -> x
  | _ -> assert false
