module Vec = Numeric.Vec
module Sparse = Numeric.Sparse

(* Matches the Numeric.Solver iterative-solver default; used as the cache
   key when the caller does not pass an explicit tolerance. *)
let default_tol = 1e-12

let is_irreducible ?analysis m =
  Analysis.is_irreducible (Analysis.for_chain analysis m)

(* Stationary vector of an irreducible generator. Gauss-Seidel on the
   normalized singular system converges fast on most chains but is not
   guaranteed to (the iteration matrix of a singular splitting can have
   modulus-1 eigenvalues); when it gives up we fall back to power iteration
   on the uniformized DTMC, which is aperiodic by construction (the
   uniformization rate strictly exceeds the maximal exit rate, so every
   state keeps a self-loop) and therefore always converges. *)
let stationary_of_generator ?tol q =
  Obs.Trace.with_span "steady_state.stationary" @@ fun span ->
  if Obs.Trace.recording span then
    Obs.Trace.add_attr span "states" (Obs.Int (Sparse.rows q));
  match Numeric.Solver.steady_state_gauss_seidel ?tol q with
  | pi, _ -> pi
  | exception Numeric.Solver.Did_not_converge _ ->
      Obs.Trace.add_attr span "fallback" (Obs.Str "power_iteration");
      let n = Sparse.rows q in
      let max_exit =
        let m = ref 0. in
        Sparse.iteri q (fun i j x -> if i = j && -.x > !m then m := -.x);
        !m
      in
      let lambda = Float.max 1e-10 (max_exit *. 1.02) in
      let b = Sparse.Builder.create ~rows:n ~cols:n in
      Sparse.iteri q (fun i j x ->
          if i = j then Sparse.Builder.add b i i (1. +. (x /. lambda))
          else Sparse.Builder.add b i j (x /. lambda));
      (* states with no diagonal entry in q are absorbing: self-loop 1 *)
      let has_diag = Array.make n false in
      Sparse.iteri q (fun i j _ -> if i = j then has_diag.(i) <- true);
      Array.iteri (fun i present -> if not present then Sparse.Builder.add b i i 1.) has_diag;
      let p = Sparse.Builder.to_csr b in
      let pi0 = Vec.create n (1. /. float_of_int n) in
      let pi, _ = Numeric.Solver.power_iteration ?tol p pi0 in
      Vec.normalize_l1 pi;
      pi

let solve_irreducible ?tol ?analysis m =
  if not (is_irreducible ?analysis m) then
    invalid_arg "Steady_state.solve_irreducible: chain is reducible";
  stationary_of_generator ?tol (Chain.generator m)

(* Local steady state of one recurrent class, embedded back into the full
   state space scaled by [weight]. *)
let add_local_solution ?tol m members weight result =
  match members with
  | [] -> ()
  | [ s ] -> result.(s) <- result.(s) +. weight
  | _ ->
      let members = Array.of_list members in
      let k = Array.length members in
      let index = Hashtbl.create k in
      Array.iteri (fun i s -> Hashtbl.replace index s i) members;
      let b = Sparse.Builder.create ~rows:k ~cols:k in
      Array.iteri
        (fun i s ->
          Sparse.iter_row (Chain.rates m) s (fun j r ->
              match Hashtbl.find_opt index j with
              | Some jj ->
                  Sparse.Builder.add b i jj r;
                  Sparse.Builder.add b i i (-.r)
              | None ->
                  (* a BSCC has no outgoing edges; defensive *)
                  invalid_arg "Steady_state: edge leaving a recurrent class"))
        members;
      let pi = stationary_of_generator ?tol (Sparse.Builder.to_csr b) in
      Array.iteri (fun i s -> result.(s) <- result.(s) +. (weight *. pi.(i))) members

let solve_fresh ?tol a m =
  let n = Chain.states m in
  let _, sccs = Analysis.sccs a in
  if Array.length sccs = 1 then stationary_of_generator ?tol (Chain.generator m)
  else begin
    let bsccs = Analysis.bottom_sccs a in
    let result = Vec.zeros n in
    let in_bscc = Array.make n (-1) in
    Array.iteri (fun c members -> List.iter (fun s -> in_bscc.(s) <- c) members) bsccs;
    Array.iteri
      (fun c members ->
        (* weight = P(eventually enter class c) from the initial distribution *)
        let reach =
          Reachability.eventually ?tol ~analysis:a m ~psi:(fun s -> in_bscc.(s) = c)
        in
        let weight = Vec.dot (Chain.initial m) reach in
        if weight > 0. then add_local_solution ?tol m members weight result)
      bsccs;
    result
  end

let solve ?tol ?analysis m =
  match analysis with
  | Some a when Analysis.wraps a m ->
      Analysis.cached_steady a
        ~tol:(Option.value tol ~default:default_tol)
        (fun () -> solve_fresh ?tol a m)
  | Some _ | None -> solve_fresh ?tol (Analysis.create m) m

let long_run_probability ?tol ?(lump = false) ?analysis m ~pred =
  let pi, pred =
    if lump then begin
      (* stationary block masses of the quotient equal the summed original
         masses (ordinary lumpability), so the pred-mass is preserved *)
      let a = Analysis.for_chain analysis m in
      let quot = Analysis.quotient a ~respect:[ Analysis.Pred pred ] in
      let qa = quot.Analysis.q in
      (solve ?tol ~analysis:qa (Analysis.chain qa), Analysis.block_pred quot pred)
    end
    else (solve ?tol ?analysis m, pred)
  in
  let acc = ref 0. in
  Array.iteri (fun s p -> if pred s then acc := !acc +. p) pi;
  !acc
