(** Long-run (steady-state) analysis.

    For an irreducible chain this is one Gauss–Seidel solve. The general
    case decomposes the chain into bottom strongly connected components
    (recurrent classes), solves each in isolation, and weights the local
    solutions by the probability of reaching each class from the initial
    distribution — exactly PRISM's treatment of CSL's [S] operator.

    The class reach-weights come from {e one} multi-RHS Gauss–Seidel
    solve over the transient states — one right-hand-side column per
    recurrent class, swept together in SCC topological order
    ({!Numeric.Solver.solve_gauss_seidel_multi}) — rather than one scalar
    reachability solve per class.

    With an [?analysis] session the SCC/BSCC decomposition, the embedded
    matrix behind the reach-weights and the solved stationary vector
    itself (keyed by tolerance) are memoized, so availability and
    steady-state rewards over the same chain cost one solve. *)

val solve : ?tol:float -> ?analysis:Analysis.t -> Chain.t -> Numeric.Vec.t
(** [solve m] is the long-run probability distribution over states, taking
    the initial distribution into account when the chain is reducible. *)

val solve_irreducible :
  ?tol:float -> ?analysis:Analysis.t -> Chain.t -> Numeric.Vec.t
(** Fast path: requires the whole chain to be a single recurrent class;
    raises [Invalid_argument] otherwise. Initial-distribution independent. *)

val long_run_probability :
  ?tol:float ->
  ?lump:bool ->
  ?analysis:Analysis.t ->
  Chain.t ->
  pred:(int -> bool) ->
  float
(** [long_run_probability m ~pred] is the long-run fraction of time spent in
    states satisfying [pred] — CSL's [S=? [pred]]. With [~lump:true] the
    solve runs on the pred-respecting lumping quotient
    ({!Analysis.quotient}); stationary block masses equal summed state
    masses, so the result is exact. *)

val long_run_probabilities :
  ?tol:float ->
  ?lump:bool ->
  ?analysis:Analysis.t ->
  Chain.t ->
  preds:(int -> bool) list ->
  float list
(** Batch form of {!long_run_probability}: one stationary solve serves
    every predicate, and with [~lump:true] a single quotient respecting
    {e all} the predicates is built (instead of one per predicate).
    Results align 1:1 with [preds]. *)

val is_irreducible : ?analysis:Analysis.t -> Chain.t -> bool
