module Vec = Numeric.Vec

(* The Poisson-mixture loops live in Analysis.poisson_mixture, the one
   kernel shared with Reachability (via backward) and Rewards; this module
   keeps the time bookkeeping and the forward/backward entry points. *)

let distribution_from ?epsilon ?analysis m start t =
  if t < 0. then invalid_arg "Transient.distribution_from: negative time";
  if t = 0. then Vec.copy start
  else
    let a = Analysis.for_chain analysis m in
    Analysis.poisson_mixture ?epsilon a ~dir:Analysis.Forward ~coeff:Analysis.Pmf
      start ~time:t

let distribution ?epsilon ?analysis m t =
  distribution_from ?epsilon ?analysis m (Chain.initial m) t

let curve ?epsilon ?analysis m ~times =
  List.iter
    (fun t -> if t < 0. then invalid_arg "Transient.curve: negative time")
    times;
  let a = Analysis.for_chain analysis m in
  let pis =
    Analysis.poisson_mixture_multi ?epsilon a ~dir:Analysis.Forward
      ~coeff:Analysis.Pmf (Chain.initial m) ~times
  in
  List.map2 (fun t pi -> (t, pi)) times pis

let probability_at ?epsilon ?analysis m ~pred t =
  let pi = distribution ?epsilon ?analysis m t in
  let acc = ref 0. in
  Array.iteri (fun s p -> if pred s then acc := !acc +. p) pi;
  !acc

let backward ?epsilon ?analysis m v t =
  if t < 0. then invalid_arg "Transient.backward: negative time";
  if Vec.dim v <> Chain.states m then
    invalid_arg "Transient.backward: dimension mismatch";
  if t = 0. then Vec.copy v
  else
    let a = Analysis.for_chain analysis m in
    Analysis.poisson_mixture ?epsilon a ~dir:Analysis.Backward ~coeff:Analysis.Pmf
      v ~time:t
