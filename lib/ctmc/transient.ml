module Vec = Numeric.Vec

(* The Poisson-mixture loops live in Analysis.poisson_mixture, the one
   kernel shared with Reachability (via backward) and Rewards; this module
   keeps the time bookkeeping and the forward/backward entry points. *)

let distribution_from ?epsilon ?analysis m start t =
  if t < 0. then invalid_arg "Transient.distribution_from: negative time";
  if t = 0. then Vec.copy start
  else
    let a = Analysis.for_chain analysis m in
    Analysis.poisson_mixture ?epsilon a ~dir:Analysis.Forward ~coeff:Analysis.Pmf
      start ~time:t

let distribution ?epsilon ?analysis m t =
  distribution_from ?epsilon ?analysis m (Chain.initial m) t

let curve ?epsilon ?analysis m ~times =
  List.iter
    (fun t -> if t < 0. then invalid_arg "Transient.curve: negative time")
    times;
  let a = Analysis.for_chain analysis m in
  let pis =
    Analysis.poisson_mixture_multi ?epsilon a ~dir:Analysis.Forward
      ~coeff:Analysis.Pmf (Chain.initial m) ~times
  in
  List.map2 (fun t pi -> (t, pi)) times pis

(* K start distributions through one blocked sweep: the batched kernel
   decodes the uniformized matrix once per step for all of them. *)
let distribution_batch ?epsilon ?analysis m ~starts ~times =
  List.iter
    (fun t ->
      if t < 0. then invalid_arg "Transient.distribution_batch: negative time")
    times;
  List.iter
    (fun start ->
      if Vec.dim start <> Chain.states m then
        invalid_arg "Transient.distribution_batch: dimension mismatch")
    starts;
  let a = Analysis.for_chain analysis m in
  Analysis.poisson_mixture_batch ?epsilon a ~dir:Analysis.Forward
    (List.map
       (fun start -> { Analysis.start; coeff = Analysis.Pmf; times })
       starts)

let backward_batch ?epsilon ?analysis m vs t =
  if t < 0. then invalid_arg "Transient.backward_batch: negative time";
  List.iter
    (fun v ->
      if Vec.dim v <> Chain.states m then
        invalid_arg "Transient.backward_batch: dimension mismatch")
    vs;
  if t = 0. then List.map Vec.copy vs
  else
    let a = Analysis.for_chain analysis m in
    Analysis.poisson_mixture_batch ?epsilon a ~dir:Analysis.Backward
      (List.map
         (fun v -> { Analysis.start = v; coeff = Analysis.Pmf; times = [ t ] })
         vs)
    |> List.map (function [ r ] -> r | _ -> assert false)

let mass pred pi =
  let acc = ref 0. in
  Array.iteri (fun s p -> if pred s then acc := !acc +. p) pi;
  !acc

let probability_at ?epsilon ?(lump = false) ?analysis m ~pred t =
  if lump then begin
    (* run the forward sweep on the quotient that respects [pred]: the
       quotient's aggregated distribution carries exactly the pred-mass *)
    let a = Analysis.for_chain analysis m in
    let quot = Analysis.quotient a ~respect:[ Analysis.Pred pred ] in
    let qa = quot.Analysis.q in
    let pi = distribution ?epsilon ~analysis:qa (Analysis.chain qa) t in
    mass (Analysis.block_pred quot pred) pi
  end
  else mass pred (distribution ?epsilon ?analysis m t)

let backward ?epsilon ?(lump = false) ?analysis m v t =
  if t < 0. then invalid_arg "Transient.backward: negative time";
  if Vec.dim v <> Chain.states m then
    invalid_arg "Transient.backward: dimension mismatch";
  if t = 0. then Vec.copy v
  else if lump then begin
    (* respect the value vector itself, so it is block-constant; backward
       value vectors then lift exactly *)
    let a = Analysis.for_chain analysis m in
    let quot = Analysis.quotient a ~respect:[ Analysis.Reward v ] in
    let qa = quot.Analysis.q in
    let bv =
      Analysis.poisson_mixture ?epsilon qa ~dir:Analysis.Backward
        ~coeff:Analysis.Pmf (Analysis.block_reward quot v) ~time:t
    in
    Analysis.lift quot bv
  end
  else
    let a = Analysis.for_chain analysis m in
    Analysis.poisson_mixture ?epsilon a ~dir:Analysis.Backward ~coeff:Analysis.Pmf
      v ~time:t
