(** Transient analysis by uniformization (Jensen's method).

    Computes the state-probability distribution [pi(t) = pi(0) e^(Q t)] as a
    Poisson-weighted mixture of DTMC step distributions, with truncation
    error bounded by the {!Numeric.Fox_glynn} epsilon.

    Every entry point takes an optional [?analysis] session
    ({!Analysis.t}); when given (and wrapping the same chain), the
    uniformized matrix and Fox–Glynn weights are fetched from — and
    memoized into — the session instead of being rebuilt per call. *)

val distribution :
  ?epsilon:float -> ?analysis:Analysis.t -> Chain.t -> float -> Numeric.Vec.t
(** [distribution m t] is the distribution over states at time [t >= 0],
    starting from the chain's initial distribution. *)

val distribution_from :
  ?epsilon:float ->
  ?analysis:Analysis.t ->
  Chain.t ->
  Numeric.Vec.t ->
  float ->
  Numeric.Vec.t
(** As {!distribution} but starting from an explicit distribution. *)

val curve :
  ?epsilon:float ->
  ?analysis:Analysis.t ->
  Chain.t ->
  times:float list ->
  (float * Numeric.Vec.t) list
(** [curve m ~times] evaluates the distribution at each time point through
    one shared uniformization sweep ({!Analysis.poisson_mixture_multi}):
    the vector iteration runs once to the Fox–Glynn right edge of the
    latest time with one Poisson-weight accumulator per distinct time, so
    a K-point curve costs roughly the SpMVs of its last point instead of K
    windowed segments.

    The result is aligned 1:1 with [times]: the caller's order is
    preserved (no sorting), and duplicate times each yield their own
    point. An empty [times] yields [[]]. *)

val distribution_batch :
  ?epsilon:float ->
  ?analysis:Analysis.t ->
  Chain.t ->
  starts:Numeric.Vec.t list ->
  times:float list ->
  Numeric.Vec.t list list
(** [distribution_batch m ~starts ~times] evaluates the transient
    distribution from each start vector at each time with {e one} blocked
    sweep ({!Analysis.poisson_mixture_batch}): the uniformized matrix is
    decoded once per step for all K starts. Result [i] aligns with start
    [i] and, within it, 1:1 with [times] (same semantics as {!curve}). *)

val probability_at :
  ?epsilon:float ->
  ?lump:bool ->
  ?analysis:Analysis.t ->
  Chain.t ->
  pred:(int -> bool) ->
  float ->
  float
(** [probability_at m ~pred t] is the probability mass on states satisfying
    [pred] at time [t]. With [~lump:true] the sweep runs on the cached
    lumping quotient that respects [pred] ({!Analysis.quotient}) — exact,
    and faster whenever the quotient is smaller. *)

val backward :
  ?epsilon:float ->
  ?lump:bool ->
  ?analysis:Analysis.t ->
  Chain.t ->
  Numeric.Vec.t ->
  float ->
  Numeric.Vec.t
(** [backward m v t] is [e^(Q t) v]: entry [s] is the expected value of
    [v] at time [t] conditional on starting in state [s]. This is the
    per-start-state view used by bounded-until model checking. With
    [~lump:true] the iteration runs on the quotient that respects [v]
    (so [v] is block-constant) and the per-block result is lifted back —
    exact for ordinary lumpability. *)

val backward_batch :
  ?epsilon:float ->
  ?analysis:Analysis.t ->
  Chain.t ->
  Numeric.Vec.t list ->
  float ->
  Numeric.Vec.t list
(** [backward_batch m vs t] is [List.map (fun v -> backward m v t) vs]
    computed with one blocked sweep — e.g. the value vectors of several
    bounded-until targets over the same chain and bound. *)
