module D = Diagnostic
module M = Model_rules

(* ------------------------------------------------------------------ *)
(* Chain-layer rules: structural facts about the CTMC the model would
   generate, computed from per-component skeletons instead of the product
   state space. The skeleton of one component is the digraph over
   {up} U {(mode, stage)}; its bottom SCCs multiply across components to
   give the product chain's recurrent-class count, so a model with millions
   of states is analysed from graphs of a few dozen vertices. *)

type skeleton = {
  sk_component : string;
  sk_pos : M.pos;
  sk_bottom : int;  (** bottom-SCC count of the skeleton *)
  sk_repaired : bool;
  sk_modes : int;
}

let repaired_set raw =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun ru -> List.iter (fun c -> Hashtbl.replace tbl c ()) ru.M.rr_components)
    raw.M.raw_repair_units;
  tbl

let skeleton_of_component ~repaired (rc : M.raw_component) =
  (* vertex 0 = up; then one vertex per (mode, stage), modes in order *)
  let stages m = max 1 (Option.value m.M.rm_stages ~default:1) in
  let total = List.fold_left (fun acc m -> acc + stages m) 0 rc.M.rc_modes in
  let g = Numeric.Digraph.create (1 + total) in
  let base = ref 1 in
  List.iter
    (fun m ->
      let s = stages m in
      Numeric.Digraph.add_edge g 0 !base;
      if repaired then (
        for k = 0 to s - 2 do
          Numeric.Digraph.add_edge g (!base + k) (!base + k + 1)
        done;
        Numeric.Digraph.add_edge g (!base + s - 1) 0);
      base := !base + s)
    rc.M.rc_modes;
  let bottom = Array.length (Numeric.Digraph.bottom_sccs g) in
  {
    sk_component = rc.M.rc_name;
    sk_pos = rc.M.rc_pos;
    sk_bottom = bottom;
    sk_repaired = repaired;
    sk_modes = List.length rc.M.rc_modes;
  }

let skeletons raw =
  let repaired = repaired_set raw in
  List.map
    (fun rc -> skeleton_of_component ~repaired:(Hashtbl.mem repaired rc.M.rc_name) rc)
    raw.M.raw_components

(* The product chain has [prod_i bottom_i] recurrent classes: component
   failure/repair cycles are independent at the reachability level (repair
   queues delay but never deny a repair; spare dormancy scales but — for hot
   and warm spares — never removes a failure edge). Cold spares could in
   principle remove failure edges while dormant, which only merges classes,
   so the product is an upper bound and [> 1] detection stays sound for the
   models Arcade generates (activation is work-conserving: a dormant cold
   spare becomes active as soon as a primary fails). *)
let multiple_bsccs raw =
  List.exists (fun sk -> sk.sk_bottom > 1) (skeletons raw)

let stiffness_threshold = 1e6

let rates raw =
  let repaired = repaired_set raw in
  List.concat_map
    (fun rc ->
      let is_repaired = Hashtbl.mem repaired rc.M.rc_name in
      (* warm dormancy scales this component's failure rate by f; include
         the scaled rate too since the chain contains it in dormant states *)
      let warm_factors =
        List.filter_map
          (fun su ->
            match su.M.rs_mode with
            | M.Mwarm f
              when f > 0.
                   && List.mem rc.M.rc_name (su.M.rs_primaries @ su.M.rs_spares) ->
                Some f
            | _ -> None)
          raw.M.raw_spare_units
      in
      List.concat_map
        (fun m ->
          let label which v = (rc.M.rc_name ^ "." ^ m.M.rm_name ^ which, v) in
          let failure =
            match m.M.rm_mttf with
            | Some mttf when mttf > 0. && Float.is_finite mttf ->
                label " failure" (1. /. mttf)
                :: List.map
                     (fun f -> label " dormant failure" (f /. mttf))
                     warm_factors
            | _ -> []
          in
          let repair =
            match m.M.rm_mttr with
            | Some mttr when is_repaired && mttr > 0. && Float.is_finite mttr ->
                let s = float_of_int (max 1 (Option.value m.M.rm_stages ~default:1)) in
                [ label " repair stage" (s /. mttr) ]
            | _ -> []
          in
          failure @ repair)
        rc.M.rc_modes)
    raw.M.raw_components

let check raw =
  let out = ref [] in
  let push d = out := d :: !out in
  let sks = skeletons raw in
  (* ARC-C001 (info): absorbing failure configurations. Deliberately not a
     warning — pure reliability models (no repair at all) are a standard
     use of the tool and must stay quiet under -Werror. *)
  let absorbing = List.filter (fun sk -> not sk.sk_repaired) sks in
  if absorbing <> [] && raw.M.raw_components <> [] then
    push
      (D.make ~code:"ARC-C001" ~severity:D.Info
         ~subject:(Printf.sprintf "model %s" raw.M.raw_name)
         "the chain has absorbing failure configurations: %s %s never \
          repaired, so time-unbounded measures converge to the all-failed \
          regime"
         (String.concat ", " (List.map (fun sk -> sk.sk_component) absorbing))
         (if List.length absorbing = 1 then "is" else "are"));
  (* ARC-C002: several recurrent classes make long-run measures depend on
     the initial distribution *)
  let split = List.filter (fun sk -> sk.sk_bottom > 1) sks in
  if split <> [] then begin
    let product =
      List.fold_left (fun acc sk -> acc * sk.sk_bottom) 1 sks
    in
    List.iter
      (fun sk ->
        push
          (D.make ?position:sk.sk_pos ~code:"ARC-C002" ~severity:D.Warning
             ~subject:(Printf.sprintf "component %s" sk.sk_component)
             "unrepaired component with %d failure modes splits the chain \
              into separate recurrent classes"
             sk.sk_modes
             ~hint:"repair the component or reduce it to a single mode"))
      split;
    push
      (D.make ~code:"ARC-C002" ~severity:D.Warning
         ~subject:(Printf.sprintf "model %s" raw.M.raw_name)
         "the chain has %d recurrent classes; steady-state (S=?, R[S]=?) \
          results depend on the initial state"
         product)
  end;
  (* ARC-C003: stiffness — uniformisation effort grows with the rate
     spread, and transient results lose digits when rates differ by many
     orders of magnitude *)
  (match rates raw with
  | [] -> ()
  | first :: rest ->
      let (slow_label, slow), (fast_label, fast) =
        List.fold_left
          (fun (((_, mn) as lo), ((_, mx) as hi)) ((_, r) as cur) ->
            ((if r < mn then cur else lo), if r > mx then cur else hi))
          (first, first) rest
      in
      if slow > 0. && fast /. slow >= stiffness_threshold then
        push
          (D.make ~code:"ARC-C003" ~severity:D.Warning
             ~subject:(Printf.sprintf "model %s" raw.M.raw_name)
             "stiff chain: rates span %.1e (%s, %g/h) to %.1e (%s, %g/h), a \
              ratio of %.1e"
             slow slow_label slow fast fast_label fast (fast /. slow)
             ~hint:
               "uniformisation cost grows with the fastest rate times the \
                time horizon; consider rescaling near-instantaneous \
                transitions"));
  List.rev !out
