(** Chain-layer lint rules (ARC-C family): structural facts about the CTMC the
    model would generate, computed from per-component skeleton digraphs
    ({!Numeric.Digraph} over a few dozen vertices) instead of the product
    state space.

    Rule catalogue:
    - [ARC-C001] (info): the chain has absorbing failure configurations —
      some component is never repaired. Info, not warning: pure
      reliability models are a standard use and must stay quiet under
      [-Werror].
    - [ARC-C002] (warning): the chain has several recurrent classes (an
      unrepaired component with two or more failure modes), so
      steady-state measures depend on the initial state.
    - [ARC-C003] (warning): stiff chain — the positive-rate spread
      (fastest over slowest) reaches [1e6]. *)

val multiple_bsccs : Model_rules.t -> bool
(** Whether the product chain has more than one recurrent class (upper
    bound via the per-component skeleton product). Shared with the query
    layer (ARC-Q007). *)

val stiffness_threshold : float
(** Rate ratio at which ARC-C003 fires ([1e6]). *)

val check : Model_rules.t -> Diagnostic.t list
