type severity = Error | Warning | Info

let severity_rank = function Error -> 2 | Warning -> 1 | Info -> 0

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

type t = {
  code : string;
  severity : severity;
  subject : string;
  message : string;
  hint : string option;
  file : string option;
  line : int option;
  column : int option;
}

type rule = {
  rule_code : string;
  rule_severity : severity;
  rule_layer : string;
  rule_title : string;
  rule_rationale : string;
}

let make ?hint ?file ?position ~code ~severity ~subject fmt =
  Printf.ksprintf
    (fun message ->
      let line, column =
        match position with
        | Some (l, c) -> (Some l, Some c)
        | None -> (None, None)
      in
      { code; severity; subject; message; hint; file; line; column })
    fmt

let with_file file d = { d with file = Some file }

let pp ppf d =
  let anchor =
    match (d.file, d.line, d.column) with
    | Some f, Some l, Some c -> Printf.sprintf "%s:%d:%d: " f l c
    | Some f, _, _ -> f ^ ": "
    | None, Some l, Some c -> Printf.sprintf "%d:%d: " l c
    | None, _, _ -> ""
  in
  Format.fprintf ppf "%s%s[%s] %s: %s" anchor
    (severity_to_string d.severity)
    d.code d.subject d.message;
  match d.hint with
  | Some hint -> Format.fprintf ppf "@,  hint: %s" hint
  | None -> ()

let to_string d = Format.asprintf "@[<v>%a@]" pp d

let compare_diag a b =
  let key d =
    ( (match d.file with Some f -> f | None -> ""),
      (match d.line with Some l -> l | None -> max_int),
      (match d.column with Some c -> c | None -> max_int),
      d.code,
      d.subject,
      d.message )
  in
  compare (key a) (key b)

let sort diags = List.sort_uniq compare_diag diags

let count severity diags =
  List.length (List.filter (fun d -> d.severity = severity) diags)

let max_severity diags =
  List.fold_left
    (fun acc d ->
      match acc with
      | Some s when severity_rank s >= severity_rank d.severity -> acc
      | _ -> Some d.severity)
    None diags

let codes diags = List.sort_uniq compare (List.map (fun d -> d.code) diags)

(* Small edit distance for "did you mean" hints on unknown names. *)
let levenshtein a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id in
  let curr = Array.make (lb + 1) 0 in
  for i = 1 to la do
    curr.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      curr.(j) <- min (min (curr.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit curr 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let did_you_mean name candidates =
  let scored =
    List.filter_map
      (fun c ->
        let d = levenshtein name c in
        if d <= 2 && d < String.length name then Some (d, c) else None)
      candidates
  in
  match List.sort compare scored with
  | (_, best) :: _ -> Some (Printf.sprintf "did you mean %S?" best)
  | [] -> None
