(** Structured lint diagnostics.

    Every finding carries a stable rule code (["ARC-M004"]), a severity, the
    subject it is about (a component, gate, measure, ...), a message, an
    optional hint, and an optional source anchor ([file:line:column] when the
    input came through {!Xml_kit.parse_file_located}). *)

type severity = Error | Warning | Info

val severity_rank : severity -> int
(** [Error] > [Warning] > [Info]. *)

val severity_to_string : severity -> string

type t = {
  code : string;  (** stable rule code, e.g. ["ARC-M004"] *)
  severity : severity;
  subject : string;  (** what the finding is about, e.g. ["component pump3"] *)
  message : string;
  hint : string option;
  file : string option;
  line : int option;  (** 1-based *)
  column : int option;  (** 1-based *)
}

(** One catalogue entry: the documentation of a rule. *)
type rule = {
  rule_code : string;
  rule_severity : severity;  (** the rule's typical severity *)
  rule_layer : string;  (** ["model"], ["chain"], ["query"] or ["prism"] *)
  rule_title : string;
  rule_rationale : string;
}

val make :
  ?hint:string ->
  ?file:string ->
  ?position:int * int ->
  code:string ->
  severity:severity ->
  subject:string ->
  ('a, unit, string, t) format4 ->
  'a

val with_file : string -> t -> t

val pp : Format.formatter -> t -> unit
(** ["file:line:col: severity[CODE] subject: message"] plus an indented
    hint line when present. *)

val to_string : t -> string

val sort : t list -> t list
(** Sort by (file, line, column, code) and drop exact duplicates. *)

val count : severity -> t list -> int

val max_severity : t list -> severity option

val codes : t list -> string list
(** The distinct rule codes present, sorted. *)

val did_you_mean : string -> string list -> string option
(** A ["did you mean ...?"] hint when a close candidate (edit distance <= 2)
    exists. *)
