(* Library root: re-export the passes and provide the one-call drivers. *)

module Diagnostic = Diagnostic
module Model_rules = Model_rules
module Chain_rules = Chain_rules
module Query_rules = Query_rules
module Prism_rules = Prism_rules
module D = Diagnostic

(* ------------------------------------------------------------------ *)
(* Telemetry *)

let files_counter = lazy (Obs.Metrics.counter "lint.files")

let severity_counter = function
  | D.Error -> Obs.Metrics.counter "lint.diagnostics.error"
  | D.Warning -> Obs.Metrics.counter "lint.diagnostics.warning"
  | D.Info -> Obs.Metrics.counter "lint.diagnostics.info"

let record diags =
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr (Lazy.force files_counter);
    List.iter (fun d -> Obs.Metrics.incr (severity_counter d.D.severity)) diags
  end

let has_errors diags = List.exists (fun d -> d.D.severity = D.Error) diags

(* ------------------------------------------------------------------ *)
(* Drivers *)

let schema_failure ?position message =
  D.make ?position ~code:"ARC-X001" ~severity:D.Error ~subject:"model" "%s"
    message

let query_pass raw model =
  let ctx =
    Query_rules.context_of_model
      ~multiple_bsccs:(Chain_rules.multiple_bsccs raw)
      model
  in
  List.concat_map
    (fun (ms : Model_rules.raw_measure) ->
      Query_rules.check_string
        ?position:ms.Model_rules.ms_pos ctx
        ~subject:(Printf.sprintf "measure %s" ms.Model_rules.ms_name)
        ms.Model_rules.ms_query)
    raw.Model_rules.raw_measures

let lint_doc ?file ?pos doc =
  Obs.Trace.with_span "lint.doc" @@ fun _ ->
  let raw, schema_diags = Model_rules.of_doc ?pos doc in
  let static = schema_diags @ Model_rules.check raw @ Chain_rules.check raw in
  let query_diags =
    (* Only chase measures once the model itself is clean: a broken model
       makes label sets meaningless. Model construction can still find
       mistakes no raw rule covers — keep them as ARC-X001. *)
    if has_errors static then []
    else
      match Core.Xml_io.of_xml ?file ?pos doc with
      | model, _ -> query_pass raw model
      | exception Core.Xml_io.Schema_error msg -> [ schema_failure msg ]
      | exception Invalid_argument msg -> [ schema_failure msg ]
  in
  let all = static @ query_diags in
  let all =
    match file with Some f -> List.map (D.with_file f) all | None -> all
  in
  let all = D.sort all in
  record all;
  all

let lint_string ?file input =
  match Xml_kit.parse_string_located input with
  | doc, pos -> lint_doc ?file ~pos doc
  | exception Xml_kit.Parse_error { line; column; message } ->
      let d =
        schema_failure ~position:(line, column)
          (Printf.sprintf "XML parse error: %s" message)
      in
      let d = match file with Some f -> D.with_file f d | None -> d in
      record [ d ];
      [ d ]

let lint_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> lint_string ~file:path contents
  | exception Sys_error msg ->
      let d = schema_failure (Printf.sprintf "cannot read file: %s" msg) in
      [ D.with_file path d ]

let lint_model ?(queries = []) model =
  let raw = Model_rules.of_model model in
  let static = Model_rules.check raw @ Chain_rules.check raw in
  let query_diags =
    let ctx =
      Query_rules.context_of_model
        ~multiple_bsccs:(Chain_rules.multiple_bsccs raw)
        model
    in
    List.concat_map
      (fun (name, query) ->
        Query_rules.check_string ctx
          ~subject:(Printf.sprintf "measure %s" name)
          query)
      queries
  in
  let all = D.sort (static @ query_diags) in
  record all;
  all

(* ------------------------------------------------------------------ *)
(* Debug-build hook: generated models (Watertreatment.Facility, the
   experiment drivers) self-lint when ARCADE_DEBUG_LINT is set, so a
   refactoring that produces a silently-broken model fails fast. *)

let debug_enabled =
  lazy
    (match Sys.getenv_opt "ARCADE_DEBUG_LINT" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false)

let debug_check ~what ?queries model =
  if Lazy.force debug_enabled then begin
    let diags =
      List.filter
        (fun d -> d.D.severity <> D.Info)
        (lint_model ?queries model)
    in
    List.iter (fun d -> prerr_endline (what ^ ": " ^ D.to_string d)) diags;
    if has_errors diags then
      failwith
        (Printf.sprintf "ARCADE_DEBUG_LINT: %d lint error(s) in %s"
           (D.count D.Error diags) what)
  end

(* ------------------------------------------------------------------ *)
(* The rule catalogue, for [arcade_lint --rules] and the docs. *)

let catalogue : D.rule list =
  let r rule_code rule_severity rule_layer rule_title rule_rationale =
    { D.rule_code; rule_severity; rule_layer; rule_title; rule_rationale }
  in
  [
    r "ARC-X001" D.Error "model" "malformed schema item"
      "missing or unparsable attributes, unexpected elements and XML parse \
       errors are reported with source positions instead of exceptions";
    r "ARC-M001" D.Error "model" "unknown component or mode reference"
      "repair units, spare units and fault-tree basics must name declared \
       components (and declared failure modes)";
    r "ARC-M002" D.Error "model" "duplicate component name"
      "component names key every cross-reference; duplicates make them \
       ambiguous";
    r "ARC-M003" D.Error "model" "component repaired twice"
      "two repair units competing for one component is undefined in Arcade";
    r "ARC-M004" D.Warning "model" "unused component"
      "a component neither in the fault tree nor in a spare unit multiplies \
       the state space without influencing any measure predicate";
    r "ARC-M005" D.Warning "model" "unrepaired component"
      "in a model with a repair organisation, a component outside it stays \
       failed forever — usually an oversight";
    r "ARC-M006" D.Warning "model" "dedicated strategy ignores crews"
      "dedicated repair acts as one crew per component; an explicit crew \
       count suggests a different strategy was intended";
    r "ARC-M007" D.Error "model" "crew-count sanity"
      "non-positive crews or an empty unit is an error; more crews than \
       components only accrues idle cost (warning)";
    r "ARC-M008" D.Error "model" "non-positive or non-finite MTTF/MTTR"
      "rates are 1/mean; zero, negative or infinite means produce a \
       malformed generator";
    r "ARC-M009" D.Warning "model" "MTTR not below MTTF"
      "a component failed at least half the time usually means the two \
       means are swapped";
    r "ARC-M010" D.Error "model" "degenerate Erlang stage count"
      "stages < 1 is an error; very large stage counts multiply the state \
       space for no accuracy gain (warning)";
    r "ARC-M011" D.Error "model" "priority list mismatch"
      "a priority order must name exactly the unit's components, once each";
    r "ARC-M012" D.Error "model" "spare-unit structure"
      "no primaries, primary/spare overlap, double membership or a warm \
       factor outside (0, 1) break the activation policy";
    r "ARC-F001" D.Warning "model" "no-op gate"
      "single-input and/or, 1-of-n and n-of-n gates obscure the tree \
       without changing it";
    r "ARC-F002" D.Warning "model" "duplicate gate input"
      "identical inputs never add information, and under k-of-n they \
       silently change the threshold semantics";
    r "ARC-F003" D.Warning "model" "absorbed gate input"
      "an input whose removal leaves the minimal cut sets unchanged never \
       determines the top event";
    r "ARC-F004" D.Error "model" "malformed gate"
      "empty gates and k outside 1..n are rejected by the fault-tree \
       semantics";
    r "ARC-C001" D.Info "chain" "absorbing failure configurations"
      "without full repair coverage, time-unbounded measures converge to \
       the all-failed regime (expected for reliability models, hence info)";
    r "ARC-C002" D.Warning "chain" "multiple recurrent classes"
      "an unrepaired component with several failure modes splits the chain; \
       steady-state results then depend on the initial state";
    r "ARC-C003" D.Warning "chain" "stiff chain"
      "a rate spread of 1e6 or more makes uniformisation expensive and \
       costs result digits";
    r "ARC-Q001" D.Error "query" "CSL syntax error"
      "reported with line:column inside the query string";
    r "ARC-Q002" D.Error "query" "unknown label"
      "labels are checked against the model's actual label set (down, \
       operational, full_service, sl_ge_<i>, <c>_failed, <c>:<mode>)";
    r "ARC-Q003" D.Error "query" "unknown reward structure"
      "reward queries must name cost, component_cost or repair_cost";
    r "ARC-Q004" D.Error "query" "nested =? query"
      "P/S/R=? is a top-level query form, not a state formula";
    r "ARC-Q005" D.Error "query" "bad time bound"
      "negative, non-finite or inverted time intervals have no semantics";
    r "ARC-Q006" D.Error "query" "unresolvable atomic expression"
      "Arcade models expose labels only; raw state expressions raise \
       Unsupported at evaluation time";
    r "ARC-Q007" D.Warning "query" "steady-state query on a split chain"
      "with several recurrent classes the long-run result is an \
       initial-state-dependent mix";
    r "ARC-Q008" D.Warning "query" "trivial probability bound"
      "bounds outside [0,1], P>=0 and P<=1 are always or never satisfied";
    r "ARC-P001" D.Warning "prism" "constant-false guard"
      "a command whose guard is false from constants alone can never fire";
    r "ARC-P002" D.Warning "prism" "unused constant"
      "dead declarations in generated PRISM output usually indicate a \
       translator regression";
    r "ARC-P003" D.Warning "prism" "unused formula"
      "formulas not reachable from labels, guards, rates, updates or \
       rewards are dead weight";
  ]
