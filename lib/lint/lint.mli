(** Arcade.Lint: a multi-layer static analyzer for models, chains and CSL
    queries.

    Everything here runs {e without building the state space}: model-layer
    rules work on an unvalidated mirror of the XML, chain-layer rules on
    per-component skeleton digraphs, and query-layer rules on the CSL AST
    against the model's statically-known label and reward sets. A broken
    model is rejected in milliseconds instead of after minutes of state
    exploration.

    See {!Diagnostic} for the finding type, {!Model_rules},
    {!Chain_rules}, {!Query_rules} and {!Prism_rules} for the rule
    catalogues, and [bin/arcade_lint] for the CLI. *)

module Diagnostic = Diagnostic
module Model_rules = Model_rules
module Chain_rules = Chain_rules
module Query_rules = Query_rules
module Prism_rules = Prism_rules

val lint_doc :
  ?file:string -> ?pos:Xml_kit.locator -> Xml_kit.t -> Diagnostic.t list
(** Lint a parsed Arcade document: schema extraction, model-layer and
    chain-layer rules always; query-layer rules over the embedded measures
    once the model is error-free. Results are sorted and deduplicated. *)

val lint_string : ?file:string -> string -> Diagnostic.t list
(** Parse (with positions) and lint; an XML parse error yields a single
    [ARC-X001]. *)

val lint_file : string -> Diagnostic.t list

val lint_model :
  ?queries:(string * string) list -> Core.Model.t -> Diagnostic.t list
(** Lint an API-constructed (already validated) model, optionally with
    named queries. No source positions. *)

val has_errors : Diagnostic.t list -> bool

val debug_check :
  what:string -> ?queries:(string * string) list -> Core.Model.t -> unit
(** When the [ARCADE_DEBUG_LINT] environment variable is set ([1], [true]
    or [yes]): lint the model, print warnings and errors to stderr, and
    fail on errors. No-op otherwise — generated-model constructors call
    this unconditionally. *)

val catalogue : Diagnostic.rule list
(** All shipped rules, for [arcade_lint --rules] and the documentation. *)
