module X = Xml_kit
module D = Diagnostic

(* ------------------------------------------------------------------ *)
(* Raw models: the unvalidated mirror of Core.Model, extracted directly
   from the XML tree. Lint rules run on this representation so that every
   mistake Core.Model.make or Core.Xml_io would throw on at build time is
   instead reported statically, with a source position, and so that several
   independent mistakes surface in one pass instead of first-throw-wins. *)

type pos = (int * int) option

type raw_mode = {
  rm_name : string;
  rm_mttf : float option;  (** [None]: missing or unparsable (ARC-X001) *)
  rm_mttr : float option;
  rm_stages : int option;
  rm_pos : pos;
}

type raw_component = {
  rc_name : string;
  rc_modes : raw_mode list;  (** primary mode (["failed"]) first *)
  rc_pos : pos;
}

type raw_strategy =
  | Sdedicated
  | Sfcfs
  | Sfrf
  | Sfff
  | Spriority of string list  (** the priority order, most urgent first *)
  | Sunknown of string

type raw_repair_unit = {
  rr_name : string;
  rr_strategy : raw_strategy;
  rr_crews : int option;  (** [None]: attribute absent *)
  rr_components : string list;
  rr_pos : pos;
}

type raw_spare_mode = Mhot | Mwarm of float | Mcold

type raw_spare_unit = {
  rs_name : string;
  rs_mode : raw_spare_mode;
  rs_primaries : string list;
  rs_spares : string list;
  rs_pos : pos;
}

type raw_gate =
  | Gbasic of string * pos
  | Gand of raw_gate list * pos
  | Gor of raw_gate list * pos
  | Gkofn of int option * raw_gate list * pos

type raw_measure = { ms_name : string; ms_query : string; ms_pos : pos }

type t = {
  raw_name : string;
  raw_components : raw_component list;
  raw_repair_units : raw_repair_unit list;
  raw_spare_units : raw_spare_unit list;
  raw_fault_tree : raw_gate option;
  raw_measures : raw_measure list;
}

(* ------------------------------------------------------------------ *)
(* Extraction from XML. Never raises: malformed pieces become ARC-X001
   diagnostics and the remaining structure is kept best-effort. *)

let no_pos : X.locator = fun _ -> None

let schema_code = "ARC-X001"

type collector = { mutable diags : D.t list; locate : X.locator }

let emit c d = c.diags <- d :: c.diags

let schema_error c el fmt =
  Printf.ksprintf
    (fun message ->
      let subject =
        match el with X.Element (tag, _, _) -> "<" ^ tag ^ ">" | X.Text _ -> "#text"
      in
      emit c
        (D.make ?position:(c.locate el) ~code:schema_code ~severity:D.Error
           ~subject "%s" message))
    fmt

let attr_string c el key =
  match X.attribute el key with
  | Some v -> Some v
  | None ->
      schema_error c el "missing attribute %S" key;
      None

let attr_float_opt c el key ~default =
  match X.attribute el key with
  | None -> default
  | Some raw -> (
      match float_of_string_opt raw with
      | Some f -> Some f
      | None ->
          schema_error c el "attribute %s=%S is not a number" key raw;
          None)

let attr_int_opt c el key ~default =
  match X.attribute el key with
  | None -> default
  | Some raw -> (
      match int_of_string_opt raw with
      | Some i -> Some i
      | None ->
          schema_error c el "attribute %s=%S is not an integer" key raw;
          None)

let attr_required_float c el key =
  match X.attribute el key with
  | None ->
      schema_error c el "missing attribute %S" key;
      None
  | Some _ -> attr_float_opt c el key ~default:None

let mode_of_el c el =
  {
    rm_name = Option.value (attr_string c el "name") ~default:"?";
    rm_mttf = attr_required_float c el "mttf";
    rm_mttr = attr_required_float c el "mttr";
    rm_stages = attr_int_opt c el "repair-stages" ~default:(Some 1);
    rm_pos = c.locate el;
  }

let component_of_el c el =
  let primary =
    {
      rm_name = "failed";
      rm_mttf = attr_required_float c el "mttf";
      rm_mttr = attr_required_float c el "mttr";
      rm_stages = attr_int_opt c el "repair-stages" ~default:(Some 1);
      rm_pos = c.locate el;
    }
  in
  {
    rc_name = Option.value (attr_string c el "name") ~default:"?";
    rc_modes = primary :: List.map (mode_of_el c) (X.find_children el "mode");
    rc_pos = c.locate el;
  }

let refs_of c tag el =
  List.filter_map
    (fun child ->
      match X.attribute child "ref" with
      | Some r -> Some r
      | None ->
          schema_error c child "missing attribute \"ref\"";
          None)
    (X.find_children el tag)

let repair_unit_of_el c el =
  let members = refs_of c "component" el in
  let strategy =
    match attr_string c el "strategy" with
    | None -> Sunknown "?"
    | Some raw -> (
        match String.lowercase_ascii raw with
        | "dedicated" -> Sdedicated
        | "fcfs" -> Sfcfs
        | "frf" -> Sfrf
        | "fff" -> Sfff
        | "priority" -> Spriority members
        | other ->
            schema_error c el "unknown repair strategy %S" other;
            Sunknown other)
  in
  {
    rr_name = Option.value (attr_string c el "name") ~default:"?";
    rr_strategy = strategy;
    rr_crews = attr_int_opt c el "crews" ~default:None;
    rr_components = members;
    rr_pos = c.locate el;
  }

let spare_unit_of_el c el =
  let mode =
    match attr_string c el "mode" with
    | None -> Mhot
    | Some raw -> (
        match String.lowercase_ascii raw with
        | "hot" -> Mhot
        | "cold" -> Mcold
        | s when String.length s > 5 && String.sub s 0 5 = "warm:" -> (
            match float_of_string_opt (String.sub s 5 (String.length s - 5)) with
            | Some f -> Mwarm f
            | None ->
                schema_error c el "bad warm dormancy factor in mode %S" raw;
                Mwarm 0.5)
        | other ->
            schema_error c el "unknown spare mode %S" other;
            Mhot)
  in
  {
    rs_name = Option.value (attr_string c el "name") ~default:"?";
    rs_mode = mode;
    rs_primaries = refs_of c "primary" el;
    rs_spares = refs_of c "spare" el;
    rs_pos = c.locate el;
  }

let rec gate_of_el c el =
  match X.name el with
  | "basic" -> (
      match X.attribute el "ref" with
      | Some r -> Some (Gbasic (r, c.locate el))
      | None ->
          schema_error c el "missing attribute \"ref\"";
          None)
  | "and" ->
      Some (Gand (List.filter_map (gate_of_el c) (X.child_elements el), c.locate el))
  | "or" ->
      Some (Gor (List.filter_map (gate_of_el c) (X.child_elements el), c.locate el))
  | "kofn" ->
      Some
        (Gkofn
           ( attr_int_opt c el "k" ~default:None,
             List.filter_map (gate_of_el c) (X.child_elements el),
             c.locate el ))
  | other ->
      schema_error c el "unexpected fault-tree element <%s>" other;
      None

let measure_of_el c el =
  match (X.attribute el "name", X.attribute el "query") with
  | Some name, Some query -> Some { ms_name = name; ms_query = query; ms_pos = c.locate el }
  | _ ->
      schema_error c el "a <measure> needs both name and query attributes";
      None

let of_doc ?(pos = no_pos) doc =
  let c = { diags = []; locate = pos } in
  (match doc with
  | X.Element ("arcade", _, _) -> ()
  | X.Element (other, _, _) -> schema_error c doc "expected root <arcade>, got <%s>" other
  | X.Text _ -> schema_error c doc "expected a root element");
  let components =
    match X.find_child doc "components" with
    | Some el -> List.map (component_of_el c) (X.find_children el "component")
    | None ->
        if (match doc with X.Element ("arcade", _, _) -> true | _ -> false) then
          schema_error c doc "missing <components>";
        []
  in
  let repair_units =
    match X.find_child doc "repair-units" with
    | Some el -> List.map (repair_unit_of_el c) (X.find_children el "repair-unit")
    | None -> []
  in
  let spare_units =
    match X.find_child doc "spare-units" with
    | Some el -> List.map (spare_unit_of_el c) (X.find_children el "spare-unit")
    | None -> []
  in
  let fault_tree =
    match X.find_child doc "fault-tree" with
    | Some el -> (
        match X.child_elements el with
        | [ root ] -> gate_of_el c root
        | [] ->
            schema_error c el "<fault-tree> must have exactly one root gate";
            None
        | root :: _ ->
            schema_error c el "<fault-tree> must have exactly one root gate";
            gate_of_el c root)
    | None ->
        schema_error c doc "missing <fault-tree>";
        None
  in
  let measures =
    match X.find_child doc "measures" with
    | Some el -> List.filter_map (measure_of_el c) (X.find_children el "measure")
    | None -> []
  in
  ( {
      raw_name =
        (match X.attribute doc "name" with Some n -> n | None -> "?");
      raw_components = components;
      raw_repair_units = repair_units;
      raw_spare_units = spare_units;
      raw_fault_tree = fault_tree;
      raw_measures = measures;
    },
    List.rev c.diags )

(* ------------------------------------------------------------------ *)
(* Lowering a validated Core.Model into the raw form, so API-constructed
   models run through the same rule set (positions are absent). *)

let of_model (model : Core.Model.t) =
  let mode_raw (m : Core.Component.failure_mode) pos =
    {
      rm_name = m.Core.Component.fm_name;
      rm_mttf = Some m.Core.Component.fm_mttf;
      rm_mttr = Some m.Core.Component.fm_mttr;
      rm_stages = Some m.Core.Component.fm_repair_stages;
      rm_pos = pos;
    }
  in
  let components =
    List.map
      (fun (comp : Core.Component.t) ->
        {
          rc_name = comp.Core.Component.name;
          rc_modes = List.map (fun m -> mode_raw m None) (Core.Component.modes comp);
          rc_pos = None;
        })
      model.Core.Model.components
  in
  let repair_units =
    List.map
      (fun (ru : Core.Repair.t) ->
        let strategy =
          match ru.Core.Repair.strategy with
          | Core.Repair.Dedicated -> Sdedicated
          | Core.Repair.Fcfs -> Sfcfs
          | Core.Repair.Frf -> Sfrf
          | Core.Repair.Fff -> Sfff
          | Core.Repair.Priority order -> Spriority order
        in
        {
          rr_name = ru.Core.Repair.name;
          rr_strategy = strategy;
          rr_crews = Some ru.Core.Repair.crews;
          rr_components = ru.Core.Repair.components;
          rr_pos = None;
        })
      model.Core.Model.repair_units
  in
  let spare_units =
    List.map
      (fun (smu : Core.Spare.t) ->
        {
          rs_name = smu.Core.Spare.name;
          rs_mode =
            (match smu.Core.Spare.mode with
            | Core.Spare.Hot -> Mhot
            | Core.Spare.Warm f -> Mwarm f
            | Core.Spare.Cold -> Mcold);
          rs_primaries = smu.Core.Spare.primaries;
          rs_spares = smu.Core.Spare.spares;
          rs_pos = None;
        })
      model.Core.Model.spare_units
  in
  let rec lower_gate = function
    | Fault_tree.Basic b -> Gbasic (b, None)
    | Fault_tree.And gs -> Gand (List.map lower_gate gs, None)
    | Fault_tree.Or gs -> Gor (List.map lower_gate gs, None)
    | Fault_tree.Kofn (k, gs) -> Gkofn (Some k, List.map lower_gate gs, None)
  in
  {
    raw_name = model.Core.Model.name;
    raw_components = components;
    raw_repair_units = repair_units;
    raw_spare_units = spare_units;
    raw_fault_tree = Some (lower_gate model.Core.Model.fault_tree);
    raw_measures = [];
  }

(* ------------------------------------------------------------------ *)
(* Rules *)

let diag ?hint ?position ~code ~severity ~subject fmt =
  D.make ?hint ?position ~code ~severity ~subject fmt

let split_literal b =
  match String.index_opt b ':' with
  | None -> (b, None)
  | Some i -> (String.sub b 0 i, Some (String.sub b (i + 1) (String.length b - i - 1)))

let rec gate_basics acc = function
  | Gbasic (b, p) -> (b, p) :: acc
  | Gand (gs, _) | Gor (gs, _) | Gkofn (_, gs, _) ->
      List.fold_left gate_basics acc gs

let rec strip_pos = function
  | Gbasic (b, _) -> Gbasic (b, None)
  | Gand (gs, _) -> Gand (List.map strip_pos gs, None)
  | Gor (gs, _) -> Gor (List.map strip_pos gs, None)
  | Gkofn (k, gs, _) -> Gkofn (k, List.map strip_pos gs, None)

let gate_equal a b = strip_pos a = strip_pos b

(* Best-effort conversion for cut-set reasoning; [None] when the raw tree
   is malformed (empty gates, bad k-of-n bounds — reported separately). *)
let rec to_fault_tree = function
  | Gbasic (b, _) -> Some (Fault_tree.Basic b)
  | Gand (gs, _) ->
      Option.map (fun l -> Fault_tree.And l) (to_fault_trees gs)
  | Gor (gs, _) -> Option.map (fun l -> Fault_tree.Or l) (to_fault_trees gs)
  | Gkofn (Some k, gs, _) when k >= 1 && k <= List.length gs ->
      Option.map (fun l -> Fault_tree.Kofn (k, l)) (to_fault_trees gs)
  | Gkofn _ -> None

and to_fault_trees gs =
  let converted = List.map to_fault_tree gs in
  if gs = [] || List.exists Option.is_none converted then None
  else Some (List.map Option.get converted)

let gate_label g =
  match to_fault_tree g with
  | Some t ->
      (* to_string pretty-prints with line breaks; flatten for one-line
         diagnostics *)
      let s =
        String.concat " "
          (List.filter
             (fun w -> w <> "")
             (String.split_on_char ' '
                (String.map
                   (function '\n' | '\t' -> ' ' | c -> c)
                   (Fault_tree.to_string t))))
      in
      if String.length s > 48 then String.sub s 0 45 ^ "..." else s
  | None -> (
      match g with
      | Gbasic (b, _) -> b
      | Gand _ -> "and(...)"
      | Gor _ -> "or(...)"
      | Gkofn _ -> "kofn(...)")

let check raw =
  let out = ref [] in
  let push d = out := d :: !out in
  let comp_names = List.map (fun rc -> rc.rc_name) raw.raw_components in
  let comp_tbl = Hashtbl.create 16 in
  List.iter
    (fun rc ->
      if not (Hashtbl.mem comp_tbl rc.rc_name) then
        Hashtbl.replace comp_tbl rc.rc_name rc)
    raw.raw_components;
  let exists name = Hashtbl.mem comp_tbl name in
  let mode_exists comp mode =
    match Hashtbl.find_opt comp_tbl comp with
    | None -> false
    | Some rc -> List.exists (fun m -> m.rm_name = mode) rc.rc_modes
  in
  (* ARC-M002: duplicate component names *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun rc ->
      if Hashtbl.mem seen rc.rc_name then
        push
          (diag ?position:rc.rc_pos ~code:"ARC-M002" ~severity:D.Error
             ~subject:(Printf.sprintf "component %s" rc.rc_name)
             "duplicate component name")
      else Hashtbl.replace seen rc.rc_name ())
    raw.raw_components;
  (* ARC-M001: unknown references, from repair units, spare units and the
     fault tree (component and failure-mode references alike) *)
  let unknown_ref pos ~subject name =
    push
      (diag ?position:pos
         ?hint:(D.did_you_mean name comp_names)
         ~code:"ARC-M001" ~severity:D.Error ~subject
         "reference to unknown component %s" name)
  in
  List.iter
    (fun ru ->
      let subject = Printf.sprintf "repair unit %s" ru.rr_name in
      List.iter
        (fun m -> if not (exists m) then unknown_ref ru.rr_pos ~subject m)
        ru.rr_components)
    raw.raw_repair_units;
  List.iter
    (fun smu ->
      let subject = Printf.sprintf "spare unit %s" smu.rs_name in
      List.iter
        (fun m -> if not (exists m) then unknown_ref smu.rs_pos ~subject m)
        (smu.rs_primaries @ smu.rs_spares))
    raw.raw_spare_units;
  (match raw.raw_fault_tree with
  | None -> ()
  | Some tree ->
      List.iter
        (fun (literal, pos) ->
          let comp, mode = split_literal literal in
          let subject = "fault tree" in
          if not (exists comp) then unknown_ref pos ~subject comp
          else
            match mode with
            | Some m when not (mode_exists comp m) ->
                push
                  (diag ?position:pos ~code:"ARC-M001" ~severity:D.Error ~subject
                     "component %s has no failure mode %s" comp m)
            | _ -> ())
        (gate_basics [] tree));
  (* ARC-M003: a component repaired by more than one unit (or listed twice
     in one unit) *)
  let repaired = Hashtbl.create 16 in
  List.iter
    (fun ru ->
      List.iter
        (fun m ->
          match Hashtbl.find_opt repaired m with
          | Some first when exists m ->
              push
                (diag ?position:ru.rr_pos ~code:"ARC-M003" ~severity:D.Error
                   ~subject:(Printf.sprintf "repair unit %s" ru.rr_name)
                   "component %s is already repaired by %s" m first)
          | _ -> Hashtbl.replace repaired m ru.rr_name)
        ru.rr_components)
    raw.raw_repair_units;
  (* ARC-M004: components never referenced by the fault tree or a spare
     unit — they add states and cost but cannot influence any measure's
     predicate *)
  (match raw.raw_fault_tree with
  | None -> ()
  | Some tree ->
      let referenced = Hashtbl.create 16 in
      List.iter
        (fun (literal, _) -> Hashtbl.replace referenced (fst (split_literal literal)) ())
        (gate_basics [] tree);
      List.iter
        (fun smu ->
          List.iter
            (fun m -> Hashtbl.replace referenced m ())
            (smu.rs_primaries @ smu.rs_spares))
        raw.raw_spare_units;
      List.iter
        (fun rc ->
          if not (Hashtbl.mem referenced rc.rc_name) then
            push
              (diag ?position:rc.rc_pos ~code:"ARC-M004" ~severity:D.Warning
                 ~subject:(Printf.sprintf "component %s" rc.rc_name)
                 "never referenced by the fault tree or any spare unit"
                 ~hint:
                   "the component still multiplies the state space and \
                    contributes cost; reference it or remove it"))
        raw.raw_components);
  (* ARC-M005: the model has a repair organisation, but this component is
     outside it — it is never repaired *)
  if raw.raw_repair_units <> [] then
    List.iter
      (fun rc ->
        if not (Hashtbl.mem repaired rc.rc_name) then
          push
            (diag ?position:rc.rc_pos ~code:"ARC-M005" ~severity:D.Warning
               ~subject:(Printf.sprintf "component %s" rc.rc_name)
               "not reachable by any repair unit: once failed it stays failed"
               ~hint:
                 "add the component to a repair unit, or drop all repair \
                  units for a pure reliability model"))
      raw.raw_components;
  (* Repair-unit sanity: ARC-M006 / ARC-M007 / ARC-M011 *)
  List.iter
    (fun ru ->
      let subject = Printf.sprintf "repair unit %s" ru.rr_name in
      let n = List.length ru.rr_components in
      (match ru.rr_crews with
      | Some k when k <= 0 ->
          push
            (diag ?position:ru.rr_pos ~code:"ARC-M007" ~severity:D.Error ~subject
               "crew count %d is not positive" k)
      | Some k when ru.rr_strategy = Sdedicated && k <> 1 && k <> n ->
          push
            (diag ?position:ru.rr_pos ~code:"ARC-M006" ~severity:D.Warning ~subject
               "dedicated strategy ignores crews=%d (it acts as one crew per \
                component, here %d)"
               k n
               ~hint:"drop the crews attribute or switch to fcfs/frf/fff")
      | Some k when ru.rr_strategy <> Sdedicated && k > n ->
          push
            (diag ?position:ru.rr_pos ~code:"ARC-M007" ~severity:D.Warning ~subject
               "%d crews for %d components: the extra crews can never be busy"
               k n
               ~hint:"crews beyond the component count only accrue idle cost")
      | _ -> ());
      if n = 0 then
        push
          (diag ?position:ru.rr_pos ~code:"ARC-M007" ~severity:D.Error ~subject
             "repair unit has no components");
      match ru.rr_strategy with
      | Spriority order ->
          let members = List.sort_uniq compare ru.rr_components in
          let listed = Hashtbl.create 8 in
          List.iter
            (fun name ->
              if Hashtbl.mem listed name then
                push
                  (diag ?position:ru.rr_pos ~code:"ARC-M011" ~severity:D.Error
                     ~subject "priority list names %s twice" name)
              else Hashtbl.replace listed name ();
              if not (List.mem name members) then
                push
                  (diag ?position:ru.rr_pos ~code:"ARC-M011" ~severity:D.Error
                     ~subject "priority list names %s, which the unit does not repair"
                     name))
            order;
          List.iter
            (fun name ->
              if not (List.mem name order) then
                push
                  (diag ?position:ru.rr_pos ~code:"ARC-M011" ~severity:D.Error
                     ~subject "priority list omits repairable component %s" name))
            members
      | _ -> ())
    raw.raw_repair_units;
  (* Rate sanity per failure mode: ARC-M008 / ARC-M009 / ARC-M010 *)
  List.iter
    (fun rc ->
      List.iter
        (fun m ->
          let subject =
            if m.rm_name = "failed" then Printf.sprintf "component %s" rc.rc_name
            else Printf.sprintf "component %s, mode %s" rc.rc_name m.rm_name
          in
          let bad_rate key = function
            | Some v when v <= 0. || not (Float.is_finite v) ->
                push
                  (diag ?position:m.rm_pos ~code:"ARC-M008" ~severity:D.Error
                     ~subject "%s=%g is not a positive finite mean time" key v)
            | _ -> ()
          in
          bad_rate "mttf" m.rm_mttf;
          bad_rate "mttr" m.rm_mttr;
          (match (m.rm_mttf, m.rm_mttr) with
          | Some mttf, Some mttr
            when mttf > 0. && mttr >= mttf && Float.is_finite mttf
                 && Float.is_finite mttr ->
              push
                (diag ?position:m.rm_pos ~code:"ARC-M009" ~severity:D.Warning
                   ~subject
                   "mttr (%g h) is not below mttf (%g h): the component is \
                    failed at least half of the time"
                   mttr mttf
                   ~hint:"check whether the two means are swapped")
          | _ -> ());
          match m.rm_stages with
          | Some s when s < 1 ->
              push
                (diag ?position:m.rm_pos ~code:"ARC-M010" ~severity:D.Error
                   ~subject "repair-stages=%d is not a positive Erlang phase count" s)
          | Some s when s > 64 ->
              push
                (diag ?position:m.rm_pos ~code:"ARC-M010" ~severity:D.Warning
                   ~subject
                   "repair-stages=%d multiplies the component's state count \
                    by %d"
                   s s
                   ~hint:
                     "beyond ~64 phases the Erlang approximates a \
                      deterministic delay with no further accuracy gain")
          | _ -> ())
        rc.rc_modes)
    raw.raw_components;
  (* Spare-unit structure: ARC-M012 *)
  let spare_member = Hashtbl.create 16 in
  List.iter
    (fun smu ->
      let subject = Printf.sprintf "spare unit %s" smu.rs_name in
      if smu.rs_primaries = [] then
        push
          (diag ?position:smu.rs_pos ~code:"ARC-M012" ~severity:D.Error ~subject
             "spare unit has no primary components");
      List.iter
        (fun p ->
          if List.mem p smu.rs_spares then
            push
              (diag ?position:smu.rs_pos ~code:"ARC-M012" ~severity:D.Error
                 ~subject "component %s is both a primary and a spare" p))
        smu.rs_primaries;
      (match smu.rs_mode with
      | Mwarm f when f <= 0. || f >= 1. ->
          push
            (diag ?position:smu.rs_pos ~code:"ARC-M012" ~severity:D.Error ~subject
               "warm dormancy factor %g is outside (0, 1)" f
               ~hint:"use mode=\"cold\" for factor 0 and mode=\"hot\" for 1")
      | _ -> ());
      List.iter
        (fun m ->
          match Hashtbl.find_opt spare_member m with
          | Some first when exists m ->
              push
                (diag ?position:smu.rs_pos ~code:"ARC-M012" ~severity:D.Error
                   ~subject "component %s is already managed by spare unit %s" m
                   first)
          | _ -> Hashtbl.replace spare_member m smu.rs_name)
        (smu.rs_primaries @ smu.rs_spares))
    raw.raw_spare_units;
  (* Fault-tree structure: ARC-F001 .. ARC-F004 *)
  (match raw.raw_fault_tree with
  | None -> ()
  | Some tree ->
      let rec structural g =
        (match g with
        | Gbasic _ -> ()
        | Gand (kids, pos) | Gor (kids, pos) ->
            let kind = match g with Gand _ -> "and" | _ -> "or" in
            if kids = [] then
              push
                (diag ?position:pos ~code:"ARC-F004" ~severity:D.Error
                   ~subject:(Printf.sprintf "%s gate" kind)
                   "gate has no inputs")
            else if List.length kids = 1 then
              push
                (diag ?position:pos ~code:"ARC-F001" ~severity:D.Warning
                   ~subject:(Printf.sprintf "%s gate" kind)
                   "single-input %s gate is a no-op" kind
                   ~hint:"inline the child into the parent gate")
        | Gkofn (k, kids, pos) -> (
            let n = List.length kids in
            match k with
            | Some k when k < 1 || k > n ->
                push
                  (diag ?position:pos ~code:"ARC-F004" ~severity:D.Error
                     ~subject:"kofn gate"
                     "k=%d is outside 1..%d" k n)
            | Some k when k = 1 && n >= 1 ->
                push
                  (diag ?position:pos ~code:"ARC-F001" ~severity:D.Warning
                     ~subject:"kofn gate" "1-of-%d is an or gate" n
                     ~hint:"write <or> for clarity")
            | Some k when k = n && n > 0 ->
                push
                  (diag ?position:pos ~code:"ARC-F001" ~severity:D.Warning
                     ~subject:"kofn gate" "%d-of-%d is an and gate" n n
                     ~hint:"write <and> for clarity")
            | _ -> ()));
        match g with
        | Gbasic _ -> ()
        | Gand (kids, _) | Gor (kids, _) | Gkofn (_, kids, _) ->
            (* ARC-F002: structurally identical siblings *)
            let rec dup_pairs = function
              | [] -> ()
              | kid :: rest ->
                  if List.exists (gate_equal kid) rest then
                    push
                      (diag
                         ?position:
                           (match kid with
                           | Gbasic (_, p) | Gand (_, p) | Gor (_, p) | Gkofn (_, _, p)
                             -> p)
                         ~code:"ARC-F002" ~severity:D.Warning
                         ~subject:(Printf.sprintf "gate input %s" (gate_label kid))
                         "duplicate gate input"
                         ~hint:
                           "identical inputs to one gate never add \
                            information; under kofn they change the \
                            threshold semantics silently");
                  dup_pairs rest
            in
            dup_pairs kids;
            List.iter structural kids
      in
      structural tree;
      (* ARC-F003: gate inputs that can never determine the top event — the
         minimal cut sets are unchanged when the input is removed
         (absorption, e.g. or(a, and(a, b))). Only and/or parents: removing
         a k-of-n input changes the threshold semantics. *)
      (match to_fault_tree tree with
      | Some ft when List.length (Fault_tree.basics ft) <= 16 ->
          let baseline = try Some (Fault_tree.minimal_cut_sets ft) with _ -> None in
          (match baseline with
          | None -> ()
          | Some baseline ->
              let remove_nth l i = List.filteri (fun j _ -> j <> i) l in
              let rec walk rebuild g =
                match g with
                | Gbasic _ | Gkofn _ -> ()
                | Gand (kids, pos) | Gor (kids, pos) ->
                    let is_and = match g with Gand _ -> true | _ -> false in
                    if List.length kids >= 2 then
                      List.iteri
                        (fun i kid ->
                          (* a duplicate sibling is already ARC-F002 *)
                          if not (List.exists (gate_equal kid) (remove_nth kids i))
                          then
                            let smaller =
                              if is_and then Gand (remove_nth kids i, pos)
                              else Gor (remove_nth kids i, pos)
                            in
                            match to_fault_tree (rebuild smaller) with
                            | Some candidate
                              when (try
                                      Fault_tree.minimal_cut_sets candidate
                                      = baseline
                                    with _ -> false) ->
                                push
                                  (diag
                                     ?position:
                                       (match kid with
                                       | Gbasic (_, p)
                                       | Gand (_, p)
                                       | Gor (_, p)
                                       | Gkofn (_, _, p) -> p)
                                     ~code:"ARC-F003" ~severity:D.Warning
                                     ~subject:
                                       (Printf.sprintf "gate input %s"
                                          (gate_label kid))
                                     "input never determines the top event \
                                      (minimal cut sets are unchanged \
                                      without it)"
                                     ~hint:
                                       "the input is absorbed by the rest \
                                        of the tree; remove it or fix the \
                                        tree structure")
                            | _ -> ())
                        kids;
                    List.iteri
                      (fun i kid ->
                        let rebuild_kid replacement =
                          let kids' =
                            List.mapi (fun j k0 -> if j = i then replacement else k0)
                              kids
                          in
                          rebuild
                            (if is_and then Gand (kids', pos) else Gor (kids', pos))
                        in
                        walk rebuild_kid kid)
                      kids
              in
              walk Fun.id tree)
      | _ -> ()));
  List.rev !out
