(** Model-layer lint rules (ARC-M*, ARC-F*, ARC-X001).

    The rules run over a {e raw} model — an unvalidated mirror of
    {!Core.Model} extracted directly from the XML tree — so that every
    mistake the validating constructors would throw on is instead reported
    statically, with a source position, and several independent mistakes
    surface in one pass.

    Rule catalogue:
    - [ARC-X001] (error): malformed schema item (missing/unparsable
      attribute, unexpected element, parse error).
    - [ARC-M001] (error): reference to an unknown component or failure mode
      (from repair units, spare units or the fault tree).
    - [ARC-M002] (error): duplicate component name.
    - [ARC-M003] (error): a component repaired by more than one repair unit.
    - [ARC-M004] (warning): component never referenced by the fault tree or
      a spare unit.
    - [ARC-M005] (warning): the model has repair units, but this component
      is covered by none — once failed it stays failed.
    - [ARC-M006] (warning): dedicated strategy with an explicit crew count
      it ignores.
    - [ARC-M007] (error/warning): non-positive crew count, empty repair
      unit, or more crews than components.
    - [ARC-M008] (error): non-positive or non-finite MTTF/MTTR.
    - [ARC-M009] (warning): MTTR not below MTTF — likely swapped means.
    - [ARC-M010] (error/warning): degenerate Erlang repair-stage count.
    - [ARC-M011] (error): priority list does not match the unit's
      components (unknown names, omissions, duplicates).
    - [ARC-M012] (error): spare-unit structure (no primaries,
      primary/spare overlap, a component in two spare units, warm factor
      outside (0, 1)).
    - [ARC-F001] (warning): no-op gate (single-input and/or, 1-of-n,
      n-of-n).
    - [ARC-F002] (warning): structurally duplicate gate inputs.
    - [ARC-F003] (warning): gate input that never determines the top event
      (minimal cut sets unchanged without it).
    - [ARC-F004] (error): malformed gate (no inputs, k outside 1..n). *)

type pos = (int * int) option

type raw_mode = {
  rm_name : string;
  rm_mttf : float option;  (** [None]: missing or unparsable (ARC-X001) *)
  rm_mttr : float option;
  rm_stages : int option;
  rm_pos : pos;
}

type raw_component = {
  rc_name : string;
  rc_modes : raw_mode list;  (** primary mode (["failed"]) first *)
  rc_pos : pos;
}

type raw_strategy =
  | Sdedicated
  | Sfcfs
  | Sfrf
  | Sfff
  | Spriority of string list  (** the priority order, most urgent first *)
  | Sunknown of string

type raw_repair_unit = {
  rr_name : string;
  rr_strategy : raw_strategy;
  rr_crews : int option;  (** [None]: attribute absent *)
  rr_components : string list;
  rr_pos : pos;
}

type raw_spare_mode = Mhot | Mwarm of float | Mcold

type raw_spare_unit = {
  rs_name : string;
  rs_mode : raw_spare_mode;
  rs_primaries : string list;
  rs_spares : string list;
  rs_pos : pos;
}

type raw_gate =
  | Gbasic of string * pos
  | Gand of raw_gate list * pos
  | Gor of raw_gate list * pos
  | Gkofn of int option * raw_gate list * pos

type raw_measure = { ms_name : string; ms_query : string; ms_pos : pos }

type t = {
  raw_name : string;
  raw_components : raw_component list;
  raw_repair_units : raw_repair_unit list;
  raw_spare_units : raw_spare_unit list;
  raw_fault_tree : raw_gate option;
  raw_measures : raw_measure list;
}

val of_doc : ?pos:Xml_kit.locator -> Xml_kit.t -> t * Diagnostic.t list
(** Extract a raw model from a parsed document. Never raises: malformed
    pieces become [ARC-X001] diagnostics and the remaining structure is
    kept best-effort. [pos] (from {!Xml_kit.parse_string_located}) anchors
    diagnostics to source lines. *)

val of_model : Core.Model.t -> t
(** Lower an already-validated model so API-constructed models run through
    the same rules (no source positions). *)

val check : t -> Diagnostic.t list
(** Run all model-layer rules. *)
