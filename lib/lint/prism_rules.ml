module D = Diagnostic
module Ast = Prism.Ast

(* ------------------------------------------------------------------ *)
(* PRISM-export rules: lints over a Prism.Ast.model, guarding the
   Core.To_prism export path (and hand-written models alike). These do not
   run on Arcade XML by default — they fire from arcade2prism and from
   arcade_lint --prism. *)

(* A constants-only environment: Eval_error means "depends on a state
   variable", which is fine — only guards that evaluate to a constant
   [false] independent of state are reported. *)
let constant_env (model : Ast.model) =
  match Prism.Eval.eval_constants model.Ast.constants with
  | constants ->
      Some
        (Prism.Eval.make_env ~constants ~formulas:model.Ast.formulas
           ~lookup_var:(fun _ -> None))
  | exception Prism.Eval.Eval_error _ -> None

let check (model : Ast.model) =
  let out = ref [] in
  let push d = out := d :: !out in
  (* ARC-P001: a guard that is constantly false — its command is dead *)
  (match constant_env model with
  | None -> ()
  | Some env ->
      List.iter
        (fun m ->
          List.iteri
            (fun i (cmd : Ast.command) ->
              match Prism.Eval.eval_bool env cmd.Ast.guard with
              | false ->
                  push
                    (D.make ~code:"ARC-P001" ~severity:D.Warning
                       ~subject:
                         (Printf.sprintf "module %s, command %d" m.Ast.mod_name
                            (i + 1))
                       "guard %s is constantly false: the command can never \
                        fire"
                       (Prism.Printer.expr_to_string cmd.Ast.guard)
                       ~hint:"remove the command or fix the guard")
              | true -> ()
              | exception Prism.Eval.Eval_error _ ->
                  (* depends on state variables: not statically decidable *)
                  ())
            m.Ast.mod_commands)
        model.Ast.modules);
  (* Name-usage census for ARC-P002 / ARC-P003. A name is used when it
     appears in any expression of the model outside its own definition. *)
  let uses = Hashtbl.create 32 in
  let use name = Hashtbl.replace uses name () in
  let use_expr e = List.iter use (Ast.expr_vars e) in
  List.iter (fun (f : Ast.formula_def) -> use_expr f.Ast.formula_body) model.Ast.formulas;
  List.iter (fun (l : Ast.label_def) -> use_expr l.Ast.label_body) model.Ast.labels;
  List.iter
    (fun (c : Ast.const_def) -> use_expr c.Ast.const_value)
    model.Ast.constants;
  List.iter
    (fun (m : Ast.module_def) ->
      List.iter
        (fun (v : Ast.var_decl) ->
          (match v.Ast.var_type with
          | Ast.Tbool -> ()
          | Ast.Tint_range (lo, hi) ->
              use_expr lo;
              use_expr hi);
          Option.iter use_expr v.Ast.var_init)
        m.Ast.mod_vars;
      List.iter
        (fun (cmd : Ast.command) ->
          use_expr cmd.Ast.guard;
          List.iter
            (fun (a : Ast.alternative) ->
              use_expr a.Ast.weight;
              List.iter (fun (_, e) -> use_expr e) a.Ast.update)
            cmd.Ast.alternatives)
        m.Ast.mod_commands)
    model.Ast.modules;
  List.iter
    (fun (r : Ast.rewards_def) ->
      List.iter
        (fun (item : Ast.reward_item) ->
          use_expr item.Ast.reward_guard;
          use_expr item.Ast.reward_value)
        r.Ast.rewards_items)
    model.Ast.rewards;
  (* ARC-P002: unused constant *)
  List.iter
    (fun (c : Ast.const_def) ->
      if not (Hashtbl.mem uses c.Ast.const_name) then
        push
          (D.make ~code:"ARC-P002" ~severity:D.Warning
             ~subject:(Printf.sprintf "constant %s" c.Ast.const_name)
             "constant is never referenced"))
    model.Ast.constants;
  (* ARC-P003: unused formula. A formula used only by another unused
     formula still counts as used here — one pass is enough for the
     translator's output, where formula chains are shallow. *)
  List.iter
    (fun (f : Ast.formula_def) ->
      if not (Hashtbl.mem uses f.Ast.formula_name) then
        push
          (D.make ~code:"ARC-P003" ~severity:D.Warning
             ~subject:(Printf.sprintf "formula %s" f.Ast.formula_name)
             "formula is never referenced by a label, guard, rate, update \
              or reward"))
    model.Ast.formulas;
  List.rev !out
