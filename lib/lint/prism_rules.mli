(** PRISM-export lint rules (ARC-P family), guarding the {!Core.To_prism} path
    (and hand-written {!Prism.Ast} models alike). Not part of the default
    XML lint: they run from [arcade2prism] and [arcade_lint --prism].

    Rule catalogue:
    - [ARC-P001] (warning): a command guard that evaluates to [false] from
      constants and formulas alone — the command can never fire.
    - [ARC-P002] (warning): a constant never referenced.
    - [ARC-P003] (warning): a formula never referenced by a label, guard,
      rate, update or reward. *)

val check : Prism.Ast.model -> Diagnostic.t list
