module D = Diagnostic
module Ast = Csl.Ast

(* ------------------------------------------------------------------ *)
(* Query-layer rules: a static CSL/CSRL checker. The contract is that any
   formula this pass accepts will not raise Csl.Checker.Unsupported when
   evaluated through Core.Measures.to_csl_model — every Unsupported site in
   Csl.Checker (unknown label, unresolvable atomic, nested =?, unknown
   reward) has a rule here, checked against the model's actual label and
   reward sets without ever building the state space. *)

type atomics = ANone | AVars of string list | AAll

type context = {
  model_name : string;
  labels : string list;
  any_sl : bool;
      (** accept any [sl_ge_<digits>] label without enumerating levels *)
  rewards : string option list;
  atomics : atomics;
  multiple_bsccs : bool;
}

(* Mirrors Core.Measures.make_csl_model exactly: the labels are "down",
   "operational", "full_service", "sl_ge_<i>" per service level, and
   "<c>_failed" / "<c>:<mode>" per component; the rewards are "cost",
   "component_cost" and "repair_cost". make_csl_model goes through
   Csl.Checker.of_chain, whose atomic resolver is the constant None — so
   every Atomic expression is statically an error (ARC-Q006). *)
let context_of_model ?(multiple_bsccs = false) (model : Core.Model.t) =
  let component_labels =
    List.concat_map
      (fun (c : Core.Component.t) ->
        (c.Core.Component.name ^ "_failed")
        :: List.filter_map
             (fun (m : Core.Component.failure_mode) ->
               if m.Core.Component.fm_name = "failed" then None
               else Some (c.Core.Component.name ^ ":" ^ m.Core.Component.fm_name))
             (Core.Component.modes c))
      model.Core.Model.components
  in
  (* service-level enumeration walks the tree's satisfying assignments;
     skip it for big trees and accept any sl_ge_<digits> instead *)
  let big = List.length (Fault_tree.basics model.Core.Model.fault_tree) > 20 in
  let level_labels =
    if big then []
    else
      List.mapi
        (fun i _ -> Printf.sprintf "sl_ge_%d" i)
        (Core.Model.service_levels model)
  in
  {
    model_name = model.Core.Model.name;
    labels =
      [ "down"; "operational"; "full_service" ] @ level_labels @ component_labels;
    any_sl = big;
    rewards = [ Some "cost"; Some "component_cost"; Some "repair_cost" ];
    atomics = ANone;
    multiple_bsccs;
  }

let is_sl_label name =
  String.length name > 6
  && String.sub name 0 6 = "sl_ge_"
  && String.for_all
       (fun c -> c >= '0' && c <= '9')
       (String.sub name 6 (String.length name - 6))

let check_ast ?position ctx ~subject formula =
  let out = ref [] in
  let push ?hint ~code ~severity fmt =
    Printf.ksprintf
      (fun message ->
        out := D.make ?hint ?position ~code ~severity ~subject "%s" message :: !out)
      fmt
  in
  let bad_time t = t < 0. || not (Float.is_finite t) in
  let check_interval = function
    | Ast.Unbounded -> ()
    | Ast.Upto t ->
        if bad_time t then
          push ~code:"ARC-Q005" ~severity:D.Error
            "time bound <= %g is not a non-negative finite time" t
    | Ast.Within (a, b) ->
        if bad_time a || not (Float.is_finite b) then
          push ~code:"ARC-Q005" ~severity:D.Error
            "time interval [%g, %g] is not within [0, oo)" a b
        else if b < a then
          push ~code:"ARC-Q005" ~severity:D.Error
            "time interval [%g, %g] is inverted" a b
  in
  let check_prob_bound = function
    | Ast.Query -> ()
    | Ast.Bounded (cmp, p) ->
        if p < 0. || p > 1. || not (Float.is_finite p) then
          push ~code:"ARC-Q008" ~severity:D.Warning
            "probability bound %g is outside [0, 1]" p
        else if (cmp = Ast.Ge && p = 0.) || (cmp = Ast.Le && p = 1.) then
          push ~code:"ARC-Q008" ~severity:D.Warning
            "probability bound is trivially true (%s %g holds for every \
             probability)"
            (match cmp with Ast.Ge -> ">=" | _ -> "<=")
            p
        else if (cmp = Ast.Lt && p = 0.) || (cmp = Ast.Gt && p = 1.) then
          push ~code:"ARC-Q008" ~severity:D.Warning
            "probability bound is trivially false (no probability is %s %g)"
            (match cmp with Ast.Lt -> "<" | _ -> ">")
            p
  in
  let steady_warning kind =
    if ctx.multiple_bsccs then
      push ~code:"ARC-Q007" ~severity:D.Warning
        ~hint:
          "the chain has several recurrent classes (see ARC-C002); the \
           result is a weighted mix over classes reachable from the \
           initial state"
        "%s on a chain whose long-run behaviour depends on the initial state"
        kind
  in
  let rec state ~top formula =
    match formula with
    | Ast.True | Ast.False -> ()
    | Ast.Label name ->
        if
          not
            (List.mem name ctx.labels || (ctx.any_sl && is_sl_label name))
        then
          push ~code:"ARC-Q002" ~severity:D.Error
            ?hint:(D.did_you_mean name ctx.labels)
            "unknown label %S (model %s defines: %s)" name ctx.model_name
            (String.concat ", "
               (List.filteri (fun i _ -> i < 6) ctx.labels)
            ^ if List.length ctx.labels > 6 then ", ..." else "")
    | Ast.Atomic expr -> (
        match ctx.atomics with
        | AAll -> ()
        | ANone ->
            push ~code:"ARC-Q006" ~severity:D.Error
              ~hint:"use a quoted label instead, e.g. \"down\""
              "atomic expression %s cannot be resolved against an Arcade \
               model (only labels are available)"
              (Prism.Printer.expr_to_string expr)
        | AVars vars ->
            List.iter
              (fun v ->
                if not (List.mem v vars) then
                  push ~code:"ARC-Q006" ~severity:D.Error
                    ?hint:(D.did_you_mean v vars)
                    "atomic expression references unknown state variable %s" v)
              (Prism.Ast.expr_vars expr))
    | Ast.Not f -> state ~top:false f
    | Ast.And (a, b) | Ast.Or (a, b) | Ast.Implies (a, b) ->
        state ~top:false a;
        state ~top:false b
    | Ast.P (bound, path_f) ->
        nested_query ~top bound "P";
        check_prob_bound bound;
        path path_f
    | Ast.S (bound, f) ->
        nested_query ~top bound "S";
        check_prob_bound bound;
        steady_warning "a steady-state (S) query";
        state ~top:false f
    | Ast.R (name, bound, query) ->
        nested_query ~top bound "R";
        (match bound with
        | Ast.Bounded (_, v) when not (Float.is_finite v) ->
            push ~code:"ARC-Q005" ~severity:D.Error
              "reward bound %g is not finite" v
        | _ -> ());
        if not (List.mem name ctx.rewards) then
          push ~code:"ARC-Q003" ~severity:D.Error
            ?hint:
              (D.did_you_mean
                 (Option.value name ~default:"")
                 (List.filter_map Fun.id ctx.rewards))
            "unknown reward structure %s (model %s defines: %s)"
            (match name with None -> "(unnamed)" | Some n -> Printf.sprintf "%S" n)
            ctx.model_name
            (String.concat ", " (List.filter_map Fun.id ctx.rewards));
        (match query with
        | Ast.Instantaneous t ->
            if bad_time t then
              push ~code:"ARC-Q005" ~severity:D.Error
                "instantaneous reward time %g is not a non-negative finite \
                 time"
                t
        | Ast.Cumulative t ->
            if bad_time t then
              push ~code:"ARC-Q005" ~severity:D.Error
                "cumulative reward horizon %g is not a non-negative finite \
                 time"
                t
        | Ast.Steady -> steady_warning "a long-run reward (R[S]) query")
  and nested_query ~top bound op =
    if (not top) && bound = Ast.Query then
      push ~code:"ARC-Q004" ~severity:D.Error
        "%s=? cannot be nested inside a state formula" op
        ~hint:"give the inner operator an explicit bound, e.g. P>=0.99 [...]"
  and path = function
    | Ast.Next (i, f) | Ast.Eventually (i, f) | Ast.Globally (i, f) ->
        check_interval i;
        state ~top:false f
    | Ast.Until (a, i, b) ->
        check_interval i;
        state ~top:false a;
        state ~top:false b
  in
  state ~top:true formula;
  List.rev !out

let check_string ?position ctx ~subject input =
  match Csl.Parser.parse input with
  | ast -> check_ast ?position ctx ~subject ast
  | exception Csl.Parser.Syntax_error { line; column; message; _ } ->
      [
        D.make ?position ~code:"ARC-Q001" ~severity:D.Error ~subject
          "syntax error at %d:%d in query: %s" line column message;
      ]
