(** Query-layer lint rules (ARC-Q family): a static CSL/CSRL checker.

    The contract: any formula this pass accepts will not raise
    {!Csl.Checker.Unsupported} when evaluated through
    [Core.Measures.to_csl_model] — every [Unsupported] site in the dynamic
    checker has a static rule here, validated against the model's actual
    label and reward sets without building the state space.

    Rule catalogue:
    - [ARC-Q001] (error): CSL syntax error (with line:column inside the
      query string).
    - [ARC-Q002] (error): unknown label, with a "did you mean" hint.
    - [ARC-Q003] (error): unknown reward structure.
    - [ARC-Q004] (error): a [=?] query nested inside a state formula.
    - [ARC-Q005] (error): negative, non-finite or inverted time bound.
    - [ARC-Q006] (error): atomic state expression the model cannot resolve.
    - [ARC-Q007] (warning): steady-state query ([S] or [R[S]]) on a chain
      with several recurrent classes.
    - [ARC-Q008] (warning): trivial or out-of-range probability bound. *)

type atomics =
  | ANone  (** no atomic expressions resolvable (Arcade models) *)
  | AVars of string list  (** resolvable against these state variables *)
  | AAll  (** everything resolvable (PRISM-built models) *)

type context = {
  model_name : string;
  labels : string list;
  any_sl : bool;
      (** accept any [sl_ge_<digits>] label without enumerating levels *)
  rewards : string option list;
  atomics : atomics;
  multiple_bsccs : bool;
}

val context_of_model : ?multiple_bsccs:bool -> Core.Model.t -> context
(** The context matching [Core.Measures.make_csl_model] exactly: labels
    [down], [operational], [full_service], [sl_ge_<i>], [<c>_failed],
    [<c>:<mode>]; rewards [cost], [component_cost], [repair_cost]; no
    resolvable atomics. For fault trees with more than 20 basic events the
    service levels are not enumerated and any [sl_ge_<digits>] label is
    accepted ([any_sl]). *)

val check_ast :
  ?position:int * int ->
  context ->
  subject:string ->
  Csl.Ast.state_formula ->
  Diagnostic.t list

val check_string :
  ?position:int * int -> context -> subject:string -> string -> Diagnostic.t list
(** Parses and checks; a parse failure yields a single [ARC-Q001]. *)
