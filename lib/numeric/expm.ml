module A1 = Bigarray.Array1

let dims a =
  let n = Array.length a in
  Array.iter
    (fun row -> if Array.length row <> n then invalid_arg "Expm: matrix not square")
    a;
  n

(* Dense n×n matrices live in a {!Multivec} row-major (row [i] is the
   width-n block of index [i]), so the scaling-and-squaring loop runs on
   flat float64 buffers and shares the axpy/scale/norm helpers with the
   rest of the kernel layer instead of nested [float array array] loops. *)

let of_rows n a =
  let m = Multivec.create ~dim:n ~width:n in
  let d = Multivec.data m in
  for i = 0 to n - 1 do
    let base = i * n in
    let row = a.(i) in
    for j = 0 to n - 1 do
      A1.unsafe_set d (base + j) (Array.unsafe_get row j)
    done
  done;
  m

let to_rows m =
  let n = Multivec.dim m in
  Array.init n (fun i -> Array.init n (fun j -> Multivec.get m i j))

let identity_mv n =
  let m = Multivec.create ~dim:n ~width:n in
  for i = 0 to n - 1 do
    Multivec.set m i i 1.
  done;
  m

(* c <- a * b in ikj order: the inner loop streams one row of [b] against
   one scalar of [a], all three buffers contiguous. *)
let mat_mul_into n a b c =
  Multivec.fill c 0.;
  let ad = Multivec.data a and bd = Multivec.data b and cd = Multivec.data c in
  for i = 0 to n - 1 do
    let ib = i * n in
    for k = 0 to n - 1 do
      let aik = A1.unsafe_get ad (ib + k) in
      if aik <> 0. then begin
        let kb = k * n in
        for j = 0 to n - 1 do
          A1.unsafe_set cd (ib + j)
            (A1.unsafe_get cd (ib + j) +. (aik *. A1.unsafe_get bd (kb + j)))
        done
      end
    done
  done

let expm a =
  let n = dims a in
  if n = 0 then [||]
  else begin
    let am = of_rows n a in
    (* scaling: find k with ||a / 2^k|| <= 0.5 *)
    let norm = Multivec.abs_row_sum_max am in
    let k =
      if norm <= 0.5 then 0
      else max 0 (int_of_float (Float.ceil (Float.log (norm /. 0.5) /. Float.log 2.)))
    in
    Multivec.scale_uniform (1. /. Float.pow 2. (float_of_int k)) am;
    (* Taylor series sum_j scaled^j / j!, converges fast for norm <= 0.5 *)
    let result = ref (identity_mv n) in
    let term = ref (identity_mv n) in
    let next = ref (Multivec.create ~dim:n ~width:n) in
    let j = ref 1 in
    let continue = ref true in
    while !continue do
      mat_mul_into n !term am !next;
      Multivec.scale_uniform (1. /. float_of_int !j) !next;
      let t = !term in
      term := !next;
      next := t;
      Multivec.axpy_uniform 1. !term !result;
      if Multivec.abs_row_sum_max !term < 1e-18 || !j > 60 then
        continue := false;
      incr j
    done;
    (* squaring *)
    let out = ref !result in
    let scratch = ref (Multivec.create ~dim:n ~width:n) in
    for _ = 1 to k do
      mat_mul_into n !out !out !scratch;
      let t = !out in
      out := !scratch;
      scratch := t
    done;
    to_rows !out
  end

let expm_generator q t =
  let n = Sparse.rows q in
  if Sparse.cols q <> n then invalid_arg "Expm.expm_generator: not square";
  let dense = Array.make_matrix n n 0. in
  Sparse.iteri q (fun i j x -> dense.(i).(j) <- dense.(i).(j) +. (x *. t));
  expm dense
