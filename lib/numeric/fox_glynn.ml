type t = {
  lambda : float;
  left : int;
  right : int;
  weights : float array;
}

(* Mode-centred computation: start from an unnormalized weight of 1 at the
   mode m = floor(lambda) and extend with the recurrences
     p(k+1) = p(k) * lambda / (k+1)      (rightwards)
     p(k-1) = p(k) * k / lambda          (leftwards)
   stopping when the unnormalized weight falls below
   [cutoff = epsilon * running_total / 4]. Unnormalized weights are bounded
   by 1, so there is no overflow; underflow only truncates negligible
   mass. Finally normalize by an estimate of the full mass. For moderate
   lambda (< 25) we normalize with exp(-lambda) directly, which is exact;
   for large lambda we normalize by the window total, which differs from the
   true mass by at most epsilon. *)
(* Window-size telemetry: every compute reports its truncation window to
   the metrics registry and (when tracing) runs under its own span, so a
   trace shows where weight computation time goes as lambda*t grows. *)
let m_computes = Obs.Metrics.counter "fox_glynn.computes"

let m_window = Obs.Metrics.histogram "fox_glynn.window_width"

let report ?obs t =
  Obs.Metrics.incr m_computes;
  Obs.Metrics.observe m_window (float_of_int (t.right - t.left + 1));
  (match obs with Some f -> f t | None -> ());
  t

let compute ?(epsilon = 1e-12) ?obs lambda =
  if not (Float.is_finite lambda) || lambda < 0. then
    invalid_arg "Fox_glynn.compute: lambda must be finite and non-negative";
  if not (Float.is_finite epsilon) || epsilon <= 0. || epsilon >= 1. then
    invalid_arg "Fox_glynn.compute: epsilon out of (0,1)";
  if lambda = 0. then
    report ?obs { lambda; left = 0; right = 0; weights = [| 1. |] }
  else begin
    Obs.Trace.with_span "fox_glynn.compute" @@ fun span ->
    let mode = int_of_float (Float.floor lambda) in
    (* Collect unnormalized weights going right then left. *)
    let right_list = ref [] and right_count = ref 0 in
    let w = ref 1. and k = ref mode in
    let running_total = ref 1. in
    let continue = ref true in
    while !continue do
      let k' = !k + 1 in
      let w' = !w *. lambda /. float_of_int k' in
      if w' < epsilon /. 4. *. !running_total && k' > mode + 2 then
        continue := false
      else begin
        right_list := w' :: !right_list;
        incr right_count;
        running_total := !running_total +. w';
        w := w';
        k := k'
      end
    done;
    let left_list = ref [] and left_count = ref 0 in
    let w = ref 1. and k = ref mode in
    let continue = ref true in
    while !continue && !k > 0 do
      let w' = !w *. float_of_int !k /. lambda in
      let k' = !k - 1 in
      if w' < epsilon /. 4. *. !running_total then continue := false
      else begin
        left_list := w' :: !left_list;
        incr left_count;
        running_total := !running_total +. w';
        w := w';
        k := k'
      end
    done;
    let left = mode - !left_count and right = mode + !right_count in
    let n = right - left + 1 in
    let weights = Array.make n 0. in
    (* left_list currently holds weights for indices left..mode-1 in order. *)
    List.iteri (fun i x -> weights.(i) <- x) !left_list;
    weights.(mode - left) <- 1.;
    (* right_list holds weights mode+1..right reversed. *)
    let idx = ref (n - 1) in
    List.iter
      (fun x ->
        weights.(!idx) <- x;
        decr idx)
      !right_list;
    let norm =
      if lambda < 25. then begin
        (* exact: total unnormalized mass of the full distribution is
           e^lambda / (lambda^mode / mode!) ... easier: weights are
           lambda^k/k! / (lambda^mode/mode!), so multiply by
           lambda^mode/mode! * e^-lambda, computed stably in log space. *)
        let log_mode_weight =
          (float_of_int mode *. Float.log lambda)
          -. (let acc = ref 0. in
              for i = 2 to mode do
                acc := !acc +. Float.log (float_of_int i)
              done;
              !acc)
          -. lambda
        in
        1. /. Float.exp log_mode_weight
      end
      else Array.fold_left ( +. ) 0. weights
    in
    let weights = Array.map (fun x -> x /. norm) weights in
    if Obs.Trace.recording span then begin
      Obs.Trace.add_attr span "lambda" (Obs.Float lambda);
      Obs.Trace.add_attr span "left" (Obs.Int left);
      Obs.Trace.add_attr span "right" (Obs.Int right)
    end;
    report ?obs { lambda; left; right; weights }
  end

let total_mass t = Array.fold_left ( +. ) 0. t.weights

let pmf t k =
  if k < t.left || k > t.right then 0. else t.weights.(k - t.left)

let cumulative_tail t =
  let n = Array.length t.weights in
  let tail = Array.make (n + 1) 0. in
  for i = n - 1 downto 0 do
    tail.(i) <- tail.(i + 1) +. t.weights.(i)
  done;
  tail
