(** Poisson probability weights for uniformization (Fox–Glynn style).

    Computes the window [left, right] and weights [w.(k - left)] such that
    [w.(k - left)] approximates the Poisson probability
    [e^-lambda * lambda^k / k!] and the truncated mass outside the window is
    below the requested [epsilon]. The weights are computed with a
    mode-centred multiplicative recurrence, which is numerically stable for
    the large [lambda] values uniformization produces (the classic Fox–Glynn
    finder's purpose); the final normalization divides by the window total,
    so the returned weights sum to at most 1 and to at least [1 - epsilon]
    of the true distribution. *)

type t = private {
  lambda : float;
  left : int; (** first index of the window *)
  right : int; (** last index of the window *)
  weights : float array; (** [weights.(k - left)] = Poisson(lambda; k) *)
}

val compute : ?epsilon:float -> ?obs:(t -> unit) -> float -> t
(** [compute ~epsilon lambda] computes the truncated weights. [lambda] must
    be finite and non-negative and [epsilon] finite in (0,1) — NaN or
    infinite values raise [Invalid_argument]. [epsilon] defaults to
    [1e-12]. For [lambda = 0.] the
    window is [[0, 0]] with weight 1.

    [obs] receives the finished window (once per call). Independent of the
    hook, every compute bumps the [fox_glynn.computes] counter and the
    [fox_glynn.window_width] histogram in {!Obs.Metrics}, and runs under a
    [fox_glynn.compute] span (with [lambda]/[left]/[right] attributes)
    when tracing is enabled. *)

val total_mass : t -> float
(** Sum of the retained weights (close to, and at most, 1). *)

val pmf : t -> int -> float
(** [pmf t k] is the weight for [k], or [0.] outside the window. *)

val cumulative_tail : t -> float array
(** [cumulative_tail t] has length [right - left + 2];
    entry [k - left] is [P(Poisson(lambda) >= k)] restricted to the window,
    i.e. the sum of weights from [k] to [right] (and index
    [right - left + 1] is 0). Used by the accumulated-reward integral. *)
