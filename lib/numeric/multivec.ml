module A1 = Bigarray.Array1

type buffer = (float, Bigarray.float64_elt, Bigarray.c_layout) A1.t

(* Interleaved storage: entry i of column c sits at [i * width + c], so
   the K column values of one index share a cache line — the layout the
   multi-RHS sparse kernels sweep. *)
type t = { mv_dim : int; mv_width : int; buf : buffer }

let create ~dim ~width =
  if dim < 0 || width < 0 || (width = 0 && dim > 0) then
    invalid_arg "Multivec.create: bad shape";
  let buf = A1.create Bigarray.float64 Bigarray.c_layout (dim * width) in
  A1.fill buf 0.;
  { mv_dim = dim; mv_width = width; buf }

let dim v = v.mv_dim

let width v = v.mv_width

let data v = v.buf

let check_index v i c =
  if i < 0 || i >= v.mv_dim || c < 0 || c >= v.mv_width then
    invalid_arg
      (Printf.sprintf "Multivec: index (%d,%d) out of %dx%d" i c v.mv_dim
         v.mv_width)

let get v i c =
  check_index v i c;
  A1.unsafe_get v.buf ((i * v.mv_width) + c)

let set v i c x =
  check_index v i c;
  A1.unsafe_set v.buf ((i * v.mv_width) + c) x

let fill v x = A1.fill v.buf x

let copy v =
  let c = create ~dim:v.mv_dim ~width:v.mv_width in
  A1.blit v.buf c.buf;
  c

let check_same_shape name a b =
  if a.mv_dim <> b.mv_dim || a.mv_width <> b.mv_width then
    invalid_arg
      (Printf.sprintf "Multivec.%s: shape mismatch (%dx%d vs %dx%d)" name
         a.mv_dim a.mv_width b.mv_dim b.mv_width)

let blit ~src ~dst =
  check_same_shape "blit" src dst;
  A1.blit src.buf dst.buf

let of_cols cols =
  let k = Array.length cols in
  if k = 0 then invalid_arg "Multivec.of_cols: no columns";
  let n = Vec.dim cols.(0) in
  Array.iter
    (fun c ->
      if Vec.dim c <> n then invalid_arg "Multivec.of_cols: ragged columns")
    cols;
  let v = create ~dim:n ~width:k in
  for i = 0 to n - 1 do
    let base = i * k in
    for c = 0 to k - 1 do
      A1.unsafe_set v.buf (base + c) (Array.unsafe_get cols.(c) i)
    done
  done;
  v

let col v c =
  if c < 0 || c >= v.mv_width then invalid_arg "Multivec.col: column out of range";
  let k = v.mv_width in
  Array.init v.mv_dim (fun i -> A1.unsafe_get v.buf ((i * k) + c))

let to_cols v = Array.init v.mv_width (col v)

let set_col v c x =
  if c < 0 || c >= v.mv_width then
    invalid_arg "Multivec.set_col: column out of range";
  if Vec.dim x <> v.mv_dim then
    invalid_arg "Multivec.set_col: dimension mismatch";
  let k = v.mv_width in
  for i = 0 to v.mv_dim - 1 do
    A1.unsafe_set v.buf ((i * k) + c) (Array.unsafe_get x i)
  done

let axpy_from_col a v c y =
  if c < 0 || c >= v.mv_width then
    invalid_arg "Multivec.axpy_from_col: column out of range";
  if Vec.dim y <> v.mv_dim then
    invalid_arg "Multivec.axpy_from_col: dimension mismatch";
  let k = v.mv_width in
  for i = 0 to v.mv_dim - 1 do
    Array.unsafe_set y i
      (Array.unsafe_get y i +. (a *. A1.unsafe_get v.buf ((i * k) + c)))
  done

let check_alphas name v alphas =
  if Array.length alphas <> v.mv_width then
    invalid_arg (Printf.sprintf "Multivec.%s: %d coefficients for width %d"
                   name (Array.length alphas) v.mv_width)

let axpy alphas x y =
  check_same_shape "axpy" x y;
  check_alphas "axpy" x alphas;
  let k = x.mv_width in
  for i = 0 to x.mv_dim - 1 do
    let base = i * k in
    for c = 0 to k - 1 do
      A1.unsafe_set y.buf (base + c)
        (A1.unsafe_get y.buf (base + c)
        +. (Array.unsafe_get alphas c *. A1.unsafe_get x.buf (base + c)))
    done
  done

let axpy_uniform a x y =
  check_same_shape "axpy_uniform" x y;
  let m = A1.dim x.buf in
  for p = 0 to m - 1 do
    A1.unsafe_set y.buf p (A1.unsafe_get y.buf p +. (a *. A1.unsafe_get x.buf p))
  done

let scale alphas v =
  check_alphas "scale" v alphas;
  let k = v.mv_width in
  for i = 0 to v.mv_dim - 1 do
    let base = i * k in
    for c = 0 to k - 1 do
      A1.unsafe_set v.buf (base + c)
        (Array.unsafe_get alphas c *. A1.unsafe_get v.buf (base + c))
    done
  done

let scale_uniform a v =
  let m = A1.dim v.buf in
  for p = 0 to m - 1 do
    A1.unsafe_set v.buf p (a *. A1.unsafe_get v.buf p)
  done

let max_norms v =
  let k = v.mv_width in
  let out = Array.make k 0. in
  for i = 0 to v.mv_dim - 1 do
    let base = i * k in
    for c = 0 to k - 1 do
      let x = Float.abs (A1.unsafe_get v.buf (base + c)) in
      if x > Array.unsafe_get out c then Array.unsafe_set out c x
    done
  done;
  out

let linf_distances a b =
  check_same_shape "linf_distances" a b;
  let k = a.mv_width in
  let out = Array.make k 0. in
  for i = 0 to a.mv_dim - 1 do
    let base = i * k in
    for c = 0 to k - 1 do
      let d =
        Float.abs (A1.unsafe_get a.buf (base + c) -. A1.unsafe_get b.buf (base + c))
      in
      if d > Array.unsafe_get out c then Array.unsafe_set out c d
    done
  done;
  out

let abs_row_sum_max v =
  let k = v.mv_width in
  let best = ref 0. in
  for i = 0 to v.mv_dim - 1 do
    let base = i * k in
    let acc = ref 0. in
    for c = 0 to k - 1 do
      acc := !acc +. Float.abs (A1.unsafe_get v.buf (base + c))
    done;
    if !acc > !best then best := !acc
  done;
  !best
