(** Blocks of K dense vectors in one unboxed buffer.

    A multivector holds [width] vectors of dimension [dim] in a single
    float64 {!Bigarray} with {e interleaved} layout: element [(i, c)] —
    entry [i] of column [c] — lives at offset [i * width + c]. The K
    entries of one index are therefore contiguous, which is exactly what
    the multi-RHS sparse kernels ({!Sparse.mul_multi_into},
    {!Sparse.vec_mul_multi_into}) need: every matrix entry that is decoded
    once serves all K columns from one cache line.

    Columns are exchanged with the rest of the engine as plain {!Vec.t}
    copies; the helpers below (axpy, scaling, per-column max norms)
    replace the per-vector loops previously duplicated across the solver
    and kernel layers. *)

type t

type buffer = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : dim:int -> width:int -> t
(** A zero-filled multivector of [width] columns of dimension [dim].
    Raises [Invalid_argument] when either is negative or [width] is 0 with
    a positive [dim]. *)

val dim : t -> int

val width : t -> int

val data : t -> buffer
(** The underlying storage; element [(i, c)] is at [i * width t + c].
    Exposed for the kernels in {!Sparse} and the solvers — ordinary
    callers should use the typed accessors below. *)

val get : t -> int -> int -> float
(** [get v i c] is entry [i] of column [c]; bounds-checked. *)

val set : t -> int -> int -> float -> unit

val fill : t -> float -> unit

val copy : t -> t

val blit : src:t -> dst:t -> unit
(** Copy [src] into [dst]; both shapes must match. *)

val of_cols : Vec.t array -> t
(** Pack an array of equal-length vectors as the columns of a fresh
    multivector. Raises [Invalid_argument] on an empty array or ragged
    lengths. *)

val to_cols : t -> Vec.t array
(** Unpack every column as a fresh {!Vec.t}. *)

val col : t -> int -> Vec.t
(** [col v c] is a fresh copy of column [c]. *)

val set_col : t -> int -> Vec.t -> unit
(** Overwrite column [c] from a vector of dimension [dim v]. *)

val axpy_from_col : float -> t -> int -> Vec.t -> unit
(** [axpy_from_col a v c y] updates [y <- y + a * v[:,c]] — the
    per-accumulator update of the batched uniformization sweep. *)

val axpy : float array -> t -> t -> unit
(** [axpy alphas x y] updates [y[:,c] <- y[:,c] + alphas.(c) * x[:,c]]
    for every column; [alphas] must have length [width]. *)

val axpy_uniform : float -> t -> t -> unit
(** [axpy_uniform a x y] is {!axpy} with the same coefficient for every
    column — dense matrices stored as multivectors add this way. *)

val scale : float array -> t -> unit
(** Per-column in-place scaling; [alphas] must have length [width]. *)

val scale_uniform : float -> t -> unit

val max_norms : t -> float array
(** Per-column max norm [max_i |v(i, c)|]. *)

val linf_distances : t -> t -> float array
(** Per-column max-norm distance between two multivectors of equal
    shape. *)

val abs_row_sum_max : t -> float
(** [max_i sum_c |v(i, c)|] — the matrix infinity norm when the
    multivector stores a dense matrix row-major. *)
