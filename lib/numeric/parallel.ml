(* Hand-rolled chunked parallel map over OCaml 5 domains.

   The experiment drivers fan independent per-configuration curve
   computations out over domains. Work is split into [domains] contiguous
   chunks, each processed by one spawned domain writing into disjoint
   slots of a shared result array — data-race-free because no index is
   written by two domains and the main domain only reads after joining.

   Nested [map] calls run sequentially (a domain-local flag marks worker
   context): when an already-parallel artifact generator calls a
   parallel curve driver, the inner level must not multiply the domain
   count. *)

(* Malformed env knobs fail loudly: a typo like PAR_DOMAINS=O2 used to
   silently fall back to the recommended domain count, changing a
   benchmark's parallelism with no signal at all. Every numeric knob in
   the tree (PAR_DOMAINS, the server's SERVER_* knobs) goes through
   [getenv_positive_int], which warns once per variable on stderr and
   then ignores the value. *)
let warned : (string, unit) Hashtbl.t = Hashtbl.create 4

let warned_mutex = Mutex.create ()

let getenv_positive_int name =
  match Sys.getenv_opt name with
  | None | Some "" -> None
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n >= 1 -> Some n
      | Some _ | None ->
          let first =
            Mutex.protect warned_mutex (fun () ->
                if Hashtbl.mem warned name then false
                else begin
                  Hashtbl.add warned name ();
                  true
                end)
          in
          if first then
            Printf.eprintf
              "warning: ignoring %s=%S: expected a positive integer\n%!" name v;
          None)

let default_domains () =
  match getenv_positive_int "PAR_DOMAINS" with
  | Some n -> n
  | None -> Domain.recommended_domain_count ()

let in_worker = Domain.DLS.new_key (fun () -> false)

let map ?domains f xs =
  let d = match domains with Some d -> max 1 d | None -> default_domains () in
  let n = List.length xs in
  if d = 1 || n <= 1 || Domain.DLS.get in_worker then List.map f xs
  else begin
    let input = Array.of_list xs in
    let output = Array.make n None in
    let workers = min d n in
    (* the submitter's trace context crosses the domain boundary with the
       chunk, so worker-side spans still join the submitting request's
       trace (domain-local context does not survive Domain.spawn) *)
    let ctx = Obs.Trace.current_context () in
    let spawn w =
      (* chunk w covers [w*n/workers, (w+1)*n/workers) *)
      let lo = w * n / workers and hi = (w + 1) * n / workers in
      Domain.spawn (fun () ->
          Domain.DLS.set in_worker true;
          Obs.Trace.with_context ctx @@ fun () ->
          (* the span lands in this worker domain's own Obs buffer, so
             Chrome traces show one track per domain with its chunk *)
          Obs.Trace.with_span "parallel.chunk" @@ fun span ->
          if Obs.Trace.recording span then begin
            Obs.Trace.add_attr span "worker" (Obs.Int w);
            Obs.Trace.add_attr span "items" (Obs.Int (hi - lo))
          end;
          for i = lo to hi - 1 do
            output.(i) <- Some (f input.(i))
          done)
    in
    let spawned = List.init workers spawn in
    (* join every domain before re-raising, so no worker outlives the call *)
    let failure =
      List.fold_left
        (fun failure dom ->
          match Domain.join dom with
          | () -> failure
          | exception e -> ( match failure with None -> Some e | some -> some))
        None spawned
    in
    (match failure with Some e -> raise e | None -> ());
    Array.to_list
      (Array.map (function Some y -> y | None -> assert false) output)
  end

let iter ?domains f xs = ignore (map ?domains (fun x -> f x) xs : unit list)

(* ------------------------------------------------------------------ *)
(* Persistent domain pool                                             *)

(* [map] spawns (and joins) fresh domains per call — fine for the
   experiment drivers, wasteful for a server dispatching work every few
   milliseconds. [Pool] keeps a fixed set of domains alive behind a
   mutex/condition task queue; completion is signalled per [run] call, and
   the mutex hand-offs establish the happens-before edges that make the
   result array reads safe. Workers mark themselves with [in_worker], so
   nested [map] (and nested [Pool.run]) degrade to sequential execution
   instead of deadlocking on the pool's own queue. *)
module Pool = struct
  type t = {
    size : int;
    tasks : (unit -> unit) Queue.t;
    m : Mutex.t;
    nonempty : Condition.t;
    mutable closed : bool;
    mutable workers : unit Domain.t array;
  }

  let worker pool =
    Domain.DLS.set in_worker true;
    let rec loop () =
      let task =
        Mutex.protect pool.m (fun () ->
            let rec next () =
              if not (Queue.is_empty pool.tasks) then Some (Queue.pop pool.tasks)
              else if pool.closed then None
              else begin
                Condition.wait pool.nonempty pool.m;
                next ()
              end
            in
            next ())
      in
      match task with
      | None -> ()
      | Some f ->
          f ();
          loop ()
    in
    loop ()

  let create ?domains () =
    let size =
      match domains with Some d -> max 1 d | None -> default_domains ()
    in
    let pool =
      {
        size;
        tasks = Queue.create ();
        m = Mutex.create ();
        nonempty = Condition.create ();
        closed = false;
        workers = [||];
      }
    in
    pool.workers <- Array.init size (fun _ -> Domain.spawn (fun () -> worker pool));
    pool

  let size pool = pool.size

  let map pool f xs =
    if Mutex.protect pool.m (fun () -> pool.closed) then
      invalid_arg "Parallel.Pool.map: pool is shut down";
    match xs with
    | [] -> []
    | [ x ] -> [ f x ]
    | xs when Domain.DLS.get in_worker -> List.map f xs
    | xs ->
        let input = Array.of_list xs in
        let n = Array.length input in
        let results = Array.make n None in
        let failures = Array.make n None in
        let remaining = ref n in
        let dm = Mutex.create () in
        let all_done = Condition.create () in
        (* capture the submitting request's trace context at enqueue time
           and re-install it in whichever pool domain runs the task, so a
           coalesced sweep executed on a worker shows up inside the
           request's trace *)
        let ctx = Obs.Trace.current_context () in
        Mutex.protect pool.m (fun () ->
            if pool.closed then
              invalid_arg "Parallel.Pool.map: pool is shut down";
            Array.iteri
              (fun i x ->
                Queue.add
                  (fun () ->
                    (match Obs.Trace.with_context ctx (fun () -> f x) with
                    | y -> results.(i) <- Some y
                    | exception e -> failures.(i) <- Some e);
                    Mutex.protect dm (fun () ->
                        decr remaining;
                        if !remaining = 0 then Condition.signal all_done))
                  pool.tasks)
              input;
            Condition.broadcast pool.nonempty);
        Mutex.protect dm (fun () ->
            while !remaining > 0 do
              Condition.wait all_done dm
            done);
        Array.iter (function Some e -> raise e | None -> ()) failures;
        Array.to_list
          (Array.map (function Some y -> y | None -> assert false) results)

  let shutdown pool =
    let workers =
      Mutex.protect pool.m (fun () ->
          if pool.closed then [||]
          else begin
            pool.closed <- true;
            Condition.broadcast pool.nonempty;
            let w = pool.workers in
            pool.workers <- [||];
            w
          end)
    in
    Array.iter Domain.join workers
end
