(* Hand-rolled chunked parallel map over OCaml 5 domains.

   The experiment drivers fan independent per-configuration curve
   computations out over domains. Work is split into [domains] contiguous
   chunks, each processed by one spawned domain writing into disjoint
   slots of a shared result array — data-race-free because no index is
   written by two domains and the main domain only reads after joining.

   Nested [map] calls run sequentially (a domain-local flag marks worker
   context): when an already-parallel artifact generator calls a
   parallel curve driver, the inner level must not multiply the domain
   count. *)

let default_domains () =
  match Sys.getenv_opt "PAR_DOMAINS" with
  | Some v -> (
      match int_of_string_opt v with
      | Some n when n >= 1 -> n
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let in_worker = Domain.DLS.new_key (fun () -> false)

let map ?domains f xs =
  let d = match domains with Some d -> max 1 d | None -> default_domains () in
  let n = List.length xs in
  if d = 1 || n <= 1 || Domain.DLS.get in_worker then List.map f xs
  else begin
    let input = Array.of_list xs in
    let output = Array.make n None in
    let workers = min d n in
    let spawn w =
      (* chunk w covers [w*n/workers, (w+1)*n/workers) *)
      let lo = w * n / workers and hi = (w + 1) * n / workers in
      Domain.spawn (fun () ->
          Domain.DLS.set in_worker true;
          (* the span lands in this worker domain's own Obs buffer, so
             Chrome traces show one track per domain with its chunk *)
          Obs.Trace.with_span "parallel.chunk" @@ fun span ->
          if Obs.Trace.recording span then begin
            Obs.Trace.add_attr span "worker" (Obs.Int w);
            Obs.Trace.add_attr span "items" (Obs.Int (hi - lo))
          end;
          for i = lo to hi - 1 do
            output.(i) <- Some (f input.(i))
          done)
    in
    let spawned = List.init workers spawn in
    (* join every domain before re-raising, so no worker outlives the call *)
    let failure =
      List.fold_left
        (fun failure dom ->
          match Domain.join dom with
          | () -> failure
          | exception e -> ( match failure with None -> Some e | some -> some))
        None spawned
    in
    (match failure with Some e -> raise e | None -> ());
    Array.to_list
      (Array.map (function Some y -> y | None -> assert false) output)
  end

let iter ?domains f xs = ignore (map ?domains (fun x -> f x) xs : unit list)
