(** Chunked parallel map over OCaml 5 domains.

    Built for the experiment drivers' fan-out: each element of the input
    is an independent piece of work (one repair-configuration curve, one
    artifact), and results come back in input order. The work is split
    into at most [domains] contiguous chunks, one spawned domain each.

    Results are deterministic: [map f xs] computes exactly [List.map f xs]
    regardless of the domain count — only wall-clock time changes.

    {b One session per domain:} {!Ctmc.Analysis} sessions (and anything
    else mutably cached) must not be shared across concurrently running
    domains. Workers must create their own sessions; see
    [Watertreatment.Experiments] for the pattern (domain-local caches).

    Nested [map] calls from inside a worker run sequentially, so
    composing parallel drivers cannot multiply the domain count. *)

val default_domains : unit -> int
(** The domain count used when [?domains] is not given: the [PAR_DOMAINS]
    environment variable when set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. [PAR_DOMAINS=1] forces fully
    sequential evaluation. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] applies [f] to every element, fanning the list out over at
    most [domains] domains (default {!default_domains}; values [< 1] are
    clamped to [1]). Falls back to plain [List.map] for a single domain,
    lists of length [<= 1], and calls nested inside a worker. If any
    application raises, all domains are joined and one of the raised
    exceptions is re-raised. *)

val iter : ?domains:int -> ('a -> unit) -> 'a list -> unit
(** [iter f xs] is [map] for side effects only. *)
