(** Chunked parallel map over OCaml 5 domains.

    Built for the experiment drivers' fan-out: each element of the input
    is an independent piece of work (one repair-configuration curve, one
    artifact), and results come back in input order. The work is split
    into at most [domains] contiguous chunks, one spawned domain each.

    Results are deterministic: [map f xs] computes exactly [List.map f xs]
    regardless of the domain count — only wall-clock time changes.

    {b One session per domain:} {!Ctmc.Analysis} sessions (and anything
    else mutably cached) must not be shared across concurrently running
    domains. Workers must create their own sessions; see
    [Watertreatment.Experiments] for the pattern (domain-local caches).

    Nested [map] calls from inside a worker run sequentially, so
    composing parallel drivers cannot multiply the domain count. *)

val getenv_positive_int : string -> int option
(** [getenv_positive_int name] parses the environment variable [name] as a
    positive integer. Unset or empty yields [None]; a malformed or
    non-positive value yields [None] {e loudly} — one warning per variable
    on stderr — instead of silently changing behavior (a typo like
    [PAR_DOMAINS=O2] used to alter parallelism with no signal). All
    numeric env knobs ([PAR_DOMAINS], the server's [SERVER_*] family)
    share this discipline. *)

val default_domains : unit -> int
(** The domain count used when [?domains] is not given: the [PAR_DOMAINS]
    environment variable when set to a positive integer
    ({!getenv_positive_int}), otherwise
    [Domain.recommended_domain_count ()]. [PAR_DOMAINS=1] forces fully
    sequential evaluation. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] applies [f] to every element, fanning the list out over at
    most [domains] domains (default {!default_domains}; values [< 1] are
    clamped to [1]). Falls back to plain [List.map] for a single domain,
    lists of length [<= 1], and calls nested inside a worker. If any
    application raises, all domains are joined and one of the raised
    exceptions is re-raised. *)

val iter : ?domains:int -> ('a -> unit) -> 'a list -> unit
(** [iter f xs] is [map] for side effects only. *)

(** A persistent fixed-size domain pool.

    {!map} spawns and joins fresh domains per call — fine for batch
    drivers, wasteful for a long-lived server dispatching small groups of
    work every few milliseconds. A [Pool.t] keeps its domains alive
    behind a task queue; every {!Pool.map} hands its items to the pool
    and blocks until all complete.

    The same session-ownership rule as {!map} applies: work items must
    not share mutable caches with concurrently running items. Calls from
    inside any worker (pool or {!map}) run sequentially, so nesting never
    deadlocks on the pool's own queue. *)
module Pool : sig
  type t

  val create : ?domains:int -> unit -> t
  (** Spawn the worker domains ([domains] defaults to
      {!default_domains}; values [< 1] are clamped to [1]). *)

  val size : t -> int

  val map : t -> ('a -> 'b) -> 'a list -> 'b list
  (** [map pool f xs] computes [List.map f xs] with the applications
      distributed over the pool's domains, preserving order. If any
      application raises, all items still run to completion and one of
      the raised exceptions is re-raised. Raises [Invalid_argument] on a
      shut-down pool. *)

  val shutdown : t -> unit
  (** Finish queued work, stop and join every worker. Idempotent;
      subsequent {!map} calls raise. *)
end
