type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64 is the recommended seeder for xoshiro: it diffuses low-entropy
   seeds into well-distributed state words. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref seed in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 g =
  let open Int64 in
  let result = add (rotl (add g.s0 g.s3) 23) g.s0 in
  let t = shift_left g.s1 17 in
  g.s2 <- logxor g.s2 g.s0;
  g.s3 <- logxor g.s3 g.s1;
  g.s1 <- logxor g.s1 g.s2;
  g.s0 <- logxor g.s0 g.s3;
  g.s2 <- logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let split g = create (bits64 g)

let float g =
  (* top 53 bits -> [0,1) *)
  let bits = Int64.shift_right_logical (bits64 g) 11 in
  Int64.to_float bits *. 0x1.0p-53

let uniform g x = float g *. x

let int g n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  if n = 1 then 0
  else begin
    (* masked rejection over 62 raw bits: keep the smallest all-ones mask
       covering n-1 and retry draws >= n. Every surviving value is equally
       likely, for any n — unlike float scaling, which collapses 2^64
       states onto 53 bits and rounds, so some residues occur more often *)
    let mask =
      let m = ref (n - 1) in
      m := !m lor (!m lsr 1);
      m := !m lor (!m lsr 2);
      m := !m lor (!m lsr 4);
      m := !m lor (!m lsr 8);
      m := !m lor (!m lsr 16);
      m := !m lor (!m lsr 32);
      !m
    in
    let rec draw () =
      let bits = Int64.to_int (Int64.shift_right_logical (bits64 g) 2) in
      let k = bits land mask in
      if k < n then k else draw ()
    in
    draw ()
  end

let exponential g ~rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  let u = 1. -. float g in
  (* u in (0,1] so log is finite *)
  -.Float.log u /. rate

let choose_weighted g ws =
  let total = Array.fold_left ( +. ) 0. ws in
  if total <= 0. then invalid_arg "Rng.choose_weighted: zero total weight";
  let target = uniform g total in
  let n = Array.length ws in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. ws.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.
