(** Deterministic pseudo-random numbers for the CTMC simulator.

    A self-contained xoshiro256++ generator (seeded through splitmix64) so
    simulation runs are reproducible independently of the OCaml stdlib's
    [Random] state and version. *)

type t

val create : int64 -> t
(** [create seed] builds a generator from a 64-bit seed. *)

val split : t -> t
(** A new generator statistically independent of the parent (jump by
    reseeding from the parent's stream). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [[0, 1)]. 53-bit resolution. *)

val uniform : t -> float -> float
(** [uniform t x] is uniform in [[0, x)]. *)

val int : t -> int -> int
(** [int t n] is uniform in [[0, n-1]]; [n] must be positive. Exactly
    uniform for every [n] (masked rejection sampling over raw bits, no
    float scaling and hence no modulo or rounding bias). *)

val exponential : t -> rate:float -> float
(** Exponentially distributed sample with the given positive [rate]. *)

val choose_weighted : t -> float array -> int
(** [choose_weighted t ws] samples an index with probability proportional to
    the non-negative weights [ws]; the weights must not all be zero. *)
