type convergence = {
  iterations : int;
  residual : float;
  converged : bool;
}

exception
  Did_not_converge of {
    solver : string;
    max_iter : int;
    info : convergence;
  }

let () =
  Printexc.register_printer (function
    | Did_not_converge { solver; max_iter; info } ->
        Some
          (Printf.sprintf
             "Solver.Did_not_converge: %s did not converge within %d \
              iterations (last residual %g)"
             solver max_iter info.residual)
    | _ -> None)

(* Every solve — converged or not — is reported the same way: to the
   caller's [?obs] hook, to the metrics registry (per-solver counters,
   last-residual gauge, residual histogram, recent-solve ring) and onto
   the enclosing trace span. Only then does non-convergence raise, so
   iteration counts and final residuals are never discarded. *)
let finish ?obs ~solver ~size ~max_iter span (c : convergence) =
  (match obs with Some f -> f c | None -> ());
  Obs.Metrics.record_solve ~solver ~size ~iterations:c.iterations
    ~residual:c.residual ~converged:c.converged;
  if Obs.Trace.recording span then begin
    Obs.Trace.add_attr span "iterations" (Obs.Int c.iterations);
    Obs.Trace.add_attr span "residual" (Obs.Float c.residual);
    Obs.Trace.add_attr span "converged" (Obs.Bool c.converged)
  end;
  if not c.converged then raise (Did_not_converge { solver; max_iter; info = c })

let span_states solver size f =
  Obs.Trace.with_span ("solver." ^ solver) (fun span ->
      if Obs.Trace.recording span then
        Obs.Trace.add_attr span "states" (Obs.Int size);
      f span)

let diagonal a =
  let n = Sparse.rows a in
  let d = Vec.zeros n in
  for i = 0 to n - 1 do
    Sparse.iter_row a i (fun j x -> if j = i then d.(i) <- d.(i) +. x)
  done;
  d

let check_diagonal name d =
  Array.iteri
    (fun i x ->
      if x = 0. then
        invalid_arg (Printf.sprintf "Solver.%s: zero diagonal at row %d" name i))
    d

let solve_gauss_seidel ?(tol = 1e-12) ?(max_iter = 100_000) ?obs ?x0 a b =
  let n = Sparse.rows a in
  if Sparse.cols a <> n || Vec.dim b <> n then
    invalid_arg "Solver.solve_gauss_seidel: dimension mismatch";
  let d = diagonal a in
  check_diagonal "solve_gauss_seidel" d;
  let x = match x0 with Some v -> Vec.copy v | None -> Vec.zeros n in
  span_states "gauss_seidel" n @@ fun span ->
  let rec sweep iter =
    let delta = ref 0. in
    for i = 0 to n - 1 do
      let acc = ref b.(i) in
      Sparse.iter_row a i (fun j v -> if j <> i then acc := !acc -. (v *. x.(j)));
      let xi = !acc /. d.(i) in
      let change = Float.abs (xi -. x.(i)) in
      if change > !delta then delta := change;
      x.(i) <- xi
    done;
    if !delta <= tol then
      { iterations = iter; residual = !delta; converged = true }
    else if iter >= max_iter then
      { iterations = iter; residual = !delta; converged = false }
    else sweep (iter + 1)
  in
  let c = sweep 1 in
  finish ?obs ~solver:"gauss_seidel" ~size:n ~max_iter span c;
  (x, c)

let solve_jacobi ?(tol = 1e-12) ?(max_iter = 100_000) ?obs ?x0 a b =
  let n = Sparse.rows a in
  if Sparse.cols a <> n || Vec.dim b <> n then
    invalid_arg "Solver.solve_jacobi: dimension mismatch";
  let d = diagonal a in
  check_diagonal "solve_jacobi" d;
  let x = match x0 with Some v -> Vec.copy v | None -> Vec.zeros n in
  let x' = Vec.zeros n in
  span_states "jacobi" n @@ fun span ->
  let rec sweep iter =
    for i = 0 to n - 1 do
      let acc = ref b.(i) in
      Sparse.iter_row a i (fun j v -> if j <> i then acc := !acc -. (v *. x.(j)));
      x'.(i) <- !acc /. d.(i)
    done;
    let delta = Vec.linf_distance x x' in
    Vec.blit ~src:x' ~dst:x;
    if delta <= tol then { iterations = iter; residual = delta; converged = true }
    else if iter >= max_iter then
      { iterations = iter; residual = delta; converged = false }
    else sweep (iter + 1)
  in
  let c = sweep 1 in
  finish ?obs ~solver:"jacobi" ~size:n ~max_iter span c;
  (x, c)

(* pi Q = 0  <=>  Q^T pi^T = 0. Gauss-Seidel on the transposed system:
   pi(j) <- sum_{i<>j} pi(i) * Q(i,j) / (-Q(j,j)), then renormalize. *)
let steady_state_gauss_seidel ?(tol = 1e-12) ?(max_iter = 100_000) ?obs q =
  let n = Sparse.rows q in
  if Sparse.cols q <> n then invalid_arg "Solver.steady_state: not square";
  if n = 0 then invalid_arg "Solver.steady_state: empty generator";
  let qt = Sparse.transpose q in
  let d = diagonal q in
  (* A state with exit rate 0 in an irreducible chain means n = 1. *)
  if n = 1 then begin
    let c = { iterations = 0; residual = 0.; converged = true } in
    (match obs with Some f -> f c | None -> ());
    Obs.Metrics.record_solve ~solver:"steady_gauss_seidel" ~size:1
      ~iterations:0 ~residual:0. ~converged:true;
    (Vec.create 1 1., c)
  end
  else begin
    check_diagonal "steady_state_gauss_seidel" d;
    let pi = Vec.create n (1. /. float_of_int n) in
    span_states "steady_gauss_seidel" n @@ fun span ->
    let rec sweep iter =
      let delta = ref 0. in
      for j = 0 to n - 1 do
        let acc = ref 0. in
        Sparse.iter_row qt j (fun i v -> if i <> j then acc := !acc +. (v *. pi.(i)));
        let pj = !acc /. -.d.(j) in
        let change = Float.abs (pj -. pi.(j)) in
        if change > !delta then delta := change;
        pi.(j) <- pj
      done;
      Vec.normalize_l1 pi;
      if !delta <= tol then
        { iterations = iter; residual = !delta; converged = true }
      else if iter >= max_iter then
        { iterations = iter; residual = !delta; converged = false }
      else sweep (iter + 1)
    in
    let c = sweep 1 in
    finish ?obs ~solver:"steady_gauss_seidel" ~size:n ~max_iter span c;
    (pi, c)
  end

let power_iteration ?(tol = 1e-12) ?(max_iter = 1_000_000) ?obs p pi0 =
  let n = Sparse.rows p in
  if Sparse.cols p <> n || Vec.dim pi0 <> n then
    invalid_arg "Solver.power_iteration: dimension mismatch";
  let pi = Vec.copy pi0 in
  let pi' = Vec.zeros n in
  span_states "power_iteration" n @@ fun span ->
  let rec step iter =
    Sparse.vec_mul_into pi p pi';
    let delta = Vec.linf_distance pi pi' in
    Vec.blit ~src:pi' ~dst:pi;
    if delta <= tol then { iterations = iter; residual = delta; converged = true }
    else if iter >= max_iter then
      { iterations = iter; residual = delta; converged = false }
    else step (iter + 1)
  in
  let c = step 1 in
  finish ?obs ~solver:"power_iteration" ~size:n ~max_iter span c;
  (pi, c)
