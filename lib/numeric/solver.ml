type criterion = Absolute | Relative

type convergence = {
  iterations : int;
  residual : float;
  converged : bool;
  criterion : criterion option;
}

exception
  Did_not_converge of {
    solver : string;
    max_iter : int;
    info : convergence;
  }

let () =
  Printexc.register_printer (function
    | Did_not_converge { solver; max_iter; info } ->
        Some
          (Printf.sprintf
             "Solver.Did_not_converge: %s did not converge within %d \
              iterations (last residual %g)"
             solver max_iter info.residual)
    | _ -> None)

(* Every solve — converged or not — is reported the same way: to the
   caller's [?obs] hook, to the metrics registry (per-solver counters,
   last-residual gauge, residual histogram, recent-solve ring) and onto
   the enclosing trace span. Only then does non-convergence raise, so
   iteration counts and final residuals are never discarded. *)
let finish ?obs ~solver ~size ~max_iter span (c : convergence) =
  (match obs with Some f -> f c | None -> ());
  Obs.Metrics.record_solve ~solver ~size ~iterations:c.iterations
    ~residual:c.residual ~converged:c.converged;
  if Obs.Trace.recording span then begin
    Obs.Trace.add_attr span "iterations" (Obs.Int c.iterations);
    Obs.Trace.add_attr span "residual" (Obs.Float c.residual);
    Obs.Trace.add_attr span "converged" (Obs.Bool c.converged)
  end;
  if not c.converged then raise (Did_not_converge { solver; max_iter; info = c })

let span_states solver size f =
  Obs.Trace.with_span ("solver." ^ solver) (fun span ->
      if Obs.Trace.recording span then
        Obs.Trace.add_attr span "states" (Obs.Int size);
      f span)

let diagonal a =
  let n = Sparse.rows a in
  let d = Vec.zeros n in
  for i = 0 to n - 1 do
    Sparse.iter_row a i (fun j x -> if j = i then d.(i) <- d.(i) +. x)
  done;
  d

let check_diagonal name d =
  Array.iteri
    (fun i x ->
      if x = 0. then
        invalid_arg (Printf.sprintf "Solver.%s: zero diagonal at row %d" name i))
    d

let check_order name n = function
  | None -> ()
  | Some o ->
      if Array.length o <> n then
        invalid_arg
          (Printf.sprintf "Solver.%s: order has length %d for %d rows" name
             (Array.length o) n);
      let seen = Array.make n false in
      Array.iter
        (fun i ->
          if i < 0 || i >= n || seen.(i) then
            invalid_arg
              (Printf.sprintf "Solver.%s: order is not a permutation" name);
          seen.(i) <- true)
        o

let max_abs v =
  let m = ref 0. in
  Array.iter (fun x -> let a = Float.abs x in if a > !m then m := a) v;
  !m

(* Which convergence test fired, if any. The absolute max-norm test is
   checked first; [rel_tol] additionally accepts a sweep whose change is
   small relative to the current iterate's magnitude, which is what keeps
   ill-conditioned large-N chains from iterating forever (or, with a
   loose absolute tolerance, from false-converging at the wrong scale —
   callers pair a tight [tol] with a [rel_tol]). *)
let fired ~tol ~rel_tol ~scale delta =
  if delta <= tol then Some Absolute
  else
    match rel_tol with
    | Some r when delta <= r *. scale -> Some Relative
    | _ -> None

(* Per-column iteration counts of the multi-RHS solvers: the regression
   oracle for SCC ordering (ordered sweeps should shift this histogram
   left). *)
let column_iterations =
  Obs.Metrics.histogram
    ~buckets:[| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 5000. |]
    "solver.column_iterations"

let solve_gauss_seidel ?(tol = 1e-12) ?rel_tol ?(max_iter = 100_000) ?obs
    ?order ?x0 a b =
  let n = Sparse.rows a in
  if Sparse.cols a <> n || Vec.dim b <> n then
    invalid_arg "Solver.solve_gauss_seidel: dimension mismatch";
  let d = diagonal a in
  check_diagonal "solve_gauss_seidel" d;
  check_order "solve_gauss_seidel" n order;
  let x = match x0 with Some v -> Vec.copy v | None -> Vec.zeros n in
  span_states "gauss_seidel" n @@ fun span ->
  let rec sweep iter =
    let delta = Sparse.gauss_seidel_sweep ?order a ~diag:d ~b ~x in
    let scale = if rel_tol = None then 0. else max_abs x in
    match fired ~tol ~rel_tol ~scale delta with
    | Some crit ->
        { iterations = iter; residual = delta; converged = true;
          criterion = Some crit }
    | None ->
        if iter >= max_iter then
          { iterations = iter; residual = delta; converged = false;
            criterion = None }
        else sweep (iter + 1)
  in
  let c = sweep 1 in
  finish ?obs ~solver:"gauss_seidel" ~size:n ~max_iter span c;
  (x, c)

let solve_jacobi ?(tol = 1e-12) ?rel_tol ?(max_iter = 100_000) ?obs ?x0 a b =
  let n = Sparse.rows a in
  if Sparse.cols a <> n || Vec.dim b <> n then
    invalid_arg "Solver.solve_jacobi: dimension mismatch";
  let d = diagonal a in
  check_diagonal "solve_jacobi" d;
  let x = match x0 with Some v -> Vec.copy v | None -> Vec.zeros n in
  let x' = Vec.zeros n in
  span_states "jacobi" n @@ fun span ->
  let rec sweep iter =
    Sparse.jacobi_sweep a ~diag:d ~b ~x ~x';
    let delta = Vec.linf_distance x x' in
    Vec.blit ~src:x' ~dst:x;
    let scale = if rel_tol = None then 0. else max_abs x in
    match fired ~tol ~rel_tol ~scale delta with
    | Some crit ->
        { iterations = iter; residual = delta; converged = true;
          criterion = Some crit }
    | None ->
        if iter >= max_iter then
          { iterations = iter; residual = delta; converged = false;
            criterion = None }
        else sweep (iter + 1)
  in
  let c = sweep 1 in
  finish ?obs ~solver:"jacobi" ~size:n ~max_iter span c;
  (x, c)

(* Shared driver for the multi-RHS solvers: [do_sweep] performs one
   blocked relaxation sweep and fills [deltas]. All K columns iterate
   together — one matrix pass per sweep regardless of K — and each
   column keeps its own convergence record: [done_at.(c)] is the sweep
   at which column [c] (most recently) entered the converged state. *)
let drive_multi ~solver ~tol ~rel_tol ~max_iter ?obs ~size ~width ~x do_sweep =
  span_states solver size @@ fun span ->
  if Obs.Trace.recording span then
    Obs.Trace.add_attr span "batch_width" (Obs.Int width);
  let deltas = Array.make width 0. in
  let done_at = Array.make width 0 in
  let crits = Array.make width None in
  let rec sweep iter =
    do_sweep ~deltas;
    let scales = if rel_tol = None then None else Some (Multivec.max_norms x) in
    let all = ref true in
    for c = 0 to width - 1 do
      let scale = match scales with None -> 0. | Some s -> s.(c) in
      match fired ~tol ~rel_tol ~scale deltas.(c) with
      | Some crit ->
          if crits.(c) = None then begin
            crits.(c) <- Some crit;
            done_at.(c) <- iter
          end
      | None ->
          crits.(c) <- None;
          all := false
    done;
    if !all || iter >= max_iter then iter else sweep (iter + 1)
  in
  let last = sweep 1 in
  let records =
    Array.init width (fun c ->
        let converged = crits.(c) <> None in
        { iterations = (if converged then done_at.(c) else last);
          residual = deltas.(c);
          converged;
          criterion = crits.(c) })
  in
  (* Report per column — hook, registry, histogram — before raising on
     the first unconverged column, exactly like the single-RHS path. *)
  Array.iter
    (fun c ->
      (match obs with Some f -> f c | None -> ());
      Obs.Metrics.record_solve ~solver ~size ~iterations:c.iterations
        ~residual:c.residual ~converged:c.converged;
      Obs.Metrics.observe column_iterations (float_of_int c.iterations))
    records;
  if Obs.Trace.recording span then begin
    Obs.Trace.add_attr span "iterations" (Obs.Int last);
    Obs.Trace.add_attr span "residual" (Obs.Float (max_abs deltas));
    Obs.Trace.add_attr span "converged"
      (Obs.Bool (Array.for_all (fun c -> c.converged) records))
  end;
  Array.iter
    (fun c ->
      if not c.converged then
        raise (Did_not_converge { solver; max_iter; info = c }))
    records;
  records

let check_multi_shapes name a b x0 =
  let n = Sparse.rows a in
  if Sparse.cols a <> n || Multivec.dim b <> n then
    invalid_arg (Printf.sprintf "Solver.%s: dimension mismatch" name);
  if Multivec.width b = 0 then
    invalid_arg (Printf.sprintf "Solver.%s: empty block" name);
  match x0 with
  | Some v when Multivec.dim v <> n || Multivec.width v <> Multivec.width b ->
      invalid_arg (Printf.sprintf "Solver.%s: x0 shape mismatch" name)
  | _ -> ()

let solve_gauss_seidel_multi ?(tol = 1e-12) ?rel_tol ?(max_iter = 100_000)
    ?obs ?order ?x0 a b =
  check_multi_shapes "solve_gauss_seidel_multi" a b x0;
  let n = Sparse.rows a and k = Multivec.width b in
  let d = diagonal a in
  check_diagonal "solve_gauss_seidel_multi" d;
  check_order "solve_gauss_seidel_multi" n order;
  let x =
    match x0 with
    | Some v -> Multivec.copy v
    | None -> Multivec.create ~dim:n ~width:k
  in
  let records =
    drive_multi ~solver:"gauss_seidel_multi" ~tol ~rel_tol ~max_iter ?obs
      ~size:n ~width:k ~x (fun ~deltas ->
        Sparse.gauss_seidel_sweep_multi ?order a ~diag:d ~b ~x ~deltas)
  in
  (x, records)

let solve_jacobi_multi ?(tol = 1e-12) ?rel_tol ?(max_iter = 100_000) ?obs ?x0
    a b =
  check_multi_shapes "solve_jacobi_multi" a b x0;
  let n = Sparse.rows a and k = Multivec.width b in
  let d = diagonal a in
  check_diagonal "solve_jacobi_multi" d;
  let x =
    match x0 with
    | Some v -> Multivec.copy v
    | None -> Multivec.create ~dim:n ~width:k
  in
  let x' = Multivec.create ~dim:n ~width:k in
  let records =
    drive_multi ~solver:"jacobi_multi" ~tol ~rel_tol ~max_iter ?obs ~size:n
      ~width:k ~x (fun ~deltas ->
        Sparse.jacobi_sweep_multi a ~diag:d ~b ~x ~x';
        let ds = Multivec.linf_distances x x' in
        Array.blit ds 0 deltas 0 k;
        Multivec.blit ~src:x' ~dst:x)
  in
  (x, records)

(* pi Q = 0  <=>  Q^T pi^T = 0. Gauss-Seidel on the transposed system:
   pi(j) <- sum_{i<>j} pi(i) * Q(i,j) / (-Q(j,j)), then renormalize. *)
let steady_state_gauss_seidel ?(tol = 1e-12) ?rel_tol ?(max_iter = 100_000)
    ?obs q =
  let n = Sparse.rows q in
  if Sparse.cols q <> n then invalid_arg "Solver.steady_state: not square";
  if n = 0 then invalid_arg "Solver.steady_state: empty generator";
  let qt = Sparse.transpose q in
  let d = diagonal q in
  (* A state with exit rate 0 in an irreducible chain means n = 1. *)
  if n = 1 then begin
    let c =
      { iterations = 0; residual = 0.; converged = true;
        criterion = Some Absolute }
    in
    (match obs with Some f -> f c | None -> ());
    Obs.Metrics.record_solve ~solver:"steady_gauss_seidel" ~size:1
      ~iterations:0 ~residual:0. ~converged:true;
    (Vec.create 1 1., c)
  end
  else begin
    check_diagonal "steady_state_gauss_seidel" d;
    let pi = Vec.create n (1. /. float_of_int n) in
    span_states "steady_gauss_seidel" n @@ fun span ->
    let rec sweep iter =
      let delta = ref 0. in
      for j = 0 to n - 1 do
        let acc = ref 0. in
        Sparse.iter_row qt j (fun i v -> if i <> j then acc := !acc +. (v *. pi.(i)));
        let pj = !acc /. -.d.(j) in
        let change = Float.abs (pj -. pi.(j)) in
        if change > !delta then delta := change;
        pi.(j) <- pj
      done;
      Vec.normalize_l1 pi;
      let scale = if rel_tol = None then 0. else max_abs pi in
      match fired ~tol ~rel_tol ~scale !delta with
      | Some crit ->
          { iterations = iter; residual = !delta; converged = true;
            criterion = Some crit }
      | None ->
          if iter >= max_iter then
            { iterations = iter; residual = !delta; converged = false;
              criterion = None }
          else sweep (iter + 1)
    in
    let c = sweep 1 in
    finish ?obs ~solver:"steady_gauss_seidel" ~size:n ~max_iter span c;
    (pi, c)
  end

let power_iteration ?(tol = 1e-12) ?rel_tol ?(max_iter = 1_000_000) ?obs p pi0 =
  let n = Sparse.rows p in
  if Sparse.cols p <> n || Vec.dim pi0 <> n then
    invalid_arg "Solver.power_iteration: dimension mismatch";
  let pi = Vec.copy pi0 in
  let pi' = Vec.zeros n in
  span_states "power_iteration" n @@ fun span ->
  let rec step iter =
    Sparse.vec_mul_into pi p pi';
    let delta = Vec.linf_distance pi pi' in
    Vec.blit ~src:pi' ~dst:pi;
    let scale = if rel_tol = None then 0. else max_abs pi in
    match fired ~tol ~rel_tol ~scale delta with
    | Some crit ->
        { iterations = iter; residual = delta; converged = true;
          criterion = Some crit }
    | None ->
        if iter >= max_iter then
          { iterations = iter; residual = delta; converged = false;
            criterion = None }
        else step (iter + 1)
  in
  let c = step 1 in
  finish ?obs ~solver:"power_iteration" ~size:n ~max_iter span c;
  (pi, c)
