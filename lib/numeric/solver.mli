(** Iterative linear solvers used by the CTMC engine.

    All solvers are matrix-free over {!Sparse.t} and geared towards the two
    systems stochastic model checking needs: the singular steady-state system
    [pi Q = 0, sum pi = 1] and the non-singular reachability systems
    [(I - A) x = b] with sub-stochastic [A].

    {b Telemetry.} Every solver returns its {!convergence} record, passes it
    to the caller's [?obs] hook (also on non-convergence, before raising),
    reports it to the {!Obs} layer ([solver.<name>.*] counters, gauge,
    residual histogram, and the recent-solve ring — see
    {!Obs.Metrics.record_solve}) and, when tracing is on, runs under a
    [solver.<name>] span carrying [states]/[iterations]/[residual]
    attributes. *)

type convergence = {
  iterations : int;
  residual : float; (** max-norm change of the last sweep *)
  converged : bool;
}

exception
  Did_not_converge of {
    solver : string;  (** which solver gave up, e.g. ["gauss_seidel"] *)
    max_iter : int;  (** the iteration limit that was hit *)
    info : convergence;
  }
(** Raised when the iteration limit is hit. The registered exception
    printer renders a message naming the solver and the limit. *)

val solve_gauss_seidel :
  ?tol:float ->
  ?max_iter:int ->
  ?obs:(convergence -> unit) ->
  ?x0:Vec.t ->
  Sparse.t ->
  Vec.t ->
  Vec.t * convergence
(** [solve_gauss_seidel a b] solves [a x = b] by Gauss–Seidel sweeps.
    Requires non-zero diagonal entries. [tol] (default [1e-12]) bounds the
    max-norm change between sweeps; [max_iter] defaults to [100_000].
    Returns the solution and convergence information; raises
    [Did_not_converge] when the iteration limit is hit. [obs] receives the
    final convergence record exactly once per call, converged or not. *)

val solve_jacobi :
  ?tol:float ->
  ?max_iter:int ->
  ?obs:(convergence -> unit) ->
  ?x0:Vec.t ->
  Sparse.t ->
  Vec.t ->
  Vec.t * convergence
(** Jacobi variant of {!solve_gauss_seidel}; slower but order-independent
    (used in tests as a cross-check). *)

val steady_state_gauss_seidel :
  ?tol:float ->
  ?max_iter:int ->
  ?obs:(convergence -> unit) ->
  Sparse.t ->
  Vec.t * convergence
(** [steady_state_gauss_seidel q] solves [pi Q = 0] with [sum pi = 1] for an
    {e irreducible} CTMC generator [q] (row [i] holds the rates out of state
    [i]; diagonal holds the negative exit rates). Gauss–Seidel on the
    transposed system with per-sweep normalization. *)

val power_iteration :
  ?tol:float ->
  ?max_iter:int ->
  ?obs:(convergence -> unit) ->
  Sparse.t ->
  Vec.t ->
  Vec.t * convergence
(** [power_iteration p pi0] iterates [pi <- pi P] to a fixed point; [p] must
    be a stochastic matrix. Used as an independent cross-check of the
    steady-state solver on aperiodic chains. *)
