(** Iterative linear solvers used by the CTMC engine.

    All solvers are matrix-free over {!Sparse.t} and geared towards the two
    systems stochastic model checking needs: the singular steady-state system
    [pi Q = 0, sum pi = 1] and the non-singular reachability systems
    [(I - A) x = b] with sub-stochastic [A].

    {b Convergence.} Each sweep's max-norm change is tested against the
    absolute tolerance [tol] and, when given, the relative tolerance
    [rel_tol] (change small compared to the current iterate's max norm —
    the guard against false verdicts on ill-conditioned large-N chains).
    The {!convergence} record says which criterion fired.

    {b Multi-RHS.} {!solve_gauss_seidel_multi} and {!solve_jacobi_multi}
    iterate a {!Multivec.t} block of K right-hand sides together — one
    blocked matrix sweep per iteration regardless of K — and return one
    {!convergence} record per column. The Gauss–Seidel solvers accept an
    update [?order] (e.g. an SCC topological order from {!Digraph.sccs}),
    which on DAG-like chains propagates dependencies in a single sweep.

    {b Telemetry.} Every solver returns its {!convergence} record(s),
    passes them to the caller's [?obs] hook (also on non-convergence,
    before raising), reports them to the {!Obs} layer ([solver.<name>.*]
    counters, gauge, residual histogram, the recent-solve ring and — for
    the multi-RHS solvers — the [solver.column_iterations] histogram) and,
    when tracing is on, runs under a [solver.<name>] span carrying
    [states]/[iterations]/[residual] (plus [batch_width] for multi-RHS)
    attributes. *)

type criterion =
  | Absolute  (** the absolute max-norm test [delta <= tol] fired *)
  | Relative  (** the relative test [delta <= rel_tol * max|x|] fired *)

type convergence = {
  iterations : int;
  residual : float; (** max-norm change of the last sweep *)
  converged : bool;
  criterion : criterion option;
      (** which test accepted the iterate; [None] when not converged *)
}

exception
  Did_not_converge of {
    solver : string;  (** which solver gave up, e.g. ["gauss_seidel"] *)
    max_iter : int;  (** the iteration limit that was hit *)
    info : convergence;
  }
(** Raised when the iteration limit is hit. The registered exception
    printer renders a message naming the solver and the limit. *)

val solve_gauss_seidel :
  ?tol:float ->
  ?rel_tol:float ->
  ?max_iter:int ->
  ?obs:(convergence -> unit) ->
  ?order:int array ->
  ?x0:Vec.t ->
  Sparse.t ->
  Vec.t ->
  Vec.t * convergence
(** [solve_gauss_seidel a b] solves [a x = b] by Gauss–Seidel sweeps.
    Requires non-zero diagonal entries. [tol] (default [1e-12]) bounds the
    max-norm change between sweeps; [max_iter] defaults to [100_000].
    [order], when given, must be a permutation of the row indices and
    fixes the within-sweep update sequence. Returns the solution and
    convergence information; raises [Did_not_converge] when the iteration
    limit is hit. [obs] receives the final convergence record exactly once
    per call, converged or not. *)

val solve_jacobi :
  ?tol:float ->
  ?rel_tol:float ->
  ?max_iter:int ->
  ?obs:(convergence -> unit) ->
  ?x0:Vec.t ->
  Sparse.t ->
  Vec.t ->
  Vec.t * convergence
(** Jacobi variant of {!solve_gauss_seidel}; slower but order-independent
    (used in tests as a cross-check). *)

val solve_gauss_seidel_multi :
  ?tol:float ->
  ?rel_tol:float ->
  ?max_iter:int ->
  ?obs:(convergence -> unit) ->
  ?order:int array ->
  ?x0:Multivec.t ->
  Sparse.t ->
  Multivec.t ->
  Multivec.t * convergence array
(** [solve_gauss_seidel_multi a b] solves [a X = B] for all columns of
    [b] at once with blocked Gauss–Seidel sweeps. All columns iterate
    together (one matrix pass per sweep); each column's record carries
    the sweep count at which {e that} column converged and its own last
    residual, and [obs] is invoked once per column. Raises
    [Did_not_converge] for the first unconverged column — after every
    column has been reported. *)

val solve_jacobi_multi :
  ?tol:float ->
  ?rel_tol:float ->
  ?max_iter:int ->
  ?obs:(convergence -> unit) ->
  ?x0:Multivec.t ->
  Sparse.t ->
  Multivec.t ->
  Multivec.t * convergence array
(** Jacobi variant of {!solve_gauss_seidel_multi}. *)

val steady_state_gauss_seidel :
  ?tol:float ->
  ?rel_tol:float ->
  ?max_iter:int ->
  ?obs:(convergence -> unit) ->
  Sparse.t ->
  Vec.t * convergence
(** [steady_state_gauss_seidel q] solves [pi Q = 0] with [sum pi = 1] for an
    {e irreducible} CTMC generator [q] (row [i] holds the rates out of state
    [i]; diagonal holds the negative exit rates). Gauss–Seidel on the
    transposed system with per-sweep normalization. *)

val power_iteration :
  ?tol:float ->
  ?rel_tol:float ->
  ?max_iter:int ->
  ?obs:(convergence -> unit) ->
  Sparse.t ->
  Vec.t ->
  Vec.t * convergence
(** [power_iteration p pi0] iterates [pi <- pi P] to a fixed point; [p] must
    be a stochastic matrix. Used as an independent cross-check of the
    steady-state solver on aperiodic chains. *)
