module A1 = Bigarray.Array1

type index_array = (int32, Bigarray.int32_elt, Bigarray.c_layout) A1.t
type value_array = (float, Bigarray.float64_elt, Bigarray.c_layout) A1.t

(* Unboxed CSR: int32 row pointers / column indices, float64 values. The
   kernels below read these directly; everything else goes through the
   bounds-checked accessors. *)
type t = {
  rows : int;
  cols : int;
  row_ptr : index_array; (* length rows+1 *)
  col_idx : index_array; (* length nnz, sorted within each row *)
  values : value_array; (* length nnz *)
}

let idx (a : index_array) p = Int32.to_int (A1.unsafe_get a p)

module Builder = struct
  type matrix = t

  type t = {
    b_rows : int;
    b_cols : int;
    mutable entries : (int * int * float) list;
    mutable count : int;
  }

  let create ~rows ~cols =
    if rows < 0 || cols < 0 then invalid_arg "Sparse.Builder.create";
    { b_rows = rows; b_cols = cols; entries = []; count = 0 }

  let add b i j x =
    if i < 0 || i >= b.b_rows || j < 0 || j >= b.b_cols then
      invalid_arg
        (Printf.sprintf "Sparse.Builder.add: (%d,%d) out of %dx%d" i j
           b.b_rows b.b_cols);
    b.entries <- (i, j, x) :: b.entries;
    b.count <- b.count + 1

  (* Finalization: counting sort by row, then sort each row by column and
     merge duplicates. *)
  let to_csr b : matrix =
    let rows = b.b_rows and cols = b.b_cols in
    let n = b.count in
    let ri = Array.make n 0 and ci = Array.make n 0 and vs = Array.make n 0. in
    let k = ref (n - 1) in
    List.iter
      (fun (i, j, x) ->
        ri.(!k) <- i;
        ci.(!k) <- j;
        vs.(!k) <- x;
        decr k)
      b.entries;
    (* bucket by row *)
    let counts = Array.make (rows + 1) 0 in
    for p = 0 to n - 1 do
      counts.(ri.(p) + 1) <- counts.(ri.(p) + 1) + 1
    done;
    for r = 1 to rows do
      counts.(r) <- counts.(r) + counts.(r - 1)
    done;
    let order = Array.make n 0 in
    let next = Array.copy counts in
    for p = 0 to n - 1 do
      let r = ri.(p) in
      order.(next.(r)) <- p;
      next.(r) <- next.(r) + 1
    done;
    (* per row: sort indices by column, merge duplicates, drop exact zeros *)
    let row_ends = Array.make (rows + 1) 0 in
    let out_cols = ref [] and out_vals = ref [] in
    let total = ref 0 in
    for r = 0 to rows - 1 do
      row_ends.(r) <- !total;
      let lo = counts.(r) and hi = counts.(r + 1) in
      let row_entries =
        Array.init (hi - lo) (fun q ->
            let p = order.(lo + q) in
            (ci.(p), vs.(p)))
      in
      Array.sort (fun (c1, _) (c2, _) -> compare c1 c2) row_entries;
      let m = Array.length row_entries in
      let q = ref 0 in
      while !q < m do
        let c, _ = row_entries.(!q) in
        let acc = ref 0. in
        while !q < m && fst row_entries.(!q) = c do
          acc := !acc +. snd row_entries.(!q);
          incr q
        done;
        if !acc <> 0. then begin
          out_cols := c :: !out_cols;
          out_vals := !acc :: !out_vals;
          incr total
        end
      done
    done;
    row_ends.(rows) <- !total;
    let nnz = !total in
    let row_ptr = A1.create Bigarray.int32 Bigarray.c_layout (rows + 1) in
    for r = 0 to rows do
      A1.unsafe_set row_ptr r (Int32.of_int row_ends.(r))
    done;
    let col_idx = A1.create Bigarray.int32 Bigarray.c_layout nnz in
    let values = A1.create Bigarray.float64 Bigarray.c_layout nnz in
    let k = ref (nnz - 1) in
    List.iter2
      (fun c v ->
        A1.unsafe_set col_idx !k (Int32.of_int c);
        A1.unsafe_set values !k v;
        decr k)
      !out_cols !out_vals;
    { rows; cols; row_ptr; col_idx; values }
end

let of_triplets ~rows ~cols triplets =
  let b = Builder.create ~rows ~cols in
  List.iter (fun (i, j, x) -> Builder.add b i j x) triplets;
  Builder.to_csr b

let of_dense d =
  let rows = Array.length d in
  let cols = if rows = 0 then 0 else Array.length d.(0) in
  let b = Builder.create ~rows ~cols in
  Array.iteri
    (fun i row ->
      Array.iteri (fun j x -> if x <> 0. then Builder.add b i j x) row)
    d;
  Builder.to_csr b

let rows m = m.rows

let cols m = m.cols

let nnz m = idx m.row_ptr m.rows

let to_dense m =
  let d = Array.make_matrix m.rows m.cols 0. in
  for i = 0 to m.rows - 1 do
    for p = idx m.row_ptr i to idx m.row_ptr (i + 1) - 1 do
      d.(i).(idx m.col_idx p) <- A1.unsafe_get m.values p
    done
  done;
  d

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Sparse.get: out of bounds";
  let lo = ref (idx m.row_ptr i) and hi = ref (idx m.row_ptr (i + 1) - 1) in
  let result = ref 0. in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = idx m.col_idx mid in
    if c = j then begin
      result := A1.unsafe_get m.values mid;
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !result

let iter_row m i f =
  if i < 0 || i >= m.rows then
    invalid_arg (Printf.sprintf "Sparse.iter_row: row %d out of %d" i m.rows);
  for p = idx m.row_ptr i to idx m.row_ptr (i + 1) - 1 do
    f (idx m.col_idx p) (A1.unsafe_get m.values p)
  done

let iteri m f =
  for i = 0 to m.rows - 1 do
    iter_row m i (fun j x -> f i j x)
  done

let fold m ~init ~f =
  let acc = ref init in
  iteri m (fun i j x -> acc := f !acc i j x);
  !acc

let mul_vec_into m x y =
  if Vec.dim x <> m.cols || Vec.dim y <> m.rows then
    invalid_arg "Sparse.mul_vec_into: dimension mismatch";
  for i = 0 to m.rows - 1 do
    let acc = ref 0. in
    for p = idx m.row_ptr i to idx m.row_ptr (i + 1) - 1 do
      acc :=
        !acc +. (A1.unsafe_get m.values p *. Array.unsafe_get x (idx m.col_idx p))
    done;
    Array.unsafe_set y i !acc
  done

let mul_vec m x =
  let y = Vec.zeros m.rows in
  mul_vec_into m x y;
  y

let vec_mul_into x m y =
  if Vec.dim x <> m.rows || Vec.dim y <> m.cols then
    invalid_arg "Sparse.vec_mul_into: dimension mismatch";
  Vec.fill y 0.;
  for i = 0 to m.rows - 1 do
    let xi = Array.unsafe_get x i in
    if xi <> 0. then
      for p = idx m.row_ptr i to idx m.row_ptr (i + 1) - 1 do
        let j = idx m.col_idx p in
        Array.unsafe_set y j
          (Array.unsafe_get y j +. (xi *. A1.unsafe_get m.values p))
      done
  done

let vec_mul x m =
  let y = Vec.zeros m.cols in
  vec_mul_into x m y;
  y

(* --- Multi-vector (blocked) kernels ------------------------------------ *)

let check_multi name _m x y =
  if Multivec.width x <> Multivec.width y then
    invalid_arg (Printf.sprintf "Sparse.%s: width mismatch" name);
  if Multivec.width x = 0 then
    invalid_arg (Printf.sprintf "Sparse.%s: empty block" name)

(* y <- m * x, one matrix pass serving all K columns: the K entries of
   state j are contiguous in the interleaved layout, so each decoded
   (value, column) pair feeds K fused multiply-adds from one cache line. *)
let mul_multi_into m x y =
  check_multi "mul_multi_into" m x y;
  if Multivec.dim x <> m.cols || Multivec.dim y <> m.rows then
    invalid_arg "Sparse.mul_multi_into: dimension mismatch";
  let k = Multivec.width x in
  let xd = Multivec.data x and yd = Multivec.data y in
  let acc = Array.make k 0. in
  for i = 0 to m.rows - 1 do
    Array.fill acc 0 k 0.;
    for p = idx m.row_ptr i to idx m.row_ptr (i + 1) - 1 do
      let v = A1.unsafe_get m.values p in
      let base = idx m.col_idx p * k in
      for c = 0 to k - 1 do
        Array.unsafe_set acc c
          (Array.unsafe_get acc c +. (v *. A1.unsafe_get xd (base + c)))
      done
    done;
    let yb = i * k in
    for c = 0 to k - 1 do
      A1.unsafe_set yd (yb + c) (Array.unsafe_get acc c)
    done
  done

(* y <- x^T * m column-wise (scatter form). Rows whose K entries are all
   zero are skipped — the blocked analogue of the [xi <> 0.] test in
   [vec_mul_into], which matters because distributions start as point
   masses. *)
let vec_mul_multi_into x m y =
  check_multi "vec_mul_multi_into" m x y;
  if Multivec.dim x <> m.rows || Multivec.dim y <> m.cols then
    invalid_arg "Sparse.vec_mul_multi_into: dimension mismatch";
  let k = Multivec.width x in
  let xd = Multivec.data x and yd = Multivec.data y in
  Multivec.fill y 0.;
  let row = Array.make k 0. in
  for i = 0 to m.rows - 1 do
    let xb = i * k in
    let nonzero = ref false in
    for c = 0 to k - 1 do
      let v = A1.unsafe_get xd (xb + c) in
      Array.unsafe_set row c v;
      if v <> 0. then nonzero := true
    done;
    if !nonzero then
      for p = idx m.row_ptr i to idx m.row_ptr (i + 1) - 1 do
        let v = A1.unsafe_get m.values p in
        let base = idx m.col_idx p * k in
        for c = 0 to k - 1 do
          A1.unsafe_set yd (base + c)
            (A1.unsafe_get yd (base + c) +. (Array.unsafe_get row c *. v))
        done
      done
  done

(* --- Solver sweep kernels ----------------------------------------------
   One relaxation sweep of [a x = b]; the iteration/convergence logic
   lives in {!Solver}, which validates [order] as a permutation before
   handing it down. *)

let gauss_seidel_sweep ?order m ~diag ~b ~x =
  let n = m.rows in
  let delta = ref 0. in
  for s = 0 to n - 1 do
    let i = match order with None -> s | Some o -> o.(s) in
    let acc = ref (Array.unsafe_get b i) in
    for p = idx m.row_ptr i to idx m.row_ptr (i + 1) - 1 do
      let j = idx m.col_idx p in
      if j <> i then
        acc := !acc -. (A1.unsafe_get m.values p *. Array.unsafe_get x j)
    done;
    let xi = !acc /. Array.unsafe_get diag i in
    let change = Float.abs (xi -. Array.unsafe_get x i) in
    if change > !delta then delta := change;
    Array.unsafe_set x i xi
  done;
  !delta

let jacobi_sweep m ~diag ~b ~x ~x' =
  let n = m.rows in
  for i = 0 to n - 1 do
    let acc = ref (Array.unsafe_get b i) in
    for p = idx m.row_ptr i to idx m.row_ptr (i + 1) - 1 do
      let j = idx m.col_idx p in
      if j <> i then
        acc := !acc -. (A1.unsafe_get m.values p *. Array.unsafe_get x j)
    done;
    Array.unsafe_set x' i (!acc /. Array.unsafe_get diag i)
  done

let gauss_seidel_sweep_multi ?order m ~diag ~b ~x ~deltas =
  let n = m.rows in
  let k = Multivec.width x in
  let bd = Multivec.data b and xd = Multivec.data x in
  Array.fill deltas 0 k 0.;
  let acc = Array.make k 0. in
  for s = 0 to n - 1 do
    let i = match order with None -> s | Some o -> o.(s) in
    let ib = i * k in
    for c = 0 to k - 1 do
      Array.unsafe_set acc c (A1.unsafe_get bd (ib + c))
    done;
    for p = idx m.row_ptr i to idx m.row_ptr (i + 1) - 1 do
      let j = idx m.col_idx p in
      if j <> i then begin
        let v = A1.unsafe_get m.values p in
        let jb = j * k in
        for c = 0 to k - 1 do
          Array.unsafe_set acc c
            (Array.unsafe_get acc c -. (v *. A1.unsafe_get xd (jb + c)))
        done
      end
    done;
    let di = Array.unsafe_get diag i in
    for c = 0 to k - 1 do
      let xi = Array.unsafe_get acc c /. di in
      let change = Float.abs (xi -. A1.unsafe_get xd (ib + c)) in
      if change > Array.unsafe_get deltas c then
        Array.unsafe_set deltas c change;
      A1.unsafe_set xd (ib + c) xi
    done
  done

let jacobi_sweep_multi m ~diag ~b ~x ~x' =
  let n = m.rows in
  let k = Multivec.width x in
  let bd = Multivec.data b
  and xd = Multivec.data x
  and xd' = Multivec.data x' in
  let acc = Array.make k 0. in
  for i = 0 to n - 1 do
    let ib = i * k in
    for c = 0 to k - 1 do
      Array.unsafe_set acc c (A1.unsafe_get bd (ib + c))
    done;
    for p = idx m.row_ptr i to idx m.row_ptr (i + 1) - 1 do
      let j = idx m.col_idx p in
      if j <> i then begin
        let v = A1.unsafe_get m.values p in
        let jb = j * k in
        for c = 0 to k - 1 do
          Array.unsafe_set acc c
            (Array.unsafe_get acc c -. (v *. A1.unsafe_get xd (jb + c)))
        done
      end
    done;
    let di = Array.unsafe_get diag i in
    for c = 0 to k - 1 do
      A1.unsafe_set xd' (ib + c) (Array.unsafe_get acc c /. di)
    done
  done

(* ----------------------------------------------------------------------- *)

let transpose m =
  let b = Builder.create ~rows:m.cols ~cols:m.rows in
  iteri m (fun i j x -> Builder.add b j i x);
  Builder.to_csr b

let map f m =
  let n = nnz m in
  let values = A1.create Bigarray.float64 Bigarray.c_layout n in
  for p = 0 to n - 1 do
    A1.unsafe_set values p (f (A1.unsafe_get m.values p))
  done;
  { m with values }

let scale a m = map (fun x -> a *. x) m

let add_mat a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Sparse.add_mat: dimension mismatch";
  let bl = Builder.create ~rows:a.rows ~cols:a.cols in
  iteri a (fun i j x -> Builder.add bl i j x);
  iteri b (fun i j x -> Builder.add bl i j x);
  Builder.to_csr bl

let row_sums m =
  let v = Vec.zeros m.rows in
  iteri m (fun i _ x -> v.(i) <- v.(i) +. x);
  v

let identity n =
  of_triplets ~rows:n ~cols:n (List.init n (fun i -> (i, i, 1.)))

let equal ?(eps = 0.) a b =
  a.rows = b.rows && a.cols = b.cols
  && begin
       let ok = ref true in
       iteri a (fun i j x -> if Float.abs (x -. get b i j) > eps then ok := false);
       iteri b (fun i j x -> if Float.abs (x -. get a i j) > eps then ok := false);
       !ok
     end

let pp ppf m =
  Format.fprintf ppf "@[<v>sparse %dx%d (%d nnz)" m.rows m.cols (nnz m);
  iteri m (fun i j x -> Format.fprintf ppf "@,(%d,%d) = %g" i j x);
  Format.fprintf ppf "@]"
