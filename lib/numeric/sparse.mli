(** Sparse matrices in compressed-sparse-row (CSR) form.

    The CTMC engine stores generator and probability matrices in this format.
    Matrices are immutable once built; construction goes through {!Builder}
    (coordinate/triplet accumulation) or {!of_triplets}.

    Storage is unboxed: row pointers and column indices live in int32
    {!Bigarray}s and values in a float64 {!Bigarray}, so one matrix pass
    streams three flat buffers. On top of the single-vector products the
    module exposes {e blocked} kernels ({!mul_multi_into},
    {!vec_mul_multi_into}, and the relaxation sweeps) that push a
    {!Multivec.t} of K vectors through the matrix in a single pass —
    every decoded entry serves all K columns. *)

type t

(** Mutable triplet accumulator. Duplicate [(row, col)] entries are summed
    when the matrix is finalized. *)
module Builder : sig
  type matrix := t
  type t

  val create : rows:int -> cols:int -> t

  val add : t -> int -> int -> float -> unit
  (** [add b i j x] accumulates [x] at position [(i, j)]. Zero contributions
      are kept until finalization, where exact-zero sums are dropped. *)

  val to_csr : t -> matrix
end

val of_triplets : rows:int -> cols:int -> (int * int * float) list -> t

val of_dense : float array array -> t

val to_dense : t -> float array array

val rows : t -> int

val cols : t -> int

val nnz : t -> int
(** Number of stored (structurally non-zero) entries. *)

val get : t -> int -> int -> float
(** [get m i j] is the entry at [(i, j)] ([0.] when not stored).
    Logarithmic in the number of entries of row [i]. Raises
    [Invalid_argument] when [(i, j)] is out of range. *)

val iter_row : t -> int -> (int -> float -> unit) -> unit
(** [iter_row m i f] applies [f col value] to every stored entry of row [i].
    Raises [Invalid_argument] when [i] is out of range. *)

val iteri : t -> (int -> int -> float -> unit) -> unit

val fold : t -> init:'a -> f:('a -> int -> int -> float -> 'a) -> 'a

val mul_vec : t -> Vec.t -> Vec.t
(** [mul_vec m x] is the matrix-vector product [m * x]. *)

val mul_vec_into : t -> Vec.t -> Vec.t -> unit
(** [mul_vec_into m x y] writes [m * x] into [y]. [x] and [y] must not alias. *)

val vec_mul : Vec.t -> t -> Vec.t
(** [vec_mul x m] is the vector-matrix product [x^T * m] (row vector). *)

val vec_mul_into : Vec.t -> t -> Vec.t -> unit

(** {2 Blocked (multi-vector) kernels}

    One matrix pass serving every column of a {!Multivec.t}: the K
    entries of a state are contiguous in the interleaved layout, so each
    decoded [(value, column)] pair feeds K fused multiply-adds from one
    cache line instead of re-reading the matrix K times. *)

val mul_multi_into : t -> Multivec.t -> Multivec.t -> unit
(** [mul_multi_into m x y] writes [m * x] into [y] column-wise.
    [x] and [y] must not alias and must share their width. *)

val vec_mul_multi_into : Multivec.t -> t -> Multivec.t -> unit
(** [vec_mul_multi_into x m y] writes [x^T * m] into [y] column-wise
    (distribution push-forward for K distributions at once). States whose
    K entries are all zero are skipped, as in {!vec_mul_into}. *)

(** {2 Relaxation sweep kernels}

    One in-place sweep of [a x = b]; {!Solver} owns iteration and
    convergence logic and validates [order] (a permutation of the rows
    giving the update sequence — SCC topological order makes
    Gauss–Seidel propagate dependencies in one sweep on DAG-like
    chains). These kernels do not validate their inputs. *)

val gauss_seidel_sweep :
  ?order:int array -> t -> diag:Vec.t -> b:Vec.t -> x:Vec.t -> float
(** Updates [x] in place, returns the max-norm change of the sweep. *)

val jacobi_sweep : t -> diag:Vec.t -> b:Vec.t -> x:Vec.t -> x':Vec.t -> unit
(** Writes the next Jacobi iterate of [x] into [x']. *)

val gauss_seidel_sweep_multi :
  ?order:int array ->
  t ->
  diag:Vec.t ->
  b:Multivec.t ->
  x:Multivec.t ->
  deltas:float array ->
  unit
(** Blocked {!gauss_seidel_sweep} over every column of [x]; writes each
    column's max-norm change into [deltas] (length = width). *)

val jacobi_sweep_multi :
  t -> diag:Vec.t -> b:Multivec.t -> x:Multivec.t -> x':Multivec.t -> unit

val transpose : t -> t

val map : (float -> float) -> t -> t
(** Apply a function to every stored entry (structure preserved). *)

val scale : float -> t -> t

val add_mat : t -> t -> t

val row_sums : t -> Vec.t

val identity : int -> t

val equal : ?eps:float -> t -> t -> bool
(** Entry-wise comparison within [eps] (default [0.]), including entries
    stored in only one of the two matrices. *)

val pp : Format.formatter -> t -> unit
