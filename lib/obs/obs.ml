type attr =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

external monotonic_ns : unit -> (int64[@unboxed])
  = "obs_monotonic_ns" "obs_monotonic_ns_unboxed"
[@@noalloc]

(* ------------------------------------------------------------------ *)
(* Shared JSON helpers (no JSON library in the dependency set)        *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no NaN/Infinity literals; map them to null. *)
let json_float x =
  if Float.is_finite x then Printf.sprintf "%.17g" x else "null"

let json_attr = function
  | Int i -> string_of_int i
  | Float x -> json_float x
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Bool b -> string_of_bool b

(* Each writer gets its own temp name (pid + per-process sequence), so
   concurrent flushes to the same path — two domains, or two processes —
   never clobber each other's temp file; whichever rename lands last
   wins, and both leave a complete file. On any failure the temp file is
   unlinked before the exception propagates. *)
let tmp_counter = Atomic.make 0

let write_file_atomic path contents =
  let tmp =
    Printf.sprintf "%s.%d.%d.tmp" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_counter 1)
  in
  match
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc contents);
    Sys.rename tmp path
  with
  | () -> ()
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                   *)

module Metrics = struct
  let on = ref false

  let enabled () = !on

  let set_enabled b = on := b

  type counter = int Atomic.t

  type gauge = float Atomic.t

  type histogram = {
    bounds : float array;
    buckets : int Atomic.t array;  (* length = Array.length bounds + 1 *)
    h_sum : float Atomic.t;
  }

  type instrument =
    | C of counter
    | G of gauge
    | H of histogram

  let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64

  let registry_mutex = Mutex.create ()

  let register name make describe =
    Mutex.protect registry_mutex (fun () ->
        match Hashtbl.find_opt registry name with
        | Some existing -> describe existing
        | None ->
            let i = make () in
            Hashtbl.replace registry name i;
            describe i)

  let kind_error name =
    invalid_arg
      (Printf.sprintf "Obs.Metrics: %S already registered as a different kind"
         name)

  let counter name =
    register name
      (fun () -> C (Atomic.make 0))
      (function C c -> c | G _ | H _ -> kind_error name)

  let incr c = if !on then ignore (Atomic.fetch_and_add c 1 : int)

  let add c n = if !on then ignore (Atomic.fetch_and_add c n : int)

  let counter_value c = Atomic.get c

  let gauge name =
    register name
      (fun () -> G (Atomic.make 0.))
      (function G g -> g | C _ | H _ -> kind_error name)

  let set_gauge g x = if !on then Atomic.set g x

  let gauge_value g = Atomic.get g

  (* log-spaced decade grid: residuals (1e-16..1) and counts/widths
     (1..1e6) both land in meaningful buckets *)
  let default_buckets =
    Array.init 23 (fun i -> 10. ** float_of_int (i - 16))

  (* latency-shaped grid for request/query timings in milliseconds:
     0.25 ms .. ~8 s in powers of two *)
  let latency_ms_buckets =
    Array.init 16 (fun i -> 0.25 *. (2. ** float_of_int i))

  let histogram ?(buckets = default_buckets) name =
    Array.iteri
      (fun i b ->
        if i > 0 && b <= buckets.(i - 1) then
          invalid_arg "Obs.Metrics.histogram: buckets must be increasing")
      buckets;
    register name
      (fun () ->
        H
          {
            bounds = Array.copy buckets;
            buckets = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
            h_sum = Atomic.make 0.;
          })
      (function H h -> h | C _ | G _ -> kind_error name)

  let rec atomic_add_float a x =
    let cur = Atomic.get a in
    if not (Atomic.compare_and_set a cur (cur +. x)) then atomic_add_float a x

  let bucket_index bounds x =
    (* first bound >= x; bounds are short (tens), linear scan is fine *)
    let n = Array.length bounds in
    let rec go i = if i >= n || x <= bounds.(i) then i else go (i + 1) in
    go 0

  let observe h x =
    if !on then begin
      ignore (Atomic.fetch_and_add h.buckets.(bucket_index h.bounds x) 1 : int);
      atomic_add_float h.h_sum x
    end

  (* ---------------------------------------------------------------- *)
  (* Solver-convergence ring                                          *)

  type solve = {
    solver : string;
    size : int;
    iterations : int;
    residual : float;
    converged : bool;
  }

  let ring_capacity = 256

  let ring : solve option array = Array.make ring_capacity None

  let ring_next = ref 0 (* total records so far; slot = next mod capacity *)

  let ring_mutex = Mutex.create ()

  (* The flight recorder (defined below; [Flight] cannot be referenced
     from here) hooks non-convergence so a long-running daemon keeps a
     post-mortem trace of the request that failed to converge. *)
  let nonconverged_hook : (unit -> unit) ref = ref (fun () -> ())

  let record_solve ~solver ~size ~iterations ~residual ~converged =
    if !on then begin
      add (counter (Printf.sprintf "solver.%s.solves" solver)) 1;
      add (counter (Printf.sprintf "solver.%s.iterations" solver)) iterations;
      set_gauge (gauge (Printf.sprintf "solver.%s.last_residual" solver)) residual;
      (* aggregate across solvers: the server attaches this to the
         request span without knowing which solver ran *)
      set_gauge (gauge "solver.last_residual") residual;
      observe
        (histogram (Printf.sprintf "solver.%s.residual" solver))
        residual;
      let s = { solver; size; iterations; residual; converged } in
      Mutex.protect ring_mutex (fun () ->
          ring.(!ring_next mod ring_capacity) <- Some s;
          ring_next := !ring_next + 1)
    end;
    if not converged then !nonconverged_hook ()

  (* ---------------------------------------------------------------- *)
  (* Snapshots                                                        *)

  type snapshot = {
    counters : (string * int) list;
    gauges : (string * float) list;
    histograms : (string * histogram_view) list;
    solves : solve list;
  }

  and histogram_view = {
    bounds : float array;
    counts : int array;
    total : int;
    sum : float;
  }

  let snapshot () =
    let cs = ref [] and gs = ref [] and hs = ref [] in
    Mutex.protect registry_mutex (fun () ->
        Hashtbl.iter
          (fun name i ->
            match i with
            | C c -> cs := (name, Atomic.get c) :: !cs
            | G g -> gs := (name, Atomic.get g) :: !gs
            | H h ->
                let counts = Array.map Atomic.get h.buckets in
                hs :=
                  ( name,
                    {
                      bounds = Array.copy h.bounds;
                      counts;
                      total = Array.fold_left ( + ) 0 counts;
                      sum = Atomic.get h.h_sum;
                    } )
                  :: !hs)
          registry);
    let solves =
      Mutex.protect ring_mutex (fun () ->
          let n = min !ring_next ring_capacity in
          let first = !ring_next - n in
          List.init n (fun i ->
              match ring.((first + i) mod ring_capacity) with
              | Some s -> s
              | None -> assert false))
    in
    let by_name (a, _) (b, _) = compare (a : string) b in
    {
      counters = List.sort by_name !cs;
      gauges = List.sort by_name !gs;
      histograms = List.sort by_name !hs;
      solves;
    }

  let reset () =
    Mutex.protect registry_mutex (fun () ->
        Hashtbl.iter
          (fun _ i ->
            match i with
            | C c -> Atomic.set c 0
            | G g -> Atomic.set g 0.
            | H h ->
                Array.iter (fun b -> Atomic.set b 0) h.buckets;
                Atomic.set h.h_sum 0.)
          registry);
    Mutex.protect ring_mutex (fun () ->
        Array.fill ring 0 ring_capacity None;
        ring_next := 0)

  let pp ppf s =
    Format.fprintf ppf "@[<v>metrics:";
    Format.fprintf ppf "@,  counters:";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "@,    %-44s %d" name v)
      s.counters;
    Format.fprintf ppf "@,  gauges:";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "@,    %-44s %g" name v)
      s.gauges;
    Format.fprintf ppf "@,  histograms:";
    List.iter
      (fun (name, h) ->
        Format.fprintf ppf "@,    %s: total=%d sum=%g" name h.total h.sum;
        Array.iteri
          (fun i c ->
            if c > 0 then
              if i < Array.length h.bounds then
                Format.fprintf ppf " [<=%g: %d]" h.bounds.(i) c
              else Format.fprintf ppf " [>%g: %d]" h.bounds.(i - 1) c)
          h.counts)
      s.histograms;
    if s.solves <> [] then begin
      Format.fprintf ppf "@,  solves (last %d):" (List.length s.solves);
      List.iter
        (fun v ->
          Format.fprintf ppf "@,    %-22s n=%-7d iterations=%-6d residual=%.3e%s"
            v.solver v.size v.iterations v.residual
            (if v.converged then "" else " NOT CONVERGED"))
        s.solves
    end;
    Format.fprintf ppf "@]"

  let to_json s =
    let buf = Buffer.create 2048 in
    Buffer.add_string buf "{\n  \"counters\": {";
    List.iteri
      (fun i (name, v) ->
        Buffer.add_string buf
          (Printf.sprintf "%s\n    \"%s\": %d"
             (if i = 0 then "" else ",")
             (json_escape name) v))
      s.counters;
    Buffer.add_string buf "\n  },\n  \"gauges\": {";
    List.iteri
      (fun i (name, v) ->
        Buffer.add_string buf
          (Printf.sprintf "%s\n    \"%s\": %s"
             (if i = 0 then "" else ",")
             (json_escape name) (json_float v)))
      s.gauges;
    Buffer.add_string buf "\n  },\n  \"histograms\": {";
    List.iteri
      (fun i (name, h) ->
        let floats a =
          String.concat ", " (Array.to_list (Array.map json_float a))
        in
        let ints a =
          String.concat ", " (Array.to_list (Array.map string_of_int a))
        in
        Buffer.add_string buf
          (Printf.sprintf
             "%s\n    \"%s\": {\"bounds\": [%s], \"counts\": [%s], \
              \"total\": %d, \"sum\": %s}"
             (if i = 0 then "" else ",")
             (json_escape name) (floats h.bounds) (ints h.counts) h.total
             (json_float h.sum)))
      s.histograms;
    Buffer.add_string buf "\n  },\n  \"solves\": [";
    List.iteri
      (fun i v ->
        Buffer.add_string buf
          (Printf.sprintf
             "%s\n    {\"solver\": \"%s\", \"size\": %d, \"iterations\": %d, \
              \"residual\": %s, \"converged\": %b}"
             (if i = 0 then "" else ",")
             (json_escape v.solver) v.size v.iterations (json_float v.residual)
             v.converged))
      s.solves;
    Buffer.add_string buf "\n  ]\n}\n";
    Buffer.contents buf

  (* ---------------------------------------------------------------- *)
  (* Prometheus text exposition (format 0.0.4)                        *)

  let prom_name name =
    let b = Buffer.create (String.length name + 8) in
    Buffer.add_string b "arcade_";
    String.iter
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' ->
            Buffer.add_char b c
        | _ -> Buffer.add_char b '_')
      name;
    Buffer.contents b

  let prom_float x =
    if Float.is_nan x then "NaN"
    else if x = Float.infinity then "+Inf"
    else if x = Float.neg_infinity then "-Inf"
    else Printf.sprintf "%.17g" x

  (* Name sanitization can merge two registry names into one Prometheus
     family ("a.b" and "a_b"); the first (registry order is sorted) wins
     and later collisions are skipped entirely, so the exposition never
     emits two "# TYPE" lines or two sample sets for one family. *)
  let to_prometheus (s : snapshot) =
    let buf = Buffer.create 4096 in
    let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
    let family name kind emit =
      if not (Hashtbl.mem seen name) then begin
        Hashtbl.add seen name ();
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind);
        emit name
      end
    in
    List.iter
      (fun (name, v) ->
        family
          (prom_name name ^ "_total")
          "counter"
          (fun n -> Buffer.add_string buf (Printf.sprintf "%s %d\n" n v)))
      s.counters;
    List.iter
      (fun (name, v) ->
        family (prom_name name) "gauge" (fun n ->
            Buffer.add_string buf
              (Printf.sprintf "%s %s\n" n (prom_float v))))
      s.gauges;
    List.iter
      (fun (name, h) ->
        family (prom_name name) "histogram" (fun n ->
            let cum = ref 0 in
            Array.iteri
              (fun i bound ->
                cum := !cum + h.counts.(i);
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket{le=\"%g\"} %d\n" n bound !cum))
              h.bounds;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n h.total);
            Buffer.add_string buf
              (Printf.sprintf "%s_sum %s\n" n (prom_float h.sum));
            Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n h.total)))
      s.histograms;
    Buffer.contents buf
end

(* ------------------------------------------------------------------ *)
(* Span tracing                                                       *)

module Trace = struct
  let on = ref false

  (* Shared with [Flight] (defined after this module): when the flight
     recorder is enabled, spans are captured into its rings even while
     file tracing is off. *)
  let flight_on = ref false

  let enabled () = !on

  let active () = !on || !flight_on

  let output_path = ref None

  (* ---------------------------------------------------------------- *)
  (* W3C trace-context                                                *)

  type context = { trace_id : string; span_id : string }

  (* splitmix64 over an atomic counter + per-process seed: id generation
     is contention-light and unique across the processes of one test run
     (the pid is folded into the seed). *)
  let splitmix64 z =
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let id_seed =
    Int64.logxor (monotonic_ns ())
      (Int64.of_int (Unix.getpid () * 0x9E3779B9))

  let id_counter = Atomic.make 1

  let next64 () =
    let n = Atomic.fetch_and_add id_counter 1 in
    let v =
      splitmix64 (Int64.add id_seed (Int64.mul (Int64.of_int n) 0x9E3779B97F4A7C15L))
    in
    if v = 0L then 1L else v

  let hex16 v = Printf.sprintf "%016Lx" v

  let gen_span_id () = hex16 (next64 ())

  let new_context () =
    { trace_id = hex16 (next64 ()) ^ hex16 (next64 ()); span_id = gen_span_id () }

  let child_context c = { c with span_id = gen_span_id () }

  let is_lower_hex s =
    String.for_all
      (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
      s

  let all_zero s = String.for_all (fun c -> c = '0') s

  (* W3C Trace Context level 1: [00-<32 hex>-<16 hex>-<2 hex>]; hex is
     lowercase only, all-zero ids are invalid, version [ff] is invalid,
     and version 00 admits no extra fields (later versions may append
     fields, which we ignore). *)
  let parse_traceparent s =
    match String.split_on_char '-' (String.trim s) with
    | version :: trace_id :: span_id :: flags :: rest
      when String.length version = 2
           && is_lower_hex version && version <> "ff"
           && String.length trace_id = 32
           && is_lower_hex trace_id
           && not (all_zero trace_id)
           && String.length span_id = 16
           && is_lower_hex span_id
           && not (all_zero span_id)
           && String.length flags = 2
           && is_lower_hex flags
           && (rest = [] || version <> "00") ->
        Some { trace_id; span_id }
    | _ -> None

  let format_traceparent c =
    Printf.sprintf "00-%s-%s-01" c.trace_id c.span_id

  (* Current context, keyed by (domain, systhread). Domain.DLS alone is
     wrong here: the server runs many systhreads on domain 0, and they
     would trample one shared slot. The table is only consulted while
     tracing or the flight recorder is active, so the off path stays one
     flag check. Entries are removed on scope exit, so the table stays
     bounded by live (domain, thread) pairs. *)
  let ctx_table : (int * int, context) Hashtbl.t = Hashtbl.create 64

  let ctx_mutex = Mutex.create ()

  let ctx_key () = ((Domain.self () :> int), Thread.id (Thread.self ()))

  let current_context () =
    if not (active ()) then None
    else
      Mutex.protect ctx_mutex (fun () ->
          Hashtbl.find_opt ctx_table (ctx_key ()))

  let set_current ctx =
    let k = ctx_key () in
    Mutex.protect ctx_mutex (fun () ->
        match ctx with
        | Some c -> Hashtbl.replace ctx_table k c
        | None -> Hashtbl.remove ctx_table k)

  let with_context ctx f =
    if not (active ()) then f ()
    else begin
      let prev =
        Mutex.protect ctx_mutex (fun () ->
            Hashtbl.find_opt ctx_table (ctx_key ()))
      in
      set_current ctx;
      Fun.protect ~finally:(fun () -> set_current prev) f
    end

  (* ---------------------------------------------------------------- *)
  (* Events and per-domain buffers                                    *)

  type trace_ref = {
    tr_trace : string;
    tr_span : string;
    tr_parent : string option;
  }

  type event = {
    ev_name : string;
    ph : string;  (* "X" complete, "i" instant *)
    ts : int64;  (* monotonic ns *)
    dur : int64;  (* ns; 0 for instants *)
    tid : int;
    ev_attrs : (string * attr) list;
    ev_trace : trace_ref option;
  }

  (* Perfetto nests complete events per track (tid); in the server many
     systhreads share domain 0, so the track id folds the systhread id in
     to keep concurrently-served requests on separate tracks. *)
  let current_tid () =
    ((Domain.self () :> int) * 1000) + Thread.id (Thread.self ())

  (* Per-domain event buffers, each with its own lock: recording is
     contention-free under Numeric.Parallel fan-out (one domain, one
     buffer), and safe when several server systhreads share domain 0's
     buffer. The registry keeps buffers of joined domains alive. When
     [capacity] is set the buffer drops its oldest event on overflow —
     a long-lived daemon must not grow without bound. *)
  type buffer = {
    tid : int;
    q : event Queue.t;
    bm : Mutex.t;
    mutable b_dropped : int;
  }

  let all_buffers : buffer list ref = ref []

  let buffers_mutex = Mutex.create ()

  let capacity : int option ref = ref None

  let set_buffer_capacity c = capacity := c

  let buffer_capacity () = !capacity

  let m_dropped = Metrics.counter "trace.dropped_events"

  let buffer_key =
    Domain.DLS.new_key (fun () ->
        let b =
          {
            tid = (Domain.self () :> int);
            q = Queue.create ();
            bm = Mutex.create ();
            b_dropped = 0;
          }
        in
        Mutex.protect buffers_mutex (fun () -> all_buffers := b :: !all_buffers);
        b)

  let dropped_events () =
    Mutex.protect buffers_mutex (fun () ->
        List.fold_left (fun acc b -> acc + b.b_dropped) 0 !all_buffers)

  let t0 = monotonic_ns ()

  type open_span = {
    sp_name : string;
    start : int64;
    mutable sp_attrs : (string * attr) list;
    sp_ctx : context option;
    sp_parent : string option;
  }

  type span = No_span | Span of open_span

  let recording = function No_span -> false | Span _ -> true

  let add_attr span key v =
    match span with
    | No_span -> ()
    | Span sp -> sp.sp_attrs <- (key, v) :: List.remove_assoc key sp.sp_attrs

  (* wired up by [Flight] below, once its rings exist *)
  let flight_push_ev : (event -> unit) ref = ref (fun _ -> ())

  let record ev =
    if !on then begin
      let b = Domain.DLS.get buffer_key in
      let dropped =
        Mutex.protect b.bm (fun () ->
            Queue.add ev b.q;
            match !capacity with
            | Some cap when Queue.length b.q > cap ->
                ignore (Queue.pop b.q);
                b.b_dropped <- b.b_dropped + 1;
                true
            | _ -> false)
      in
      if dropped then Metrics.incr m_dropped
    end;
    if !flight_on then !flight_push_ev ev

  let close sp =
    let now = monotonic_ns () in
    record
      {
        ev_name = sp.sp_name;
        ph = "X";
        ts = sp.start;
        dur = Int64.sub now sp.start;
        tid = current_tid ();
        ev_attrs = List.rev sp.sp_attrs;
        ev_trace =
          (match sp.sp_ctx with
          | Some c ->
              Some
                {
                  tr_trace = c.trace_id;
                  tr_span = c.span_id;
                  tr_parent = sp.sp_parent;
                }
          | None -> None);
      }

  let with_span ?ctx ?attrs name f =
    if not (active ()) then f No_span
    else begin
      let ambient =
        Mutex.protect ctx_mutex (fun () ->
            Hashtbl.find_opt ctx_table (ctx_key ()))
      in
      (* The span's identity: an explicit [?ctx] (the caller minted the
         ids, e.g. to echo them in a response header), else a child of
         the ambient context, else no trace linkage (process-global
         spans, as in the bench drivers). *)
      let identity =
        match ctx with
        | Some _ as c -> c
        | None -> Option.map child_context ambient
      in
      let parent = Option.map (fun a -> a.span_id) ambient in
      (match identity with Some _ -> set_current identity | None -> ());
      let sp =
        {
          sp_name = name;
          start = monotonic_ns ();
          sp_attrs = (match attrs with Some l -> List.rev l | None -> []);
          sp_ctx = identity;
          sp_parent = parent;
        }
      in
      let restore () =
        match identity with Some _ -> set_current ambient | None -> ()
      in
      match f (Span sp) with
      | v ->
          close sp;
          restore ();
          v
      | exception e ->
          add_attr (Span sp) "exception" (Str (Printexc.to_string e));
          close sp;
          restore ();
          raise e
    end

  let instant ?(attrs = []) name =
    if active () then
      record
        {
          ev_name = name;
          ph = "i";
          ts = monotonic_ns ();
          dur = 0L;
          tid = current_tid ();
          ev_attrs = attrs;
          ev_trace =
            (match current_context () with
            | Some c ->
                Some
                  { tr_trace = c.trace_id; tr_span = c.span_id; tr_parent = None }
            | None -> None);
        }

  let event_json buf ev =
    let us ns = Int64.to_float (Int64.sub ns t0) /. 1e3 in
    Buffer.add_string buf
      (Printf.sprintf
         "{\"name\": \"%s\", \"cat\": \"arcade\", \"ph\": \"%s\", \
          \"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %d"
         (json_escape ev.ev_name) ev.ph (us ev.ts)
         (Int64.to_float ev.dur /. 1e3)
         ev.tid);
    (match ev.ph with
    | "i" -> Buffer.add_string buf ", \"s\": \"t\""
    | _ -> ());
    let args =
      ev.ev_attrs
      @
      match ev.ev_trace with
      | None -> []
      | Some t ->
          ("trace_id", Str t.tr_trace)
          :: ("span_id", Str t.tr_span)
          ::
          (match t.tr_parent with
          | Some p -> [ ("parent_span_id", Str p) ]
          | None -> [])
    in
    if args <> [] then begin
      Buffer.add_string buf ", \"args\": {";
      List.iteri
        (fun i (k, v) ->
          Buffer.add_string buf
            (Printf.sprintf "%s\"%s\": %s"
               (if i = 0 then "" else ", ")
               (json_escape k) (json_attr v)))
        args;
      Buffer.add_string buf "}"
    end;
    Buffer.add_string buf "}"

  let gather_events () =
    Mutex.protect buffers_mutex (fun () ->
        List.concat_map
          (fun b -> Mutex.protect b.bm (fun () -> List.of_seq (Queue.to_seq b.q)))
          !all_buffers)

  let drain_events () =
    Mutex.protect buffers_mutex (fun () ->
        List.concat_map
          (fun b ->
            Mutex.protect b.bm (fun () ->
                let evs = List.of_seq (Queue.to_seq b.q) in
                Queue.clear b.q;
                evs))
          !all_buffers)

  let clear () =
    Mutex.protect buffers_mutex (fun () ->
        List.iter
          (fun b ->
            Mutex.protect b.bm (fun () ->
                Queue.clear b.q;
                b.b_dropped <- 0))
          !all_buffers)

  let by_ts a b = Int64.compare a.ts b.ts

  let flush_rewrite () =
    match !output_path with
    | None -> ()
    | Some path ->
        let events = List.sort by_ts (gather_events ()) in
        let buf = Buffer.create 65536 in
        Buffer.add_string buf "[";
        List.iteri
          (fun i ev ->
            Buffer.add_string buf (if i = 0 then "\n" else ",\n");
            event_json buf ev)
          events;
        Buffer.add_string buf "\n]\n";
        write_file_atomic path (Buffer.contents buf)

  (* Incremental mode, for long-lived daemons: each flush drains the
     buffers and appends their events to the output file, which starts
     with "[" and never receives the closing "]" — the Chrome trace
     array format is explicitly forgiving of a missing terminator, and
     Perfetto loads such files. This keeps periodic flushing O(new
     events) instead of O(history). *)
  let incremental = ref false

  let set_incremental b = incremental := b

  let inc_path : string option ref = ref None

  let inc_written = ref 0

  let flush_incremental () =
    match !output_path with
    | None -> ()
    | Some path ->
        let fresh = !inc_path <> Some path in
        if fresh then begin
          inc_path := Some path;
          inc_written := 0
        end;
        let events = List.sort by_ts (drain_events ()) in
        if fresh || events <> [] then begin
          let oc =
            open_out_gen
              (if fresh then [ Open_wronly; Open_creat; Open_trunc ]
               else [ Open_wronly; Open_creat; Open_append ])
              0o644 path
          in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              let buf = Buffer.create 65536 in
              if fresh then Buffer.add_string buf "[";
              List.iter
                (fun ev ->
                  Buffer.add_string buf
                    (if !inc_written = 0 then "\n" else ",\n");
                  event_json buf ev;
                  incr inc_written)
                events;
              Buffer.add_string buf "\n";
              output_string oc (Buffer.contents buf))
        end

  let flush () = if !incremental then flush_incremental () else flush_rewrite ()

  let flush_at_exit_armed = ref false

  (* [set_output (Some path)] starts a fresh recording: previously
     buffered events are discarded, so a None -> Some cycle cannot leak
     spans from the earlier recording into the new file (the old
     behavior silently rewrote that stale superset). *)
  let set_output path =
    output_path := path;
    (match path with
    | Some _ ->
        clear ();
        inc_path := None;
        inc_written := 0;
        on := true;
        if not !flush_at_exit_armed then begin
          flush_at_exit_armed := true;
          at_exit flush
        end
    | None -> on := false)
end

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                    *)

module Flight = struct
  (* A bounded per-domain ring of the most recent spans, always cheap
     enough to leave on in a serving daemon: recording a span is one
     mutex-protected slot store, no growth, no I/O. On a 5xx, a solver
     that failed to converge, or SIGUSR1 the rings are dumped atomically
     as a Chrome trace, so the first failure of a long-running process
     is diagnosable after the fact. *)

  let ring_capacity = 512

  type ring = {
    slots : Trace.event option array;
    mutable next : int;  (* total pushes; slot = next mod capacity *)
    rm : Mutex.t;
  }

  let all_rings : ring list ref = ref []

  let rings_mutex = Mutex.create ()

  let ring_key =
    Domain.DLS.new_key (fun () ->
        let r =
          { slots = Array.make ring_capacity None; next = 0; rm = Mutex.create () }
        in
        Mutex.protect rings_mutex (fun () -> all_rings := r :: !all_rings);
        r)

  let enabled () = !Trace.flight_on

  let set_enabled b = Trace.flight_on := b

  let out_path = ref "arcade-flight.json"

  let set_path p = out_path := p

  let path () = !out_path

  let push ev =
    let r = Domain.DLS.get ring_key in
    Mutex.protect r.rm (fun () ->
        r.slots.(r.next mod ring_capacity) <- Some ev;
        r.next <- r.next + 1)

  let () = Trace.flight_push_ev := push

  let clear () =
    Mutex.protect rings_mutex (fun () ->
        List.iter
          (fun r ->
            Mutex.protect r.rm (fun () ->
                Array.fill r.slots 0 ring_capacity None;
                r.next <- 0))
          !all_rings)

  let dump_total = Atomic.make 0

  let dump_count () = Atomic.get dump_total

  let m_dumps = Metrics.counter "flight.dumps"

  let dump ?(reason = "manual") () =
    let events =
      Mutex.protect rings_mutex (fun () ->
          List.concat_map
            (fun r ->
              Mutex.protect r.rm (fun () ->
                  let n = min r.next ring_capacity in
                  let first = r.next - n in
                  List.init n (fun i ->
                      match r.slots.((first + i) mod ring_capacity) with
                      | Some ev -> ev
                      | None -> assert false)))
            !all_rings)
    in
    let marker =
      {
        Trace.ev_name = "flight.dump";
        ph = "i";
        ts = monotonic_ns ();
        dur = 0L;
        tid = Trace.current_tid ();
        ev_attrs = [ ("reason", Str reason) ];
        ev_trace = None;
      }
    in
    let events = List.sort Trace.by_ts events @ [ marker ] in
    let buf = Buffer.create 65536 in
    Buffer.add_string buf "[";
    List.iteri
      (fun i ev ->
        Buffer.add_string buf (if i = 0 then "\n" else ",\n");
        Trace.event_json buf ev)
      events;
    Buffer.add_string buf "\n]\n";
    write_file_atomic !out_path (Buffer.contents buf);
    ignore (Atomic.fetch_and_add dump_total 1 : int);
    Metrics.incr m_dumps

  let () =
    Metrics.nonconverged_hook :=
      fun () -> if enabled () then dump ~reason:"solver_nonconvergence" ()

  (* SIGUSR1 only sets a flag: dumping takes locks and allocates, which a
     signal handler interrupting a lock holder must not do. Something
     periodic (the server's housekeeping thread) calls [poll]. *)
  let requested = Atomic.make false

  let request_dump () = Atomic.set requested true

  let poll () = if Atomic.exchange requested false then dump ~reason:"sigusr1" ()

  let arm_sigusr1 () =
    Sys.set_signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> request_dump ()))
end

(* ------------------------------------------------------------------ *)
(* Environment wiring                                                 *)

let initialized = ref false

let init () =
  if not !initialized then begin
    initialized := true;
    (match Sys.getenv_opt "OBS_TRACE_BUFFER" with
    | None | Some "" -> ()
    | Some ("unbounded" | "0") -> Trace.set_buffer_capacity None
    | Some v -> (
        match int_of_string_opt (String.trim v) with
        | Some n when n >= 1 -> Trace.set_buffer_capacity (Some n)
        | Some _ | None ->
            Printf.eprintf
              "warning: ignoring OBS_TRACE_BUFFER=%S: expected a positive \
               integer, \"unbounded\" or \"0\"\n\
               %!"
              v));
    (match Sys.getenv_opt "OBS_TRACE" with
    | Some path when path <> "" && path <> "0" -> Trace.set_output (Some path)
    | Some _ | None -> ());
    (match Sys.getenv_opt "OBS_FLIGHT" with
    | None | Some "" | Some "0" -> ()
    | Some ("1" | "true" | "yes") -> Flight.set_enabled true
    | Some path ->
        Flight.set_path path;
        Flight.set_enabled true);
    match Sys.getenv_opt "OBS_METRICS" with
    | Some ("" | "0") | None -> ()
    | Some ("1" | "true" | "yes") ->
        Metrics.set_enabled true;
        at_exit (fun () ->
            Format.eprintf "%a@." Metrics.pp (Metrics.snapshot ()))
    | Some path ->
        Metrics.set_enabled true;
        at_exit (fun () ->
            write_file_atomic path (Metrics.to_json (Metrics.snapshot ())))
  end
