type attr =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

external monotonic_ns : unit -> (int64[@unboxed])
  = "obs_monotonic_ns" "obs_monotonic_ns_unboxed"
[@@noalloc]

(* ------------------------------------------------------------------ *)
(* Shared JSON helpers (no JSON library in the dependency set)        *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no NaN/Infinity literals; map them to null. *)
let json_float x =
  if Float.is_finite x then Printf.sprintf "%.17g" x else "null"

let json_attr = function
  | Int i -> string_of_int i
  | Float x -> json_float x
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Bool b -> string_of_bool b

(* Each writer gets its own temp name (pid + per-process sequence), so
   concurrent flushes to the same path — two domains, or two processes —
   never clobber each other's temp file; whichever rename lands last
   wins, and both leave a complete file. On any failure the temp file is
   unlinked before the exception propagates. *)
let tmp_counter = Atomic.make 0

let write_file_atomic path contents =
  let tmp =
    Printf.sprintf "%s.%d.%d.tmp" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_counter 1)
  in
  match
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc contents);
    Sys.rename tmp path
  with
  | () -> ()
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                   *)

module Metrics = struct
  let on = ref false

  let enabled () = !on

  let set_enabled b = on := b

  type counter = int Atomic.t

  type gauge = float Atomic.t

  type histogram = {
    bounds : float array;
    buckets : int Atomic.t array;  (* length = Array.length bounds + 1 *)
    h_sum : float Atomic.t;
  }

  type instrument =
    | C of counter
    | G of gauge
    | H of histogram

  let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64

  let registry_mutex = Mutex.create ()

  let register name make describe =
    Mutex.protect registry_mutex (fun () ->
        match Hashtbl.find_opt registry name with
        | Some existing -> describe existing
        | None ->
            let i = make () in
            Hashtbl.replace registry name i;
            describe i)

  let kind_error name =
    invalid_arg
      (Printf.sprintf "Obs.Metrics: %S already registered as a different kind"
         name)

  let counter name =
    register name
      (fun () -> C (Atomic.make 0))
      (function C c -> c | G _ | H _ -> kind_error name)

  let incr c = if !on then ignore (Atomic.fetch_and_add c 1 : int)

  let add c n = if !on then ignore (Atomic.fetch_and_add c n : int)

  let counter_value c = Atomic.get c

  let gauge name =
    register name
      (fun () -> G (Atomic.make 0.))
      (function G g -> g | C _ | H _ -> kind_error name)

  let set_gauge g x = if !on then Atomic.set g x

  (* log-spaced decade grid: residuals (1e-16..1) and counts/widths
     (1..1e6) both land in meaningful buckets *)
  let default_buckets =
    Array.init 23 (fun i -> 10. ** float_of_int (i - 16))

  let histogram ?(buckets = default_buckets) name =
    Array.iteri
      (fun i b ->
        if i > 0 && b <= buckets.(i - 1) then
          invalid_arg "Obs.Metrics.histogram: buckets must be increasing")
      buckets;
    register name
      (fun () ->
        H
          {
            bounds = Array.copy buckets;
            buckets = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
            h_sum = Atomic.make 0.;
          })
      (function H h -> h | C _ | G _ -> kind_error name)

  let rec atomic_add_float a x =
    let cur = Atomic.get a in
    if not (Atomic.compare_and_set a cur (cur +. x)) then atomic_add_float a x

  let bucket_index bounds x =
    (* first bound >= x; bounds are short (tens), linear scan is fine *)
    let n = Array.length bounds in
    let rec go i = if i >= n || x <= bounds.(i) then i else go (i + 1) in
    go 0

  let observe h x =
    if !on then begin
      ignore (Atomic.fetch_and_add h.buckets.(bucket_index h.bounds x) 1 : int);
      atomic_add_float h.h_sum x
    end

  (* ---------------------------------------------------------------- *)
  (* Solver-convergence ring                                          *)

  type solve = {
    solver : string;
    size : int;
    iterations : int;
    residual : float;
    converged : bool;
  }

  let ring_capacity = 256

  let ring : solve option array = Array.make ring_capacity None

  let ring_next = ref 0 (* total records so far; slot = next mod capacity *)

  let ring_mutex = Mutex.create ()

  let record_solve ~solver ~size ~iterations ~residual ~converged =
    if !on then begin
      add (counter (Printf.sprintf "solver.%s.solves" solver)) 1;
      add (counter (Printf.sprintf "solver.%s.iterations" solver)) iterations;
      set_gauge (gauge (Printf.sprintf "solver.%s.last_residual" solver)) residual;
      observe
        (histogram (Printf.sprintf "solver.%s.residual" solver))
        residual;
      let s = { solver; size; iterations; residual; converged } in
      Mutex.protect ring_mutex (fun () ->
          ring.(!ring_next mod ring_capacity) <- Some s;
          ring_next := !ring_next + 1)
    end

  (* ---------------------------------------------------------------- *)
  (* Snapshots                                                        *)

  type snapshot = {
    counters : (string * int) list;
    gauges : (string * float) list;
    histograms : (string * histogram_view) list;
    solves : solve list;
  }

  and histogram_view = {
    bounds : float array;
    counts : int array;
    total : int;
    sum : float;
  }

  let snapshot () =
    let cs = ref [] and gs = ref [] and hs = ref [] in
    Mutex.protect registry_mutex (fun () ->
        Hashtbl.iter
          (fun name i ->
            match i with
            | C c -> cs := (name, Atomic.get c) :: !cs
            | G g -> gs := (name, Atomic.get g) :: !gs
            | H h ->
                let counts = Array.map Atomic.get h.buckets in
                hs :=
                  ( name,
                    {
                      bounds = Array.copy h.bounds;
                      counts;
                      total = Array.fold_left ( + ) 0 counts;
                      sum = Atomic.get h.h_sum;
                    } )
                  :: !hs)
          registry);
    let solves =
      Mutex.protect ring_mutex (fun () ->
          let n = min !ring_next ring_capacity in
          let first = !ring_next - n in
          List.init n (fun i ->
              match ring.((first + i) mod ring_capacity) with
              | Some s -> s
              | None -> assert false))
    in
    let by_name (a, _) (b, _) = compare (a : string) b in
    {
      counters = List.sort by_name !cs;
      gauges = List.sort by_name !gs;
      histograms = List.sort by_name !hs;
      solves;
    }

  let reset () =
    Mutex.protect registry_mutex (fun () ->
        Hashtbl.iter
          (fun _ i ->
            match i with
            | C c -> Atomic.set c 0
            | G g -> Atomic.set g 0.
            | H h ->
                Array.iter (fun b -> Atomic.set b 0) h.buckets;
                Atomic.set h.h_sum 0.)
          registry);
    Mutex.protect ring_mutex (fun () ->
        Array.fill ring 0 ring_capacity None;
        ring_next := 0)

  let pp ppf s =
    Format.fprintf ppf "@[<v>metrics:";
    Format.fprintf ppf "@,  counters:";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "@,    %-44s %d" name v)
      s.counters;
    Format.fprintf ppf "@,  gauges:";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "@,    %-44s %g" name v)
      s.gauges;
    Format.fprintf ppf "@,  histograms:";
    List.iter
      (fun (name, h) ->
        Format.fprintf ppf "@,    %s: total=%d sum=%g" name h.total h.sum;
        Array.iteri
          (fun i c ->
            if c > 0 then
              if i < Array.length h.bounds then
                Format.fprintf ppf " [<=%g: %d]" h.bounds.(i) c
              else Format.fprintf ppf " [>%g: %d]" h.bounds.(i - 1) c)
          h.counts)
      s.histograms;
    if s.solves <> [] then begin
      Format.fprintf ppf "@,  solves (last %d):" (List.length s.solves);
      List.iter
        (fun v ->
          Format.fprintf ppf "@,    %-22s n=%-7d iterations=%-6d residual=%.3e%s"
            v.solver v.size v.iterations v.residual
            (if v.converged then "" else " NOT CONVERGED"))
        s.solves
    end;
    Format.fprintf ppf "@]"

  let to_json s =
    let buf = Buffer.create 2048 in
    Buffer.add_string buf "{\n  \"counters\": {";
    List.iteri
      (fun i (name, v) ->
        Buffer.add_string buf
          (Printf.sprintf "%s\n    \"%s\": %d"
             (if i = 0 then "" else ",")
             (json_escape name) v))
      s.counters;
    Buffer.add_string buf "\n  },\n  \"gauges\": {";
    List.iteri
      (fun i (name, v) ->
        Buffer.add_string buf
          (Printf.sprintf "%s\n    \"%s\": %s"
             (if i = 0 then "" else ",")
             (json_escape name) (json_float v)))
      s.gauges;
    Buffer.add_string buf "\n  },\n  \"histograms\": {";
    List.iteri
      (fun i (name, h) ->
        let floats a =
          String.concat ", " (Array.to_list (Array.map json_float a))
        in
        let ints a =
          String.concat ", " (Array.to_list (Array.map string_of_int a))
        in
        Buffer.add_string buf
          (Printf.sprintf
             "%s\n    \"%s\": {\"bounds\": [%s], \"counts\": [%s], \
              \"total\": %d, \"sum\": %s}"
             (if i = 0 then "" else ",")
             (json_escape name) (floats h.bounds) (ints h.counts) h.total
             (json_float h.sum)))
      s.histograms;
    Buffer.add_string buf "\n  },\n  \"solves\": [";
    List.iteri
      (fun i v ->
        Buffer.add_string buf
          (Printf.sprintf
             "%s\n    {\"solver\": \"%s\", \"size\": %d, \"iterations\": %d, \
              \"residual\": %s, \"converged\": %b}"
             (if i = 0 then "" else ",")
             (json_escape v.solver) v.size v.iterations (json_float v.residual)
             v.converged))
      s.solves;
    Buffer.add_string buf "\n  ]\n}\n";
    Buffer.contents buf
end

(* ------------------------------------------------------------------ *)
(* Span tracing                                                       *)

module Trace = struct
  let on = ref false

  let enabled () = !on

  let output_path = ref None

  type event = {
    ev_name : string;
    ph : string;  (* "X" complete, "i" instant *)
    ts : int64;  (* monotonic ns *)
    dur : int64;  (* ns; 0 for instants *)
    tid : int;
    ev_attrs : (string * attr) list;
  }

  (* Per-domain event buffers: every domain appends to its own buffer
     (registered once in [all_buffers]), so recording is contention-free
     under Numeric.Parallel fan-out; flush walks all buffers. The
     registry keeps buffers of joined domains alive. *)
  type buffer = { tid : int; mutable events : event list }

  let all_buffers : buffer list ref = ref []

  let buffers_mutex = Mutex.create ()

  let buffer_key =
    Domain.DLS.new_key (fun () ->
        let b = { tid = (Domain.self () :> int); events = [] } in
        Mutex.protect buffers_mutex (fun () -> all_buffers := b :: !all_buffers);
        b)

  let t0 = monotonic_ns ()

  type open_span = {
    sp_name : string;
    start : int64;
    mutable sp_attrs : (string * attr) list;
  }

  type span = No_span | Span of open_span

  let recording = function No_span -> false | Span _ -> true

  let add_attr span key v =
    match span with
    | No_span -> ()
    | Span sp -> sp.sp_attrs <- (key, v) :: List.remove_assoc key sp.sp_attrs

  let record ev =
    let b = Domain.DLS.get buffer_key in
    b.events <- ev :: b.events

  let close sp =
    let now = monotonic_ns () in
    record
      {
        ev_name = sp.sp_name;
        ph = "X";
        ts = sp.start;
        dur = Int64.sub now sp.start;
        tid = (Domain.self () :> int);
        ev_attrs = List.rev sp.sp_attrs;
      }

  let with_span ?attrs name f =
    if not !on then f No_span
    else begin
      let sp =
        {
          sp_name = name;
          start = monotonic_ns ();
          sp_attrs = (match attrs with Some l -> List.rev l | None -> []);
        }
      in
      match f (Span sp) with
      | v ->
          close sp;
          v
      | exception e ->
          add_attr (Span sp) "exception" (Str (Printexc.to_string e));
          close sp;
          raise e
    end

  let instant ?(attrs = []) name =
    if !on then
      record
        {
          ev_name = name;
          ph = "i";
          ts = monotonic_ns ();
          dur = 0L;
          tid = (Domain.self () :> int);
          ev_attrs = attrs;
        }

  let event_json buf ev =
    let us ns = Int64.to_float (Int64.sub ns t0) /. 1e3 in
    Buffer.add_string buf
      (Printf.sprintf
         "{\"name\": \"%s\", \"cat\": \"arcade\", \"ph\": \"%s\", \
          \"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %d"
         (json_escape ev.ev_name) ev.ph (us ev.ts)
         (Int64.to_float ev.dur /. 1e3)
         ev.tid);
    (match ev.ph with
    | "i" -> Buffer.add_string buf ", \"s\": \"t\""
    | _ -> ());
    if ev.ev_attrs <> [] then begin
      Buffer.add_string buf ", \"args\": {";
      List.iteri
        (fun i (k, v) ->
          Buffer.add_string buf
            (Printf.sprintf "%s\"%s\": %s"
               (if i = 0 then "" else ", ")
               (json_escape k) (json_attr v)))
        ev.ev_attrs;
      Buffer.add_string buf "}"
    end;
    Buffer.add_string buf "}"

  let flush () =
    match !output_path with
    | None -> ()
    | Some path ->
        let events =
          Mutex.protect buffers_mutex (fun () ->
              List.concat_map (fun b -> b.events) !all_buffers)
        in
        let events =
          List.sort (fun a b -> Int64.compare a.ts b.ts) events
        in
        let buf = Buffer.create 65536 in
        Buffer.add_string buf "[";
        List.iteri
          (fun i ev ->
            Buffer.add_string buf (if i = 0 then "\n" else ",\n");
            event_json buf ev)
          events;
        Buffer.add_string buf "\n]\n";
        write_file_atomic path (Buffer.contents buf)

  let flush_at_exit_armed = ref false

  let set_output path =
    output_path := path;
    (match path with
    | Some _ ->
        on := true;
        if not !flush_at_exit_armed then begin
          flush_at_exit_armed := true;
          at_exit flush
        end
    | None -> on := false)
end

(* ------------------------------------------------------------------ *)
(* Environment wiring                                                 *)

let initialized = ref false

let init () =
  if not !initialized then begin
    initialized := true;
    (match Sys.getenv_opt "OBS_TRACE" with
    | Some path when path <> "" && path <> "0" -> Trace.set_output (Some path)
    | Some _ | None -> ());
    match Sys.getenv_opt "OBS_METRICS" with
    | Some ("" | "0") | None -> ()
    | Some ("1" | "true" | "yes") ->
        Metrics.set_enabled true;
        at_exit (fun () ->
            Format.eprintf "%a@." Metrics.pp (Metrics.snapshot ()))
    | Some path ->
        Metrics.set_enabled true;
        at_exit (fun () ->
            write_file_atomic path (Metrics.to_json (Metrics.snapshot ())))
  end
