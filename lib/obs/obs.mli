(** Observability: span tracing, a metrics registry, solver telemetry and
    a flight recorder.

    The numeric pipelines behind the paper's artifacts — uniformization
    sweeps, Fox–Glynn windows, Gauss–Seidel/Jacobi solves, lumping — are
    instrumented through this layer. It has three sinks:

    - {!Trace}: nestable, monotonic-clock timed spans with key/value
      attributes and optional W3C trace-context linkage, buffered
      per-domain (safe under {!Numeric.Parallel} fan-out and under the
      server's systhreads) and flushed as Chrome trace-event JSON,
      loadable in Perfetto / [chrome://tracing].
    - {!Metrics}: named counters, gauges and fixed-bucket histograms with
      O(1) lock-free updates, plus a bounded ring of recent solver-
      convergence events; dumped with {!Metrics.snapshot} / {!Metrics.pp}
      / {!Metrics.to_json} / {!Metrics.to_prometheus}.
    - {!Flight}: an always-cheap bounded ring of recent spans, dumped as
      a Chrome trace on failure (5xx, solver non-convergence, SIGUSR1)
      for after-the-fact diagnosis in long-running daemons.

    {!Trace} and {!Metrics} are {e disabled by default} and effectively
    free when off: every record site reduces to a single flag check and
    performs no allocation. Enable them programmatically
    ({!Trace.set_output}, {!Metrics.set_enabled}, {!Flight.set_enabled})
    or through the environment via {!init} ([OBS_TRACE=<file>],
    [OBS_METRICS=1|<file>], [OBS_TRACE_BUFFER=<n>], [OBS_FLIGHT=<file>]). *)

type attr =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
      (** Attribute values attached to spans; rendered into the Chrome
          trace event's [args] object. *)

val monotonic_ns : unit -> int64
(** Raw monotonic clock (CLOCK_MONOTONIC), nanoseconds from an arbitrary
    origin. Exposed for callers that time things themselves. *)

val write_file_atomic : string -> string -> unit
(** [write_file_atomic path contents] writes [contents] to a uniquely
    named temp file next to [path] (pid + sequence number, so concurrent
    writers — domains or processes — cannot collide) and renames it over
    [path]: readers never observe a truncated file. On failure the temp
    file is unlinked and the exception re-raised. Used for every JSON
    artifact the tree emits (traces, metrics, bench timings, load
    reports). *)

val init : unit -> unit
(** Read the [OBS_*] environment and arm the at-exit hooks. Idempotent.

    - [OBS_TRACE=<file>]: enable tracing; the trace is flushed to [<file>]
      at process exit (and on every explicit {!Trace.flush}).
    - [OBS_TRACE_BUFFER=<n>]: bound each domain's trace buffer to [n]
      events (drop-oldest); ["unbounded"] or ["0"] keeps full retention.
    - [OBS_METRICS=1] (or [true]/[yes]): enable metrics; the snapshot is
      pretty-printed to stderr at exit.
    - [OBS_METRICS=<file>]: enable metrics; the snapshot is written to
      [<file>] as JSON at exit.
    - [OBS_FLIGHT=<file>] (or [1]): enable the flight recorder, dumping
      to [<file>] (default [arcade-flight.json]).

    Binaries call this once at startup; libraries never do. *)

(** {1 Metrics registry} *)

module Metrics : sig
  val enabled : unit -> bool

  val set_enabled : bool -> unit
  (** Flip the global recording flag. Registration ({!counter} etc.) is
      always allowed; only the update paths are gated. *)

  (** {2 Instruments}

      Instruments are registered once by name (module-initialization time
      is fine: registration is cheap and independent of the enabled flag)
      and updated through their handle. Registration is idempotent — the
      same name yields the same instrument — but re-registering a name as
      a different kind raises [Invalid_argument]. Updates are atomic, so
      instruments shared across domains merge exactly. *)

  type counter

  val counter : string -> counter

  val incr : counter -> unit

  val add : counter -> int -> unit

  val counter_value : counter -> int
  (** Current value (reads ignore the enabled flag). *)

  type gauge

  val gauge : string -> gauge

  val set_gauge : gauge -> float -> unit

  val gauge_value : gauge -> float
  (** Current value (reads ignore the enabled flag). *)

  type histogram

  val histogram : ?buckets:float array -> string -> histogram
  (** [buckets] are the upper bounds of the fixed buckets, strictly
      increasing; an implicit overflow bucket catches the rest. The
      default is a log-spaced decade grid from [1e-16] to [1e6] suited to
      residuals, window widths and iteration counts alike. [buckets] is
      ignored when the name is already registered. *)

  val default_buckets : float array
  (** The decade grid used when [?buckets] is omitted. *)

  val latency_ms_buckets : float array
  (** A latency-shaped grid (0.25 ms to ~8 s, powers of two) for request
      and query timings in milliseconds. *)

  val observe : histogram -> float -> unit

  (** {2 Solver-convergence telemetry}

      Iterative solvers report each solve here ({!record_solve}); the
      registry keeps per-solver aggregate instruments
      ([solver.<name>.solves], [.iterations], [.last_residual],
      [.residual] histogram) and a bounded ring of the most recent
      individual events, so a snapshot shows the final residual and
      iteration count of every recent steady-state solve. A solve with
      [converged:false] also triggers a {!Flight} dump when the flight
      recorder is enabled. *)

  type solve = {
    solver : string;  (** e.g. ["gauss_seidel"], ["power_iteration"] *)
    size : int;  (** number of unknowns *)
    iterations : int;
    residual : float;
    converged : bool;
  }

  val record_solve :
    solver:string ->
    size:int ->
    iterations:int ->
    residual:float ->
    converged:bool ->
    unit

  (** {2 Snapshots} *)

  type snapshot = {
    counters : (string * int) list;  (** sorted by name *)
    gauges : (string * float) list;  (** sorted by name *)
    histograms : (string * histogram_view) list;  (** sorted by name *)
    solves : solve list;  (** chronological, bounded ring *)
  }

  and histogram_view = {
    bounds : float array;
    counts : int array;  (** length [Array.length bounds + 1] *)
    total : int;
    sum : float;
  }

  val snapshot : unit -> snapshot

  val pp : Format.formatter -> snapshot -> unit

  val to_json : snapshot -> string
  (** The snapshot as one JSON object with [counters], [gauges],
      [histograms] and [solves] members. *)

  val to_prometheus : snapshot -> string
  (** The snapshot in Prometheus text exposition format 0.0.4. Every
      family is prefixed [arcade_] and sanitized ([[^a-zA-Z0-9_:]] maps
      to [_]); counters gain the [_total] suffix; histograms emit
      cumulative [_bucket{le="..."}] lines ending in [le="+Inf"], plus
      [_sum] and [_count]. When sanitization collides two registry names
      the first (alphabetical) wins and the later family is skipped, so
      no family is emitted twice. The solve ring is JSON-only. *)

  val reset : unit -> unit
  (** Zero every instrument and clear the solve ring, keeping
      registrations. Meant for tests and for delta measurements. *)
end

(** {1 Span tracing} *)

module Trace : sig
  val enabled : unit -> bool

  val set_output : string option -> unit
  (** [set_output (Some path)] enables tracing and arms an at-exit flush
      to [path], discarding any events buffered for a previous output so
      the new recording starts clean; [set_output None] disables
      tracing. *)

  (** {2 W3C trace-context}

      Requests carry a trace identity across process boundaries via the
      W3C [traceparent] header
      ([00-<32 hex trace id>-<16 hex span id>-<2 hex flags>]). Within a
      process the current context is scoped per (domain, systhread) and
      propagated by {!with_context} / {!with_span};
      {!Numeric.Parallel.Pool} re-installs the submitter's context in its
      workers, so spans recorded on a pool domain still join the
      submitting request's trace. *)

  type context = { trace_id : string; span_id : string }

  val new_context : unit -> context
  (** Fresh random trace and span ids (lowercase hex, never all-zero). *)

  val child_context : context -> context
  (** Same trace id, fresh span id. *)

  val parse_traceparent : string -> context option
  (** Parse a [traceparent] header value. Returns [None] on malformed
      input: wrong field lengths, non-lowercase hex, all-zero trace or
      span id, version [ff], or trailing fields under version [00]
      (later versions with trailing fields are accepted). *)

  val format_traceparent : context -> string
  (** [00-<trace_id>-<span_id>-01]. *)

  val current_context : unit -> context option
  (** The context installed for this (domain, systhread), if any. [None]
      whenever tracing and the flight recorder are both off. *)

  val with_context : context option -> (unit -> 'a) -> 'a
  (** Install (or clear, with [None]) the current context around a
      callback, restoring the previous one afterwards. *)

  (** {2 Spans} *)

  type span
  (** An open span. When tracing is disabled this is a weightless dummy:
      {!with_span} still runs its body, and attribute updates no-op. *)

  val recording : span -> bool
  (** [true] when the span is live — guard attribute construction with
      this to keep disabled call sites allocation-free. *)

  val with_span :
    ?ctx:context -> ?attrs:(string * attr) list -> string -> (span -> 'a) -> 'a
  (** [with_span name f] times [f] under a span named [name]. Spans nest
      with the call stack; each domain buffers its own spans, so spans
      opened inside {!Numeric.Parallel} workers land on that worker's
      Chrome-trace track. The span is closed (and recorded) even when [f]
      raises. When tracing is disabled, [f] runs with a dummy span and
      nothing is recorded or allocated.

      Trace linkage: with [?ctx] the span takes that exact identity (the
      caller minted the ids, e.g. a server echoing them in a response
      header) and the ambient context becomes its parent; without [?ctx]
      the span becomes a child of the ambient context when one is
      installed, and carries no trace ids otherwise. The span's context
      is the ambient context for the duration of [f]. *)

  val add_attr : span -> string -> attr -> unit
  (** Attach/overwrite an attribute on an open span; no-op on a dummy. *)

  val instant : ?attrs:(string * attr) list -> string -> unit
  (** A zero-duration instant event (Chrome phase ["i"]), tagged with the
      ambient context when one is installed. *)

  (** {2 Buffers and flushing} *)

  val set_buffer_capacity : int option -> unit
  (** Bound every per-domain buffer to the given number of events; on
      overflow the oldest event is dropped and the
      [trace.dropped_events] counter bumped. [None] (the default)
      retains everything — right for short-lived binaries, wrong for
      daemons. *)

  val buffer_capacity : unit -> int option

  val dropped_events : unit -> int
  (** Total events dropped to capacity bounds since the last {!clear}. *)

  val clear : unit -> unit
  (** Discard all buffered events and reset the dropped count. Meant for
      tests. *)

  val set_incremental : bool -> unit
  (** In incremental mode each {!flush} {e drains} the buffers and
      appends the drained events to the output file (which is left
      without its closing bracket — the Chrome trace array format
      tolerates this and Perfetto loads it). Flushing stays O(new
      events), which is what a daemon's periodic flush needs. The
      default mode rewrites the full buffered history each time. *)

  val flush : unit -> unit
  (** Write buffered events to the {!set_output} path as Chrome
      trace-event JSON. In the default mode the file is rewritten
      atomically (temp file + rename) with everything currently
      buffered; in incremental mode drained events are appended. No-op
      when no output path is set. *)
end

(** {1 Flight recorder} *)

module Flight : sig
  val enabled : unit -> bool

  val set_enabled : bool -> unit
  (** When enabled, every closed span and instant is also stored in a
      bounded per-domain ring (newest overwrite oldest), independent of
      whether file tracing is on. Recording is one lock-protected array
      store — cheap enough to leave on in a serving daemon. *)

  val set_path : string -> unit
  (** Where {!dump} writes; default [arcade-flight.json]. *)

  val path : unit -> string

  val dump : ?reason:string -> unit -> unit
  (** Atomically write the ring contents (all domains, sorted, plus a
      [flight.dump] marker carrying [reason]) as a Chrome trace to
      {!path}. Bumps the [flight.dumps] counter. *)

  val dump_count : unit -> int
  (** Number of dumps performed by this process. *)

  val request_dump : unit -> unit
  (** Ask for a dump from an async-signal context: only sets a flag. *)

  val poll : unit -> unit
  (** Perform a dump if one was {!request_dump}ed. Called periodically
      by the server's housekeeping thread. *)

  val arm_sigusr1 : unit -> unit
  (** Install a SIGUSR1 handler that calls {!request_dump}. *)

  val clear : unit -> unit
  (** Empty the rings. Meant for tests. *)
end
