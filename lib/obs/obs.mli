(** Observability: span tracing, a metrics registry, and solver telemetry.

    The numeric pipelines behind the paper's artifacts — uniformization
    sweeps, Fox–Glynn windows, Gauss–Seidel/Jacobi solves, lumping — are
    instrumented through this layer. It has two independent sinks:

    - {!Trace}: nestable, monotonic-clock timed spans with key/value
      attributes, buffered per-domain (safe under {!Numeric.Parallel}
      fan-out) and flushed as Chrome trace-event JSON, loadable in
      Perfetto / [chrome://tracing].
    - {!Metrics}: named counters, gauges and fixed-bucket histograms with
      O(1) lock-free updates, plus a bounded ring of recent solver-
      convergence events; dumped with {!Metrics.snapshot} / {!Metrics.pp}
      / {!Metrics.to_json}.

    Both sinks are {e disabled by default} and effectively free when off:
    every record site reduces to a single flag check and performs no
    allocation. Enable them programmatically ({!Trace.set_output},
    {!Metrics.set_enabled}) or through the environment via {!init}
    ([OBS_TRACE=<file>], [OBS_METRICS=1|<file>]). *)

type attr =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
      (** Attribute values attached to spans; rendered into the Chrome
          trace event's [args] object. *)

val monotonic_ns : unit -> int64
(** Raw monotonic clock (CLOCK_MONOTONIC), nanoseconds from an arbitrary
    origin. Exposed for callers that time things themselves. *)

val write_file_atomic : string -> string -> unit
(** [write_file_atomic path contents] writes [contents] to a uniquely
    named temp file next to [path] (pid + sequence number, so concurrent
    writers — domains or processes — cannot collide) and renames it over
    [path]: readers never observe a truncated file. On failure the temp
    file is unlinked and the exception re-raised. Used for every JSON
    artifact the tree emits (traces, metrics, bench timings, load
    reports). *)

val init : unit -> unit
(** Read the [OBS_*] environment and arm the at-exit hooks. Idempotent.

    - [OBS_TRACE=<file>]: enable tracing; the trace is flushed to [<file>]
      at process exit (and on every explicit {!Trace.flush}).
    - [OBS_METRICS=1] (or [true]/[yes]): enable metrics; the snapshot is
      pretty-printed to stderr at exit.
    - [OBS_METRICS=<file>]: enable metrics; the snapshot is written to
      [<file>] as JSON at exit.

    Binaries call this once at startup; libraries never do. *)

(** {1 Metrics registry} *)

module Metrics : sig
  val enabled : unit -> bool

  val set_enabled : bool -> unit
  (** Flip the global recording flag. Registration ({!counter} etc.) is
      always allowed; only the update paths are gated. *)

  (** {2 Instruments}

      Instruments are registered once by name (module-initialization time
      is fine: registration is cheap and independent of the enabled flag)
      and updated through their handle. Registration is idempotent — the
      same name yields the same instrument — but re-registering a name as
      a different kind raises [Invalid_argument]. Updates are atomic, so
      instruments shared across domains merge exactly. *)

  type counter

  val counter : string -> counter

  val incr : counter -> unit

  val add : counter -> int -> unit

  val counter_value : counter -> int
  (** Current value (reads ignore the enabled flag). *)

  type gauge

  val gauge : string -> gauge

  val set_gauge : gauge -> float -> unit

  type histogram

  val histogram : ?buckets:float array -> string -> histogram
  (** [buckets] are the upper bounds of the fixed buckets, strictly
      increasing; an implicit overflow bucket catches the rest. The
      default is a log-spaced decade grid from [1e-16] to [1e6] suited to
      residuals, window widths and iteration counts alike. [buckets] is
      ignored when the name is already registered. *)

  val observe : histogram -> float -> unit

  (** {2 Solver-convergence telemetry}

      Iterative solvers report each solve here ({!record_solve}); the
      registry keeps per-solver aggregate instruments
      ([solver.<name>.solves], [.iterations], [.last_residual],
      [.residual] histogram) and a bounded ring of the most recent
      individual events, so a snapshot shows the final residual and
      iteration count of every recent steady-state solve. *)

  type solve = {
    solver : string;  (** e.g. ["gauss_seidel"], ["power_iteration"] *)
    size : int;  (** number of unknowns *)
    iterations : int;
    residual : float;
    converged : bool;
  }

  val record_solve :
    solver:string ->
    size:int ->
    iterations:int ->
    residual:float ->
    converged:bool ->
    unit

  (** {2 Snapshots} *)

  type snapshot = {
    counters : (string * int) list;  (** sorted by name *)
    gauges : (string * float) list;  (** sorted by name *)
    histograms : (string * histogram_view) list;  (** sorted by name *)
    solves : solve list;  (** chronological, bounded ring *)
  }

  and histogram_view = {
    bounds : float array;
    counts : int array;  (** length [Array.length bounds + 1] *)
    total : int;
    sum : float;
  }

  val snapshot : unit -> snapshot

  val pp : Format.formatter -> snapshot -> unit

  val to_json : snapshot -> string
  (** The snapshot as one JSON object with [counters], [gauges],
      [histograms] and [solves] members. *)

  val reset : unit -> unit
  (** Zero every instrument and clear the solve ring, keeping
      registrations. Meant for tests and for delta measurements. *)
end

(** {1 Span tracing} *)

module Trace : sig
  val enabled : unit -> bool

  val set_output : string option -> unit
  (** [set_output (Some path)] enables tracing and arms an at-exit flush
      to [path]; [set_output None] disables tracing (buffered events are
      kept until the next flush). *)

  type span
  (** An open span. When tracing is disabled this is a weightless dummy:
      {!with_span} still runs its body, and attribute updates no-op. *)

  val recording : span -> bool
  (** [true] when the span is live — guard attribute construction with
      this to keep disabled call sites allocation-free. *)

  val with_span : ?attrs:(string * attr) list -> string -> (span -> 'a) -> 'a
  (** [with_span name f] times [f] under a span named [name]. Spans nest
      with the call stack; each domain buffers its own spans, so spans
      opened inside {!Numeric.Parallel} workers land on that worker's
      Chrome-trace track. The span is closed (and recorded) even when [f]
      raises. When tracing is disabled, [f] runs with a dummy span and
      nothing is recorded or allocated. *)

  val add_attr : span -> string -> attr -> unit
  (** Attach/overwrite an attribute on an open span; no-op on a dummy. *)

  val instant : ?attrs:(string * attr) list -> string -> unit
  (** A zero-duration instant event (Chrome phase ["i"]). *)

  val flush : unit -> unit
  (** Write all events recorded so far to the {!set_output} path as a
      Chrome trace-event JSON array (atomically: temp file + rename).
      Events stay buffered, so later flushes rewrite a superset. No-op
      when no output path is set. *)
end
