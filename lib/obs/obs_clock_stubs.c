/* Monotonic clock for Obs span timing.

   CLOCK_MONOTONIC never jumps backwards with wall-clock adjustments, so
   span durations stay meaningful across NTP slews. The native variant is
   unboxed and noalloc: reading the clock on the tracing hot path costs a
   syscall-free vDSO call and nothing on the OCaml heap. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <stdint.h>
#include <time.h>

int64_t obs_monotonic_ns_unboxed(value unit)
{
  (void)unit;
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (int64_t)ts.tv_sec * 1000000000LL + (int64_t)ts.tv_nsec;
}

CAMLprim value obs_monotonic_ns(value unit)
{
  return caml_copy_int64(obs_monotonic_ns_unboxed(unit));
}
