exception Bad_request of string

let max_head_bytes = 64 * 1024

let max_body_bytes = 64 * 1024 * 1024

type request = {
  meth : string;
  path : string;
  headers : (string * string) list;
  body : string;
}

let header r name = List.assoc_opt (String.lowercase_ascii name) r.headers

let wants_close r =
  match header r "connection" with
  | Some v -> String.lowercase_ascii (String.trim v) = "close"
  | None -> false

(* ------------------------------------------------------------------ *)
(* Buffered reading                                                   *)

type conn = {
  fd : Unix.file_descr;
  mutable pending : string;  (** bytes read but not yet consumed *)
}

let conn fd = { fd; pending = "" }

let conn_fd c = c.fd

let chunk_size = 8192

(* false on EOF *)
let read_more c =
  let chunk = Bytes.create chunk_size in
  let n = Unix.read c.fd chunk 0 chunk_size in
  if n = 0 then false
  else begin
    c.pending <- c.pending ^ Bytes.sub_string chunk 0 n;
    true
  end

let find_substring hay needle from =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go (max 0 from)

(* Read until [pending] holds a complete header block; returns the head
   (without the final CRLFCRLF) and leaves the rest in [pending]. [None]
   on EOF before any byte. *)
let read_head c =
  let rec go scanned_upto =
    match find_substring c.pending "\r\n\r\n" (scanned_upto - 3) with
    | Some i ->
        let head = String.sub c.pending 0 i in
        c.pending <-
          String.sub c.pending (i + 4) (String.length c.pending - i - 4);
        Some head
    | None ->
        if String.length c.pending > max_head_bytes then
          raise (Bad_request "request head too large");
        let before = String.length c.pending in
        if read_more c then go before
        else if before = 0 then None
        else raise (Bad_request "connection closed mid-request")
  in
  go 0

let read_body c len =
  if len > max_body_bytes then raise (Bad_request "request body too large");
  let rec fill () =
    if String.length c.pending < len then
      if read_more c then fill ()
      else raise (Bad_request "connection closed mid-body")
  in
  fill ();
  let body = String.sub c.pending 0 len in
  c.pending <- String.sub c.pending len (String.length c.pending - len);
  body

let split_lines head = String.split_on_char '\n' head |> List.map String.trim

let parse_header_line line =
  match String.index_opt line ':' with
  | None -> raise (Bad_request (Printf.sprintf "malformed header %S" line))
  | Some i ->
      ( String.lowercase_ascii (String.trim (String.sub line 0 i)),
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; path; version ]
    when version = "HTTP/1.1" || version = "HTTP/1.0" ->
      (String.uppercase_ascii meth, path)
  | _ -> raise (Bad_request (Printf.sprintf "malformed request line %S" line))

let read_request c =
  match read_head c with
  | None -> None
  | Some head ->
      let lines = split_lines head in
      let meth, path =
        match lines with
        | first :: _ -> parse_request_line first
        | [] -> raise (Bad_request "empty request head")
      in
      let headers =
        List.filter_map
          (fun l -> if l = "" then None else Some (parse_header_line l))
          (List.tl lines)
      in
      if List.mem_assoc "transfer-encoding" headers then
        raise (Bad_request "chunked transfer encoding is not supported");
      let body =
        match List.assoc_opt "content-length" headers with
        | Some v -> (
            match int_of_string_opt (String.trim v) with
            | Some len when len >= 0 -> read_body c len
            | Some _ | None -> raise (Bad_request "invalid Content-Length"))
        | None ->
            if meth = "POST" || meth = "PUT" then
              raise (Bad_request "Content-Length required")
            else ""
      in
      Some { meth; path; headers; body }

(* ------------------------------------------------------------------ *)
(* Writing                                                            *)

let reason = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Payload Too Large"
  | 422 -> "Unprocessable Entity"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | c -> if c >= 200 && c < 300 then "OK" else "Error"

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

let write_response ?(content_type = "application/json") ?(keep_alive = true)
    ?(headers = []) fd ~status ~body =
  let extra =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers)
  in
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
       Connection: %s\r\n%s\r\n"
      status (reason status) content_type (String.length body)
      (if keep_alive then "keep-alive" else "close")
      extra
  in
  write_all fd (head ^ body)

(* ------------------------------------------------------------------ *)
(* Client                                                             *)

type client = { c : conn; host : string }

let connect ~host ~port =
  let addrs =
    Unix.getaddrinfo host (string_of_int port)
      [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM; Unix.AI_FAMILY Unix.PF_INET ]
  in
  let addr =
    match addrs with
    | { Unix.ai_addr; _ } :: _ -> ai_addr
    | [] ->
        Unix.ADDR_INET (Unix.inet_addr_of_string host, port)
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd addr
   with e ->
     Unix.close fd;
     raise e);
  { c = conn fd; host }

let close cl = try Unix.close cl.c.fd with Unix.Unix_error _ -> ()

let parse_status_line line =
  match String.split_on_char ' ' line with
  | version :: code :: _ when String.length version >= 5 -> (
      match int_of_string_opt code with
      | Some status -> status
      | None -> raise (Bad_request (Printf.sprintf "bad status line %S" line)))
  | _ -> raise (Bad_request (Printf.sprintf "bad status line %S" line))

let read_response c =
  match read_head c with
  | None -> raise End_of_file
  | Some head ->
      let lines = split_lines head in
      let status = parse_status_line (List.hd lines) in
      let headers =
        List.filter_map
          (fun l -> if l = "" then None else Some (parse_header_line l))
          (List.tl lines)
      in
      let body =
        match List.assoc_opt "content-length" headers with
        | Some v -> (
            match int_of_string_opt (String.trim v) with
            | Some len when len >= 0 -> read_body c len
            | Some _ | None -> raise (Bad_request "invalid Content-Length"))
        | None -> ""
      in
      (status, headers, body)

let call_full ?(close_after = false) ?(headers = []) cl ~meth ~path
    ?(body = "") () =
  let extra =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers)
  in
  let head =
    Printf.sprintf
      "%s %s HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\n\
       Content-Length: %d\r\nConnection: %s\r\n%s\r\n"
      meth path cl.host (String.length body)
      (if close_after then "close" else "keep-alive")
      extra
  in
  write_all cl.c.fd (head ^ body);
  read_response cl.c

let call_on ?close_after ?headers cl ~meth ~path ?body () =
  let status, _, body = call_full ?close_after ?headers cl ~meth ~path ?body () in
  (status, body)

let call ?headers cl ~meth ~path ?body () = call_on ?headers cl ~meth ~path ?body ()

let request ?headers ~host ~port ~meth ~path ?body () =
  let cl = connect ~host ~port in
  Fun.protect
    ~finally:(fun () -> close cl)
    (fun () -> call_on ~close_after:true ?headers cl ~meth ~path ?body ())
