(** A hand-rolled HTTP/1.1 subset over [Unix] file descriptors — the wire
    layer of the analysis daemon, in the spirit of [Xml_kit]: no external
    dependencies, just the fragment the protocol needs.

    Supported: request line + headers + [Content-Length] bodies,
    keep-alive and [Connection: close], status responses with JSON (or
    plain-text) bodies. Not supported (rejected with 4xx/5xx): chunked
    transfer encoding, upgrades, pipelining beyond strict
    request/response alternation. *)

exception Bad_request of string
(** An unparsable request (or one exceeding the size limits); servers
    answer 400 and close the connection. *)

type request = {
  meth : string;  (** uppercased, e.g. ["GET"], ["POST"] *)
  path : string;  (** raw request target, e.g. ["/analyze"] *)
  headers : (string * string) list;  (** names lowercased, values trimmed *)
  body : string;
}

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val wants_close : request -> bool
(** [Connection: close] requested (or an HTTP/1.0 client without
    [keep-alive]). *)

(** {2 Buffered connections} *)

type conn
(** A buffered reader over one socket; create one per accepted
    connection and reuse it across keep-alive requests. *)

val conn : Unix.file_descr -> conn

val conn_fd : conn -> Unix.file_descr

val read_request : conn -> request option
(** Read one full request. [None] on clean EOF before the first byte of
    a request; raises {!Bad_request} on malformed or oversized input
    (head > 64 KiB, body > 64 MiB, missing [Content-Length] on a body
    method, chunked encoding). *)

val write_response :
  ?content_type:string ->
  ?keep_alive:bool ->
  ?headers:(string * string) list ->
  Unix.file_descr ->
  status:int ->
  body:string ->
  unit
(** Write a complete response ([content_type] defaults to
    ["application/json"], [keep_alive] to [true]; [headers] are extra
    response headers, e.g. the echoed [traceparent]). *)

val reason : int -> string
(** Standard reason phrase for a status code. *)

(** {2 A small client}

    Enough for the load generator and the tests: persistent keep-alive
    connections speaking strict request/response. *)

type client

val connect : host:string -> port:int -> client
(** TCP connect (first resolved address). Raises [Unix.Unix_error]. *)

val close : client -> unit

val call :
  ?headers:(string * string) list ->
  client ->
  meth:string ->
  path:string ->
  ?body:string ->
  unit ->
  int * string
(** One round trip on the persistent connection; returns
    [(status, body)]. [headers] are extra request headers (e.g.
    [traceparent]). Raises {!Bad_request} on an unparsable response and
    [Unix.Unix_error] / [End_of_file] on transport failures. *)

val call_full :
  ?close_after:bool ->
  ?headers:(string * string) list ->
  client ->
  meth:string ->
  path:string ->
  ?body:string ->
  unit ->
  int * (string * string) list * string
(** Like {!call} but also returns the response headers (names
    lowercased), for callers that need e.g. the echoed [traceparent]. *)

val request :
  ?headers:(string * string) list ->
  host:string ->
  port:int ->
  meth:string ->
  path:string ->
  ?body:string ->
  unit ->
  int * string
(** One-shot: {!connect}, {!call} with [Connection: close], {!close}. *)
