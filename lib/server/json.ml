type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Parsing: plain recursive descent over a string                     *)

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let k = String.length word in
    if !pos + k <= n && String.sub s !pos k = word then begin
      pos := !pos + k;
      v
    end
    else fail "invalid literal"
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string_opt ("0x" ^ String.sub s !pos 4) in
    match v with
    | Some v ->
        pos := !pos + 4;
        v
    | None -> fail "invalid \\u escape"
  in
  let add_utf8 buf code =
    (* encode a scalar value; unpaired surrogates collapse to U+FFFD *)
    let code = if code >= 0xD800 && code <= 0xDFFF then 0xFFFD else code in
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' ->
          advance ();
          Buffer.contents buf
      | '\\' ->
          advance ();
          (if !pos >= n then fail "truncated escape";
           let c = s.[!pos] in
           advance ();
           match c with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'u' -> add_utf8 buf (hex4 ())
           | _ -> fail "invalid escape");
          go ()
      | c when Char.code c < 0x20 -> fail "control character in string"
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> Num x
    | None -> fail "invalid number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing content";
  v

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Num x ->
        Buffer.add_string buf
          (if Float.is_finite x then Printf.sprintf "%.17g" x else "null")
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            go item)
          items;
        Buffer.add_char buf ']'
    | Obj members ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\":";
            go item)
          members;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)

let member key = function Obj members -> List.assoc_opt key members | _ -> None

let string_field key json =
  match member key json with Some (Str s) -> Some s | _ -> None

let list_field key json =
  match member key json with Some (List l) -> Some l | _ -> None

let bool_field ?(default = false) key json =
  match member key json with
  | Some (Bool b) -> Some b
  | None -> Some default
  | Some _ -> None

let num x = Num x
