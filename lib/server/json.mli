(** A minimal JSON value type, parser and printer.

    The dependency set has no JSON library; the server's wire format (and
    the load generator's reports) need one. Covers all of RFC 8259 except
    [\uXXXX] surrogate pairs (non-BMP escapes decode to U+FFFD); numbers
    are IEEE doubles. NaN and infinities print as [null], matching the
    convention of [Obs]'s emitters. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!parse} with a message carrying the byte offset. *)

val parse : string -> t
(** Parse one JSON document; trailing non-whitespace is an error. *)

val to_string : t -> string
(** Compact single-line serialization. Object member order is preserved. *)

val member : string -> t -> t option
(** [member key json] is the value of [key] when [json] is an [Obj]
    containing it. *)

val string_field : string -> t -> string option

val list_field : string -> t -> t list option

val bool_field : ?default:bool -> string -> t -> bool option
(** [None] when present but not a boolean; [Some default] when absent. *)

val num : float -> t
(** [Num], with non-finite values preserved (they serialize as [null]). *)
