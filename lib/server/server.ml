module Json = Json
module Http = Http
module Ast = Csl.Ast
module Parallel = Numeric.Parallel

(* ------------------------------------------------------------------ *)
(* Configuration                                                      *)

type config = {
  host : string;
  port : int;
  domains : int;
  batch_window_ms : int;
  max_sessions : int;
  lump : bool;
}

let default_config () =
  let geti name d = Option.value (Parallel.getenv_positive_int name) ~default:d in
  {
    host = Option.value (Sys.getenv_opt "SERVER_HOST") ~default:"127.0.0.1";
    port = geti "SERVER_PORT" 8641;
    domains = geti "SERVER_DOMAINS" (min 4 (Parallel.default_domains ()));
    batch_window_ms = geti "SERVER_BATCH_WINDOW_MS" 5;
    max_sessions = geti "SERVER_MAX_SESSIONS" 256;
    lump =
      (match Sys.getenv_opt "LUMP" with
      | Some ("1" | "true" | "yes") -> true
      | Some _ | None -> false);
  }

(* ------------------------------------------------------------------ *)
(* Counters: always-on atomics for /stats, mirrored into the Obs
   registry (the mirror is flag-gated inside Obs)                     *)

type counter = { v : int Atomic.t; m : Obs.Metrics.counter }

let make_counter name = { v = Atomic.make 0; m = Obs.Metrics.counter name }

let bump ?(n = 1) c =
  ignore (Atomic.fetch_and_add c.v n : int);
  Obs.Metrics.add c.m n

let cval c = Atomic.get c.v

type counters = {
  requests : counter;  (** POST /analyze admitted past validation *)
  queries : counter;
  rejected : counter;  (** 4xx answers *)
  query_errors : counter;  (** per-query evaluation failures *)
  session_hits : counter;
  session_misses : counter;  (** session builds *)
  session_evictions : counter;
  batch_windows : counter;  (** scheduler ticks that dispatched work *)
  coalesced : counter;  (** same-model jobs beyond the first per window *)
  batch_groups : counter;  (** shared curve/batch sweeps executed *)
  batched_queries : counter;  (** queries answered by a shared sweep *)
}

let make_counters () =
  {
    requests = make_counter "server.requests";
    queries = make_counter "server.queries";
    rejected = make_counter "server.rejected";
    query_errors = make_counter "server.query_errors";
    session_hits = make_counter "server.session_hits";
    session_misses = make_counter "server.session_misses";
    session_evictions = make_counter "server.session_evictions";
    batch_windows = make_counter "server.batch_windows";
    coalesced = make_counter "server.coalesced";
    batch_groups = make_counter "server.batch_groups";
    batched_queries = make_counter "server.batched_queries";
  }

(* ------------------------------------------------------------------ *)
(* Per-endpoint / per-query-kind telemetry                            *)

(* registration is idempotent and cheap, so these resolve per call *)
let h_endpoint_latency endpoint =
  Obs.Metrics.histogram
    ~buckets:Obs.Metrics.latency_ms_buckets
    ("server.latency_ms." ^ endpoint)

let h_query_latency kind =
  Obs.Metrics.histogram
    ~buckets:Obs.Metrics.latency_ms_buckets
    ("server.query_ms." ^ kind)

let c_query_kind kind = Obs.Metrics.counter ("server.queries." ^ kind)

let query_kind (ast : Ast.state_formula) =
  match ast with
  | Ast.P (_, Ast.Next _) -> "next"
  | Ast.P (_, (Ast.Until _ | Ast.Eventually _ | Ast.Globally _)) -> "until"
  | Ast.S _ -> "steady"
  | Ast.R (_, _, Ast.Instantaneous _) -> "reward_inst"
  | Ast.R (_, _, Ast.Cumulative _) -> "reward_cumul"
  | Ast.R (_, _, Ast.Steady) -> "reward_steady"
  | Ast.True | Ast.False | Ast.Label _ | Ast.Atomic _ | Ast.Not _ | Ast.And _
  | Ast.Or _ | Ast.Implies _ ->
      "boolean"

let endpoint_label ~meth ~path =
  match (meth, path) with
  | "GET", "/health" -> "health"
  | "GET", "/stats" -> "stats"
  | "GET", "/metrics" -> "metrics"
  | "POST", "/shutdown" -> "shutdown"
  | "POST", "/analyze" -> "analyze"
  | _ -> "other"

(* What the access log and the root span want to know about a request;
   filled in as handling progresses. *)
type req_meta = {
  mutable m_status : int;
  mutable m_hash : string option;
  mutable m_session : string option;
  mutable m_coalesced : int;
  mutable m_queries : int;
  mutable m_kinds : string list;
}

let fresh_meta () =
  {
    m_status = 0;
    m_hash = None;
    m_session = None;
    m_coalesced = 0;
    m_queries = 0;
    m_kinds = [];
  }

(* ------------------------------------------------------------------ *)
(* Sessions                                                           *)

type session = {
  s_src : string;
  s_lump : bool;
  measures : Core.Measures.t;
  mutable last_used : int;  (** logical clock for LRU eviction *)
}

type job = {
  j_src : string;
  j_lump : bool;
  j_hash : int64;
  j_queries : (string * Ast.state_formula) list;
  j_ctx : Obs.Trace.context option;
      (** the submitting request's trace context; the scheduler re-installs
          it around the group evaluation so coalesced sweeps join the lead
          request's trace *)
  jm : Mutex.t;
  jc : Condition.t;
  mutable j_result : (int * Json.t) option;
  mutable j_session : string;  (** "hit" / "miss" / "coalesced"; set before
                                   [finish_job], read after [await_job] *)
  mutable j_coalesced : int;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  pool : Parallel.Pool.t;
  queue : job Queue.t;
  qm : Mutex.t;
  qc : Condition.t;
  mutable running : bool;  (** guarded by [qm] *)
  cache : (int64, session list) Hashtbl.t;
  mutable cache_count : int;
  mutable clock : int;
  cm : Mutex.t;
  c : counters;
  access_log : (out_channel * bool) option;
      (** [(channel, close_at_stop)], from [OBS_ACCESS_LOG] *)
  al_mutex : Mutex.t;
  mutable accept_thread : Thread.t option;
  mutable sched_thread : Thread.t option;
  mutable house_thread : Thread.t option;
}

let port t = t.bound_port

let model_hash ~src ~lump =
  Ctmc.Analysis.fnv1a64 (if lump then src ^ "\x00lump" else src)

let build_session ~src ~lump =
  let xml, locator = Xml_kit.parse_string_located src in
  let model, _embedded_measures = Core.Xml_io.of_xml ~pos:locator xml in
  let measures = Core.Measures.analyze ~lump model in
  { s_src = src; s_lump = lump; measures; last_used = 0 }

let touch srv s =
  srv.clock <- srv.clock + 1;
  s.last_used <- srv.clock

(* LRU eviction under [cm]: the cache is capacity-bounded, a portfolio
   larger than [max_sessions] keeps its hottest models resident. *)
let evict_over_capacity srv =
  while srv.cache_count > srv.cfg.max_sessions do
    let victim =
      Hashtbl.fold
        (fun key sessions acc ->
          List.fold_left
            (fun acc s ->
              match acc with
              | Some (_, best) when best.last_used <= s.last_used -> acc
              | _ -> Some (key, s))
            acc sessions)
        srv.cache None
    in
    match victim with
    | None -> srv.cache_count <- 0
    | Some (key, s) ->
        let rest =
          List.filter (fun s' -> s' != s) (Hashtbl.find srv.cache key)
        in
        if rest = [] then Hashtbl.remove srv.cache key
        else Hashtbl.replace srv.cache key rest;
        srv.cache_count <- srv.cache_count - 1;
        bump srv.c.session_evictions
  done

(* Returns [(session, was_cached)]. Building happens outside the cache
   lock: the scheduler processes windows sequentially and groups within
   a window have distinct hashes, so no two builders race on one key. *)
let get_session srv ~src ~lump =
  let h = model_hash ~src ~lump in
  let lookup () =
    Mutex.protect srv.cm (fun () ->
        match Hashtbl.find_opt srv.cache h with
        | None -> None
        | Some sessions -> (
            match
              List.find_opt
                (fun s -> s.s_lump = lump && String.equal s.s_src src)
                sessions
            with
            | Some s ->
                touch srv s;
                Some s
            | None -> None))
  in
  match lookup () with
  | Some s -> (s, true)
  | None ->
      let s = build_session ~src ~lump in
      Mutex.protect srv.cm (fun () ->
          let bucket =
            match Hashtbl.find_opt srv.cache h with Some l -> l | None -> []
          in
          Hashtbl.replace srv.cache h (s :: bucket);
          srv.cache_count <- srv.cache_count + 1;
          touch srv s;
          evict_over_capacity srv);
      (s, false)

(* ------------------------------------------------------------------ *)
(* Query evaluation with same-model batching                          *)

(* a query slot: where one query's answer goes (job-order preserving) *)
type slot = {
  answers : Json.t option array;
  idx : int;
  text : string;
  ast : Ast.state_formula;
}

let ok_value text v = Json.Obj [ ("query", Str text); ("value", Json.num v) ]

let ok_bool text b = Json.Obj [ ("query", Str text); ("satisfied", Bool b) ]

let err_result srv text msg =
  bump srv.c.query_errors;
  Json.Obj [ ("query", Str text); ("error", Str msg) ]

let error_message = function
  | Csl.Checker.Unsupported msg -> msg
  | Invalid_argument msg | Failure msg -> msg
  | e -> Printexc.to_string e

(* A state formula evaluable per-state without touching P/S/R — exactly
   the operand shape [Checker.satisfaction] resolves cheaply and the
   batch curves can absorb. *)
let rec pure_formula = function
  | Ast.True | Ast.False | Ast.Label _ | Ast.Atomic _ -> true
  | Ast.Not f -> pure_formula f
  | Ast.And (a, b) | Ast.Or (a, b) | Ast.Implies (a, b) ->
      pure_formula a && pure_formula b
  | Ast.P _ | Ast.S _ | Ast.R _ -> false

type plan_key =
  | K_until of string  (** [to_string phi ^ " U " ^ to_string psi] *)
  | K_reward of string option  (** reward-structure name *)

type reward_kind = Inst | Cumul

(* What a slot contributes to its batch group. *)
type contribution =
  | C_until of Ast.state_formula * Ast.state_formula * float
  | C_reward of reward_kind * float

let classify ast =
  match ast with
  | Ast.P (Ast.Query, Ast.Until (phi, Ast.Upto t, psi))
    when pure_formula phi && pure_formula psi ->
      Some (K_until (Ast.to_string phi ^ " U " ^ Ast.to_string psi),
            C_until (phi, psi, t))
  | Ast.P (Ast.Query, Ast.Eventually (Ast.Upto t, psi)) when pure_formula psi
    ->
      Some (K_until ("true U " ^ Ast.to_string psi),
            C_until (Ast.True, psi, t))
  | Ast.R (name, Ast.Query, Ast.Instantaneous t) ->
      Some (K_reward name, C_reward (Inst, t))
  | Ast.R (name, Ast.Query, Ast.Cumulative t) ->
      Some (K_reward name, C_reward (Cumul, t))
  | _ -> None

let pred_of csl f =
  let sat = Csl.Checker.satisfaction csl f in
  fun s -> sat.(s)

(* One group of batchable slots -> one uniformization sweep. *)
let eval_group srv session key (slots : (slot * contribution) list) =
  let m = session.measures in
  let analysis = Core.Measures.analysis m in
  let csl = Core.Measures.to_csl_model m in
  let chain = (Core.Measures.built m).Core.Semantics.chain in
  let lump = session.s_lump in
  let fill_errors msg =
    List.iter
      (fun (slot, _) -> slot.answers.(slot.idx) <- Some (err_result srv slot.text msg))
      slots
  in
  match key with
  | K_until _ -> (
      match
        let phi, psi =
          match slots with
          | (_, C_until (phi, psi, _)) :: _ -> (phi, psi)
          | _ -> assert false
        in
        let bounds =
          List.map
            (function _, C_until (_, _, t) -> t | _ -> assert false)
            slots
        in
        let phi_p = pred_of csl phi and psi_p = pred_of csl psi in
        Ctmc.Reachability.bounded_until_curve ~lump ~analysis chain ~phi:phi_p
          ~psi:psi_p ~bounds
      with
      | points ->
          List.iter2
            (fun (slot, _) (_, v) ->
              slot.answers.(slot.idx) <- Some (ok_value slot.text v))
            slots points
      | exception e -> fill_errors (error_message e))
  | K_reward name -> (
      match (csl.Csl.Checker.reward name : Numeric.Vec.t option) with
      | None ->
          fill_errors
            (Printf.sprintf "unknown reward structure %s"
               (match name with Some n -> "\"" ^ n ^ "\"" | None -> "(default)"))
      | Some reward -> (
          let inst, cumul =
            List.partition
              (function _, C_reward (Inst, _) -> true | _ -> false)
              slots
          in
          let time_of = function
            | _, C_reward (_, t) -> t
            | _ -> assert false
          in
          let inst_ts = List.map time_of inst
          and cumul_ts = List.map time_of cumul in
          match
            (* both operators on one reward ride a single blocked sweep;
               a single-kind group still shares one pass over its times *)
            if inst <> [] && cumul <> [] then
              let ic, cc =
                Ctmc.Rewards.both_curves ~lump ~analysis chain ~reward
                  ~times:(inst_ts @ cumul_ts)
              in
              let take n l = List.filteri (fun i _ -> i < n) l in
              let drop n l = List.filteri (fun i _ -> i >= n) l in
              (take (List.length inst) ic, drop (List.length inst) cc)
            else if inst <> [] then
              ( Ctmc.Rewards.instantaneous_curve ~lump ~analysis chain ~reward
                  ~times:inst_ts,
                [] )
            else
              ( [],
                Ctmc.Rewards.accumulated_curve ~lump ~analysis chain ~reward
                  ~times:cumul_ts )
          with
          | inst_points, cumul_points ->
              List.iter2
                (fun (slot, _) (_, v) ->
                  slot.answers.(slot.idx) <- Some (ok_value slot.text v))
                inst inst_points;
              List.iter2
                (fun (slot, _) (_, v) ->
                  slot.answers.(slot.idx) <- Some (ok_value slot.text v))
                cumul cumul_points
          | exception e -> fill_errors (error_message e)))

let eval_single srv session slot =
  let csl = Core.Measures.to_csl_model session.measures in
  let answer =
    match Csl.Checker.check csl slot.ast with
    | Csl.Checker.Value v -> ok_value slot.text v
    | Csl.Checker.Satisfied b -> ok_bool slot.text b
    | exception e -> err_result srv slot.text (error_message e)
  in
  slot.answers.(slot.idx) <- Some answer

let ns_to_ms ns = Int64.to_float ns /. 1e6

(* Evaluate every query of every job in a same-model group: batchable
   queries are grouped by plan key and each group costs one sweep. *)
let eval_jobs srv session jobs_with_answers =
  let slots =
    List.concat_map
      (fun (job, answers) ->
        List.mapi
          (fun idx (text, ast) -> { answers; idx; text; ast })
          job.j_queries)
      jobs_with_answers
  in
  let groups : (plan_key, (slot * contribution) list) Hashtbl.t =
    Hashtbl.create 8
  in
  let group_order = ref [] in
  let singles = ref [] in
  List.iter
    (fun slot ->
      match classify slot.ast with
      | Some (key, contrib) ->
          (match Hashtbl.find_opt groups key with
          | Some existing -> Hashtbl.replace groups key ((slot, contrib) :: existing)
          | None ->
              Hashtbl.add groups key [ (slot, contrib) ];
              group_order := key :: !group_order)
      | None -> singles := slot :: !singles)
    slots;
  List.iter
    (fun key ->
      let group = List.rev (Hashtbl.find groups key) in
      bump srv.c.batch_groups;
      bump ~n:(List.length group) srv.c.batched_queries;
      let kind = match key with K_until _ -> "until" | K_reward _ -> "reward" in
      let t0 = Obs.monotonic_ns () in
      eval_group srv session key group;
      Obs.Metrics.observe (h_query_latency kind)
        (ns_to_ms (Int64.sub (Obs.monotonic_ns ()) t0)))
    (List.rev !group_order);
  List.iter
    (fun slot ->
      let t0 = Obs.monotonic_ns () in
      eval_single srv session slot;
      Obs.Metrics.observe
        (h_query_latency (query_kind slot.ast))
        (ns_to_ms (Int64.sub (Obs.monotonic_ns ()) t0)))
    (List.rev !singles)

(* ------------------------------------------------------------------ *)
(* Jobs and the batching scheduler                                    *)

let finish_job job status body =
  Mutex.protect job.jm (fun () ->
      job.j_result <- Some (status, body);
      Condition.signal job.jc)

let await_job job =
  Mutex.protect job.jm (fun () ->
      while Option.is_none job.j_result do
        Condition.wait job.jc job.jm
      done;
      Option.get job.j_result)

let hash_hex h = Printf.sprintf "%016Lx" h

(* The whole group evaluation runs under the lead job's trace context, so
   the shared sweep spans (which may execute on a pool domain) join the
   lead request's trace; the other coalesced requests are listed on the
   group span. *)
let process_group srv jobs =
  let j0 = List.hd jobs in
  let coalesced = List.length jobs in
  List.iter (fun j -> j.j_coalesced <- coalesced) jobs;
  Obs.Trace.with_context j0.j_ctx @@ fun () ->
  Obs.Trace.with_span "server.process_group"
    ~attrs:
      [
        ("model_hash", Obs.Str (hash_hex j0.j_hash));
        ("coalesced", Obs.Int coalesced);
      ]
  @@ fun pg_span ->
  match
    Obs.Trace.with_span "server.session" @@ fun s_span ->
    let (_, was_cached) as r = get_session srv ~src:j0.j_src ~lump:j0.j_lump in
    if Obs.Trace.recording s_span then
      Obs.Trace.add_attr s_span "cached" (Obs.Bool was_cached);
    r
  with
  | exception e ->
      let msg =
        match e with
        | Core.Xml_io.Schema_error m -> m
        | Xml_kit.Parse_error { line; column; message } ->
            Printf.sprintf "%d:%d: %s" line column message
        | Invalid_argument m | Failure m -> m
        | e -> Printexc.to_string e
      in
      bump ~n:coalesced srv.c.rejected;
      List.iter
        (fun job ->
          job.j_session <- "rejected";
          finish_job job 422
            (Json.Obj
               [
                 ("error", Str ("model rejected: " ^ msg));
                 ("model_hash", Str (hash_hex job.j_hash));
               ]))
        jobs
  | session, was_cached ->
      if was_cached then bump ~n:coalesced srv.c.session_hits
      else begin
        bump srv.c.session_misses;
        if coalesced > 1 then bump ~n:(coalesced - 1) srv.c.session_hits
      end;
      let jobs_with_answers =
        List.map (fun j -> (j, Array.make (List.length j.j_queries) None)) jobs
      in
      (try eval_jobs srv session jobs_with_answers
       with e ->
         (* defensive: eval paths catch per-group, but never drop a job *)
         let msg = error_message e in
         List.iter
           (fun (job, answers) ->
             Array.iteri
               (fun i a ->
                 if Option.is_none a then
                   answers.(i) <-
                     Some
                       (err_result srv
                          (fst (List.nth job.j_queries i))
                          msg))
               answers)
           jobs_with_answers);
      let states =
        Ctmc.Chain.states
          (Core.Measures.built session.measures).Core.Semantics.chain
      in
      if Obs.Trace.recording pg_span then begin
        Obs.Trace.add_attr pg_span "session"
          (Obs.Str (if was_cached then "hit" else "miss"));
        Obs.Trace.add_attr pg_span "states" (Obs.Int states);
        (* accuracy attrs: worst Fox–Glynn truncation error and last
           solver residual observed by the work this group just ran *)
        Obs.Trace.add_attr pg_span "fg_mass_deficit"
          (Obs.Float
             (Obs.Metrics.gauge_value
                (Obs.Metrics.gauge "analysis.fg_mass_deficit")));
        Obs.Trace.add_attr pg_span "solver_residual"
          (Obs.Float
             (Obs.Metrics.gauge_value (Obs.Metrics.gauge "solver.last_residual")))
      end;
      List.iteri
        (fun i (job, answers) ->
          let session_tag =
            if was_cached then "hit" else if i = 0 then "miss" else "coalesced"
          in
          job.j_session <- session_tag;
          let results =
            Array.to_list
              (Array.map
                 (function
                   | Some a -> a
                   | None -> Json.Obj [ ("error", Json.Str "internal: unanswered query") ])
                 answers)
          in
          finish_job job 200
            (Json.Obj
               [
                 ("model_hash", Str (hash_hex job.j_hash));
                 ("session", Str session_tag);
                 ("states", Json.num (float_of_int states));
                 ("coalesced", Json.num (float_of_int coalesced));
                 ("results", List results);
               ]))
        jobs_with_answers

(* group by model content (hash + source verify + lump), preserving
   arrival order of groups and of jobs within a group *)
let group_jobs jobs =
  let tbl : (string * bool, job list ref) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun j ->
      let k = (j.j_src, j.j_lump) in
      match Hashtbl.find_opt tbl k with
      | Some l -> l := j :: !l
      | None ->
          let l = ref [ j ] in
          Hashtbl.add tbl k l;
          order := k :: !order)
    jobs;
  List.rev_map (fun k -> List.rev !(Hashtbl.find tbl k)) !order

let scheduler srv =
  let rec loop () =
    let more =
      Mutex.protect srv.qm (fun () ->
          while Queue.is_empty srv.queue && srv.running do
            Condition.wait srv.qc srv.qm
          done;
          not (Queue.is_empty srv.queue) || srv.running)
    in
    if more then begin
      (* the admission window: let same-model requests pile up so they
         coalesce into one sweep *)
      if srv.cfg.batch_window_ms > 0 then
        Thread.delay (float_of_int srv.cfg.batch_window_ms /. 1000.);
      let batch =
        Mutex.protect srv.qm (fun () ->
            let l = List.of_seq (Queue.to_seq srv.queue) in
            Queue.clear srv.queue;
            l)
      in
      if batch <> [] then begin
        bump srv.c.batch_windows;
        let groups = group_jobs batch in
        bump ~n:(List.length batch - List.length groups) srv.c.coalesced;
        match groups with
        | [ g ] -> process_group srv g
        | gs ->
            (* distinct models fan out across the fixed domain pool *)
            ignore (Parallel.Pool.map srv.pool (process_group srv) gs : unit list)
      end;
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Request handling                                                   *)

let json_response ?(keep_alive = true) fd ~status json =
  Http.write_response ~keep_alive fd ~status ~body:(Json.to_string json)

let diagnostics_json diags =
  Json.List
    (List.map
       (fun (d : Lint.Diagnostic.t) ->
         Json.Obj
           (List.concat
              [
                [
                  ("code", Json.Str d.code);
                  ( "severity",
                    Json.Str (Lint.Diagnostic.severity_to_string d.severity) );
                  ("subject", Json.Str d.subject);
                  ("message", Json.Str d.message);
                ];
                (match d.hint with
                | Some h -> [ ("hint", Json.Str h) ]
                | None -> []);
                (match (d.line, d.column) with
                | Some l, Some c ->
                    [ ("line", Json.num (float_of_int l));
                      ("column", Json.num (float_of_int c)) ]
                | _ -> []);
              ]))
       diags)

let stats_json srv =
  let a name =
    ( name,
      Json.num
        (float_of_int
           (Obs.Metrics.counter_value (Obs.Metrics.counter ("analysis." ^ name))))
    )
  in
  let sc name c = (name, Json.num (float_of_int (cval c))) in
  let hits = cval srv.c.session_hits and misses = cval srv.c.session_misses in
  let live = Mutex.protect srv.cm (fun () -> srv.cache_count) in
  Json.Obj
    [
      ( "server",
        Json.Obj
          [
            sc "requests" srv.c.requests;
            sc "queries" srv.c.queries;
            sc "rejected" srv.c.rejected;
            sc "query_errors" srv.c.query_errors;
            sc "batch_windows" srv.c.batch_windows;
            sc "coalesced" srv.c.coalesced;
            sc "batch_groups" srv.c.batch_groups;
            sc "batched_queries" srv.c.batched_queries;
          ] );
      ( "sessions",
        Json.Obj
          [
            ("live", Json.num (float_of_int live));
            ("capacity", Json.num (float_of_int srv.cfg.max_sessions));
            sc "hits" srv.c.session_hits;
            sc "misses" srv.c.session_misses;
            sc "evictions" srv.c.session_evictions;
            ( "hit_rate",
              Json.num
                (if hits + misses = 0 then 0.
                 else float_of_int hits /. float_of_int (hits + misses)) );
          ] );
      ( "analysis",
        Json.Obj
          [
            a "mixture_passes";
            a "mixture_steps";
            a "batch_passes";
            a "batch_columns";
            a "weight_computes";
            a "weight_hits";
            a "uniformized_builds";
            a "uniformized_hits";
            a "steady_solves";
            a "steady_hits";
            a "absorbed_builds";
            a "absorbed_hits";
            a "lump_builds";
            a "lump_hits";
          ] );
    ]

(* Admission: JSON decode, lint pre-flight, query parse — all before any
   state-space work; failures answer 4xx with positioned diagnostics.
   Runs inside the request's root span, so the admission/lint/parse spans
   and the enqueued job all carry the request's trace context. *)
let handle_analyze srv req ~(respond_json : status:int -> Json.t -> unit)
    ~(meta : req_meta) =
  let reject status json =
    bump srv.c.rejected;
    respond_json ~status json
  in
  match
    Obs.Trace.with_span "server.decode" @@ fun _ -> Json.parse req.Http.body
  with
  | exception Json.Parse_error msg ->
      reject 400 (Json.Obj [ ("error", Str ("invalid JSON: " ^ msg)) ])
  | body -> (
      let model = Json.string_field "model" body in
      let queries =
        match Json.list_field "queries" body with
        | Some items ->
            List.fold_right
              (fun item acc ->
                match (item, acc) with
                | Json.Str q, Some qs -> Some (q :: qs)
                | _ -> None)
              items (Some [])
        | None -> (
            match Json.member "queries" body with
            | None -> Some []  (* omitted: just warm the session *)
            | Some _ -> None)
      in
      let lump = Json.bool_field ~default:srv.cfg.lump "lump" body in
      match (model, queries, lump) with
      | None, _, _ ->
          reject 400
            (Json.Obj [ ("error", Str "missing string field \"model\"") ])
      | _, None, _ ->
          reject 400
            (Json.Obj
               [ ("error", Str "\"queries\" must be an array of strings") ])
      | _, _, None ->
          reject 400 (Json.Obj [ ("error", Str "\"lump\" must be a boolean") ])
      | Some src, Some queries, Some lump -> (
          meta.m_hash <- Some (hash_hex (model_hash ~src ~lump));
          let diags =
            Obs.Trace.with_span "server.lint" @@ fun l_span ->
            let diags = Lint.lint_string src in
            if Obs.Trace.recording l_span then
              Obs.Trace.add_attr l_span "diagnostics"
                (Obs.Int (List.length diags));
            diags
          in
          if Lint.has_errors diags then
            reject 422
              (Json.Obj
                 [
                   ("error", Str "lint rejected the model");
                   ("diagnostics", diagnostics_json diags);
                 ])
          else
            let parsed =
              Obs.Trace.with_span "server.parse_queries" @@ fun _ ->
              List.mapi
                (fun i q ->
                  match Csl.Parser.parse q with
                  | ast -> Ok (q, ast)
                  | exception Csl.Parser.Syntax_error
                      { line; column; message; _ } ->
                      Error (i, q, line, column, message))
                queries
            in
            match
              List.find_opt (function Error _ -> true | Ok _ -> false) parsed
            with
            | Some (Error (i, q, line, column, message)) ->
                reject 400
                  (Json.Obj
                     [
                       ("error", Str "query syntax error");
                       ("query_index", Json.num (float_of_int i));
                       ("query", Str q);
                       ("line", Json.num (float_of_int line));
                       ("column", Json.num (float_of_int column));
                       ("message", Str message);
                     ])
            | _ -> (
                let j_queries =
                  List.map (function Ok qa -> qa | Error _ -> assert false) parsed
                in
                let kinds = List.map (fun (_, ast) -> query_kind ast) j_queries in
                List.iter (fun k -> Obs.Metrics.incr (c_query_kind k)) kinds;
                meta.m_queries <- List.length j_queries;
                meta.m_kinds <- List.sort_uniq compare kinds;
                let job =
                  {
                    j_src = src;
                    j_lump = lump;
                    j_hash = model_hash ~src ~lump;
                    j_queries;
                    j_ctx = Obs.Trace.current_context ();
                    jm = Mutex.create ();
                    jc = Condition.create ();
                    j_result = None;
                    j_session = "";
                    j_coalesced = 0;
                  }
                in
                let admitted =
                  Mutex.protect srv.qm (fun () ->
                      if srv.running then begin
                        Queue.add job srv.queue;
                        Condition.signal srv.qc;
                        true
                      end
                      else false)
                in
                if not admitted then
                  respond_json ~status:503
                    (Json.Obj [ ("error", Str "server is shutting down") ])
                else begin
                  bump srv.c.requests;
                  bump ~n:(List.length j_queries) srv.c.queries;
                  let status, body = await_job job in
                  if job.j_session <> "" then meta.m_session <- Some job.j_session;
                  meta.m_coalesced <- job.j_coalesced;
                  respond_json ~status body
                end)))

let rec initiate_stop srv =
  let was_running =
    Mutex.protect srv.qm (fun () ->
        if srv.running then begin
          srv.running <- false;
          Condition.broadcast srv.qc;
          true
        end
        else false)
  in
  if was_running then
    (* wake the accept loop with a throw-away connection; it re-checks
       [running] after every accept and exits *)
    try
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.connect fd
           (Unix.ADDR_INET (Unix.inet_addr_loopback, srv.bound_port))
       with Unix.Unix_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ()
    with Unix.Unix_error _ -> ()

and contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* One-line structured JSON access log, behind OBS_ACCESS_LOG. *)
and write_access_log srv ~(req : Http.request) ~(meta : req_meta) ~trace_id
    ~latency_ms =
  match srv.access_log with
  | None -> ()
  | Some (oc, _) ->
      let line =
        Json.to_string
          (Json.Obj
             (List.concat
                [
                  [
                    ("ts", Json.num (Unix.gettimeofday ()));
                    ("method", Json.Str req.Http.meth);
                    ("path", Json.Str req.Http.path);
                    ("status", Json.num (float_of_int meta.m_status));
                    ("latency_ms", Json.num latency_ms);
                    ("trace_id", Json.Str trace_id);
                  ];
                  (match meta.m_hash with
                  | Some h -> [ ("model_hash", Json.Str h) ]
                  | None -> []);
                  (match meta.m_session with
                  | Some s -> [ ("session", Json.Str s) ]
                  | None -> []);
                  (if meta.m_coalesced > 0 then
                     [ ("coalesced", Json.num (float_of_int meta.m_coalesced)) ]
                   else []);
                  (if meta.m_queries > 0 then
                     [
                       ("queries", Json.num (float_of_int meta.m_queries));
                       ( "query_kinds",
                         Json.List (List.map (fun k -> Json.Str k) meta.m_kinds)
                       );
                     ]
                   else []);
                ]))
      in
      Mutex.protect srv.al_mutex (fun () ->
          try
            output_string oc (line ^ "\n");
            flush oc
          with Sys_error _ -> ())

and handle_request srv fd req =
  let keep_alive = not (Http.wants_close req) in
  let t_start = Obs.monotonic_ns () in
  let path_only =
    match String.index_opt req.Http.path '?' with
    | Some i -> String.sub req.Http.path 0 i
    | None -> req.Http.path
  in
  let endpoint = endpoint_label ~meth:req.Http.meth ~path:path_only in
  (* accept the client's traceparent (malformed values are ignored per
     the W3C spec), root this request as a child of it, and echo the
     request's own identity back in the response header *)
  let client_ctx =
    Option.bind (Http.header req "traceparent") Obs.Trace.parse_traceparent
  in
  let ctx =
    match client_ctx with
    | Some c -> Obs.Trace.child_context c
    | None -> Obs.Trace.new_context ()
  in
  let tp = ("traceparent", Obs.Trace.format_traceparent ctx) in
  let meta = fresh_meta () in
  let respond ?(keep_alive = keep_alive) ?content_type ~status body =
    meta.m_status <- status;
    Http.write_response ?content_type ~keep_alive ~headers:[ tp ] fd ~status
      ~body
  in
  let respond_json ?keep_alive ~status json =
    respond ?keep_alive ~status (Json.to_string json)
  in
  let keep =
    Obs.Trace.with_context client_ctx @@ fun () ->
    Obs.Trace.with_span ~ctx "server.request"
      ~attrs:
        [
          ("method", Obs.Str req.Http.meth);
          ("path", Obs.Str req.Http.path);
          ("endpoint", Obs.Str endpoint);
        ]
    @@ fun span ->
    let keep =
      try
        match (req.Http.meth, path_only) with
        | "GET", "/health" ->
            respond_json ~status:200 (Json.Obj [ ("status", Str "ok") ]);
            keep_alive
        | "GET", "/stats" ->
            respond_json ~status:200 (stats_json srv);
            keep_alive
        | "GET", "/metrics" ->
            let accept = Option.value (Http.header req "accept") ~default:"" in
            let want_prometheus =
              contains_substring accept "text/plain"
              || contains_substring req.Http.path "format=prometheus"
            in
            let snap = Obs.Metrics.snapshot () in
            if want_prometheus then
              respond
                ~content_type:"text/plain; version=0.0.4; charset=utf-8"
                ~status:200
                (Obs.Metrics.to_prometheus snap)
            else respond ~status:200 (Obs.Metrics.to_json snap);
            keep_alive
        | "POST", "/shutdown" ->
            respond_json ~keep_alive:false ~status:200
              (Json.Obj [ ("status", Str "shutting down") ]);
            initiate_stop srv;
            false
        | "POST", "/analyze" ->
            handle_analyze srv req ~respond_json:(respond_json ?keep_alive:None)
              ~meta;
            keep_alive
        | _, path ->
            bump srv.c.rejected;
            respond_json ~status:404
              (Json.Obj [ ("error", Str ("no such endpoint: " ^ path)) ]);
            keep_alive
      with
      | (Unix.Unix_error _ | Sys_error _ | End_of_file) as e ->
          (* transport failure: nothing sensible left to write *)
          raise e
      | e ->
          (* unexpected handler failure: answer 500 instead of dropping
             the connection; the flight dump below preserves the spans *)
          (try
             respond_json ~keep_alive:false ~status:500
               (Json.Obj
                  [ ("error", Str ("internal error: " ^ Printexc.to_string e)) ])
           with Unix.Unix_error _ | Sys_error _ -> ());
          false
    in
    if Obs.Trace.recording span then begin
      Obs.Trace.add_attr span "status" (Obs.Int meta.m_status);
      (match meta.m_session with
      | Some s -> Obs.Trace.add_attr span "session" (Obs.Str s)
      | None -> ());
      if meta.m_coalesced > 0 then
        Obs.Trace.add_attr span "coalesced" (Obs.Int meta.m_coalesced);
      if meta.m_queries > 0 then
        Obs.Trace.add_attr span "queries" (Obs.Int meta.m_queries)
    end;
    keep
  in
  let latency_ms = ns_to_ms (Int64.sub (Obs.monotonic_ns ()) t_start) in
  Obs.Metrics.observe (h_endpoint_latency endpoint) latency_ms;
  write_access_log srv ~req ~meta ~trace_id:ctx.Obs.Trace.trace_id ~latency_ms;
  (* post-mortem evidence for failed requests: 5xx always, and 422 —
     a model rejected mid-load is exactly the "what was the daemon doing"
     case the flight recorder exists for *)
  if (meta.m_status >= 500 || meta.m_status = 422) && Obs.Flight.enabled ()
  then
    Obs.Flight.dump
      ~reason:(Printf.sprintf "http_%d %s" meta.m_status req.Http.path)
      ();
  keep

let handle_conn srv fd =
  let c = Http.conn fd in
  (try
     let rec serve () =
       match Http.read_request c with
       | None -> ()
       | Some req -> if handle_request srv fd req then serve ()
     in
     serve ()
   with
  | Http.Bad_request msg -> (
      bump srv.c.rejected;
      try
        json_response ~keep_alive:false fd ~status:400
          (Json.Obj [ ("error", Str msg) ])
      with Unix.Unix_error _ | Sys_error _ -> ())
  | Unix.Unix_error _ | End_of_file | Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop srv =
  let rec loop () =
    match Unix.accept srv.listen_fd with
    | fd, _ ->
        let keep_going = Mutex.protect srv.qm (fun () -> srv.running) in
        if keep_going then begin
          ignore (Thread.create (handle_conn srv) fd : Thread.t);
          loop ()
        end
        else begin
          try Unix.close fd with Unix.Unix_error _ -> ()
        end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EAGAIN), _, _) ->
        loop ()
    | exception Unix.Unix_error _ -> ()
  in
  loop ();
  try Unix.close srv.listen_fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                          *)

(* Low-duty-cycle background thread: services SIGUSR1 flight-dump
   requests (the handler only sets a flag — dumping from a signal
   handler is unsafe) and periodically flushes the trace so a crash
   loses at most a few seconds of spans. *)
let housekeeping srv =
  let tick = ref 0 in
  let rec loop () =
    let keep_going = Mutex.protect srv.qm (fun () -> srv.running) in
    if keep_going then begin
      Thread.delay 0.25;
      Obs.Flight.poll ();
      incr tick;
      if !tick mod 8 = 0 && Obs.Trace.enabled () then Obs.Trace.flush ();
      loop ()
    end
  in
  loop ()

let start ?(config = default_config ()) () =
  (* a client hanging up mid-response must surface as EPIPE on the
     handler thread, not kill the process *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Obs.Metrics.set_enabled true;
  (* the flight recorder is always on in the daemon: a bounded ring per
     domain, dumped on 5xx/422, solver non-convergence, or SIGUSR1 *)
  Obs.Flight.set_enabled true;
  let access_log =
    match Sys.getenv_opt "OBS_ACCESS_LOG" with
    | None | Some "" | Some "0" -> None
    | Some "-" | Some "stderr" -> Some (stderr, false)
    | Some path -> (
        match open_out_gen [ Open_append; Open_creat ] 0o644 path with
        | oc -> Some (oc, true)
        | exception Sys_error msg ->
            Printf.eprintf "warning: OBS_ACCESS_LOG: %s\n%!" msg;
            None)
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd
       (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
     Unix.listen fd 128
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  let srv =
    {
      cfg = config;
      listen_fd = fd;
      bound_port;
      pool = Parallel.Pool.create ~domains:config.domains ();
      queue = Queue.create ();
      qm = Mutex.create ();
      qc = Condition.create ();
      running = true;
      cache = Hashtbl.create 64;
      cache_count = 0;
      clock = 0;
      cm = Mutex.create ();
      c = make_counters ();
      access_log;
      al_mutex = Mutex.create ();
      accept_thread = None;
      sched_thread = None;
      house_thread = None;
    }
  in
  srv.sched_thread <- Some (Thread.create scheduler srv);
  srv.accept_thread <- Some (Thread.create accept_loop srv);
  srv.house_thread <- Some (Thread.create housekeeping srv);
  srv

let wait srv =
  Option.iter Thread.join srv.sched_thread;
  Option.iter Thread.join srv.accept_thread;
  Option.iter Thread.join srv.house_thread;
  Parallel.Pool.shutdown srv.pool;
  match srv.access_log with
  | Some (oc, close_at_stop) ->
      Mutex.protect srv.al_mutex (fun () ->
          (try flush oc with Sys_error _ -> ());
          if close_at_stop then try close_out oc with Sys_error _ -> ())
  | None -> ()

let stop srv =
  initiate_stop srv;
  wait srv

let run ?config () =
  let srv = start ?config () in
  wait srv
