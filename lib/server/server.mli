(** Arcade-as-a-service: a persistent analysis daemon.

    A hand-rolled HTTP/1.1 + JSON server (over [Unix], no new
    dependencies — {!Http} / {!Json} play the role [Xml_kit] plays for
    XML) that accepts Arcade XML models with CSL/CSRL queries and
    answers them from long-lived {!Ctmc.Analysis} sessions:

    - {b Model-hash session cache}: sessions are keyed by an FNV-1a
      content hash of the model source ({!Ctmc.Analysis.fnv1a64}), so
      repeated requests for the same model share its uniformized matrix,
      Fox–Glynn weights, absorbed chains, quotients and steady-state
      vector instead of rebuilding the state space per request. A
      capacity-bounded LRU keeps the portfolio's working set resident.
    - {b Admission control}: every model is linted ({!Lint}) and every
      query parsed ({!Csl.Parser}) {e before} any state-space work;
      malformed requests get 4xx answers with positioned diagnostics
      instead of mid-solve exceptions or dropped connections.
    - {b Same-model query batching}: requests arriving within the batch
      window are grouped by model hash; within a group, time-bounded
      until queries with identical operands ride one
      {!Ctmc.Reachability.bounded_until_curve} sweep, and
      instantaneous + cumulative reward queries on one reward structure
      ride one blocked {!Ctmc.Rewards.both_curves} pass — N coalesced
      requests cost one uniformization sweep, not N.
    - {b Model fan-out}: distinct models in a window are dispatched
      across a fixed {!Numeric.Parallel.Pool} of domains.

    {2 Wire protocol}

    [POST /analyze] with body
    [{"model": "<arcade xml>", "queries": ["S=? [...]", ...],
      "lump": false}]
    answers
    [{"model_hash": "…", "session": "hit"|"miss"|"coalesced",
      "states": n, "coalesced": k, "results": [{"query": …, "value": v}
      | {"query": …, "satisfied": b} | {"query": …, "error": m}, …]}].

    [GET /health], [GET /stats], [GET /metrics] (the {!Obs.Metrics}
    snapshot) and [POST /shutdown] complete the surface. See DESIGN §13
    for the full protocol. *)

module Json = Json
module Http = Http

type config = {
  host : string;  (** dotted-quad bind address, default ["127.0.0.1"] *)
  port : int;  (** [0] picks an ephemeral port (see {!port}) *)
  domains : int;  (** worker-pool size for distinct-model fan-out *)
  batch_window_ms : int;
      (** how long the scheduler lets same-model requests pile up before
          dispatching a batch; [0] dispatches immediately *)
  max_sessions : int;  (** LRU capacity of the session cache *)
  lump : bool;  (** default for requests that do not set ["lump"] *)
}

val default_config : unit -> config
(** Defaults, overridable through the environment ([SERVER_HOST],
    [SERVER_PORT], [SERVER_DOMAINS], [SERVER_BATCH_WINDOW_MS],
    [SERVER_MAX_SESSIONS], [LUMP=1]). Numeric knobs go through
    {!Numeric.Parallel.getenv_positive_int}: malformed values warn on
    stderr and fall back, they never silently change behavior. *)

type t
(** A running server (accept loop, scheduler and worker pool). *)

val start : ?config:config -> unit -> t
(** Bind, spawn the accept and scheduler threads and return. Enables
    {!Obs.Metrics} recording (a server's stats endpoint is part of its
    contract). Raises [Unix.Unix_error] if the address cannot be
    bound. *)

val port : t -> int
(** The actually bound port — useful with [config.port = 0]. *)

val stop : t -> unit
(** Stop accepting, drain queued requests (they are answered), shut the
    worker pool down and join the server threads. Idempotent. *)

val wait : t -> unit
(** Block until the server stops (via {!stop} or [POST /shutdown]). *)

val run : ?config:config -> unit -> unit
(** {!start} then {!wait}. *)
