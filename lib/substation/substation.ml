open Core

(* Components. Rates are engineering-plausible, in hours:
   - transformers: fail about once a year, replacement takes a week and is
     a two-stage procedure (drain + swap);
   - feeders: overhead lines, fail quarterly, repaired within a day;
   - protection relay: a stuck (undetected-dangerous) failure every two
     years with a day of diagnosis, spurious trips twice a year reset in
     two hours;
   - station supply: fails twice a year, half a day to fix; its battery
     backup cannot fail while dormant and holds for ~500 h when carrying
     the load. *)

let transformer name =
  Component.make ~name ~mttf:8760. ~mttr:168. ~repair_stages:2 ~failed_cost:20. ()

let feeder name = Component.make ~name ~mttf:2190. ~mttr:24. ~failed_cost:2. ()

let relay =
  Component.make ~name:"relay" ~mttf:17520. ~mttr:24. ~failed_cost:10.
    ~extra_modes:
      [ Component.failure_mode ~name:"spurious" ~mttf:4380. ~mttr:2. ~failed_cost:4. () ]
    ()
(* the primary mode plays the "stuck" role; we also expose it in the fault
   tree under its generic name "relay:failed" *)

let station_supply = Component.make ~name:"ss" ~mttf:4380. ~mttr:12. ~failed_cost:5. ()

let battery = Component.make ~name:"bat" ~mttf:500. ~mttr:8. ~failed_cost:5. ()

let feeders = [ "f1"; "f2"; "f3"; "f4" ]

let component_names = [ "relay"; "tr1"; "tr2"; "ss"; "bat" ] @ feeders

let priority_order = component_names

let components =
  [ relay; transformer "tr1"; transformer "tr2"; station_supply; battery ]
  @ List.map feeder feeders

let fault_tree =
  Fault_tree.or_
    [
      (* no transformation capacity *)
      Fault_tree.and_ [ Fault_tree.basic "tr1"; Fault_tree.basic "tr2" ];
      (* too few feeders: at least 2 of 4 down *)
      Fault_tree.kofn 2 (List.map Fault_tree.basic feeders);
      (* protection gone (dangerous) or tripped (safe) - either way, no
         distribution until repaired *)
      Fault_tree.basic "relay:failed";
      Fault_tree.basic "relay:spurious";
      (* auxiliary power exhausted *)
      Fault_tree.and_ [ Fault_tree.basic "ss"; Fault_tree.basic "bat" ];
    ]

let spare_units =
  [
    (* tr2 is energized but unloaded: it ages at 30% while tr1 carries the
       load *)
    Spare.make ~name:"transformer_spare" ~mode:(Spare.Warm 0.3) ~primaries:[ "tr1" ]
      ~spares:[ "tr2" ] ();
    (* the battery cannot fail while the station supply is healthy *)
    Spare.make ~name:"aux_supply" ~mode:Spare.Cold ~primaries:[ "ss" ]
      ~spares:[ "bat" ] ();
  ]

let model_with ?(crews = 1) ?(strategy = Repair.Priority priority_order) () =
  Model.make ~name:"substation" ~components
    ~repair_units:
      [ Repair.make ~name:"crew" ~strategy ~crews ~components:component_names () ]
    ~spare_units ~fault_tree ()

let model = model_with ()

let storm = [ "f1"; "f2"; "tr1"; "relay:spurious" ]

let summary ppf () =
  let m = Measures.analyze model in
  let built = Measures.built m in
  Format.fprintf ppf "=== substation (priority repair, 1 crew) ===@.";
  Format.fprintf ppf "state space: %a@." Ctmc.Chain.pp_stats built.Semantics.chain;
  Format.fprintf ppf "availability (full service): %.6f@." (Measures.availability m);
  Format.fprintf ppf "availability (any service):  %.6f@."
    (Measures.any_service_availability m);
  Format.fprintf ppf "mean time to degradation:    %.1f h@."
    (Measures.mean_time_to_degradation m);
  Format.fprintf ppf "mean time to blackout:       %.1f h@."
    (Measures.mean_time_to_service_loss m);
  (match Measures.most_likely_loss_scenario m with
  | Some (events, p) ->
      Format.fprintf ppf "likeliest blackout (p = %.4f): %s@." p
        (String.concat "; " events)
  | None -> ());
  let good = Measures.analyze ~initial:(Semantics.disaster_state model ~failed:storm) model in
  Format.fprintf ppf "@.storm recovery (2 feeders + active transformer + spurious trip):@.";
  List.iter
    (fun t ->
      Format.fprintf ppf "  P(full service within %4.0f h) = %.6f@." t
        (Measures.survivability good ~service_level:1. ~time:t))
    [ 4.; 24.; 72.; 240. ];
  Format.fprintf ppf "  accumulated cost over 240 h:  %.1f@."
    (Measures.accumulated_cost good ~time:240.);
  Format.fprintf ppf "@.importance (by Birnbaum):@.";
  Importance.pp_table ppf (Importance.analyze ~analysis:(Measures.analysis m) built)
