open Core

let f7 = Printf.sprintf "%.7f"

let f2 = Printf.sprintf "%.2f"

let crew_sweep ?(max_crews = 4) line =
  let rows =
    List.concat_map
      (fun strategy ->
        List.map
          (fun crews ->
            let config = { Facility.strategy; crews } in
            let m = Facility.analyze line config in
            let chain = (Measures.built m).Semantics.chain in
            [
              Facility.config_name config;
              string_of_int (Ctmc.Chain.states chain);
              f7 (Measures.availability m);
              f2 (Measures.mean_time_to_degradation m);
              f2 (Measures.steady_state_cost m);
            ])
          (List.init max_crews (fun i -> i + 1)))
      [ Repair.Frf; Repair.Fff ]
    @ [
        (let m = Facility.analyze line Facility.ded in
         [
           "DED";
           string_of_int (Ctmc.Chain.states (Measures.built m).Semantics.chain);
           f7 (Measures.availability m);
           f2 (Measures.mean_time_to_degradation m);
           f2 (Measures.steady_state_cost m);
         ]);
      ]
  in
  {
    Experiments.table_id = "crew_sweep";
    title =
      Printf.sprintf
        "Ablation: crew-count sweep (%s) — availability, MTTF, steady cost"
        (Facility.line_name line);
    header = [ "Strategy"; "States"; "Avail."; "MTTDegr (h)"; "Cost/h" ];
    rows;
  }

let strategy_matrix line =
  let configs =
    [
      ("DED", Repair.Dedicated, 1, false);
      ("FCFS-1", Repair.Fcfs, 1, false);
      ("FCFS-2", Repair.Fcfs, 2, false);
      ("FRF-1", Repair.Frf, 1, false);
      ("FRF-1p", Repair.Frf, 1, true);
      ("FRF-2", Repair.Frf, 2, false);
      ("FRF-2p", Repair.Frf, 2, true);
      ("FFF-1", Repair.Fff, 1, false);
      ("FFF-1p", Repair.Fff, 1, true);
    ]
  in
  let rows =
    List.map
      (fun (label, strategy, crews, preemptive) ->
        let ru =
          Repair.make ~crews ~preemptive
            ~name:(Facility.line_name line ^ "_ru")
            ~strategy
            ~components:(Model.component_names (Facility.line_model line Facility.ded))
            ()
        in
        let model = Model.with_repair_units (Facility.line_model line Facility.ded) [ ru ] in
        let m = Measures.analyze model in
        let chain = (Measures.built m).Semantics.chain in
        [
          label;
          string_of_int (Ctmc.Chain.states chain);
          string_of_int (Ctmc.Chain.transition_count chain);
          f7 (Measures.availability m);
          f2 (Measures.steady_state_cost m);
        ])
      configs
  in
  {
    Experiments.table_id = "strategy_matrix";
    title =
      Printf.sprintf
        "Ablation: strategy matrix incl. FCFS and preemption (%s; 'p' = preemptive)"
        (Facility.line_name line);
    header = [ "Strategy"; "States"; "Trans."; "Avail."; "Cost/h" ];
    rows;
  }

(* Symmetry partition for a dedicated line chain: states are equivalent when
   they agree on the number of up components of each kind. *)
let kind_signature built s =
  let model = built.Semantics.model in
  let state = built.Semantics.states.(s) in
  let counts = Hashtbl.create 4 in
  List.iteri
    (fun i name ->
      let kind = String.sub name 0 2 in
      let up, total = try Hashtbl.find counts kind with Not_found -> (0, 0) in
      Hashtbl.replace counts kind
        ((if state.Semantics.up.(i) then up + 1 else up), total + 1))
    (Model.component_names model);
  let entries = Hashtbl.fold (fun k (u, t) acc -> (k, u, t) :: acc) counts [] in
  String.concat ";"
    (List.map (fun (k, u, t) -> Printf.sprintf "%s:%d/%d" k u t)
       (List.sort compare entries))

let lumping_table () =
  let rows =
    List.map
      (fun line ->
        let m = Facility.analyze line Facility.ded in
        let built = Measures.built m in
        let chain = built.Semantics.chain in
        let n = Ctmc.Chain.states chain in
        let initial = Ctmc.Lumping.partition_by_key n (kind_signature built) in
        let r = Ctmc.Lumping.lump chain ~initial in
        let quotient = r.Ctmc.Lumping.quotient in
        (* availability on the quotient must match *)
        let full = Semantics.service_at_least built 1. in
        let block_full =
          Array.map (function s :: _ -> full s | [] -> false) r.Ctmc.Lumping.blocks
        in
        let avail_q =
          Ctmc.Steady_state.long_run_probability
            ~analysis:(Ctmc.Analysis.create quotient) quotient
            ~pred:(fun b -> block_full.(b))
        in
        [
          Facility.line_name line;
          string_of_int n;
          string_of_int (Ctmc.Chain.states quotient);
          Printf.sprintf "%.1fx" (float_of_int n /. float_of_int (Ctmc.Chain.states quotient));
          f7 (Measures.availability m);
          f7 avail_q;
        ])
      [ Facility.Line1; Facility.Line2 ]
  in
  {
    Experiments.table_id = "lumping";
    title =
      "Ablation: strong-bisimulation lumping of the dedicated chains (paper's \
       future work)";
    header = [ "Line"; "States"; "Lumped"; "Reduction"; "Avail."; "Avail. (lumped)" ];
    rows;
  }

let importance_table line =
  let m = Facility.analyze line Facility.ded in
  let indices = Importance.analyze ~analysis:(Measures.analysis m) (Measures.built m) in
  let rows =
    List.map
      (fun i ->
        [
          i.Importance.component;
          f7 i.Importance.unavailability;
          f7 i.Importance.birnbaum;
          f7 i.Importance.improvement_potential;
          f2 i.Importance.risk_achievement_worth;
          Printf.sprintf "%.4f" i.Importance.fussell_vesely;
        ])
      indices
  in
  {
    Experiments.table_id = "importance";
    title =
      Printf.sprintf
        "Ablation: component importance (%s, dedicated repair; sorted by Birnbaum)"
        (Facility.line_name line);
    header = [ "Component"; "Unavail."; "Birnbaum"; "Improvement"; "RAW"; "F-V" ];
    rows;
  }

(* Erlang-repair ablation: replace the exponential repairs with Erlang-k
   repairs of the same mean and watch Disaster-1 recovery. Low-variance
   repairs recover later-but-surer: the survivability curve steepens around
   the mean repair time. *)
let erlang_repair_table ?(levels = [ 1; 2; 4; 8 ]) () =
  let line = Facility.Line2 in
  let rebuild stages =
    let components =
      List.map
        (fun name ->
          Component.make ~name ~mttf:(Facility.mttf name) ~mttr:(Facility.mttr name)
            ~repair_stages:stages ())
        (Model.component_names (Facility.line_model line Facility.ded))
    in
    let base = Facility.line_model line (Facility.frf 1) in
    Model.make ~name:(Printf.sprintf "line2_frf1_erlang%d" stages) ~components
      ~repair_units:base.Model.repair_units ~spare_units:base.Model.spare_units
      ~fault_tree:base.Model.fault_tree ()
  in
  let rows =
    List.map
      (fun stages ->
        let model = rebuild stages in
        let init = Semantics.disaster_state model ~failed:(Facility.disaster1 line) in
        let m = Measures.analyze ~initial:init model in
        let surv t = Measures.survivability m ~service_level:1. ~time:t in
        [
          Printf.sprintf "Erlang-%d" stages;
          string_of_int (Ctmc.Chain.states (Measures.built m).Semantics.chain);
          f7 (Measures.availability m);
          f7 (surv 1.);
          f7 (surv 2.);
          f7 (surv 5.);
        ])
      levels
  in
  {
    Experiments.table_id = "erlang_repair";
    title =
      "Ablation: Erlang-k repair times (line2 FRF-1, Disaster 1) — recovery \
       timing shifts; availability only via queueing";
    header =
      [ "Repair dist."; "States"; "Avail."; "P(full<=1h)"; "P(full<=2h)"; "P(full<=5h)" ];
    rows;
  }

let generators : (string * (unit -> Experiments.artifact)) list =
  [
    ("crew_sweep_line2", fun () -> Experiments.Table (crew_sweep Facility.Line2));
    ("strategy_matrix_line2", fun () -> Experiments.Table (strategy_matrix Facility.Line2));
    ("lumping", fun () -> Experiments.Table (lumping_table ()));
    ("erlang_repair", fun () -> Experiments.Table (erlang_repair_table ()));
    ("importance_line1", fun () -> Experiments.Table (importance_table Facility.Line1));
    ("importance_line2", fun () -> Experiments.Table (importance_table Facility.Line2));
  ]

let ids = List.map fst generators

let by_id id = List.assoc_opt id generators

let all () = List.map (fun (_, gen) -> gen ()) generators
