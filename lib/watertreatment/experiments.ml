open Core

type series = { label : string; points : (float * float) list }

type figure = {
  fig_id : string;
  title : string;
  xlabel : string;
  ylabel : string;
  series : series list;
}

type table = {
  table_id : string;
  title : string;
  header : string list;
  rows : string list list;
}

type artifact = Table of table | Figure of figure

(* ------------------------------------------------------------------ *)
(* Chain cache: (line, config, disaster) -> Measures.t.

   The cache is domain-local (Domain.DLS): a Measures.t carries a mutable
   Ctmc.Analysis session, which must never be shared across concurrently
   running domains. Keeping one cache per domain means every
   Numeric.Parallel worker builds (and then reuses, across the configs of
   its chunk) its own sessions, while purely sequential use keeps the old
   behaviour of one shared cache in the main domain. *)

let cache_key_dls : (string, Measures.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let reliability_cache_dls : (string, Measures.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

(* Cost-figure pair cache: both cost curves of a strategy come out of one
   blocked two-stream sweep ({!Measures.cost_curves}), so whichever cost
   figure runs first pays the sweep and the sibling figure over the same
   time grid reads its half from the cache. Domain-local for the same
   reason as the chain caches above. *)
let cost_pair_cache_dls :
    (string, (float * float) list * (float * float) list) Hashtbl.t
    Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let clear_cache () =
  Hashtbl.reset (Domain.DLS.get cache_key_dls);
  Hashtbl.reset (Domain.DLS.get reliability_cache_dls);
  Hashtbl.reset (Domain.DLS.get cost_pair_cache_dls)

(* LUMP=1 routes every measure below through the quotient-based engine
   (Analysis.quotient); any other value keeps the full-chain engine. Read
   per call so tests can toggle it, and folded into the cache key so the
   two engines never share a Measures.t. *)
let lump_enabled () =
  match Sys.getenv_opt "LUMP" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let cache_key ~lump line config disaster =
  Printf.sprintf "%s/%s/%s%s" (Facility.line_name line)
    (Facility.config_name config)
    (match disaster with None -> "-" | Some failed -> String.concat "," failed)
    (if lump then "/lump" else "")

let measures ?disaster line config =
  let lump = lump_enabled () in
  let cache = Domain.DLS.get cache_key_dls in
  let key = cache_key ~lump line config disaster in
  match Hashtbl.find_opt cache key with
  | Some m -> m
  | None ->
      let m =
        match disaster with
        | None -> Facility.analyze ~lump line config
        | Some failed ->
            Facility.analyze_after_disaster ~lump line config ~failed
      in
      Hashtbl.replace cache key m;
      m

let cost_curve_pair ~disaster line config ~times =
  let lump = lump_enabled () in
  let cache = Domain.DLS.get cost_pair_cache_dls in
  let key =
    cache_key ~lump line config disaster
    ^ "/"
    ^ String.concat "," (List.map (Printf.sprintf "%h") times)
  in
  match Hashtbl.find_opt cache key with
  | Some pair -> pair
  | None ->
      let m = measures ?disaster line config in
      let pair = Measures.cost_curves m ~times in
      Hashtbl.replace cache key pair;
      pair

let reliability_measures line =
  let lump = lump_enabled () in
  let reliability_cache = Domain.DLS.get reliability_cache_dls in
  let key = Facility.line_name line ^ if lump then "/lump" else "" in
  match Hashtbl.find_opt reliability_cache key with
  | Some m -> m
  | None ->
      let m = Measures.analyze ~lump (Facility.reliability_model line) in
      Hashtbl.replace reliability_cache key m;
      m

(* ------------------------------------------------------------------ *)
(* Helpers *)

let grid ?(from = 0.) upto points =
  List.init points (fun i ->
      from +. ((upto -. from) *. float_of_int i /. float_of_int (points - 1)))

let lines = [ Facility.Line1; Facility.Line2 ]

(* Per-config (and per-line) fan-out: each element is an independent
   chain, so workers never touch the same analysis session (the caches
   above are domain-local). PAR_DOMAINS governs the width. *)
let parallel_map f xs = Numeric.Parallel.map f xs

(* Span helpers: one span per artifact and one nested span per strategy/
   series. Series spans run inside Parallel workers, so each lands on its
   own domain's trace track; the artifact span sits on the spawning
   domain's track and brackets the whole fan-out. *)
let artifact_span id f =
  Obs.Trace.with_span ("experiment." ^ id) (fun _ -> f ())

let series_span id label f =
  Obs.Trace.with_span (id ^ "/" ^ label) (fun span ->
      if Obs.Trace.recording span then begin
        Obs.Trace.add_attr span "artifact" (Obs.Str id);
        Obs.Trace.add_attr span "strategy" (Obs.Str label)
      end;
      f ())

(* ------------------------------------------------------------------ *)
(* Tables *)

let table1 () =
  artifact_span "table1" @@ fun () ->
  let rows =
    parallel_map
      (fun config ->
        series_span "table1" (Facility.config_name config) @@ fun () ->
        Facility.config_name config
        :: List.concat_map
             (fun line ->
               let m = measures line config in
               let chain = (Measures.built m).Semantics.chain in
               [
                 string_of_int (Ctmc.Chain.states chain);
                 string_of_int (Ctmc.Chain.transition_count chain);
               ])
             lines)
      Facility.paper_configs
  in
  {
    table_id = "table1";
    title = "Table 1: State space for repair strategies";
    header = [ "Strategy"; "L1 states"; "L1 trans."; "L2 states"; "L2 trans." ];
    rows;
  }

let table2 () =
  artifact_span "table2" @@ fun () ->
  let rows =
    parallel_map
      (fun config ->
        series_span "table2" (Facility.config_name config) @@ fun () ->
        let avail line = Measures.availability (measures line config) in
        let a1 = avail Facility.Line1 and a2 = avail Facility.Line2 in
        [
          Facility.config_name config;
          Printf.sprintf "%.7f" a1;
          Printf.sprintf "%.7f" a2;
          Printf.sprintf "%.7f" (Measures.combined_availability [ a1; a2 ]);
        ])
      Facility.paper_configs
  in
  {
    table_id = "table2";
    title = "Table 2: Availability for repair strategies";
    header = [ "Strategy"; "line 1"; "line 2"; "Combined" ];
    rows;
  }

(* ------------------------------------------------------------------ *)
(* Figures *)

let default_points = 25

let fig3 ?(points = default_points) () =
  artifact_span "fig3" @@ fun () ->
  let times = grid 1000. points in
  let series =
    parallel_map
      (fun line ->
        series_span "fig3" (Facility.line_name line) @@ fun () ->
        let m = reliability_measures line in
        {
          label = "Reliability " ^ Facility.line_name line;
          points = Measures.reliability_curve m ~times;
        })
      lines
  in
  {
    fig_id = "fig3";
    title = "Figure 3: Reliability over time";
    xlabel = "t in hours";
    ylabel = "Probability";
    series;
  }

(* Line 1, Disaster 1 (all pumps failed), survivability to a service level *)
let survivability_fig ~fig_id ~title ~line ~disaster ~configs ~level ~horizon ~points =
  artifact_span fig_id @@ fun () ->
  let times = grid horizon points in
  let series =
    parallel_map
      (fun config ->
        series_span fig_id (Facility.config_name config) @@ fun () ->
        let m = measures ?disaster line config in
        {
          label = Facility.config_name config;
          points = Measures.survivability_curve m ~service_level:level ~times;
        })
      configs
  in
  { fig_id; title; xlabel = "t in hours"; ylabel = "Probability"; series }

let cost_fig ~fig_id ~title ~kind ~line ~disaster ~configs ~horizon ~points =
  artifact_span fig_id @@ fun () ->
  let times = grid horizon points in
  let series =
    parallel_map
      (fun config ->
        series_span fig_id (Facility.config_name config) @@ fun () ->
        let inst, acc = cost_curve_pair ~disaster line config ~times in
        let points =
          match kind with `Instantaneous -> inst | `Accumulated -> acc
        in
        { label = Facility.config_name config; points })
      configs
  in
  {
    fig_id;
    title;
    xlabel = "t in hours";
    ylabel =
      (match kind with
      | `Instantaneous -> "Instantaneous cost"
      | `Accumulated -> "Cumulative cost");
    series;
  }

let d1_configs = [ Facility.ded; Facility.frf 1; Facility.frf 2 ]

let d2_surv_configs =
  [ Facility.ded; Facility.fff 1; Facility.fff 2; Facility.frf 1; Facility.frf 2 ]

let d2_cost_configs = [ Facility.fff 1; Facility.fff 2; Facility.frf 1; Facility.frf 2 ]

let disaster1_line1 = Some (Facility.disaster1 Facility.Line1)

let disaster2_line2 = Some Facility.disaster2

let third = 1. /. 3.

let two_thirds = 2. /. 3.

let fig4 ?(points = default_points) () =
  survivability_fig ~fig_id:"fig4"
    ~title:"Figure 4: Survivability Line 1, Disaster 1, X1 (service >= 1/3)"
    ~line:Facility.Line1 ~disaster:disaster1_line1 ~configs:d1_configs ~level:third
    ~horizon:4.5 ~points

let fig5 ?(points = default_points) () =
  survivability_fig ~fig_id:"fig5"
    ~title:"Figure 5: Survivability Line 1, Disaster 1, X2 (service >= 2/3)"
    ~line:Facility.Line1 ~disaster:disaster1_line1 ~configs:d1_configs
    ~level:two_thirds ~horizon:4.5 ~points

let fig6 ?(points = default_points) () =
  cost_fig ~fig_id:"fig6" ~title:"Figure 6: Instantaneous cost Line 1, Disaster 1"
    ~kind:`Instantaneous ~line:Facility.Line1 ~disaster:disaster1_line1
    ~configs:d1_configs ~horizon:4.5 ~points

let fig7 ?(points = default_points) () =
  cost_fig ~fig_id:"fig7" ~title:"Figure 7: Accumulated cost Line 1, Disaster 1"
    ~kind:`Accumulated ~line:Facility.Line1 ~disaster:disaster1_line1
    ~configs:d1_configs ~horizon:10. ~points

let fig8 ?(points = default_points) () =
  survivability_fig ~fig_id:"fig8"
    ~title:"Figure 8: Survivability Line 2, Disaster 2, X1 (service >= 1/3)"
    ~line:Facility.Line2 ~disaster:disaster2_line2 ~configs:d2_surv_configs
    ~level:third ~horizon:100. ~points

let fig9 ?(points = default_points) () =
  survivability_fig ~fig_id:"fig9"
    ~title:"Figure 9: Survivability Line 2, Disaster 2, X3 (service >= 2/3)"
    ~line:Facility.Line2 ~disaster:disaster2_line2 ~configs:d2_surv_configs
    ~level:two_thirds ~horizon:100. ~points

let fig10 ?(points = default_points) () =
  cost_fig ~fig_id:"fig10" ~title:"Figure 10: Instantaneous cost Line 2, Disaster 2"
    ~kind:`Instantaneous ~line:Facility.Line2 ~disaster:disaster2_line2
    ~configs:d2_cost_configs ~horizon:50. ~points

let fig11 ?(points = default_points) () =
  cost_fig ~fig_id:"fig11" ~title:"Figure 11: Accumulated cost Line 2, Disaster 2"
    ~kind:`Accumulated ~line:Facility.Line2 ~disaster:disaster2_line2
    ~configs:d2_cost_configs ~horizon:50. ~points

let generators :
    (string * (?points:int -> unit -> artifact)) list =
  [
    ("table1", fun ?points () -> ignore points; Table (table1 ()));
    ("table2", fun ?points () -> ignore points; Table (table2 ()));
    ("fig3", fun ?points () -> Figure (fig3 ?points ()));
    ("fig4", fun ?points () -> Figure (fig4 ?points ()));
    ("fig5", fun ?points () -> Figure (fig5 ?points ()));
    ("fig6", fun ?points () -> Figure (fig6 ?points ()));
    ("fig7", fun ?points () -> Figure (fig7 ?points ()));
    ("fig8", fun ?points () -> Figure (fig8 ?points ()));
    ("fig9", fun ?points () -> Figure (fig9 ?points ()));
    ("fig10", fun ?points () -> Figure (fig10 ?points ()));
    ("fig11", fun ?points () -> Figure (fig11 ?points ()));
  ]

let ids = List.map fst generators

let by_id id = List.assoc_opt id generators

let all ?points () = List.map (fun (_, gen) -> gen ?points ()) generators

(* ------------------------------------------------------------------ *)
(* Artifact metadata (bench JSON observability) *)

let artifact_points = function
  | Table _ -> 0
  | Figure f ->
      List.fold_left (fun acc s -> acc + List.length s.points) 0 f.series

let state_spaces id =
  let states m = Ctmc.Chain.states (Measures.built m).Semantics.chain in
  let repairable ~disaster line configs =
    List.map
      (fun config ->
        ( Printf.sprintf "%s/%s" (Facility.line_name line)
            (Facility.config_name config),
          states (measures ?disaster line config) ))
      configs
  in
  match id with
  | "table1" | "table2" ->
      List.concat_map
        (fun line -> repairable ~disaster:None line Facility.paper_configs)
        lines
  | "fig3" ->
      List.map
        (fun line ->
          ( Facility.line_name line ^ "/reliability",
            states (reliability_measures line) ))
        lines
  | "fig4" | "fig5" | "fig6" | "fig7" ->
      repairable ~disaster:disaster1_line1 Facility.Line1 d1_configs
  | "fig8" | "fig9" ->
      repairable ~disaster:disaster2_line2 Facility.Line2 d2_surv_configs
  | "fig10" | "fig11" ->
      repairable ~disaster:disaster2_line2 Facility.Line2 d2_cost_configs
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Rendering *)

let render_table ppf (t : table) =
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) t.rows)
      t.header
  in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  Format.fprintf ppf "%s@." t.title;
  let print_row cells =
    Format.fprintf ppf "  %s@."
      (String.concat "  " (List.map2 pad cells widths))
  in
  print_row t.header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row t.rows

let render_figure ppf (f : figure) =
  Format.fprintf ppf "# %s@.# x: %s, y: %s@." f.title f.xlabel f.ylabel;
  List.iter
    (fun s ->
      Format.fprintf ppf "@.# series: %s@." s.label;
      List.iter (fun (x, y) -> Format.fprintf ppf "%-12g %.9f@." x y) s.points)
    f.series

let render_artifact ppf = function
  | Table t -> render_table ppf t
  | Figure f -> render_figure ppf f

let figure_to_csv (f : figure) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "time";
  List.iter
    (fun s ->
      Buffer.add_char buf ',';
      Buffer.add_string buf s.label)
    f.series;
  Buffer.add_char buf '\n';
  (match f.series with
  | [] -> ()
  | first :: _ ->
      List.iteri
        (fun i (x, _) ->
          Buffer.add_string buf (Printf.sprintf "%g" x);
          List.iter
            (fun s ->
              let _, y = List.nth s.points i in
              Buffer.add_string buf (Printf.sprintf ",%.9f" y))
            f.series;
          Buffer.add_char buf '\n')
        first.points);
  Buffer.contents buf
