(** Reproduction drivers for every table and figure of the paper's
    evaluation (Section 5).

    Each [table*] / [fig*] function regenerates the corresponding artifact:

    - {!table1}: state-space sizes per repair strategy,
    - {!table2}: steady-state availability per strategy (and combined),
    - {!fig3}: reliability over time for both lines (no repairs),
    - {!fig4} / {!fig5}: survivability, Line 1, Disaster 1, service
      intervals X1 / X2 (DED, FRF-1, FRF-2),
    - {!fig6} / {!fig7}: instantaneous / accumulated cost, Line 1,
      Disaster 1,
    - {!fig8} / {!fig9}: survivability, Line 2, Disaster 2, X1 / X3,
    - {!fig10} / {!fig11}: instantaneous / accumulated cost, Line 2,
      Disaster 2.

    Chains are built once per (line, strategy, disaster) and shared across
    figures through an internal cache, so generating the full set costs a
    handful of state-space constructions.

    Figure series (one per repair configuration) and table rows are
    computed through {!Numeric.Parallel.map}: independent chains fan out
    over domains, with the width controlled by the [PAR_DOMAINS]
    environment variable (default
    [Domain.recommended_domain_count ()]; [PAR_DOMAINS=1] is fully
    sequential). The chain cache is {e domain-local}, because a
    {!Core.Measures.t} carries a mutable {!Ctmc.Analysis} session that
    must never be shared across concurrently running domains — every
    worker builds and reuses its own sessions. Results are deterministic
    and identical for any domain count. *)

val lump_enabled : unit -> bool
(** True when the [LUMP] environment variable is ["1"], ["true"] or
    ["yes"]: every artifact is then computed through the quotient-based
    engine ({!Core.Measures.analyze} with [~lump:true], backed by
    {!Ctmc.Analysis.quotient}). Results are identical either way; the
    quotient engine is faster on the larger FRF/FFF chains. *)

type series = { label : string; points : (float * float) list }

type figure = {
  fig_id : string;
  title : string;
  xlabel : string;
  ylabel : string;
  series : series list;
}

type table = {
  table_id : string;
  title : string;
  header : string list;
  rows : string list list;
}

type artifact = Table of table | Figure of figure

val table1 : unit -> table

val table2 : unit -> table

val fig3 : ?points:int -> unit -> figure

val fig4 : ?points:int -> unit -> figure

val fig5 : ?points:int -> unit -> figure

val fig6 : ?points:int -> unit -> figure

val fig7 : ?points:int -> unit -> figure

val fig8 : ?points:int -> unit -> figure

val fig9 : ?points:int -> unit -> figure

val fig10 : ?points:int -> unit -> figure

val fig11 : ?points:int -> unit -> figure

val all : ?points:int -> unit -> artifact list
(** Every artifact in paper order. [points] is the number of curve samples
    per figure (default 25). *)

val by_id : string -> (?points:int -> unit -> artifact) option
(** Look up an artifact generator by id ("table1", "fig7", ...). *)

val ids : string list

val render_table : Format.formatter -> table -> unit
(** Aligned plain-text rendering. *)

val render_figure : Format.formatter -> figure -> unit
(** Data rows in gnuplot-style blocks (one block per series, blank-line
    separated) with header comments. *)

val render_artifact : Format.formatter -> artifact -> unit

val figure_to_csv : figure -> string
(** Wide CSV: one [time] column plus one column per series. *)

val artifact_points : artifact -> int
(** Total number of curve points across an artifact's series (0 for
    tables) — recorded next to the timings in the bench JSON. *)

val state_spaces : string -> (string * int) list
(** [state_spaces id] is the state-space size of every chain behind the
    artifact [id] (one [("line/config", states)] pair per chain), [[]] for
    unknown ids. Chains are taken from — or built into — the calling
    domain's cache, so calling this right after generating [id] in the
    same domain is free. *)

val clear_cache : unit -> unit
(** Drop memoized chains (used by benchmarks to measure cold times).
    Clears the {e calling domain's} cache only. *)
