open Core

type line = Line1 | Line2

let line_name = function Line1 -> "line1" | Line2 -> "line2"

type config = {
  strategy : Repair.strategy;
  crews : int;
}

let ded = { strategy = Repair.Dedicated; crews = 1 }

let frf crews = { strategy = Repair.Frf; crews }

let fff crews = { strategy = Repair.Fff; crews }

let fcfs crews = { strategy = Repair.Fcfs; crews }

let config_name { strategy; crews } =
  match strategy with
  | Repair.Dedicated -> "DED"
  | Repair.Frf -> Printf.sprintf "FRF-%d" crews
  | Repair.Fff -> Printf.sprintf "FFF-%d" crews
  | Repair.Fcfs -> Printf.sprintf "FCFS-%d" crews
  | Repair.Priority _ -> Printf.sprintf "PRIO-%d" crews

let paper_configs = [ ded; frf 1; frf 2; fff 1; fff 2 ]

(* Rates from the paper's Fig. 2 (assignment validated against Table 2). *)
let mttf name =
  if String.length name >= 4 && String.sub name 0 4 = "pump" then 500.
  else if String.length name >= 3 && String.sub name 0 3 = "res" then 6000.
  else if String.length name >= 2 && String.sub name 0 2 = "st" then 2000.
  else if String.length name >= 2 && String.sub name 0 2 = "sf" then 1000.
  else invalid_arg (Printf.sprintf "Facility.mttf: unknown component kind %s" name)

let mttr name =
  if String.length name >= 4 && String.sub name 0 4 = "pump" then 1.
  else if String.length name >= 3 && String.sub name 0 3 = "res" then 12.
  else if String.length name >= 2 && String.sub name 0 2 = "st" then 5.
  else if String.length name >= 2 && String.sub name 0 2 = "sf" then 100.
  else invalid_arg (Printf.sprintf "Facility.mttr: unknown component kind %s" name)

let softeners = [ "st1"; "st2"; "st3" ]

let sand_filters = function
  | Line1 -> [ "sf1"; "sf2"; "sf3" ]
  | Line2 -> [ "sf1"; "sf2" ]

let pumps = function
  | Line1 -> [ "pump1"; "pump2"; "pump3"; "pump4" ]
  | Line2 -> [ "pump1"; "pump2"; "pump3" ]

let pumps_needed = function Line1 -> 3 | Line2 -> 2

let component_names line = softeners @ sand_filters line @ [ "res" ] @ pumps line

let components line =
  List.map
    (fun name -> Component.make ~name ~mttf:(mttf name) ~mttr:(mttr name) ())
    (component_names line)

(* "Down" fault tree: every softener failed, or every sand filter failed,
   or the reservoir failed, or too many pumps failed. *)
let fault_tree line =
  let all_failed names = Fault_tree.and_ (List.map Fault_tree.basic names) in
  let pump_list = pumps line in
  let excess = List.length pump_list - pumps_needed line + 1 in
  Fault_tree.or_
    [
      all_failed softeners;
      all_failed (sand_filters line);
      Fault_tree.basic "res";
      Fault_tree.kofn excess (List.map Fault_tree.basic pump_list);
    ]

let spare_unit line =
  let pump_list = pumps line in
  let needed = pumps_needed line in
  let rec split k = function
    | [] -> ([], [])
    | x :: rest ->
        if k = 0 then ([], x :: rest)
        else
          let a, b = split (k - 1) rest in
          (x :: a, b)
  in
  let primaries, spares = split needed pump_list in
  Spare.make ~name:(line_name line ^ "_pumps") ~mode:Spare.Hot ~primaries ~spares ()

let repair_unit line config =
  Repair.make ~crews:config.crews
    ~name:(line_name line ^ "_ru")
    ~strategy:config.strategy ~components:(component_names line) ()

let line_model line config =
  let model =
    Model.make
      ~name:(Printf.sprintf "%s_%s" (line_name line) (config_name config))
      ~components:(components line)
      ~repair_units:[ repair_unit line config ]
      ~spare_units:[ spare_unit line ]
      ~fault_tree:(fault_tree line) ()
  in
  Lint.debug_check ~what:model.Model.name model;
  model

let reliability_model line =
  let model =
    Model.make
      ~name:(line_name line ^ "_reliability")
      ~components:(components line)
      ~spare_units:[ spare_unit line ]
      ~fault_tree:(fault_tree line) ()
  in
  (* reliability models only yield info-level findings (ARC-C001): the
     debug hook stays silent on them *)
  Lint.debug_check ~what:model.Model.name model;
  model

let disaster1 line = pumps line

let disaster2 = [ "pump1"; "pump2"; "st1"; "sf1"; "res" ]

let service_intervals line =
  let model = line_model line ded in
  let levels = List.filter (fun l -> l > 1e-9) (Model.service_levels model) in
  let rec pairs = function
    | [] -> []
    | [ last ] -> [ (last, last) ]
    | low :: (high :: _ as rest) -> (low, high) :: pairs rest
  in
  pairs levels

let analyze ?initial ?lump line config =
  Measures.analyze ?initial ?lump (line_model line config)

let analyze_after_disaster ?lump line config ~failed =
  let model = line_model line config in
  Measures.analyze ~initial:(Semantics.disaster_state model ~failed) ?lump model
