(** The paper's water-treatment facility (Section 4).

    Two independent process lines:

    - {e Line 1}: 3 softening tanks, 3 sand filters, 1 reservoir, 4 pumps
      (3 + 1 spare);
    - {e Line 2}: 3 softening tanks, 2 sand filters, 1 reservoir, 3 pumps
      (2 + 1 spare).

    Component rates (validated against the paper's Table 2, see
    EXPERIMENTS.md): softening tank MTTF 2000 h / MTTR 5 h; sand filter
    1000 h / 100 h; reservoir 6000 h / 12 h; pump 500 h / 1 h.

    A line is down when all softening tanks are down, or all sand filters
    are down, or the reservoir is down, or fewer pumps than needed
    (3 resp. 2) are up. The spare pump is hot: it can fail at any time and
    merely adds redundancy (hence, as the paper notes, it creates no extra
    service intervals). *)

type line = Line1 | Line2

val line_name : line -> string

(** A repair organisation for one line: one of the paper's strategies with
    a crew count, always with the paper's cost rates (idle crew 1/h, busy
    crew 0/h, failed component 3/h). *)
type config = {
  strategy : Core.Repair.strategy;
  crews : int;
}

val ded : config
val frf : int -> config
val fff : int -> config
val fcfs : int -> config

val config_name : config -> string
(** "DED", "FRF-1", "FFF-2", ... *)

val paper_configs : config list
(** The five configurations of Tables 1 and 2: DED, FRF-1, FRF-2, FFF-1,
    FFF-2. *)

val mttf : string -> float
(** MTTF by component-kind prefix ("st", "sf", "res", "pump"); raises
    [Invalid_argument] on other names. *)

val mttr : string -> float

val line_model : line -> config -> Core.Model.t
(** The full repairable model of one line. *)

val reliability_model : line -> Core.Model.t
(** The repair-free variant used for Fig. 3. *)

val pumps : line -> string list

val disaster1 : line -> string list
(** Disaster 1: all pumps of the line fail. *)

val disaster2 : string list
(** Disaster 2 (defined on Line 2): two pumps, one softener, one sand
    filter and the reservoir fail. *)

val service_intervals : line -> (float * float) list
(** The paper's service intervals as [(low, high)] pairs of consecutive
    positive service levels: Line 1 yields X1 = (1/3, 2/3), X2 = (2/3, 1),
    X3 = (1, 1); Line 2 adds the 1/2 level. The survivability of interval
    [Xi] is the probability of reaching service >= low. *)

val analyze :
  ?initial:Core.Semantics.state -> ?lump:bool -> line -> config -> Core.Measures.t
(** Build and wrap a line's chain for measure evaluation. *)

val analyze_after_disaster :
  ?lump:bool -> line -> config -> failed:string list -> Core.Measures.t
(** GOOD model: same chain rooted at the disaster state. *)
