type t =
  | Element of string * (string * string) list * t list
  | Text of string

exception Parse_error of { line : int; column : int; message : string }

let () =
  Printexc.register_printer (function
    | Parse_error { line; column; message } ->
        Some (Printf.sprintf "Xml_kit.Parse_error (line %d, column %d: %s)" line column message)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Parser: a hand-written scanner over the input string with line/column
   tracking for error messages. *)

module Parser = struct
  type state = {
    input : string;
    mutable pos : int;
    mutable line : int;
    mutable col : int;
    mutable record : (t * (int * int)) list;
        (* element node -> (line, column) of its opening '<', collected
           when a caller asked for a located parse *)
  }

  let make input = { input; pos = 0; line = 1; col = 1; record = [] }

  let len st = String.length st.input

  let at_end st = st.pos >= len st

  let error st message = raise (Parse_error { line = st.line; column = st.col; message })

  let peek st = if at_end st then None else Some st.input.[st.pos]

  let peek2 st =
    if st.pos + 1 < len st then Some (st.input.[st.pos], st.input.[st.pos + 1]) else None

  let advance st =
    if at_end st then error st "unexpected end of input";
    let c = st.input.[st.pos] in
    st.pos <- st.pos + 1;
    if c = '\n' then begin
      st.line <- st.line + 1;
      st.col <- 1
    end
    else st.col <- st.col + 1;
    c

  let looking_at st prefix =
    let l = String.length prefix in
    st.pos + l <= len st && String.sub st.input st.pos l = prefix

  let skip_exact st prefix =
    if not (looking_at st prefix) then
      error st (Printf.sprintf "expected %S" prefix);
    String.iter (fun _ -> ignore (advance st)) prefix

  let is_space = function ' ' | '\t' | '\r' | '\n' -> true | _ -> false

  let skip_ws st =
    let continue = ref true in
    while !continue do
      match peek st with
      | Some c when is_space c -> ignore (advance st)
      | _ -> continue := false
    done

  let is_name_start c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

  let is_name_char c =
    is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

  let name st =
    (match peek st with
    | Some c when is_name_start c -> ()
    | _ -> error st "expected a name");
    let start = st.pos in
    let continue = ref true in
    while !continue do
      match peek st with
      | Some c when is_name_char c -> ignore (advance st)
      | _ -> continue := false
    done;
    String.sub st.input start (st.pos - start)

  let decode_entity st =
    (* called after consuming '&' *)
    let start = st.pos in
    let continue = ref true in
    while !continue do
      match peek st with
      | Some ';' -> continue := false
      | Some _ -> ignore (advance st)
      | None -> error st "unterminated entity reference"
    done;
    let entity = String.sub st.input start (st.pos - start) in
    ignore (advance st);
    (* ';' *)
    match entity with
    | "lt" -> "<"
    | "gt" -> ">"
    | "amp" -> "&"
    | "quot" -> "\""
    | "apos" -> "'"
    | _ ->
        let numeric =
          if String.length entity > 2 && entity.[0] = '#' && (entity.[1] = 'x' || entity.[1] = 'X')
          then int_of_string_opt ("0x" ^ String.sub entity 2 (String.length entity - 2))
          else if String.length entity > 1 && entity.[0] = '#' then
            int_of_string_opt (String.sub entity 1 (String.length entity - 1))
          else None
        in
        (match numeric with
        | Some code when code >= 0 && code <= 0x10FFFF ->
            (* encode as UTF-8 *)
            let buf = Buffer.create 4 in
            Buffer.add_utf_8_uchar buf (Uchar.of_int code);
            Buffer.contents buf
        | _ -> error st (Printf.sprintf "unknown entity &%s;" entity))

  let attribute_value st =
    let quote =
      match peek st with
      | Some (('"' | '\'') as q) ->
          ignore (advance st);
          q
      | _ -> error st "expected quoted attribute value"
    in
    let buf = Buffer.create 16 in
    let continue = ref true in
    while !continue do
      match peek st with
      | Some c when c = quote ->
          ignore (advance st);
          continue := false
      | Some '&' ->
          ignore (advance st);
          Buffer.add_string buf (decode_entity st)
      | Some '<' -> error st "'<' in attribute value"
      | Some c ->
          ignore (advance st);
          Buffer.add_char buf c
      | None -> error st "unterminated attribute value"
    done;
    Buffer.contents buf

  let rec skip_misc st =
    skip_ws st;
    if looking_at st "<!--" then begin
      skip_exact st "<!--";
      let continue = ref true in
      while !continue do
        if looking_at st "-->" then begin
          skip_exact st "-->";
          continue := false
        end
        else ignore (advance st)
      done;
      skip_misc st
    end
    else if looking_at st "<?" then begin
      skip_exact st "<?";
      let continue = ref true in
      while !continue do
        if looking_at st "?>" then begin
          skip_exact st "?>";
          continue := false
        end
        else ignore (advance st)
      done;
      skip_misc st
    end
    else if looking_at st "<!DOCTYPE" then begin
      (* skip to matching '>' (no internal subset support) *)
      let continue = ref true in
      while !continue do
        match advance st with '>' -> continue := false | _ -> ()
      done;
      skip_misc st
    end

  let attributes st =
    let attrs = ref [] in
    let continue = ref true in
    while !continue do
      skip_ws st;
      match peek st with
      | Some c when is_name_start c ->
          let key = name st in
          skip_ws st;
          skip_exact st "=";
          skip_ws st;
          let value = attribute_value st in
          if List.mem_assoc key !attrs then
            error st (Printf.sprintf "duplicate attribute %s" key);
          attrs := (key, value) :: !attrs
      | _ -> continue := false
    done;
    List.rev !attrs

  let rec element st =
    let at = (st.line, st.col) in
    skip_exact st "<";
    let tag = name st in
    let attrs = attributes st in
    skip_ws st;
    let node =
      if looking_at st "/>" then begin
        skip_exact st "/>";
        Element (tag, attrs, [])
      end
      else begin
        skip_exact st ">";
        let kids = content st tag in
        Element (tag, attrs, kids)
      end
    in
    st.record <- (node, at) :: st.record;
    node

  and content st tag =
    let kids = ref [] in
    let buf = Buffer.create 16 in
    let flush_text () =
      if Buffer.length buf > 0 then begin
        let s = Buffer.contents buf in
        Buffer.clear buf;
        if String.exists (fun c -> not (is_space c)) s then kids := Text s :: !kids
      end
    in
    let continue = ref true in
    while !continue do
      if looking_at st "</" then begin
        flush_text ();
        skip_exact st "</";
        let closing = name st in
        if closing <> tag then
          error st (Printf.sprintf "mismatched closing tag </%s> for <%s>" closing tag);
        skip_ws st;
        skip_exact st ">";
        continue := false
      end
      else if looking_at st "<!--" then begin
        skip_exact st "<!--";
        let inner = ref true in
        while !inner do
          if looking_at st "-->" then begin
            skip_exact st "-->";
            inner := false
          end
          else ignore (advance st)
        done
      end
      else if looking_at st "<![CDATA[" then begin
        flush_text ();
        skip_exact st "<![CDATA[";
        let cdata = Buffer.create 16 in
        let inner = ref true in
        while !inner do
          if looking_at st "]]>" then begin
            skip_exact st "]]>";
            inner := false
          end
          else Buffer.add_char cdata (advance st)
        done;
        kids := Text (Buffer.contents cdata) :: !kids
      end
      else if looking_at st "<?" then begin
        skip_exact st "<?";
        let inner = ref true in
        while !inner do
          if looking_at st "?>" then begin
            skip_exact st "?>";
            inner := false
          end
          else ignore (advance st)
        done
      end
      else begin
        match peek2 st with
        | Some ('<', c) when is_name_start c ->
            flush_text ();
            kids := element st :: !kids
        | Some ('<', _) -> error st "unexpected markup"
        | _ -> (
            match peek st with
            | Some '&' ->
                ignore (advance st);
                Buffer.add_string buf (decode_entity st)
            | Some _ -> Buffer.add_char buf (advance st)
            | None -> error st (Printf.sprintf "unterminated element <%s>" tag))
      end
    done;
    List.rev !kids

  let document st =
    skip_misc st;
    (match peek st with
    | Some '<' -> ()
    | _ -> error st "expected root element");
    let root = element st in
    skip_misc st;
    if not (at_end st) then error st "content after root element";
    root
end

let parse_string input = Parser.document (Parser.make input)

type locator = t -> (int * int) option

(* Position lookup keyed by node identity: every element is a fresh
   allocation, so physical equality distinguishes structurally equal
   subtrees. [Hashtbl.hash] is compatible with [==] (depth-bounded
   structural hashing; collisions are resolved by the equality). *)
module Phys = Hashtbl.Make (struct
  type nonrec t = t

  let equal = ( == )

  let hash = Hashtbl.hash
end)

let parse_string_located input =
  let st = Parser.make input in
  let root = Parser.document st in
  let table = Phys.create 64 in
  List.iter (fun (node, at) -> Phys.replace table node at) st.Parser.record;
  (root, fun node -> Phys.find_opt table node)

let read_file path =
  let ic = open_in_bin path in
  let finally () = close_in_noerr ic in
  Fun.protect ~finally (fun () ->
      let n = in_channel_length ic in
      really_input_string ic n)

let parse_file path = parse_string (read_file path)

let parse_file_located path = parse_string_located (read_file path)

(* ------------------------------------------------------------------ *)
(* Serialization *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(indent = 2) doc =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
  let newline depth =
    if indent > 0 then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (depth * indent) ' ')
    end
  in
  let rec node depth = function
    | Text s -> Buffer.add_string buf (escape s)
    | Element (tag, attrs, kids) ->
        newline depth;
        Buffer.add_char buf '<';
        Buffer.add_string buf tag;
        List.iter
          (fun (k, v) ->
            Buffer.add_char buf ' ';
            Buffer.add_string buf k;
            Buffer.add_string buf "=\"";
            Buffer.add_string buf (escape v);
            Buffer.add_char buf '"')
          attrs;
        (match kids with
        | [] -> Buffer.add_string buf "/>"
        | _ ->
            Buffer.add_char buf '>';
            let only_text = List.for_all (function Text _ -> true | _ -> false) kids in
            List.iter (node (depth + 1)) kids;
            if not only_text then newline depth;
            Buffer.add_string buf "</";
            Buffer.add_string buf tag;
            Buffer.add_char buf '>')
  in
  node 0 doc;
  if indent > 0 then Buffer.add_char buf '\n';
  Buffer.contents buf

let write_file ?indent path doc =
  let oc = open_out_bin path in
  let finally () = close_out_noerr oc in
  Fun.protect ~finally (fun () -> output_string oc (to_string ?indent doc))

(* ------------------------------------------------------------------ *)
(* Accessors *)

let name = function
  | Element (tag, _, _) -> tag
  | Text _ -> invalid_arg "Xml_kit.name: text node"

let attribute node key =
  match node with
  | Element (_, attrs, _) -> List.assoc_opt key attrs
  | Text _ -> None

let attribute_exn node key =
  match attribute node key with
  | Some v -> v
  | None ->
      let where = match node with Element (tag, _, _) -> tag | Text _ -> "#text" in
      failwith (Printf.sprintf "Xml_kit: missing attribute %S on <%s>" key where)

let children = function
  | Element (_, _, kids) -> kids
  | Text _ -> []

let child_elements node =
  List.filter (function Element _ -> true | Text _ -> false) (children node)

let find_child node tag =
  List.find_opt
    (function Element (t, _, _) -> t = tag | Text _ -> false)
    (children node)

let find_child_exn node tag =
  match find_child node tag with
  | Some el -> el
  | None ->
      let where = match node with Element (t, _, _) -> t | Text _ -> "#text" in
      failwith (Printf.sprintf "Xml_kit: missing child <%s> under <%s>" tag where)

let find_children node tag =
  List.filter
    (function Element (t, _, _) -> t = tag | Text _ -> false)
    (children node)

let text_content node =
  let buf = Buffer.create 16 in
  let rec go = function
    | Text s -> Buffer.add_string buf s
    | Element (_, _, kids) -> List.iter go kids
  in
  go node;
  String.trim (Buffer.contents buf)

let element tag attrs kids = Element (tag, attrs, kids)

let text s = Text s
