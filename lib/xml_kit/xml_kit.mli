(** A small, self-contained XML toolkit.

    Implements the subset of XML 1.0 that document-oriented model
    interchange needs: elements, attributes, character data, comments,
    CDATA sections, processing instructions and the five predefined
    entities plus numeric character references. No DTD processing, no
    namespaces-aware resolution (prefixes are kept verbatim in names).

    This is the substrate for Arcade's XML input language; nothing in it is
    Arcade-specific. *)

(** Parsed document trees. Comments and processing instructions are dropped
    by the parser; CDATA becomes ordinary text. *)
type t =
  | Element of string * (string * string) list * t list
      (** name, attributes in document order, children *)
  | Text of string

exception Parse_error of { line : int; column : int; message : string }

val parse_string : string -> t
(** Parse a complete document and return its root element. Leading XML
    declaration, comments and PIs are allowed. Raises {!Parse_error}. *)

val parse_file : string -> t
(** {!parse_string} over a file's contents. Raises [Sys_error] on IO
    failure. *)

type locator = t -> (int * int) option
(** Source positions of parsed elements: [(line, column)] of the opening
    ['<'] (both 1-based), or [None] for nodes the locator does not know
    (text nodes, or elements built programmatically). Lookup is by node
    identity, so hold on to the exact subtrees the parse returned. *)

val parse_string_located : string -> t * locator
(** {!parse_string}, additionally returning a locator for every element of
    the parsed tree — the substrate for diagnostics that point at
    [file:line] instead of an element name. *)

val parse_file_located : string -> t * locator

val to_string : ?indent:int -> t -> string
(** Serialize with the given indentation width (default 2; [0] means
    compact single-line output). Attribute values and text are escaped.
    Guaranteed inverse: [parse_string (to_string doc)] yields a tree equal
    to [doc] up to whitespace-only text normalization. *)

val write_file : ?indent:int -> string -> t -> unit

(** {2 Tree accessors} *)

val name : t -> string
(** Element name; raises [Invalid_argument] on [Text]. *)

val attribute : t -> string -> string option
(** [attribute el key] is the attribute's value if present. *)

val attribute_exn : t -> string -> string
(** Raises [Failure] naming the element and attribute when missing. *)

val children : t -> t list
(** Child nodes of an element ([[]] for [Text]). *)

val child_elements : t -> t list
(** Only the [Element] children. *)

val find_child : t -> string -> t option
(** First child element with the given name. *)

val find_child_exn : t -> string -> t

val find_children : t -> string -> t list
(** All child elements with the given name, in order. *)

val text_content : t -> string
(** Concatenated text below the node (trimmed). *)

val element : string -> (string * string) list -> t list -> t

val text : string -> t

val escape : string -> string
(** Escape the five XML-special characters (ampersand, angle brackets and
    both quote characters) for inclusion in XML. *)
