(* Tests for the CTMC engine, validated against closed-form results for
   small chains (2-state machines, Erlang chains, birth-death queues) and
   against the independent Monte-Carlo simulator. *)

module Chain = Ctmc.Chain
module Analysis = Ctmc.Analysis
module Transient = Ctmc.Transient
module Reachability = Ctmc.Reachability
module Steady_state = Ctmc.Steady_state
module Rewards = Ctmc.Rewards
module Lumping = Ctmc.Lumping
module Simulate = Ctmc.Simulate
module Vec = Numeric.Vec

let check_close ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* the workhorse example: 0 --a--> 1, 1 --b--> 0 *)
let two_state a b = Chain.of_transitions ~states:2 [ (0, 1, a); (1, 0, b) ]

let p0_exact a b t = (b /. (a +. b)) +. ((a /. (a +. b)) *. Float.exp (-.(a +. b) *. t))

(* ------------------------------------------------------------------ *)
(* Chain *)

let test_chain_validation () =
  Alcotest.check_raises "negative rate"
    (Invalid_argument "Chain.make: negative rate -1 at (0,1)") (fun () ->
      ignore (Chain.of_transitions ~states:2 [ (0, 1, -1.) ]));
  Alcotest.check_raises "diagonal"
    (Invalid_argument "Chain.make: non-zero diagonal entry at state 0") (fun () ->
      ignore (Chain.of_transitions ~states:2 [ (0, 0, 1.) ]))

let test_chain_accessors () =
  let m = two_state 2. 3. in
  Alcotest.(check int) "states" 2 (Chain.states m);
  Alcotest.(check int) "transitions" 2 (Chain.transition_count m);
  check_close "rate" 2. (Chain.rate m 0 1);
  check_close "exit" 3. (Chain.exit_rates m).(1);
  let q = Chain.generator m in
  check_close "generator diagonal" (-2.) (Numeric.Sparse.get q 0 0)

let test_chain_uniformized () =
  let m = two_state 2. 3. in
  let lambda, p = Chain.uniformized m in
  Alcotest.(check bool) "lambda >= max exit" true (lambda >= 3.);
  let sums = Numeric.Sparse.row_sums p in
  check_close "row 0 stochastic" 1. sums.(0);
  check_close "row 1 stochastic" 1. sums.(1)

let test_chain_embedded () =
  let m = Chain.of_transitions ~states:3 [ (0, 1, 1.); (0, 2, 3.) ] in
  let e = Chain.embedded m in
  check_close "jump prob" 0.25 (Numeric.Sparse.get e 0 1);
  check_close "absorbing self-loop" 1. (Numeric.Sparse.get e 1 1)

let test_chain_absorbing () =
  let m = two_state 2. 3. in
  let m' = Chain.absorbing m ~pred:(fun s -> s = 1) in
  check_close "no exit from 1" 0. (Chain.exit_rates m').(1);
  check_close "0 unchanged" 2. (Chain.exit_rates m').(0)

let test_restrict_reachable () =
  let m =
    Chain.of_transitions ~states:4 ~init:(Vec.unit 4 0) [ (0, 1, 1.); (2, 3, 1.) ]
  in
  let m', old_of_new = Chain.restrict_reachable m in
  Alcotest.(check int) "two reachable" 2 (Chain.states m');
  Alcotest.(check (array int)) "mapping" [| 0; 1 |] old_of_new

(* ------------------------------------------------------------------ *)
(* Transient *)

let test_transient_two_state () =
  let a = 2. and b = 3. in
  let m = two_state a b in
  List.iter
    (fun t ->
      let pi = Transient.distribution m t in
      check_close ~eps:1e-10 (Printf.sprintf "pi0(%g)" t) (p0_exact a b t) pi.(0);
      check_close ~eps:1e-10 "mass conserved" 1. (Vec.sum pi))
    [ 0.; 0.01; 0.3; 1.; 10.; 100. ]

let test_transient_erlang () =
  (* chain of n exponential(r) stages: P(absorbed by t) = P(Poisson(rt) >= n) *)
  let n = 5 and r = 2. in
  let m =
    Chain.of_transitions ~states:(n + 1)
      (List.init n (fun i -> (i, i + 1, r)))
  in
  let t = 1.7 in
  let pi = Transient.distribution m t in
  let poisson k =
    let rec fact i = if i <= 1 then 1. else float_of_int i *. fact (i - 1) in
    Float.exp (-.(r *. t)) *. ((r *. t) ** float_of_int k) /. fact k
  in
  let expected = 1. -. (poisson 0 +. poisson 1 +. poisson 2 +. poisson 3 +. poisson 4) in
  check_close ~eps:1e-10 "erlang cdf" expected pi.(n)

let test_transient_curve_matches_pointwise () =
  let m = two_state 1.5 0.5 in
  let times = [ 0.2; 1.0; 2.5; 7. ] in
  let curve = Transient.curve m ~times in
  List.iter
    (fun (t, pi) ->
      let direct = Transient.distribution m t in
      check_close ~eps:1e-9 (Printf.sprintf "curve(%g)" t) direct.(0) pi.(0))
    curve

let test_transient_backward () =
  let a = 2. and b = 3. in
  let m = two_state a b in
  let v = [| 1.; 0. |] in
  let u = Transient.backward m v 0.7 in
  check_close ~eps:1e-10 "backward from 0" (p0_exact a b 0.7) u.(0);
  check_close ~eps:1e-10 "backward from 1" (1. -. p0_exact b a 0.7) u.(1)

let test_transient_zero_time () =
  let m = two_state 1. 1. in
  let pi = Transient.distribution m 0. in
  check_close "identity at 0" 1. pi.(0)

let test_transient_absorbing_chain () =
  let m = Chain.of_transitions ~states:1 [] in
  let pi = Transient.distribution m 100. in
  check_close "absorbing stays" 1. pi.(0)

(* ------------------------------------------------------------------ *)
(* Reachability *)

let test_bounded_until_pure_death () =
  let m = Chain.of_transitions ~states:2 [ (0, 1, 2.) ] in
  let p =
    Reachability.bounded_until_from_init m
      ~phi:(fun _ -> true)
      ~psi:(fun s -> s = 1)
      ~bound:0.9
  in
  check_close ~eps:1e-10 "reach by t" (1. -. Float.exp (-1.8)) p

let test_bounded_until_phi_constraint () =
  let m = Chain.of_transitions ~states:3 [ (0, 1, 1.); (1, 2, 1.) ] in
  let p =
    Reachability.bounded_until_from_init m
      ~phi:(fun s -> s <> 1)
      ~psi:(fun s -> s = 2)
      ~bound:50.
  in
  check_close "blocked path" 0. p;
  let p' =
    Reachability.bounded_until_from_init m
      ~phi:(fun _ -> true)
      ~psi:(fun s -> s = 2)
      ~bound:50.
  in
  Alcotest.(check bool) "unblocked is nearly certain" true (p' > 0.99)

let test_bounded_until_psi_initial () =
  let m = two_state 1. 1. in
  let v =
    Reachability.bounded_until m ~phi:(fun _ -> true) ~psi:(fun s -> s = 0) ~bound:0.
  in
  check_close "psi holds now" 1. v.(0);
  check_close "psi does not" 0. v.(1)

let test_unbounded_until_gambler () =
  let m =
    Chain.of_transitions ~states:4
      [ (1, 0, 1.); (1, 2, 1.); (2, 1, 1.); (2, 3, 1.) ]
  in
  let v =
    Reachability.unbounded_until m ~phi:(fun s -> s <> 0) ~psi:(fun s -> s = 3)
  in
  check_close ~eps:1e-9 "gambler from 1" (1. /. 3.) v.(1);
  check_close ~eps:1e-9 "gambler from 2" (2. /. 3.) v.(2);
  check_close "absorbed at 0" 0. v.(0);
  check_close "already there" 1. v.(3)

let test_unbounded_until_certain () =
  let m = two_state 2. 3. in
  let v = Reachability.eventually m ~psi:(fun s -> s = 1) in
  check_close ~eps:1e-9 "recurrent chain reaches everything" 1. v.(0)

let test_bounded_until_curve_monotone () =
  let m = Chain.of_transitions ~states:2 [ (0, 1, 0.5) ] in
  let points =
    Reachability.bounded_until_curve m
      ~phi:(fun _ -> true)
      ~psi:(fun s -> s = 1)
      ~bounds:[ 0.; 1.; 2.; 4.; 8. ]
  in
  let values = List.map snd points in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-12 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone in t" true (monotone values);
  check_close ~eps:1e-10 "final value" (1. -. Float.exp (-4.)) (List.nth values 4)

(* ------------------------------------------------------------------ *)
(* Absorption: expected hitting times *)

let test_hitting_time_two_state () =
  let m = two_state 2. 3. in
  let times = Ctmc.Absorption.expected_time_to m ~psi:(fun s -> s = 1) in
  check_close ~eps:1e-10 "from 0" 0.5 times.(0);
  check_close "on target" 0. times.(1)

let test_hitting_time_erlang () =
  (* chain of stages: expected absorption time = sum of stage means *)
  let rates = [ 2.; 4.; 0.5 ] in
  let m =
    Chain.of_transitions ~states:4
      (List.mapi (fun i r -> (i, i + 1, r)) rates)
  in
  let times = Ctmc.Absorption.expected_time_to m ~psi:(fun s -> s = 3) in
  check_close ~eps:1e-9 "sum of means" (0.5 +. 0.25 +. 2.) times.(0);
  check_close ~eps:1e-9 "tail" 2. times.(2)

let test_hitting_time_unreachable () =
  let m = Chain.of_transitions ~states:3 [ (0, 1, 1.) ] in
  let times = Ctmc.Absorption.expected_time_to m ~psi:(fun s -> s = 2) in
  Alcotest.(check bool) "infinite" true (times.(0) = infinity);
  check_close "target itself" 0. times.(2)

let test_hitting_time_not_almost_sure () =
  (* 0 goes to absorbing 1 or absorbing 2: hitting 2 has probability 3/4 *)
  let m = Chain.of_transitions ~states:3 [ (0, 1, 1.); (0, 2, 3.) ] in
  let times = Ctmc.Absorption.expected_time_to m ~psi:(fun s -> s = 2) in
  Alcotest.(check bool) "conditional expectation refused" true (times.(0) = infinity)

let test_hitting_reward () =
  let m = two_state 2. 3. in
  let r =
    Ctmc.Absorption.expected_reward_to m ~reward:[| 7.; 0. |] ~psi:(fun s -> s = 1)
  in
  (* rate-7 reward over an expected 1/2 hour *)
  check_close ~eps:1e-10 "scaled" 3.5 r.(0)

let test_mean_time_from_init () =
  let m = Chain.of_transitions ~states:2 [ (0, 1, 0.25) ] in
  check_close ~eps:1e-9 "mttf" 4. (Ctmc.Absorption.mean_time_from_init m ~psi:(fun s -> s = 1))

(* interval until *)

let test_interval_until_transient_target () =
  (* 0 -l1-> 1 -l2-> 2; psi = {1}: P(exists t in [a,b] with X_t = 1) *)
  let l1 = 0.7 and l2 = 1.3 in
  let m = Chain.of_transitions ~states:3 [ (0, 1, l1); (1, 2, l2) ] in
  let a = 0.9 and b = 2.1 in
  let v =
    Ctmc.Reachability.interval_until m
      ~phi:(fun _ -> true)
      ~psi:(fun s -> s = 1)
      ~lower:a ~upper:b
  in
  let p0_at_a = Float.exp (-.l1 *. a) in
  let p1_at_a = l1 /. (l2 -. l1) *. (Float.exp (-.l1 *. a) -. Float.exp (-.l2 *. a)) in
  let expected = p1_at_a +. (p0_at_a *. (1. -. Float.exp (-.l1 *. (b -. a)))) in
  check_close ~eps:1e-10 "analytic" expected v.(0)

let test_interval_until_zero_lower () =
  let m = two_state 1. 2. in
  let via_interval =
    Ctmc.Reachability.interval_until m ~phi:(fun _ -> true) ~psi:(fun s -> s = 1)
      ~lower:0. ~upper:3.
  in
  let via_bounded =
    Ctmc.Reachability.bounded_until m ~phi:(fun _ -> true) ~psi:(fun s -> s = 1)
      ~bound:3.
  in
  Array.iteri (fun s v -> check_close "agrees with bounded" v via_interval.(s)) via_bounded

let test_interval_until_phi_constraint () =
  (* phi = not state 1 kills paths that pass through 1 before reaching 2 *)
  let m = Chain.of_transitions ~states:3 [ (0, 1, 1.); (0, 2, 1.); (1, 2, 1.) ] in
  let v =
    Ctmc.Reachability.interval_until m
      ~phi:(fun s -> s <> 1)
      ~psi:(fun s -> s = 2)
      ~lower:0.5 ~upper:10.
  in
  (* direct path only: P(jump to 2 rather than 1, after 0.5) + path already
     in 2 at 0.5 having never visited 1 *)
  Alcotest.(check bool) "strictly below unconstrained" true
    (v.(0)
    < (Ctmc.Reachability.interval_until m
         ~phi:(fun _ -> true)
         ~psi:(fun s -> s = 2)
         ~lower:0.5 ~upper:10.).(0));
  check_close "blocked state" 0. v.(1)

let test_interval_until_monotone_widening () =
  let m = two_state 0.3 0.9 in
  let p lower upper =
    (Ctmc.Reachability.interval_until m ~phi:(fun _ -> true) ~psi:(fun s -> s = 1)
       ~lower ~upper).(0)
  in
  Alcotest.(check bool) "wider upper" true (p 1. 2. <= p 1. 4. +. 1e-12);
  Alcotest.(check bool) "smaller lower" true (p 2. 4. <= p 1. 4. +. 1e-12)

(* witness paths *)

let test_witness_simple_choice () =
  (* 0 -> 1 (rate 1) -> 3 (rate 1), 0 -> 2 (rate 3) -> 3 (rate 1):
     the most probable path to 3 goes through 2 (jump prob 3/4) *)
  let m =
    Chain.of_transitions ~states:4
      [ (0, 1, 1.); (0, 2, 3.); (1, 3, 1.); (2, 3, 1.) ]
  in
  match Ctmc.Witness.most_probable_path m ~psi:(fun s -> s = 3) with
  | Some w ->
      Alcotest.(check (list int)) "path" [ 0; 2; 3 ] w.Ctmc.Witness.states;
      check_close ~eps:1e-12 "probability" 0.75 w.Ctmc.Witness.probability
  | None -> Alcotest.fail "expected a path"

let test_witness_unreachable () =
  let m = Chain.of_transitions ~states:3 [ (0, 1, 1.) ] in
  Alcotest.(check bool) "no path" true
    (Ctmc.Witness.most_probable_path m ~psi:(fun s -> s = 2) = None)

let test_witness_trivial () =
  let m = two_state 1. 1. in
  match Ctmc.Witness.most_probable_path m ~psi:(fun s -> s = 0) with
  | Some w ->
      Alcotest.(check (list int)) "already there" [ 0 ] w.Ctmc.Witness.states;
      check_close "probability 1" 1. w.Ctmc.Witness.probability
  | None -> Alcotest.fail "expected the trivial path"

let test_witness_prefers_short_high_probability () =
  (* long chain of probability-1 jumps vs a direct low-probability jump:
     the product favours the long certain path *)
  let m =
    Chain.of_transitions ~states:5
      [ (0, 4, 0.1); (0, 1, 0.9); (1, 2, 1.); (2, 3, 1.); (3, 4, 1.) ]
  in
  match Ctmc.Witness.most_probable_path m ~psi:(fun s -> s = 4) with
  | Some w ->
      Alcotest.(check (list int)) "long path wins" [ 0; 1; 2; 3; 4 ] w.Ctmc.Witness.states;
      check_close ~eps:1e-12 "probability" 0.9 w.Ctmc.Witness.probability
  | None -> Alcotest.fail "expected a path"

(* ------------------------------------------------------------------ *)
(* Steady state *)

let test_steady_irreducible () =
  let m = two_state 2. 3. in
  let pi = Steady_state.solve m in
  check_close ~eps:1e-10 "pi0" 0.6 pi.(0)

let test_steady_reducible_two_absorbing () =
  let m = Chain.of_transitions ~states:3 [ (0, 1, 1.); (0, 2, 3.) ] in
  let pi = Steady_state.solve m in
  check_close ~eps:1e-9 "absorbed in 1" 0.25 pi.(1);
  check_close ~eps:1e-9 "absorbed in 2" 0.75 pi.(2);
  check_close "transient state empty" 0. pi.(0)

let test_steady_reducible_bscc_classes () =
  let m =
    Chain.of_transitions ~states:4
      [ (0, 1, 1.); (0, 3, 1.); (1, 2, 1.); (2, 1, 4.) ]
  in
  let pi = Steady_state.solve m in
  check_close ~eps:1e-9 "state 1" (0.5 *. 0.8) pi.(1);
  check_close ~eps:1e-9 "state 2" (0.5 *. 0.2) pi.(2);
  check_close ~eps:1e-9 "state 3" 0.5 pi.(3)

let test_steady_depends_on_init () =
  let m =
    Chain.of_transitions ~states:3 ~init:(Vec.unit 3 1) [ (0, 1, 1.); (0, 2, 1.) ]
  in
  let pi = Steady_state.solve m in
  check_close "starts in absorbing 1" 1. pi.(1)

let test_long_run_probability () =
  let m = two_state 2. 3. in
  check_close ~eps:1e-10 "long run" 0.6
    (Steady_state.long_run_probability m ~pred:(fun s -> s = 0))

let test_is_irreducible () =
  Alcotest.(check bool) "two-state" true (Steady_state.is_irreducible (two_state 1. 1.));
  Alcotest.(check bool) "absorbing" false
    (Steady_state.is_irreducible (Chain.of_transitions ~states:2 [ (0, 1, 1.) ]))

(* ------------------------------------------------------------------ *)
(* Rewards *)

let test_instantaneous_reward () =
  let a = 2. and b = 3. in
  let m = two_state a b in
  let r = Rewards.instantaneous m ~reward:[| 5.; 1. |] ~at:0.7 in
  let p0 = p0_exact a b 0.7 in
  check_close ~eps:1e-10 "instantaneous" ((5. *. p0) +. (1. -. p0)) r

let test_accumulated_reward_two_state () =
  let a = 2. and b = 3. in
  let m = two_state a b in
  let t = 1.3 in
  let acc = Rewards.accumulated m ~reward:[| 1.; 0. |] ~upto:t in
  let expected =
    (b /. (a +. b) *. t) +. (a /. ((a +. b) ** 2.) *. (1. -. Float.exp (-.(a +. b) *. t)))
  in
  check_close ~eps:1e-10 "accumulated" expected acc

let test_accumulated_absorbing_expected_time () =
  let m = Chain.of_transitions ~states:2 [ (0, 1, 4.) ] in
  let acc = Rewards.accumulated m ~reward:[| 1.; 0. |] ~upto:100. in
  check_close ~eps:1e-8 "mean absorption time" 0.25 acc

let test_accumulated_curve_consistent () =
  let m = two_state 0.8 1.2 in
  let reward = [| 2.; 7. |] in
  let curve = Rewards.accumulated_curve m ~reward ~times:[ 0.5; 1.5; 3. ] in
  List.iter
    (fun (t, v) ->
      let direct = Rewards.accumulated m ~reward ~upto:t in
      check_close ~eps:1e-9 (Printf.sprintf "curve(%g)" t) direct v)
    curve

let test_accumulated_linear_when_constant () =
  let m = two_state 1. 1. in
  let acc = Rewards.accumulated m ~reward:[| 3.; 3. |] ~upto:7. in
  check_close ~eps:1e-9 "3t" 21. acc

let test_steady_state_reward () =
  let m = two_state 2. 3. in
  let r = Rewards.steady_state m ~reward:[| 10.; 0. |] in
  check_close ~eps:1e-9 "long-run reward rate" 6. r

(* ------------------------------------------------------------------ *)
(* Lumping *)

let test_lump_symmetric_pair () =
  (* two independent identical 2-state components; lump by number failed:
     states (up,up)=0, (dn,up)=1, (up,dn)=2, (dn,dn)=3 *)
  let lam = 0.1 and mu = 1. in
  let m =
    Chain.of_transitions ~states:4
      [
        (0, 1, lam); (0, 2, lam);
        (1, 0, mu); (1, 3, lam);
        (2, 0, mu); (2, 3, lam);
        (3, 1, mu); (3, 2, mu);
      ]
  in
  let initial = [| 0; 1; 1; 2 |] in
  let r = Lumping.lump m ~initial in
  Alcotest.(check int) "3 blocks" 3 (Chain.states r.Lumping.quotient);
  let pi_full = Steady_state.solve m in
  let pi_q = Steady_state.solve r.Lumping.quotient in
  check_close ~eps:1e-9 "steady state preserved (block 1)"
    (pi_full.(1) +. pi_full.(2))
    pi_q.(1);
  let t = 3.1 in
  let full_t = Transient.distribution m t in
  let q_t = Transient.distribution r.Lumping.quotient t in
  check_close ~eps:1e-9 "transient preserved" (full_t.(1) +. full_t.(2)) q_t.(1)

let test_lump_refines_when_needed () =
  let m =
    Chain.of_transitions ~states:4
      [ (0, 1, 1.); (0, 2, 1.); (1, 3, 5.); (2, 3, 7.) ]
  in
  let initial = [| 0; 1; 1; 2 |] in
  let r = Lumping.lump m ~initial in
  Alcotest.(check int) "split into 4 blocks" 4 (Chain.states r.Lumping.quotient)

let test_lump_identity_partition () =
  let m = two_state 1. 2. in
  let r = Lumping.lump m ~initial:[| 0; 1 |] in
  Alcotest.(check int) "nothing to merge" 2 (Chain.states r.Lumping.quotient)

let test_lump_lift_project () =
  let m = two_state 1. 1. in
  let r = Lumping.lump m ~initial:[| 0; 0 |] in
  Alcotest.(check int) "single block" 1 (Chain.states r.Lumping.quotient);
  let lifted = Lumping.lift r [| 42. |] in
  Alcotest.(check (array (float 0.))) "lift" [| 42.; 42. |] lifted;
  let projected = Lumping.project r [| 1.; 2. |] in
  Alcotest.(check (array (float 0.))) "project" [| 3. |] projected

let test_lump_no_grid_splits () =
  (* regression for the old decade-scaled grid signatures: a pair of
     lumpable states whose outgoing-rate sums land on opposite sides of a
     %.0f rounding boundary, a 10^k decade boundary, or the sqrt(10)
     scale cut used to be split spuriously. The tolerance predicate has
     no boundaries, so they must stay merged. *)
  let check_pair name sum_a sum_b =
    (* 0 fans out to 1 and 2; both reach the absorbing pair {3,4} with
       nearly equal total rate, split unevenly so each side accumulates
       its own float summation noise *)
    let m =
      Chain.of_transitions ~states:5
        [
          (0, 1, 1.); (0, 2, 1.);
          (1, 3, sum_a *. 0.5); (1, 4, sum_a *. 0.5);
          (2, 3, sum_b *. 0.3); (2, 4, sum_b *. 0.7);
        ]
    in
    let r = Lumping.lump m ~initial:[| 0; 0; 0; 1; 1 |] in
    Alcotest.(check int) (name ^ ": 3 blocks") 3 (Chain.states r.Lumping.quotient);
    Alcotest.(check int)
      (name ^ ": lumpable pair stays merged")
      r.Lumping.block_of.(1) r.Lumping.block_of.(2)
  in
  let s10 = Float.sqrt 10. in
  check_pair "sqrt(10) scale cut" (s10 *. (1. -. 5e-11)) (s10 *. (1. +. 5e-11));
  check_pair "%.0f rounding boundary" 3.4999999999 3.5000000002;
  check_pair "decade boundary" 0.99999999995 1.00000000005;
  (* and genuinely different sums must still split *)
  let m =
    Chain.of_transitions ~states:5
      [ (0, 1, 1.); (0, 2, 1.); (1, 3, 3.1); (1, 4, 3.1); (2, 3, 3.2); (2, 4, 3.2) ]
  in
  let r = Lumping.lump m ~initial:[| 0; 0; 0; 1; 1 |] in
  Alcotest.(check int) "distinct sums split" 4 (Chain.states r.Lumping.quotient)

let test_lump_tolerance_validation () =
  Alcotest.check_raises "negative tolerance"
    (Invalid_argument "Lumping.lump: negative tolerance") (fun () ->
      ignore (Lumping.lump (two_state 1. 1.) ~rate_tolerance:(-1.) ~initial:[| 0; 0 |]));
  Alcotest.check_raises "non-dense partition"
    (Invalid_argument "Lumping.lump: block ids not dense") (fun () ->
      ignore (Lumping.lump (two_state 1. 1.) ~initial:[| 0; 2 |]))

(* ------------------------------------------------------------------ *)
(* Simulate (cross-validation of the numerical engine) *)

let test_simulate_transient_matches () =
  let m = two_state 2. 3. in
  let rng = Numeric.Rng.create 2024L in
  let est = Simulate.estimate_transient m rng ~runs:40_000 ~at:0.7 ~pred:(fun s -> s = 0) in
  let exact = p0_exact 2. 3. 0.7 in
  Alcotest.(check bool)
    (Printf.sprintf "simulation within 5 sigma (est %.4f exact %.4f)" est.Simulate.mean exact)
    true
    (Float.abs (est.Simulate.mean -. exact) < (5. *. est.Simulate.std_error) +. 1e-4)

let test_simulate_accumulated_matches () =
  let m = two_state 2. 3. in
  let rng = Numeric.Rng.create 99L in
  let reward = [| 1.; 0. |] in
  let est = Simulate.estimate_accumulated m rng ~runs:20_000 ~upto:1.3 ~reward in
  let exact = Rewards.accumulated m ~reward ~upto:1.3 in
  Alcotest.(check bool)
    (Printf.sprintf "accumulated within 5 sigma (est %.4f exact %.4f)" est.Simulate.mean exact)
    true
    (Float.abs (est.Simulate.mean -. exact) < (5. *. est.Simulate.std_error) +. 1e-4)

let test_simulate_path_shape () =
  let m = Chain.of_transitions ~states:2 [ (0, 1, 1.) ] in
  let rng = Numeric.Rng.create 5L in
  let path = Simulate.run m rng ~horizon:1000. in
  (match path with
  | (t0, s0) :: _ ->
      check_close "starts at 0" 0. t0;
      Alcotest.(check int) "initial state" 0 s0
  | [] -> Alcotest.fail "empty path");
  Alcotest.(check bool) "absorbed eventually" true (List.length path <= 2);
  Alcotest.(check int) "ends absorbed" 1 (Simulate.state_at path 999.)

let test_simulate_time_in () =
  let path = [ (0., 0); (2., 1); (5., 0) ] in
  check_close "time in state 0" 7. (Simulate.time_in path ~horizon:10. ~pred:(fun s -> s = 0));
  check_close "time in state 1" 3. (Simulate.time_in path ~horizon:10. ~pred:(fun s -> s = 1));
  check_close "truncated" 2. (Simulate.time_in path ~horizon:2. ~pred:(fun s -> s = 0))

let test_simulate_reward_of_path () =
  let path = [ (0., 0); (4., 1) ] in
  check_close "piecewise reward" ((4. *. 2.) +. (6. *. 10.))
    (Simulate.accumulated_reward path ~horizon:10. ~reward:[| 2.; 10. |])

(* ------------------------------------------------------------------ *)
(* qcheck: random small chains, invariants *)

let chain_gen =
  QCheck.Gen.(
    let* n = int_range 2 6 in
    let* entries =
      list_size (int_range 1 15)
        (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (float_range 0.01 5.))
    in
    let entries = List.filter (fun (i, j, _) -> i <> j) entries in
    return (n, entries))

let prop_transient_is_distribution =
  QCheck.Test.make ~count:100 ~name:"transient distributions stay distributions"
    (QCheck.make chain_gen)
    (fun (n, entries) ->
      QCheck.assume (entries <> []);
      let m = Chain.of_transitions ~states:n entries in
      let pi = Transient.distribution m 2.5 in
      Vec.is_distribution ~eps:1e-6 pi)

let prop_uniformization_matches_expm =
  QCheck.Test.make ~count:60 ~name:"uniformization matches the matrix exponential"
    (QCheck.make chain_gen)
    (fun (n, entries) ->
      QCheck.assume (entries <> []);
      let m = Chain.of_transitions ~states:n entries in
      let t = 1.3 in
      let pi = Transient.distribution m t in
      let e = Numeric.Expm.expm_generator (Chain.generator m) t in
      (* the initial distribution is the point mass on state 0 *)
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-8) pi e.(0))

let prop_bounded_until_in_unit_interval =
  QCheck.Test.make ~count:100 ~name:"until probabilities lie in [0,1]"
    (QCheck.make chain_gen)
    (fun (n, entries) ->
      QCheck.assume (entries <> []);
      let m = Chain.of_transitions ~states:n entries in
      let v =
        Reachability.bounded_until m
          ~phi:(fun s -> s mod 2 = 0)
          ~psi:(fun s -> s mod 3 = 0)
          ~bound:1.5
      in
      Array.for_all (fun p -> p >= -1e-9 && p <= 1. +. 1e-9) v)

let prop_steady_state_is_distribution =
  QCheck.Test.make ~count:100 ~name:"steady state is a distribution"
    (QCheck.make chain_gen)
    (fun (n, entries) ->
      QCheck.assume (entries <> []);
      let m = Chain.of_transitions ~states:n entries in
      Vec.is_distribution ~eps:1e-6 (Steady_state.solve m))

let prop_lumping_preserves_steady_state =
  QCheck.Test.make ~count:50 ~name:"lumping preserves block steady-state mass"
    (QCheck.make chain_gen)
    (fun (n, entries) ->
      QCheck.assume (entries <> []);
      let m = Chain.of_transitions ~states:n entries in
      let initial = Array.init n (fun s -> s mod 2) in
      let r = Lumping.lump m ~initial in
      let pi = Steady_state.solve m in
      let pi_q = Steady_state.solve r.Lumping.quotient in
      let projected = Lumping.project r pi in
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-6) projected pi_q)

(* ------------------------------------------------------------------ *)
(* Analysis sessions: cached queries must match the fresh-chain path, and
   repeated queries must be served from the caches *)

(* reducible on purpose ({3,4} is the only BSCC) so the steady-state path
   exercises the BSCC decomposition and reachability caches too *)
let analysis_chain () =
  Chain.of_transitions ~states:5
    [
      (0, 1, 2.); (1, 0, 1.); (1, 2, 3.); (2, 1, 0.5); (2, 3, 1.5);
      (3, 4, 2.5); (4, 3, 1.);
    ]

let check_vec msg expected actual =
  Array.iteri
    (fun i e -> check_close (Printf.sprintf "%s[%d]" msg i) e actual.(i))
    expected

let test_analysis_transient_equiv () =
  let m = analysis_chain () in
  let a = Analysis.create m in
  List.iter
    (fun t ->
      check_vec
        (Printf.sprintf "distribution t=%g" t)
        (Transient.distribution m t)
        (Transient.distribution ~analysis:a m t))
    [ 0.; 0.3; 1.7; 10. ];
  check_close "probability_at"
    (Transient.probability_at m ~pred:(fun s -> s >= 3) 2.)
    (Transient.probability_at ~analysis:a m ~pred:(fun s -> s >= 3) 2.)

let test_analysis_reachability_equiv () =
  let m = analysis_chain () in
  let a = Analysis.create m in
  let phi s = s <> 2 and psi s = s = 4 in
  check_vec "bounded until"
    (Reachability.bounded_until m ~phi ~psi ~bound:1.5)
    (Reachability.bounded_until ~analysis:a m ~phi ~psi ~bound:1.5);
  check_vec "interval until"
    (Reachability.interval_until m ~phi ~psi ~lower:0.5 ~upper:2.)
    (Reachability.interval_until ~analysis:a m ~phi ~psi ~lower:0.5 ~upper:2.);
  check_vec "unbounded until"
    (Reachability.unbounded_until m ~phi ~psi)
    (Reachability.unbounded_until ~analysis:a m ~phi ~psi)

let test_analysis_rewards_equiv () =
  let m = analysis_chain () in
  let a = Analysis.create m in
  let reward = Array.init (Chain.states m) (fun s -> float_of_int (s + 1)) in
  check_close "instantaneous"
    (Rewards.instantaneous m ~reward ~at:1.2)
    (Rewards.instantaneous ~analysis:a m ~reward ~at:1.2);
  check_close "accumulated"
    (Rewards.accumulated m ~reward ~upto:3.)
    (Rewards.accumulated ~analysis:a m ~reward ~upto:3.)

let test_analysis_steady_equiv () =
  let m = analysis_chain () in
  let a = Analysis.create m in
  check_vec "steady" (Steady_state.solve m) (Steady_state.solve ~analysis:a m);
  ignore (Steady_state.solve ~analysis:a m);
  let s = Analysis.stats a in
  Alcotest.(check int) "one steady solve" 1 s.Analysis.steady_solves;
  Alcotest.(check bool) "second solve is a hit" true (s.Analysis.steady_hits >= 1)

let test_analysis_hit_counters () =
  let m = analysis_chain () in
  let a = Analysis.create m in
  let query () = Transient.probability_at ~analysis:a m ~pred:(fun s -> s = 0) 2. in
  let v1 = query () in
  let s1 = Analysis.stats a in
  Alcotest.(check int) "one uniformized build" 1 s1.Analysis.uniformized_builds;
  Alcotest.(check int) "one weight compute" 1 s1.Analysis.weight_computes;
  let v2 = query () in
  check_close "identical queries agree" v1 v2;
  let s2 = Analysis.stats a in
  Alcotest.(check int) "still one uniformized build" 1 s2.Analysis.uniformized_builds;
  Alcotest.(check int) "still one weight compute" 1 s2.Analysis.weight_computes;
  Alcotest.(check bool) "matrix fetch was a hit" true
    (s2.Analysis.uniformized_hits > s1.Analysis.uniformized_hits);
  Alcotest.(check bool) "weight fetch was a hit" true
    (s2.Analysis.weight_hits > s1.Analysis.weight_hits)

let test_analysis_absorbed_cache () =
  let m = analysis_chain () in
  let a = Analysis.create m in
  let phi s = s <= 3 and psi s = s = 4 in
  let v1 = Reachability.bounded_until ~analysis:a m ~phi ~psi ~bound:1. in
  let v2 = Reachability.bounded_until ~analysis:a m ~phi ~psi ~bound:1. in
  check_vec "identical queries agree" v1 v2;
  let s = Analysis.stats a in
  Alcotest.(check int) "one absorbed chain" 1 s.Analysis.absorbed_builds;
  Alcotest.(check bool) "second query reuses it" true (s.Analysis.absorbed_hits >= 1)

let expect_invalid_arg msg f =
  match f () with
  | _ -> Alcotest.fail (msg ^ ": expected Invalid_argument")
  | exception Invalid_argument _ -> ()

let test_analysis_weights_cache_hit () =
  (* the float-keyed weight cache must actually hit on repeat lookups *)
  let m = analysis_chain () in
  let a = Analysis.create m in
  ignore (Analysis.weights a 1.5);
  ignore (Analysis.weights a 1.5);
  ignore (Analysis.weights a 1.5);
  let s = Analysis.stats a in
  Alcotest.(check int) "one compute" 1 s.Analysis.weight_computes;
  Alcotest.(check int) "two hits" 2 s.Analysis.weight_hits

let test_analysis_rejects_nan_keys () =
  (* NaN can never hit a float-keyed cache (nan <> nan), so it must be
     rejected at the session entry points instead of recomputing forever
     (or failing later as a bare Not_found) *)
  let m = analysis_chain () in
  let a = Analysis.create m in
  expect_invalid_arg "nan time" (fun () -> Analysis.weights a Float.nan);
  expect_invalid_arg "infinite time" (fun () ->
      Analysis.weights a Float.infinity);
  expect_invalid_arg "nan epsilon" (fun () ->
      Analysis.weights ~epsilon:Float.nan a 1.);
  expect_invalid_arg "zero epsilon" (fun () ->
      Analysis.weights ~epsilon:0. a 1.);
  expect_invalid_arg "nan tol" (fun () ->
      Analysis.cached_steady a ~tol:Float.nan (fun () ->
          Alcotest.fail "compute must not run"));
  expect_invalid_arg "negative tol" (fun () ->
      Analysis.cached_steady a ~tol:(-1e-9) (fun () ->
          Alcotest.fail "compute must not run"));
  expect_invalid_arg "nan batch time" (fun () ->
      let start = Array.make (Chain.states m) 0. in
      Analysis.poisson_mixture_batch a ~dir:Analysis.Forward
        [ { Analysis.start; coeff = Analysis.Pmf; times = [ 1.; Float.nan ] } ]);
  let s = Analysis.stats a in
  Alcotest.(check int) "nothing was computed" 0 s.Analysis.weight_computes

let test_analysis_fnv1a64 () =
  (* reference vectors for the exported content hash *)
  Alcotest.(check int64) "empty" 0xcbf29ce484222325L (Analysis.fnv1a64 "");
  Alcotest.(check int64) "a" 0xaf63dc4c8601ec8cL (Analysis.fnv1a64 "a");
  Alcotest.(check int64) "foobar" 0x85944171f73967e8L
    (Analysis.fnv1a64 "foobar");
  Alcotest.(check bool) "content-sensitive" true
    (Analysis.fnv1a64 "model-a" <> Analysis.fnv1a64 "model-b")

let analysis_symmetric_chain () =
  (* two identical independent components (as in test_lump_symmetric_pair):
     states 0 = both up, 1/2 = one down, 3 = both down *)
  Chain.of_transitions ~states:4
    [
      (0, 1, 0.1); (0, 2, 0.1);
      (1, 0, 1.); (1, 3, 0.1);
      (2, 0, 1.); (2, 3, 0.1);
      (3, 1, 1.); (3, 2, 1.);
    ]

let test_analysis_quotient_cache () =
  let m = analysis_symmetric_chain () in
  let a = Analysis.create m in
  let pred s = s = 3 in
  let quot = Analysis.quotient a ~respect:[ Analysis.Pred pred ] in
  Alcotest.(check int) "3 blocks"
    3
    (Chain.states (Analysis.chain quot.Analysis.q));
  let s1 = Analysis.stats a in
  Alcotest.(check int) "one lump build" 1 s1.Analysis.lump_builds;
  Alcotest.(check int) "lumped_states recorded" 3 s1.Analysis.lumped_states;
  (* same respected predicate -> same initial partition -> cache hit *)
  let quot2 = Analysis.quotient a ~respect:[ Analysis.Pred (fun s -> s >= 3) ] in
  Alcotest.(check bool) "memoized session reused" true
    (quot.Analysis.q == quot2.Analysis.q);
  let s2 = Analysis.stats a in
  Alcotest.(check int) "still one lump build" 1 s2.Analysis.lump_builds;
  Alcotest.(check int) "second call is a hit" 1 s2.Analysis.lump_hits;
  (* a finer respect list really is a different quotient *)
  let quot3 =
    Analysis.quotient a ~respect:[ Analysis.Blocks [| 0; 1; 2; 3 |] ]
  in
  Alcotest.(check int) "identity respect keeps all states"
    4
    (Chain.states (Analysis.chain quot3.Analysis.q));
  Alcotest.(check int) "second lump build"
    2
    (Analysis.stats a).Analysis.lump_builds

let test_analysis_quotient_measures_agree () =
  let m = analysis_symmetric_chain () in
  let a = Analysis.create m in
  let pred s = s = 1 || s = 2 in
  check_close "transient mass via quotient"
    (Transient.probability_at m ~pred 2.3)
    (Transient.probability_at ~lump:true ~analysis:a m ~pred 2.3);
  check_close "long-run mass via quotient"
    (Steady_state.long_run_probability m ~pred)
    (Steady_state.long_run_probability ~lump:true ~analysis:a m ~pred);
  let phi _ = true and psi s = s = 3 in
  check_vec "bounded until via quotient"
    (Reachability.bounded_until m ~phi ~psi ~bound:1.7)
    (Reachability.bounded_until ~lump:true ~analysis:a m ~phi ~psi ~bound:1.7);
  check_close "bounded until from init via quotient"
    (Reachability.bounded_until_from_init m ~phi ~psi ~bound:1.7)
    (Reachability.bounded_until_from_init ~lump:true ~analysis:a m ~phi ~psi
       ~bound:1.7);
  List.iter2
    (fun (t1, p1) (t2, p2) ->
      check_close "curve times match" t1 t2;
      check_close "bounded until curve via quotient" p1 p2)
    (Reachability.bounded_until_curve m ~phi ~psi ~bounds:[ 0.5; 1.; 2. ])
    (Reachability.bounded_until_curve ~lump:true ~analysis:a m ~phi ~psi
       ~bounds:[ 0.5; 1.; 2. ]);
  let reward = [| 2.; 5.; 5.; 11. |] in
  check_close "instantaneous reward via quotient"
    (Rewards.instantaneous m ~reward ~at:1.2)
    (Rewards.instantaneous ~lump:true ~analysis:a m ~reward ~at:1.2);
  check_close "accumulated reward via quotient"
    (Rewards.accumulated m ~reward ~upto:3.)
    (Rewards.accumulated ~lump:true ~analysis:a m ~reward ~upto:3.);
  check_close "steady reward via quotient"
    (Rewards.steady_state m ~reward)
    (Rewards.steady_state ~lump:true ~analysis:a m ~reward)

let test_analysis_absorbed_hash_keys () =
  (* unnamed predicates are cached by bitmap hash: equal bitmaps hit,
     different bitmaps build, and no collision is miscounted as a hit *)
  let m = analysis_chain () in
  let a = Analysis.create m in
  let sub1 = Analysis.absorbed a ~pred:(fun s -> s = 4) in
  let sub2 = Analysis.absorbed a ~pred:(fun s -> s = 4) in
  Alcotest.(check bool) "same predicate, same sub-session" true (sub1 == sub2);
  let sub3 = Analysis.absorbed a ~pred:(fun s -> s >= 3) in
  Alcotest.(check bool) "different predicate, different sub-session" true
    (sub1 != sub3);
  let s = Analysis.stats a in
  Alcotest.(check int) "two absorbed builds" 2 s.Analysis.absorbed_builds;
  Alcotest.(check int) "one absorbed hit" 1 s.Analysis.absorbed_hits;
  Alcotest.(check int) "no collisions" 0 s.Analysis.absorbed_collisions

let test_analysis_wrong_chain_ignored () =
  let m = analysis_chain () in
  let a = Analysis.create (two_state 1. 2.) in
  check_vec "foreign session falls back to fresh"
    (Transient.distribution m 1.)
    (Transient.distribution ~analysis:a m 1.);
  let s = Analysis.stats a in
  Alcotest.(check int) "foreign session untouched" 0 s.Analysis.uniformized_builds

(* ------------------------------------------------------------------ *)
(* The multi-time-point kernel: one shared sweep must match per-point
   evaluation, preserve the caller's times 1:1, and actually save SpMVs *)

let multi_times = [ 0.4; 1.1; 2.6; 5.; 9.3 ]

let test_multi_kernel_matches_single () =
  let m = analysis_chain () in
  let a = Analysis.create m in
  let start = Chain.initial m in
  List.iter
    (fun (dir, coeff, label) ->
      let multi =
        Analysis.poisson_mixture_multi a ~dir ~coeff start ~times:multi_times
      in
      List.iter2
        (fun t v ->
          check_vec
            (Printf.sprintf "%s t=%g" label t)
            (Analysis.poisson_mixture a ~dir ~coeff start ~time:t)
            v)
        multi_times multi)
    [
      (Analysis.Forward, Analysis.Pmf, "forward pmf");
      (Analysis.Backward, Analysis.Pmf, "backward pmf");
      (Analysis.Forward, Analysis.Tail_over_lambda, "forward tail");
    ]

let test_multi_kernel_times_contract () =
  let m = analysis_chain () in
  let a = Analysis.create m in
  let start = Chain.initial m in
  let run times =
    Analysis.poisson_mixture_multi a ~dir:Analysis.Forward ~coeff:Analysis.Pmf
      start ~times
  in
  Alcotest.(check int) "empty times" 0 (List.length (run []));
  (* unsorted input: results aligned with the caller's order *)
  let unsorted = [ 2.6; 0.4; 9.3 ] in
  List.iter2
    (fun t v ->
      check_vec
        (Printf.sprintf "unsorted t=%g" t)
        (Transient.distribution m t) v)
    unsorted (run unsorted);
  (* duplicates: every occurrence gets its own independent vector *)
  (match run [ 1.1; 1.1 ] with
  | [ v1; v2 ] ->
      check_vec "duplicates agree" v1 v2;
      Alcotest.(check bool) "duplicates are distinct vectors" false (v1 == v2);
      v1.(0) <- 42.;
      check_close "mutating one leaves the other" (Transient.distribution m 1.1).(0)
        v2.(0)
  | _ -> Alcotest.fail "expected two points");
  (* time zero inside a list *)
  (match run [ 0.; 1.1 ] with
  | [ v0; _ ] -> check_vec "t=0 is the start vector" start v0
  | _ -> Alcotest.fail "expected two points");
  Alcotest.check_raises "negative time"
    (Invalid_argument "Analysis.poisson_mixture_multi: negative time") (fun () ->
      ignore (run [ 1.; -2. ]))

let test_multi_kernel_counters () =
  let m = analysis_chain () in
  let a = Analysis.create m in
  let start = Chain.initial m in
  ignore
    (Analysis.poisson_mixture_multi a ~dir:Analysis.Forward ~coeff:Analysis.Pmf
       start ~times:multi_times);
  let s_multi = Analysis.stats a in
  Alcotest.(check int) "one pass for the whole curve" 1
    s_multi.Analysis.mixture_passes;
  let b = Analysis.create m in
  List.iter
    (fun t ->
      ignore
        (Analysis.poisson_mixture b ~dir:Analysis.Forward ~coeff:Analysis.Pmf
           start ~time:t))
    multi_times;
  let s_seq = Analysis.stats b in
  Alcotest.(check int) "one pass per point" (List.length multi_times)
    s_seq.Analysis.mixture_passes;
  Alcotest.(check bool) "multi does fewer SpMVs" true
    (s_multi.Analysis.mixture_steps < s_seq.Analysis.mixture_steps)

let test_curve_preserves_times () =
  let m = two_state 1.5 0.5 in
  let times = [ 3.; 0.5; 3.; 0. ] in
  let curve = Transient.curve m ~times in
  Alcotest.(check (list (float 0.)))
    "times preserved 1:1 (order and duplicates)" times (List.map fst curve);
  let reward = [| 1.; 4. |] in
  Alcotest.(check (list (float 0.)))
    "instantaneous curve aligned" times
    (List.map fst (Rewards.instantaneous_curve m ~reward ~times));
  Alcotest.(check (list (float 0.)))
    "accumulated curve aligned" times
    (List.map fst (Rewards.accumulated_curve m ~reward ~times));
  Alcotest.(check (list (float 0.)))
    "bounded-until curve aligned" times
    (List.map fst
       (Reachability.bounded_until_curve m
          ~phi:(fun _ -> true)
          ~psi:(fun s -> s = 1)
          ~bounds:times))

(* ------------------------------------------------------------------ *)
(* The blocked (multi-stream) kernel and the batch entry points built on
   it: one width-K sweep must match K independent single-stream sweeps *)

let test_batch_kernel_matches_multi () =
  let m = analysis_chain () in
  let a = Analysis.create m in
  let n = Chain.states m in
  let start = Chain.initial m in
  let other = Numeric.Vec.unit n 2 in
  let batches =
    [
      { Analysis.start; coeff = Analysis.Pmf; times = multi_times };
      { Analysis.start; coeff = Analysis.Tail_over_lambda; times = multi_times };
      { Analysis.start = other; coeff = Analysis.Pmf; times = [ 0.; 2.6 ] };
    ]
  in
  let results = Analysis.poisson_mixture_batch a ~dir:Analysis.Forward batches in
  let s = Analysis.stats a in
  Alcotest.(check int) "one blocked pass" 1 s.Analysis.batch_passes;
  Alcotest.(check int) "three columns" 3 s.Analysis.batch_columns;
  List.iter2
    (fun b vs ->
      let singles =
        Analysis.poisson_mixture_multi a ~dir:Analysis.Forward ~coeff:b.Analysis.coeff
          b.Analysis.start ~times:b.Analysis.times
      in
      List.iteri
        (fun i (single, batched) ->
          check_vec (Printf.sprintf "stream point %d" i) single batched)
        (List.combine singles vs))
    batches results

let test_transient_batch_entries () =
  let m = analysis_chain () in
  let n = Chain.states m in
  let starts = [ Chain.initial m; Numeric.Vec.unit n 3 ] in
  let times = [ 0.; 0.7; 4.2 ] in
  List.iter2
    (fun start vs ->
      List.iter2
        (fun t v ->
          check_vec
            (Printf.sprintf "distribution_batch t=%g" t)
            (Transient.distribution_from m start t)
            v)
        times vs)
    starts
    (Transient.distribution_batch m ~starts ~times);
  let values = [ [| 1.; 0.; 0.; 0.; 0. |]; [| 0.; 0.5; 0.; 0.; 2. |] ] in
  List.iter2
    (fun v u ->
      check_vec "backward_batch" (Transient.backward m v 1.3) u)
    values
    (Transient.backward_batch m values 1.3)

let test_rewards_both_curves () =
  let m = analysis_chain () in
  let reward = Array.init (Chain.states m) (fun s -> float_of_int (2 * s) +. 1.) in
  let times = [ 0.; 0.9; 3.3; 7. ] in
  let inst, acc = Rewards.both_curves m ~reward ~times in
  List.iter2
    (fun (t1, v1) (t2, v2) ->
      check_close "inst times aligned" t1 t2;
      check_close ~eps:1e-12 (Printf.sprintf "inst t=%g" t1) v1 v2)
    (Rewards.instantaneous_curve m ~reward ~times)
    inst;
  List.iter2
    (fun (t1, v1) (t2, v2) ->
      check_close "acc times aligned" t1 t2;
      check_close ~eps:1e-12 (Printf.sprintf "acc t=%g" t1) v1 v2)
    (Rewards.accumulated_curve m ~reward ~times)
    acc

let test_long_run_probabilities () =
  (* reducible chain: the multi-RHS BSCC-weight solve behind one call must
     match the per-predicate scalar entry point *)
  let m = analysis_chain () in
  let preds =
    [ (fun s -> s = 0); (fun s -> s >= 3); (fun s -> s mod 2 = 1) ]
  in
  List.iter2
    (fun pred p ->
      check_close ~eps:1e-9 "long-run mass"
        (Steady_state.long_run_probability m ~pred)
        p)
    preds
    (Steady_state.long_run_probabilities m ~preds)

let test_unbounded_until_scc_order () =
  (* layered DAG: i -> i+1 and i -> trap, with the goal at the chain's
     end. Natural-order Gauss-Seidel propagates the goal value roughly one
     layer per sweep; the SCC topological order (successors first) needs a
     couple of sweeps. Both must land on the same fixpoint. *)
  let n = 40 in
  let trap = n and goal = n - 1 in
  let transitions =
    List.concat
      (List.init (n - 1) (fun i -> [ (i, i + 1, 1.); (i, trap, 0.3) ]))
  in
  let m = Chain.of_transitions ~states:(n + 1) transitions in
  let psi s = s = goal in
  let was = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  let v_nat = Reachability.eventually ~scc_order:false m ~psi in
  let v_scc = Reachability.eventually m ~psi in
  Obs.Metrics.set_enabled was;
  let iters =
    List.filter_map (fun s ->
        if s.Obs.Metrics.solver = "gauss_seidel" then
          Some s.Obs.Metrics.iterations
        else None)
      (Obs.Metrics.snapshot ()).Obs.Metrics.solves
  in
  (match iters with
  | [ natural; ordered ] ->
      Alcotest.(check bool)
        (Printf.sprintf "scc order needs fewer sweeps (%d < %d)" ordered
           natural)
        true (ordered < natural)
  | _ -> Alcotest.fail "expected exactly two recorded gauss_seidel solves");
  Array.iteri
    (fun s v ->
      check_close ~eps:1e-11 (Printf.sprintf "fixpoint state %d" s) v
        v_scc.(s))
    v_nat

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "ctmc"
    [
      ( "chain",
        [
          Alcotest.test_case "validation" `Quick test_chain_validation;
          Alcotest.test_case "accessors" `Quick test_chain_accessors;
          Alcotest.test_case "uniformized" `Quick test_chain_uniformized;
          Alcotest.test_case "embedded" `Quick test_chain_embedded;
          Alcotest.test_case "absorbing" `Quick test_chain_absorbing;
          Alcotest.test_case "restrict reachable" `Quick test_restrict_reachable;
        ] );
      ( "transient",
        [
          Alcotest.test_case "two-state analytic" `Quick test_transient_two_state;
          Alcotest.test_case "erlang cdf" `Quick test_transient_erlang;
          Alcotest.test_case "curve matches pointwise" `Quick
            test_transient_curve_matches_pointwise;
          Alcotest.test_case "backward" `Quick test_transient_backward;
          Alcotest.test_case "zero time" `Quick test_transient_zero_time;
          Alcotest.test_case "absorbing chain" `Quick test_transient_absorbing_chain;
        ]
        @ qsuite [ prop_transient_is_distribution; prop_uniformization_matches_expm ] );
      ( "reachability",
        [
          Alcotest.test_case "pure death" `Quick test_bounded_until_pure_death;
          Alcotest.test_case "phi constraint" `Quick test_bounded_until_phi_constraint;
          Alcotest.test_case "psi initial" `Quick test_bounded_until_psi_initial;
          Alcotest.test_case "gambler's ruin" `Quick test_unbounded_until_gambler;
          Alcotest.test_case "recurrent certain" `Quick test_unbounded_until_certain;
          Alcotest.test_case "curve monotone" `Quick test_bounded_until_curve_monotone;
        ]
        @ qsuite [ prop_bounded_until_in_unit_interval ] );
      ( "absorption",
        [
          Alcotest.test_case "two-state hitting time" `Quick test_hitting_time_two_state;
          Alcotest.test_case "erlang stages" `Quick test_hitting_time_erlang;
          Alcotest.test_case "unreachable is infinite" `Quick test_hitting_time_unreachable;
          Alcotest.test_case "sub-probability hit is infinite" `Quick
            test_hitting_time_not_almost_sure;
          Alcotest.test_case "reward until hit" `Quick test_hitting_reward;
          Alcotest.test_case "initial-weighted" `Quick test_mean_time_from_init;
        ] );
      ( "interval-until",
        [
          Alcotest.test_case "transient target analytic" `Quick
            test_interval_until_transient_target;
          Alcotest.test_case "zero lower bound" `Quick test_interval_until_zero_lower;
          Alcotest.test_case "phi constraint" `Quick test_interval_until_phi_constraint;
          Alcotest.test_case "monotone widening" `Quick
            test_interval_until_monotone_widening;
        ] );
      ( "witness",
        [
          Alcotest.test_case "probable branch" `Quick test_witness_simple_choice;
          Alcotest.test_case "unreachable" `Quick test_witness_unreachable;
          Alcotest.test_case "trivial" `Quick test_witness_trivial;
          Alcotest.test_case "certain long path" `Quick
            test_witness_prefers_short_high_probability;
        ] );
      ( "steady-state",
        [
          Alcotest.test_case "irreducible" `Quick test_steady_irreducible;
          Alcotest.test_case "two absorbing states" `Quick
            test_steady_reducible_two_absorbing;
          Alcotest.test_case "bscc classes" `Quick test_steady_reducible_bscc_classes;
          Alcotest.test_case "initial distribution matters" `Quick
            test_steady_depends_on_init;
          Alcotest.test_case "long-run probability" `Quick test_long_run_probability;
          Alcotest.test_case "irreducibility check" `Quick test_is_irreducible;
        ]
        @ qsuite [ prop_steady_state_is_distribution ] );
      ( "rewards",
        [
          Alcotest.test_case "instantaneous" `Quick test_instantaneous_reward;
          Alcotest.test_case "accumulated two-state" `Quick
            test_accumulated_reward_two_state;
          Alcotest.test_case "mean absorption time" `Quick
            test_accumulated_absorbing_expected_time;
          Alcotest.test_case "curve consistent" `Quick test_accumulated_curve_consistent;
          Alcotest.test_case "constant reward linear" `Quick
            test_accumulated_linear_when_constant;
          Alcotest.test_case "steady-state reward" `Quick test_steady_state_reward;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "transient equivalence" `Quick
            test_analysis_transient_equiv;
          Alcotest.test_case "reachability equivalence" `Quick
            test_analysis_reachability_equiv;
          Alcotest.test_case "reward equivalence" `Quick test_analysis_rewards_equiv;
          Alcotest.test_case "steady-state equivalence" `Quick
            test_analysis_steady_equiv;
          Alcotest.test_case "hit counters" `Quick test_analysis_hit_counters;
          Alcotest.test_case "absorbed-chain cache" `Quick
            test_analysis_absorbed_cache;
          Alcotest.test_case "foreign session ignored" `Quick
            test_analysis_wrong_chain_ignored;
          Alcotest.test_case "quotient cache" `Quick test_analysis_quotient_cache;
          Alcotest.test_case "quotient measures agree" `Quick
            test_analysis_quotient_measures_agree;
          Alcotest.test_case "absorbed hash keys" `Quick
            test_analysis_absorbed_hash_keys;
          Alcotest.test_case "weight cache hits on repeat" `Quick
            test_analysis_weights_cache_hit;
          Alcotest.test_case "nan keys rejected" `Quick
            test_analysis_rejects_nan_keys;
          Alcotest.test_case "fnv1a64 reference vectors" `Quick
            test_analysis_fnv1a64;
        ] );
      ( "multi-kernel",
        [
          Alcotest.test_case "matches single-point kernel" `Quick
            test_multi_kernel_matches_single;
          Alcotest.test_case "times contract" `Quick
            test_multi_kernel_times_contract;
          Alcotest.test_case "pass/step counters" `Quick
            test_multi_kernel_counters;
          Alcotest.test_case "curves preserve times" `Quick
            test_curve_preserves_times;
        ] );
      ( "batched-kernel",
        [
          Alcotest.test_case "blocked sweep matches streams" `Quick
            test_batch_kernel_matches_multi;
          Alcotest.test_case "transient batch entries" `Quick
            test_transient_batch_entries;
          Alcotest.test_case "both cost curves in one sweep" `Quick
            test_rewards_both_curves;
          Alcotest.test_case "long-run probabilities multi-RHS" `Quick
            test_long_run_probabilities;
          Alcotest.test_case "scc-ordered unbounded until" `Quick
            test_unbounded_until_scc_order;
        ] );
      ( "lumping",
        [
          Alcotest.test_case "symmetric pair" `Quick test_lump_symmetric_pair;
          Alcotest.test_case "refinement splits" `Quick test_lump_refines_when_needed;
          Alcotest.test_case "identity partition" `Quick test_lump_identity_partition;
          Alcotest.test_case "lift and project" `Quick test_lump_lift_project;
          Alcotest.test_case "no tolerance-grid splits" `Quick
            test_lump_no_grid_splits;
          Alcotest.test_case "input validation" `Quick
            test_lump_tolerance_validation;
        ]
        @ qsuite [ prop_lumping_preserves_steady_state ] );
      ( "simulate",
        [
          Alcotest.test_case "transient estimate" `Slow test_simulate_transient_matches;
          Alcotest.test_case "accumulated estimate" `Slow
            test_simulate_accumulated_matches;
          Alcotest.test_case "path shape" `Quick test_simulate_path_shape;
          Alcotest.test_case "time in predicate" `Quick test_simulate_time_in;
          Alcotest.test_case "path reward" `Quick test_simulate_reward_of_path;
        ] );
    ]
