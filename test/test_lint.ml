(* Tests for Arcade.Lint: one positive and one negative case per rule, the
   shipped-model cleanliness sweep, the seeded-defect fixtures, and the
   static-implies-dynamic property: any query the lint accepts must not
   raise Csl.Checker.Unsupported on the Line 2 DED model. *)

module D = Lint.Diagnostic
module MR = Lint.Model_rules
module QR = Lint.Query_rules

let codes diags = D.codes diags

let has code diags = List.mem code (codes diags)

let check_fires msg code diags =
  Alcotest.(check bool) (msg ^ ": " ^ code ^ " fires") true (has code diags)

let check_silent msg code diags =
  Alcotest.(check bool) (msg ^ ": " ^ code ^ " silent") false (has code diags)

(* A minimal clean model; every rule test perturbs one aspect of it. *)
let model_xml ?(name = "m")
    ?(components =
      {|<component name="a" mttf="1000" mttr="10"/>
        <component name="b" mttf="2000" mttr="20"/>|})
    ?(repair =
      {|<repair-unit name="ru" strategy="fcfs" crews="1">
          <component ref="a"/><component ref="b"/>
        </repair-unit>|}) ?(spares = "")
    ?(tree = {|<or><basic ref="a"/><basic ref="b"/></or>|}) ?(measures = "") ()
    =
  Printf.sprintf
    {|<arcade name="%s"><components>%s</components>%s%s<fault-tree>%s</fault-tree>%s</arcade>|}
    name components
    (if repair = "" then "" else "<repair-units>" ^ repair ^ "</repair-units>")
    (if spares = "" then "" else "<spare-units>" ^ spares ^ "</spare-units>")
    tree
    (if measures = "" then "" else "<measures>" ^ measures ^ "</measures>")

let lint = Lint.lint_string

let test_clean_base () =
  Alcotest.(check (list string)) "no diagnostics" [] (codes (lint (model_xml ())))

(* ------------------------------------------------------------------ *)
(* Schema layer *)

let test_x001 () =
  check_fires "parse error" "ARC-X001" (lint "<arcade name=\"m\"><unclosed>");
  check_fires "missing attribute" "ARC-X001"
    (lint
       (model_xml
          ~components:
            {|<component name="a" mttr="10"/><component name="b" mttf="2" mttr="1"/>|}
          ()));
  check_fires "unparsable number" "ARC-X001"
    (lint
       (model_xml
          ~components:
            {|<component name="a" mttf="fast" mttr="10"/>
              <component name="b" mttf="2000" mttr="20"/>|}
          ()));
  check_silent "clean model" "ARC-X001" (lint (model_xml ()))

(* ------------------------------------------------------------------ *)
(* Model layer *)

let test_m001 () =
  check_fires "tree ref" "ARC-M001"
    (lint (model_xml ~tree:{|<or><basic ref="a"/><basic ref="c"/></or>|} ()));
  check_fires "unknown mode" "ARC-M001"
    (lint (model_xml ~tree:{|<or><basic ref="a:leak"/><basic ref="b"/></or>|} ()));
  check_silent "known mode" "ARC-M001"
    (lint (model_xml ~tree:{|<or><basic ref="a:failed"/><basic ref="b"/></or>|} ()))

let test_m002 () =
  check_fires "duplicate" "ARC-M002"
    (lint
       (model_xml
          ~components:
            {|<component name="a" mttf="1000" mttr="10"/>
              <component name="a" mttf="1000" mttr="10"/>
              <component name="b" mttf="2000" mttr="20"/>|}
          ()));
  check_silent "distinct" "ARC-M002" (lint (model_xml ()))

let test_m003 () =
  check_fires "repaired twice" "ARC-M003"
    (lint
       (model_xml
          ~repair:
            {|<repair-unit name="r1" strategy="fcfs" crews="1">
                <component ref="a"/><component ref="b"/>
              </repair-unit>
              <repair-unit name="r2" strategy="fcfs" crews="1">
                <component ref="b"/>
              </repair-unit>|}
          ()));
  check_silent "disjoint units" "ARC-M003" (lint (model_xml ()))

let test_m004 () =
  let xml =
    model_xml
      ~components:
        {|<component name="a" mttf="1000" mttr="10"/>
          <component name="b" mttf="2000" mttr="20"/>
          <component name="c" mttf="3000" mttr="30"/>|}
      ~repair:
        {|<repair-unit name="ru" strategy="fcfs" crews="1">
            <component ref="a"/><component ref="b"/><component ref="c"/>
          </repair-unit>|}
      ()
  in
  check_fires "unreferenced" "ARC-M004" (lint xml);
  (* referenced through a spare unit counts *)
  let spare_xml =
    model_xml
      ~components:
        {|<component name="a" mttf="1000" mttr="10"/>
          <component name="b" mttf="2000" mttr="20"/>
          <component name="c" mttf="3000" mttr="30"/>|}
      ~repair:
        {|<repair-unit name="ru" strategy="fcfs" crews="1">
            <component ref="a"/><component ref="b"/><component ref="c"/>
          </repair-unit>|}
      ~spares:
        {|<spare-unit name="s" mode="hot">
            <primary ref="a"/><spare ref="c"/>
          </spare-unit>|}
      ()
  in
  check_silent "spare member" "ARC-M004" (lint spare_xml)

let test_m005 () =
  let xml =
    model_xml
      ~repair:
        {|<repair-unit name="ru" strategy="fcfs" crews="1">
            <component ref="a"/>
          </repair-unit>|}
      ()
  in
  check_fires "outside organisation" "ARC-M005" (lint xml);
  (* a pure reliability model (no repair at all) stays quiet *)
  check_silent "reliability model" "ARC-M005" (lint (model_xml ~repair:"" ()))

let test_m006 () =
  let ded crews =
    model_xml
      ~repair:
        (Printf.sprintf
           {|<repair-unit name="ru" strategy="dedicated" crews="%d">
               <component ref="a"/><component ref="b"/>
             </repair-unit>|}
           crews)
      ()
  in
  check_fires "ignored crews" "ARC-M006" (lint (ded 3));
  check_silent "crews=1 idiom" "ARC-M006" (lint (ded 1));
  check_silent "one per component" "ARC-M006" (lint (ded 2))

let test_m007 () =
  let fcfs crews =
    model_xml
      ~repair:
        (Printf.sprintf
           {|<repair-unit name="ru" strategy="fcfs" crews="%d">
               <component ref="a"/><component ref="b"/>
             </repair-unit>|}
           crews)
      ()
  in
  check_fires "zero crews" "ARC-M007" (lint (fcfs 0));
  check_fires "more crews than components" "ARC-M007" (lint (fcfs 5));
  check_silent "sane crews" "ARC-M007" (lint (fcfs 2));
  Alcotest.(check bool) "zero crews is an error" true
    (D.count D.Error (lint (fcfs 0)) > 0)

let test_m008 () =
  check_fires "non-positive mttf" "ARC-M008"
    (lint
       (model_xml
          ~components:
            {|<component name="a" mttf="0" mttr="10"/>
              <component name="b" mttf="2000" mttr="20"/>|}
          ()));
  check_fires "non-finite mttr" "ARC-M008"
    (lint
       (model_xml
          ~components:
            {|<component name="a" mttf="1000" mttr="inf"/>
              <component name="b" mttf="2000" mttr="20"/>|}
          ()));
  check_silent "positive finite" "ARC-M008" (lint (model_xml ()))

let test_m009 () =
  check_fires "swapped means" "ARC-M009"
    (lint
       (model_xml
          ~components:
            {|<component name="a" mttf="10" mttr="1000"/>
              <component name="b" mttf="2000" mttr="20"/>|}
          ()));
  check_silent "ordered means" "ARC-M009" (lint (model_xml ()))

let test_m010 () =
  let stages s =
    model_xml
      ~components:
        (Printf.sprintf
           {|<component name="a" mttf="1000" mttr="10" repair-stages="%d"/>
             <component name="b" mttf="2000" mttr="20"/>|}
           s)
      ()
  in
  check_fires "zero stages" "ARC-M010" (lint (stages 0));
  check_fires "huge stages" "ARC-M010" (lint (stages 100));
  check_silent "erlang-4" "ARC-M010" (lint (stages 4))

(* The XML conflates priority order and membership, so ARC-M011 is only
   reachable through the raw/API route. *)
let raw_priority order members =
  let comp name =
    {
      MR.rc_name = name;
      rc_modes =
        [
          {
            MR.rm_name = "failed";
            rm_mttf = Some 1000.;
            rm_mttr = Some 10.;
            rm_stages = Some 1;
            rm_pos = None;
          };
        ];
      rc_pos = None;
    }
  in
  {
    MR.raw_name = "m";
    raw_components = [ comp "a"; comp "b" ];
    raw_repair_units =
      [
        {
          MR.rr_name = "ru";
          rr_strategy = MR.Spriority order;
          rr_crews = Some 1;
          rr_components = members;
          rr_pos = None;
        };
      ];
    raw_spare_units = [];
    raw_fault_tree = Some (MR.Gor ([ MR.Gbasic ("a", None); MR.Gbasic ("b", None) ], None));
    raw_measures = [];
  }

let test_m011 () =
  check_fires "omission" "ARC-M011"
    (MR.check (raw_priority [ "a" ] [ "a"; "b" ]));
  check_fires "stranger" "ARC-M011"
    (MR.check (raw_priority [ "a"; "b"; "z" ] [ "a"; "b" ]));
  check_fires "duplicate" "ARC-M011"
    (MR.check (raw_priority [ "a"; "a"; "b" ] [ "a"; "b" ]));
  check_silent "exact cover" "ARC-M011"
    (MR.check (raw_priority [ "b"; "a" ] [ "a"; "b" ]))

let test_m012 () =
  let with_spares spares = model_xml ~spares () in
  check_fires "primary is spare" "ARC-M012"
    (lint
       (with_spares
          {|<spare-unit name="s" mode="hot">
              <primary ref="a"/><spare ref="a"/>
            </spare-unit>|}));
  check_fires "no primaries" "ARC-M012"
    (lint
       (with_spares
          {|<spare-unit name="s" mode="hot"><spare ref="a"/></spare-unit>|}));
  check_fires "warm factor out of range" "ARC-M012"
    (lint
       (with_spares
          {|<spare-unit name="s" mode="warm:1.5">
              <primary ref="a"/><spare ref="b"/>
            </spare-unit>|}));
  check_fires "double membership" "ARC-M012"
    (lint
       (with_spares
          {|<spare-unit name="s1" mode="hot">
              <primary ref="a"/><spare ref="b"/>
            </spare-unit>
            <spare-unit name="s2" mode="hot">
              <primary ref="b"/>
            </spare-unit>|}));
  check_silent "sane spare unit" "ARC-M012"
    (lint
       (with_spares
          {|<spare-unit name="s" mode="warm:0.5">
              <primary ref="a"/><spare ref="b"/>
            </spare-unit>|}))

(* ------------------------------------------------------------------ *)
(* Fault-tree structure *)

let test_f001 () =
  check_fires "single-input and" "ARC-F001"
    (lint
       (model_xml ~tree:{|<or><and><basic ref="a"/></and><basic ref="b"/></or>|} ()));
  check_fires "1-of-n" "ARC-F001"
    (lint
       (model_xml ~tree:{|<kofn k="1"><basic ref="a"/><basic ref="b"/></kofn>|} ()));
  check_fires "n-of-n" "ARC-F001"
    (lint
       (model_xml ~tree:{|<kofn k="2"><basic ref="a"/><basic ref="b"/></kofn>|} ()));
  check_silent "real or" "ARC-F001" (lint (model_xml ()))

let test_f002 () =
  check_fires "duplicate inputs" "ARC-F002"
    (lint
       (model_xml
          ~tree:{|<or><basic ref="a"/><basic ref="a"/><basic ref="b"/></or>|} ()));
  check_silent "distinct inputs" "ARC-F002" (lint (model_xml ()))

let test_f003 () =
  (* or(a, and(a, b)): the and-gate is absorbed by the bare a *)
  check_fires "absorbed input" "ARC-F003"
    (lint
       (model_xml
          ~tree:
            {|<or><basic ref="a"/>
                  <and><basic ref="a"/><basic ref="b"/></and>
                  <basic ref="b"/></or>|}
          ()));
  check_silent "irredundant tree" "ARC-F003"
    (lint
       (model_xml ~tree:{|<and><basic ref="a"/><basic ref="b"/></and>|} ()))

let test_f004 () =
  check_fires "empty gate" "ARC-F004"
    (lint (model_xml ~tree:{|<or><basic ref="a"/><and/></or>|} ()));
  check_fires "bad kofn bound" "ARC-F004"
    (lint
       (model_xml ~tree:{|<kofn k="5"><basic ref="a"/><basic ref="b"/></kofn>|} ()));
  check_silent "well-formed gates" "ARC-F004" (lint (model_xml ()))

(* ------------------------------------------------------------------ *)
(* Chain layer *)

let test_c001 () =
  check_fires "reliability model" "ARC-C001" (lint (model_xml ~repair:"" ()));
  check_silent "full coverage" "ARC-C001" (lint (model_xml ()));
  (* info severity: never fails a -Werror run *)
  let diags = lint (model_xml ~repair:"" ()) in
  Alcotest.(check int) "no errors" 0 (D.count D.Error diags);
  Alcotest.(check int) "no warnings" 0 (D.count D.Warning diags)

let test_c002 () =
  let two_mode repair =
    model_xml
      ~components:
        {|<component name="a" mttf="1000" mttr="10">
            <mode name="leak" mttf="500" mttr="5"/>
          </component>
          <component name="b" mttf="2000" mttr="20"/>|}
      ~repair
      ~tree:{|<or><basic ref="a"/><basic ref="b"/></or>|} ()
  in
  check_fires "unrepaired two-mode" "ARC-C002"
    (lint
       (two_mode
          {|<repair-unit name="ru" strategy="fcfs" crews="1">
              <component ref="b"/>
            </repair-unit>|}));
  check_silent "repaired two-mode" "ARC-C002"
    (lint
       (two_mode
          {|<repair-unit name="ru" strategy="fcfs" crews="1">
              <component ref="a"/><component ref="b"/>
            </repair-unit>|}))

let test_c003 () =
  check_fires "stiff rates" "ARC-C003"
    (lint
       (model_xml
          ~components:
            {|<component name="a" mttf="100000000" mttr="0.001"/>
              <component name="b" mttf="2000" mttr="20"/>|}
          ()));
  check_silent "mild rates" "ARC-C003" (lint (model_xml ()))

(* ------------------------------------------------------------------ *)
(* Query layer *)

let measure name query =
  Printf.sprintf {|<measure name="%s" query="%s"/>|} name query

let lint_q query = lint (model_xml ~measures:(measure "q" query) ())

let test_q001 () =
  check_fires "syntax" "ARC-Q001" (lint_q "P=? [ true U&lt;=100 &quot;down&quot;");
  check_silent "well-formed" "ARC-Q001"
    (lint_q "P=? [ true U&lt;=100 &quot;down&quot; ]")

let test_q002 () =
  check_fires "unknown label" "ARC-Q002" (lint_q "S=? [ &quot;ful_service&quot; ]");
  check_silent "component label" "ARC-Q002" (lint_q "S=? [ &quot;a_failed&quot; ]");
  check_silent "service label" "ARC-Q002" (lint_q "S=? [ &quot;sl_ge_0&quot; ]")

let test_q003 () =
  check_fires "unknown reward" "ARC-Q003" (lint_q "R{&quot;price&quot;}=? [ S ]");
  check_silent "cost reward" "ARC-Q003" (lint_q "R{&quot;cost&quot;}=? [ S ]")

let test_q004 () =
  check_fires "nested query" "ARC-Q004"
    (lint_q "P=? [ true U&lt;=10 P=? [ true U &quot;down&quot; ] ]");
  check_silent "nested bounded" "ARC-Q004"
    (lint_q "P=? [ true U&lt;=10 P&gt;=0.5 [ true U &quot;down&quot; ] ]")

let base_ctx () =
  let doc = Xml_kit.parse_string (model_xml ()) in
  let model, _ = Core.Xml_io.of_xml doc in
  QR.context_of_model model

let test_q005 () =
  check_fires "negative bound" "ARC-Q005"
    (lint_q "P=? [ true U&lt;=-5 &quot;down&quot; ]");
  (* the parser already rejects inverted interval literals (ARC-Q001); the
     AST route must catch them too *)
  check_fires "inverted interval (AST)" "ARC-Q005"
    (QR.check_ast (base_ctx ()) ~subject:"q"
       Csl.Ast.(P (Query, Until (True, Within (9., 3.), Label "down"))));
  check_silent "sane interval" "ARC-Q005"
    (lint_q "P=? [ true U[3,9] &quot;down&quot; ]")

let test_q006 () =
  check_fires "atomic expression" "ARC-Q006"
    (lint_q "P=? [ true U&lt;=10 a_st ]");
  check_silent "label only" "ARC-Q006" (lint_q "P=? [ true U&lt;=10 &quot;down&quot; ]")

let test_q007 () =
  (* steady-state query on a chain with several recurrent classes *)
  let split =
    model_xml
      ~components:
        {|<component name="a" mttf="1000" mttr="10">
            <mode name="leak" mttf="500" mttr="5"/>
          </component>
          <component name="b" mttf="2000" mttr="20"/>|}
      ~repair:
        {|<repair-unit name="ru" strategy="fcfs" crews="1">
            <component ref="b"/>
          </repair-unit>|}
      ~measures:(measure "avail" "S=? [ &quot;operational&quot; ]")
      ()
  in
  check_fires "split chain" "ARC-Q007" (lint split);
  check_silent "single class" "ARC-Q007"
    (lint_q "S=? [ &quot;operational&quot; ]")

let test_q008 () =
  check_fires "trivially true" "ARC-Q008"
    (lint_q "P&gt;=0 [ true U&lt;=10 &quot;down&quot; ]");
  check_fires "out of range" "ARC-Q008"
    (lint_q "P&gt;=1.5 [ true U&lt;=10 &quot;down&quot; ]");
  check_silent "informative bound" "ARC-Q008"
    (lint_q "P&gt;=0.99 [ true U&lt;=10 &quot;down&quot; ]")

(* ------------------------------------------------------------------ *)
(* PRISM layer (hand-written ASTs; these rules guard the export path) *)

let prism_model ?(constants = []) ?(formulas = []) ?(guard = Prism.Ast.Bool_lit true)
    () =
  {
    Prism.Ast.constants;
    formulas;
    labels = [];
    modules =
      [
        {
          Prism.Ast.mod_name = "m";
          mod_vars =
            [
              {
                Prism.Ast.var_name = "x";
                var_type = Prism.Ast.Tbool;
                var_init = None;
              };
            ];
          mod_commands =
            [
              {
                Prism.Ast.action = None;
                guard;
                alternatives =
                  [
                    {
                      Prism.Ast.weight = Prism.Ast.Real_lit 1.;
                      update = [ ("x", Prism.Ast.Bool_lit true) ];
                    };
                  ];
              };
            ];
        };
      ];
    rewards = [];
  }

let const name v =
  {
    Prism.Ast.const_name = name;
    const_type = Prism.Ast.Cint;
    const_value = Prism.Ast.Int_lit v;
  }

let test_p001 () =
  let dead =
    prism_model ~constants:[ const "n" 0 ]
      ~guard:Prism.Ast.(Binop (Gt, Var "n", Int_lit 0))
      ()
  in
  check_fires "dead guard" "ARC-P001" (Lint.Prism_rules.check dead);
  let live =
    prism_model ~constants:[ const "n" 1 ]
      ~guard:Prism.Ast.(Binop (Gt, Var "n", Int_lit 0))
      ()
  in
  check_silent "live guard" "ARC-P001" (Lint.Prism_rules.check live);
  (* state-dependent guards are not statically decidable: stay silent *)
  let dynamic = prism_model ~guard:Prism.Ast.(Unop (Not, Var "x")) () in
  check_silent "dynamic guard" "ARC-P001" (Lint.Prism_rules.check dynamic)

let test_p002 () =
  check_fires "unused constant" "ARC-P002"
    (Lint.Prism_rules.check (prism_model ~constants:[ const "n" 3 ] ()));
  check_silent "used constant" "ARC-P002"
    (Lint.Prism_rules.check
       (prism_model ~constants:[ const "n" 3 ]
          ~guard:Prism.Ast.(Binop (Gt, Var "n", Int_lit 0))
          ()))

let test_p003 () =
  let formula =
    { Prism.Ast.formula_name = "busy"; formula_body = Prism.Ast.Var "x" }
  in
  check_fires "unused formula" "ARC-P003"
    (Lint.Prism_rules.check (prism_model ~formulas:[ formula ] ()));
  check_silent "used formula" "ARC-P003"
    (Lint.Prism_rules.check
       (prism_model ~formulas:[ formula ] ~guard:(Prism.Ast.Var "busy") ()))

let test_to_prism_output_lints_clean () =
  let doc = Xml_kit.parse_string (model_xml ()) in
  let model, _ = Core.Xml_io.of_xml doc in
  let prism = Core.To_prism.translate model in
  Alcotest.(check (list string)) "no ARC-P findings" []
    (codes (Lint.Prism_rules.check prism))

(* ------------------------------------------------------------------ *)
(* lint_model: the API route used by the debug hook *)

let test_lint_model_api () =
  let doc = Xml_kit.parse_string (model_xml ()) in
  let model, _ = Core.Xml_io.of_xml doc in
  Alcotest.(check (list string)) "clean model, clean query" []
    (codes (Lint.lint_model ~queries:[ ("q", {|S=? [ "down" ]|}) ] model));
  check_fires "bad query through the API" "ARC-Q002"
    (Lint.lint_model ~queries:[ ("q", {|S=? [ "nope" ]|}) ] model)

(* ------------------------------------------------------------------ *)
(* Positions *)

let test_positions () =
  let xml = model_xml ~tree:{|<or><basic ref="zz"/><basic ref="b"/></or>|} () in
  let diags = Lint.lint_string ~file:"t.xml" xml in
  match List.find_opt (fun d -> d.D.code = "ARC-M001") diags with
  | None -> Alcotest.fail "expected ARC-M001"
  | Some d ->
      Alcotest.(check (option string)) "file" (Some "t.xml") d.D.file;
      Alcotest.(check bool) "has line" true (d.D.line <> None);
      Alcotest.(check bool)
        "renders as file:line:col" true
        (String.length (D.to_string d) > 10
        && String.sub (D.to_string d) 0 6 = "t.xml:")

let test_xml_locator () =
  let doc, pos = Xml_kit.parse_string_located "<a>\n  <b/>\n</a>" in
  match Xml_kit.find_child doc "b" with
  | None -> Alcotest.fail "no <b> child"
  | Some b -> (
      match pos b with
      | None -> Alcotest.fail "no position for <b>"
      | Some (line, col) ->
          Alcotest.(check int) "line" 2 line;
          Alcotest.(check int) "column" 3 col)

let test_schema_error_position () =
  let doc, pos =
    Xml_kit.parse_string_located
      "<arcade name=\"m\">\n<components>\n<component name=\"a\"/>\n</components>\n<fault-tree><basic ref=\"a\"/></fault-tree>\n</arcade>"
  in
  match Core.Xml_io.of_xml ~file:"t.xml" ~pos doc with
  | _ -> Alcotest.fail "expected Schema_error"
  | exception Core.Xml_io.Schema_error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "message %S carries position" msg)
        true
        (String.length msg >= 9 && String.sub msg 0 9 = "t.xml:3:1")

let test_csl_parser_position () =
  match Csl.Parser.parse "S=?\nX [ \"down\" ]" with
  | _ -> Alcotest.fail "expected syntax error"
  | exception Csl.Parser.Syntax_error { line; column; _ } ->
      Alcotest.(check int) "line" 2 line;
      Alcotest.(check int) "column" 1 column

(* ------------------------------------------------------------------ *)
(* Shipped models lint clean; seeded fixtures fire exactly the expected
   codes *)

let models_dir = "../models"

let test_shipped_models_clean () =
  let files =
    Sys.readdir models_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".xml")
    |> List.sort compare
  in
  Alcotest.(check bool) "found the shipped models" true (List.length files >= 12);
  List.iter
    (fun f ->
      let diags = Lint.lint_file (Filename.concat models_dir f) in
      Alcotest.(check (list string)) (f ^ " is clean") [] (codes diags))
    files

let expected_fixture_codes =
  [
    ( "fixtures/broken_model.xml",
      [ "ARC-M001"; "ARC-M002"; "ARC-M003"; "ARC-M008"; "ARC-M009"; "ARC-M010" ] );
    ( "fixtures/broken_tree.xml",
      [
        "ARC-C001"; "ARC-F001"; "ARC-F002"; "ARC-F003"; "ARC-M004"; "ARC-M005";
        "ARC-M006";
      ] );
    ( "fixtures/broken_queries.xml",
      [
        "ARC-Q001"; "ARC-Q002"; "ARC-Q003"; "ARC-Q004"; "ARC-Q005"; "ARC-Q006";
        "ARC-Q008";
      ] );
    ( "fixtures/broken_chain.xml",
      [ "ARC-C001"; "ARC-C002"; "ARC-C003"; "ARC-M005"; "ARC-Q007" ] );
  ]

let test_seeded_defects () =
  List.iter
    (fun (file, expected) ->
      Alcotest.(check (list string))
        (file ^ " fires exactly the seeded codes")
        expected
        (codes (Lint.lint_file file)))
    expected_fixture_codes

(* ------------------------------------------------------------------ *)
(* Property: static implies dynamic. Any formula the query lint accepts
   (no error-level findings) must not raise Csl.Checker.Unsupported when
   evaluated on the Line 2 DED model. *)

let line2 =
  lazy
    (let model, _ = Core.Xml_io.load (Filename.concat models_dir "line2_ded.xml") in
     let m = Core.Measures.analyze model in
     (QR.context_of_model model, Core.Measures.to_csl_model m))

let formula_gen =
  let open QCheck.Gen in
  let open Csl.Ast in
  let label =
    oneofl
      [
        "down"; "operational"; "full_service"; "sl_ge_0"; "st1_failed";
        "pump1_failed"; "bogus"; "ful_service";
      ]
  in
  let reward = oneofl [ Some "cost"; Some "repair_cost"; Some "bogus"; None ] in
  let interval =
    oneofl [ Unbounded; Upto 10.; Within (1., 5.); Upto (-3.); Within (9., 3.) ]
  in
  let reward_query =
    oneofl [ Instantaneous 5.; Cumulative 10.; Steady; Instantaneous (-1.) ]
  in
  let bound =
    oneofl
      [ Query; Bounded (Ge, 0.5); Bounded (Le, 0.9); Bounded (Ge, 0.); Bounded (Gt, 1.5) ]
  in
  let rec state depth =
    if depth = 0 then
      oneof [ return True; return False; map (fun l -> Label l) label ]
    else
      frequency
        [
          (3, map (fun l -> Label l) label);
          (2, map (fun f -> Not f) (state (depth - 1)));
          (2, map2 (fun a b -> And (a, b)) (state (depth - 1)) (state (depth - 1)));
          (2, map2 (fun a b -> Or (a, b)) (state (depth - 1)) (state (depth - 1)));
          (2, map2 (fun b p -> P (b, p)) bound (path (depth - 1)));
          (2, map2 (fun b f -> S (b, f)) bound (state (depth - 1)));
          (1, map2 (fun r b -> R (r, b, Cumulative 10.)) reward bound);
        ]
  and path depth =
    oneof
      [
        map2 (fun i f -> Next (i, f)) interval (state depth);
        map2 (fun i f -> Eventually (i, f)) interval (state depth);
        (let* a = state depth and* i = interval and* b = state depth in
         return (Until (a, i, b)));
      ]
  in
  let* shape = QCheck.Gen.int_range 0 3 in
  match shape with
  | 0 -> let* p = path 1 in return (P (Query, p))
  | 1 -> let* f = state 1 in return (S (Query, f))
  | 2 ->
      let* r = reward and* q = reward_query in
      return (R (r, Query, q))
  | _ -> state 2

let prop_static_implies_dynamic =
  QCheck.Test.make ~count:40
    ~name:"query lint accepts => Checker does not raise Unsupported"
    (QCheck.make ~print:Csl.Ast.to_string formula_gen)
    (fun formula ->
      let ctx, csl = Lazy.force line2 in
      let diags = QR.check_ast ctx ~subject:"prop" formula in
      if List.exists (fun d -> d.D.severity = D.Error) diags then true
      else
        match Csl.Checker.check csl formula with
        | _ -> true
        | exception Csl.Checker.Unsupported msg ->
            QCheck.Test.fail_reportf
              "lint accepted %s but the checker raised Unsupported (%s)"
              (Csl.Ast.to_string formula) msg)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "lint"
    [
      ( "schema",
        [
          Alcotest.test_case "clean base" `Quick test_clean_base;
          Alcotest.test_case "ARC-X001" `Quick test_x001;
        ] );
      ( "model-rules",
        [
          Alcotest.test_case "ARC-M001" `Quick test_m001;
          Alcotest.test_case "ARC-M002" `Quick test_m002;
          Alcotest.test_case "ARC-M003" `Quick test_m003;
          Alcotest.test_case "ARC-M004" `Quick test_m004;
          Alcotest.test_case "ARC-M005" `Quick test_m005;
          Alcotest.test_case "ARC-M006" `Quick test_m006;
          Alcotest.test_case "ARC-M007" `Quick test_m007;
          Alcotest.test_case "ARC-M008" `Quick test_m008;
          Alcotest.test_case "ARC-M009" `Quick test_m009;
          Alcotest.test_case "ARC-M010" `Quick test_m010;
          Alcotest.test_case "ARC-M011" `Quick test_m011;
          Alcotest.test_case "ARC-M012" `Quick test_m012;
        ] );
      ( "fault-tree-rules",
        [
          Alcotest.test_case "ARC-F001" `Quick test_f001;
          Alcotest.test_case "ARC-F002" `Quick test_f002;
          Alcotest.test_case "ARC-F003" `Quick test_f003;
          Alcotest.test_case "ARC-F004" `Quick test_f004;
        ] );
      ( "chain-rules",
        [
          Alcotest.test_case "ARC-C001" `Quick test_c001;
          Alcotest.test_case "ARC-C002" `Quick test_c002;
          Alcotest.test_case "ARC-C003" `Quick test_c003;
        ] );
      ( "query-rules",
        [
          Alcotest.test_case "ARC-Q001" `Quick test_q001;
          Alcotest.test_case "ARC-Q002" `Quick test_q002;
          Alcotest.test_case "ARC-Q003" `Quick test_q003;
          Alcotest.test_case "ARC-Q004" `Quick test_q004;
          Alcotest.test_case "ARC-Q005" `Quick test_q005;
          Alcotest.test_case "ARC-Q006" `Quick test_q006;
          Alcotest.test_case "ARC-Q007" `Quick test_q007;
          Alcotest.test_case "ARC-Q008" `Quick test_q008;
        ] );
      ( "prism-rules",
        [
          Alcotest.test_case "ARC-P001" `Quick test_p001;
          Alcotest.test_case "ARC-P002" `Quick test_p002;
          Alcotest.test_case "ARC-P003" `Quick test_p003;
          Alcotest.test_case "export lints clean" `Quick
            test_to_prism_output_lints_clean;
        ] );
      ( "drivers",
        [
          Alcotest.test_case "lint_model API" `Quick test_lint_model_api;
          Alcotest.test_case "positions" `Quick test_positions;
          Alcotest.test_case "xml locator" `Quick test_xml_locator;
          Alcotest.test_case "schema error position" `Quick
            test_schema_error_position;
          Alcotest.test_case "csl parser position" `Quick
            test_csl_parser_position;
        ] );
      ( "sweeps",
        [
          Alcotest.test_case "shipped models clean" `Quick
            test_shipped_models_clean;
          Alcotest.test_case "seeded defects" `Quick test_seeded_defects;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_static_implies_dynamic ] );
    ]
